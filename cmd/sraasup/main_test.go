package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/driver"
	"repro/internal/persist/journal"
)

// shWorker builds a supConfig whose "worker" is a shell script. The
// script sees the supervisor-appended flags as $1..$6
// (-state S -shards N -owner O).
func shWorker(t *testing.T, script string, workers int) supConfig {
	t.Helper()
	state := t.TempDir()
	if err := os.MkdirAll(driver.ShardStateDir(state), 0o755); err != nil {
		t.Fatal(err)
	}
	return supConfig{
		workers:     workers,
		state:       state,
		shards:      4,
		maxCrashes:  3,
		crashWindow: time.Minute,
		backoff:     5 * time.Millisecond,
		backoffMax:  20 * time.Millisecond,
		drain:       2 * time.Second,
		ownerPrefix: "sup-test",
		seed:        1,
		argv:        []string{"sh", "-c", script, "worker"},
		logf:        t.Logf,
	}
}

// TestSupervisorRestartsCrashingWorker: a worker that crashes twice
// and then succeeds is restarted (with backoff) until it finishes;
// the slot reports done, not quarantined.
func TestSupervisorRestartsCrashingWorker(t *testing.T) {
	count := filepath.Join(t.TempDir(), "attempts")
	script := fmt.Sprintf(`echo run >> %q
if [ "$(wc -l < %q)" -lt 3 ]; then exit 7; fi
exit 0`, count, count)
	cfg := shWorker(t, script, 1)

	outcomes := supervise(context.Background(), cfg)
	if outcomes[0] != slotDone {
		t.Fatalf("outcome = %v, want done", outcomes[0])
	}
	data, err := os.ReadFile(count)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), "run"); got != 3 {
		t.Fatalf("worker ran %d time(s), want 3 (two crashes + one success)", got)
	}
}

// TestSupervisorQuarantinesCrashLoop: a worker that always crashes is
// quarantined after maxCrashes attempts, and the quarantine breaks
// the leases held under the slot's owner name — but nobody else's.
func TestSupervisorQuarantinesCrashLoop(t *testing.T) {
	cfg := shWorker(t, "exit 9", 1)
	owner := cfg.ownerPrefix + "-w0" // the name superviseSlot assigns slot 0

	mine := driver.ShardLeasePath(cfg.state, 0)
	if l, err := journal.AcquireLease(mine, 0, owner, time.Hour); err != nil || l == nil {
		t.Fatalf("seed lease: %v %v", l, err)
	}
	theirs := driver.ShardLeasePath(cfg.state, 1)
	if l, err := journal.AcquireLease(theirs, 1, "someone-else", time.Hour); err != nil || l == nil {
		t.Fatalf("seed foreign lease: %v %v", l, err)
	}

	outcomes := supervise(context.Background(), cfg)
	if outcomes[0] != slotQuarantined {
		t.Fatalf("outcome = %v, want quarantined", outcomes[0])
	}
	if _, err := os.Stat(mine); !os.IsNotExist(err) {
		t.Fatalf("quarantine did not break the slot's lease: stat err = %v", err)
	}
	if _, err := os.Stat(theirs); err != nil {
		t.Fatalf("quarantine touched a foreign lease: %v", err)
	}
}

// TestSupervisorDrainsFleetOnCancel: canceling the context SIGTERMs
// every child; a worker that exits 130 on SIGTERM counts as drained
// (interrupted), never as a crash.
func TestSupervisorDrainsFleetOnCancel(t *testing.T) {
	ready := filepath.Join(t.TempDir(), "ready")
	script := fmt.Sprintf(`trap 'exit 130' TERM INT
echo up >> %q
while :; do sleep 0.05; done`, ready)
	cfg := shWorker(t, script, 2)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		defer func() { recover() }()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if data, err := os.ReadFile(ready); err == nil && strings.Count(string(data), "up") >= cfg.workers {
				cancel()
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		cancel() // give up; the test will fail on outcomes
	}()

	start := time.Now()
	outcomes := supervise(ctx, cfg)
	for slot, o := range outcomes {
		if o != slotInterrupted {
			t.Fatalf("slot %d outcome = %v, want interrupted", slot, o)
		}
	}
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Fatalf("drain took %s; SIGTERM handling looks broken", elapsed)
	}
}

// TestSupervisorFailsUnstartableCommand: a worker binary that cannot
// exec fails the slot immediately — one loud line, no restart loop.
func TestSupervisorFailsUnstartableCommand(t *testing.T) {
	cfg := shWorker(t, "exit 0", 1)
	cfg.argv = []string{filepath.Join(t.TempDir(), "no-such-binary")}
	outcomes := supervise(context.Background(), cfg)
	if outcomes[0] != slotFailed {
		t.Fatalf("outcome = %v, want failed", outcomes[0])
	}
}

// TestRestartDelayJitterBounds: the jittered backoff stays within
// [d/2, d] of the exponential value and respects the ceiling.
func TestRestartDelayJitterBounds(t *testing.T) {
	cfg := supConfig{backoff: 100 * time.Millisecond, backoffMax: 400 * time.Millisecond}
	rng := rand.New(rand.NewSource(42))
	for crashes := 1; crashes <= 6; crashes++ {
		want := cfg.backoff << (crashes - 1)
		if want > cfg.backoffMax {
			want = cfg.backoffMax
		}
		for i := 0; i < 100; i++ {
			d := restartDelay(cfg, crashes, rng)
			if d < want/2 || d > want {
				t.Fatalf("crashes=%d: delay %s outside [%s, %s]", crashes, d, want/2, want)
			}
		}
	}
}
