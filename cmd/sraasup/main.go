// Command sraasup supervises a fleet of sraaworker processes so a
// multi-process sweep survives worker crashes without a human in the
// loop. It spawns N copies of the worker command, restarts any that
// die with jittered exponential backoff, and — when a slot crashes
// too many times inside the crash window — quarantines it: the slot
// stops restarting, its shard leases are broken so surviving workers
// steal the work immediately, and the rest of the fleet keeps going.
//
//	sraasup -workers 3 -state s -shards 8 -- ./sraaworker -runs 200 -remote-store http://127.0.0.1:8178
//
// Everything after the worker command name is passed through
// verbatim; sraasup appends -state, -shards, and a per-slot -owner
// (flag packages resolve duplicates last-wins, so the supervisor's
// values govern). The owner names let quarantine know exactly whose
// leases to break.
//
// Shutdown: SIGINT/SIGTERM starts a fleet-wide graceful drain — every
// child gets SIGTERM and up to -drain to checkpoint and exit; holdouts
// are SIGKILLed. A second signal exits immediately (see
// driver.SignalContext).
//
// Exit status: 0 when the sweep's shards are all done (even if some
// slots were quarantined — the survivors finished the work); 130 when
// interrupted before completion (resumable: rerun the same command);
// 1 when the fleet stopped with the sweep incomplete.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/driver"
)

func main() {
	os.Exit(run())
}

// supConfig is the parsed supervisor configuration; split from main
// so tests drive supervise() directly with fake worker commands.
type supConfig struct {
	workers     int
	state       string
	shards      int
	maxCrashes  int
	crashWindow time.Duration
	backoff     time.Duration
	backoffMax  time.Duration
	drain       time.Duration
	logDir      string
	ownerPrefix string
	seed        int64
	argv        []string
	logf        func(format string, args ...any)
}

// slotOutcome is the terminal state of one supervised slot.
type slotOutcome int

const (
	slotDone        slotOutcome = iota // worker exited 0: its shards are done
	slotQuarantined                    // crash-looped; leases broken, not restarted
	slotInterrupted                    // drained by signal before finishing
	slotFailed                         // could not be started at all
)

func (o slotOutcome) String() string {
	switch o {
	case slotDone:
		return "done"
	case slotQuarantined:
		return "quarantined"
	case slotInterrupted:
		return "interrupted"
	default:
		return "failed"
	}
}

func run() int {
	workers := flag.Int("workers", 2, "number of worker processes to keep running")
	state := flag.String("state", "", "shared state directory (required; appended to each worker's argv)")
	shards := flag.Int("shards", 4, "shard count of the sweep (appended to each worker's argv; used for lease release and the completion check)")
	maxCrashes := flag.Int("max-crashes", 3, "crashes within -crash-window before a slot is quarantined")
	crashWindow := flag.Duration("crash-window", time.Minute, "sliding window for crash-loop detection")
	backoff := flag.Duration("backoff", 250*time.Millisecond, "base restart backoff (doubles per recent crash, jittered)")
	backoffMax := flag.Duration("backoff-max", 5*time.Second, "restart backoff ceiling")
	drain := flag.Duration("drain", 15*time.Second, "per-child grace after SIGTERM before SIGKILL during shutdown")
	logDir := flag.String("log-dir", "", "directory for per-attempt worker logs (default: children inherit stderr/stdout)")
	seed := flag.Int64("seed", 0, "seed for backoff jitter (0 = time-derived); fix it for reproducible schedules in tests")
	flag.Parse()

	if *state == "" {
		fmt.Fprintln(os.Stderr, "sraasup: -state is required")
		return 1
	}
	if *workers < 1 || *shards < 1 {
		fmt.Fprintln(os.Stderr, "sraasup: -workers and -shards must be positive")
		return 1
	}
	argv := flag.Args()
	if len(argv) == 0 {
		fmt.Fprintln(os.Stderr, "sraasup: no worker command given (usage: sraasup [flags] -- <worker> [worker flags])")
		return 1
	}
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}

	cfg := supConfig{
		workers:     *workers,
		state:       *state,
		shards:      *shards,
		maxCrashes:  *maxCrashes,
		crashWindow: *crashWindow,
		backoff:     *backoff,
		backoffMax:  *backoffMax,
		drain:       *drain,
		logDir:      *logDir,
		ownerPrefix: fmt.Sprintf("sraasup-%d", os.Getpid()),
		seed:        *seed,
		argv:        argv,
		logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "sraasup: "+format+"\n", args...)
		},
	}

	ctx, stop := driver.SignalContext()
	defer stop()

	outcomes := supervise(ctx, cfg)

	counts := map[slotOutcome]int{}
	for _, o := range outcomes {
		counts[o]++
	}
	cfg.logf("fleet finished: %d done, %d quarantined, %d interrupted, %d failed",
		counts[slotDone], counts[slotQuarantined], counts[slotInterrupted], counts[slotFailed])

	if driver.AllShardsDone(cfg.state, cfg.shards) {
		if counts[slotQuarantined] > 0 {
			cfg.logf("sweep complete despite quarantined slot(s): survivors absorbed the work")
		}
		return 0
	}
	if ctx.Err() != nil {
		driver.Resumable("sraasup", doneShards(cfg), cfg.shards, cfg.state)
		return driver.ExitInterrupted
	}
	cfg.logf("sweep incomplete: %d/%d shard(s) done", doneShards(cfg), cfg.shards)
	return 1
}

// doneShards counts completed shards for the epilogue.
func doneShards(cfg supConfig) int {
	n := 0
	for s := 0; s < cfg.shards; s++ {
		if driver.ShardDone(cfg.state, s) {
			n++
		}
	}
	return n
}

// supervise runs the fleet to completion: one goroutine per slot, no
// shared mutable state beyond the context. It returns each slot's
// terminal outcome.
func supervise(ctx context.Context, cfg supConfig) []slotOutcome {
	outcomes := make([]slotOutcome, cfg.workers)
	var wg sync.WaitGroup
	for slot := 0; slot < cfg.workers; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer func() {
				if r := recover(); r != nil {
					cfg.logf("slot %d: supervisor panic contained: %v", slot, r)
					outcomes[slot] = slotFailed
				}
				wg.Done()
			}()
			outcomes[slot] = superviseSlot(ctx, cfg, slot)
		}(slot)
	}
	wg.Wait()
	return outcomes
}

// superviseSlot keeps one worker slot alive until it finishes, crash
// loops into quarantine, or the fleet drains.
func superviseSlot(ctx context.Context, cfg supConfig, slot int) slotOutcome {
	owner := fmt.Sprintf("%s-w%d", cfg.ownerPrefix, slot)
	rng := rand.New(rand.NewSource(cfg.seed + int64(slot)))
	var crashes []time.Time
	for try := 0; ; try++ {
		if ctx.Err() != nil {
			return slotInterrupted
		}
		code, err := runWorkerOnce(ctx, cfg, slot, owner, try)
		if err != nil {
			// The command could not even start (bad path, missing
			// binary). Retrying cannot help; quarantine immediately so
			// the operator sees one loud line per slot, not a loop.
			cfg.logf("slot %d: cannot start worker: %v", slot, err)
			return slotFailed
		}
		if code == 0 {
			cfg.logf("slot %d (%s): worker finished cleanly", slot, owner)
			return slotDone
		}
		if ctx.Err() != nil {
			// Non-zero exit during a drain is the drain, not a crash:
			// workers answer SIGTERM with ExitInterrupted by contract.
			cfg.logf("slot %d (%s): drained (exit %d)", slot, owner, code)
			return slotInterrupted
		}

		// A real crash. Slide the window, then decide: restart or
		// quarantine.
		now := time.Now()
		kept := crashes[:0]
		for _, t := range crashes {
			if now.Sub(t) <= cfg.crashWindow {
				kept = append(kept, t)
			}
		}
		crashes = append(kept, now)
		if len(crashes) >= cfg.maxCrashes {
			released := driver.ReleaseShardLeases(cfg.state, cfg.shards, owner)
			cfg.logf("slot %d (%s): QUARANTINED after %d crashes in %s (exit %d); released %d lease(s)",
				slot, owner, len(crashes), cfg.crashWindow, code, released)
			return slotQuarantined
		}

		delay := restartDelay(cfg, len(crashes), rng)
		cfg.logf("slot %d (%s): worker crashed (exit %d), crash %d/%d in window; restarting in %s",
			slot, owner, code, len(crashes), cfg.maxCrashes, delay.Round(time.Millisecond))
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return slotInterrupted
		}
	}
}

// restartDelay is the jittered exponential backoff: base doubled per
// recent crash, capped, then jittered to [1/2, 1) of the cap-adjusted
// value so restarting slots do not stampede a recovering store.
func restartDelay(cfg supConfig, recentCrashes int, rng *rand.Rand) time.Duration {
	d := cfg.backoff
	for i := 1; i < recentCrashes && d < cfg.backoffMax; i++ {
		d *= 2
	}
	if d > cfg.backoffMax {
		d = cfg.backoffMax
	}
	if d <= 0 {
		return 0
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// runWorkerOnce starts one worker attempt and waits for it to exit,
// translating a fleet drain into SIGTERM + grace + SIGKILL. The
// returned int is the child's exit code; err is non-nil only when the
// process could not be started.
func runWorkerOnce(ctx context.Context, cfg supConfig, slot int, owner string, try int) (int, error) {
	args := append(append([]string{}, cfg.argv[1:]...),
		"-state", cfg.state,
		"-shards", fmt.Sprintf("%d", cfg.shards),
		"-owner", owner,
	)
	cmd := exec.Command(cfg.argv[0], args...)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if cfg.logDir != "" {
		if f, err := openAttemptLog(cfg.logDir, slot, try); err == nil {
			defer f.Close()
			cmd.Stdout, cmd.Stderr = f, f
		} else {
			cfg.logf("slot %d: cannot open attempt log (%v); inheriting stderr", slot, err)
		}
	}
	if err := cmd.Start(); err != nil {
		return 0, err
	}

	done := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- fmt.Errorf("wait panicked: %v", r)
			}
		}()
		done <- cmd.Wait()
	}()

	var werr error
	select {
	case werr = <-done:
	case <-ctx.Done():
		// Fleet drain: ask nicely, then insist.
		_ = cmd.Process.Signal(syscall.SIGTERM)
		select {
		case werr = <-done:
		case <-time.After(cfg.drain):
			cfg.logf("slot %d: worker ignored SIGTERM for %s; killing", slot, cfg.drain)
			_ = cmd.Process.Kill()
			werr = <-done
		}
	}
	if werr == nil {
		return 0, nil
	}
	if ee, ok := werr.(*exec.ExitError); ok {
		code := ee.ExitCode()
		if code < 0 {
			// Killed by signal (SIGKILL chaos, OOM): report the signal
			// as 128+n, the shell convention, so crash accounting and
			// logs stay meaningful.
			if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
				code = 128 + int(ws.Signal())
			} else {
				code = 1
			}
		}
		return code, nil
	}
	// Wait itself failed — treat as a crash with a generic code rather
	// than tearing the slot down.
	cfg.logf("slot %d: wait error: %v", slot, werr)
	return 1, nil
}

// openAttemptLog creates <log-dir>/w<slot>.try<try>.log, making the
// directory on first use.
func openAttemptLog(dir string, slot, try int) (*os.File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	//lint:ignore atomicwrite a live log stream cannot be written atomically, and a torn log is never trusted as data — it is read by humans and CI artifact uploads only
	return os.Create(filepath.Join(dir, fmt.Sprintf("w%d.try%d.log", slot, try)))
}
