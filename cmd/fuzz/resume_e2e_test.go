package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// End-to-end durability tests: a fuzz run killed mid-sweep (SIGKILL —
// no chance to clean up) or interrupted gracefully (SIGTERM) resumes
// from its -state journal and produces a byte-identical final report.

const (
	e2eN    = "400"
	e2eSeed = "7000"
)

func e2eArgs(stateDir, corpusDir string, resume bool) []string {
	args := []string{"-n", e2eN, "-seed", e2eSeed, "-jobs", "4",
		"-reduce=false", "-corpus", corpusDir, "-state", stateDir}
	if resume {
		args = append(args, "-resume")
	}
	return args
}

// startFuzz launches the binary without waiting.
func startFuzz(t *testing.T, args ...string) (*exec.Cmd, *bytes.Buffer, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(fuzzBin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd, &stdout, &stderr
}

// waitForJournal blocks until the state journal holds more than its
// header — i.e. at least one program outcome is durable — so a signal
// sent afterwards provably lands mid-sweep.
func waitForJournal(t *testing.T, stateDir string) {
	t.Helper()
	path := filepath.Join(stateDir, "checkpoint.wal")
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if fi, err := os.Stat(path); err == nil && fi.Size() > 64 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("journal never accumulated a record; cannot test mid-sweep interruption")
}

// TestKillAndResume: SIGKILL the loop mid-sweep, resume from the
// journal, and require the final report to match an uninterrupted
// run's byte for byte.
func TestKillAndResume(t *testing.T) {
	want := runFuzz(t, 0, e2eArgs(t.TempDir(), t.TempDir(), false)...)

	stateDir, corpusDir := t.TempDir(), t.TempDir()
	cmd, _, _ := startFuzz(t, e2eArgs(stateDir, corpusDir, false)...)
	waitForJournal(t, stateDir)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // SIGKILL: exit status is meaningless, the journal is the contract

	got := runFuzz(t, 0, e2eArgs(stateDir, corpusDir, true)...)
	if got != want {
		t.Fatalf("resumed report differs from uninterrupted run:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// TestSigtermGracefulResume: SIGTERM triggers the graceful path — the
// loop drains, checkpoints, reports "resumable at N/M", and exits
// 130 — and the subsequent resume still reproduces the uninterrupted
// report exactly.
func TestSigtermGracefulResume(t *testing.T) {
	want := runFuzz(t, 0, e2eArgs(t.TempDir(), t.TempDir(), false)...)

	stateDir, corpusDir := t.TempDir(), t.TempDir()
	cmd, stdout, stderr := startFuzz(t, e2eArgs(stateDir, corpusDir, false)...)
	waitForJournal(t, stateDir)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 130 {
		t.Fatalf("graceful interrupt: want exit 130, got %v\nstdout:\n%s\nstderr:\n%s",
			err, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "resumable at") {
		t.Fatalf("no resumable epilogue on stderr:\n%s", stderr.String())
	}

	got := runFuzz(t, 0, e2eArgs(stateDir, corpusDir, true)...)
	if got != want {
		t.Fatalf("resumed report differs from uninterrupted run:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}
