package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// End-to-end tests for the fuzz binary: TestMain builds it once, the
// tests exercise both modes against the checked-in corpus.

var fuzzBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "fuzz-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fuzzBin = filepath.Join(dir, "fuzz")
	if out, err := exec.Command("go", "build", "-o", fuzzBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building fuzz: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func runFuzz(t *testing.T, wantCode int, args ...string) string {
	t.Helper()
	cmd := exec.Command(fuzzBin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("fuzz %v: %v\nstderr:\n%s", args, err, stderr.String())
	}
	if code != wantCode {
		t.Fatalf("fuzz %v exited %d, want %d\nstdout:\n%s\nstderr:\n%s",
			args, code, wantCode, stdout.String(), stderr.String())
	}
	return stdout.String()
}

// TestReplayCorpus is the acceptance gate: the checked-in corpus
// replays cleanly, with byte-identical reports at -jobs 1 and 8.
func TestReplayCorpus(t *testing.T) {
	r1 := runFuzz(t, 0, "-replay", "-corpus", filepath.Join("..", "..", "corpus"), "-jobs", "1")
	r8 := runFuzz(t, 0, "-replay", "-corpus", filepath.Join("..", "..", "corpus"), "-jobs", "8")
	if r1 != r8 {
		t.Fatalf("replay output differs between -jobs 1 and 8:\n--- 1 ---\n%s--- 8 ---\n%s", r1, r8)
	}
	if !strings.Contains(r1, "replay: 3 entries, 0 failed") {
		t.Fatalf("unexpected replay summary:\n%s", r1)
	}
}

// TestFuzzSmoke runs a short fuzzing pass; the pipeline is expected to
// survive it with zero buckets.
func TestFuzzSmoke(t *testing.T) {
	dir := t.TempDir()
	out := runFuzz(t, 0, "-n", "15", "-jobs", "4", "-seed", "7000", "-corpus", dir)
	if !strings.Contains(out, "0 failure bucket(s)") {
		t.Fatalf("fuzz smoke found buckets:\n%s", out)
	}
	// No buckets → no corpus writes.
	left, _ := filepath.Glob(filepath.Join(dir, "*.repro"))
	if len(left) != 0 {
		t.Fatalf("unexpected corpus entries: %v", left)
	}
}

// TestReplayMissingCorpus: an empty or absent corpus is an error, not
// a silent pass.
func TestReplayMissingCorpus(t *testing.T) {
	runFuzz(t, 1, "-replay", "-corpus", t.TempDir())
}
