// Command fuzz is the continuous fuzzing driver for the strict-
// inequalities toolchain. In its default mode it sweeps generated
// programs through the hardened pipeline and three oracles
// (pipeline-panic capture, interpreter-differential soundness,
// sanitizer verdict refutation), buckets findings by normalized
// signature, minimizes each bucket's witness with delta debugging,
// and persists one self-describing repro file per bucket to the
// regression corpus.
//
// Usage:
//
//	fuzz [-n N | -duration D] [-seed S] [-jobs J] [-corpus DIR]
//	fuzz -replay [-corpus DIR] [-jobs J]
//
// With -replay it becomes a regression gate: every corpus entry is
// re-run and checked against its expect: clause (clean entries must
// stay clean, planted bugs must stay detected, recorded failures
// must still reproduce). The replay report is byte-identical at any
// -jobs value. Exit status is non-zero when fuzzing found buckets or
// replay failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/budget"
	"repro/internal/driver"
	"repro/internal/fuzz"
)

func main() {
	os.Exit(run())
}

func run() int {
	n := flag.Int("n", 200, "number of programs to generate (ignored with -replay)")
	duration := flag.Duration("duration", 0, "stop after this wall-clock time instead of a fixed count")
	seed := flag.Int64("seed", 1, "first generator seed; program i uses seed+i")
	jobs := flag.Int("jobs", runtime.NumCPU(), "concurrent oracle runs (reports are byte-identical at any value)")
	corpus := flag.String("corpus", "corpus", "regression corpus directory")
	replay := flag.Bool("replay", false, "replay the corpus as a regression gate instead of fuzzing")
	doReduce := flag.Bool("reduce", true, "minimize each new bucket's witness before persisting")
	timeout := flag.Duration("timeout", 30*time.Second, "per-stage pipeline deadline")
	maxSteps := flag.Int("max-steps", 2_000_000, "per-solve worklist step cap (0 = unlimited)")
	reduceTimeout := flag.Duration("reduce-timeout", 2*time.Minute, "wall-clock cap per minimization")
	stateDir := flag.String("state", "", "checkpoint directory: journal per-program outcomes so a killed run can resume")
	resume := flag.Bool("resume", false, "with -state: reuse the existing journal, skipping programs it already covers")
	cacheDir := flag.String("persist-cache", "", "durable per-function memo store directory (engages only with -timeout 0 -max-steps 0)")
	flag.Parse()

	cache, err := driver.OpenCache(false, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if cache != nil && (*timeout != 0 || *maxSteps != 0) {
		fmt.Fprintln(os.Stderr, "fuzz: note: -persist-cache is bypassed on budgeted runs; add -timeout 0 -max-steps 0 to engage it")
	}
	opt := fuzz.Options{Timeout: *timeout, MaxSteps: *maxSteps, Cache: cache}

	if *replay {
		entries, err := fuzz.ReadCorpus(*corpus)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if len(entries) == 0 {
			fmt.Fprintf(os.Stderr, "fuzz: no corpus entries under %s\n", *corpus)
			return 1
		}
		res := fuzz.Replay(entries, *jobs, opt)
		fmt.Print(res.Report)
		if !res.Ok() {
			return 1
		}
		return 0
	}

	ctx, stop := driver.SignalContext()
	defer stop()

	loopOpt := fuzz.LoopOptions{
		N:            *n,
		Duration:     *duration,
		Seed:         *seed,
		Jobs:         *jobs,
		CorpusDir:    *corpus,
		Reduce:       *doReduce,
		ReduceBudget: budget.Spec{Timeout: *reduceTimeout},
		Check:        opt,
		Log:          os.Stderr,
	}
	if *stateDir != "" {
		ck, err := driver.OpenState(*stateDir, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer ck.Close()
		loopOpt.State = ck
	}
	res, err := fuzz.LoopCtx(ctx, loopOpt)
	if res != nil && res.Interrupted {
		// The journal is flushed record by record; everything counted
		// in Completed survives the exit.
		if *stateDir != "" {
			driver.Resumable("fuzz", res.Completed, *n, *stateDir)
		} else {
			fmt.Fprintf(os.Stderr, "fuzz: interrupted at %d/%d; rerun with -state DIR to make runs resumable\n",
				res.Completed, *n)
		}
		return driver.ExitInterrupted
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if cache != nil {
		fmt.Fprintf(os.Stderr, "cache: %s\n", cache.Stats())
	}
	if res.Replayed > 0 {
		fmt.Fprintf(os.Stderr, "fuzz: resumed; %d of %d program(s) replayed from the journal\n",
			res.Replayed, res.Ran)
	}
	fmt.Printf("fuzz: %d programs, %d oracle checks, %d planted bugs detected, %d failure bucket(s)\n",
		res.Ran, res.Checks, res.Detections, len(res.Buckets))
	for _, b := range res.Buckets {
		loc := b.Path
		if loc == "" {
			loc = "(not persisted)"
		}
		fmt.Printf("  %-12s %s  x%d  %s\n", b.Oracle, b.Signature, b.Count, loc)
	}
	if len(res.Buckets) > 0 {
		return 1
	}
	return 0
}
