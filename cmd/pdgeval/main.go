// Command pdgeval reproduces the paper's applicability experiment
// (Section 4.3, Figure 12): it generates 120 Csmith-style random
// programs — 20 for each pointer nesting depth from 2 to 7 — builds
// the Program Dependence Graph of each with BA alone and with BA+LT,
// and reports memory-node counts. More memory nodes mean a more
// precise graph. The paper reports 1,299 total nodes for BA and 8,114
// for BA+LT (6.23x) over its 120 programs.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/alias"
	"repro/internal/core"
	"repro/internal/csmith"
	"repro/internal/minic"
	"repro/internal/pdg"
)

func main() {
	perDepth := flag.Int("per-depth", 20, "programs per pointer nesting depth")
	minDepth := flag.Int("min-depth", 2, "minimum pointer nesting depth")
	maxDepth := flag.Int("max-depth", 7, "maximum pointer nesting depth")
	stmts := flag.Int("stmts", 120, "statements per generated program")
	csv := flag.Bool("csv", false, "emit CSV")
	flag.Parse()

	if *csv {
		fmt.Println("program,depth,ba_nodes,balt_nodes")
	} else {
		fmt.Printf("%-16s %6s %10s %10s\n", "program", "depth", "BA", "BA+LT")
	}
	totBA, totBoth := 0, 0
	perDepthBA := map[int]int{}
	perDepthBoth := map[int]int{}
	count := 0
	for depth := *minDepth; depth <= *maxDepth; depth++ {
		for i := 0; i < *perDepth; i++ {
			seed := int64(depth*1000 + i)
			src := csmith.Generate(csmith.Config{
				Seed: seed, MaxPtrDepth: depth, Stmts: *stmts,
			})
			name := fmt.Sprintf("rand-d%d-%02d", depth, i)
			m, err := minic.Compile(name, src)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
			prep := core.Prepare(m, core.PipelineOptions{})
			// FlowTracker queries dependences without access sizes and
			// per function, so BA runs at allocation-site granularity
			// (Section 4.3); the sraa bundle keeps its range support.
			ba := alias.NewBasic(m)
			ba.UnknownSizes = true
			ba.Intraprocedural = true
			both := alias.NewChain(ba, alias.NewSRAAWithRanges(prep.LT, prep.Ranges))
			gBA := pdg.Build(m, ba)
			gBoth := pdg.Build(m, both)
			totBA += gBA.MemNodes
			totBoth += gBoth.MemNodes
			perDepthBA[depth] += gBA.MemNodes
			perDepthBoth[depth] += gBoth.MemNodes
			count++
			if *csv {
				fmt.Printf("%s,%d,%d,%d\n", name, depth, gBA.MemNodes, gBoth.MemNodes)
			} else {
				fmt.Printf("%-16s %6d %10d %10d\n", name, depth, gBA.MemNodes, gBoth.MemNodes)
			}
		}
	}
	fmt.Printf("\nprograms: %d\n", count)
	fmt.Println("\naverage memory nodes per depth bucket:")
	for depth := *minDepth; depth <= *maxDepth; depth++ {
		n := *perDepth
		fmt.Printf("  depth %d: BA %6.1f   BA+LT %6.1f\n",
			depth, float64(perDepthBA[depth])/float64(n),
			float64(perDepthBoth[depth])/float64(n))
	}
	fmt.Printf("\ntotal memory nodes: BA %d, BA+LT %d  (%.2fx)\n",
		totBA, totBoth, float64(totBoth)/float64(totBA))
	fmt.Println("paper: BA 1,299, BA+LT 8,114 (6.23x) on its 120 Csmith programs")
}
