int g[10];
int h[10];

void fill(int* v, int n) {
  int i, j;
  for (i = 0; i < n - 1; i++) {
    for (j = i + 1; j < n; j++) {
      if (v[i] > v[j]) {
        int tmp = v[i];
        v[i] = v[j];
        v[j] = tmp;
      }
    }
  }
}

int sum(int* v, int n) {
  int i, j, s;
  s = 0;
  for (i = 0; i < n - 1; i++) {
    j = i + 1;
    s = s + v[i] - v[j];
  }
  return s;
}

int main() {
  g[0] = 5; g[1] = 1; g[2] = 9; g[3] = 3; g[4] = 7;
  h[0] = 2; h[1] = 8; h[2] = 0; h[3] = 6; h[4] = 4;
  fill(g, 10);
  fill(h, 10);
  return sum(g, 10) + sum(h, 10);
}
