// Command sraa is the user-facing driver for the strict-inequalities
// toolchain, mirroring the paper artifact's compile.sh/sraa.sh
// scripts: it compiles a mini-C source file (or parses a textual IR
// file), runs the e-SSA construction, range analysis and the
// less-than analysis, and reports whatever combination of outputs is
// requested — the transformed IR, the LT sets, and an aa-eval style
// alias report comparing BA, LT and BA+LT (plus ST and CF on request).
//
// Usage:
//
//	sraa [flags] file.c
//	sraa [flags] -ir file.ir
//
// With no flags, the alias report is printed.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/alias"
	"repro/internal/driver"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/persist"
)

func main() {
	irInput := flag.Bool("ir", false, "input is textual IR rather than mini-C")
	dumpIR := flag.Bool("dump-ir", false, "print the module after e-SSA construction")
	dumpLT := flag.Bool("lt", false, "print the non-empty LT sets")
	dumpRanges := flag.Bool("ranges", false, "print the non-trivial integer ranges")
	withCF := flag.Bool("cf", false, "include the Andersen-style CF analysis in the report")
	withST := flag.Bool("steens", false, "include the Steensgaard-style unification analysis (ST) in the report")
	dot := flag.Bool("dot", false, "print the inequality graph in Graphviz syntax (transitively reduced)")
	optimize := flag.Bool("O", false, "run the alias-driven optimizations (constant folding, redundant-load and dead-store elimination) and report what they removed")
	interproc := flag.Bool("interproc", false, "enable the inter-procedural parameter facts of Section 4")
	noReport := flag.Bool("no-report", false, "suppress the alias report")
	timeout := flag.Duration("timeout", 0, "per-stage analysis deadline (0 = unlimited); exhausted stages degrade to sound conservative answers")
	maxIters := flag.Int("max-iters", 0, "per-solve worklist step cap (0 = unlimited)")
	strict := flag.Bool("strict", false, "abort on the first contained failure instead of degrading")
	jobs := flag.Int("jobs", runtime.NumCPU(), "worker count for the per-function pipeline stages (results are identical at any value)")
	useCache := flag.Bool("cache", false, "memoize per-function less-than solves by content hash; stats go to stderr")
	cacheDir := flag.String("persist-cache", "", "durable memo store directory: per-function solves persist across sraa runs; stats go to stderr")
	outPath := flag.String("o", "", "write the report to this file instead of stdout (atomic: complete file or no file, never a torn one)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sraa [flags] file.c")
		flag.PrintDefaults()
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))

	// All report output funnels through one writer: stdout normally,
	// a buffer flushed atomically to -o so a crash or signal mid-run
	// can never leave a torn report behind.
	var out io.Writer = os.Stdout
	var buf bytes.Buffer
	if *outPath != "" {
		out = &buf
	}

	cache, err := driver.OpenCache(*useCache, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p := harness.New(harness.Config{
		Timeout:         *timeout,
		MaxSteps:        *maxIters,
		Strict:          *strict,
		Interprocedural: *interproc,
		WithCF:          *withCF,
		WithST:          *withST,
		Jobs:            *jobs,
		Cache:           cache,
	})
	var m *ir.Module
	if *irInput {
		m, err = p.ParseIR(string(src))
	} else {
		m, err = p.Compile(name, string(src))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *optimize {
		folded := 0
		for _, f := range m.Funcs {
			folded += opt.FoldConstants(f)
		}
		fmt.Fprintf(out, "constant folding removed %d instructions\n", folded)
	}

	res, err := p.Analyze(m)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prep := res

	if *optimize {
		aa := alias.NewChain(alias.NewBasic(m), alias.NewSRAA(prep.LT))
		loads, stores := 0, 0
		for _, f := range m.Funcs {
			loads += opt.EliminateRedundantLoads(f, aa)
			stores += opt.EliminateDeadStores(f, aa)
		}
		fmt.Fprintf(out, "BA+LT enabled removal of %d redundant loads, %d dead stores\n",
			loads, stores)
	}

	if *dumpIR {
		fmt.Fprintln(out, m)
	}
	if *dumpRanges {
		fmt.Fprintln(out, "integer ranges:")
		for _, f := range m.Funcs {
			for _, v := range f.Values() {
				if !ir.IsInt(v.Type()) {
					continue
				}
				iv := prep.Ranges.Range(v)
				if iv.IsTop() {
					continue
				}
				fmt.Fprintf(out, "  @%s: R(%s) = %s\n", f.FName, v.Ref(), iv)
			}
		}
	}
	if *dumpLT {
		fmt.Fprintln(out, "less-than sets (non-empty):")
		for _, f := range m.Funcs {
			for _, v := range prep.LT.VarsOf(f) {
				set := prep.LT.LT(v)
				if len(set) == 0 {
					continue
				}
				var names []string
				for _, w := range set {
					names = append(names, w.Ref())
				}
				fmt.Fprintf(out, "  @%s: LT(%s) = {%s}\n",
					f.FName, v.Ref(), strings.Join(names, ", "))
			}
		}
	}
	if *dot {
		for _, f := range m.Funcs {
			fmt.Fprint(out, prep.LT.DotInequalityGraph(f, true))
		}
	}
	if !*noReport {
		ba := alias.NewBasic(m)
		lt := alias.NewSRAA(prep.LT)
		analyses := []alias.Analysis{ba, lt, alias.NewChain(ba, lt)}
		if *withST {
			analyses = append(analyses, prep.ST)
		}
		if *withCF {
			analyses = append(analyses, prep.CF, alias.NewChain(ba, prep.CF))
		}
		fmt.Fprint(out, res.Evaluate(analyses...))
	}
	if *outPath != "" {
		if err := persist.AtomicWriteFile(*outPath, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if cache != nil {
		fmt.Fprintf(os.Stderr, "cache: %s\n", cache.Stats())
	}
	if rep := p.Report(); !rep.Ok() {
		fmt.Fprint(os.Stderr, rep)
		if *strict {
			os.Exit(1)
		}
	}
}
