// Command sraa is the user-facing driver for the strict-inequalities
// toolchain, mirroring the paper artifact's compile.sh/sraa.sh
// scripts: it compiles a mini-C source file (or parses a textual IR
// file), runs the e-SSA construction, range analysis and the
// less-than analysis, and reports whatever combination of outputs is
// requested — the transformed IR, the LT sets, and an aa-eval style
// alias report comparing BA, LT and BA+LT.
//
// Usage:
//
//	sraa [flags] file.c
//	sraa [flags] -ir file.ir
//
// With no flags, the alias report is printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/alias"
	"repro/internal/andersen"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/opt"
)

func main() {
	irInput := flag.Bool("ir", false, "input is textual IR rather than mini-C")
	dumpIR := flag.Bool("dump-ir", false, "print the module after e-SSA construction")
	dumpLT := flag.Bool("lt", false, "print the non-empty LT sets")
	dumpRanges := flag.Bool("ranges", false, "print the non-trivial integer ranges")
	withCF := flag.Bool("cf", false, "include the Andersen-style CF analysis in the report")
	dot := flag.Bool("dot", false, "print the inequality graph in Graphviz syntax (transitively reduced)")
	optimize := flag.Bool("O", false, "run the alias-driven optimizations (constant folding, redundant-load and dead-store elimination) and report what they removed")
	interproc := flag.Bool("interproc", false, "enable the inter-procedural parameter facts of Section 4")
	noReport := flag.Bool("no-report", false, "suppress the alias report")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sraa [flags] file.c")
		flag.PrintDefaults()
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))

	var m *ir.Module
	if *irInput {
		m, err = ir.Parse(string(src))
	} else {
		m, err = minic.Compile(name, string(src))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *optimize {
		folded := 0
		for _, f := range m.Funcs {
			folded += opt.FoldConstants(f)
		}
		fmt.Printf("constant folding removed %d instructions\n", folded)
	}

	prep := core.Prepare(m, core.PipelineOptions{Interprocedural: *interproc})

	if *optimize {
		aa := alias.NewChain(alias.NewBasic(m), alias.NewSRAA(prep.LT))
		loads, stores := 0, 0
		for _, f := range m.Funcs {
			loads += opt.EliminateRedundantLoads(f, aa)
			stores += opt.EliminateDeadStores(f, aa)
		}
		fmt.Printf("BA+LT enabled removal of %d redundant loads, %d dead stores\n",
			loads, stores)
	}

	if *dumpIR {
		fmt.Println(m)
	}
	if *dumpRanges {
		fmt.Println("integer ranges:")
		for _, f := range m.Funcs {
			for _, v := range f.Values() {
				if !ir.IsInt(v.Type()) {
					continue
				}
				iv := prep.Ranges.Range(v)
				if iv.IsTop() {
					continue
				}
				fmt.Printf("  @%s: R(%s) = %s\n", f.FName, v.Ref(), iv)
			}
		}
	}
	if *dumpLT {
		fmt.Println("less-than sets (non-empty):")
		for _, f := range m.Funcs {
			for _, v := range prep.LT.VarsOf(f) {
				set := prep.LT.LT(v)
				if len(set) == 0 {
					continue
				}
				var names []string
				for _, w := range set {
					names = append(names, w.Ref())
				}
				fmt.Printf("  @%s: LT(%s) = {%s}\n",
					f.FName, v.Ref(), strings.Join(names, ", "))
			}
		}
	}
	if *dot {
		for _, f := range m.Funcs {
			fmt.Print(prep.LT.DotInequalityGraph(f, true))
		}
	}
	if !*noReport {
		ba := alias.NewBasic(m)
		lt := alias.NewSRAA(prep.LT)
		analyses := []alias.Analysis{ba, lt, alias.NewChain(ba, lt)}
		if *withCF {
			cf := andersen.Analyze(m)
			analyses = append(analyses, cf, alias.NewChain(ba, cf))
		}
		fmt.Print(alias.Evaluate(m, analyses...))
	}
}
