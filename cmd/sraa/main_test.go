package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// End-to-end tests for the sraa binary: TestMain builds it once, the
// tests run it on testdata fixtures and golden-compare stdout.
// Regenerate goldens with: go test ./cmd/sraa -run Golden -update

var update = flag.Bool("update", false, "rewrite golden files from current output")

var sraaBin string

func TestMain(m *testing.M) {
	flag.Parse()
	dir, err := os.MkdirTemp("", "sraa-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sraaBin = filepath.Join(dir, "sraa")
	if out, err := exec.Command("go", "build", "-o", sraaBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building sraa: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// runSraa executes the built binary and returns its stdout; stderr is
// tolerated (degradation notes, cache stats) but a non-zero exit is
// fatal.
func runSraa(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command(sraaBin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("sraa %v: %v\nstderr:\n%s", args, err, stderr.String())
	}
	return stdout.String()
}

func checkGolden(t *testing.T, golden, got string) {
	t.Helper()
	path := filepath.Join("testdata", golden)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s (regenerate with -update if intended):\n--- want ---\n%s\n--- got ---\n%s",
			path, want, got)
	}
}

func TestReportGolden(t *testing.T) {
	got := runSraa(t, filepath.Join("testdata", "sort.c"))
	checkGolden(t, "sort.report.golden", got)
}

func TestDumpGolden(t *testing.T) {
	got := runSraa(t, "-no-report", "-lt", "-ranges", filepath.Join("testdata", "sort.c"))
	checkGolden(t, "sort.dump.golden", got)
}

func TestInterprocGolden(t *testing.T) {
	got := runSraa(t, "-interproc", filepath.Join("testdata", "sort.c"))
	checkGolden(t, "sort.interproc.golden", got)
}

// TestJobsEquivalence: the observable output is byte-identical
// whatever the worker count, with and without the memo cache.
func TestJobsEquivalence(t *testing.T) {
	src := filepath.Join("testdata", "sort.c")
	base := runSraa(t, "-jobs", "1", "-dump-ir", "-lt", "-ranges", "-cf", src)
	for _, extra := range [][]string{
		{"-jobs", "4"},
		{"-jobs", "8", "-cache"},
	} {
		args := append(append([]string{}, extra...), "-dump-ir", "-lt", "-ranges", "-cf", src)
		if got := runSraa(t, args...); got != base {
			t.Fatalf("sraa %v output differs from -jobs 1", extra)
		}
	}
}

// TestOutputFileMatchesStdout: -o routes the identical report through
// the atomic writer instead of stdout.
func TestOutputFileMatchesStdout(t *testing.T) {
	src := filepath.Join("testdata", "sort.c")
	want := runSraa(t, "-lt", "-ranges", src)
	path := filepath.Join(t.TempDir(), "nested", "report.txt")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if got := runSraa(t, "-lt", "-ranges", "-o", path, src); got != "" {
		t.Errorf("-o run still wrote to stdout:\n%s", got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != want {
		t.Errorf("-o file differs from stdout run:\n--- file ---\n%s\n--- stdout ---\n%s", data, want)
	}
	// No temp droppings next to the report.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("expected only report.txt in output dir, got %d entries", len(entries))
	}
}
