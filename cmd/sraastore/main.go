// Command sraastore serves a content-addressed artifact store over
// HTTP: the shared durable memo tier of a distributed sweep. Workers
// point their remote cache client (-remote-store on the sweep
// drivers) at it; records travel in the same self-validating wire
// format they live in on disk, so clients CRC-check every fetch end
// to end.
//
// Endpoints:
//
//	GET  /art/{key}   one record, raw bytes (404 on miss)
//	POST /art/batch   {"keys":[...]} -> {"records":{key: base64}}
//	PUT  /art/{key}   conditional install (validated, idempotent)
//	GET  /keys        sorted key list
//	GET  /healthz     liveness + load
//	GET  /stats       counters incl. quarantines and disk errors
//
// Admission mirrors sraad: overload sheds with 429 + Retry-After,
// never a 5xx; -mem-limit adds a heap high-watermark that sheds
// before the OOM killer gets a vote. -inject-fault arms the
// deterministic chaos middleware (drops, delays, truncated bodies,
// bit flips, 429/500 storms) for fault drills — never set it in
// production; -inject-diskfull likewise fakes ENOSPC to drill the
// read-only degradation.
//
// Replication: give every node -self (its advertised URL), -peers
// (the others), and -role primary on exactly one of them. Replicas
// serve reads, answer puts with 421 + the primary's URL, pull missing
// records continuously, and elect a replacement (smallest URL wins)
// when the primary goes silent past -failover-after. See
// internal/persist/replica.
//
// Shutdown: first SIGINT/SIGTERM drains within -drain and exits 0;
// a second signal exits 130 immediately.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/driver"
	"repro/internal/persist"
	"repro/internal/persist/remote"
	"repro/internal/persist/replica"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8178", "listen address (host:port; port 0 picks a free port)")
	dir := flag.String("dir", "artifacts", "artifact store directory (created if missing; corrupt records quarantined at open)")
	inflight := flag.Int("inflight", 64, "max concurrently served requests")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4×inflight, negative = no queue)")
	queueWait := flag.Duration("queue-wait", time.Second, "max time a queued request waits for a slot before being shed")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint attached to shed (429) responses")
	drain := flag.Duration("drain", 10*time.Second, "graceful-drain deadline after SIGINT/SIGTERM")
	memLimit := flag.Int64("mem-limit", 0, "heap high-watermark in bytes: past it requests shed with 429 (0 = disabled)")
	role := flag.String("role", "", "replication role: primary or replica (empty = standalone, no replication)")
	self := flag.String("self", "", "this node's advertised base URL, e.g. http://127.0.0.1:8178 (required with -role; must match peers' -peers spelling)")
	peers := flag.String("peers", "", "comma-separated advertised URLs of the other replica-set nodes")
	replicateEvery := flag.Duration("replicate-interval", 500*time.Millisecond, "pull-replication and role-poll cadence")
	failoverAfter := flag.Duration("failover-after", 5*time.Second, "replica promotes itself after the primary is silent this long")
	injectFault := flag.String("inject-fault", "", "testing only: chaos spec, e.g. drop=0.1,delay=50ms:0.2,truncate=0.05,flip=0.05,429=0.2,500=0.1,seed=7")
	injectDiskFull := flag.Int("inject-diskfull", 0, "testing only: every put after the first N fails with a fake ENOSPC, flipping the store read-only")
	flag.Parse()

	fault, err := remote.ParseFaultSpec(*injectFault)
	if err != nil {
		fatal(err)
	}
	if fault != nil {
		fmt.Fprintf(os.Stderr, "sraastore: FAULT INJECTION ACTIVE: %s\n", fault)
	}

	st, err := persist.OpenStore(*dir)
	if err != nil {
		fatal(err)
	}
	if qs := st.Stats(); qs.Quarantined > 0 {
		fmt.Fprintf(os.Stderr, "sraastore: quarantined %d corrupt record(s) at open\n", qs.Quarantined)
	}
	if *injectDiskFull > 0 {
		st.InjectDiskFullAfter(*injectDiskFull)
		fmt.Fprintf(os.Stderr, "sraastore: DISK-FULL INJECTION ACTIVE: puts fail after %d\n", *injectDiskFull)
	}

	srv := remote.NewStoreServer(st, remote.ServerConfig{
		InFlight:   *inflight,
		Queue:      *queue,
		QueueWait:  *queueWait,
		RetryAfter: *retryAfter,
		MemLimit:   uint64(*memLimit),
		Fault:      fault,
	})

	ctx, stop := driver.SignalContext()
	defer stop()

	handler := http.Handler(srv.Handler())
	var node *replica.Node
	if *role != "" {
		if *role != string(replica.RolePrimary) && *role != string(replica.RoleReplica) {
			fatal(fmt.Errorf("-role must be %q or %q, got %q", replica.RolePrimary, replica.RoleReplica, *role))
		}
		if *self == "" {
			fatal(fmt.Errorf("-self is required with -role (peers redirect puts to this URL)"))
		}
		node, err = replica.Open(replica.Config{
			Store:             st,
			Self:              *self,
			Peers:             splitList(*peers),
			Role:              replica.Role(*role),
			ReplicateInterval: *replicateEvery,
			FailoverAfter:     *failoverAfter,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "sraastore: "+format+"\n", args...)
			},
		})
		if err != nil {
			fatal(err)
		}
		handler = node.Middleware(handler)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					fmt.Fprintf(os.Stderr, "sraastore: replication loop panic contained: %v\n", r)
				}
			}()
			node.Run(ctx)
		}()
		r, epoch := node.Role()
		fmt.Fprintf(os.Stderr, "sraastore: replication on: %s at epoch %d, self %s, %d peer(s)\n",
			r, epoch, *self, len(splitList(*peers)))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The "listening on" line carries the resolved port for wrappers
	// that pass port 0.
	fmt.Fprintf(os.Stderr, "sraastore: listening on %s (%d records)\n", ln.Addr(), st.Len())

	err = srv.ServeHandler(ctx, ln, *drain, handler)

	snap := srv.Snapshot()
	if data, jerr := json.Marshal(snap); jerr == nil {
		fmt.Fprintf(os.Stderr, "sraastore: final stats %s\n", data)
	}
	if node != nil {
		fmt.Fprintf(os.Stderr, "sraastore: replication %s\n", node.Stats().StatsLine())
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sraastore: drained cleanly (%d requests, %d hits, %d installs, %d shed)\n",
		snap.Requests, snap.Hits, snap.Installs, snap.Shed)
}

// splitList parses a comma-separated URL list, dropping empties so a
// trailing comma or an unset flag is harmless.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sraastore:", err)
	os.Exit(1)
}
