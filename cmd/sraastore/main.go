// Command sraastore serves a content-addressed artifact store over
// HTTP: the shared durable memo tier of a distributed sweep. Workers
// point their remote cache client (-remote-store on the sweep
// drivers) at it; records travel in the same self-validating wire
// format they live in on disk, so clients CRC-check every fetch end
// to end.
//
// Endpoints:
//
//	GET  /art/{key}   one record, raw bytes (404 on miss)
//	POST /art/batch   {"keys":[...]} -> {"records":{key: base64}}
//	PUT  /art/{key}   conditional install (validated, idempotent)
//	GET  /keys        sorted key list
//	GET  /healthz     liveness + load
//	GET  /stats       counters incl. quarantines and disk errors
//
// Admission mirrors sraad: overload sheds with 429 + Retry-After,
// never a 5xx. -inject-fault arms the deterministic chaos middleware
// (drops, delays, truncated bodies, bit flips, 429/500 storms) for
// fault drills — never set it in production.
//
// Shutdown: first SIGINT/SIGTERM drains within -drain and exits 0;
// a second signal exits 130 immediately.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/driver"
	"repro/internal/persist"
	"repro/internal/persist/remote"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8178", "listen address (host:port; port 0 picks a free port)")
	dir := flag.String("dir", "artifacts", "artifact store directory (created if missing; corrupt records quarantined at open)")
	inflight := flag.Int("inflight", 64, "max concurrently served requests")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4×inflight, negative = no queue)")
	queueWait := flag.Duration("queue-wait", time.Second, "max time a queued request waits for a slot before being shed")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint attached to shed (429) responses")
	drain := flag.Duration("drain", 10*time.Second, "graceful-drain deadline after SIGINT/SIGTERM")
	injectFault := flag.String("inject-fault", "", "testing only: chaos spec, e.g. drop=0.1,delay=50ms:0.2,truncate=0.05,flip=0.05,429=0.2,500=0.1,seed=7")
	flag.Parse()

	fault, err := remote.ParseFaultSpec(*injectFault)
	if err != nil {
		fatal(err)
	}
	if fault != nil {
		fmt.Fprintf(os.Stderr, "sraastore: FAULT INJECTION ACTIVE: %s\n", fault)
	}

	st, err := persist.OpenStore(*dir)
	if err != nil {
		fatal(err)
	}
	if qs := st.Stats(); qs.Quarantined > 0 {
		fmt.Fprintf(os.Stderr, "sraastore: quarantined %d corrupt record(s) at open\n", qs.Quarantined)
	}

	srv := remote.NewStoreServer(st, remote.ServerConfig{
		InFlight:   *inflight,
		Queue:      *queue,
		QueueWait:  *queueWait,
		RetryAfter: *retryAfter,
		Fault:      fault,
	})

	ctx, stop := driver.SignalContext()
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The "listening on" line carries the resolved port for wrappers
	// that pass port 0.
	fmt.Fprintf(os.Stderr, "sraastore: listening on %s (%d records)\n", ln.Addr(), st.Len())

	err = srv.Serve(ctx, ln, *drain)

	snap := srv.Snapshot()
	if data, jerr := json.Marshal(snap); jerr == nil {
		fmt.Fprintf(os.Stderr, "sraastore: final stats %s\n", data)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sraastore: drained cleanly (%d requests, %d hits, %d installs, %d shed)\n",
		snap.Requests, snap.Hits, snap.Installs, snap.Shed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sraastore:", err)
	os.Exit(1)
}
