// Command sraabench drives a running sraad daemon with a concurrent
// burst of analysis requests and reports outcome counts, latency
// percentiles, and the server-side cache hit rate over the run.
//
// Usage:
//
//	sraabench -addr http://127.0.0.1:8177 -n 200 -c 16
//
// With -store the target is an artifact store (sraastore) instead:
// the bench walks the store's key list with batched multi-gets and
// CRC-revalidates every returned record, so it doubles as a wire
// integrity check:
//
//	sraabench -store -addr http://127.0.0.1:8178 -n 200 -c 16 -batch 64
//
// Shed responses (429) are retried with jittered exponential backoff
// that honors the server's Retry-After hint; a request that is still
// shed after -retries attempts counts as "shed", not as a failure.
// Exit status: 0 on success (sheds included), 1 if any request got no
// answer at all (transport failure after retries), 2 if the server
// ever returned a 5xx — the daemon promises never to — and, with
// -store, 3 if any returned record failed validation.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/budget"
	"repro/internal/corpus"
	"repro/internal/persist"
	"repro/internal/serve"
)

type outcome int

const (
	outOK outcome = iota
	outDegraded
	outShed      // 429 after all retries
	outBad       // 4xx other than 429
	outServerErr // 5xx: the daemon broke its contract
	outFailed    // no HTTP answer at all
)

type result struct {
	outcome outcome
	latency time.Duration // successful attempt only
	retries int
	sheds   int // per-attempt 429s, including retried ones
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8177", "sraad base URL")
	n := flag.Int("n", 200, "total requests")
	c := flag.Int("c", 16, "concurrent workers")
	programs := flag.Int("programs", 8, "distinct corpus programs to cycle through")
	queries := flag.String("queries", "alias", "comma-separated queries: lt,alias,sanitize")
	interproc := flag.Bool("interproc", false, "request interprocedural analysis")
	budgetTimeout := flag.Duration("budget-timeout", 0, "per-request budget wall clock (0 = server default)")
	budgetSteps := flag.Int("budget-steps", 0, "per-request budget solver steps (0 = server default)")
	retries := flag.Int("retries", 3, "retry attempts after a shed or transport error")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "base backoff, doubled per retry with jitter")
	attemptTimeout := flag.Duration("attempt-timeout", 10*time.Second, "HTTP timeout per attempt")
	seed := flag.Int64("seed", 1, "jitter seed")
	out := flag.String("o", "", "also write the report to this file (atomic)")
	store := flag.Bool("store", false, "bench an artifact store (sraastore) with batched gets instead of an analysis daemon")
	batch := flag.Int("batch", 64, "with -store: keys per batched get")
	flag.Parse()

	if *n <= 0 || *c <= 0 || *programs <= 0 {
		fmt.Fprintln(os.Stderr, "sraabench: -n, -c, and -programs must be positive")
		os.Exit(1)
	}
	if *store {
		if *batch <= 0 {
			fmt.Fprintln(os.Stderr, "sraabench: -batch must be positive")
			os.Exit(1)
		}
		os.Exit(runStoreBench(*addr, *n, *c, *batch, *retries, *backoff, *attemptTimeout, *seed, *out))
	}

	suite := corpus.TestSuite(*programs)
	if len(suite) == 0 {
		fmt.Fprintln(os.Stderr, "sraabench: empty corpus")
		os.Exit(1)
	}
	var qs []string
	for _, q := range strings.Split(*queries, ",") {
		if q = strings.TrimSpace(q); q != "" {
			qs = append(qs, q)
		}
	}
	var spec *budget.Spec
	if *budgetTimeout > 0 || *budgetSteps > 0 {
		spec = &budget.Spec{Timeout: *budgetTimeout, MaxSteps: *budgetSteps}
	}

	client := &http.Client{}
	before := fetchStats(client, *addr)

	results := make([]result, *n)
	var next int64
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(worker)))
			for {
				mu.Lock()
				i := int(next)
				next++
				mu.Unlock()
				if i >= *n {
					return
				}
				prog := suite[i%len(suite)]
				req := serve.Request{
					Name:      prog.Name,
					Lang:      serve.LangMiniC,
					Source:    prog.Source,
					Queries:   qs,
					Interproc: *interproc,
					Budget:    spec,
				}
				func() {
					// Containment: a panic in the request path must
					// not kill the other workers mid-run; the slot
					// counts as a transport failure and the bench
					// exits non-zero through the normal tally.
					defer func() {
						if r := recover(); r != nil {
							results[i] = result{outcome: outFailed}
						}
					}()
					results[i] = oneRequest(client, *addr, req, *retries, *backoff, *attemptTimeout, rng)
				}()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	after := fetchStats(client, *addr)

	report := render(results, elapsed, *c, before, after)
	fmt.Print(report)
	if *out != "" {
		if err := persist.AtomicWriteFile(*out, []byte(report), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sraabench:", err)
			os.Exit(1)
		}
	}

	var code int
	for _, r := range results {
		switch r.outcome {
		case outServerErr:
			code = 2
		case outFailed:
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

// oneRequest runs one logical request through the retry loop.
func oneRequest(client *http.Client, addr string, req serve.Request, retries int, base, attemptTimeout time.Duration, rng *rand.Rand) result {
	body, err := json.Marshal(req)
	if err != nil {
		return result{outcome: outFailed}
	}
	var res result
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		status, resp, retryAfter, err := postAnalyze(client, addr, body, attemptTimeout)
		switch {
		case err == nil && status == http.StatusOK:
			res.latency = time.Since(t0)
			if resp != nil && resp.Degraded {
				res.outcome = outDegraded
			} else {
				res.outcome = outOK
			}
			return res
		case err == nil && status == http.StatusTooManyRequests:
			res.sheds++
			res.outcome = outShed
		case err == nil && status >= 500:
			res.outcome = outServerErr
			return res
		case err == nil:
			res.outcome = outBad
			return res
		default:
			res.outcome = outFailed
		}
		if attempt >= retries {
			return res
		}
		res.retries++
		// Exponential backoff with full jitter, floored at the
		// server's Retry-After hint when one was given.
		d := base << uint(attempt)
		d = d/2 + time.Duration(rng.Int63n(int64(d)/2+1))
		if retryAfter > d {
			d = retryAfter
		}
		time.Sleep(d)
	}
}

// postAnalyze performs one attempt. A non-nil error means no usable
// HTTP response arrived.
func postAnalyze(client *http.Client, addr string, body []byte, timeout time.Duration) (status int, resp *serve.Response, retryAfter time.Duration, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/analyze", bytes.NewReader(body))
	if err != nil {
		return 0, nil, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := client.Do(hreq)
	if err != nil {
		return 0, nil, 0, err
	}
	defer hres.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hres.Body, 16<<20))
	if err != nil {
		return 0, nil, 0, err
	}
	if hres.StatusCode == http.StatusOK {
		var r serve.Response
		if jerr := json.Unmarshal(data, &r); jerr == nil {
			resp = &r
		}
	}
	if ra := hres.Header.Get("Retry-After"); ra != "" {
		if sec, aerr := strconv.Atoi(ra); aerr == nil && sec > 0 {
			retryAfter = time.Duration(sec) * time.Second
		}
	}
	return hres.StatusCode, resp, retryAfter, nil
}

func fetchStats(client *http.Client, addr string) *serve.Snapshot {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/stats", nil)
	if err != nil {
		return nil
	}
	res, err := client.Do(req)
	if err != nil {
		return nil
	}
	defer res.Body.Close()
	var snap serve.Snapshot
	if json.NewDecoder(res.Body).Decode(&snap) != nil {
		return nil
	}
	return &snap
}

func render(results []result, elapsed time.Duration, workers int, before, after *serve.Snapshot) string {
	var counts [6]int
	var lats []time.Duration
	var retries, sheds int
	for _, r := range results {
		counts[r.outcome]++
		retries += r.retries
		sheds += r.sheds
		if r.outcome == outOK || r.outcome == outDegraded {
			lats = append(lats, r.latency)
		}
	}
	var sb strings.Builder
	n := len(results)
	fmt.Fprintf(&sb, "sraabench: %d requests, concurrency %d in %s (%.1f req/s)\n",
		n, workers, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
	fmt.Fprintf(&sb, "outcomes: ok=%d degraded=%d shed=%d bad=%d 5xx=%d failed=%d\n",
		counts[outOK], counts[outDegraded], counts[outShed], counts[outBad], counts[outServerErr], counts[outFailed])
	fmt.Fprintf(&sb, "retries: %d (shed attempts seen: %d)\n", retries, sheds)
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		fmt.Fprintf(&sb, "latency: p50=%s p90=%s p99=%s max=%s\n",
			pct(lats, 0.50), pct(lats, 0.90), pct(lats, 0.99), lats[len(lats)-1].Round(time.Microsecond))
	} else {
		sb.WriteString("latency: no successful requests\n")
	}
	if before != nil && after != nil && after.Cache != nil {
		var h0, m0 int64
		if before.Cache != nil {
			h0, m0 = before.Cache.Hits, before.Cache.Misses
		}
		dh := after.Cache.Hits - h0
		dm := after.Cache.Misses - m0
		rate := 0.0
		if dh+dm > 0 {
			rate = float64(dh) / float64(dh+dm)
		}
		fmt.Fprintf(&sb, "cache window: hits=%d misses=%d window-hit-rate=%.4f\n", dh, dm, rate)
	}
	return sb.String()
}

// pct returns the q-th percentile of sorted latencies.
func pct(sorted []time.Duration, q float64) time.Duration {
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i].Round(time.Microsecond)
}
