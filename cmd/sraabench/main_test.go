package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"sync/atomic"
	"testing"
)

// The bench binary is tested against stub servers so its retry,
// accounting, and exit-code behavior can be asserted exactly; the
// integration against a real sraad lives in cmd/sraad's E2E tests.

var benchBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "sraabench-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	benchBin = filepath.Join(dir, "sraabench")
	if out, err := exec.Command("go", "build", "-o", benchBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building sraabench: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// stubServer answers /analyze by policy and serves /stats snapshots
// whose cache counters advance per call, so the window arithmetic is
// checkable.
func stubServer(analyze http.HandlerFunc) *httptest.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /analyze", analyze)
	var statsCalls atomic.Int64
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		// First call (before): 10 hits / 10 misses. Second (after):
		// +30 hits / +10 misses → window rate 0.75.
		n := statsCalls.Add(1)
		fmt.Fprintf(w, `{"requests":0,"cache":{"entries":1,"hits":%d,"misses":%d,"hit_rate":0.5,"persistent":false}}`,
			10+30*(n-1), 10+10*(n-1))
	})
	return httptest.NewServer(mux)
}

func runBench(t *testing.T, args ...string) (stdout string, exitCode int) {
	t.Helper()
	cmd := exec.Command(benchBin, args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("sraabench: %v\nstderr:\n%s", err, errb.String())
		}
		exitCode = ee.ExitCode()
	}
	return out.String(), exitCode
}

var outcomesRe = regexp.MustCompile(`outcomes: ok=(\d+) degraded=(\d+) shed=(\d+) bad=(\d+) 5xx=(\d+) failed=(\d+)`)

func parseOutcomes(t *testing.T, out string) (ok, degraded, shed, bad, serverErr, failed int) {
	t.Helper()
	m := outcomesRe.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no outcomes line in output:\n%s", out)
	}
	vals := make([]int, 6)
	for i := range vals {
		vals[i], _ = strconv.Atoi(m[i+1])
	}
	return vals[0], vals[1], vals[2], vals[3], vals[4], vals[5]
}

// TestRetriesRecoverFromSheds: every 3rd attempt is shed without a
// Retry-After header; the client's backoff retries must convert all
// of them into eventual 200s. Exit 0, full accounting.
func TestRetriesRecoverFromSheds(t *testing.T) {
	var attempts atomic.Int64
	srv := stubServer(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1)%3 == 0 {
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]any{"error": "shed"})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"name": "x", "degraded": false})
	})
	defer srv.Close()

	out, code := runBench(t, "-addr", srv.URL, "-n", "20", "-c", "4",
		"-programs", "2", "-retries", "5", "-backoff", "5ms")
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out)
	}
	ok, degraded, shed, bad, serverErr, failed := parseOutcomes(t, out)
	if ok != 20 || degraded+shed+bad+serverErr+failed != 0 {
		t.Errorf("outcomes ok=%d deg=%d shed=%d bad=%d 5xx=%d failed=%d, want 20 ok only\n%s",
			ok, degraded, shed, bad, serverErr, failed, out)
	}
	// Window arithmetic from the stub's /stats: (40-10)/(40-10+20-10).
	if !bytes.Contains([]byte(out), []byte("window-hit-rate=0.7500")) {
		t.Errorf("missing window-hit-rate=0.7500:\n%s", out)
	}
	if !regexp.MustCompile(`retries: [1-9]\d*`).MatchString(out) {
		t.Errorf("expected nonzero retries:\n%s", out)
	}
}

// TestServerErrorExitsTwo: any 5xx is a contract violation and must
// surface as exit code 2 without retrying forever.
func TestServerErrorExitsTwo(t *testing.T) {
	srv := stubServer(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	defer srv.Close()

	out, code := runBench(t, "-addr", srv.URL, "-n", "4", "-c", "2", "-programs", "1")
	if code != 2 {
		t.Fatalf("exit %d, want 2\n%s", code, out)
	}
	_, _, _, _, serverErr, _ := parseOutcomes(t, out)
	if serverErr != 4 {
		t.Errorf("5xx count %d, want 4\n%s", serverErr, out)
	}
}

// TestPersistentShedCountsAsShedNotFailure: a server that always
// sheds yields outcome shed for every request and still exits 0 —
// load shedding is the contract working, not an error.
func TestPersistentShedCountsAsShedNotFailure(t *testing.T) {
	srv := stubServer(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
	})
	defer srv.Close()

	out, code := runBench(t, "-addr", srv.URL, "-n", "6", "-c", "3",
		"-programs", "1", "-retries", "1", "-backoff", "1ms")
	if code != 0 {
		t.Fatalf("exit %d, want 0 (sheds are not failures)\n%s", code, out)
	}
	ok, _, shed, _, _, failed := parseOutcomes(t, out)
	if ok != 0 || shed != 6 || failed != 0 {
		t.Errorf("ok=%d shed=%d failed=%d, want 0/6/0\n%s", ok, shed, failed, out)
	}
}

// TestTransportFailureExitsOne: nothing listening → every request
// fails at the transport layer → exit 1.
func TestTransportFailureExitsOne(t *testing.T) {
	// Reserve a port and close it so the address is dead.
	srv := httptest.NewServer(http.NotFoundHandler())
	addr := srv.URL
	srv.Close()

	out, code := runBench(t, "-addr", addr, "-n", "2", "-c", "1",
		"-programs", "1", "-retries", "0", "-attempt-timeout", "2s")
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out)
	}
	_, _, _, _, _, failed := parseOutcomes(t, out)
	if failed != 2 {
		t.Errorf("failed=%d, want 2\n%s", failed, out)
	}
}

// TestReportFileMatchesStdout: -o writes the exact report atomically.
func TestReportFileMatchesStdout(t *testing.T) {
	srv := stubServer(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"name": "x"})
	})
	defer srv.Close()

	path := filepath.Join(t.TempDir(), "report.txt")
	out, code := runBench(t, "-addr", srv.URL, "-n", "5", "-c", "2",
		"-programs", "1", "-o", path)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != out {
		t.Errorf("report file differs from stdout:\n--- file ---\n%s\n--- stdout ---\n%s", data, out)
	}
}
