package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/persist"
)

// -store mode: load-generate batched multi-gets against a running
// sraastore instead of analysis requests against sraad. The retry,
// backoff, Retry-After, and percentile machinery is the same; the
// payload is POST /art/batch over the store's own key list, and every
// returned record is CRC-revalidated so the bench doubles as a wire
// integrity check (a store run with -inject-fault should shed and
// slow the bench, never hand it a record that validates incorrectly).

// storeBatch is one logical bench request: a batched get of `size`
// keys starting at a rotating offset in the store's key list.
type storeBatch struct {
	keys []string
}

// runStoreBench drives the store and returns the process exit code:
// 0 on success, 1 if any batch got no answer after retries, 2 on any
// 5xx, 3 if a returned record failed validation (the store or the
// wire is corrupting data — the one outcome the contract forbids).
func runStoreBench(addr string, n, c, batchSize, retries int, base, attemptTimeout time.Duration, seed int64, out string) int {
	client := &http.Client{}
	keys, err := fetchKeys(client, addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sraabench:", err)
		return 1
	}
	if len(keys) == 0 {
		fmt.Fprintln(os.Stderr, "sraabench: store has no records; seed it with a sweep first (-store mode benches reads)")
		return 1
	}

	batches := make([]storeBatch, n)
	for i := range batches {
		b := make([]string, 0, batchSize)
		for k := 0; k < batchSize; k++ {
			b = append(b, keys[(i*batchSize+k)%len(keys)])
		}
		batches[i] = storeBatch{keys: b}
	}

	before := fetchStoreStats(client, addr)
	results := make([]result, n)
	var corrupt int64
	var next int64
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(worker)))
			for {
				mu.Lock()
				i := int(next)
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				func() {
					// Containment: one batch's panic is that batch's
					// failure, not the bench's.
					defer func() {
						if r := recover(); r != nil {
							results[i] = result{outcome: outFailed}
						}
					}()
					var bad int
					results[i], bad = oneBatch(client, addr, batches[i], retries, base, attemptTimeout, rng)
					if bad > 0 {
						mu.Lock()
						corrupt += int64(bad)
						mu.Unlock()
					}
				}()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	after := fetchStoreStats(client, addr)

	report := renderStore(results, elapsed, c, batchSize, corrupt, before, after)
	fmt.Print(report)
	if out != "" {
		if err := persist.AtomicWriteFile(out, []byte(report), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sraabench:", err)
			return 1
		}
	}

	code := 0
	for _, r := range results {
		switch r.outcome {
		case outServerErr:
			code = 2
		case outFailed:
			if code == 0 {
				code = 1
			}
		}
	}
	if corrupt > 0 && code < 3 {
		code = 3
	}
	return code
}

// oneBatch runs one batched get through the shared retry loop and
// revalidates every returned record. bad counts records that failed
// validation — always 0 against a healthy store.
func oneBatch(client *http.Client, addr string, b storeBatch, retries int, base, attemptTimeout time.Duration, rng *rand.Rand) (result, int) {
	body, err := json.Marshal(map[string][]string{"keys": b.keys})
	if err != nil {
		return result{outcome: outFailed}, 0
	}
	var res result
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		status, records, retryAfter, err := postBatch(client, addr, body, attemptTimeout)
		switch {
		case err == nil && status == http.StatusOK:
			res.latency = time.Since(t0)
			res.outcome = outOK
			bad := 0
			for k, b64 := range records {
				data, derr := base64.StdEncoding.DecodeString(b64)
				if derr != nil {
					bad++
					continue
				}
				if gotKey, _, derr := persist.DecodeRecord(data); derr != nil || gotKey != k {
					bad++
				}
			}
			return res, bad
		case err == nil && status == http.StatusTooManyRequests:
			res.sheds++
			res.outcome = outShed
		case err == nil && status >= 500:
			res.outcome = outServerErr
			return res, 0
		case err == nil:
			res.outcome = outBad
			return res, 0
		default:
			res.outcome = outFailed
		}
		if attempt >= retries {
			return res, 0
		}
		res.retries++
		d := base << uint(attempt)
		d = d/2 + time.Duration(rng.Int63n(int64(d)/2+1))
		if retryAfter > d {
			d = retryAfter
		}
		time.Sleep(d)
	}
}

// postBatch performs one POST /art/batch attempt.
func postBatch(client *http.Client, addr string, body []byte, timeout time.Duration) (status int, records map[string]string, retryAfter time.Duration, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/art/batch", bytes.NewReader(body))
	if err != nil {
		return 0, nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, 0, err
	}
	if resp.StatusCode == http.StatusOK {
		var envelope struct {
			Records map[string]string `json:"records"`
		}
		if json.Unmarshal(data, &envelope) == nil {
			records = envelope.Records
		}
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if sec, aerr := strconv.Atoi(ra); aerr == nil && sec > 0 {
			retryAfter = time.Duration(sec) * time.Second
		}
	}
	return resp.StatusCode, records, retryAfter, nil
}

// fetchKeys lists the store's key space via GET /keys.
func fetchKeys(client *http.Client, addr string) ([]string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/keys", nil)
	if err != nil {
		return nil, err
	}
	res, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("store unreachable: %w", err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /keys: status %d", res.StatusCode)
	}
	var envelope struct {
		Keys []string `json:"keys"`
	}
	if err := json.NewDecoder(res.Body).Decode(&envelope); err != nil {
		return nil, fmt.Errorf("GET /keys: %w", err)
	}
	return envelope.Keys, nil
}

// storeSnap is the subset of sraastore's /stats the bench windows.
type storeSnap struct {
	Requests int64 `json:"requests"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Shed     int64 `json:"shed"`
}

func fetchStoreStats(client *http.Client, addr string) *storeSnap {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/stats", nil)
	if err != nil {
		return nil
	}
	res, err := client.Do(req)
	if err != nil {
		return nil
	}
	defer res.Body.Close()
	var snap storeSnap
	if json.NewDecoder(res.Body).Decode(&snap) != nil {
		return nil
	}
	return &snap
}

func renderStore(results []result, elapsed time.Duration, workers, batchSize int, corrupt int64, before, after *storeSnap) string {
	var counts [6]int
	var lats []time.Duration
	var retries, sheds int
	for _, r := range results {
		counts[r.outcome]++
		retries += r.retries
		sheds += r.sheds
		if r.outcome == outOK {
			lats = append(lats, r.latency)
		}
	}
	var sb strings.Builder
	n := len(results)
	fmt.Fprintf(&sb, "sraabench -store: %d batches x %d keys, concurrency %d in %s (%.1f batch/s)\n",
		n, batchSize, workers, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
	fmt.Fprintf(&sb, "outcomes: ok=%d shed=%d bad=%d 5xx=%d failed=%d corrupt-records=%d\n",
		counts[outOK], counts[outShed], counts[outBad], counts[outServerErr], counts[outFailed], corrupt)
	fmt.Fprintf(&sb, "retries: %d (shed attempts seen: %d)\n", retries, sheds)
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		fmt.Fprintf(&sb, "latency: p50=%s p90=%s p99=%s max=%s\n",
			pct(lats, 0.50), pct(lats, 0.90), pct(lats, 0.99), lats[len(lats)-1].Round(time.Microsecond))
	} else {
		sb.WriteString("latency: no successful batches\n")
	}
	if before != nil && after != nil {
		fmt.Fprintf(&sb, "store window: requests=%d hits=%d misses=%d shed=%d\n",
			after.Requests-before.Requests, after.Hits-before.Hits,
			after.Misses-before.Misses, after.Shed-before.Shed)
	}
	return sb.String()
}
