// Command artifact regenerates the paper's entire evaluation in one
// run, mirroring the run.sh scripts of the original virtual-machine
// artifact (Appendix A): Figures 8, 9, 10 via the aa-eval protocol,
// Figure 11 and the Section 4.2 solver statistics, and Figure 12's
// PDG memory-node counts. Results are written as CSV files into the
// directory given by -out (default ./results), plus a summary.txt
// recording the headline comparisons against the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"repro/internal/alias"
	"repro/internal/corpus"
	"repro/internal/csmith"
	"repro/internal/harness"
	"repro/internal/stats"
)

// hcfg carries the hardening flags — and the shared memo cache — into
// every per-program pipeline.
var hcfg harness.Config

// batchJobs is how many programs each phase analyzes concurrently.
var batchJobs int

// batchAnalyze pushes a phase's programs through the hardened driver,
// fanning them across batchJobs workers. eval, when non-nil, runs on
// the worker right after analysis (evaluation protocols and PDG
// construction parallelize with it) and its result lands in
// out.Value. emit runs serially in input order: a frontend or
// strict-mode failure is fatal, a degraded run is noted on stderr and
// its conservative results are used as-is. The phases share hcfg's
// cache, so later phases that revisit the same corpus mostly rebind
// memoized artifacts instead of re-solving.
func batchAnalyze(items []harness.BatchItem, withCF bool,
	eval func(*harness.Result) any, emit func(i int, out *harness.BatchOutcome)) {
	cfg := hcfg
	cfg.WithCF = withCF
	harness.RunBatch(cfg, batchJobs, items,
		func(i int, out *harness.BatchOutcome) {
			if out.Err == nil && eval != nil {
				out.Value = eval(out.Res)
			}
		},
		func(i int, out *harness.BatchOutcome) {
			if out.Err != nil {
				fatal(out.Err)
			}
			if rep := out.Pipe.Report(); !rep.Ok() {
				fmt.Fprintf(os.Stderr, "%s: degraded\n%s", out.Name, rep)
				if hcfg.Strict {
					os.Exit(1)
				}
			}
			emit(i, out)
		})
}

func corpusItems(progs []corpus.Program) []harness.BatchItem {
	items := make([]harness.BatchItem, len(progs))
	for i, p := range progs {
		items[i] = harness.BatchItem{Name: p.Name, Src: p.Source}
	}
	return items
}

func main() {
	out := flag.String("out", "results", "output directory for CSV files")
	timeout := flag.Duration("timeout", 0, "per-stage analysis deadline per program (0 = unlimited); exhausted stages degrade soundly")
	maxIters := flag.Int("max-iters", 0, "per-solve worklist step cap (0 = unlimited)")
	strict := flag.Bool("strict", false, "abort on the first contained failure instead of degrading")
	jobs := flag.Int("jobs", runtime.NumCPU(), "programs analyzed concurrently per phase (results are identical at any value)")
	useCache := flag.Bool("cache", true, "share a content-addressed memo cache across all phases; stats go to stderr")
	flag.Parse()
	hcfg = harness.Config{Timeout: *timeout, MaxSteps: *maxIters, Strict: *strict}
	if *useCache {
		hcfg.Cache = harness.NewCache()
	}
	batchJobs = *jobs
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	summary, err := os.Create(filepath.Join(*out, "summary.txt"))
	if err != nil {
		fatal(err)
	}
	defer summary.Close()
	note := func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		fmt.Println(line)
		fmt.Fprintln(summary, line)
	}

	start := time.Now()
	note("reproduction artifact run, %s", time.Now().Format(time.RFC3339))

	// --- Figures 9 and 10: the SPEC table with CF. ---
	note("\n[1/4] SPEC suite (Figures 9 and 10)...")
	f9, err := os.Create(filepath.Join(*out, "fig9_fig10_spec.csv"))
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(f9, "benchmark,queries,ba_pct,lt_pct,balt_pct,bacf_pct")
	type specRow struct {
		name               string
		queries            int
		ba, lt, balt, bacf float64
	}
	var specRows []specRow
	batchAnalyze(corpusItems(corpus.Spec()), true,
		func(res *harness.Result) any {
			ba := alias.NewBasic(res.Module)
			lt := alias.NewSRAA(res.LT)
			return res.Evaluate(ba, lt,
				alias.NewChain(ba, lt), alias.NewChain(ba, res.CF))
		},
		func(i int, out *harness.BatchOutcome) {
			rep := out.Value.(*alias.Report)
			r := specRow{
				name:    out.Name,
				queries: rep.PerAnalysis["BA"].Queries,
				ba:      rep.PerAnalysis["BA"].NoAliasPercent(),
				lt:      rep.PerAnalysis["LT"].NoAliasPercent(),
				balt:    rep.PerAnalysis["BA+LT"].NoAliasPercent(),
				bacf:    rep.PerAnalysis["BA+CF"].NoAliasPercent(),
			}
			specRows = append(specRows, r)
			fmt.Fprintf(f9, "%s,%d,%.2f,%.2f,%.2f,%.2f\n",
				r.name, r.queries, r.ba, r.lt, r.balt, r.bacf)
		})
	f9.Close()
	for _, r := range specRows {
		switch r.name {
		case "lbm":
			note("  lbm: LT %.1f%% > BA %.1f%% (paper: 10.15 > 5.90)", r.lt, r.ba)
		case "gobmk":
			note("  gobmk: BA+LT %.1f%% vs BA %.1f%% (paper: 63.33 vs 48.49)", r.balt, r.ba)
		case "omnetpp":
			note("  omnetpp: BA+CF %.1f%% vs BA+LT %.1f%% (paper: ~3x)", r.bacf, r.balt)
		}
	}

	// --- Figure 8: the test-suite sweep. ---
	note("\n[2/4] test-suite sweep (Figure 8)...")
	f8, err := os.Create(filepath.Join(*out, "fig8_testsuite.csv"))
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(f8, "benchmark,queries,ba_no,lt_no,balt_no")
	var totBA, totLT, totBoth int
	batchAnalyze(corpusItems(corpus.TestSuite(100)), false,
		func(res *harness.Result) any {
			ba := alias.NewBasic(res.Module)
			lt := alias.NewSRAA(res.LT)
			return res.Evaluate(ba, lt, alias.NewChain(ba, lt))
		},
		func(i int, out *harness.BatchOutcome) {
			rep := out.Value.(*alias.Report)
			cb, cl, cc := rep.PerAnalysis["BA"], rep.PerAnalysis["LT"], rep.PerAnalysis["BA+LT"]
			totBA += cb.No
			totLT += cl.No
			totBoth += cc.No
			fmt.Fprintf(f8, "%s,%d,%d,%d,%d\n", out.Name, cb.Queries, cb.No, cl.No, cc.No)
		})
	f8.Close()
	note("  suite-wide: LT lifts BA by %.2f%% (paper: 9.49%%)",
		100*float64(totBoth-totBA)/float64(totBA))

	// --- Figure 11 + Section 4.2. ---
	note("\n[3/4] scalability (Figure 11)...")
	f11, err := os.Create(filepath.Join(*out, "fig11_scalability.csv"))
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(f11, "benchmark,instructions,constraints,pops,vars")
	type sample struct {
		name                      string
		instrs, cons, pops, nvars int
	}
	var samples []sample
	sizeDist := map[int]int{}
	// This phase re-analyzes the corpus of the previous two; with the
	// shared cache the solves are mostly artifact rebinds.
	batchAnalyze(corpusItems(append(corpus.TestSuite(100), corpus.Spec()...)), false, nil,
		func(i int, out *harness.BatchOutcome) {
			st := out.Res.LT.Stats
			samples = append(samples, sample{out.Name, st.Instrs, st.Constraints, st.Pops, st.Vars})
			for k, v := range st.SetSizes {
				sizeDist[k] += v
			}
		})
	sort.Slice(samples, func(i, j int) bool { return samples[i].instrs > samples[j].instrs })
	samples = samples[:50]
	var xs, ys []float64
	for _, s := range samples {
		fmt.Fprintf(f11, "%s,%d,%d,%d,%d\n", s.name, s.instrs, s.cons, s.pops, s.nvars)
		xs = append(xs, float64(s.instrs))
		ys = append(ys, float64(s.cons))
	}
	f11.Close()
	fit, err := stats.LinearFit(xs, ys)
	if err != nil {
		fatal(err)
	}
	note("  R² = %.3f (paper: 0.992)", fit.R2)
	small, total := 0, 0
	for k, v := range sizeDist {
		total += v
		if k <= 2 {
			small += v
		}
	}
	note("  LT sets with <= 2 elements: %.1f%% (paper: >95%%)",
		100*float64(small)/float64(total))

	// --- Figure 12. ---
	note("\n[4/4] PDG memory nodes (Figure 12)...")
	f12, err := os.Create(filepath.Join(*out, "fig12_pdg.csv"))
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(f12, "program,depth,ba_nodes,balt_nodes")
	pdgBA, pdgBoth := 0, 0
	var pdgItems []harness.BatchItem
	var pdgDepths []int
	for depth := 2; depth <= 7; depth++ {
		for i := 0; i < 20; i++ {
			pdgItems = append(pdgItems, harness.BatchItem{
				Name: fmt.Sprintf("rand-d%d-%02d", depth, i),
				Src: csmith.Generate(csmith.Config{
					Seed: int64(depth*1000 + i), MaxPtrDepth: depth, Stmts: 120,
				}),
			})
			pdgDepths = append(pdgDepths, depth)
		}
	}
	batchAnalyze(pdgItems, false,
		func(res *harness.Result) any {
			ba := alias.NewBasic(res.Module)
			ba.UnknownSizes = true
			ba.Intraprocedural = true
			both := alias.NewChain(ba, alias.NewSRAAWithRanges(res.LT, res.Ranges))
			gBA, errA := res.PDG(ba)
			gBoth, errB := res.PDG(both)
			if errA != nil || errB != nil {
				return nil
			}
			return [2]int{gBA.MemNodes, gBoth.MemNodes}
		},
		func(i int, out *harness.BatchOutcome) {
			nodes, ok := out.Value.([2]int)
			if !ok {
				fmt.Fprintf(os.Stderr, "%s: pdg construction degraded, program skipped\n", out.Name)
				return
			}
			pdgBA += nodes[0]
			pdgBoth += nodes[1]
			fmt.Fprintf(f12, "%s,%d,%d,%d\n", out.Name, pdgDepths[i], nodes[0], nodes[1])
		})
	f12.Close()
	note("  memory nodes: BA %d, BA+LT %d (%.2fx; paper: 6.23x)",
		pdgBA, pdgBoth, float64(pdgBoth)/float64(pdgBA))

	if hcfg.Cache != nil {
		fmt.Fprintf(os.Stderr, "cache: %s\n", hcfg.Cache.Stats())
	}
	note("\ndone in %s; CSVs in %s/", time.Since(start).Round(time.Millisecond), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
