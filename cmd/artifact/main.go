// Command artifact regenerates the paper's entire evaluation in one
// run, mirroring the run.sh scripts of the original virtual-machine
// artifact (Appendix A): Figures 8, 9, 10 via the aa-eval protocol,
// Figure 11 and the Section 4.2 solver statistics, and Figure 12's
// PDG memory-node counts. Results are written as CSV files into the
// directory given by -out (default ./results), plus a summary.txt
// recording the headline comparisons against the paper's numbers.
//
// Durability: every output file is buffered in memory and written
// atomically at the end of its phase — a killed run never leaves a
// half-written CSV. With -state DIR each program's phase result is
// journaled as it completes (phases namespace the journal, since the
// same corpus recurs across phases), so rerunning with -resume skips
// everything already done and emits identical outputs.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"repro/internal/alias"
	"repro/internal/corpus"
	"repro/internal/csmith"
	"repro/internal/driver"
	"repro/internal/harness"
	"repro/internal/persist"
	"repro/internal/persist/journal"
	"repro/internal/stats"
)

// hcfg carries the hardening flags — and the shared memo cache — into
// every per-program pipeline.
var hcfg harness.Config

// batchJobs is how many programs each phase analyzes concurrently.
var batchJobs int

// runCtx, state, and stateDirName thread the interrupt context and
// the checkpoint journal into every phase.
var (
	runCtx       = context.Background()
	state        *journal.Checkpoint
	stateDirName string
)

// batchAnalyze pushes a phase's programs through the hardened driver,
// fanning them across batchJobs workers. eval, when non-nil, runs on
// the worker right after analysis (evaluation protocols and PDG
// construction parallelize with it) and its result — which must be
// JSON-marshalable so it can be journaled — lands in out.Value,
// decoded back through decode on a resumed run. emit runs serially in
// input order: a frontend or strict-mode failure is fatal, a degraded
// run is noted on stderr and its conservative results are used as-is.
// The phases share hcfg's cache, so later phases that revisit the
// same corpus mostly rebind memoized artifacts instead of re-solving.
// On interruption the process checkpoints and exits 130.
func batchAnalyze(phase string, items []harness.BatchItem, withCF bool,
	eval func(*harness.Result) any,
	decode func([]byte) (any, error),
	emit func(i int, out *harness.BatchOutcome)) {
	cfg := hcfg
	cfg.WithCF = withCF
	var ck *harness.BatchCheckpoint
	if state != nil {
		ck = &harness.BatchCheckpoint{
			C:      state,
			Prefix: phase + ":",
			Encode: func(i int, out *harness.BatchOutcome) (any, error) {
				return out.Value, nil
			},
			Decode: func(i int, data []byte, out *harness.BatchOutcome) error {
				v, err := decode(data)
				if err != nil {
					return err
				}
				out.Value = v
				return nil
			},
		}
	}
	_, completed, err := harness.RunBatchCtx(runCtx, cfg, batchJobs, items, ck,
		func(i int, out *harness.BatchOutcome) {
			if out.Err == nil && eval != nil {
				out.Value = eval(out.Res)
			}
		},
		func(i int, out *harness.BatchOutcome) {
			if out.Err != nil {
				fatal(out.Err)
			}
			if !out.Replayed {
				if rep := out.Pipe.Report(); !rep.Ok() {
					fmt.Fprintf(os.Stderr, "%s: degraded\n%s", out.Name, rep)
					if hcfg.Strict {
						os.Exit(1)
					}
				}
			}
			emit(i, out)
		})
	if err != nil {
		if stateDirName != "" {
			driver.Resumable("artifact", completed, len(items), stateDirName)
			fmt.Fprintf(os.Stderr, "artifact: phase %s checkpointed\n", phase)
		} else {
			fmt.Fprintf(os.Stderr, "artifact: interrupted in phase %s at %d/%d; rerun with -state DIR to make runs resumable\n",
				phase, completed, len(items))
		}
		os.Exit(driver.ExitInterrupted)
	}
}

func corpusItems(progs []corpus.Program) []harness.BatchItem {
	items := make([]harness.BatchItem, len(progs))
	for i, p := range progs {
		items[i] = harness.BatchItem{Name: p.Name, Src: p.Source}
	}
	return items
}

// decodeInto builds a decode callback that unmarshals a journal
// record into a fresh T.
func decodeInto[T any]() func([]byte) (any, error) {
	return func(data []byte) (any, error) {
		var v T
		if err := json.Unmarshal(data, &v); err != nil {
			return nil, err
		}
		return v, nil
	}
}

func main() {
	out := flag.String("out", "results", "output directory for CSV files")
	timeout := flag.Duration("timeout", 0, "per-stage analysis deadline per program (0 = unlimited); exhausted stages degrade soundly")
	maxIters := flag.Int("max-iters", 0, "per-solve worklist step cap (0 = unlimited)")
	strict := flag.Bool("strict", false, "abort on the first contained failure instead of degrading")
	jobs := flag.Int("jobs", runtime.NumCPU(), "programs analyzed concurrently per phase (results are identical at any value)")
	useCache := flag.Bool("cache", true, "share a content-addressed memo cache across all phases; stats go to stderr")
	cacheDir := flag.String("persist-cache", "", "durable memo store directory; solves persist across artifact runs")
	stateDir := flag.String("state", "", "checkpoint directory: journal per-program results so a killed run can resume")
	resume := flag.Bool("resume", false, "with -state: reuse the existing journal, skipping completed work")
	flag.Parse()
	hcfg = harness.Config{Timeout: *timeout, MaxSteps: *maxIters, Strict: *strict}
	cache, err := driver.OpenCache(*useCache, *cacheDir)
	if err != nil {
		fatal(err)
	}
	hcfg.Cache = cache
	batchJobs = *jobs
	sigCtx, stop := driver.SignalContext()
	defer stop()
	runCtx = sigCtx
	if *stateDir != "" {
		stateDirName = *stateDir
		c, err := driver.OpenState(*stateDir, *resume)
		if err != nil {
			fatal(err)
		}
		defer c.Close()
		state = c
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	// The summary and every CSV are buffered and written atomically:
	// readers never observe a torn results directory.
	var summary bytes.Buffer
	writeOut := func(name string, data []byte) {
		if err := persist.AtomicWriteFile(filepath.Join(*out, name), data, 0o644); err != nil {
			fatal(err)
		}
	}
	note := func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		fmt.Println(line)
		fmt.Fprintln(&summary, line)
	}

	start := time.Now()
	note("reproduction artifact run, %s", time.Now().Format(time.RFC3339))

	// --- Figures 9 and 10: the SPEC table with CF. ---
	note("\n[1/4] SPEC suite (Figures 9 and 10)...")
	var f9 bytes.Buffer
	fmt.Fprintln(&f9, "benchmark,queries,ba_pct,lt_pct,balt_pct,bacf_pct")
	type specRow struct {
		Name               string `json:"name,omitempty"`
		Queries            int
		BA, LT, BALT, BACF float64
	}
	var specRows []specRow
	batchAnalyze("spec", corpusItems(corpus.Spec()), true,
		func(res *harness.Result) any {
			ba := alias.NewBasic(res.Module)
			lt := alias.NewSRAA(res.LT)
			rep := res.Evaluate(ba, lt,
				alias.NewChain(ba, lt), alias.NewChain(ba, res.CF))
			return specRow{
				Queries: rep.PerAnalysis["BA"].Queries,
				BA:      rep.PerAnalysis["BA"].NoAliasPercent(),
				LT:      rep.PerAnalysis["LT"].NoAliasPercent(),
				BALT:    rep.PerAnalysis["BA+LT"].NoAliasPercent(),
				BACF:    rep.PerAnalysis["BA+CF"].NoAliasPercent(),
			}
		},
		decodeInto[specRow](),
		func(i int, out *harness.BatchOutcome) {
			r := out.Value.(specRow)
			r.Name = out.Name
			specRows = append(specRows, r)
			fmt.Fprintf(&f9, "%s,%d,%.2f,%.2f,%.2f,%.2f\n",
				r.Name, r.Queries, r.BA, r.LT, r.BALT, r.BACF)
		})
	writeOut("fig9_fig10_spec.csv", f9.Bytes())
	for _, r := range specRows {
		switch r.Name {
		case "lbm":
			note("  lbm: LT %.1f%% > BA %.1f%% (paper: 10.15 > 5.90)", r.LT, r.BA)
		case "gobmk":
			note("  gobmk: BA+LT %.1f%% vs BA %.1f%% (paper: 63.33 vs 48.49)", r.BALT, r.BA)
		case "omnetpp":
			note("  omnetpp: BA+CF %.1f%% vs BA+LT %.1f%% (paper: ~3x)", r.BACF, r.BALT)
		}
	}

	// --- Figure 8: the test-suite sweep. ---
	note("\n[2/4] test-suite sweep (Figure 8)...")
	var f8 bytes.Buffer
	fmt.Fprintln(&f8, "benchmark,queries,ba_no,lt_no,balt_no")
	type tsRow struct {
		Queries      int
		BA, LT, Both int
	}
	var totBA, totLT, totBoth int
	batchAnalyze("testsuite", corpusItems(corpus.TestSuite(100)), false,
		func(res *harness.Result) any {
			ba := alias.NewBasic(res.Module)
			lt := alias.NewSRAA(res.LT)
			rep := res.Evaluate(ba, lt, alias.NewChain(ba, lt))
			cb, cl, cc := rep.PerAnalysis["BA"], rep.PerAnalysis["LT"], rep.PerAnalysis["BA+LT"]
			return tsRow{Queries: cb.Queries, BA: cb.No, LT: cl.No, Both: cc.No}
		},
		decodeInto[tsRow](),
		func(i int, out *harness.BatchOutcome) {
			r := out.Value.(tsRow)
			totBA += r.BA
			totLT += r.LT
			totBoth += r.Both
			fmt.Fprintf(&f8, "%s,%d,%d,%d,%d\n", out.Name, r.Queries, r.BA, r.LT, r.Both)
		})
	writeOut("fig8_testsuite.csv", f8.Bytes())
	_ = totLT
	note("  suite-wide: LT lifts BA by %.2f%% (paper: 9.49%%)",
		100*float64(totBoth-totBA)/float64(totBA))

	// --- Figure 11 + Section 4.2. ---
	note("\n[3/4] scalability (Figure 11)...")
	var f11 bytes.Buffer
	fmt.Fprintln(&f11, "benchmark,instructions,constraints,pops,vars")
	type sample struct {
		Name                      string `json:"name,omitempty"`
		Instrs, Cons, Pops, Nvars int
		SetSizes                  map[int]int `json:",omitempty"`
	}
	var samples []sample
	sizeDist := map[int]int{}
	// This phase re-analyzes the corpus of the previous two; with the
	// shared cache the solves are mostly artifact rebinds. The solver
	// statistics move to the worker so they can be journaled.
	batchAnalyze("scalability", corpusItems(append(corpus.TestSuite(100), corpus.Spec()...)), false,
		func(res *harness.Result) any {
			st := res.LT.Stats
			return sample{Instrs: st.Instrs, Cons: st.Constraints,
				Pops: st.Pops, Nvars: st.Vars, SetSizes: st.SetSizes}
		},
		decodeInto[sample](),
		func(i int, out *harness.BatchOutcome) {
			s := out.Value.(sample)
			s.Name = out.Name
			samples = append(samples, s)
			for k, v := range s.SetSizes {
				sizeDist[k] += v
			}
		})
	sort.SliceStable(samples, func(i, j int) bool { return samples[i].Instrs > samples[j].Instrs })
	samples = samples[:50]
	var xs, ys []float64
	for _, s := range samples {
		fmt.Fprintf(&f11, "%s,%d,%d,%d,%d\n", s.Name, s.Instrs, s.Cons, s.Pops, s.Nvars)
		xs = append(xs, float64(s.Instrs))
		ys = append(ys, float64(s.Cons))
	}
	writeOut("fig11_scalability.csv", f11.Bytes())
	fit, err := stats.LinearFit(xs, ys)
	if err != nil {
		fatal(err)
	}
	note("  R² = %.3f (paper: 0.992)", fit.R2)
	small, total := 0, 0
	for k, v := range sizeDist {
		total += v
		if k <= 2 {
			small += v
		}
	}
	note("  LT sets with <= 2 elements: %.1f%% (paper: >95%%)",
		100*float64(small)/float64(total))

	// --- Figure 12. ---
	note("\n[4/4] PDG memory nodes (Figure 12)...")
	var f12 bytes.Buffer
	fmt.Fprintln(&f12, "program,depth,ba_nodes,balt_nodes")
	type pdgRow struct {
		Ok       bool
		BA, Both int
	}
	pdgBA, pdgBoth := 0, 0
	var pdgItems []harness.BatchItem
	var pdgDepths []int
	for depth := 2; depth <= 7; depth++ {
		for i := 0; i < 20; i++ {
			pdgItems = append(pdgItems, harness.BatchItem{
				Name: fmt.Sprintf("rand-d%d-%02d", depth, i),
				Src: csmith.Generate(csmith.Config{
					Seed: int64(depth*1000 + i), MaxPtrDepth: depth, Stmts: 120,
				}),
			})
			pdgDepths = append(pdgDepths, depth)
		}
	}
	batchAnalyze("pdg", pdgItems, false,
		func(res *harness.Result) any {
			ba := alias.NewBasic(res.Module)
			ba.UnknownSizes = true
			ba.Intraprocedural = true
			both := alias.NewChain(ba, alias.NewSRAAWithRanges(res.LT, res.Ranges))
			gBA, errA := res.PDG(ba)
			gBoth, errB := res.PDG(both)
			if errA != nil || errB != nil {
				return pdgRow{}
			}
			return pdgRow{Ok: true, BA: gBA.MemNodes, Both: gBoth.MemNodes}
		},
		decodeInto[pdgRow](),
		func(i int, out *harness.BatchOutcome) {
			r := out.Value.(pdgRow)
			if !r.Ok {
				fmt.Fprintf(os.Stderr, "%s: pdg construction degraded, program skipped\n", out.Name)
				return
			}
			pdgBA += r.BA
			pdgBoth += r.Both
			fmt.Fprintf(&f12, "%s,%d,%d,%d\n", out.Name, pdgDepths[i], r.BA, r.Both)
		})
	writeOut("fig12_pdg.csv", f12.Bytes())
	note("  memory nodes: BA %d, BA+LT %d (%.2fx; paper: 6.23x)",
		pdgBA, pdgBoth, float64(pdgBoth)/float64(pdgBA))

	if hcfg.Cache != nil {
		fmt.Fprintf(os.Stderr, "cache: %s\n", hcfg.Cache.Stats())
	}
	note("\ndone in %s; CSVs in %s/", time.Since(start).Round(time.Millisecond), *out)
	writeOut("summary.txt", summary.Bytes())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
