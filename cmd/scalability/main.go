// Command scalability reproduces the paper's Figure 11 and the
// solver statistics of Section 4.2: for the largest corpus programs it
// reports the number of instructions and the number of constraints
// the less-than analysis generates, fits a least-squares line, and
// prints the coefficient of determination R² (the paper reports
// 0.992), the worklist pops per constraint (the paper reports ~2.12),
// the analysis runtime, and the LT set size distribution (the paper
// observes over 95% of sets hold two or fewer elements).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/corpus"
	"repro/internal/driver"
	"repro/internal/harness"
	"repro/internal/stats"
)

func main() {
	n := flag.Int("n", 50, "number of largest programs to measure")
	showSets := flag.Bool("sets", false, "print the LT set size distribution")
	csv := flag.Bool("csv", false, "emit CSV")
	timeout := flag.Duration("timeout", 0, "per-stage analysis deadline per program (0 = unlimited); exhausted stages degrade soundly and are reported")
	maxIters := flag.Int("max-iters", 0, "per-solve worklist step cap (0 = unlimited)")
	strict := flag.Bool("strict", false, "abort on the first contained failure instead of degrading")
	jobs := flag.Int("jobs", runtime.NumCPU(), "programs analyzed concurrently (statistics are identical at any value; per-program timings include scheduling noise when > 1)")
	useCache := flag.Bool("cache", false, "share a content-addressed memo cache across all programs; stats go to stderr")
	cacheDir := flag.String("persist-cache", "", "durable memo store directory; solves persist across runs")
	flag.Parse()

	progs := append(corpus.TestSuite(100), corpus.Spec()...)

	type row struct {
		name                string
		instrs, constraints int
		pops, vars          int
		elapsed             time.Duration
	}
	var rows []row
	sizeDist := map[int]int{}
	cache, err := driver.OpenCache(*useCache, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	items := make([]harness.BatchItem, len(progs))
	for i, p := range progs {
		items[i] = harness.BatchItem{Name: p.Name, Src: p.Source}
	}
	cfg := harness.Config{
		Timeout: *timeout, MaxSteps: *maxIters, Strict: *strict, Cache: cache,
	}
	harness.RunBatch(cfg, *jobs, items, nil,
		func(i int, out *harness.BatchOutcome) {
			if out.Err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", out.Name, out.Err)
				os.Exit(1)
			}
			if rep := out.Pipe.Report(); !rep.Ok() {
				fmt.Fprintf(os.Stderr, "%s: degraded (its statistics undercount the full solve)\n%s",
					out.Name, rep)
			}
			st := out.Res.LT.Stats
			rows = append(rows, row{
				name: out.Name, instrs: st.Instrs, constraints: st.Constraints,
				pops: st.Pops, vars: st.Vars, elapsed: out.AnalyzeTime,
			})
			for k, v := range st.SetSizes {
				sizeDist[k] += v
			}
		})
	if cache != nil {
		fmt.Fprintf(os.Stderr, "cache: %s\n", cache.Stats())
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].instrs > rows[j].instrs })
	if len(rows) > *n {
		rows = rows[:*n]
	}
	// Re-sort ascending for display, as in the paper's figure.
	sort.Slice(rows, func(i, j int) bool { return rows[i].instrs < rows[j].instrs })

	var xs, ys []float64
	totalPops, totalCons := 0, 0
	if *csv {
		fmt.Println("benchmark,instructions,constraints,pops,vars,elapsed_us")
	} else {
		fmt.Printf("%-28s %12s %12s %10s %8s %10s\n",
			"benchmark", "instructions", "constraints", "pops", "vars", "elapsed")
	}
	for _, r := range rows {
		xs = append(xs, float64(r.instrs))
		ys = append(ys, float64(r.constraints))
		totalPops += r.pops
		totalCons += r.constraints
		if *csv {
			fmt.Printf("%s,%d,%d,%d,%d,%d\n",
				r.name, r.instrs, r.constraints, r.pops, r.vars,
				r.elapsed.Microseconds())
		} else {
			fmt.Printf("%-28s %12d %12d %10d %8d %10s\n",
				r.name, r.instrs, r.constraints, r.pops, r.vars, r.elapsed)
		}
	}
	fit, err := stats.LinearFit(xs, ys)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nconstraints ≈ %.3f * instructions %+.1f\n", fit.Slope, fit.Intercept)
	fmt.Printf("R² (constraints vs instructions) = %.3f   (paper: 0.992)\n", fit.R2)
	if totalCons > 0 {
		fmt.Printf("worklist pops per variable       = %.2f   (paper: ~2.12 per constraint)\n",
			float64(totalPops)/float64(totalCons))
	}

	if *showSets {
		fmt.Println("\nLT set size distribution (all programs):")
		var sizes []int
		total := 0
		for k, v := range sizeDist {
			sizes = append(sizes, k)
			total += v
		}
		sort.Ints(sizes)
		small := 0
		for _, k := range sizes {
			fmt.Printf("  |LT| = %-3d  %7d sets\n", k, sizeDist[k])
			if k <= 2 {
				small += sizeDist[k]
			}
		}
		fmt.Printf("sets with <= 2 elements: %.1f%%   (paper: >95%%)\n",
			100*float64(small)/float64(total))
	}
}
