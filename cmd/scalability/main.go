// Command scalability measures solver speed and precision at scale.
//
// Its default mode reproduces the paper's Figure 11 and the solver
// statistics of Section 4.2 over the corpus: instructions vs
// constraints with a least-squares fit (the paper reports R² = 0.992),
// worklist pops per constraint (~2.12), runtimes, and the LT set size
// distribution (>95% of sets hold two or fewer elements).
//
// With -bench it becomes a continuous benchmark harness: synthetic
// modules of 1k to 100k functions (internal/synth) are pushed through
// every solver — BA, Steensgaard (ST), the strict-inequality pipeline
// (BA+LT), sparse Andersen (CF), and the pre-rework reference Andersen
// (CF-ref) — and per-solver wall-clock, allocation, and precision
// measurements are written as a schema-versioned BENCH_<timestamp>.json
// trajectory file. With -baseline FILE the fresh run is additionally
// compared against a committed baseline: wall-clock ratios are
// normalized by their median (so a uniformly slower or faster machine
// cancels out) and the run exits non-zero when any solver regresses
// past -tolerance, or when precision or the query workload drifts at
// all.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/alias"
	"repro/internal/andersen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/driver"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/persist"
	"repro/internal/stats"
	"repro/internal/steens"
	"repro/internal/synth"
)

// exitRegression is the exit code of a -baseline run that found a
// regression, distinct from usage (2) and operational (1) failures so
// CI can tell them apart.
const exitRegression = 3

func main() {
	n := flag.Int("n", 50, "number of largest programs to measure (figure-11 mode)")
	showSets := flag.Bool("sets", false, "print the LT set size distribution (figure-11 mode)")
	csv := flag.Bool("csv", false, "emit CSV (figure-11 mode)")
	timeout := flag.Duration("timeout", 0, "per-stage analysis deadline per program (0 = unlimited); exhausted stages degrade soundly and are reported")
	maxIters := flag.Int("max-iters", 0, "per-solve worklist step cap (0 = unlimited)")
	strict := flag.Bool("strict", false, "abort on the first contained failure instead of degrading")
	jobs := flag.Int("jobs", runtime.NumCPU(), "programs analyzed concurrently (statistics are identical at any value; per-program timings include scheduling noise when > 1)")
	useCache := flag.Bool("cache", false, "share a content-addressed memo cache across all programs; stats go to stderr")
	cacheDir := flag.String("persist-cache", "", "durable memo store directory; solves persist across runs")
	outPath := flag.String("o", "", "write the output to this file instead of stdout (atomic: complete file or no file)")

	bench := flag.Bool("bench", false, "benchmark mode: measure every solver on synthetic modules and emit a BENCH_<timestamp>.json trajectory file")
	sizes := flag.String("sizes", "1000,10000,100000", "comma-separated synthetic module sizes (functions) for -bench")
	seed := flag.Int64("seed", 1, "generation seed for -bench (same seed + sizes = byte-identical workload)")
	queryFuncs := flag.Int("query-funcs", 200, "functions sampled per module for the precision measurement in -bench")
	benchOut := flag.String("bench-out", "", "trajectory file path for -bench (default BENCH_<timestamp>.json)")
	baseline := flag.String("baseline", "", "compare the fresh -bench run against this baseline file; exit 3 past -tolerance (implies -bench, sizes/seed taken from the baseline)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed median-normalized wall-clock regression per row for -baseline")
	flag.Parse()

	// All primary output funnels through one writer: stdout normally,
	// a buffer flushed atomically to -o so a crash or signal mid-run
	// can never leave a torn file behind.
	var out io.Writer = os.Stdout
	var buf bytes.Buffer
	if *outPath != "" {
		out = &buf
	}
	flush := func() int {
		if *outPath != "" {
			if err := persist.AtomicWriteFile(*outPath, buf.Bytes(), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		return 0
	}

	sizesSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "sizes" {
			sizesSet = true
		}
	})

	if *bench || *baseline != "" {
		code := runBench(out, *sizes, sizesSet, *seed, *queryFuncs, *benchOut, *baseline, *tolerance)
		if f := flush(); code == 0 && f != 0 {
			code = f
		}
		os.Exit(code)
	}
	code := runFigure11(out, *n, *showSets, *csv, *timeout, *maxIters, *strict, *jobs, *useCache, *cacheDir)
	if f := flush(); code == 0 && f != 0 {
		code = f
	}
	os.Exit(code)
}

// --- benchmark mode ---

// benchSchema versions the trajectory file format. Bump on any field
// change so -baseline refuses to compare across formats.
const benchSchema = "bench/v1"

// benchRow is one (module, solver) measurement.
type benchRow struct {
	Module     string  `json:"module"`
	Funcs      int     `json:"funcs"`
	Instrs     int     `json:"instrs"`
	Solver     string  `json:"solver"`
	WallMS     float64 `json:"wall_ms"`
	AllocBytes uint64  `json:"alloc_bytes"`
	Queries    int     `json:"queries"`
	NoAliasPct float64 `json:"noalias_pct"`
}

// benchFile is the schema-versioned trajectory file.
type benchFile struct {
	Schema  string     `json:"schema"`
	Created string     `json:"created"`
	Go      string     `json:"go"`
	Seed    int64      `json:"seed"`
	Rows    []benchRow `json:"rows"`
}

func runBench(out io.Writer, sizesCSV string, sizesSet bool, seed int64, queryFuncs int, benchOut, baseline string, tolerance float64) int {
	var base *benchFile
	sizes, err := parseSizes(sizesCSV)
	if baseline != "" {
		b, berr := loadBaseline(baseline)
		if berr != nil {
			fmt.Fprintln(os.Stderr, berr)
			return 1
		}
		base = b
		// The workload must match the baseline's or the comparison is
		// meaningless: the seed always comes from the baseline, and so
		// do the sizes unless -sizes explicitly picks a subset (how CI
		// gates on a cheap tier of a baseline that also holds the
		// expensive ones).
		seed = base.Seed
		inBase := map[int]bool{}
		for _, r := range base.Rows {
			inBase[r.Funcs] = true
		}
		if sizesSet {
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			for _, n := range sizes {
				if !inBase[n] {
					fmt.Fprintf(os.Stderr, "size %d is not in baseline %s\n", n, baseline)
					return 2
				}
			}
		} else {
			sizes = nil
			for n := range inBase {
				sizes = append(sizes, n)
			}
			sort.Ints(sizes)
		}
		// Drop baseline rows outside the chosen tier so they are not
		// reported missing.
		keep := map[int]bool{}
		for _, n := range sizes {
			keep[n] = true
		}
		var kept []benchRow
		for _, r := range base.Rows {
			if keep[r.Funcs] {
				kept = append(kept, r)
			}
		}
		base.Rows = kept
	} else if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	now := time.Now().UTC()
	file := &benchFile{
		Schema:  benchSchema,
		Created: now.Format(time.RFC3339),
		Go:      runtime.Version(),
		Seed:    seed,
	}
	for _, fn := range sizes {
		rows, err := benchModule(out, fn, seed, queryFuncs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		file.Rows = append(file.Rows, rows...)
	}

	path := benchOut
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", now.Format("20060102T150405Z"))
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := persist.AtomicWriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(out, "\ntrajectory written to %s\n", path)

	if base != nil {
		regressions := compareBaseline(out, base, file, tolerance)
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "regression: %s\n", r)
			}
			return exitRegression
		}
		fmt.Fprintf(out, "baseline check passed (tolerance %.0f%%)\n", tolerance*100)
	}
	return 0
}

func parseSizes(csv string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -sizes entry %q", part)
		}
		sizes = append(sizes, v)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("-sizes is empty")
	}
	return sizes, nil
}

func loadBaseline(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b benchFile
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.Schema != benchSchema {
		return nil, fmt.Errorf("%s: schema %q, this binary speaks %q", path, b.Schema, benchSchema)
	}
	if len(b.Rows) == 0 {
		return nil, fmt.Errorf("%s: no rows", path)
	}
	return &b, nil
}

// timed measures wall clock and allocation of one solve. Alloc uses
// the monotone TotalAlloc counter, so GC activity does not skew it.
// The explicit GC up front keeps garbage from the previous phase from
// forcing a collection inside the measured region, which would
// otherwise dominate the short solves.
func timed(f func()) (float64, uint64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	f()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(wall.Microseconds()) / 1000, after.TotalAlloc - before.TotalAlloc
}

// timedBest reruns a side-effect-free solve and keeps the fastest
// wall clock (alloc is identical across runs, so the first is kept).
// The fast solvers finish in milliseconds, where a single scheduler
// hiccup is a 1.5x swing — best-of-n is what makes a 25% regression
// tolerance meaningful for them.
func timedBest(n int, f func()) (float64, uint64) {
	wall, alloc := timed(f)
	for i := 1; i < n; i++ {
		w, _ := timed(f)
		if w < wall {
			wall = w
		}
	}
	return wall, alloc
}

// benchModule measures every solver on one synthetic module size.
// Solve timings run on a pristine compile; the strict-inequality
// pipeline gets its own compile because preparation rewrites the IR
// (e-SSA sigmas, subtraction splitting). Precision is then measured on
// the prepared module with freshly solved analyses so every solver
// answers the identical query set.
func benchModule(out io.Writer, funcs int, seed int64, queryFuncs int) ([]benchRow, error) {
	name := fmt.Sprintf("synth-%d", funcs)
	src := synth.Module(funcs, seed)

	m1, err := minic.Compile(name, src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	instrs := countInstrs(m1)
	fmt.Fprintf(out, "%s: %d funcs, %d instrs\n", name, len(m1.Funcs), instrs)

	var st *steens.Analysis
	stMS, stAlloc := timedBest(3, func() { st = steens.Analyze(m1) })
	var cf *andersen.Analysis
	cfMS, cfAlloc := timedBest(3, func() { cf = andersen.Analyze(m1) })
	var cfRef *andersen.Analysis
	refMS, refAlloc := timedBest(3, func() { cfRef = andersen.AnalyzeReference(m1) })
	if st.Degraded() != nil || cf.Degraded() != nil || cfRef.Degraded() != nil {
		return nil, fmt.Errorf("%s: a solver degraded without a budget; module unusable", name)
	}

	m2, err := minic.Compile(name, src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	var prep *core.Prepared
	ltMS, ltAlloc := timed(func() { prep = core.Prepare(m2, core.PipelineOptions{}) })

	// Precision on the prepared module: re-solve the whole-module
	// analyses on m2 so every row answers the same queries.
	st2 := steens.Analyze(m2)
	cf2 := andersen.Analyze(m2)
	ba := alias.NewBasic(m2)
	balt := alias.NewChain(ba, alias.NewSRAA(prep.LT))
	rep := alias.NewReport(name, ba, st2, balt, cf2)
	for i, f := range m2.Funcs {
		if i >= queryFuncs {
			break
		}
		alias.EvaluateFunc(f, rep, ba, st2, balt, cf2)
	}
	pct := func(an alias.Analysis) (int, float64) {
		c := rep.PerAnalysis[an.Name()]
		return c.Queries, c.NoAliasPercent()
	}
	baQ, baPct := pct(ba)
	stQ, stPct := pct(st2)
	ltQ, ltPct := pct(balt)
	cfQ, cfPct := pct(cf2)

	rows := []benchRow{
		{Module: name, Funcs: funcs, Instrs: instrs, Solver: "BA", WallMS: 0, AllocBytes: 0, Queries: baQ, NoAliasPct: baPct},
		{Module: name, Funcs: funcs, Instrs: instrs, Solver: "ST", WallMS: stMS, AllocBytes: stAlloc, Queries: stQ, NoAliasPct: stPct},
		{Module: name, Funcs: funcs, Instrs: instrs, Solver: "BA+LT", WallMS: ltMS, AllocBytes: ltAlloc, Queries: ltQ, NoAliasPct: ltPct},
		{Module: name, Funcs: funcs, Instrs: instrs, Solver: "CF", WallMS: cfMS, AllocBytes: cfAlloc, Queries: cfQ, NoAliasPct: cfPct},
		// CF-ref computes the identical fixed point (differentially
		// tested), so it shares CF's precision row.
		{Module: name, Funcs: funcs, Instrs: instrs, Solver: "CF-ref", WallMS: refMS, AllocBytes: refAlloc, Queries: cfQ, NoAliasPct: cfPct},
	}
	for _, r := range rows {
		fmt.Fprintf(out, "  %-7s %10.1fms %12s alloc   no-alias %6.2f%% of %d\n",
			r.Solver, r.WallMS, fmtBytes(r.AllocBytes), r.NoAliasPct, r.Queries)
	}
	return rows, nil
}

func countInstrs(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		f.Instrs(func(*ir.Instr) bool { n++; return true })
	}
	return n
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// compareBaseline diffs fresh against base. Wall-clock is compared via
// median-normalized ratios: ratio_i = fresh_i/base_i, scale = median
// over all rows, and a row regresses when ratio_i > scale*(1+tol) —
// a uniformly slower runner moves every ratio and cancels out, while
// one solver regressing moves only its own. Precision and query
// counts are deterministic, so any drift at all is a regression.
func compareBaseline(out io.Writer, base, fresh *benchFile, tol float64) []string {
	key := func(r benchRow) string { return r.Module + "/" + r.Solver }
	freshBy := map[string]benchRow{}
	for _, r := range fresh.Rows {
		freshBy[key(r)] = r
	}
	var regressions []string
	type pair struct {
		k     string
		ratio float64
	}
	var pairs []pair
	for _, b := range base.Rows {
		f, ok := freshBy[key(b)]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from fresh run", key(b)))
			continue
		}
		if f.Queries != b.Queries {
			regressions = append(regressions,
				fmt.Sprintf("%s: query workload drifted (%d -> %d)", key(b), b.Queries, f.Queries))
		}
		if f.NoAliasPct < b.NoAliasPct-0.05 {
			regressions = append(regressions,
				fmt.Sprintf("%s: precision dropped (%.2f%% -> %.2f%%)", key(b), b.NoAliasPct, f.NoAliasPct))
		}
		if b.WallMS > 0 && f.WallMS > 0 {
			pairs = append(pairs, pair{key(b), f.WallMS / b.WallMS})
		}
	}
	if len(pairs) > 0 {
		ratios := make([]float64, len(pairs))
		for i, p := range pairs {
			ratios[i] = p.ratio
		}
		sort.Float64s(ratios)
		scale := ratios[len(ratios)/2]
		fmt.Fprintf(out, "baseline: machine scale ×%.2f (median wall ratio)\n", scale)
		for _, p := range pairs {
			if p.ratio > scale*(1+tol) {
				regressions = append(regressions,
					fmt.Sprintf("%s: wall %.2fx vs baseline (machine scale %.2fx, tolerance %.0f%%)",
						p.k, p.ratio, scale, tol*100))
			}
		}
	}
	return regressions
}

// --- figure-11 mode (the original corpus statistics) ---

func runFigure11(out io.Writer, n int, showSets, csv bool, timeout time.Duration, maxIters int, strict bool, jobs int, useCache bool, cacheDir string) int {
	progs := append(corpus.TestSuite(100), corpus.Spec()...)

	type row struct {
		name                string
		instrs, constraints int
		pops, vars          int
		elapsed             time.Duration
	}
	var rows []row
	sizeDist := map[int]int{}
	cache, err := driver.OpenCache(useCache, cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	items := make([]harness.BatchItem, len(progs))
	for i, p := range progs {
		items[i] = harness.BatchItem{Name: p.Name, Src: p.Source}
	}
	cfg := harness.Config{
		Timeout: timeout, MaxSteps: maxIters, Strict: strict, Cache: cache,
	}
	exit := 0
	harness.RunBatch(cfg, jobs, items, nil,
		func(i int, outc *harness.BatchOutcome) {
			if outc.Err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", outc.Name, outc.Err)
				exit = 1
				return
			}
			if rep := outc.Pipe.Report(); !rep.Ok() {
				fmt.Fprintf(os.Stderr, "%s: degraded (its statistics undercount the full solve)\n%s",
					outc.Name, rep)
			}
			st := outc.Res.LT.Stats
			rows = append(rows, row{
				name: outc.Name, instrs: st.Instrs, constraints: st.Constraints,
				pops: st.Pops, vars: st.Vars, elapsed: outc.AnalyzeTime,
			})
			for k, v := range st.SetSizes {
				sizeDist[k] += v
			}
		})
	if exit != 0 {
		return exit
	}
	if cache != nil {
		fmt.Fprintf(os.Stderr, "cache: %s\n", cache.Stats())
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].instrs > rows[j].instrs })
	if len(rows) > n {
		rows = rows[:n]
	}
	// Re-sort ascending for display, as in the paper's figure.
	sort.Slice(rows, func(i, j int) bool { return rows[i].instrs < rows[j].instrs })

	var xs, ys []float64
	totalPops, totalCons := 0, 0
	if csv {
		fmt.Fprintln(out, "benchmark,instructions,constraints,pops,vars,elapsed_us")
	} else {
		fmt.Fprintf(out, "%-28s %12s %12s %10s %8s %10s\n",
			"benchmark", "instructions", "constraints", "pops", "vars", "elapsed")
	}
	for _, r := range rows {
		xs = append(xs, float64(r.instrs))
		ys = append(ys, float64(r.constraints))
		totalPops += r.pops
		totalCons += r.constraints
		if csv {
			fmt.Fprintf(out, "%s,%d,%d,%d,%d,%d\n",
				r.name, r.instrs, r.constraints, r.pops, r.vars,
				r.elapsed.Microseconds())
		} else {
			fmt.Fprintf(out, "%-28s %12d %12d %10d %8d %10s\n",
				r.name, r.instrs, r.constraints, r.pops, r.vars, r.elapsed)
		}
	}
	fit, err := stats.LinearFit(xs, ys)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(out, "\nconstraints ≈ %.3f * instructions %+.1f\n", fit.Slope, fit.Intercept)
	fmt.Fprintf(out, "R² (constraints vs instructions) = %.3f   (paper: 0.992)\n", fit.R2)
	if totalCons > 0 {
		fmt.Fprintf(out, "worklist pops per variable       = %.2f   (paper: ~2.12 per constraint)\n",
			float64(totalPops)/float64(totalCons))
	}

	if showSets {
		fmt.Fprintln(out, "\nLT set size distribution (all programs):")
		var sizes []int
		total := 0
		for k, v := range sizeDist {
			sizes = append(sizes, k)
			total += v
		}
		sort.Ints(sizes)
		small := 0
		for _, k := range sizes {
			fmt.Fprintf(out, "  |LT| = %-3d  %7d sets\n", k, sizeDist[k])
			if k <= 2 {
				small += sizeDist[k]
			}
		}
		fmt.Fprintf(out, "sets with <= 2 elements: %.1f%%   (paper: >95%%)\n",
			100*float64(small)/float64(total))
	}
	return 0
}
