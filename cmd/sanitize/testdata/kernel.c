int g_x;
int g_n;

int kernel(int i, int n) {
  int a[100];
  if (n <= 100) {
    if (i >= 0) {
      return a[i];
    }
  }
  return 0;
}

int main() {
  int x = g_x;
  int nn = g_n;
  if (x < nn) {
    return kernel(x, nn);
  }
  return 0;
}
