package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// End-to-end tests for the sanitize binary: TestMain builds it once,
// the tests run it on testdata fixtures and golden-compare stdout.
// Regenerate goldens with: go test ./cmd/sanitize -run Golden -update

var update = flag.Bool("update", false, "rewrite golden files from current output")

var sanBin string

func TestMain(m *testing.M) {
	flag.Parse()
	dir, err := os.MkdirTemp("", "sanitize-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sanBin = filepath.Join(dir, "sanitize")
	if out, err := exec.Command("go", "build", "-o", sanBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building sanitize: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// runSanitize executes the built binary and returns stdout; wantCode
// is the required exit code (the sweep modes use non-zero to signal
// violations).
func runSanitize(t *testing.T, wantCode int, args ...string) string {
	t.Helper()
	cmd := exec.Command(sanBin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("sanitize %v: %v\nstderr:\n%s", args, err, stderr.String())
	}
	if code != wantCode {
		t.Fatalf("sanitize %v exited %d, want %d\nstderr:\n%s", args, code, wantCode, stderr.String())
	}
	return stdout.String()
}

func checkGolden(t *testing.T, golden, got string) {
	t.Helper()
	path := filepath.Join("testdata", golden)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s (regenerate with -update if intended):\n--- want ---\n%s\n--- got ---\n%s",
			path, want, got)
	}
}

func TestReportGolden(t *testing.T) {
	got := runSanitize(t, 0, filepath.Join("testdata", "kernel.c"))
	checkGolden(t, "kernel.report.golden", got)
}

// TestInterprocGolden is the CLI face of the LT ablation: the same
// file gains a bounds=safe/lt verdict when -interproc is on.
func TestInterprocGolden(t *testing.T) {
	got := runSanitize(t, 0, "-interproc", filepath.Join("testdata", "kernel.c"))
	checkGolden(t, "kernel.interproc.golden", got)
}

// TestJobsEquivalence: output is byte-identical at any worker count.
func TestJobsEquivalence(t *testing.T) {
	src := filepath.Join("testdata", "kernel.c")
	base := runSanitize(t, 0, "-jobs", "1", "-interproc", src)
	for _, jobs := range []string{"4", "8"} {
		if got := runSanitize(t, 0, "-jobs", jobs, "-interproc", src); got != base {
			t.Fatalf("-jobs %s output differs from -jobs 1", jobs)
		}
	}
}

// TestSweepSmoke: both sweep modes must self-validate cleanly.
func TestSweepSmoke(t *testing.T) {
	out := runSanitize(t, 0, "-sweep", "5", "-seed", "9900")
	if want := "all verdicts consistent with execution"; !bytes.Contains([]byte(out), []byte(want)) {
		t.Fatalf("sweep output missing %q:\n%s", want, out)
	}
	runSanitize(t, 0, "-sweep", "5", "-seed", "9900", "-inject-oob")
}

// TestFailUnsafe: -fail-unsafe turns a proved-unsafe access into a
// non-zero exit, for use as a build gate.
func TestFailUnsafe(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.c")
	if err := os.WriteFile(bad, []byte("int a[4];\nint f(void) { a[9] = 1; return 0; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	runSanitize(t, 0, bad)                        // reporting alone succeeds
	out := runSanitize(t, 1, "-fail-unsafe", bad) // gating fails
	if !bytes.Contains([]byte(out), []byte("unsafe/interval")) {
		t.Fatalf("missing unsafe diagnostic:\n%s", out)
	}
}
