// Command sanitize is the static memory-safety checker built on the
// strict-inequalities toolchain: it compiles a mini-C source file (or
// parses textual IR), runs the hardened analysis pipeline, and
// classifies every memory access as proved-safe, proved-unsafe or
// unknown for three check kinds — out-of-bounds, null dereference,
// and read of uninitialized memory — reporting which prover layer
// (interval, abcd, pentagon, lt) decided each verdict.
//
// Usage:
//
//	sanitize [flags] file.c
//	sanitize [flags] -ir file.ir
//	sanitize -sweep N [flags]
//
// With -sweep N it becomes a self-checking differential harness: N
// generated programs are sanitized and executed, and every verdict is
// validated against the observed behavior (a proved-safe access must
// not trap; with -inject-oob, the planted out-of-bounds store must
// both trap and be diagnosed). The sweep exits non-zero on any
// violation, which is how CI smoke-tests the sanitizer's soundness.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/csmith"
	"repro/internal/harness"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/sanitize"
)

func main() {
	irInput := flag.Bool("ir", false, "input is textual IR rather than mini-C")
	interproc := flag.Bool("interproc", false, "enable the inter-procedural parameter facts (lets the lt layer prove cross-function bounds)")
	timeout := flag.Duration("timeout", 0, "per-stage analysis deadline (0 = unlimited); exhausted checks degrade to unknown")
	maxIters := flag.Int("max-iters", 0, "per-solve worklist step cap (0 = unlimited)")
	jobs := flag.Int("jobs", runtime.NumCPU(), "worker count for per-function stages (reports are byte-identical at any value)")
	useCache := flag.Bool("cache", false, "memoize per-function less-than solves by content hash; stats go to stderr")
	summaryOnly := flag.Bool("summary", false, "print only the aggregate summary, not per-access diagnostics")
	failUnsafe := flag.Bool("fail-unsafe", false, "exit non-zero when any access is proved unsafe")

	sweep := flag.Int("sweep", 0, "differential self-check over N generated programs instead of a file")
	seed := flag.Int64("seed", 9000, "with -sweep: first generator seed")
	injectOOB := flag.Bool("inject-oob", false, "with -sweep: plant a guaranteed out-of-bounds store in every program and require it to be both diagnosed and observed")
	flag.Parse()

	if *sweep > 0 {
		os.Exit(runSweep(*sweep, *seed, *injectOOB, *jobs, *useCache))
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sanitize [flags] file.c  |  sanitize -sweep N [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))

	var cache *harness.Cache
	if *useCache {
		cache = harness.NewCache()
	}
	p := harness.New(harness.Config{
		Timeout:         *timeout,
		MaxSteps:        *maxIters,
		Interprocedural: *interproc,
		Jobs:            *jobs,
		Cache:           cache,
	})
	var m *ir.Module
	if *irInput {
		m, err = p.ParseIR(string(src))
	} else {
		m, err = p.Compile(name, string(src))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := p.Analyze(m)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep := res.Sanitize()

	if !*summaryOnly {
		fmt.Print(rep)
	}
	sum := rep.Summarize()
	fmt.Print(sum)
	if cache != nil {
		fmt.Fprintf(os.Stderr, "cache: %s\n", cache.Stats())
	}
	if hrep := p.Report(); !hrep.Ok() {
		fmt.Fprint(os.Stderr, hrep)
	}
	if *failUnsafe && sum.Unsafe > 0 {
		os.Exit(1)
	}
}

// runSweep generates, sanitizes and executes count programs, checking
// every verdict against the interpreter. Returns the process exit
// code.
func runSweep(count int, seed int64, injectOOB bool, jobs int, useCache bool) int {
	items := make([]harness.BatchItem, count)
	for i := range items {
		s := seed + int64(i)
		items[i] = harness.BatchItem{
			Name: fmt.Sprintf("san_seed%d", s),
			Src: csmith.Generate(csmith.Config{
				Seed: s, MaxPtrDepth: 2 + i%5, Stmts: 25 + i%20,
				InjectOOB: injectOOB,
			}),
		}
	}
	var cache *harness.Cache
	if useCache {
		cache = harness.NewCache()
	}

	type verdict struct {
		violations []string
		summary    sanitize.Summary
	}
	violations := 0
	var total sanitize.Summary
	total.SafeByLayer = map[string]int{}
	harness.RunBatch(harness.Config{Cache: cache}, jobs, items,
		func(i int, out *harness.BatchOutcome) {
			if out.Err != nil {
				return
			}
			v := &verdict{}
			rep := out.Res.Sanitize()
			v.summary = rep.Summarize()

			mach := interp.NewMachine(out.Res.Module, interp.Options{})
			_, rerr := mach.Run("main")
			tr := interp.TrapOf(rerr)
			if tr != nil && tr.Code != "" {
				if k, ok := sanitize.KindOfTrap(tr.Code); ok {
					if d, found := rep.Find(tr.In, k); found && d.Verdict == sanitize.Safe {
						v.violations = append(v.violations, fmt.Sprintf(
							"UNSOUND: %s proved safe/%s but trapped %s at @%s %s",
							k, d.Layer, tr.Code, tr.Fn.FName, tr.In))
					}
				}
			}
			if injectOOB {
				if tr == nil || tr.Code != interp.TrapOOB {
					if rerr == nil {
						v.violations = append(v.violations,
							"injected oob store did not trap")
					}
					// A non-memory early exit (e.g. division by zero)
					// before the injection point is not a violation.
				} else if d, found := rep.Find(tr.In, sanitize.KindBounds); !found || d.Verdict != sanitize.Unsafe {
					v.violations = append(v.violations, fmt.Sprintf(
						"injected oob store at @%s %s not diagnosed unsafe", tr.Fn.FName, tr.In))
				}
			} else if v.summary.Unsafe > 0 {
				v.violations = append(v.violations, fmt.Sprintf(
					"%d unsafe verdicts on default (trap-free) generator output", v.summary.Unsafe))
			}
			out.Value = v
		},
		func(i int, out *harness.BatchOutcome) {
			if out.Err != nil {
				violations++
				fmt.Fprintf(os.Stderr, "%s: pipeline error: %v\n", out.Name, out.Err)
				return
			}
			v := out.Value.(*verdict)
			for _, viol := range v.violations {
				violations++
				fmt.Fprintf(os.Stderr, "%s: %s\n", out.Name, viol)
			}
			total.Checks += v.summary.Checks
			total.Safe += v.summary.Safe
			total.Unsafe += v.summary.Unsafe
			total.Unknown += v.summary.Unknown
			for l, n := range v.summary.SafeByLayer {
				total.SafeByLayer[l] += n
			}
		})

	fmt.Printf("sweep: %d programs (inject-oob=%v): %d checks, %d safe, %d unsafe, %d unknown\n",
		count, injectOOB, total.Checks, total.Safe, total.Unsafe, total.Unknown)
	fmt.Printf("safe by layer: %s\n", sanitize.LayerCounts(total.SafeByLayer))
	if cache != nil {
		fmt.Fprintf(os.Stderr, "cache: %s\n", cache.Stats())
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "sanitize: %d violation(s)\n", violations)
		return 1
	}
	fmt.Println("sanitize: all verdicts consistent with execution")
	return 0
}
