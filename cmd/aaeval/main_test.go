package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// End-to-end tests for the aaeval binary: TestMain builds it once,
// the tests run the precision-evaluation protocol on a corpus slice
// and golden-compare the CSV output. Regenerate goldens with:
// go test ./cmd/aaeval -run Golden -update

var update = flag.Bool("update", false, "rewrite golden files from current output")

var aaevalBin string

func TestMain(m *testing.M) {
	flag.Parse()
	dir, err := os.MkdirTemp("", "aaeval-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	aaevalBin = filepath.Join(dir, "aaeval")
	if out, err := exec.Command("go", "build", "-o", aaevalBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building aaeval: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func runAaeval(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command(aaevalBin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("aaeval %v: %v\nstderr:\n%s", args, err, stderr.String())
	}
	return stdout.String()
}

func checkGolden(t *testing.T, golden, got string) {
	t.Helper()
	path := filepath.Join("testdata", golden)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s (regenerate with -update if intended):\n--- want ---\n%s\n--- got ---\n%s",
			path, want, got)
	}
}

func TestCSVGolden(t *testing.T) {
	got := runAaeval(t, "-suite", "testsuite", "-n", "5", "-csv")
	checkGolden(t, "testsuite5.csv.golden", got)
}

func TestTableGolden(t *testing.T) {
	got := runAaeval(t, "-suite", "testsuite", "-n", "3")
	checkGolden(t, "testsuite3.table.golden", got)
}

// TestJobsEquivalence: the evaluation table is byte-identical at any
// worker count, with and without the shared memo cache.
func TestJobsEquivalence(t *testing.T) {
	base := runAaeval(t, "-suite", "testsuite", "-n", "6", "-csv", "-jobs", "1")
	for _, extra := range [][]string{
		{"-jobs", "4"},
		{"-jobs", "8", "-cache"},
	} {
		args := append([]string{"-suite", "testsuite", "-n", "6", "-csv"}, extra...)
		if got := runAaeval(t, args...); got != base {
			t.Fatalf("aaeval %v output differs from -jobs 1", extra)
		}
	}
}
