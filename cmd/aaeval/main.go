// Command aaeval reproduces the precision experiments of the paper:
// Figure 8 (LLVM test suite stand-in, 100 programs), Figure 9 (SPEC
// 2006 stand-in, 16 workloads), and Figure 10 (adding the Andersen-
// style CF analysis). For every benchmark it runs the aa-eval
// protocol — all pairs of pointers per function — against BA, LT,
// BA+LT, and optionally BA+CF, and prints one row per benchmark.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/alias"
	"repro/internal/corpus"
	"repro/internal/harness"
)

func main() {
	suite := flag.String("suite", "spec", "benchmark suite: spec | testsuite")
	n := flag.Int("n", 100, "number of programs for -suite testsuite")
	withCF := flag.Bool("cf", false, "also evaluate the Andersen-style CF analysis (Figure 10)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	timeout := flag.Duration("timeout", 0, "per-stage analysis deadline per benchmark (0 = unlimited); exhausted stages degrade soundly")
	maxIters := flag.Int("max-iters", 0, "per-solve worklist step cap (0 = unlimited)")
	strict := flag.Bool("strict", false, "abort on the first contained failure instead of degrading")
	flag.Parse()

	var progs []corpus.Program
	switch *suite {
	case "spec":
		progs = corpus.Spec()
	case "testsuite":
		progs = corpus.TestSuite(*n)
	default:
		fmt.Fprintf(os.Stderr, "unknown suite %q\n", *suite)
		os.Exit(2)
	}

	type row struct {
		name    string
		queries int
		pct     map[string]float64
		no      map[string]int
	}
	var rows []row
	var order []string
	degradedBenchmarks := 0
	for _, p := range progs {
		pipe := harness.New(harness.Config{
			Timeout:  *timeout,
			MaxSteps: *maxIters,
			Strict:   *strict,
			WithCF:   *withCF,
		})
		res, err := pipe.CompileAndAnalyze(p.Name, p.Source)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", p.Name, err)
			os.Exit(1)
		}
		m := res.Module
		ba := alias.NewBasic(m)
		lt := alias.NewSRAA(res.LT)
		analyses := []alias.Analysis{ba, lt, alias.NewChain(ba, lt)}
		if *withCF {
			analyses = append(analyses, alias.NewChain(ba, res.CF))
		}
		rep := res.Evaluate(analyses...)
		if hr := pipe.Report(); !hr.Ok() {
			degradedBenchmarks++
			fmt.Fprintf(os.Stderr, "%s: degraded\n%s", p.Name, hr)
		}
		r := row{name: p.Name, pct: map[string]float64{}, no: map[string]int{}}
		order = rep.Order
		for _, an := range rep.Order {
			c := rep.PerAnalysis[an]
			r.queries = c.Queries
			r.pct[an] = c.NoAliasPercent()
			r.no[an] = c.No
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].queries < rows[j].queries })

	if *csv {
		fmt.Print("benchmark,queries")
		for _, an := range order {
			fmt.Printf(",%s_no,%s_pct", an, an)
		}
		fmt.Println()
		for _, r := range rows {
			fmt.Printf("%s,%d", r.name, r.queries)
			for _, an := range order {
				fmt.Printf(",%d,%.2f", r.no[an], r.pct[an])
			}
			fmt.Println()
		}
		return
	}
	fmt.Printf("%-28s %10s", "benchmark", "queries")
	for _, an := range order {
		fmt.Printf(" %9s", an)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-28s %10d", r.name, r.queries)
		for _, an := range order {
			fmt.Printf(" %8.2f%%", r.pct[an])
		}
		fmt.Println()
	}
	if degradedBenchmarks > 0 {
		fmt.Fprintf(os.Stderr, "%d benchmark(s) ran degraded; their rows are sound but conservative\n",
			degradedBenchmarks)
	}
}
