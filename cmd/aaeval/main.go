// Command aaeval reproduces the precision experiments of the paper:
// Figure 8 (LLVM test suite stand-in, 100 programs), Figure 9 (SPEC
// 2006 stand-in, 16 workloads), and Figure 10 (adding the Andersen-
// style CF analysis). For every benchmark it runs the aa-eval
// protocol — all pairs of pointers per function — against BA, LT,
// BA+LT, and optionally ST (-steens) and BA+CF (-cf), and prints one
// row per benchmark.
//
// With -state DIR each benchmark's row is journaled as it completes;
// a run killed mid-suite and restarted with -resume skips the
// completed benchmarks and prints the identical table.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"repro/internal/alias"
	"repro/internal/corpus"
	"repro/internal/driver"
	"repro/internal/harness"
)

// aaRow is one benchmark's result — and its journaled form, so every
// field the table printer reads must live here, not in live pipeline
// state. Diag carries the deterministic degradation summary ("" for a
// clean run).
type aaRow struct {
	Name    string             `json:"name"`
	Queries int                `json:"queries"`
	Order   []string           `json:"order"`
	No      map[string]int     `json:"no"`
	Pct     map[string]float64 `json:"pct"`
	Diag    string             `json:"diag,omitempty"`
}

func main() {
	os.Exit(run())
}

func run() int {
	suite := flag.String("suite", "spec", "benchmark suite: spec | testsuite")
	n := flag.Int("n", 100, "number of programs for -suite testsuite")
	withCF := flag.Bool("cf", false, "also evaluate the Andersen-style CF analysis (Figure 10)")
	withST := flag.Bool("steens", false, "also evaluate the Steensgaard-style unification analysis (ST)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	timeout := flag.Duration("timeout", 0, "per-stage analysis deadline per benchmark (0 = unlimited); exhausted stages degrade soundly")
	maxIters := flag.Int("max-iters", 0, "per-solve worklist step cap (0 = unlimited)")
	strict := flag.Bool("strict", false, "abort on the first contained failure instead of degrading")
	jobs := flag.Int("jobs", runtime.NumCPU(), "programs analyzed concurrently (output is identical at any value)")
	useCache := flag.Bool("cache", false, "share a content-addressed memo cache across all programs; stats go to stderr")
	cacheDir := flag.String("persist-cache", "", "durable memo store directory; artifacts persist across runs")
	stateDir := flag.String("state", "", "checkpoint directory: journal per-benchmark rows so a killed run can resume")
	resume := flag.Bool("resume", false, "with -state: reuse the existing journal, skipping completed benchmarks")
	flag.Parse()

	var progs []corpus.Program
	switch *suite {
	case "spec":
		progs = corpus.Spec()
	case "testsuite":
		progs = corpus.TestSuite(*n)
	default:
		fmt.Fprintf(os.Stderr, "unknown suite %q\n", *suite)
		return 2
	}

	cache, err := driver.OpenCache(*useCache, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	ctx, stop := driver.SignalContext()
	defer stop()
	var ck *harness.BatchCheckpoint
	if *stateDir != "" {
		c, err := driver.OpenState(*stateDir, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer c.Close()
		ck = &harness.BatchCheckpoint{
			C: c,
			Encode: func(i int, out *harness.BatchOutcome) (any, error) {
				return out.Value, nil
			},
			Decode: func(i int, data []byte, out *harness.BatchOutcome) error {
				var r aaRow
				if err := json.Unmarshal(data, &r); err != nil {
					return err
				}
				out.Value = r
				return nil
			},
		}
	}

	var rows []aaRow
	var order []string
	degradedBenchmarks := 0
	items := make([]harness.BatchItem, len(progs))
	for i, p := range progs {
		items[i] = harness.BatchItem{Name: p.Name, Src: p.Source}
	}
	cfg := harness.Config{
		Timeout:  *timeout,
		MaxSteps: *maxIters,
		Strict:   *strict,
		WithCF:   *withCF,
		WithST:   *withST,
		Cache:    cache,
	}
	exit := 0
	_, completed, runErr := harness.RunBatchCtx(ctx, cfg, *jobs, items, ck,
		// Worker side: evaluation fans out with the analysis; the row
		// is fully built here so it can be journaled.
		func(i int, out *harness.BatchOutcome) {
			if out.Err != nil {
				return
			}
			m := out.Res.Module
			ba := alias.NewBasic(m)
			lt := alias.NewSRAA(out.Res.LT)
			analyses := []alias.Analysis{ba, lt, alias.NewChain(ba, lt)}
			if *withST {
				analyses = append(analyses, out.Res.ST)
			}
			if *withCF {
				analyses = append(analyses, alias.NewChain(ba, out.Res.CF))
			}
			rep := out.Res.Evaluate(analyses...)
			r := aaRow{Name: out.Name, Order: rep.Order,
				No: map[string]int{}, Pct: map[string]float64{}}
			for _, an := range rep.Order {
				c := rep.PerAnalysis[an]
				r.Queries = c.Queries
				r.Pct[an] = c.NoAliasPercent()
				r.No[an] = c.No
			}
			if hr := out.Pipe.Report(); !hr.Ok() {
				r.Diag = hr.Summary()
			}
			out.Value = r
		},
		// Serial side, in input order: collect rows and diagnostics.
		func(i int, out *harness.BatchOutcome) {
			if out.Err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", out.Name, out.Err)
				exit = 1
				return
			}
			r := out.Value.(aaRow)
			if r.Diag != "" {
				degradedBenchmarks++
				fmt.Fprintf(os.Stderr, "%s: degraded\n%s", r.Name, r.Diag)
			}
			order = r.Order
			rows = append(rows, r)
		})
	if runErr != nil {
		if *stateDir != "" {
			driver.Resumable("aaeval", completed, len(items), *stateDir)
		} else {
			fmt.Fprintf(os.Stderr, "aaeval: interrupted at %d/%d; rerun with -state DIR to make runs resumable\n",
				completed, len(items))
		}
		return driver.ExitInterrupted
	}
	if exit != 0 {
		return exit
	}
	if cache != nil {
		fmt.Fprintf(os.Stderr, "cache: %s\n", cache.Stats())
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Queries < rows[j].Queries })

	if *csv {
		fmt.Print("benchmark,queries")
		for _, an := range order {
			fmt.Printf(",%s_no,%s_pct", an, an)
		}
		fmt.Println()
		for _, r := range rows {
			fmt.Printf("%s,%d", r.Name, r.Queries)
			for _, an := range order {
				fmt.Printf(",%d,%.2f", r.No[an], r.Pct[an])
			}
			fmt.Println()
		}
		return 0
	}
	fmt.Printf("%-28s %10s", "benchmark", "queries")
	for _, an := range order {
		fmt.Printf(" %9s", an)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-28s %10d", r.Name, r.Queries)
		for _, an := range order {
			fmt.Printf(" %8.2f%%", r.Pct[an])
		}
		fmt.Println()
	}
	if degradedBenchmarks > 0 {
		fmt.Fprintf(os.Stderr, "%d benchmark(s) ran degraded; their rows are sound but conservative\n",
			degradedBenchmarks)
	}
	return 0
}
