// Command aaeval reproduces the precision experiments of the paper:
// Figure 8 (LLVM test suite stand-in, 100 programs), Figure 9 (SPEC
// 2006 stand-in, 16 workloads), and Figure 10 (adding the Andersen-
// style CF analysis). For every benchmark it runs the aa-eval
// protocol — all pairs of pointers per function — against BA, LT,
// BA+LT, and optionally BA+CF, and prints one row per benchmark.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"repro/internal/alias"
	"repro/internal/corpus"
	"repro/internal/harness"
)

func main() {
	suite := flag.String("suite", "spec", "benchmark suite: spec | testsuite")
	n := flag.Int("n", 100, "number of programs for -suite testsuite")
	withCF := flag.Bool("cf", false, "also evaluate the Andersen-style CF analysis (Figure 10)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	timeout := flag.Duration("timeout", 0, "per-stage analysis deadline per benchmark (0 = unlimited); exhausted stages degrade soundly")
	maxIters := flag.Int("max-iters", 0, "per-solve worklist step cap (0 = unlimited)")
	strict := flag.Bool("strict", false, "abort on the first contained failure instead of degrading")
	jobs := flag.Int("jobs", runtime.NumCPU(), "programs analyzed concurrently (output is identical at any value)")
	useCache := flag.Bool("cache", false, "share a content-addressed memo cache across all programs; stats go to stderr")
	flag.Parse()

	var progs []corpus.Program
	switch *suite {
	case "spec":
		progs = corpus.Spec()
	case "testsuite":
		progs = corpus.TestSuite(*n)
	default:
		fmt.Fprintf(os.Stderr, "unknown suite %q\n", *suite)
		os.Exit(2)
	}

	type row struct {
		name    string
		queries int
		pct     map[string]float64
		no      map[string]int
	}
	var rows []row
	var order []string
	degradedBenchmarks := 0
	var cache *harness.Cache
	if *useCache {
		cache = harness.NewCache()
	}
	items := make([]harness.BatchItem, len(progs))
	for i, p := range progs {
		items[i] = harness.BatchItem{Name: p.Name, Src: p.Source}
	}
	cfg := harness.Config{
		Timeout:  *timeout,
		MaxSteps: *maxIters,
		Strict:   *strict,
		WithCF:   *withCF,
		Cache:    cache,
	}
	harness.RunBatch(cfg, *jobs, items,
		// Worker side: evaluation fans out with the analysis.
		func(i int, out *harness.BatchOutcome) {
			if out.Err != nil {
				return
			}
			m := out.Res.Module
			ba := alias.NewBasic(m)
			lt := alias.NewSRAA(out.Res.LT)
			analyses := []alias.Analysis{ba, lt, alias.NewChain(ba, lt)}
			if *withCF {
				analyses = append(analyses, alias.NewChain(ba, out.Res.CF))
			}
			out.Value = out.Res.Evaluate(analyses...)
		},
		// Serial side, in input order: row building and diagnostics.
		func(i int, out *harness.BatchOutcome) {
			if out.Err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", out.Name, out.Err)
				os.Exit(1)
			}
			rep := out.Value.(*alias.Report)
			if hr := out.Pipe.Report(); !hr.Ok() {
				degradedBenchmarks++
				fmt.Fprintf(os.Stderr, "%s: degraded\n%s", out.Name, hr)
			}
			r := row{name: out.Name, pct: map[string]float64{}, no: map[string]int{}}
			order = rep.Order
			for _, an := range rep.Order {
				c := rep.PerAnalysis[an]
				r.queries = c.Queries
				r.pct[an] = c.NoAliasPercent()
				r.no[an] = c.No
			}
			rows = append(rows, r)
		})
	if cache != nil {
		fmt.Fprintf(os.Stderr, "cache: %s\n", cache.Stats())
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].queries < rows[j].queries })

	if *csv {
		fmt.Print("benchmark,queries")
		for _, an := range order {
			fmt.Printf(",%s_no,%s_pct", an, an)
		}
		fmt.Println()
		for _, r := range rows {
			fmt.Printf("%s,%d", r.name, r.queries)
			for _, an := range order {
				fmt.Printf(",%d,%.2f", r.no[an], r.pct[an])
			}
			fmt.Println()
		}
		return
	}
	fmt.Printf("%-28s %10s", "benchmark", "queries")
	for _, an := range order {
		fmt.Printf(" %9s", an)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-28s %10d", r.name, r.queries)
		for _, an := range order {
			fmt.Printf(" %8.2f%%", r.pct[an])
		}
		fmt.Println()
	}
	if degradedBenchmarks > 0 {
		fmt.Fprintf(os.Stderr, "%d benchmark(s) ran degraded; their rows are sound but conservative\n",
			degradedBenchmarks)
	}
}
