// Command csmith generates a random mini-C program, mirroring the
// paper artifact's random.sh script. The output compiles with the
// minic frontend and is suitable input for cmd/sraa and cmd/pdgeval.
//
// With -check it turns into a crash-triage fuzzer: every generated
// program is pushed through the hardened pipeline, and any program
// that provokes a contained failure (panic or verifier error) is
// persisted to -crash-dir together with the command line that
// reproduces it. The run exits non-zero when any crash was found.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/csmith"
	"repro/internal/harness"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed (output is deterministic per seed)")
	depth := flag.Int("depth", 3, "maximum pointer nesting depth (the paper uses 2..7)")
	stmts := flag.Int("stmts", 60, "approximate number of statements")
	check := flag.Bool("check", false, "run each generated program through the hardened pipeline and triage failures instead of printing the source")
	runs := flag.Int("runs", 1, "with -check: number of consecutive seeds to test, starting at -seed")
	crashDir := flag.String("crash-dir", "crashes", "with -check: directory for offending programs and their reproducer notes")
	timeout := flag.Duration("timeout", 10*time.Second, "with -check: per-stage budget deadline")
	jobs := flag.Int("jobs", runtime.NumCPU(), "with -check: seeds checked concurrently (triage output stays in seed order)")
	useCache := flag.Bool("cache", false, "with -check: share a memo cache across seeds (engages only with -timeout 0; budgeted runs bypass it)")
	injectOOB := flag.Bool("inject-oob", false, "append one guaranteed out-of-bounds array store to func_1 (for sanitizer soundness sweeps); off, the output is byte-identical to earlier releases")
	flag.Parse()

	cfg := func(s int64) csmith.Config {
		return csmith.Config{Seed: s, MaxPtrDepth: *depth, Stmts: *stmts, InjectOOB: *injectOOB}
	}

	if !*check {
		fmt.Print(csmith.Generate(cfg(*seed)))
		return
	}

	var cache *harness.Cache
	if *useCache {
		cache = harness.NewCache()
	}
	items := make([]harness.BatchItem, *runs)
	for i := range items {
		s := *seed + int64(i)
		items[i] = harness.BatchItem{
			Name: fmt.Sprintf("csmith_seed%d", s),
			Src:  csmith.Generate(cfg(s)),
		}
	}
	crashes := 0
	harness.RunBatch(harness.Config{Timeout: *timeout, WithCF: true, Cache: cache}, *jobs, items,
		// Worker side: also exercise the evaluation path, the other
		// common crash surface.
		func(i int, out *harness.BatchOutcome) {
			if out.Err == nil && out.Res != nil {
				out.Res.Evaluate()
			}
		},
		// Serial side: triage in seed order, so reruns produce the
		// same reproducers whatever the worker count.
		func(i int, out *harness.BatchOutcome) {
			rep := out.Pipe.Report()
			if out.Err == nil && rep.Ok() {
				return
			}
			s := *seed + int64(i)
			crashes++
			if werr := persistCrash(*crashDir, out.Name, s, items[i].Src, out.Err, rep); werr != nil {
				fmt.Fprintf(os.Stderr, "csmith: cannot persist crash for seed %d: %v\n", s, werr)
			} else {
				fmt.Fprintf(os.Stderr, "csmith: seed %d provoked a failure; reproducer saved under %s\n",
					s, *crashDir)
			}
		})
	if crashes > 0 {
		fmt.Fprintf(os.Stderr, "csmith: %d of %d seed(s) failed\n", crashes, *runs)
		os.Exit(1)
	}
	fmt.Printf("csmith: %d seed(s) passed the hardened pipeline cleanly\n", *runs)
}

// persistCrash writes the offending program plus a triage note: the
// exact generator command line that recreates the input and the
// failures the pipeline contained.
func persistCrash(dir, name string, seed int64, src string, err error, rep *harness.Report) error {
	if mkErr := os.MkdirAll(dir, 0o755); mkErr != nil {
		return mkErr
	}
	srcPath := filepath.Join(dir, name+".c")
	if wErr := os.WriteFile(srcPath, []byte(src), 0o644); wErr != nil {
		return wErr
	}
	note := fmt.Sprintf("# reproduce the input:\n#   go run ./cmd/csmith -seed %d -depth %s -stmts %s > %s\n",
		seed, flag.Lookup("depth").Value.String(), flag.Lookup("stmts").Value.String(), name+".c")
	note += fmt.Sprintf("# replay the pipeline:\n#   go run ./cmd/sraa -strict %s\n\n", srcPath)
	if err != nil {
		note += fmt.Sprintf("fatal error:\n%v\n\n", err)
	}
	note += rep.String()
	return os.WriteFile(filepath.Join(dir, name+".txt"), []byte(note), 0o644)
}
