// Command csmith generates a random mini-C program, mirroring the
// paper artifact's random.sh script. The output compiles with the
// minic frontend and is suitable input for cmd/sraa and cmd/pdgeval.
//
// With -check it turns into a crash-triage fuzzer: every generated
// program is pushed through the hardened pipeline, and any program
// that provokes a contained failure (panic or verifier error) is
// persisted to -crash-dir as a corpus-format repro file (replayable
// with `fuzz -replay -corpus <dir>`) plus a human triage note with
// the command line that reproduces it. The run exits non-zero when
// any crash was found.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/csmith"
	"repro/internal/fuzz"
	"repro/internal/harness"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed (output is deterministic per seed)")
	depth := flag.Int("depth", 3, "maximum pointer nesting depth (the paper uses 2..7)")
	stmts := flag.Int("stmts", 60, "approximate number of statements")
	check := flag.Bool("check", false, "run each generated program through the hardened pipeline and triage failures instead of printing the source")
	runs := flag.Int("runs", 1, "with -check: number of consecutive seeds to test, starting at -seed")
	crashDir := flag.String("crash-dir", "crashes", "with -check: directory for offending programs and their reproducer notes")
	timeout := flag.Duration("timeout", 10*time.Second, "with -check: per-stage budget deadline")
	jobs := flag.Int("jobs", runtime.NumCPU(), "with -check: seeds checked concurrently (triage output stays in seed order)")
	useCache := flag.Bool("cache", false, "with -check: share a memo cache across seeds (engages only with -timeout 0; budgeted runs bypass it)")
	injectOOB := flag.Bool("inject-oob", false, "append one guaranteed out-of-bounds array store to func_1 (for sanitizer soundness sweeps); off, the output is byte-identical to earlier releases")
	flag.Parse()

	cfg := func(s int64) csmith.Config {
		return csmith.Config{Seed: s, MaxPtrDepth: *depth, Stmts: *stmts, InjectOOB: *injectOOB}
	}

	if !*check {
		fmt.Print(csmith.Generate(cfg(*seed)))
		return
	}

	var cache *harness.Cache
	if *useCache {
		cache = harness.NewCache()
	}
	items := make([]harness.BatchItem, *runs)
	for i := range items {
		s := *seed + int64(i)
		items[i] = harness.BatchItem{
			Name: fmt.Sprintf("csmith_seed%d", s),
			Src:  csmith.Generate(cfg(s)),
		}
	}
	crashes := 0
	harness.RunBatch(harness.Config{Timeout: *timeout, WithCF: true, Cache: cache}, *jobs, items,
		// Worker side: also exercise the evaluation path, the other
		// common crash surface.
		func(i int, out *harness.BatchOutcome) {
			if out.Err == nil && out.Res != nil {
				out.Res.Evaluate()
			}
		},
		// Serial side: triage in seed order, so reruns produce the
		// same reproducers whatever the worker count.
		func(i int, out *harness.BatchOutcome) {
			rep := out.Pipe.Report()
			if out.Err == nil && rep.Ok() {
				return
			}
			s := *seed + int64(i)
			crashes++
			if werr := persistCrash(*crashDir, out.Name, s, cfg(s), items[i].Src, out.Err, rep); werr != nil {
				fmt.Fprintf(os.Stderr, "csmith: cannot persist crash for seed %d: %v\n", s, werr)
			} else {
				fmt.Fprintf(os.Stderr, "csmith: seed %d provoked a failure; reproducer saved under %s\n",
					s, *crashDir)
			}
		})
	if crashes > 0 {
		fmt.Fprintf(os.Stderr, "csmith: %d of %d seed(s) failed\n", crashes, *runs)
		os.Exit(1)
	}
	fmt.Printf("csmith: %d seed(s) passed the hardened pipeline cleanly\n", *runs)
}

// persistCrash writes the offending program as a corpus-format repro
// (seed, generator config, and failure signature in the header, the
// source as the body) plus a triage note with the exact command lines
// that recreate and replay it.
func persistCrash(dir, name string, seed int64, cfg csmith.Config, src string, err error, rep *harness.Report) error {
	conf := fmt.Sprintf("depth=%d stmts=%d", cfg.MaxPtrDepth, cfg.Stmts)
	if cfg.InjectOOB {
		conf += " inject-oob"
	}
	e := &fuzz.Entry{
		Name:   name,
		Lang:   "c",
		Oracle: "pipeline",
		Expect: "fail",
		Seed:   seed,
		Config: conf,
		Src:    src,
	}
	if len(rep.Failures) > 0 {
		e.Signature = rep.Failures[0].Signature()
	} else if err != nil {
		e.Signature = "compile:error"
	}
	if _, wErr := fuzz.WriteEntry(dir, e); wErr != nil {
		return wErr
	}
	note := fmt.Sprintf("# reproduce the input:\n#   go run ./cmd/csmith -seed %d -depth %d -stmts %d\n",
		seed, cfg.MaxPtrDepth, cfg.Stmts)
	note += fmt.Sprintf("# replay the repro:\n#   go run ./cmd/fuzz -replay -corpus %s\n\n", dir)
	if err != nil {
		note += fmt.Sprintf("fatal error:\n%v\n\n", err)
	}
	note += rep.String()
	return os.WriteFile(filepath.Join(dir, name+".txt"), []byte(note), 0o644)
}
