// Command csmith generates a random mini-C program, mirroring the
// paper artifact's random.sh script. The output compiles with the
// minic frontend and is suitable input for cmd/sraa and cmd/pdgeval.
//
// With -check it turns into a crash-triage fuzzer: every generated
// program is pushed through the hardened pipeline, and any program
// that provokes a contained failure (panic or verifier error) is
// persisted to -crash-dir as a corpus-format repro file (replayable
// with `fuzz -replay -corpus <dir>`) plus a human triage note with
// the command line that reproduces it. The run exits non-zero when
// any crash was found. With -state DIR each seed's verdict is
// journaled as it completes, so a killed sweep resumed with -resume
// skips the seeds it already covered and still produces the same
// triage files as an uninterrupted run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/csmith"
	"repro/internal/driver"
	"repro/internal/fuzz"
	"repro/internal/harness"
	"repro/internal/persist"
)

// verdict is the journaled residue of one seed's check: everything
// the serial triage phase needs, so a resumed run reproduces the same
// repro files without re-analyzing completed seeds. Note holds the
// deterministic report summary (timings excluded on purpose).
type verdict struct {
	Failed    bool   `json:"failed"`
	Signature string `json:"signature,omitempty"`
	Fatal     string `json:"fatal,omitempty"`
	Note      string `json:"note,omitempty"`
}

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Int64("seed", 1, "random seed (output is deterministic per seed)")
	depth := flag.Int("depth", 3, "maximum pointer nesting depth (the paper uses 2..7)")
	stmts := flag.Int("stmts", 60, "approximate number of statements")
	check := flag.Bool("check", false, "run each generated program through the hardened pipeline and triage failures instead of printing the source")
	runs := flag.Int("runs", 1, "with -check: number of consecutive seeds to test, starting at -seed")
	crashDir := flag.String("crash-dir", "crashes", "with -check: directory for offending programs and their reproducer notes")
	timeout := flag.Duration("timeout", 10*time.Second, "with -check: per-stage budget deadline")
	jobs := flag.Int("jobs", runtime.NumCPU(), "with -check: seeds checked concurrently (triage output stays in seed order)")
	useCache := flag.Bool("cache", false, "with -check: share a memo cache across seeds (engages only with -timeout 0; budgeted runs bypass it)")
	cacheDir := flag.String("persist-cache", "", "with -check: durable memo store directory (engages only with -timeout 0)")
	stateDir := flag.String("state", "", "with -check: checkpoint directory; seeds are journaled as they complete")
	resume := flag.Bool("resume", false, "with -state: reuse the existing journal, skipping completed seeds")
	injectOOB := flag.Bool("inject-oob", false, "append one guaranteed out-of-bounds array store to func_1 (for sanitizer soundness sweeps); off, the output is byte-identical to earlier releases")
	flag.Parse()

	cfg := func(s int64) csmith.Config {
		return csmith.Config{Seed: s, MaxPtrDepth: *depth, Stmts: *stmts, InjectOOB: *injectOOB}
	}

	if !*check {
		fmt.Print(csmith.Generate(cfg(*seed)))
		return 0
	}

	cache, err := driver.OpenCache(*useCache, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	items := make([]harness.BatchItem, *runs)
	for i := range items {
		s := *seed + int64(i)
		items[i] = harness.BatchItem{
			Name: fmt.Sprintf("csmith_seed%d", s),
			Src:  csmith.Generate(cfg(s)),
		}
	}

	ctx, stop := driver.SignalContext()
	defer stop()
	var ck *harness.BatchCheckpoint
	if *stateDir != "" {
		c, err := driver.OpenState(*stateDir, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer c.Close()
		ck = &harness.BatchCheckpoint{
			C: c,
			Encode: func(i int, out *harness.BatchOutcome) (any, error) {
				return out.Value, nil
			},
			Decode: func(i int, data []byte, out *harness.BatchOutcome) error {
				var v verdict
				if err := json.Unmarshal(data, &v); err != nil {
					return err
				}
				out.Value = v
				return nil
			},
		}
	}

	crashes := 0
	_, completed, runErr := harness.RunBatchCtx(ctx,
		harness.Config{Timeout: *timeout, WithCF: true, Cache: cache}, *jobs, items,
		ck,
		// Worker side: also exercise the evaluation path, the other
		// common crash surface, then distill the verdict the serial
		// triage phase (and the journal) consumes.
		func(i int, out *harness.BatchOutcome) {
			if out.Err == nil && out.Res != nil {
				out.Res.Evaluate()
			}
			v := verdict{}
			rep := out.Pipe.Report()
			if out.Err != nil || !rep.Ok() {
				v.Failed = true
				if len(rep.Failures) > 0 {
					v.Signature = rep.Failures[0].Signature()
				} else if out.Err != nil {
					v.Signature = "compile:error"
				}
				if out.Err != nil {
					v.Fatal = out.Err.Error()
				}
				v.Note = rep.Summary()
			}
			out.Value = v
		},
		// Serial side: triage in seed order, so reruns produce the
		// same reproducers whatever the worker count.
		func(i int, out *harness.BatchOutcome) {
			v := out.Value.(verdict)
			if !v.Failed {
				return
			}
			s := *seed + int64(i)
			crashes++
			if werr := persistCrash(*crashDir, out.Name, s, cfg(s), items[i].Src, v); werr != nil {
				fmt.Fprintf(os.Stderr, "csmith: cannot persist crash for seed %d: %v\n", s, werr)
			} else {
				fmt.Fprintf(os.Stderr, "csmith: seed %d provoked a failure; reproducer saved under %s\n",
					s, *crashDir)
			}
		})
	if runErr != nil {
		if *stateDir != "" {
			driver.Resumable("csmith", completed, *runs, *stateDir)
		} else {
			fmt.Fprintf(os.Stderr, "csmith: interrupted at %d/%d; rerun with -state DIR to make sweeps resumable\n",
				completed, *runs)
		}
		return driver.ExitInterrupted
	}
	if cache != nil {
		fmt.Fprintf(os.Stderr, "cache: %s\n", cache.Stats())
	}
	if crashes > 0 {
		fmt.Fprintf(os.Stderr, "csmith: %d of %d seed(s) failed\n", crashes, *runs)
		return 1
	}
	fmt.Printf("csmith: %d seed(s) passed the hardened pipeline cleanly\n", *runs)
	return 0
}

// persistCrash writes the offending program as a corpus-format repro
// (seed, generator config, and failure signature in the header, the
// source as the body) plus a triage note with the exact command lines
// that recreate and replay it. Both files are written atomically and
// reproduce byte-identically on a resumed run.
func persistCrash(dir, name string, seed int64, cfg csmith.Config, src string, v verdict) error {
	conf := fmt.Sprintf("depth=%d stmts=%d", cfg.MaxPtrDepth, cfg.Stmts)
	if cfg.InjectOOB {
		conf += " inject-oob"
	}
	e := &fuzz.Entry{
		Name:      name,
		Lang:      "c",
		Oracle:    "pipeline",
		Expect:    "fail",
		Seed:      seed,
		Config:    conf,
		Signature: v.Signature,
		Src:       src,
	}
	if _, wErr := fuzz.WriteEntry(dir, e); wErr != nil {
		return wErr
	}
	note := fmt.Sprintf("# reproduce the input:\n#   go run ./cmd/csmith -seed %d -depth %d -stmts %d\n",
		seed, cfg.MaxPtrDepth, cfg.Stmts)
	note += fmt.Sprintf("# replay the repro:\n#   go run ./cmd/fuzz -replay -corpus %s\n\n", dir)
	if v.Fatal != "" {
		note += fmt.Sprintf("fatal error:\n%s\n\n", v.Fatal)
	}
	note += v.Note
	return persist.AtomicWriteFile(filepath.Join(dir, name+".txt"), []byte(note), 0o644)
}
