// Command csmith generates a random mini-C program, mirroring the
// paper artifact's random.sh script. The output compiles with the
// minic frontend and is suitable input for cmd/sraa and cmd/pdgeval.
package main

import (
	"flag"
	"fmt"

	"repro/internal/csmith"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed (output is deterministic per seed)")
	depth := flag.Int("depth", 3, "maximum pointer nesting depth (the paper uses 2..7)")
	stmts := flag.Int("stmts", 60, "approximate number of statements")
	flag.Parse()

	fmt.Print(csmith.Generate(csmith.Config{
		Seed:        *seed,
		MaxPtrDepth: *depth,
		Stmts:       *stmts,
	}))
}
