package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/csmith"
	"repro/internal/fuzz"
	"repro/internal/harness"
)

// TestPersistCrashCorpusFormat: a triaged crash lands on disk as a
// corpus-format repro that ReadCorpus accepts and whose signature
// matches the contained failure, plus a human triage note.
func TestPersistCrashCorpusFormat(t *testing.T) {
	dir := t.TempDir()

	src := "int main(void) { return 1; }"
	p := harness.New(harness.Config{
		Fault: &harness.FaultConfig{Stage: harness.StageMem2Reg, Func: "main"},
	})
	if _, err := p.Compile("crash_seed42", src); err != nil {
		t.Fatal(err)
	}
	rep := p.Report()
	if rep.Ok() {
		t.Fatal("fault injection produced no failure")
	}

	gcfg := csmith.Config{Seed: 42, MaxPtrDepth: 3, Stmts: 60}
	v := verdict{Failed: true, Signature: rep.Failures[0].Signature(), Note: rep.Summary()}
	if err := persistCrash(dir, "crash_seed42", 42, gcfg, src, v); err != nil {
		t.Fatal(err)
	}

	entries, err := fuzz.ReadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("got %d corpus entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Expect != "fail" || e.Seed != 42 || e.Src != src+"\n" && e.Src != src {
		t.Fatalf("entry fields: %+v", e)
	}
	if e.Signature != rep.Failures[0].Signature() {
		t.Fatalf("signature %q does not match failure %q", e.Signature, rep.Failures[0].Signature())
	}
	if !strings.Contains(e.Config, "depth=") || !strings.Contains(e.Config, "stmts=") {
		t.Fatalf("config line %q lacks generator parameters", e.Config)
	}

	note, err := os.ReadFile(filepath.Join(dir, "crash_seed42.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(note), "cmd/fuzz -replay") {
		t.Fatalf("triage note lacks replay instructions:\n%s", note)
	}
}
