package main

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// End-to-end proofs of the distribution contract, against the real
// binaries: a multi-process sweep produces the same report bytes as a
// single-process run; SIGKILLing a worker mid-sweep costs duplicated
// work, never a changed report; and a fault-injected artifact store
// can slow the sweep down but not corrupt it.

var (
	workerBin string
	storeBin  string
	supBin    string
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "sraaworker-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	workerBin = filepath.Join(dir, "sraaworker")
	storeBin = filepath.Join(dir, "sraastore")
	supBin = filepath.Join(dir, "sraasup")
	for _, b := range []struct{ bin, pkg string }{
		{workerBin, "."},
		{storeBin, "../sraastore"},
		{supBin, "../sraasup"},
	} {
		if out, err := exec.Command("go", "build", "-o", b.bin, b.pkg).CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "building %s: %v\n%s", b.pkg, err, out)
			os.RemoveAll(dir)
			os.Exit(1)
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

const (
	e2eSeed   = "9000"
	e2eRuns   = "24"
	e2eShards = "4"
)

func sweepArgs(stateDir string, extra ...string) []string {
	args := []string{"-state", stateDir, "-shards", e2eShards,
		"-seed", e2eSeed, "-runs", e2eRuns, "-jobs", "2", "-stmts", "40"}
	return append(args, extra...)
}

func runWorker(t *testing.T, wantCode int, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command(workerBin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("sraaworker %v: %v\nstderr:\n%s", args, err, stderr.String())
	}
	if code != wantCode {
		t.Fatalf("sraaworker %v exited %d, want %d\nstdout:\n%s\nstderr:\n%s",
			args, code, wantCode, stdout.String(), stderr.String())
	}
	return stdout.String(), stderr.String()
}

// serialReport runs the whole sweep in one process and returns the
// report — the byte-compared baseline for every distributed variant.
func serialReport(t *testing.T, extra ...string) string {
	t.Helper()
	stateDir := t.TempDir()
	runWorker(t, 0, sweepArgs(stateDir, extra...)...)
	out, _ := runWorker(t, 0, sweepArgs(stateDir, "-report")...)
	return out
}

// waitForShardJournal blocks until some shard WAL holds at least one
// record, so a kill sent afterwards provably lands mid-sweep.
func waitForShardJournal(t *testing.T, stateDir string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		wals, _ := filepath.Glob(filepath.Join(stateDir, "shards", "*.wal"))
		for _, w := range wals {
			if fi, err := os.Stat(w); err == nil && fi.Size() > 64 {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no shard journal accumulated a record; cannot test mid-sweep failure")
}

// TestMultiProcessMatchesSerial: two concurrent worker processes over
// one state directory produce the serial run's report byte for byte.
func TestMultiProcessMatchesSerial(t *testing.T) {
	want := serialReport(t)

	stateDir := t.TempDir()
	w1 := exec.Command(workerBin, sweepArgs(stateDir, "-owner", "w1")...)
	w2 := exec.Command(workerBin, sweepArgs(stateDir, "-owner", "w2")...)
	var e1, e2 bytes.Buffer
	w1.Stderr, w2.Stderr = &e1, &e2
	if err := w1.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w1.Wait(); err != nil {
		t.Fatalf("worker 1: %v\n%s", err, e1.String())
	}
	if err := w2.Wait(); err != nil {
		t.Fatalf("worker 2: %v\n%s", err, e2.String())
	}

	got, _ := runWorker(t, 0, sweepArgs(stateDir, "-report")...)
	if got != want {
		t.Fatalf("multi-process report differs from serial:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// TestKillWorkerMidSweep is the headline chaos drill: SIGKILL one of
// two workers mid-sweep (no cleanup, flock dropped by the kernel,
// lease left to expire), let the survivor steal and finish the dead
// worker's shards, and require the merged report to be byte-identical
// to the single-process run.
func TestKillWorkerMidSweep(t *testing.T) {
	want := serialReport(t)

	stateDir := t.TempDir()
	// Short TTL so the survivor reclaims quickly after the kill.
	victim := exec.Command(workerBin, sweepArgs(stateDir, "-owner", "victim", "-lease-ttl", "500ms")...)
	var ve bytes.Buffer
	victim.Stderr = &ve
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	waitForShardJournal(t, stateDir)
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.Wait() // SIGKILL: exit status is meaningless, the journals are the contract

	// The survivor starts after the kill — the worst case, where no
	// second worker was even running yet when the first died.
	_, stderr := runWorker(t, 0, sweepArgs(stateDir, "-owner", "survivor", "-lease-ttl", "500ms")...)
	if !strings.Contains(stderr, "all 4 shard(s) done") {
		t.Fatalf("survivor did not finish the sweep:\n%s", stderr)
	}

	got, _ := runWorker(t, 0, sweepArgs(stateDir, "-report")...)
	if got != want {
		t.Fatalf("post-kill report differs from uninterrupted serial run:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// TestReportRefusesIncompleteSweep: the coordinator must not print a
// report while shards are unfinished — a partial run can never
// masquerade as a finished one.
func TestReportRefusesIncompleteSweep(t *testing.T) {
	stateDir := t.TempDir()
	victim := exec.Command(workerBin, sweepArgs(stateDir, "-lease-ttl", "500ms")...)
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	waitForShardJournal(t, stateDir)
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.Wait()

	_, stderr := runWorker(t, 3, sweepArgs(stateDir, "-report")...)
	if !strings.Contains(stderr, "incomplete") {
		t.Fatalf("no incompleteness diagnostic:\n%s", stderr)
	}
}

// startStore boots sraastore with the given fault spec on a free port
// and returns its base URL. The store is killed at test end.
func startStore(t *testing.T, dir, faultSpec string) string {
	t.Helper()
	args := []string{"-addr", "127.0.0.1:0", "-dir", dir}
	if faultSpec != "" {
		args = append(args, "-inject-fault", faultSpec)
	}
	cmd := exec.Command(storeBin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	// The boot line carries the resolved port.
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr := strings.Fields(line[i+len("listening on "):])[0]
			go func() { // drain the rest so the store never blocks on stderr
				for sc.Scan() {
				}
			}()
			return "http://" + addr
		}
	}
	t.Fatal("sraastore never reported its address")
	return ""
}

// TestSweepThroughFaultyStore: the full distributed stack — two
// workers sharing a fault-injected artifact store, client-side chaos
// on one of them — still converges to the serial report. The store
// may cost hits; it cannot change bytes.
func TestSweepThroughFaultyStore(t *testing.T) {
	want := serialReport(t)

	url := startStore(t, t.TempDir(), "truncate=0.1,flip=0.1,429=0.1,500=0.05,seed=5")
	stateDir := t.TempDir()
	w1 := exec.Command(workerBin, sweepArgs(stateDir, "-owner", "w1",
		"-remote-store", url, "-persist-cache", filepath.Join(t.TempDir(), "local1"))...)
	w2 := exec.Command(workerBin, sweepArgs(stateDir, "-owner", "w2",
		"-remote-store", url, "-chaos", "drop=0.1,seed=9")...)
	var e1, e2 bytes.Buffer
	w1.Stderr, w2.Stderr = &e1, &e2
	if err := w1.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w1.Wait(); err != nil {
		t.Fatalf("worker 1: %v\n%s", err, e1.String())
	}
	if err := w2.Wait(); err != nil {
		t.Fatalf("worker 2: %v\n%s", err, e2.String())
	}

	got, _ := runWorker(t, 0, sweepArgs(stateDir, "-report")...)
	if got != want {
		t.Fatalf("chaos-store report differs from serial run:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}
