package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/persist"
)

// The fleet-level chaos drill: a supervised worker fleet sweeping
// through a 3-node replicated artifact store while the schedule
// SIGKILLs the primary store mid-sweep, hard-crashes a worker twice
// (sraasup restarts it), and fakes disk-full on one replica. The
// acceptance bar, per schedule:
//
//   - the sweep completes (sraasup exits 0);
//   - the merged report is byte-identical to the serial baseline;
//   - a surviving replica promoted itself (epoch advanced);
//   - no store directory holds a corrupt record afterwards.

type chaosSchedule struct {
	name          string
	seed          int64         // sraasup backoff jitter seed
	crashAfter    int           // worker hard-exits every this many seeds, twice
	diskFullNode  int           // which replica (1 or 2) fakes ENOSPC
	diskFullAfter int           // puts that succeed on it before the fake ENOSPC
	killDelay     time.Duration // extra wait after first journaled seed before killing the primary
}

// chaosSchedules is the fixed seed matrix: five deterministic-knob
// variations of the same drill. CI runs them all; the knobs move the
// kill and crash points around the sweep so no single lucky
// interleaving can pass for robustness.
var chaosSchedules = []chaosSchedule{
	{name: "s1", seed: 1, crashAfter: 4, diskFullNode: 1, diskFullAfter: 2, killDelay: 0},
	{name: "s2", seed: 2, crashAfter: 5, diskFullNode: 2, diskFullAfter: 1, killDelay: 50 * time.Millisecond},
	{name: "s3", seed: 3, crashAfter: 6, diskFullNode: 1, diskFullAfter: 5, killDelay: 150 * time.Millisecond},
	{name: "s4", seed: 4, crashAfter: 7, diskFullNode: 2, diskFullAfter: 3, killDelay: 300 * time.Millisecond},
	{name: "s5", seed: 5, crashAfter: 8, diskFullNode: 1, diskFullAfter: 1, killDelay: 500 * time.Millisecond},
}

func TestChaosSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos schedules are slow; skipped under -short")
	}
	want := serialReport(t)
	for _, sc := range chaosSchedules {
		t.Run(sc.name, func(t *testing.T) { runChaosSchedule(t, sc, want) })
	}
}

func runChaosSchedule(t *testing.T, sc chaosSchedule, want string) {
	logDir := os.Getenv("SRAA_CHAOS_LOG_DIR")
	if logDir == "" {
		logDir = t.TempDir()
	}
	logDir = filepath.Join(logDir, sc.name)
	if err := os.MkdirAll(logDir, 0o755); err != nil {
		t.Fatal(err)
	}
	// On failure, surface every log we collected: the CI job uploads
	// SRAA_CHAOS_LOG_DIR as an artifact, but the inline dump is what a
	// local run reads first.
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		logs, _ := filepath.Glob(filepath.Join(logDir, "*"))
		for _, l := range logs {
			data, _ := os.ReadFile(l)
			t.Logf("--- %s ---\n%s", filepath.Base(l), data)
		}
	})

	// A 3-node replica set on pre-reserved ports (the advertised URLs
	// must be known before any node starts, so :0 won't do).
	addrs := make([]string, 3)
	urls := make([]string, 3)
	dirs := make([]string, 3)
	for i := range addrs {
		addrs[i] = freeAddr(t)
		urls[i] = "http://" + addrs[i]
		dirs[i] = filepath.Join(t.TempDir(), fmt.Sprintf("store%d", i))
	}
	nodes := make([]*exec.Cmd, 3)
	for i := range nodes {
		role := "replica"
		if i == 0 {
			role = "primary"
		}
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		args := []string{
			"-addr", addrs[i], "-dir", dirs[i],
			"-role", role, "-self", urls[i], "-peers", strings.Join(peers, ","),
			"-replicate-interval", "100ms", "-failover-after", "700ms",
			"-drain", "5s",
		}
		if i == sc.diskFullNode {
			args = append(args, "-inject-diskfull", fmt.Sprintf("%d", sc.diskFullAfter))
		}
		nodes[i] = startLogged(t, storeBin, args, filepath.Join(logDir, fmt.Sprintf("store%d.log", i)))
	}
	for _, u := range urls {
		waitHealthy(t, u)
	}

	stateDir := t.TempDir()
	supArgs := []string{
		"-workers", "2", "-state", stateDir, "-shards", e2eShards,
		"-max-crashes", "10", "-crash-window", "30s",
		"-backoff", "50ms", "-backoff-max", "500ms", "-drain", "20s",
		"-seed", fmt.Sprintf("%d", sc.seed), "-log-dir", logDir,
		"--", workerBin,
		"-seed", e2eSeed, "-runs", e2eRuns, "-stmts", "40", "-jobs", "2",
		"-lease-ttl", "500ms",
		"-remote-store", strings.Join(urls, ","),
		"-inject-crash", fmt.Sprintf("after=%d,times=2", sc.crashAfter),
	}
	sup := startLogged(t, supBin, supArgs, filepath.Join(logDir, "sraasup.log"))

	// Kill the primary once the sweep is provably in flight.
	waitForShardJournal(t, stateDir)
	time.Sleep(sc.killDelay)
	if err := nodes[0].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	nodes[0].Wait()

	if code := waitExit(t, sup, 3*time.Minute); code != 0 {
		t.Fatalf("sraasup exited %d, want 0 (logs in %s)", code, logDir)
	}

	// The injected worker crashes really happened: both kill markers
	// were claimed, so sraasup restarted a dead worker at least twice.
	for i := 0; i < 2; i++ {
		if _, err := os.Stat(filepath.Join(stateDir, fmt.Sprintf("crash-%d.marker", i))); err != nil {
			t.Fatalf("injected crash %d never fired: %v", i, err)
		}
	}

	// A survivor must have promoted itself past the dead primary's
	// epoch. (The sweep may finish before or after the election lands;
	// only the election's outcome is part of the contract, so poll.)
	deadline := time.Now().Add(15 * time.Second)
	promoted := false
	for !promoted && time.Now().Before(deadline) {
		for _, u := range urls[1:] {
			role, epoch, err := fetchRole(u)
			if err == nil && role == "primary" && epoch >= 2 {
				promoted = true
				break
			}
		}
		if !promoted {
			time.Sleep(100 * time.Millisecond)
		}
	}
	if !promoted {
		t.Fatalf("no replica promoted itself after the primary was killed (logs in %s)", logDir)
	}

	got, _ := runWorker(t, 0, sweepArgs(stateDir, "-report")...)
	if got != want {
		t.Fatalf("chaos report differs from serial baseline:\n--- want ---\n%s--- got ---\n%s", want, got)
	}

	// Tear the survivors down hard and audit every store directory:
	// whatever the schedule did, no node may hold a corrupt record.
	for _, n := range nodes[1:] {
		n.Process.Kill()
		n.Wait()
	}
	for i, dir := range dirs {
		st, err := persist.OpenStore(dir)
		if err != nil {
			t.Fatalf("store %d unopenable after chaos: %v", i, err)
		}
		if q := st.Stats().Quarantined; q != 0 {
			t.Fatalf("store %d quarantined %d corrupt record(s) after chaos", i, q)
		}
	}
}

// freeAddr reserves an ephemeral port and returns host:port. The
// listener closes before use — a small race, acceptable in tests, in
// exchange for URLs that exist before the processes do.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startLogged starts bin with its combined output appended to logPath
// and registers a kill at test end.
func startLogged(t *testing.T, bin string, args []string, logPath string) *exec.Cmd {
	t.Helper()
	f, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = f, f
	if err := cmd.Start(); err != nil {
		f.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
		f.Close()
	})
	return cmd
}

// waitHealthy polls url/healthz until the node answers.
func waitHealthy(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("store at %s never became healthy", url)
}

// waitExit waits for cmd with a deadline; on timeout the process is
// killed and the test fails.
func waitExit(t *testing.T, cmd *exec.Cmd, timeout time.Duration) int {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		defer func() { recover() }()
		done <- cmd.Wait()
	}()
	select {
	case err := <-done:
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatalf("wait: %v", err)
		return -1
	case <-time.After(timeout):
		cmd.Process.Kill()
		<-done
		t.Fatal("fleet did not finish within the deadline")
		return -1
	}
}

// fetchRole reads a node's /role endpoint.
func fetchRole(url string) (string, int64, error) {
	client := &http.Client{Timeout: time.Second}
	resp, err := client.Get(url + "/role")
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	var info struct {
		Role  string `json:"role"`
		Epoch int64  `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return "", 0, err
	}
	return info.Role, info.Epoch, nil
}
