// Command sraaworker is one worker of a multi-process sweep. The
// sweep's seeds are partitioned into shards; each worker process
// claims shards through heartbeat-renewed lease files under
// <state>/shards/, pushes every claimed seed through the hardened
// pipeline, and journals the verdict into the shard's checkpoint WAL.
// A worker that dies (SIGKILL included) forfeits its leases within
// the TTL and surviving workers steal the unfinished shards, replay
// their WALs, and complete the remaining seeds — at most the
// in-flight seeds are recomputed, and the merged report is
// byte-identical to a single-process run.
//
// Run N workers against one state directory (and optionally one
// shared sraastore), then produce the merged report:
//
//	sraaworker -state s -shards 4 -runs 100 &
//	sraaworker -state s -shards 4 -runs 100 &
//	wait
//	sraaworker -report -state s -shards 4 -runs 100
//
// The report is a pure function of the journaled verdicts: no
// timings, no worker names, no shard numbers. -report refuses to
// print while shards are incomplete (exit 3), so a partial run can
// never masquerade as a finished one.
//
// Exit status: 0 all assigned shards done; 130 interrupted and
// resumable (rerun the same command); 3 report requested before the
// sweep finished; 1 anything else.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/csmith"
	"repro/internal/driver"
	"repro/internal/harness"
	"repro/internal/persist/journal"
)

// verdict is the journaled residue of one seed: everything the report
// needs, deterministic by construction (no timings, no hostnames).
type verdict struct {
	Failed    bool   `json:"failed"`
	Signature string `json:"signature,omitempty"`
	Fatal     string `json:"fatal,omitempty"`
	Note      string `json:"note,omitempty"`
}

func main() {
	os.Exit(run())
}

func run() int {
	stateDir := flag.String("state", "", "shared state directory (required): shard WALs, leases, and done markers live under <state>/shards/")
	shards := flag.Int("shards", 4, "number of shards the seed space is partitioned into (must match across workers and -report)")
	seed := flag.Int64("seed", 1, "first seed of the sweep")
	runs := flag.Int("runs", 16, "number of consecutive seeds, starting at -seed")
	depth := flag.Int("depth", 3, "generator: maximum pointer nesting depth")
	stmts := flag.Int("stmts", 60, "generator: approximate number of statements")
	jobs := flag.Int("jobs", runtime.NumCPU(), "seeds checked concurrently within a claimed shard")
	owner := flag.String("owner", "", "worker identity in lease files (default host-pid)")
	ttl := flag.Duration("lease-ttl", 5*time.Second, "shard lease TTL; a worker silent this long forfeits its shards")
	report := flag.Bool("report", false, "coordinator mode: merge the shard WALs and print the deterministic sweep report")
	useCache := flag.Bool("cache", false, "share an in-memory memo cache across this worker's shards")
	cacheDir := flag.String("persist-cache", "", "local durable memo store directory")
	remoteStore := flag.String("remote-store", "", "base URL of a shared sraastore (e.g. http://127.0.0.1:8178); -persist-cache becomes its local tier")
	chaos := flag.String("chaos", "", "testing only: client-side network chaos spec for the remote store connection")
	injectCrash := flag.String("inject-crash", "", "testing only: after=N[,times=K] — hard-exit mid-sweep once N seeds are processed fleet-wide, at most K times across restarts (counters live in -state)")
	flag.Parse()

	if *stateDir == "" {
		fmt.Fprintln(os.Stderr, "sraaworker: -state is required")
		return 1
	}
	if *shards < 1 || *runs < 1 {
		fmt.Fprintln(os.Stderr, "sraaworker: -shards and -runs must be positive")
		return 1
	}
	crash, err := parseCrashPlan(*injectCrash, *stateDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sraaworker:", err)
		return 1
	}
	if crash != nil {
		fmt.Fprintf(os.Stderr, "sraaworker: CRASH INJECTION ACTIVE: %s\n", *injectCrash)
	}

	// The corpus is a pure function of (-seed, -runs, generator knobs):
	// every worker and the coordinator reconstruct the identical item
	// list, so names — the journal keys — always line up.
	items := make([]harness.BatchItem, *runs)
	for i := range items {
		s := *seed + int64(i)
		items[i] = harness.BatchItem{
			Name: fmt.Sprintf("sweep_seed%d", s),
			Src:  csmith.Generate(csmith.Config{Seed: s, MaxPtrDepth: *depth, Stmts: *stmts}),
		}
	}

	if *report {
		return printReport(*stateDir, *shards, items)
	}

	var cache *harness.Cache
	if *remoteStore != "" {
		c, client, err := driver.OpenCacheRemote(*remoteStore, *cacheDir, *chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sraaworker:", err)
			return 1
		}
		cache = c
		defer func() { fmt.Fprintf(os.Stderr, "sraaworker: %s\n", client.StatsLine()) }()
	} else {
		c, err := driver.OpenCache(*useCache, *cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sraaworker:", err)
			return 1
		}
		cache = c
	}

	who := *owner
	if who == "" {
		host, _ := os.Hostname()
		who = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	ctx, stop := driver.SignalContext()
	defer stop()

	// The per-seed budget is deliberately unlimited: wall-clock budgets
	// make verdicts depend on machine load, which would break the
	// byte-identical merge the distribution contract promises. The
	// generated corpus is small and bounded; determinism wins.
	cfg := harness.Config{WithCF: true, Cache: cache}

	wrep, err := driver.RunShardWorker(ctx, *stateDir, who, *shards, *ttl,
		func(sctx context.Context, shard int, ck *journal.Checkpoint) error {
			var sub []harness.BatchItem
			for i := range items {
				if driver.ShardOf(i, *shards) == shard {
					sub = append(sub, items[i])
				}
			}
			bck := &harness.BatchCheckpoint{
				C: ck,
				Encode: func(i int, out *harness.BatchOutcome) (any, error) {
					return out.Value, nil
				},
				Decode: func(i int, data []byte, out *harness.BatchOutcome) error {
					var v verdict
					if err := json.Unmarshal(data, &v); err != nil {
						return err
					}
					out.Value = v
					return nil
				},
			}
			_, _, err := harness.RunBatchCtx(sctx, cfg, *jobs, sub, bck,
				func(i int, out *harness.BatchOutcome) {
					out.Value = distill(out)
					// Fold hard errors into the verdict so they journal:
					// the pipeline is deterministic, so an error verdict
					// is an outcome every run of this seed produces.
					out.Err = nil
					crash.tick()
				}, nil)
			if err != nil {
				return err
			}
			// Paranoia: the done marker asserts "every item is durable";
			// verify rather than assume.
			for _, it := range sub {
				if _, ok := ck.Done(it.Name); !ok {
					return fmt.Errorf("shard %d: item %s missing from journal after clean run", shard, it.Name)
				}
			}
			return nil
		})

	fmt.Fprintf(os.Stderr, "sraaworker %s: shards done=%d claims=%d steals=%d lease-lost=%d blocked=%d\n",
		who, len(wrep.Completed), wrep.Claims, wrep.Steals, wrep.LeaseLost, wrep.Blocked)
	if cache != nil {
		fmt.Fprintf(os.Stderr, "sraaworker: cache %s\n", cache.Stats())
	}
	if err != nil {
		driver.Resumable("sraaworker", len(wrep.Completed), *shards, *stateDir)
		return driver.ExitInterrupted
	}
	fmt.Fprintf(os.Stderr, "sraaworker %s: all %d shard(s) done\n", who, *shards)
	return 0
}

// crashPlan is the parsed -inject-crash spec: kill this process — no
// drain, no lease release, deferred functions skipped — once the
// fleet has processed `after` seeds, and again every further `after`
// seeds up to `times` total kills. The counters live in the shared
// state directory so the plan survives restarts and coordinates
// across workers: a tick file grows one byte per processed seed, and
// each kill is claimed by an O_EXCL marker so exactly `times` crashes
// happen no matter how many workers race for them.
type crashPlan struct {
	after, times int
	state        string
}

func parseCrashPlan(spec, stateDir string) (*crashPlan, error) {
	if spec == "" {
		return nil, nil
	}
	p := &crashPlan{times: 1, state: stateDir}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(part, "=")
		n, err := strconv.Atoi(v)
		if !ok || err != nil || n < 1 {
			return nil, fmt.Errorf("inject-crash: bad field %q (want after=N or times=K, N,K >= 1)", part)
		}
		switch k {
		case "after":
			p.after = n
		case "times":
			p.times = n
		default:
			return nil, fmt.Errorf("inject-crash: unknown field %q", k)
		}
	}
	if p.after < 1 {
		return nil, fmt.Errorf("inject-crash: after=N is required")
	}
	return p, nil
}

// tick records one processed seed and dies if this process drew the
// short straw. Nil-safe: production runs call it on a nil plan.
func (p *crashPlan) tick() {
	if p == nil {
		return
	}
	tickPath := filepath.Join(p.state, "crash-ticks")
	f, err := os.OpenFile(tickPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	_, werr := f.Write([]byte{'.'})
	f.Close()
	if werr != nil {
		return
	}
	fi, err := os.Stat(tickPath)
	if err != nil {
		return
	}
	ticks := int(fi.Size())
	crashed := 0
	for crashed < p.times {
		if _, err := os.Stat(p.marker(crashed)); err != nil {
			break
		}
		crashed++
	}
	if crashed >= p.times || ticks < p.after*(crashed+1) {
		return
	}
	m, err := os.OpenFile(p.marker(crashed), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return // another worker claimed this kill first
	}
	m.Close()
	fmt.Fprintf(os.Stderr, "sraaworker: INJECTED CRASH %d/%d after %d seed(s) fleet-wide\n", crashed+1, p.times, ticks)
	os.Exit(7)
}

func (p *crashPlan) marker(i int) string {
	return filepath.Join(p.state, fmt.Sprintf("crash-%d.marker", i))
}

// distill compresses one outcome into its journaled verdict.
func distill(out *harness.BatchOutcome) verdict {
	v := verdict{}
	rep := out.Pipe.Report()
	if out.Err != nil || !rep.Ok() {
		v.Failed = true
		if len(rep.Failures) > 0 {
			v.Signature = rep.Failures[0].Signature()
		} else if out.Err != nil {
			v.Signature = "compile:error"
		}
		if out.Err != nil {
			v.Fatal = out.Err.Error()
		}
		v.Note = rep.Summary()
	}
	return v
}

// printReport merges the shard WALs and prints the deterministic
// sweep report: one line per seed in seed order, then a summary. The
// report is the byte-compared artifact of the kill-and-resume E2E, so
// nothing run-dependent (timings, workers, shard layout) may appear.
func printReport(dir string, shards int, items []harness.BatchItem) int {
	if !driver.AllShardsDone(dir, shards) {
		fmt.Fprintln(os.Stderr, "sraaworker: sweep incomplete; refusing to report (rerun workers to finish)")
		return 3
	}
	merged, err := driver.MergeShardCheckpoints(dir, shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sraaworker:", err)
		return 1
	}
	failed := 0
	for _, it := range items {
		raw, ok := merged[it.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "sraaworker: %s missing from journals despite done markers\n", it.Name)
			return 1
		}
		var v verdict
		if err := json.Unmarshal(raw, &v); err != nil {
			fmt.Fprintf(os.Stderr, "sraaworker: %s: undecodable verdict: %v\n", it.Name, err)
			return 1
		}
		if v.Failed {
			failed++
			fmt.Printf("%s FAIL %s\n", it.Name, v.Signature)
			continue
		}
		fmt.Printf("%s ok\n", it.Name)
	}
	fmt.Printf("sweep: %d seed(s), %d failed\n", len(items), failed)
	return 0
}
