// Command minic is a standalone driver for the mini-C toolchain:
// compile a source file to the textual IR, or compile and execute it
// in the reference interpreter (in the spirit of `tcc -run`).
//
// Usage:
//
//	minic build file.c           # print the SSA IR
//	minic run file.c [args...]   # execute main(), or f(args...) with -entry
//	minic opt file.c             # optimize (fold + RLE + DSE) and print IR
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/alias"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/opt"
)

func main() {
	entry := flag.String("entry", "main", "function to execute with `run`")
	flag.Parse()
	if flag.NArg() < 2 {
		usage()
	}
	verb, path := flag.Arg(0), flag.Arg(1)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	m, err := minic.Compile(name, string(src))
	if err != nil {
		fatal(err)
	}

	switch verb {
	case "build":
		fmt.Print(m)
	case "opt":
		folded, loads, stores := 0, 0, 0
		for _, f := range m.Funcs {
			folded += opt.FoldConstants(f)
		}
		prep := core.Prepare(m, core.PipelineOptions{})
		aa := alias.NewChain(alias.NewBasic(m), alias.NewSRAA(prep.LT))
		for _, f := range m.Funcs {
			loads += opt.EliminateRedundantLoads(f, aa)
			stores += opt.EliminateDeadStores(f, aa)
		}
		fmt.Fprintf(os.Stderr, "; folded %d, removed %d loads, %d stores\n",
			folded, loads, stores)
		fmt.Print(m)
	case "run":
		var args []interp.Val
		for _, a := range flag.Args()[2:] {
			v, err := strconv.ParseInt(a, 10, 64)
			if err != nil {
				fatal(fmt.Errorf("argument %q is not an integer", a))
			}
			args = append(args, interp.IntVal(v))
		}
		mach := interp.NewMachine(m, interp.Options{})
		v, err := mach.Run(*entry, args...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s returned %s (%d instructions executed)\n",
			*entry, v, mach.Steps())
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: minic (build | run | opt) file.c [args...]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
