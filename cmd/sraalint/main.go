// Command sraalint machine-enforces the repository's invariants:
// determinism (maporder, wallclock, ptrformat), soundness visibility
// (degraded), crash containment (goroutine), and durable writes
// (atomicwrite). It is stdlib-only and self-hosted — the tree it
// guards includes its own source.
//
// Usage:
//
//	sraalint [-dir d] [-json] [packages ...]   (default ./...)
//	sraalint -checks                           list the check suite
//
// Exit codes: 0 clean, 1 findings, 2 load/type error. Suppression is
// //lint:ignore <check> <reason> on the offending line or the line
// above; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("sraalint", flag.ExitOnError)
	dir := fs.String("dir", ".", "directory to resolve package patterns in")
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	listChecks := fs.Bool("checks", false, "list checks and their contracts, then exit")
	fs.Parse(args)

	if *listChecks {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	pkgs, err := lint.Load(*dir, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "sraalint: %v\n", err)
		return 2
	}
	findings := lint.Run(pkgs)

	// Report paths relative to the analyzed directory: stable across
	// checkouts, so the output diffs cleanly and goldens don't embed
	// absolute paths.
	if absDir, aerr := filepath.Abs(*dir); aerr == nil {
		for i := range findings {
			rel, rerr := filepath.Rel(absDir, findings[i].File)
			if rerr == nil && !strings.HasPrefix(rel, "..") {
				findings[i].File = rel
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "sraalint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "sraalint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}
