package main

// End-to-end tests for the sraalint binary: TestMain builds it once,
// the tests run it over fixture modules with planted violations and
// golden-compare the findings, assert the exit-code contract
// (0 clean / 1 findings / 2 load error), and — the self-test — run it
// over this repository itself, which must stay clean.
// Regenerate the golden with: go test ./cmd/sraalint -run Golden -update

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

var lintBin string

func TestMain(m *testing.M) {
	flag.Parse()
	dir, err := os.MkdirTemp("", "sraalint-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	lintBin = filepath.Join(dir, "sraalint")
	if out, err := exec.Command("go", "build", "-o", lintBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building sraalint: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// runLint executes the built binary and returns stdout, stderr, and
// the exit code.
func runLint(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(lintBin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("sraalint %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

func TestFixtureModuleGolden(t *testing.T) {
	got, _, code := runLint(t, "-dir", "testdata/fixturemod", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)\n%s", code, got)
	}
	golden := filepath.Join("testdata", "fixturemod.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

func TestFixtureModuleJSON(t *testing.T) {
	got, _, code := runLint(t, "-dir", "testdata/fixturemod", "-json", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, got)
	}
	var findings []struct {
		Check   string `json:"check"`
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Message string `json:"message"`
		Fix     string `json:"fix"`
	}
	if err := json.Unmarshal([]byte(got), &findings); err != nil {
		t.Fatalf("output is not a JSON findings array: %v\n%s", err, got)
	}
	// One planted violation per check, a second goroutine hit behind
	// the reasonless directive, a second wallclock hit via the import
	// chain, and the reasonless directive itself.
	wantCounts := map[string]int{
		"maporder": 1, "atomicwrite": 1, "degraded": 1,
		"wallclock": 2, "goroutine": 2, "ptrformat": 1, "suppress": 1,
	}
	gotCounts := map[string]int{}
	for _, f := range findings {
		gotCounts[f.Check]++
		if f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("finding missing position or message: %+v", f)
		}
	}
	for check, n := range wantCounts {
		if gotCounts[check] != n {
			t.Errorf("check %s: %d finding(s), want %d", check, gotCounts[check], n)
		}
	}
	for check := range gotCounts {
		if _, ok := wantCounts[check]; !ok {
			t.Errorf("unexpected check %s in findings", check)
		}
	}
}

func TestBrokenModuleLoadError(t *testing.T) {
	got, stderr, code := runLint(t, "-dir", "testdata/brokenmod", "./...")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (load error)\nstdout:\n%s\nstderr:\n%s", code, got, stderr)
	}
	if !strings.Contains(stderr, "sraalint:") {
		t.Errorf("stderr does not identify the load error:\n%s", stderr)
	}
}

func TestChecksFlag(t *testing.T) {
	got, _, code := runLint(t, "-checks")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, check := range []string{"maporder", "atomicwrite", "degraded", "wallclock", "goroutine", "ptrformat"} {
		if !strings.Contains(got, check) {
			t.Errorf("-checks output missing %s:\n%s", check, got)
		}
	}
}

// TestRepoTreeClean is the self-test the CI lint gate rests on: the
// repository that ships sraalint — this one, its own source included —
// must produce zero findings and zero unexplained suppressions.
func TestRepoTreeClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	got, stderr, code := runLint(t, "-dir", root, "./...")
	if code != 0 {
		t.Fatalf("sraalint over the repo tree: exit %d, want 0\n%s%s", code, got, stderr)
	}
	if got != "" {
		t.Errorf("expected no output on a clean tree, got:\n%s", got)
	}
}
