// Package bad parses (so gofmt stays happy) but does not type-check:
// the E2E suite asserts sraalint reports a load error with exit 2.
package bad

var X int = "definitely not an int"
