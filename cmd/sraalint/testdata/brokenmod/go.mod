module brokenmod

go 1.22
