module fixturemod

go 1.22
