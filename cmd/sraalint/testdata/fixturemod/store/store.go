// Package store writes a file without the atomic protocol.
package store

import "os"

// Save bypasses tmp+fsync+rename.
func Save(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
