// Package caller discards a solver result in one place and consumes
// it properly in another.
package caller

import "fixturemod/internal/core"

// Run throws the result — and its Degraded record — away.
func Run(n int) {
	core.Analyze(n)
}

// Checked propagates the result to its caller.
func Checked(n int) *core.Result {
	return core.Analyze(n)
}
