// Package core stands in for a pure solver package: its import path
// suffix makes the wallclock rules apply, and its Analyze entry point
// carries a degradation record the degraded check guards.
package core

import (
	"math/rand"

	"fixturemod/clock"
)

// Result carries the degradation record callers must not discard.
type Result struct{ Degraded map[string]string }

// Analyze is a solver entry point.
func Analyze(n int) *Result { return &Result{} }

// Shuffle draws from a PRNG inside a pure package.
func Shuffle(r *rand.Rand, xs []int) {
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Tick reaches the wall clock through the impure helper.
func Tick() int64 { return clock.Stamp().UnixNano() }
