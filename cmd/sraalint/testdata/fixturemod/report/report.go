// Package report violates the determinism contracts on purpose: the
// E2E suite runs the real sraalint binary over this module and
// golden-compares the findings.
package report

import (
	"fmt"
	"sort"
)

// Keys leaks map iteration order into its result.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// SortedKeys is the blessed collect-then-sort idiom and must stay
// silent.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Render formats a machine address into the report.
func Render(v *int) string {
	return fmt.Sprintf("value at %p", v)
}
