// Package clock is an impure helper: fine on its own, a wallclock
// violation once a pure solver package depends on it.
package clock

import "time"

// Stamp reads the wall clock.
func Stamp() time.Time { return time.Now() }
