// Package spawn exercises the goroutine containment check and both
// sides of the suppression contract.
package spawn

// Bare is an uncontained launch.
func Bare(done chan struct{}) {
	go func() {
		close(done)
	}()
}

// Contained carries its own recover and must stay silent.
func Contained(done chan any) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- r
			}
		}()
		done <- nil
	}()
}

// Waived is suppressed with a written reason and must stay silent.
func Waived(done chan struct{}) {
	//lint:ignore goroutine close of an unshared channel cannot panic, and this fixture proves reasoned waivers work
	go func() {
		close(done)
	}()
}

// Unexplained has a reasonless directive: both the directive and the
// launch are reported.
func Unexplained(done chan struct{}) {
	//lint:ignore goroutine
	go func() {
		close(done)
	}()
}
