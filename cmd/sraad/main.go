// Command sraad is the analysis-as-a-service daemon: it serves the
// strict-inequalities pipeline over HTTP/JSON (POST /analyze, GET
// /healthz, GET /stats) with per-request budgets, bounded admission
// with load shedding, per-request containment, a shared warm memo
// cache (optionally persisted across restarts), and graceful drain.
//
// Usage:
//
//	sraad [flags]
//	sraad -config sraad.json
//
// Config file and flags describe the same knobs; an explicitly set
// flag wins over the config file. Budgets use the shared wire form
// of budget.Spec: {"timeout":"5s","max_steps":2000000}.
//
// Shutdown: the first SIGINT/SIGTERM stops accepting, drains
// in-flight requests within -drain, flushes the cache store, prints
// the final stats, and exits 0. A second signal exits 130
// immediately.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/budget"
	"repro/internal/driver"
	"repro/internal/harness"
	"repro/internal/serve"
)

// fileConfig is the JSON shape of -config. Durations are Go duration
// strings; budgets are budget.Spec wire forms.
type fileConfig struct {
	Addr          string      `json:"addr,omitempty"`
	InFlight      int         `json:"inflight,omitempty"`
	Queue         int         `json:"queue,omitempty"`
	QueueWait     string      `json:"queue_wait,omitempty"`
	DefaultBudget budget.Spec `json:"default_budget,omitempty"`
	MaxBudget     budget.Spec `json:"max_budget,omitempty"`
	MaxSource     int         `json:"max_source,omitempty"`
	Jobs          int         `json:"jobs,omitempty"`
	Drain         string      `json:"drain,omitempty"`
	RetryAfter    string      `json:"retry_after,omitempty"`
	Cache         *bool       `json:"cache,omitempty"`
	PersistCache  string      `json:"persist_cache,omitempty"`
	MemLimit      int64       `json:"mem_limit,omitempty"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8177", "listen address (host:port; port 0 picks a free port)")
	configPath := flag.String("config", "", "JSON config file; explicitly set flags override it")
	inflight := flag.Int("inflight", 0, "max concurrently analyzed requests (0 = NumCPU)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4×inflight, negative = no queue)")
	queueWait := flag.Duration("queue-wait", time.Second, "max time a queued request waits for a slot before being shed")
	timeout := flag.Duration("timeout", 5*time.Second, "default per-request budget: wall clock per stage")
	maxIters := flag.Int("max-iters", 2_000_000, "default per-request budget: solver worklist steps")
	maxTimeout := flag.Duration("max-timeout", 30*time.Second, "ceiling client budgets are clamped to: wall clock")
	maxItersCap := flag.Int("max-iters-cap", 20_000_000, "ceiling client budgets are clamped to: steps")
	maxSource := flag.Int("max-source", 1<<20, "max request source size in bytes")
	jobs := flag.Int("jobs", 1, "function-level workers per request (server parallelizes across requests)")
	useCache := flag.Bool("cache", true, "share one warm memo cache across requests; stats on /stats")
	cacheDir := flag.String("persist-cache", "", "durable memo store directory: the warm cache survives restarts")
	drain := flag.Duration("drain", 10*time.Second, "graceful-drain deadline after SIGINT/SIGTERM")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint attached to shed (429) responses")
	injectFault := flag.String("inject-fault", "", "testing only: stage[:func[:afterSteps]] fault injected into every request")
	memLimit := flag.Int64("mem-limit", 0, "heap high-watermark in bytes: past it requests shed with 429 instead of courting the OOM killer (0 = disabled)")
	flag.Parse()

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	cfg := serve.Config{
		InFlight:      *inflight,
		Queue:         *queue,
		QueueWait:     *queueWait,
		DefaultBudget: budget.Spec{Timeout: *timeout, MaxSteps: *maxIters},
		MaxBudget:     budget.Spec{Timeout: *maxTimeout, MaxSteps: *maxItersCap},
		MaxSource:     *maxSource,
		Jobs:          *jobs,
		RetryAfter:    *retryAfter,
		MemLimit:      uint64(*memLimit),
	}
	listen, drainD, cacheOn, cacheDirV := *addr, *drain, *useCache, *cacheDir

	if *configPath != "" {
		fc, err := loadConfig(*configPath)
		if err != nil {
			fatal(err)
		}
		// The config file fills every knob whose flag was not
		// explicitly set on the command line.
		if fc.Addr != "" && !explicit["addr"] {
			listen = fc.Addr
		}
		if fc.InFlight != 0 && !explicit["inflight"] {
			cfg.InFlight = fc.InFlight
		}
		if fc.Queue != 0 && !explicit["queue"] {
			cfg.Queue = fc.Queue
		}
		if err := applyDur(&cfg.QueueWait, fc.QueueWait, explicit["queue-wait"]); err != nil {
			fatal(err)
		}
		if fc.DefaultBudget.Limited() && !explicit["timeout"] && !explicit["max-iters"] {
			cfg.DefaultBudget = fc.DefaultBudget
		}
		if fc.MaxBudget.Limited() && !explicit["max-timeout"] && !explicit["max-iters-cap"] {
			cfg.MaxBudget = fc.MaxBudget
		}
		if fc.MaxSource != 0 && !explicit["max-source"] {
			cfg.MaxSource = fc.MaxSource
		}
		if fc.Jobs != 0 && !explicit["jobs"] {
			cfg.Jobs = fc.Jobs
		}
		if err := applyDur(&drainD, fc.Drain, explicit["drain"]); err != nil {
			fatal(err)
		}
		if err := applyDur(&cfg.RetryAfter, fc.RetryAfter, explicit["retry-after"]); err != nil {
			fatal(err)
		}
		if fc.Cache != nil && !explicit["cache"] {
			cacheOn = *fc.Cache
		}
		if fc.PersistCache != "" && !explicit["persist-cache"] {
			cacheDirV = fc.PersistCache
		}
		if fc.MemLimit != 0 && !explicit["mem-limit"] {
			cfg.MemLimit = uint64(fc.MemLimit)
		}
	}

	if *injectFault != "" {
		fault, err := parseFault(*injectFault)
		if err != nil {
			fatal(err)
		}
		cfg.Fault = fault
		fmt.Fprintf(os.Stderr, "sraad: FAULT INJECTION ACTIVE: %+v\n", *fault)
	}

	cache, err := driver.OpenCache(cacheOn, cacheDirV)
	if err != nil {
		fatal(err)
	}
	cfg.Cache = cache

	ctx, stop := driver.SignalContext()
	defer stop()

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		fatal(err)
	}
	srv := serve.New(cfg)
	// The "listening on" line carries the resolved port for wrappers
	// that pass port 0.
	fmt.Fprintf(os.Stderr, "sraad: listening on %s\n", ln.Addr())

	err = srv.Serve(ctx, ln, drainD)

	// Epilogue: final counters on stderr, machine-readable, so a
	// supervisor can tell a clean drain flushed its state.
	snap := srv.Snapshot()
	if data, jerr := json.Marshal(snap); jerr == nil {
		fmt.Fprintf(os.Stderr, "sraad: final stats %s\n", data)
	}
	if cache != nil {
		fmt.Fprintf(os.Stderr, "sraad: cache %s\n", cache.Stats())
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sraad: drained cleanly (%d requests, %d shed, %d quarantined)\n",
		snap.Requests, snap.Shed, snap.Quarantined)
}

func loadConfig(path string) (*fileConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var fc fileConfig
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fc); err != nil {
		return nil, fmt.Errorf("config %s: %w", path, err)
	}
	return &fc, nil
}

// applyDur overwrites *dst with the config value unless the matching
// flag was explicitly set.
func applyDur(dst *time.Duration, v string, flagSet bool) error {
	if v == "" || flagSet {
		return nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return fmt.Errorf("config duration %q: %w", v, err)
	}
	*dst = d
	return nil
}

// parseFault parses "stage[:func[:afterSteps]]".
func parseFault(s string) (*harness.FaultConfig, error) {
	parts := strings.SplitN(s, ":", 3)
	fc := &harness.FaultConfig{Stage: parts[0]}
	if len(parts) > 1 {
		fc.Func = parts[1]
	}
	if len(parts) > 2 {
		n, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("inject-fault steps %q: %w", parts[2], err)
		}
		fc.AfterSteps = n
	}
	return fc, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sraad:", err)
	os.Exit(1)
}
