package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// End-to-end tests: TestMain builds sraad and sraabench once; the
// tests run the daemon as a real process, drive it over HTTP, and
// signal it, asserting the service contract — every answered request
// is 200 (sound, possibly degraded) or 429, never 5xx, and SIGTERM
// drains in-flight work and exits 0.

var (
	sraadBin string
	benchBin string
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "sraad-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sraadBin = filepath.Join(dir, "sraad")
	benchBin = filepath.Join(dir, "sraabench")
	for bin, pkg := range map[string]string{sraadBin: ".", benchBin: "repro/cmd/sraabench"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "building %s: %v\n%s", pkg, err, out)
			os.RemoveAll(dir)
			os.Exit(1)
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

const testSrc = `
int a[100];
int main(void) {
  int i;
  int s = 0;
  for (i = 0; i < 100; i++) { a[i] = i; }
  for (i = 1; i < 100; i++) { s = s + a[i] - a[i-1]; }
  return s;
}
`

// daemon wraps a running sraad process.
type daemon struct {
	cmd    *exec.Cmd
	addr   string // host:port actually bound
	done   chan error
	mu     sync.Mutex
	stderr bytes.Buffer
}

func (d *daemon) stderrText() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stderr.String()
}

// startDaemon launches sraad on a free port and waits for it to
// report readiness. The process is killed at test cleanup if a test
// forgot to shut it down.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	d := &daemon{done: make(chan error, 1)}
	d.cmd = exec.Command(sraadBin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	pipe, err := d.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.stderr.WriteString(line + "\n")
			d.mu.Unlock()
			if rest, ok := strings.CutPrefix(line, "sraad: listening on "); ok {
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() { d.done <- d.cmd.Wait() }()
	t.Cleanup(func() { d.cmd.Process.Kill() })
	select {
	case d.addr = <-addrCh:
	case err := <-d.done:
		t.Fatalf("sraad exited before listening: %v\nstderr:\n%s", err, d.stderrText())
	case <-time.After(30 * time.Second):
		t.Fatalf("sraad never reported listening\nstderr:\n%s", d.stderrText())
	}
	return d
}

// shutdown sends SIGTERM and asserts a clean drain: exit status 0 and
// the drain epilogue on stderr.
func (d *daemon) shutdown(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-d.done:
		if err != nil {
			t.Fatalf("sraad exit after SIGTERM: %v\nstderr:\n%s", err, d.stderrText())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("sraad did not exit after SIGTERM\nstderr:\n%s", d.stderrText())
	}
	for _, want := range []string{"drained cleanly", "final stats"} {
		if !strings.Contains(d.stderrText(), want) {
			t.Errorf("stderr missing %q:\n%s", want, d.stderrText())
		}
	}
}

func analyzeBody(t *testing.T, name string) []byte {
	t.Helper()
	body, err := json.Marshal(map[string]any{
		"name": name, "lang": "minic", "source": testSrc,
		"queries": []string{"lt", "alias"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// postAnalyze returns (statusCode, responseBody, nil) or a transport
// error.
func postAnalyze(addr string, body []byte) (int, []byte, error) {
	res, err := http.Post("http://"+addr+"/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer res.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(res.Body)
	return res.StatusCode, buf.Bytes(), nil
}

// TestBurstUnderFaultInjection is the headline acceptance check: a
// tiny in-flight limit, a 50-request burst, and a fault injected into
// every request. Every single request must be answered 200 (degraded
// but sound) or 429 — no hangs, no 5xx, no process death — and the
// daemon must still drain cleanly afterwards.
func TestBurstUnderFaultInjection(t *testing.T) {
	d := startDaemon(t,
		"-inflight", "2", "-queue", "2", "-queue-wait", "100ms",
		"-inject-fault", "lessthan")
	body := analyzeBody(t, "burst")

	const burst = 50
	codes := make([]int, burst)
	degraded := make([]bool, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, respBody, err := postAnalyze(d.addr, body)
			if err != nil {
				t.Errorf("request %d: transport error: %v", i, err)
				return
			}
			codes[i] = code
			if code == http.StatusOK {
				var r struct {
					Degraded bool                `json:"degraded"`
					LT       map[string][]string `json:"lt"`
				}
				if jerr := json.Unmarshal(respBody, &r); jerr != nil {
					t.Errorf("request %d: bad response body: %v", i, jerr)
					return
				}
				degraded[i] = r.Degraded
				// Sound degradation: the faulted LT stage must
				// publish nothing rather than something wrong.
				for v, refs := range r.LT {
					if len(refs) > 0 {
						t.Errorf("request %d: degraded response has LT facts for %s", i, v)
					}
				}
			}
		}(i)
	}
	wg.Wait()

	var ok200, shed429 int
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			ok200++
			if !degraded[i] {
				t.Errorf("request %d: fault injected but response not degraded", i)
			}
		case http.StatusTooManyRequests:
			shed429++
		default:
			t.Errorf("request %d: status %d, want 200 or 429", i, code)
		}
	}
	if ok200 == 0 {
		t.Error("burst produced no 200s at all")
	}
	t.Logf("burst: %d ok (degraded), %d shed", ok200, shed429)

	d.shutdown(t)
}

// TestSigtermMidBurstDrains fires a burst and signals the daemon
// while requests are still in flight. Accepted requests must be
// answered (200/429, never 5xx); connections arriving after the
// listener closes may fail at the transport level; the process must
// exit 0 with the drain epilogue.
func TestSigtermMidBurstDrains(t *testing.T) {
	d := startDaemon(t, "-inflight", "2", "-queue", "8", "-queue-wait", "2s")
	body := analyzeBody(t, "drain")

	const burst = 50
	var answered atomic.Int64
	var bad atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _, err := postAnalyze(d.addr, body)
			if err != nil {
				return // transport error after listener closed: allowed
			}
			answered.Add(1)
			if code != http.StatusOK && code != http.StatusTooManyRequests {
				bad.Add(1)
				t.Errorf("status %d, want 200 or 429", code)
			}
		}()
	}
	// Let some requests land, then pull the plug mid-burst.
	deadline := time.Now().Add(10 * time.Second)
	for answered.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	select {
	case err := <-d.done:
		if err != nil {
			t.Fatalf("exit after SIGTERM: %v\nstderr:\n%s", err, d.stderrText())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("no exit after SIGTERM\nstderr:\n%s", d.stderrText())
	}
	if !strings.Contains(d.stderrText(), "drained cleanly") {
		t.Errorf("stderr missing drain epilogue:\n%s", d.stderrText())
	}
	if answered.Load() == 0 {
		t.Error("no request was answered before/after the signal")
	}
	t.Logf("answered %d/%d before+during drain, %d bad", answered.Load(), burst, bad.Load())
}

// TestWarmDaemonHitRateImproves runs sraabench twice against one
// daemon: the second window must see a strictly higher cache hit rate
// than the cold first window.
func TestWarmDaemonHitRateImproves(t *testing.T) {
	d := startDaemon(t, "-inflight", "4")

	runBench := func() float64 {
		out, err := exec.Command(benchBin,
			"-addr", "http://"+d.addr, "-n", "12", "-c", "4",
			"-programs", "3", "-queries", "alias").CombinedOutput()
		if err != nil {
			t.Fatalf("sraabench: %v\n%s", err, out)
		}
		const marker = "window-hit-rate="
		idx := bytes.LastIndex(out, []byte(marker))
		if idx < 0 {
			t.Fatalf("sraabench output missing %q:\n%s", marker, out)
		}
		rate, err := strconv.ParseFloat(strings.TrimSpace(string(out[idx+len(marker):])), 64)
		if err != nil {
			t.Fatalf("parsing hit rate: %v\n%s", err, out)
		}
		t.Logf("sraabench window hit rate %.4f\n%s", rate, out)
		return rate
	}

	cold := runBench()
	warm := runBench()
	if warm <= cold {
		t.Errorf("warm hit rate %.4f not above cold %.4f", warm, cold)
	}
	d.shutdown(t)
}

// TestConfigFile boots the daemon purely from a JSON config file and
// checks the knobs took effect end to end (healthz up, a shed happens
// with inflight=1 and no queue while a slow request holds the slot).
func TestConfigFile(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "sraad.json")
	cfg := fmt.Sprintf(`{
  "inflight": 1,
  "queue": -1,
  "default_budget": {"timeout": "5s", "max_steps": 1000000},
  "retry_after": "3s",
  "persist_cache": %q
}`, filepath.Join(dir, "cache"))
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	d := startDaemon(t, "-config", cfgPath)

	res, err := http.Get("http://" + d.addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", res.StatusCode)
	}

	// With one slot and no queue, a concurrent pair must include at
	// most one winner at a time; fire a few and require at least one
	// shed carrying the configured Retry-After.
	body := analyzeBody(t, "cfg")
	var shed atomic.Int64
	var retryAfter atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := http.Post("http://"+d.addr+"/analyze", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("post: %v", err)
				return
			}
			defer res.Body.Close()
			if res.StatusCode == http.StatusTooManyRequests {
				shed.Add(1)
				if ra, _ := strconv.Atoi(res.Header.Get("Retry-After")); ra > 0 {
					retryAfter.Store(int64(ra))
				}
			} else if res.StatusCode != http.StatusOK {
				t.Errorf("status %d", res.StatusCode)
			}
		}()
	}
	wg.Wait()
	if shed.Load() > 0 && retryAfter.Load() != 3 {
		t.Errorf("Retry-After = %d, want 3 from config", retryAfter.Load())
	}
	d.shutdown(t)

	// The persistent cache directory must exist and hold the store
	// after a clean drain.
	if _, err := os.Stat(filepath.Join(dir, "cache")); err != nil {
		t.Errorf("persist cache dir: %v", err)
	}
}
