// Package stats provides the small statistical helpers the paper's
// scalability study uses: least-squares linear regression and the
// coefficient of determination R² (Figure 11 reports R² = 0.992
// between instruction and constraint counts).
package stats

import (
	"errors"
	"math"
)

// Fit is a least-squares line y = Slope*x + Intercept.
type Fit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// LinearFit fits a line to the points (xs[i], ys[i]).
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, errors.New("stats: mismatched sample lengths")
	}
	n := float64(len(xs))
	if n < 2 {
		return Fit{}, errors.New("stats: need at least two samples")
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return Fit{}, errors.New("stats: degenerate x values")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	// R² = 1 - SS_res / SS_tot.
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - my) * (ys[i] - my)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// Pearson returns the correlation coefficient of the samples.
func Pearson(xs, ys []float64) (float64, error) {
	fit, err := LinearFit(xs, ys)
	if err != nil {
		return 0, err
	}
	if fit.R2 < 0 {
		return 0, nil
	}
	r := math.Sqrt(fit.R2)
	if fit.Slope < 0 {
		r = -r
	}
	return r, nil
}
