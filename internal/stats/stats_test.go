package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPerfectLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{3, 5, 7, 9, 11} // y = 2x + 1
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-9 || math.Abs(fit.Intercept-1) > 1e-9 {
		t.Errorf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if math.Abs(fit.R2-1) > 1e-9 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestNoisyLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{2.1, 3.9, 6.2, 7.8, 10.1, 11.9}
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v, want > 0.99 for mild noise", fit.R2)
	}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.99 {
		t.Errorf("Pearson = %v", r)
	}
}

func TestNegativeCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{8, 6, 4, 2}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r+1) > 1e-9 {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("accepted single sample")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := LinearFit([]float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("accepted degenerate xs")
	}
}

// TestFitRecoversLineProperty: fitting exact lines recovers slope and
// intercept for arbitrary parameters.
func TestFitRecoversLineProperty(t *testing.T) {
	prop := func(a, b int8, spread uint8) bool {
		slope := float64(a)
		intercept := float64(b)
		n := 3 + int(spread)%10
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = float64(i * (1 + int(spread)%5))
			ys[i] = slope*xs[i] + intercept
		}
		fit, err := LinearFit(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(fit.Slope-slope) < 1e-6 &&
			math.Abs(fit.Intercept-intercept) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
