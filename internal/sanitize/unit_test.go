// Internal unit tests for the sanitizer's small pure helpers: trap
// mapping, summary rendering, overflow-checked arithmetic, and the
// interpreter-exact malloc sizing edge cases.
package sanitize

import (
	"math"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
)

func TestKindOfTrap(t *testing.T) {
	cases := []struct {
		code string
		kind Kind
		ok   bool
	}{
		{interp.TrapOOB, KindBounds, true},
		{interp.TrapNull, KindNull, true},
		{interp.TrapUndef, KindUninit, true},
		{"", 0, false},
		{"div", 0, false},
	}
	for _, tc := range cases {
		k, ok := KindOfTrap(tc.code)
		if ok != tc.ok || (ok && k != tc.kind) {
			t.Errorf("KindOfTrap(%q) = %v, %v; want %v, %v", tc.code, k, ok, tc.kind, tc.ok)
		}
	}
}

func TestStringers(t *testing.T) {
	if KindBounds.String() != "bounds" || KindNull.String() != "null" || KindUninit.String() != "uninit" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Errorf("out-of-range kind = %q", Kind(9))
	}
	if Safe.String() != "safe" || Unsafe.String() != "unsafe" || Unknown.String() != "unknown" {
		t.Error("Verdict strings wrong")
	}
}

func TestSummaryString(t *testing.T) {
	rep := &Report{Diags: []Diagnostic{
		{Kind: KindBounds, Verdict: Safe, Layer: LayerLT},
		{Kind: KindBounds, Verdict: Unsafe, Layer: LayerInterval},
		{Kind: KindNull, Verdict: Safe, Layer: LayerNullness},
		{Kind: KindUninit, Verdict: Unknown, Layer: LayerBudget},
	}}
	s := rep.Summarize()
	if s.Checks != 4 || s.Safe != 2 || s.Unsafe != 1 || s.Unknown != 1 {
		t.Fatalf("summary = %+v", s)
	}
	out := s.String()
	for _, want := range []string{
		"checks 4: safe 2, unsafe 1, unknown 1",
		"safe by layer: lt 1, nullness 1",
		"unsafe by layer: interval 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
}

func TestExactArithmetic(t *testing.T) {
	cases := []struct {
		a, b int64
		sum  int64
		ok   bool
	}{
		{1, 2, 3, true},
		{math.MaxInt64, 1, 0, false},
		{math.MinInt64, -1, 0, false},
		{math.MaxInt64, -1, math.MaxInt64 - 1, true},
		{-5, 5, 0, true},
	}
	for _, tc := range cases {
		got, ok := addExact(tc.a, tc.b)
		if ok != tc.ok || (ok && got != tc.sum) {
			t.Errorf("addExact(%d, %d) = %d, %v; want %d, %v", tc.a, tc.b, got, ok, tc.sum, tc.ok)
		}
	}
	if _, ok := subExact(1, math.MinInt64); ok {
		t.Error("subExact(1, MinInt64) must overflow")
	}
	if got, ok := subExact(-2, math.MinInt64); !ok || got != math.MinInt64+(-2)-math.MinInt64*2 {
		// -2 - MinInt64 = MaxInt64 - 1: representable.
		if !ok || got != math.MaxInt64-1 {
			t.Errorf("subExact(-2, MinInt64) = %d, %v", got, ok)
		}
	}
	if got, ok := subExact(10, 3); !ok || got != 7 {
		t.Errorf("subExact(10, 3) = %d, %v", got, ok)
	}
}

// TestResolveMallocEdges builds malloc instructions directly and
// checks the interpreter-exact sizing rules: zero bytes still
// allocates one cell, negative and absurd sizes are unresolvable
// (the malloc itself traps, so accesses through it are unreachable),
// and non-constant sizes resolve to nothing.
func TestResolveMallocEdges(t *testing.T) {
	i64 := ir.I64
	cases := []struct {
		bytes    int64
		wantOK   bool
		wantSize int64
	}{
		{80, true, 10},
		{0, true, 1},
		{7, true, 1}, // 7/8 = 0 cells, rounded up to 1
		{-8, false, 0},
		{int64(1) << 62, false, 0}, // > 1<<28 cells: interp calls it unreasonable
	}
	for _, tc := range cases {
		in := &ir.Instr{Op: ir.OpMalloc, Typ: ir.Ptr(i64), Args: []ir.Value{&ir.Const{Val: tc.bytes, Typ: i64}}}
		r, ok := resolveMalloc(in, resolved{})
		if ok != tc.wantOK || (ok && r.size != tc.wantSize) {
			t.Errorf("resolveMalloc(%d bytes) = size %d, ok %v; want %d, %v",
				tc.bytes, r.size, ok, tc.wantSize, tc.wantOK)
		}
	}
	// Non-constant size: unresolvable.
	szParam := &ir.Param{PName: "n", Typ: i64}
	in := &ir.Instr{Op: ir.OpMalloc, Typ: ir.Ptr(i64), Args: []ir.Value{szParam}}
	if _, ok := resolveMalloc(in, resolved{}); ok {
		t.Error("non-constant malloc size resolved")
	}
}
