// The layered prover behind the sanitizer's verdicts. Bounds proofs
// try four layers in cost order — interval ranges, the ABCD graph,
// the Pentagon domain, the paper's LT solver — and record the
// strongest layer a proof needed, which is how the experiments
// attribute "only LT could discharge this access".
//
// Every relational query quantifies over witnesses under a
// runtime-equality discipline: an access index is interchangeable
// with its sigma/copy sources (the chain), and a witness w may borrow
// interval caps from any value sharing its root (the group) whose
// definition dominates the access — e-SSA renames values at every
// branch, so the fact "i < j" and the fact "j <= 99" usually attach
// to different names of the same runtime value, and neither the
// relational provers nor the range analysis will bridge them alone.
package sanitize

import (
	"repro/internal/abcd"
	"repro/internal/budget"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/pentagon"
	"repro/internal/rangeanal"
)

// Bounds-layer indices, in the order they are tried; the verdict
// records the strongest (highest) layer either half of the proof
// needed.
const (
	layerInterval = iota
	layerABCD
	layerPentagon
	layerLT
)

var boundsLayerName = [...]string{LayerInterval, LayerABCD, LayerPentagon, LayerLT}

// capLimit filters witness caps: no allocation exceeds 1<<28 cells,
// so a cap beyond this is range-analysis saturation noise that cannot
// discharge any bound — skipping it saves pointless graph searches.
const capLimit = int64(1) << 40

// prover holds the per-function analyses, built lazily: csmith-style
// code indexes mostly with constants, and functions whose every check
// the interval layer settles never pay for the dominator tree, the
// ABCD graph or the Pentagon fixpoint.
type prover struct {
	f      *ir.Func
	ranges *rangeanal.Result
	lt     *core.Result
	bgt    *budget.B

	dom   *cfg.DomTree
	graph *abcd.Graph
	pent  *pentagon.Analysis

	null   map[ir.Value]nullState
	groups map[ir.Value][]ir.Value
	cands  []ir.Value
	posIn  map[*ir.Instr]int
}

func newProver(f *ir.Func, ranges *rangeanal.Result, lt *core.Result, bgt *budget.B) *prover {
	return &prover{
		f: f, ranges: ranges, lt: lt, bgt: bgt,
		null: map[ir.Value]nullState{},
	}
}

func (p *prover) domtree() *cfg.DomTree {
	if p.dom == nil {
		p.f.RecomputeCFG()
		p.dom = cfg.NewDomTree(p.f)
	}
	return p.dom
}

func (p *prover) abcdGraph() *abcd.Graph {
	if p.graph == nil {
		p.graph = abcd.BuildGraph(p.f)
	}
	return p.graph
}

func (p *prover) pentagon() *pentagon.Analysis {
	if p.pent == nil {
		p.pent = pentagon.AnalyzeFunc(p.f)
	}
	return p.pent
}

// candidates lists the witness values relational layers quantify
// over: the function's int-typed params and instruction results.
func (p *prover) candidates() []ir.Value {
	if p.cands == nil {
		vals := p.f.Values()
		p.cands = make([]ir.Value, 0, len(vals))
		for _, v := range vals {
			if ir.IsInt(v.Type()) {
				p.cands = append(p.cands, v)
			}
		}
		if p.cands == nil {
			p.cands = []ir.Value{}
		}
	}
	return p.cands
}

// pos returns in's index within its block, for same-block dominance.
func (p *prover) pos(in *ir.Instr) int {
	if p.posIn == nil {
		p.posIn = map[*ir.Instr]int{}
	}
	if i, ok := p.posIn[in]; ok {
		return i
	}
	for i, bi := range in.Blk.Instrs {
		p.posIn[bi] = i
	}
	return p.posIn[in]
}

// check classifies one (access, kind) pair.
func (p *prover) check(in *ir.Instr, k Kind) (Verdict, string) {
	switch k {
	case KindBounds:
		return p.bounds(in)
	case KindNull:
		switch p.nullness(boundsPtr(in)) {
		case nullNonNull:
			return Safe, LayerNullness
		case nullMustNull:
			return Unsafe, LayerNullness
		}
		return Unknown, LayerNone
	case KindUninit:
		if hasUndefOperand(in) {
			return Unsafe, LayerDirect
		}
		return Safe, LayerDirect
	}
	return Unknown, LayerNone
}

// bounds classifies the access offset against the resolved object
// size. Verdicts are per-kind: an access may be bounds-Safe yet
// null-Unknown, because the offset argument is sound whichever object
// the matching allocation produced.
func (p *prover) bounds(in *ir.Instr) (Verdict, string) {
	r, ok := resolveBase(boundsPtr(in))
	if !ok {
		return Unknown, LayerNone
	}
	// Offset interval: k plus the chain-refined range of each
	// symbolic index. An over-approximation of every reachable
	// offset, so an interval wholly outside [0, size) proves the
	// access traps whenever executed.
	iv := rangeanal.Point(r.k)
	for _, s := range r.syms {
		iv = rangeanal.Add(iv, p.bestRange(s))
	}
	if iv.Hi < 0 || iv.Lo > r.size-1 {
		return Unsafe, LayerInterval
	}
	if iv.Lo >= 0 && iv.Hi <= r.size-1 {
		return Safe, LayerInterval
	}
	if len(r.syms) != 1 {
		// Multi-symbol offsets get the interval layer only.
		return Unknown, LayerNone
	}
	// Single symbolic index s: the access is in bounds iff
	// -k <= s <= size-1-k. Prove each half independently; the
	// verdict's layer is the strongest either half needed.
	s := r.syms[0]
	upBound, okU := subExact(r.size-1, r.k)
	loBound, okL := subExact(0, r.k)
	if !okU || !okL {
		return Unknown, LayerNone
	}
	upLayer, upOK := p.proveUpper(s, upBound, in)
	if !upOK {
		return Unknown, LayerNone
	}
	loLayer, loOK := p.proveLower(s, loBound, in)
	if !loOK {
		return Unknown, LayerNone
	}
	return Safe, boundsLayerName[max(upLayer, loLayer)]
}

// proveUpper proves s <= bound at the program point of at, returning
// the first layer that succeeds.
func (p *prover) proveUpper(s ir.Value, bound int64, at *ir.Instr) (int, bool) {
	aliases := p.chain(s)

	// Interval: the chain-refined range alone.
	if p.bestRange(s).Hi <= bound {
		return layerInterval, true
	}

	// ABCD: find a witness w with s <= w + c (relational graph) and
	// w <= cap (group interval), such that cap + c <= bound.
	g := p.abcdGraph()
	for _, w := range p.candidates() {
		if p.bgt.Tick() != nil {
			return 0, false
		}
		cap := p.groupHi(w, at)
		if cap >= capLimit {
			continue
		}
		c, ok := subExact(bound, cap)
		if !ok {
			continue
		}
		for _, a := range aliases {
			if g.ProveLE(a, w, c) {
				return layerABCD, true
			}
		}
	}

	// Pentagon: flow-sensitive interval at the access block, or a
	// strict SUB fact s < w with w capped at the same point. A finite
	// RangeAt implies w is defined on every path into the block (the
	// pentagon join drops one-sided facts), so no dominance check is
	// needed here.
	pe := p.pentagon()
	blk := at.Blk
	for _, a := range aliases {
		if pe.RangeAt(a, blk).Hi <= bound {
			return layerPentagon, true
		}
	}
	for _, w := range p.candidates() {
		if p.bgt.Tick() != nil {
			return 0, false
		}
		cap := pe.RangeAt(w, blk).Hi
		if hi := p.groupHi(w, at); hi < cap {
			cap = hi
		}
		// s < w <= cap proves s <= cap-1.
		if cap >= capLimit || cap-1 > bound {
			continue
		}
		for _, a := range aliases {
			if pe.LessThanAt(a, w, blk) {
				return layerPentagon, true
			}
		}
	}

	// LT: the paper's solver. s < w with w's group capped at the
	// access; the only layer whose facts cross function boundaries
	// (via the interprocedural seeds).
	for _, w := range p.candidates() {
		if p.bgt.Tick() != nil {
			return 0, false
		}
		if !p.validAt(w, at) {
			continue
		}
		cap := p.groupHi(w, at)
		if cap >= capLimit || cap-1 > bound {
			continue
		}
		for _, a := range aliases {
			if p.lt.LessThan(a, w) {
				return layerLT, true
			}
		}
	}
	return 0, false
}

// proveLower proves s >= bound at the program point of at.
func (p *prover) proveLower(s ir.Value, bound int64, at *ir.Instr) (int, bool) {
	aliases := p.chain(s)

	if p.bestRange(s).Lo >= bound {
		return layerInterval, true
	}

	// ABCD: w <= s + c with w >= cap gives s >= cap - c.
	g := p.abcdGraph()
	for _, w := range p.candidates() {
		if p.bgt.Tick() != nil {
			return 0, false
		}
		cap := p.groupLo(w, at)
		if cap <= -capLimit {
			continue
		}
		c, ok := subExact(cap, bound)
		if !ok {
			continue
		}
		for _, a := range aliases {
			if g.ProveLE(w, a, c) {
				return layerABCD, true
			}
		}
	}

	pe := p.pentagon()
	blk := at.Blk
	for _, a := range aliases {
		if pe.RangeAt(a, blk).Lo >= bound {
			return layerPentagon, true
		}
	}
	for _, w := range p.candidates() {
		if p.bgt.Tick() != nil {
			return 0, false
		}
		cap := pe.RangeAt(w, blk).Lo
		if lo := p.groupLo(w, at); lo > cap {
			cap = lo
		}
		// w < s with w >= cap proves s >= cap+1.
		if cap <= -capLimit || cap+1 < bound {
			continue
		}
		for _, a := range aliases {
			if pe.LessThanAt(w, a, blk) {
				return layerPentagon, true
			}
		}
	}

	for _, w := range p.candidates() {
		if p.bgt.Tick() != nil {
			return 0, false
		}
		if !p.validAt(w, at) {
			continue
		}
		cap := p.groupLo(w, at)
		if cap <= -capLimit || cap+1 < bound {
			continue
		}
		for _, a := range aliases {
			if p.lt.LessThan(w, a) {
				return layerLT, true
			}
		}
	}
	return 0, false
}
