// Pointer resolution for the sanitizer: tracing an access pointer
// back to its allocation through gep/sigma/copy chains, the nullness
// lattice, and the runtime-equality alias machinery (chains, groups,
// dominance validity) the layered prover quantifies over.
package sanitize

import (
	"math"

	"repro/internal/ir"
	"repro/internal/rangeanal"
)

// maxChainLen bounds the sigma/copy/gep chains walked during
// resolution; IR from the pipeline is shallow, and the bound keeps a
// hostile module from turning resolution quadratic.
const maxChainLen = 64

// maxSyms bounds the number of symbolic gep indices the interval sum
// tracks before resolution gives up.
const maxSyms = 4

// boundsPtr returns the pointer operand whose target the bounds and
// null checks are about.
func boundsPtr(in *ir.Instr) ir.Value {
	if in.Op == ir.OpStore {
		return in.Args[1]
	}
	return in.Args[0]
}

// resolved is the outcome of tracing an access pointer to its
// allocation: the object spans size cells, and the access offset is
// k plus the sum of the symbolic indices in syms. Offsets are in
// cells, matching the interpreter's object memory model (gep indices
// add to Val.Off without scaling).
type resolved struct {
	size int64
	syms []ir.Value
	k    int64
}

// resolveBase walks ptr through sigma/copy (runtime identity) and gep
// (offset accumulation) links to a statically sized allocation.
// Pointers whose base is a phi, parameter, load or call resolve to
// not-ok: without alias information their object is unknown.
func resolveBase(ptr ir.Value) (resolved, bool) {
	r := resolved{}
	for step := 0; step < maxChainLen; step++ {
		switch v := ptr.(type) {
		case *ir.Global:
			r.size = 1
			if at, ok := v.Elem.(*ir.ArrayType); ok {
				r.size = at.Len
			}
			return r, true
		case *ir.Instr:
			switch v.Op {
			case ir.OpAlloca:
				r.size = v.NumElems
				return r, true
			case ir.OpMalloc:
				return resolveMalloc(v, r)
			case ir.OpGEP:
				if c, ok := v.Args[1].(*ir.Const); ok {
					k, ok := addExact(r.k, c.Val)
					if !ok {
						return r, false
					}
					r.k = k
				} else {
					if len(r.syms) >= maxSyms {
						return r, false
					}
					r.syms = append(r.syms, v.Args[1])
				}
				ptr = v.Args[0]
			case ir.OpSigma, ir.OpCopy:
				ptr = v.Args[0]
			default:
				return r, false
			}
		default:
			return r, false
		}
	}
	return r, false
}

// resolveMalloc sizes a constant-size malloc exactly as the
// interpreter does (interp.Machine, OpMalloc): cells = size / elem
// bytes, a zero-cell request still yields one cell, and unreasonable
// sizes trap at the malloc itself — so accesses through them are
// unreachable and resolution reports not-ok.
func resolveMalloc(in *ir.Instr, r resolved) (resolved, bool) {
	c, ok := in.Args[0].(*ir.Const)
	if !ok {
		return r, false
	}
	es := ir.Elem(in.Typ).SizeBytes()
	if es == 0 {
		es = 8
	}
	n := c.Val / es
	if c.Val < 0 || n > 1<<28 {
		return r, false
	}
	if n == 0 {
		n = 1
	}
	r.size = n
	return r, true
}

// addExact is int64 addition that reports overflow instead of
// wrapping; resolution bails out rather than reason with a wrapped
// offset.
func addExact(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

// subExact mirrors addExact for subtraction.
func subExact(a, b int64) (int64, bool) {
	if b == math.MinInt64 {
		if a < 0 {
			return a - b, true
		}
		return 0, false
	}
	return addExact(a, -b)
}

// nullness lattice.
type nullState int

const (
	nullUnknown nullState = iota
	nullNonNull
	nullMustNull
	// nullPending marks an in-progress recursion (a phi cycle); a
	// query that meets it answers Unknown, the pessimistic and sound
	// join of whatever the cycle computes.
	nullPending
)

// nullness classifies v: provably a real object pointer, provably
// null (the interpreter's Val{} — which also covers integer zeros
// flowing into pointer positions), or unknown. Memoized per prover;
// loads and calls are Unknown without alias information.
func (p *prover) nullness(v ir.Value) nullState {
	if st, ok := p.null[v]; ok {
		if st == nullPending {
			return nullUnknown
		}
		return st
	}
	p.null[v] = nullPending
	st := p.nullnessOf(v)
	p.null[v] = st
	return st
}

func (p *prover) nullnessOf(v ir.Value) nullState {
	switch v := v.(type) {
	case *ir.Global:
		return nullNonNull
	case *ir.Const:
		// The C null idiom: constant 0 in a pointer position
		// evaluates to the interpreter's null value. Non-zero pointer
		// constants trap at evaluation, before the access; claiming
		// nothing about them is sound.
		if v.Val == 0 {
			return nullMustNull
		}
		return nullUnknown
	case *ir.Instr:
		switch v.Op {
		case ir.OpAlloca, ir.OpMalloc:
			return nullNonNull
		case ir.OpGEP:
			// gep preserves the object. A must-null base traps at the
			// gep itself, so the gep's RESULT never exists; its users
			// learn nothing (the gep instruction's own diagnostic
			// reports the trap).
			if p.nullness(v.Args[0]) == nullNonNull {
				return nullNonNull
			}
			return nullUnknown
		case ir.OpCopy:
			return p.nullness(v.Args[0])
		case ir.OpSigma:
			if st := sigmaNullFact(v); st != nullUnknown {
				return st
			}
			return p.nullness(v.Args[0])
		case ir.OpPhi:
			join := nullState(-1)
			for _, a := range v.Args {
				st := p.nullness(a)
				if join == -1 {
					join = st
				} else if join != st {
					return nullUnknown
				}
			}
			if join == nullNonNull || join == nullMustNull {
				return join
			}
			return nullUnknown
		}
	}
	return nullUnknown
}

// sigmaNullFact extracts the nullness a sigma's branch condition
// proves about its value: "p == 0" on the taken edge means must-null,
// "p != 0" means non-null. Other conditions prove nothing here.
func sigmaNullFact(in *ir.Instr) nullState {
	cmp := in.Cmp
	pred := cmp.Pred
	if in.CmpSide == 1 {
		pred = pred.Swap()
	}
	if !in.OnTrue {
		pred = pred.Negate()
	}
	other := cmp.Args[1-in.CmpSide]
	c, ok := other.(*ir.Const)
	if !ok || c.Val != 0 {
		return nullUnknown
	}
	switch pred {
	case ir.CmpEQ:
		return nullMustNull
	case ir.CmpNE:
		return nullNonNull
	}
	return nullUnknown
}

// hasUndefOperand reports whether the instruction directly evaluates
// an undefined SSA value. This check is exact against the
// interpreter: operands reached through phis or earlier instructions
// are environment lookups of already-computed values (an undef there
// trapped earlier, at the phi or defining instruction), so an access
// traps with TrapUndef if and only if one of its own operands is
// syntactically undef.
func hasUndefOperand(in *ir.Instr) bool {
	for _, a := range in.Args {
		if _, ok := a.(*ir.Undef); ok {
			return true
		}
	}
	return false
}

// chain returns v and its sigma/copy sources, nearest first. All
// members hold the same runtime value, and each member's definition
// dominates v's uses — so every member is a valid stand-in for v at
// any point v is used.
func (p *prover) chain(v ir.Value) []ir.Value {
	out := []ir.Value{v}
	for len(out) < maxChainLen {
		in, ok := v.(*ir.Instr)
		if !ok || (in.Op != ir.OpSigma && in.Op != ir.OpCopy) {
			break
		}
		v = in.Args[0]
		out = append(out, v)
	}
	return out
}

// rootOf follows sigma/copy links to the underlying value; all values
// sharing a root are runtime-equal wherever defined.
func rootOf(v ir.Value) ir.Value {
	for step := 0; step < maxChainLen; step++ {
		in, ok := v.(*ir.Instr)
		if !ok || (in.Op != ir.OpSigma && in.Op != ir.OpCopy) {
			return v
		}
		v = in.Args[0]
	}
	return v
}

// group returns every int-typed value of the function sharing v's
// root — the full runtime-equality class, including sigma renamings
// on other branches. Unlike chain members, a group member is only a
// valid stand-in at a program point its definition dominates.
func (p *prover) group(v ir.Value) []ir.Value {
	if p.groups == nil {
		p.groups = map[ir.Value][]ir.Value{}
		for _, w := range p.candidates() {
			r := rootOf(w)
			p.groups[r] = append(p.groups[r], w)
		}
	}
	return p.groups[rootOf(v)]
}

// validAt reports whether w's definition dominates the program point
// of instruction at — the requirement for using a global fact about
// w (its interval, an LT-set membership) at that point.
func (p *prover) validAt(w ir.Value, at *ir.Instr) bool {
	switch w := w.(type) {
	case *ir.Param, *ir.Const:
		return true
	case *ir.Instr:
		if w.Blk == at.Blk {
			return p.pos(w) < p.pos(at)
		}
		return p.domtree().StrictlyDominates(w.Blk, at.Blk)
	}
	return false
}

// groupHi returns the tightest upper interval bound over the
// dominance-valid members of w's runtime-equality class: every valid
// member equals w at the access, so the minimum of their Hi bounds
// caps w there. PosInf when nothing caps it.
func (p *prover) groupHi(w ir.Value, at *ir.Instr) int64 {
	hi := int64(rangeanal.PosInf)
	for _, a := range p.group(w) {
		if h := p.ranges.Range(a).Hi; h < hi && p.validAt(a, at) {
			hi = h
		}
	}
	return hi
}

// groupLo mirrors groupHi for lower bounds; NegInf when uncapped.
func (p *prover) groupLo(w ir.Value, at *ir.Instr) int64 {
	lo := int64(rangeanal.NegInf)
	for _, a := range p.group(w) {
		if l := p.ranges.Range(a).Lo; l > lo && p.validAt(a, at) {
			lo = l
		}
	}
	return lo
}

// bestRange intersects the interval of v across its chain: chain
// members are runtime-equal and always defined at v's uses, so the
// intersection is a sound (and often tighter) range for v.
func (p *prover) bestRange(v ir.Value) rangeanal.Interval {
	iv := rangeanal.Top
	for _, a := range p.chain(v) {
		iv = rangeanal.Intersect(iv, p.ranges.Range(a))
	}
	return iv
}
