// Differential soundness sweep: the sanitizer's verdicts versus the
// interpreter, across generated programs. The contract under test is
// the verdict semantics itself —
//
//   - Safe is refuted by any observed trap of that kind at that
//     instruction;
//   - Unsafe must come with a trapping witness when the access is on
//     the executed path (the injected-OOB programs guarantee one);
//   - default generator output is trap-free, so any Unsafe diagnostic
//     there is a false positive.
package sanitize_test

import (
	"fmt"
	"testing"

	"repro/internal/csmith"
	"repro/internal/harness"
	"repro/internal/interp"
	"repro/internal/sanitize"
)

// sweepVerdict is one program's outcome, computed on the worker.
type sweepVerdict struct {
	violations []string
	summary    sanitize.Summary
	trap       *interp.Trap
	// earlyExit is a non-trap runtime error (e.g. division by zero);
	// such executions still validate everything they reached.
	earlyExit error
}

// runSweep pushes programs through pipeline+sanitizer+interpreter and
// applies the soundness assertions; injected selects the
// known-trapping variant of the generator.
func runSweep(t *testing.T, programs int, seedBase int64, injected bool) {
	t.Helper()
	items := make([]harness.BatchItem, programs)
	srcs := make([]string, programs)
	for i := range items {
		seed := seedBase + int64(i)
		src := csmith.Generate(csmith.Config{
			Seed: seed, MaxPtrDepth: 2 + i%5, Stmts: 25 + i%20,
			InjectOOB: injected,
		})
		items[i] = harness.BatchItem{Name: fmt.Sprintf("san_seed%d", seed), Src: src}
		srcs[i] = src
	}

	outs := harness.RunBatch(harness.Config{}, 4, items,
		func(i int, out *harness.BatchOutcome) {
			if out.Err != nil {
				return
			}
			v := &sweepVerdict{}
			rep := out.Res.Sanitize()
			v.summary = rep.Summarize()

			mach := interp.NewMachine(out.Res.Module, interp.Options{})
			_, err := mach.Run("main")
			if err != nil {
				if tr := interp.TrapOf(err); tr != nil && tr.Code != "" {
					v.trap = tr
					// A classified trap refutes a Safe verdict at its
					// (instruction, kind).
					k, ok := sanitize.KindOfTrap(tr.Code)
					if !ok {
						v.violations = append(v.violations,
							fmt.Sprintf("unmapped trap code %q", tr.Code))
					} else if d, found := rep.Find(tr.In, k); found && d.Verdict == sanitize.Safe {
						v.violations = append(v.violations, fmt.Sprintf(
							"UNSOUND: %s proved safe/%s but trapped %s at @%s %s",
							k, d.Layer, tr.Code, tr.Fn.FName, tr.In))
					}
				} else {
					v.earlyExit = err
				}
			}
			out.Value = v
		}, nil)

	var total sanitize.Summary
	total.SafeByLayer = map[string]int{}
	traps, earlyExits := 0, 0
	for i, out := range outs {
		if out.Err != nil {
			t.Fatalf("%s: pipeline error: %v\nprogram:\n%s", out.Name, out.Err, srcs[i])
		}
		v := out.Value.(*sweepVerdict)
		for _, viol := range v.violations {
			t.Errorf("%s: %s\nprogram:\n%s", out.Name, viol, srcs[i])
		}
		if injected {
			// The injected store is on the main path, so the oracle
			// must observe the out-of-bounds trap; anything else means
			// the generator's guarantee (or the interpreter) broke.
			if v.trap == nil || v.trap.Code != interp.TrapOOB {
				if v.earlyExit != nil {
					earlyExits++ // died before the injection (e.g. div by zero)
				} else {
					t.Errorf("%s: injected program did not trap oob (trap=%v)\nprogram:\n%s",
						out.Name, v.trap, srcs[i])
				}
			}
		} else {
			// Default generator output is trap-free (modulo non-memory
			// early exits), so Unsafe diagnostics are false positives.
			if v.trap != nil {
				t.Errorf("%s: default program trapped %s at @%s %s\nprogram:\n%s",
					out.Name, v.trap.Code, v.trap.Fn.FName, v.trap.In, srcs[i])
			}
			if v.summary.Unsafe != 0 {
				t.Errorf("%s: %d unsafe verdicts on a trap-free program\nprogram:\n%s",
					out.Name, v.summary.Unsafe, srcs[i])
			}
			if v.earlyExit != nil {
				earlyExits++
			}
		}
		if v.trap != nil {
			traps++
		}
		total.Checks += v.summary.Checks
		total.Safe += v.summary.Safe
		total.Unsafe += v.summary.Unsafe
		total.Unknown += v.summary.Unknown
		for l, n := range v.summary.SafeByLayer {
			total.SafeByLayer[l] += n
		}
	}
	if total.Checks == 0 {
		t.Fatal("sweep produced zero checks; the sanitizer is not engaging")
	}
	if total.Safe == 0 {
		t.Fatal("sweep proved zero accesses safe; the prover stack is not engaging")
	}
	t.Logf("sweep(%d, injected=%v): %d checks, %d safe, %d unsafe, %d unknown, %d traps, %d early exits; safe by layer: %v",
		programs, injected, total.Checks, total.Safe, total.Unsafe, total.Unknown,
		traps, earlyExits, total.SafeByLayer)
}

// TestSoundnessSweep is the main differential: >= 200 default
// programs, no proved-safe access may trap, no unsafe verdicts at all.
func TestSoundnessSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	runSweep(t, 200, 7000, false)
}

// TestSoundnessSweepInjected re-runs a band of seeds with the
// guaranteed out-of-bounds store: every program must trap oob, and
// Safe verdicts must survive the refutation check at the trap site.
func TestSoundnessSweepInjected(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	runSweep(t, 60, 7200, true)
}

// TestInjectedStoreDiagnosedUnsafe pins the static side of the
// injection: the index-at-length store is proved Unsafe by the
// interval layer, and the dynamic trap lands on that exact
// instruction.
func TestInjectedStoreDiagnosedUnsafe(t *testing.T) {
	src := csmith.Generate(csmith.Config{Seed: 7500, MaxPtrDepth: 2, Stmts: 20, InjectOOB: true})
	p := harness.New(harness.Config{})
	res, err := p.CompileAndAnalyze("inj", src)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Sanitize()

	mach := interp.NewMachine(res.Module, interp.Options{})
	_, rerr := mach.Run("main")
	tr := interp.TrapOf(rerr)
	if tr == nil || tr.Code != interp.TrapOOB {
		t.Fatalf("injected program did not trap oob: %v\nprogram:\n%s", rerr, src)
	}
	d, ok := rep.Find(tr.In, sanitize.KindBounds)
	if !ok {
		t.Fatalf("no bounds diagnostic at the trap site %s", tr.In)
	}
	if d.Verdict != sanitize.Unsafe || d.Layer != sanitize.LayerInterval {
		t.Fatalf("trap site diagnosed %s/%s, want unsafe/interval", d.Verdict, d.Layer)
	}
}
