// Layer-separation kernels: each test compiles a mini-C program
// crafted so a specific prover layer is the cheapest (for the deeper
// layers: the only) one that can discharge the bounds proof, and
// asserts the diagnostic records exactly that layer. Together they
// show the stack is genuinely layered — in particular that the
// paper's LT solver proves accesses no intraprocedural layer can.
package sanitize_test

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/sanitize"
)

// analyze compiles src through the hardened pipeline and runs the
// sanitizer on its results.
func analyze(t *testing.T, src string, interproc bool) (*harness.Result, *sanitize.Report) {
	t.Helper()
	p := harness.New(harness.Config{Interprocedural: interproc})
	res, err := p.CompileAndAnalyze("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return res, res.Sanitize()
}

// findOp returns the sole instruction with op in fn, failing the test
// when the count is not exactly one.
func findOp(t *testing.T, m *ir.Module, fn string, op ir.Op) *ir.Instr {
	t.Helper()
	f := m.FuncByName(fn)
	if f == nil {
		t.Fatalf("no function %s", fn)
	}
	var found *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == op {
			if found != nil {
				t.Fatalf("%s: multiple %s instructions", fn, op)
			}
			found = in
		}
		return true
	})
	if found == nil {
		t.Fatalf("%s: no %s instruction", fn, op)
	}
	return found
}

// wantDiag asserts the (in, kind) diagnostic has the given verdict
// and layer.
func wantDiag(t *testing.T, rep *sanitize.Report, in *ir.Instr, k sanitize.Kind, v sanitize.Verdict, layer string) {
	t.Helper()
	d, ok := rep.Find(in, k)
	if !ok {
		t.Fatalf("no %s diagnostic for %s", k, in)
	}
	if d.Verdict != v || d.Layer != layer {
		t.Errorf("%s on %s = %s/%s, want %s/%s", k, in, d.Verdict, d.Layer, v, layer)
	}
}

// K1: constant and loop-bounded indices — the interval layer alone
// settles both directions.
func TestKernelInterval(t *testing.T) {
	src := `
int a[10];

int k1(void) {
  int i;
  a[3] = 1;
  for (i = 0; i < 10; i++) {
    a[i] = i;
  }
  return a[3];
}
`
	res, rep := analyze(t, src, false)
	f := res.Module.FuncByName("k1")
	stores := 0
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpStore {
			stores++
			wantDiag(t, rep, in, sanitize.KindBounds, sanitize.Safe, sanitize.LayerInterval)
			wantDiag(t, rep, in, sanitize.KindNull, sanitize.Safe, sanitize.LayerNullness)
			wantDiag(t, rep, in, sanitize.KindUninit, sanitize.Safe, sanitize.LayerDirect)
		}
		return true
	})
	if stores != 2 {
		t.Fatalf("stores = %d, want 2", stores)
	}
	wantDiag(t, rep, findOp(t, res.Module, "k1", ir.OpLoad), sanitize.KindBounds, sanitize.Safe, sanitize.LayerInterval)
}

// K1b: a constant index provably outside the object — the interval
// layer proves the access traps whenever reached.
func TestKernelIntervalUnsafe(t *testing.T) {
	src := `
int a[10];

int bad(int x) {
  if (x > 5) {
    a[12] = 1;
  }
  return 0;
}
`
	res, rep := analyze(t, src, false)
	in := findOp(t, res.Module, "bad", ir.OpStore)
	wantDiag(t, rep, in, sanitize.KindBounds, sanitize.Unsafe, sanitize.LayerInterval)
}

// K2: the bound on the index flows through a strict comparison with
// another variable (i < j, j < 100). Intervals cannot relate i to j;
// the ABCD graph proves i <= j-1 and borrows j's cap from the sibling
// sigma renaming.
func TestKernelABCD(t *testing.T) {
	src := `
int a[100];
int g_i;
int g_j;

int k2(void) {
  int i = g_i;
  int j = g_j;
  if (i < j) {
    if (j < 100) {
      if (i >= 0) {
        a[i] = 1;
      }
    }
  }
  return 0;
}
`
	res, rep := analyze(t, src, false)
	in := findOp(t, res.Module, "k2", ir.OpStore)
	wantDiag(t, rep, in, sanitize.KindBounds, sanitize.Safe, sanitize.LayerABCD)
}

// K3: the bound flows through a variable addition (w = i + s with
// s > 0 implies i < w). ABCD only edges constant offsets, so the
// Pentagon domain — whose transfer covers x = y + z — is the first
// layer that can prove the access.
func TestKernelPentagon(t *testing.T) {
	src := `
int a[100];
int g_i;
int g_s;

int k3(void) {
  int i = g_i;
  int s = g_s;
  if (i >= 0) {
    if (s > 0) {
      int w = i + s;
      if (w < 100) {
        a[i] = 1;
      }
    }
  }
  return 0;
}
`
	res, rep := analyze(t, src, false)
	in := findOp(t, res.Module, "k3", ir.OpStore)
	wantDiag(t, rep, in, sanitize.KindBounds, sanitize.Safe, sanitize.LayerPentagon)
}

// kernelLTSrc separates the comparison (in main) from the access (in
// kernel): no intraprocedural layer can see i < n, but the
// interprocedural LT solver seeds the param pair from the call site.
const kernelLTSrc = `
int g_x;
int g_n;

int kernel(int i, int n) {
  int a[100];
  if (n <= 100) {
    if (i >= 0) {
      return a[i];
    }
  }
  return 0;
}

int main() {
  int x = g_x;
  int nn = g_n;
  if (x < nn) {
    return kernel(x, nn);
  }
  return 0;
}
`

// K4: only the LT layer (interprocedural mode) proves the access.
func TestKernelLT(t *testing.T) {
	res, rep := analyze(t, kernelLTSrc, true)
	in := findOp(t, res.Module, "kernel", ir.OpLoad)
	wantDiag(t, rep, in, sanitize.KindBounds, sanitize.Safe, sanitize.LayerLT)
}

// K4 ablation: the same program without the interprocedural seeds is
// unprovable — the LT column in the experiments is real signal.
func TestKernelLTAblation(t *testing.T) {
	res, rep := analyze(t, kernelLTSrc, false)
	in := findOp(t, res.Module, "kernel", ir.OpLoad)
	wantDiag(t, rep, in, sanitize.KindBounds, sanitize.Unknown, sanitize.LayerNone)
}

// K5: the LOWER bound needs a relational proof. The compare i > j
// precedes j >= 0, so the interval refinement at the compare sees an
// unbounded j and learns nothing — only ABCD's j <= i-1 edge,
// combined with the later renaming's j >= 0 cap, proves i >= 1. The
// upper bound comes from the i < 100 sigma (interval), so the
// recorded layer is the max of the two: abcd.
func TestKernelABCDLowerBound(t *testing.T) {
	src := `
int a[100];
int g_i;
int g_j;

int k5(void) {
  int i = g_i;
  int j = g_j;
  if (i < 100) {
    if (i > j) {
      if (j >= 0) {
        a[i] = 1;
      }
    }
  }
  return 0;
}
`
	res, rep := analyze(t, src, false)
	in := findOp(t, res.Module, "k5", ir.OpStore)
	wantDiag(t, rep, in, sanitize.KindBounds, sanitize.Safe, sanitize.LayerABCD)
}

// kernelLTLowerSrc puts the lower-bound comparison in the caller:
// main guarantees nn < x, so inside kernel only the interprocedural
// LT seed j < i proves i >= 1 (j's own sigma provides the >= 0 cap).
const kernelLTLowerSrc = `
int g_x;
int g_n;

int kernel(int i, int j) {
  int a[100];
  if (i < 100) {
    if (j >= 0) {
      return a[i];
    }
  }
  return 0;
}

int main() {
  int x = g_x;
  int nn = g_n;
  if (nn < x) {
    return kernel(x, nn);
  }
  return 0;
}
`

// K6: lower bound provable only by the LT layer, upper by interval.
func TestKernelLTLowerBound(t *testing.T) {
	res, rep := analyze(t, kernelLTLowerSrc, true)
	in := findOp(t, res.Module, "kernel", ir.OpLoad)
	wantDiag(t, rep, in, sanitize.KindBounds, sanitize.Safe, sanitize.LayerLT)

	res2, rep2 := analyze(t, kernelLTLowerSrc, false)
	in2 := findOp(t, res2.Module, "kernel", ir.OpLoad)
	wantDiag(t, rep2, in2, sanitize.KindBounds, sanitize.Unknown, sanitize.LayerNone)
}

// Malloc resolution: constant-size malloc sizes exactly as the
// interpreter (bytes / element size, zero rounds up to one cell).
func TestKernelMalloc(t *testing.T) {
	src := `
int ok(void) {
  int *p = malloc(80);
  p[9] = 1;
  return 0;
}

int bad(void) {
  int *p = malloc(80);
  p[10] = 1;
  return 0;
}
`
	res, rep := analyze(t, src, false)
	wantDiag(t, rep, findOp(t, res.Module, "ok", ir.OpStore),
		sanitize.KindBounds, sanitize.Safe, sanitize.LayerInterval)
	wantDiag(t, rep, findOp(t, res.Module, "ok", ir.OpStore),
		sanitize.KindNull, sanitize.Safe, sanitize.LayerNullness)
	wantDiag(t, rep, findOp(t, res.Module, "bad", ir.OpStore),
		sanitize.KindBounds, sanitize.Unsafe, sanitize.LayerInterval)
}

// Nullness: a branch on p != 0 / p == 0 classifies the guarded
// dereference via the sigma's branch fact.
func TestKernelNullness(t *testing.T) {
	src := `
int deref_nonnull(int* p) {
  if (p != 0) {
    return *p;
  }
  return 0;
}

int deref_null(int* p) {
  if (p == 0) {
    return *p;
  }
  return 0;
}

int deref_unknown(int* p) {
  return *p;
}
`
	res, rep := analyze(t, src, false)
	wantDiag(t, rep, findOp(t, res.Module, "deref_nonnull", ir.OpLoad),
		sanitize.KindNull, sanitize.Safe, sanitize.LayerNullness)
	wantDiag(t, rep, findOp(t, res.Module, "deref_null", ir.OpLoad),
		sanitize.KindNull, sanitize.Unsafe, sanitize.LayerNullness)
	wantDiag(t, rep, findOp(t, res.Module, "deref_unknown", ir.OpLoad),
		sanitize.KindNull, sanitize.Unknown, sanitize.LayerNone)
}

// Uninit: reading a never-assigned local leaves an undef operand the
// direct check flags; the bounds proof is independent of it.
func TestKernelUninit(t *testing.T) {
	src := `
int a[10];

int uninit(void) {
  int x;
  a[3] = x;
  return 0;
}
`
	res, rep := analyze(t, src, false)
	in := findOp(t, res.Module, "uninit", ir.OpStore)
	wantDiag(t, rep, in, sanitize.KindUninit, sanitize.Unsafe, sanitize.LayerDirect)
	wantDiag(t, rep, in, sanitize.KindBounds, sanitize.Safe, sanitize.LayerInterval)
}
