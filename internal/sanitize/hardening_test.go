// Hardening contract tests: worker-count determinism, panic
// containment, budget degradation, and fault injection through the
// harness stage — every failure mode must degrade to Unknown, never
// to a verdict.
package sanitize_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/budget"
	"repro/internal/csmith"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/sanitize"
)

// TestWorkersIdentical pins the parallel contract: the rendered
// report is byte-identical at any worker count, across a band of
// generated multi-function modules.
func TestWorkersIdentical(t *testing.T) {
	for i := 0; i < 10; i++ {
		src := csmith.Generate(csmith.Config{
			Seed: int64(7600 + i), MaxPtrDepth: 2 + i%4, Stmts: 30,
		})
		p := harness.New(harness.Config{})
		res, err := p.CompileAndAnalyze(fmt.Sprintf("w%d", i), src)
		if err != nil {
			t.Fatal(err)
		}
		serial := sanitize.Analyze(res.Module, res.Ranges, res.LT, sanitize.Options{Workers: 1})
		wide := sanitize.Analyze(res.Module, res.Ranges, res.LT, sanitize.Options{Workers: 8})
		if serial.String() != wide.String() {
			t.Fatalf("seed %d: report differs between 1 and 8 workers:\n--- serial\n%s--- wide\n%s",
				7600+i, serial, wide)
		}
	}
}

// TestPanicContained: a panic inside one function's checks must
// surface as a FuncFailure, degrade that function's accesses to
// Unknown("contained"), and leave other functions' verdicts intact.
func TestPanicContained(t *testing.T) {
	p := harness.New(harness.Config{})
	res, err := p.CompileAndAnalyze("t", `
int a[10];

int good(void) {
  a[3] = 1;
  return 0;
}

int victim(void) {
  a[4] = 2;
  return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	victim := res.Module.FuncByName("victim")
	rep := sanitize.Analyze(res.Module, res.Ranges, res.LT, sanitize.Options{
		Recover: true,
		OnFunc: func(f *ir.Func) {
			if f == victim {
				panic("injected sanitizer fault")
			}
		},
	})
	if len(rep.Failures) != 1 || rep.Failures[0].Fn != "victim" {
		t.Fatalf("failures = %+v, want one for victim", rep.Failures)
	}
	if !strings.Contains(rep.Failures[0].Value, "injected sanitizer fault") {
		t.Errorf("failure value %q does not carry the panic", rep.Failures[0].Value)
	}
	if rep.Degraded[victim] != "panic" {
		t.Errorf("victim degraded cause = %q, want panic", rep.Degraded[victim])
	}
	sawVictim := false
	for _, d := range rep.Diags {
		if d.Fn == victim {
			sawVictim = true
			if d.Verdict != sanitize.Unknown || d.Layer != sanitize.LayerContained {
				t.Errorf("victim diag %s = %s/%s, want unknown/contained", d.In, d.Verdict, d.Layer)
			}
		} else if d.Kind == sanitize.KindBounds && d.Verdict != sanitize.Safe {
			t.Errorf("good's %s lost its verdict: %s/%s", d.In, d.Verdict, d.Layer)
		}
	}
	if !sawVictim {
		t.Error("victim contributed no diagnostics; containment should still enumerate accesses")
	}
}

// TestPanicPropagatesWithoutRecover: the serial contract — no
// Recover, the panic reaches the caller.
func TestPanicPropagatesWithoutRecover(t *testing.T) {
	p := harness.New(harness.Config{})
	res, err := p.CompileAndAnalyze("t", `
int a[10];
int f(void) { a[1] = 1; return 0; }
`)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("panic did not propagate with Recover unset")
		}
	}()
	sanitize.Analyze(res.Module, res.Ranges, res.LT, sanitize.Options{
		OnFunc: func(*ir.Func) { panic("boom") },
	})
}

// TestBudgetDegradesToUnknown: starving the per-function budget marks
// the function degraded and turns undecided checks into
// Unknown("budget") — never into a verdict.
func TestBudgetDegradesToUnknown(t *testing.T) {
	src := csmith.Generate(csmith.Config{Seed: 7700, MaxPtrDepth: 2, Stmts: 40})
	p := harness.New(harness.Config{})
	res, err := p.CompileAndAnalyze("t", src)
	if err != nil {
		t.Fatal(err)
	}
	rep := sanitize.Analyze(res.Module, res.Ranges, res.LT, sanitize.Options{
		Budget: budget.Spec{MaxSteps: 5},
	})
	f1 := res.Module.FuncByName("func_1")
	if rep.Degraded[f1] != "budget" {
		t.Fatalf("func_1 degraded cause = %q, want budget", rep.Degraded[f1])
	}
	budgetDiags := 0
	for _, d := range rep.Diags {
		if d.Layer == sanitize.LayerBudget {
			budgetDiags++
			if d.Verdict != sanitize.Unknown {
				t.Errorf("budget-layer diag %s has verdict %s, want unknown", d.In, d.Verdict)
			}
		}
	}
	if budgetDiags == 0 {
		t.Error("no budget-layer diagnostics despite exhaustion")
	}
}

// TestSkipQuarantined: skipped functions contribute nothing and are
// recorded, mirroring the pipeline's quarantine discipline.
func TestSkipQuarantined(t *testing.T) {
	p := harness.New(harness.Config{})
	res, err := p.CompileAndAnalyze("t", `
int a[10];
int f(void) { a[1] = 1; return 0; }
int g(void) { a[2] = 2; return 0; }
`)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Module.FuncByName("g")
	rep := sanitize.Analyze(res.Module, res.Ranges, res.LT, sanitize.Options{
		Skip: map[*ir.Func]bool{g: true},
	})
	if rep.Degraded[g] != "skipped" {
		t.Errorf("g degraded cause = %q, want skipped", rep.Degraded[g])
	}
	for _, d := range rep.Diags {
		if d.Fn == g {
			t.Fatalf("skipped function produced diagnostic %s", d.In)
		}
	}
}

// TestHarnessFaultInjection drives the sanitizer through the pipeline
// stage with an injected fault and checks the failure lands in the
// run report under the sanitize stage.
func TestHarnessFaultInjection(t *testing.T) {
	src := csmith.Generate(csmith.Config{Seed: 7800, MaxPtrDepth: 2, Stmts: 20})
	p := harness.New(harness.Config{
		Fault: &harness.FaultConfig{Stage: harness.StageSanitize, Func: "func_1"},
	})
	res, err := p.CompileAndAnalyze("t", src)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Sanitize()
	if len(rep.Failures) != 1 || rep.Failures[0].Fn != "func_1" {
		t.Fatalf("failures = %+v, want one for func_1", rep.Failures)
	}
	found := false
	for _, sf := range p.Report().Failures {
		if sf.Stage == harness.StageSanitize && sf.Func == "func_1" {
			found = true
		}
	}
	if !found {
		t.Errorf("pipeline report missing the sanitize-stage failure:\n%s", p.Report())
	}
	// main's verdicts survive the sibling fault.
	mainSafe := 0
	for _, d := range rep.Diags {
		if d.Fn.FName == "main" && d.Verdict == sanitize.Safe {
			mainSafe++
		}
	}
	if mainSafe == 0 {
		t.Error("main has no safe verdicts despite being fault-free")
	}
}
