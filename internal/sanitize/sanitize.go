// Package sanitize is a static memory-safety checker built as a
// diagnostics client of the pipeline's prover stack. It walks every
// memory access in a module — loads, stores, geps, calls — and
// classifies each against three check kinds (out-of-bounds access,
// null-pointer dereference, read of uninitialized memory) with one of
// three verdicts:
//
//   - Safe: the access provably never traps with that kind, on any
//     execution reaching it.
//   - Unsafe: the access provably traps with that kind on every
//     execution that reaches it.
//   - Unknown: neither could be proved.
//
// Bounds verdicts come from a layered prover stack, cheapest first:
// interval ranges (internal/rangeanal), the ABCD relational graph
// (internal/abcd), the Pentagon domain (internal/pentagon), and
// finally the paper's less-than solver (internal/core). Each
// diagnostic records which layer decided it, so the experiment
// harness can attribute prove-rates per layer — in particular, which
// accesses only the LT analysis can discharge.
//
// The verdict lattice degrades soundly: a contained panic or an
// exhausted budget turns the affected checks into Unknown (layers
// "contained" / "budget"), never into Safe. The module walk mirrors
// the hardened pipeline's worker discipline — per-function slots
// filled by a bounded pool, merged in module function order — so the
// report is byte-identical at any worker count.
package sanitize

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/rangeanal"
)

// Kind is a memory-safety check class.
type Kind int

const (
	// KindBounds checks that the access offset stays inside its
	// object's allocated cells.
	KindBounds Kind = iota
	// KindNull checks that the dereferenced pointer is a real object
	// pointer, not null (or a stray integer read from memory).
	KindNull
	// KindUninit checks that no operand of the access is an undefined
	// SSA value (a read of a variable never assigned on this path).
	KindUninit
)

func (k Kind) String() string {
	switch k {
	case KindBounds:
		return "bounds"
	case KindNull:
		return "null"
	case KindUninit:
		return "uninit"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// KindOfTrap maps an interpreter trap code (interp.Trap.Code) to the
// check kind that claims to predict it. The sanitizer's soundness
// contract is phrased through this map: an observed trap with code c
// at instruction i refutes a Safe verdict at (i, KindOfTrap(c)).
func KindOfTrap(code string) (Kind, bool) {
	switch code {
	case interp.TrapOOB:
		return KindBounds, true
	case interp.TrapNull:
		return KindNull, true
	case interp.TrapUndef:
		return KindUninit, true
	}
	return 0, false
}

// Verdict is the outcome of one check on one access.
type Verdict int

const (
	// Unknown claims nothing; it is the sound default and the
	// degradation target for budget exhaustion and contained panics.
	Unknown Verdict = iota
	// Safe claims the access never traps with the checked kind.
	Safe
	// Unsafe claims the access traps with the checked kind on every
	// execution that reaches it.
	Unsafe
)

func (v Verdict) String() string {
	switch v {
	case Safe:
		return "safe"
	case Unsafe:
		return "unsafe"
	}
	return "unknown"
}

// Prover layer names recorded in Diagnostic.Layer, ordered by cost.
// LayerBudget and LayerContained mark degraded Unknown verdicts;
// LayerNone marks an honest "no layer could decide".
const (
	LayerNone      = ""
	LayerInterval  = "interval"
	LayerABCD      = "abcd"
	LayerPentagon  = "pentagon"
	LayerLT        = "lt"
	LayerNullness  = "nullness"
	LayerDirect    = "direct"
	LayerBudget    = "budget"
	LayerContained = "contained"
)

// Diagnostic is one (access, kind) classification.
type Diagnostic struct {
	Fn *ir.Func
	In *ir.Instr
	// Kind is the check class this diagnostic answers.
	Kind Kind
	// Verdict is the classification.
	Verdict Verdict
	// Layer names the prover that decided the verdict (Layer*
	// constants). For Unknown it is empty unless the verdict is a
	// degradation ("budget", "contained").
	Layer string
}

// Line returns the mini-C source line of the access, 0 if unknown.
func (d Diagnostic) Line() int { return d.In.Line }

// FuncFailure records a contained panic during one function's checks,
// mirroring core.FuncFailure.
type FuncFailure struct {
	Fn    string
	Cause string
	Value string
	Stack string
}

// Options mirrors the hardened-pipeline knobs of core.Options.
type Options struct {
	// Budget bounds each function's checks; an exhausted function
	// finishes with Unknown("budget") verdicts for the remaining
	// checks and is recorded in Report.Degraded.
	Budget budget.Spec
	// BudgetFor, when non-nil, overrides Budget per function.
	BudgetFor func(*ir.Func) budget.Spec
	// Recover converts a panic during one function's checks into a
	// FuncFailure plus Unknown("contained") verdicts instead of
	// crashing the run.
	Recover bool
	// Skip lists functions excluded entirely (quarantined IR); they
	// produce no diagnostics and are recorded as degraded.
	Skip map[*ir.Func]bool
	// OnFunc, when non-nil, runs at the start of each function's
	// checks inside the protected region (fault-injection hook).
	OnFunc func(*ir.Func)
	// Workers fans the per-function checks across a bounded pool; 0
	// or 1 runs serially. The merged report is identical at any value.
	Workers int
}

func (o Options) budgetFor(f *ir.Func) budget.Spec {
	if o.BudgetFor != nil {
		return o.BudgetFor(f)
	}
	return o.Budget
}

// Report is the module-wide result.
type Report struct {
	// Diags holds every (access, kind) classification, in module
	// function order, block order, instruction order, kind order.
	Diags []Diagnostic
	// Failures are contained per-function panics, in function order.
	Failures []FuncFailure
	// Degraded maps functions whose checks did not complete normally
	// to the cause ("skipped", "budget", "panic").
	Degraded map[*ir.Func]string
}

// Find returns the diagnostic for (in, k), if the instruction was
// walked as an access with that kind.
func (r *Report) Find(in *ir.Instr, k Kind) (Diagnostic, bool) {
	for _, d := range r.Diags {
		if d.In == in && d.Kind == k {
			return d, true
		}
	}
	return Diagnostic{}, false
}

// Analyze classifies every memory access of m. ranges and lt may be
// nil (or the analyses' Empty() results) — the corresponding prover
// layers then simply never fire.
func Analyze(m *ir.Module, ranges *rangeanal.Result, lt *core.Result, opt Options) *Report {
	return AnalyzeCtx(context.Background(), m, ranges, lt, opt)
}

// slot is one function's outcome, filled by a worker and merged in
// module function order by the calling goroutine.
type slot struct {
	diags    []Diagnostic
	fail     *FuncFailure
	degraded string
	// panicked re-raises on the calling goroutine when Recover is
	// unset, preserving the serial contract deterministically.
	panicked any
	// escaped carries a panic that got past checkFunc's own
	// containment on a worker goroutine; it always re-raises on the
	// calling goroutine, Recover or not, because the recovery
	// machinery itself can no longer be trusted.
	escaped any
}

// AnalyzeCtx is Analyze under a context: cancellation is observed by
// the per-function budgets.
func AnalyzeCtx(ctx context.Context, m *ir.Module, ranges *rangeanal.Result, lt *core.Result, opt Options) *Report {
	if ranges == nil {
		ranges = rangeanal.Empty()
	}
	if lt == nil {
		lt = core.Empty()
	}
	slots := make([]slot, len(m.Funcs))
	run := func(i int) {
		f := m.Funcs[i]
		if opt.Skip[f] {
			slots[i].degraded = "skipped"
			return
		}
		slots[i] = checkFunc(ctx, f, ranges, lt, opt)
	}
	if workers := min(opt.Workers, len(m.Funcs)); workers <= 1 {
		for i := range m.Funcs {
			run(i)
		}
	} else {
		ch := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range ch {
					func(i int) {
						// Containment of last resort: checkFunc
						// converts recover-mode panics into slot
						// failures one level down, but a panic in
						// that machinery itself would otherwise kill
						// the process from a worker goroutine. The
						// slot re-raises on the calling goroutine.
						defer func() {
							if r := recover(); r != nil {
								slots[i].escaped = r
							}
						}()
						run(i)
					}(i)
				}
			}()
		}
		for i := range m.Funcs {
			ch <- i
		}
		close(ch)
		wg.Wait()
	}

	rep := &Report{Degraded: map[*ir.Func]string{}}
	for i, f := range m.Funcs {
		s := &slots[i]
		if s.escaped != nil {
			panic(s.escaped)
		}
		if s.panicked != nil && !opt.Recover {
			panic(s.panicked)
		}
		rep.Diags = append(rep.Diags, s.diags...)
		if s.fail != nil {
			rep.Failures = append(rep.Failures, *s.fail)
		}
		if s.degraded != "" {
			rep.Degraded[f] = s.degraded
		}
	}
	return rep
}

// checkFunc runs one function's checks inside a containment region.
// A panic degrades every access to Unknown("contained"); budget
// exhaustion degrades the remaining accesses to Unknown("budget").
func checkFunc(ctx context.Context, f *ir.Func, ranges *rangeanal.Result, lt *core.Result, opt Options) (s slot) {
	bgt := opt.budgetFor(f).Start(ctx)
	panicked := protect(func() {
		if opt.OnFunc != nil {
			opt.OnFunc(f)
		}
		s.diags = classify(f, ranges, lt, bgt)
		if err := bgt.Err(); err != nil {
			if budget.Canceled(err) {
				s.degraded = "canceled"
			} else {
				s.degraded = "budget"
			}
		}
	})
	if panicked == nil {
		return s
	}
	s.panicked = panicked
	s.fail = &FuncFailure{
		Fn: f.FName, Cause: "panic",
		Value: fmt.Sprint(panicked), Stack: string(debug.Stack()),
	}
	s.degraded = "panic"
	s.diags = nil
	// Enumeration is a plain read-only walk; if even that panics the
	// IR is unwalkable and the function contributes no diagnostics —
	// which still claims nothing, the sound direction.
	protect(func() {
		var diags []Diagnostic
		walkAccesses(f, func(in *ir.Instr, k Kind) {
			diags = append(diags, Diagnostic{
				Fn: f, In: in, Kind: k, Verdict: Unknown, Layer: LayerContained,
			})
		})
		s.diags = diags
	})
	return s
}

// protect runs body and returns the recovered panic value, nil if none.
func protect(body func()) (panicked any) {
	defer func() { panicked = recover() }()
	body()
	return nil
}

// kindsOf returns the check kinds that apply to in, in fixed order.
// Loads and stores face all three hazards. A gep can trap on a null
// (or non-pointer) base and on undef operands, but an out-of-range
// gep result does not trap until dereferenced, so gep carries no
// bounds kind. Calls evaluate their arguments, so they face the
// undef hazard only.
func kindsOf(in *ir.Instr) []Kind {
	switch in.Op {
	case ir.OpLoad, ir.OpStore:
		return []Kind{KindBounds, KindNull, KindUninit}
	case ir.OpGEP:
		return []Kind{KindNull, KindUninit}
	case ir.OpCall:
		return []Kind{KindUninit}
	}
	return nil
}

// walkAccesses visits every (access, kind) pair of f in deterministic
// order: block order, instruction order, kind order.
func walkAccesses(f *ir.Func, visit func(*ir.Instr, Kind)) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, k := range kindsOf(in) {
				visit(in, k)
			}
		}
	}
}

// classify produces the function's diagnostics. The budget is ticked
// once per check and inside the prover's candidate loops; once
// exhausted, every remaining check is Unknown("budget").
func classify(f *ir.Func, ranges *rangeanal.Result, lt *core.Result, bgt *budget.B) []Diagnostic {
	pv := newProver(f, ranges, lt, bgt)
	var out []Diagnostic
	exhausted := false
	walkAccesses(f, func(in *ir.Instr, k Kind) {
		d := Diagnostic{Fn: f, In: in, Kind: k}
		if exhausted || bgt.Tick() != nil {
			exhausted = true
			d.Layer = LayerBudget
			out = append(out, d)
			return
		}
		d.Verdict, d.Layer = pv.check(in, k)
		if bgt.Err() != nil {
			// The budget ran out mid-check: a verdict reached before
			// exhaustion stands (the proof is complete), but an
			// Unknown may just be a truncated search.
			exhausted = true
			if d.Verdict == Unknown {
				d.Layer = LayerBudget
			}
		}
		out = append(out, d)
	})
	return out
}
