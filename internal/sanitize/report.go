// Deterministic rendering of a sanitizer report. String output is a
// pure function of the diagnostics slice, which is itself in fixed
// module/block/instruction/kind order — so reports from different
// worker counts compare byte-for-byte.
package sanitize

import (
	"fmt"
	"sort"
	"strings"
)

// String renders one line per access, grouping that access's kinds:
//
//	@func_1:12 store: bounds=safe/interval null=safe/nullness uninit=safe/direct
//
// The :12 is the mini-C source line (omitted when 0).
func (r *Report) String() string {
	var sb strings.Builder
	for i := 0; i < len(r.Diags); {
		j := i
		for j < len(r.Diags) && r.Diags[j].In == r.Diags[i].In {
			j++
		}
		d := r.Diags[i]
		if d.Line() > 0 {
			fmt.Fprintf(&sb, "@%s:%d %s:", d.Fn.FName, d.Line(), d.In.Op)
		} else {
			fmt.Fprintf(&sb, "@%s %s:", d.Fn.FName, d.In.Op)
		}
		for _, d := range r.Diags[i:j] {
			fmt.Fprintf(&sb, " %s=%s", d.Kind, d.Verdict)
			if d.Layer != LayerNone {
				fmt.Fprintf(&sb, "/%s", d.Layer)
			}
		}
		sb.WriteByte('\n')
		i = j
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&sb, "! contained panic in %s: %s\n", f.Fn, f.Value)
	}
	return sb.String()
}

// Summary aggregates the report for humans and experiment tables.
type Summary struct {
	Checks  int
	Safe    int
	Unsafe  int
	Unknown int
	// ByKind counts verdicts per check kind, indexed [kind][verdict].
	ByKind map[Kind][3]int
	// SafeByLayer counts Safe verdicts per deciding layer.
	SafeByLayer map[string]int
	// UnsafeByLayer counts Unsafe verdicts per deciding layer.
	UnsafeByLayer map[string]int
	Failures      int
	Degraded      int
}

// Summarize tallies the report.
func (r *Report) Summarize() Summary {
	s := Summary{
		ByKind:        map[Kind][3]int{},
		SafeByLayer:   map[string]int{},
		UnsafeByLayer: map[string]int{},
		Failures:      len(r.Failures),
		Degraded:      len(r.Degraded),
	}
	for _, d := range r.Diags {
		s.Checks++
		bk := s.ByKind[d.Kind]
		bk[d.Verdict]++
		s.ByKind[d.Kind] = bk
		switch d.Verdict {
		case Safe:
			s.Safe++
			s.SafeByLayer[d.Layer]++
		case Unsafe:
			s.Unsafe++
			s.UnsafeByLayer[d.Layer]++
		default:
			s.Unknown++
		}
	}
	return s
}

// String renders the summary as a small fixed-order table.
func (s Summary) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "checks %d: safe %d, unsafe %d, unknown %d\n",
		s.Checks, s.Safe, s.Unsafe, s.Unknown)
	for _, k := range []Kind{KindBounds, KindNull, KindUninit} {
		bk := s.ByKind[k]
		fmt.Fprintf(&sb, "  %-6s safe %d, unsafe %d, unknown %d\n",
			k, bk[Safe], bk[Unsafe], bk[Unknown])
	}
	if len(s.SafeByLayer) > 0 {
		fmt.Fprintf(&sb, "  safe by layer: %s\n", LayerCounts(s.SafeByLayer))
	}
	if len(s.UnsafeByLayer) > 0 {
		fmt.Fprintf(&sb, "  unsafe by layer: %s\n", LayerCounts(s.UnsafeByLayer))
	}
	if s.Failures > 0 || s.Degraded > 0 {
		fmt.Fprintf(&sb, "  failures %d, degraded functions %d\n", s.Failures, s.Degraded)
	}
	return sb.String()
}

// layerOrder fixes the rendering order of layer names; anything
// unlisted sorts after, alphabetically.
var layerOrder = map[string]int{
	LayerInterval: 0, LayerABCD: 1, LayerPentagon: 2, LayerLT: 3,
	LayerNullness: 4, LayerDirect: 5,
}

// LayerCounts renders a layer→count map in fixed layer order; the
// summary table and the sweep drivers share it so their outputs agree.
func LayerCounts(m map[string]int) string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		oi, iok := layerOrder[names[i]]
		oj, jok := layerOrder[names[j]]
		if iok != jok {
			return iok
		}
		if iok && oi != oj {
			return oi < oj
		}
		return names[i] < names[j]
	})
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s %d", n, m[n])
	}
	return strings.Join(parts, ", ")
}
