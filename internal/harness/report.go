package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// StageFailure describes one contained failure: a stage that panicked
// or ran out of budget on one function (or, for module-scope stages,
// on the module as a whole). It implements error so strict mode can
// surface it directly.
type StageFailure struct {
	// Stage is one of the Stage* constants.
	Stage string
	// Func is the affected function's name; empty for module-scope
	// failures.
	Func string
	// Cause is "panic", "budget", "canceled" (the run's context was
	// canceled — the input is fine, the run was interrupted), or
	// "error" (a transform reported an invalid result without
	// panicking).
	Cause string
	// Value is the recovered panic value, the budget error text, or
	// the reported error.
	Value string
	// Stack is the recovered goroutine stack for panic causes.
	Stack string
}

func (f *StageFailure) Error() string {
	where := "module"
	if f.Func != "" {
		where = "@" + f.Func
	}
	return fmt.Sprintf("stage %s %s: %s: %s", f.Stage, where, f.Cause, f.Value)
}

// StageTiming records the wall-clock cost of one pipeline stage.
type StageTiming struct {
	Stage string
	D     time.Duration
}

// Report accumulates everything the hardened pipeline observed while
// processing one module: contained failures, which functions run on
// degraded (sound but conservative) answers and why, and per-stage
// timings.
type Report struct {
	// Failures lists every contained failure in pipeline order.
	Failures []StageFailure
	// Timings lists stage durations in execution order.
	Timings []StageTiming

	// degraded maps a function name to the stages that degraded it.
	degraded map[string][]string
}

// Ok reports whether the whole pipeline ran without a single
// contained failure.
func (r *Report) Ok() bool { return len(r.Failures) == 0 }

// Canceled reports whether any contained failure was a context
// cancellation: the run was interrupted, so its degraded answers —
// while still sound — describe this run, not the input. Resumable
// drivers re-run such items instead of checkpointing them.
func (r *Report) Canceled() bool {
	for i := range r.Failures {
		if r.Failures[i].Cause == "canceled" {
			return true
		}
	}
	return false
}

// DegradedFuncs returns the names of functions whose answers are
// conservative, sorted.
func (r *Report) DegradedFuncs() []string {
	out := make([]string, 0, len(r.degraded))
	for fn := range r.degraded {
		out = append(out, fn)
	}
	sort.Strings(out)
	return out
}

// DegradedBy returns the stages that degraded fn, in pipeline order.
func (r *Report) DegradedBy(fn string) []string { return r.degraded[fn] }

func (r *Report) addFailure(f StageFailure) {
	r.Failures = append(r.Failures, f)
}

func (r *Report) markDegraded(fn, stage string) {
	if fn == "" {
		return
	}
	if r.degraded == nil {
		r.degraded = map[string][]string{}
	}
	for _, s := range r.degraded[fn] {
		if s == stage {
			return
		}
	}
	r.degraded[fn] = append(r.degraded[fn], stage)
}

// String renders a human-readable summary: status line, one line per
// failure, one line per degraded function, then timings.
func (r *Report) String() string { return r.render(true) }

// Summary is String without the stage timings: everything the
// pipeline observed that is deterministic. Two runs of the same
// module produce byte-identical summaries whatever the worker count —
// the invariant the differential tests compare on, since wall-clock
// timings legitimately differ run to run.
func (r *Report) Summary() string { return r.render(false) }

func (r *Report) render(withTimings bool) string {
	var sb strings.Builder
	if r.Ok() {
		sb.WriteString("pipeline ok: no contained failures\n")
	} else {
		fmt.Fprintf(&sb, "pipeline degraded: %d contained failure(s)\n", len(r.Failures))
		for _, f := range r.Failures {
			fmt.Fprintf(&sb, "  %s\n", f.Error())
		}
	}
	if fns := r.DegradedFuncs(); len(fns) > 0 {
		fmt.Fprintf(&sb, "degraded functions (%d):\n", len(fns))
		for _, fn := range fns {
			fmt.Fprintf(&sb, "  %-20s %s\n", fn, strings.Join(r.degraded[fn], ", "))
		}
	}
	if withTimings && len(r.Timings) > 0 {
		sb.WriteString("stage timings:\n")
		for _, t := range r.Timings {
			fmt.Fprintf(&sb, "  %-12s %s\n", t.Stage, t.D)
		}
	}
	return sb.String()
}
