package harness

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

// The differential suite is the proof obligation of the parallel
// driver: for every supported configuration, the sharded pipeline
// must produce byte-identical observable output to the serial one —
// same module text, same intervals, same LT sets, same solver
// statistics, same alias verdicts, same failure report. canonical
// renders all of that into one string so "equivalent" degenerates to
// string equality, with stage timings (the only legitimately
// nondeterministic output) excluded via Report.Summary.

// canonical renders every deterministic observable of one pipeline
// run. It runs Evaluate, so evaluation-stage failures land in the
// report before the summary is taken.
func canonical(pipe *Pipeline, res *Result) string {
	var sb strings.Builder
	m := res.Module
	sb.WriteString(m.String())
	sb.WriteString("== ranges/lt ==\n")
	for _, f := range m.Funcs {
		fmt.Fprintf(&sb, "func @%s\n", f.FName)
		for _, v := range res.LT.VarsOf(f) {
			iv := res.Ranges.Range(v)
			fmt.Fprintf(&sb, "  %s [%d,%d] <", v.Ref(), iv.Lo, iv.Hi)
			for _, w := range res.LT.LT(v) {
				sb.WriteString(" " + w.Ref())
			}
			sb.WriteString("\n")
		}
	}
	st := res.LT.Stats
	fmt.Fprintf(&sb, "== stats ==\ninstrs=%d vars=%d constraints=%d pops=%d sizes=%v\n",
		st.Instrs, st.Vars, st.Constraints, st.Pops, res.LT.SetSizeDistribution())
	sb.WriteString("== eval ==\n")
	sb.WriteString(evalCounts(res).String())
	sb.WriteString("== report ==\n")
	sb.WriteString(pipe.Report().Summary())
	return sb.String()
}

// canonicalRun pushes one program through a fresh pipeline under cfg
// and returns its canonical rendering.
func canonicalRun(t *testing.T, name, src string, cfg Config) string {
	t.Helper()
	pipe := New(cfg)
	res, err := pipe.CompileAndAnalyze(name, src)
	if err != nil {
		t.Fatalf("%s: pipeline error: %v", name, err)
	}
	return canonical(pipe, res)
}

// TestDifferentialSerialParallel: for a corpus slice and every
// configuration variant, any worker count produces byte-identical
// canonical output to the serial run.
func TestDifferentialSerialParallel(t *testing.T) {
	progs := corpus.TestSuite(8)
	variants := []struct {
		name string
		cfg  Config
	}{
		{"default", Config{}},
		{"interproc", Config{Interprocedural: true}},
		{"smallsets", Config{Analysis: core.Options{SmallSets: true}}},
		{"withcf", Config{WithCF: true}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for _, p := range progs {
				serial := canonicalRun(t, p.Name, p.Source, v.cfg)
				for _, jobs := range []int{2, 8} {
					cfg := v.cfg
					cfg.Jobs = jobs
					if got := canonicalRun(t, p.Name, p.Source, cfg); got != serial {
						t.Fatalf("%s: jobs=%d diverges from serial run", p.Name, jobs)
					}
				}
			}
		})
	}
}

// TestDifferentialCacheHit: a warm-cache run returns results
// byte-identical to both its own cold run and an uncached
// recomputation, and the warm pass actually hits (>= 90%).
func TestDifferentialCacheHit(t *testing.T) {
	progs := corpus.TestSuite(12)
	for _, jobs := range []int{1, 4} {
		jobs := jobs
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			cache := NewCache()
			cold := make([]string, len(progs))
			for i, p := range progs {
				cold[i] = canonicalRun(t, p.Name, p.Source, Config{Jobs: jobs, Cache: cache})
			}
			pre := cache.Stats()
			for i, p := range progs {
				warm := canonicalRun(t, p.Name, p.Source, Config{Jobs: jobs, Cache: cache})
				if warm != cold[i] {
					t.Fatalf("%s: warm-cache run differs from cold run", p.Name)
				}
			}
			post := cache.Stats()
			hits, misses := post.Hits-pre.Hits, post.Misses-pre.Misses
			if rate := float64(hits) / float64(hits+misses); rate < 0.9 {
				t.Fatalf("warm pass hit rate %.2f < 0.90 (hits=%d misses=%d)", rate, hits, misses)
			}
			for i, p := range progs {
				if plain := canonicalRun(t, p.Name, p.Source, Config{Jobs: jobs}); plain != cold[i] {
					t.Fatalf("%s: cached run differs from uncached recomputation", p.Name)
				}
			}
		})
	}
}

// TestDifferentialUnderFault: the failure paths are equivalent too —
// an injected per-function fault produces the same canonical output
// (same failures, same quarantine, same degraded answers) at any
// worker count. Injected faults fire at stage entry, so the IR is
// never left half-mutated and the comparison is exact.
func TestDifferentialUnderFault(t *testing.T) {
	for _, stage := range []string{StageMem2Reg, StageESSA, StageSplit, StageLessThan, StageAliasEval} {
		stage := stage
		t.Run(stage, func(t *testing.T) {
			mk := func(jobs int) Config {
				return Config{Jobs: jobs, Fault: &FaultConfig{Stage: stage, Func: "fill"}}
			}
			serial := canonicalRun(t, "t", testSrc, mk(1))
			if !strings.Contains(serial, "injected fault") {
				t.Fatalf("fault did not fire in serial run")
			}
			for _, jobs := range []int{2, 8} {
				if got := canonicalRun(t, "t", testSrc, mk(jobs)); got != serial {
					t.Fatalf("jobs=%d: faulted run diverges from serial:\n--- serial ---\n%s\n--- jobs=%d ---\n%s",
						jobs, serial, jobs, got)
				}
			}
		})
	}
}
