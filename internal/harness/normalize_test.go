package harness

import (
	"runtime/debug"
	"strings"
	"testing"
)

// rawStack1 and rawStack2 are two captures of the same crash from
// different runs: goroutine ids, pointer arguments, and frame offsets
// all differ, and the runtime frames carry line numbers from a
// different Go patch release. Bucketing must see one bug.
const rawStack1 = `goroutine 21 [running]:
runtime/debug.Stack()
	/usr/local/go/src/runtime/debug/stack.go:24 +0x64
repro/internal/harness.(*Pipeline).contain.func1()
	/root/repo/internal/harness/harness.go:168 +0x45
panic({0x5b1040?, 0xc0001293b0?})
	/usr/local/go/src/runtime/panic.go:770 +0x132
repro/internal/ssa.Promote(0xc000164d80)
	/root/repo/internal/ssa/promote.go:55 +0x9c1
repro/internal/harness.(*Pipeline).Compile.func3(0xc000164d80)
	/root/repo/internal/harness/harness.go:269 +0x1d
created by repro/internal/harness.(*Pipeline).runFuncStage in goroutine 1
	/root/repo/internal/harness/parallel.go:83 +0x198
`

const rawStack2 = `goroutine 7 [running]:
runtime/debug.Stack()
	/usr/local/go/src/runtime/debug/stack.go:26 +0x5e
repro/internal/harness.(*Pipeline).contain.func1()
	/root/repo/internal/harness/harness.go:168 +0x45
panic({0x6c2150?, 0xc0000a1f80?})
	/usr/local/go/src/runtime/panic.go:792 +0x12f
repro/internal/ssa.Promote(0xc0002517a0)
	/root/repo/internal/ssa/promote.go:55 +0x8ff
repro/internal/harness.(*Pipeline).Compile.func3(0xc0002517a0)
	/root/repo/internal/harness/harness.go:269 +0x1d
created by repro/internal/harness.(*Pipeline).runFuncStage in goroutine 4
	/root/repo/internal/harness/parallel.go:83 +0x1a4
`

func TestNormalizeStackStable(t *testing.T) {
	n1, n2 := NormalizeStack(rawStack1), NormalizeStack(rawStack2)
	if n1 != n2 {
		t.Fatalf("two captures of the same crash normalize differently:\n--- run 1 ---\n%s--- run 2 ---\n%s", n1, n2)
	}
}

func TestNormalizeStackRules(t *testing.T) {
	n := NormalizeStack(rawStack1)
	for _, forbidden := range []string{
		"goroutine 21", "goroutine 1\n", "0xc000", "+0x", "0x5b1040",
		"/usr/local/go/src/runtime/panic.go:770",
		"/usr/local/go/src/runtime/debug/stack.go:24",
	} {
		if strings.Contains(n, forbidden) {
			t.Errorf("normalized stack still contains %q:\n%s", forbidden, n)
		}
	}
	for _, required := range []string{
		"goroutine N [running]:",
		"repro/internal/ssa.Promote",
		"repro/internal/harness.(*Pipeline).contain.func1",
		// In-repo positions keep their line; the crash site moving IS a
		// new bucket.
		"/root/repo/internal/ssa/promote.go:55",
		// Out-of-repo positions keep the file, lose the line.
		"/usr/local/go/src/runtime/panic.go:?",
		"created by repro/internal/harness.(*Pipeline).runFuncStage in goroutine N",
	} {
		if !strings.Contains(n, required) {
			t.Errorf("normalized stack lost %q:\n%s", required, n)
		}
	}
	// Frame argument lists are gone.
	if strings.Contains(n, "Promote(") {
		t.Errorf("frame arguments survived normalization:\n%s", n)
	}
}

func TestNormalizeValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"runtime error: index out of range [13] with length 13",
			"runtime error: index out of range [N] with length N"},
		{"invalid memory address or nil pointer dereference",
			"invalid memory address or nil pointer dereference"},
		{"minic: line 42: expected expression, got ';'",
			"minic: line N: expected expression, got ';'"},
		{"bad ptr 0xc00012a018  here", "bad ptr 0x? here"},
	}
	for _, c := range cases {
		if got := NormalizeValue(c.in); got != c.want {
			t.Errorf("NormalizeValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestNormalizeLiveStack normalizes a stack captured in this very
// process: two captures of the same panic site taken on different
// goroutines must collapse to one form, and the signature of a
// StageFailure built from them must match.
func TestNormalizeLiveStack(t *testing.T) {
	capture := func() (stack string) {
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer func() {
				if recover() != nil {
					stack = string(debug.Stack())
				}
			}()
			boom()
		}()
		<-done
		return stack
	}
	s1, s2 := capture(), capture()
	if s1 == s2 {
		t.Log("raw captures happened to be identical (no ASLR noise); normalization still checked")
	}
	if NormalizeStack(s1) != NormalizeStack(s2) {
		t.Fatalf("live captures normalize differently:\n%s\nvs\n%s",
			NormalizeStack(s1), NormalizeStack(s2))
	}
	f1 := &StageFailure{Stage: StageMem2Reg, Cause: "panic", Value: "boom 1", Stack: s1}
	f2 := &StageFailure{Stage: StageMem2Reg, Cause: "panic", Value: "boom 2", Stack: s2}
	if f1.Signature() != f2.Signature() {
		t.Fatalf("signatures differ: %q vs %q", f1.Signature(), f2.Signature())
	}
	if !strings.Contains(f1.Signature(), "mem2reg:panic:") {
		t.Fatalf("signature %q lacks stage/cause prefix", f1.Signature())
	}
}

//go:noinline
func boom() { panic("boom 1") }

// TestSignatureInjectedFault drives a real injected fault through the
// pipeline twice and checks the two recorded failures bucket together.
func TestSignatureInjectedFault(t *testing.T) {
	src := "int main(void) { int x = 1; return x; }"
	run := func() *StageFailure {
		p := New(Config{Fault: &FaultConfig{Stage: StageMem2Reg, Func: "main"}})
		if _, err := p.Compile("sig", src); err != nil {
			t.Fatalf("compile: %v", err)
		}
		rep := p.Report()
		if len(rep.Failures) == 0 {
			t.Fatal("injected fault produced no failure")
		}
		f := rep.Failures[0]
		return &f
	}
	a, b := run(), run()
	if a.Signature() != b.Signature() {
		t.Fatalf("same injected fault, different signatures:\n%q\n%q", a.Signature(), b.Signature())
	}
}
