package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/rangeanal"
)

// pinProgram is a fixed input covering every section of the key:
// canonical text, a referenced global, integer ranges, and options.
const pinProgram = `
int gbl;

int pin(int n) {
  int i;
  int s = 0;
  for (i = 0; i < n; i++) {
    s = s + i;
  }
  gbl = s;
  return s;
}
`

// TestFuncKeyPinned pins the memo key derivation to literal digests.
// The key is the address of persisted artifacts (internal/persist
// stores solves under it across runs), so any drift — IR printing,
// variable enumeration order, the options encoding — silently
// invalidates every on-disk cache and, worse, could alias two
// different solves to one slot. A derivation change that is actually
// intended must bump these literals consciously.
func TestFuncKeyPinned(t *testing.T) {
	m := minic.MustCompile("pin", pinProgram)
	f := m.FuncByName("pin")
	if f == nil {
		t.Fatal("pin function missing")
	}
	ranges := rangeanal.Analyze(m)

	got := map[string]string{
		"default":   funcKey(f, ranges, core.Options{}),
		"noranges":  funcKey(f, ranges, core.Options{NoRanges: true}),
		"smallsets": funcKey(f, ranges, core.Options{SmallSets: true}),
	}
	want := map[string]string{
		"default":   "b60659a132bf1d5a8580e855a9c7eb58249cf76ced9f331dee17eae5399568b7",
		"noranges":  "b59b86c51e558aec1a75ca473af3e8d13685614a9ec39b04c859fa01f7667dfd",
		"smallsets": "e426efa5b5fca1d0cf75b87fe7393757a538ff42b582e5eeda4ea330e1b888a6",
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s key drifted:\n  got  %s\n  want %s", name, got[name], w)
		}
	}
	if got["default"] == got["noranges"] || got["default"] == got["smallsets"] {
		t.Error("option variants must not collide")
	}
}
