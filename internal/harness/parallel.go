// Parallel sharding of the hardened pipeline. Two levels exist:
//
//   - Function-level: within one module, the per-function stages
//     (mem2reg, sigma insertion, subtraction splitting, the less-than
//     solve, alias evaluation) fan out across Config.Jobs workers.
//     Module-scope stages (parse, lower, range analysis, Andersen)
//     stay serial — they are whole-module fixed points with shared
//     mutable state and no per-function decomposition.
//   - Program-level: RunBatch shards a corpus of independent programs
//     across workers, one pipeline per program.
//
// Equivalence discipline. Workers never touch shared pipeline state:
// containment captures failures into per-function slots, and the
// calling goroutine records them in module function order after the
// pool drains. Every merge is in declaration order, so reports,
// results, and statistics are byte-identical at any worker count —
// the property the differential test suite pins down.
//
// Quarantine stays per-function under concurrency: a worker that
// panics poisons only its own function's slot. The containment region
// is entered on the worker itself, so the panic never reaches the
// pool machinery, and the skip set is only written by the calling
// goroutine during the ordered merge — a half-rewritten function is
// quarantined exactly as in the serial pipeline, and its neighbors'
// results are unaffected.
package harness

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ir"
	"repro/internal/persist/journal"
)

// jobs resolves the effective function-level worker count; 0 and 1
// both mean serial execution on the calling goroutine.
func (p *Pipeline) jobs() int {
	if p.cfg.Jobs > 1 {
		return p.cfg.Jobs
	}
	return 1
}

// cacheEnabled reports whether the memo cache participates in this
// run. Budgeted runs bypass it by default — a cached artifact could
// answer where this run's budget would have degraded, which breaks
// the byte-identical determinism the differential suite pins — but
// Config.CacheBudgeted opts in for servers, where that extra
// precision is welcome and sound (degraded solves are never stored;
// see core/memo.go). Fault-injected runs always bypass: their
// outcomes depend on injected state, so memoizing them would let one
// run's degradation leak into another's answers.
func (p *Pipeline) cacheEnabled() bool {
	if p.cfg.Cache == nil || p.cfg.Fault != nil {
		return false
	}
	return p.cfg.CacheBudgeted || (p.cfg.Timeout == 0 && p.cfg.MaxSteps == 0)
}

// runFuncStage applies one per-function stage body to every
// non-quarantined function, fanning across the worker pool when
// Config.Jobs > 1. Failures are captured on the workers into
// per-function slots and recorded — with the matching quarantines —
// in module function order after the pool drains. Returns the first
// failure in function order, for strict mode.
func (p *Pipeline) runFuncStage(stage string, m *ir.Module, body func(*ir.Func)) *StageFailure {
	defer p.timeStage(stage)()
	type target struct {
		i int
		f *ir.Func
	}
	var targets []target
	for i, f := range m.Funcs {
		if !p.skip[f] {
			targets = append(targets, target{i, f})
		}
	}
	fails := make([]*StageFailure, len(m.Funcs))
	run := func(t target) {
		fails[t.i] = p.contain(stage, t.f.FName, true, func() { body(t.f) })
	}
	if jobs := min(p.jobs(), len(targets)); jobs <= 1 {
		for _, t := range targets {
			run(t)
		}
	} else {
		ch := make(chan target)
		var wg sync.WaitGroup
		for w := 0; w < jobs; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range ch {
					run(t)
				}
			}()
		}
		for _, t := range targets {
			ch <- t
		}
		close(ch)
		wg.Wait()
	}
	var first *StageFailure
	for i, f := range m.Funcs {
		if fails[i] == nil {
			continue
		}
		p.rep.addFailure(*fails[i])
		p.quarantine(f, stage)
		if first == nil {
			first = fails[i]
		}
	}
	return first
}

// BatchItem is one program of a batch run.
type BatchItem struct {
	Name string
	Src  string
}

// BatchOutcome is what one program's pipeline produced. Value carries
// whatever the worker-side callback computed (an evaluation report, a
// statistics row) to the serial post-processing phase.
type BatchOutcome struct {
	Name string
	Pipe *Pipeline
	Res  *Result
	Err  error
	// AnalyzeTime is the wall-clock cost of the analysis phase alone
	// (excluding Compile). Under program-level sharding it measures
	// the program's own work, though scheduling noise from sibling
	// workers is included.
	AnalyzeTime time.Duration
	Value       any
	// Replayed marks an outcome restored from a checkpoint journal
	// rather than computed this run. Pipe and Res are nil on replayed
	// outcomes; only Name and whatever Decode reconstructed (typically
	// Value) are populated.
	Replayed bool
}

// BatchCheckpoint journals per-item completion so a killed batch run
// can resume without redoing finished work. Encode runs on the worker
// goroutine immediately after an item completes — it must distill the
// outcome into a JSON-able value that Decode can later turn back into
// an equivalent outcome. Items whose pipeline observed a context
// cancellation, or whose work errored, are never journaled: a resumed
// run recomputes them, which is what keeps the final report
// byte-identical to an uninterrupted run.
type BatchCheckpoint struct {
	C *journal.Checkpoint
	// Prefix namespaces item names inside a shared journal, so
	// multi-phase drivers that reuse program names across phases
	// (cmd/artifact) can checkpoint each phase independently.
	Prefix string
	// Encode distills a completed outcome for the journal. Returning
	// an error skips journaling that item (it will be recomputed on
	// resume) without failing the run.
	Encode func(i int, out *BatchOutcome) (any, error)
	// Decode reconstructs a previously journaled outcome. The outcome
	// arrives with Name set and Replayed true; Decode typically fills
	// Value. An error discards the journal entry and recomputes the
	// item.
	Decode func(i int, data []byte, out *BatchOutcome) error
}

func (ck *BatchCheckpoint) key(name string) string { return ck.Prefix + name }

// interrupted reports whether an outcome was poisoned by context
// cancellation and therefore describes this (aborted) run rather than
// the input.
func interrupted(out *BatchOutcome) bool {
	return out.Pipe != nil && out.Pipe.Report().Canceled()
}

// RunBatch shards a corpus of independent programs across jobs
// workers, one fresh pipeline per program so quarantine state never
// crosses program boundaries. work, when non-nil, runs on the worker
// goroutine right after analysis — put per-program evaluation there.
// post, when non-nil, runs serially on the calling goroutine in input
// order after all workers drain — put printing and aggregation there.
// Outcomes are returned in input order.
//
// When jobs > 1 the per-program pipelines run with function-level
// sharding disabled (Jobs=1): one level of parallelism is enough to
// fill the machine, and nesting pools would oversubscribe it.
func RunBatch(cfg Config, jobs int, items []BatchItem,
	work func(i int, out *BatchOutcome),
	post func(i int, out *BatchOutcome)) []*BatchOutcome {
	outs, _, _ := RunBatchCtx(context.Background(), cfg, jobs, items, nil, work, post)
	return outs
}

// RunBatchCtx is RunBatch with cooperative cancellation and optional
// checkpointing. It returns the outcomes (input order), the number of
// items that completed this run or were replayed from the checkpoint,
// and ctx.Err() if the run was cut short.
//
// Cancellation semantics: once ctx is done, no new items are
// dispatched and in-flight workers drain — each one finishes quickly
// because the per-item pipelines observe the same ctx through their
// solver budgets and degrade to sound conservative answers. Outcomes
// of undispatched items are nil; outcomes poisoned by the
// cancellation stay in the returned slice (their reports say
// "canceled") but are never journaled, and post is skipped entirely,
// so an interrupted run can never publish or checkpoint results that
// an uninterrupted run would not have produced.
//
// Checkpointing semantics: with ck non-nil, items found in ck.C are
// replayed via ck.Decode without recomputation, and each item that
// completes cleanly — ctx still live, no work error, no cancellation
// recorded in its report — is journaled from the worker immediately,
// so a SIGKILL loses at most the in-flight items.
func RunBatchCtx(ctx context.Context, cfg Config, jobs int, items []BatchItem,
	ck *BatchCheckpoint,
	work func(i int, out *BatchOutcome),
	post func(i int, out *BatchOutcome)) ([]*BatchOutcome, int, error) {

	if ctx == nil {
		ctx = context.Background()
	}
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(items) {
		jobs = len(items)
	}
	inner := cfg
	if jobs > 1 {
		inner.Jobs = 1
	}

	outs := make([]*BatchOutcome, len(items))

	// Replay checkpointed items first so the dispatch loop only sees
	// genuinely pending work.
	var pending []int
	for i := range items {
		if ck != nil && ck.C != nil {
			if data, ok := ck.C.Done(ck.key(items[i].Name)); ok {
				out := &BatchOutcome{Name: items[i].Name, Replayed: true}
				if err := ck.Decode(i, data, out); err == nil {
					outs[i] = out
					continue
				}
				// Undecodable entry (schema drift, hand-edited state
				// dir): recompute rather than trust it.
				outs[i] = nil
			}
		}
		pending = append(pending, i)
	}

	var completed int64 = int64(len(items) - len(pending))
	run := func(i int) {
		it := items[i]
		out := &BatchOutcome{Name: it.Name, Pipe: NewCtx(ctx, inner)}
		m, err := out.Pipe.Compile(it.Name, it.Src)
		if err != nil {
			out.Err = err
		} else {
			start := time.Now()
			out.Res, out.Err = out.Pipe.Analyze(m)
			out.AnalyzeTime = time.Since(start)
		}
		if work != nil {
			work(i, out)
		}
		outs[i] = out
		// Journal only results an uninterrupted run would also have
		// produced: the ctx must still be live (a cancellation racing
		// with completion could have degraded any stage), the report
		// must record no cancellation, and the work must have
		// succeeded. Anything else is recomputed on resume.
		if ctx.Err() == nil && !interrupted(out) && out.Err == nil {
			atomic.AddInt64(&completed, 1)
			if ck != nil && ck.C != nil && ck.Encode != nil {
				if v, err := ck.Encode(i, out); err == nil {
					ck.C.Record(ck.key(it.Name), v)
				}
			}
		}
	}

	if jobs <= 1 {
		for _, i := range pending {
			if ctx.Err() != nil {
				break
			}
			run(i)
		}
	} else {
		ch := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < jobs; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range ch {
					run(i)
				}
			}()
		}
	dispatch:
		for _, i := range pending {
			select {
			case ch <- i:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(ch)
		wg.Wait()
	}

	if err := ctx.Err(); err != nil {
		return outs, int(atomic.LoadInt64(&completed)), fmt.Errorf("batch interrupted: %w", err)
	}
	if post != nil {
		for i := range outs {
			post(i, outs[i])
		}
	}
	return outs, int(atomic.LoadInt64(&completed)), nil
}
