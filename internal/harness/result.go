package harness

import (
	"repro/internal/alias"
	"repro/internal/andersen"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/pdg"
	"repro/internal/rangeanal"
)

// Result bundles the hardened pipeline's outputs. Unlike
// core.Prepared it is never nil-fielded: failed stages leave sound
// conservative stand-ins (⊤ ranges, empty LT sets, MayAlias CF), so
// every downstream client keeps running.
type Result struct {
	Module *ir.Module
	Ranges *rangeanal.Result
	LT     *core.Result
	// CF is the Andersen analysis; nil unless Config.WithCF.
	CF *andersen.Analysis

	p *Pipeline
}

// Evaluate runs the aa-eval protocol with each function inside its
// own containment region: a panic while evaluating one function
// (broken IR, a crashing analysis) records a StageFailure and counts
// all of that function's pointer pairs as MayAlias — the queries still
// appear in the totals, claiming nothing. Quarantined functions take
// the MayAlias path directly, without traversing their bodies'
// instruction lists beyond pointer enumeration.
func (r *Result) Evaluate(analyses ...alias.Analysis) *alias.Report {
	p := r.p
	rep := alias.NewReport(r.Module.Name, analyses...)
	for _, f := range r.Module.Funcs {
		f := f
		if p.skip[f] {
			// The IR may be broken; even enumeration runs guarded.
			p.guardBare(StageAliasEval, f.FName, func() {
				alias.MayAliasOnly(f, rep, analyses...)
			})
			continue
		}
		fRep := alias.NewReport(r.Module.Name, analyses...)
		fail := p.guard(StageAliasEval, f.FName, func() {
			alias.EvaluateFunc(f, fRep, analyses...)
		})
		if fail != nil {
			p.rep.markDegraded(f.FName, StageAliasEval)
			fRep = alias.NewReport(r.Module.Name, analyses...)
			p.guardBare(StageAliasEval, f.FName, func() {
				alias.MayAliasOnly(f, fRep, analyses...)
			})
		}
		rep = alias.MergeReports(r.Module.Name, rep, fRep)
	}
	return rep
}

// PDG builds the program dependence graph under containment. On
// failure it returns nil and the recorded StageFailure; callers in
// non-strict pipelines treat a nil graph as "no PDG information".
func (r *Result) PDG(aa alias.Analysis) (*pdg.Graph, error) {
	p := r.p
	defer p.timeStage(StagePDG)()
	var g *pdg.Graph
	fail := p.guard(StagePDG, "", func() {
		g = pdg.Build(r.Module, aa)
	})
	if fail != nil {
		return nil, fail
	}
	return g, nil
}

// Degraded reports whether fn runs on conservative answers.
func (r *Result) Degraded(fn string) bool {
	return len(r.p.rep.DegradedBy(fn)) > 0
}
