package harness

import (
	"sync"

	"repro/internal/alias"
	"repro/internal/andersen"
	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/pdg"
	"repro/internal/rangeanal"
	"repro/internal/sanitize"
	"repro/internal/steens"
)

// Result bundles the hardened pipeline's outputs. Unlike
// core.Prepared it is never nil-fielded: failed stages leave sound
// conservative stand-ins (⊤ ranges, empty LT sets, MayAlias CF), so
// every downstream client keeps running.
type Result struct {
	Module *ir.Module
	Ranges *rangeanal.Result
	LT     *core.Result
	// CF is the Andersen analysis; nil unless Config.WithCF.
	CF *andersen.Analysis
	// ST is the Steensgaard analysis; nil unless Config.WithST.
	ST *steens.Analysis

	p *Pipeline
}

// Evaluate runs the aa-eval protocol with each function inside its
// own containment region: a panic while evaluating one function
// (broken IR, a crashing analysis) records a StageFailure and counts
// all of that function's pointer pairs as MayAlias — the queries still
// appear in the totals, claiming nothing. Quarantined functions take
// the MayAlias path directly, without traversing their bodies'
// instruction lists beyond pointer enumeration.
func (r *Result) Evaluate(analyses ...alias.Analysis) *alias.Report {
	p := r.p
	m := r.Module
	// Per-function slots: workers fill them, the calling goroutine
	// merges in module function order (see parallel.go).
	type slot struct {
		rep      *alias.Report
		fails    []StageFailure
		degraded bool
	}
	slots := make([]slot, len(m.Funcs))
	evalOne := func(i int, f *ir.Func) {
		s := &slots[i]
		if p.skip[f] {
			// The IR may be broken; even enumeration runs contained.
			fRep := alias.NewReport(m.Name, analyses...)
			if fail := p.contain(StageAliasEval, f.FName, false, func() {
				alias.MayAliasOnly(f, fRep, analyses...)
			}); fail != nil {
				s.fails = append(s.fails, *fail)
			}
			s.rep = fRep
			return
		}
		fRep := alias.NewReport(m.Name, analyses...)
		fail := p.contain(StageAliasEval, f.FName, true, func() {
			alias.EvaluateFunc(f, fRep, analyses...)
		})
		if fail != nil {
			s.fails = append(s.fails, *fail)
			s.degraded = true
			fRep = alias.NewReport(m.Name, analyses...)
			if fail2 := p.contain(StageAliasEval, f.FName, false, func() {
				alias.MayAliasOnly(f, fRep, analyses...)
			}); fail2 != nil {
				s.fails = append(s.fails, *fail2)
			}
		}
		s.rep = fRep
	}

	if jobs := min(p.jobs(), len(m.Funcs)); jobs <= 1 {
		for i, f := range m.Funcs {
			evalOne(i, f)
		}
	} else {
		ch := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < jobs; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range ch {
					evalOne(i, m.Funcs[i])
				}
			}()
		}
		for i := range m.Funcs {
			ch <- i
		}
		close(ch)
		wg.Wait()
	}

	rep := alias.NewReport(m.Name, analyses...)
	for i, f := range m.Funcs {
		s := &slots[i]
		for _, sf := range s.fails {
			p.rep.addFailure(sf)
		}
		if s.degraded {
			p.rep.markDegraded(f.FName, StageAliasEval)
		}
		if s.rep != nil {
			rep = alias.MergeReports(m.Name, rep, s.rep)
		}
	}
	return rep
}

// Sanitize runs the memory-safety sanitizer over the pipeline's
// results, under the same hardening discipline as the less-than
// stage: per-function panics and budget exhaustion are contained
// inside the sanitizer (Options.Recover / BudgetFor), quarantined
// functions are skipped, and failures are forwarded into the run
// report. The returned report is never nil: total failure degrades to
// an empty report, which claims nothing about any access.
func (r *Result) Sanitize() *sanitize.Report {
	p := r.p
	defer p.timeStage(StageSanitize)()
	opt := sanitize.Options{
		Recover: true,
		Skip:    p.skip,
		Budget:  budget.Spec{Timeout: p.cfg.Timeout, MaxSteps: p.cfg.MaxSteps},
		BudgetFor: func(f *ir.Func) budget.Spec {
			return p.spec(StageSanitize, f.FName)
		},
		OnFunc:  func(f *ir.Func) { p.maybeFault(StageSanitize, f.FName) },
		Workers: p.jobs(),
	}

	// guardBare: fault injection goes through OnFunc, per function.
	var rep *sanitize.Report
	p.guardBare(StageSanitize, "", func() {
		rep = sanitize.AnalyzeCtx(p.ctx, r.Module, r.Ranges, r.LT, opt)
	})
	if rep == nil {
		rep = &sanitize.Report{Degraded: map[*ir.Func]string{}}
	}
	for _, ff := range rep.Failures {
		p.rep.addFailure(StageFailure{
			Stage: StageSanitize, Func: ff.Fn,
			Cause: ff.Cause, Value: ff.Value, Stack: ff.Stack,
		})
	}
	for f, cause := range rep.Degraded {
		if cause != "skipped" {
			p.rep.markDegraded(f.FName, StageSanitize)
		}
	}
	return rep
}

// PDG builds the program dependence graph under containment. On
// failure it returns nil and the recorded StageFailure; callers in
// non-strict pipelines treat a nil graph as "no PDG information".
func (r *Result) PDG(aa alias.Analysis) (*pdg.Graph, error) {
	p := r.p
	defer p.timeStage(StagePDG)()
	var g *pdg.Graph
	fail := p.guard(StagePDG, "", func() {
		g = pdg.Build(r.Module, aa)
	})
	if fail != nil {
		return nil, fail
	}
	return g, nil
}

// Degraded reports whether fn runs on conservative answers.
func (r *Result) Degraded(fn string) bool {
	return len(r.p.rep.DegradedBy(fn)) > 0
}
