package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/persist"
	"repro/internal/rangeanal"
)

// Cache is a content-addressed memo store for per-function less-than
// results. The key fingerprints every input the per-function solve
// reads — the function's canonical IR text, the interval of every
// integer-typed variable, the element types of every referenced
// global (GEP scaling reads them, and global declarations are not
// part of the function text), and the option flags that change the
// solver's semantics — so a hit is guaranteed to denote the same
// computation, not merely the same source text. Artifacts are
// positional (see core/memo.go) and rebinding verifies every variable
// reference, so even a hash collision cannot silently corrupt a
// result: a mismatched artifact falls back to recomputation.
//
// Cache is safe for concurrent use and may be shared across pipelines
// and modules; that sharing is the point — csmith sweeps and repeated
// experiment phases re-analyze textually identical functions, which
// become table lookups on the second encounter.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*core.FuncArtifact
	hits    int64
	misses  int64
	// disk, when non-nil, is the durable tier behind the in-memory
	// map: lookups fall back to it (a hit promotes the artifact into
	// memory) and stores write through to it, so the cache survives
	// the process. Usually a *persist.Store; a remote.Client slots in
	// for sweeps sharing a network store. See internal/persist.
	disk     CacheBackend
	diskHits int64
}

// CacheBackend is the durable tier under the in-memory map. The
// contract mirrors the rest of the cache: Get answers only with
// validated artifacts (a corrupt or unreachable backend reads as a
// miss, never an error), and a Put failure degrades durability for
// that entry without failing the analysis. *persist.Store is the
// local implementation; remote.Client the networked one.
type CacheBackend interface {
	Get(key string) (*core.FuncArtifact, bool)
	Put(key string, a *core.FuncArtifact) error
}

// backendStats is the optional stats hook a backend may implement
// (persist.Store does); the snapshot surfaces it when present.
type backendStats interface {
	Stats() persist.StoreStats
}

// backendStatsLine is the free-form fallback for backends whose
// counters do not fit StoreStats (the remote client).
type backendStatsLine interface {
	StatsLine() string
}

// NewCache returns an empty in-memory cache.
func NewCache() *Cache {
	return &Cache{entries: map[string]*core.FuncArtifact{}}
}

// NewCacheWithStore returns a cache backed by the durable artifact
// store: every artifact the store already holds is visible to Lookup,
// and every Store writes through to disk atomically, so a second
// process pointed at the same directory reuses every per-function
// solve of the first. Write failures (full disk, permissions) degrade
// the cache to in-memory operation for the failed entry and are
// counted in the store's stats — they never fail the analysis.
func NewCacheWithStore(st *persist.Store) *Cache {
	return &Cache{entries: map[string]*core.FuncArtifact{}, disk: st}
}

// NewCacheWithBackend returns a cache over an arbitrary durable tier —
// the hook the distributed sweep uses to put the remote store client
// under the memo cache. A nil backend yields a plain in-memory cache.
func NewCacheWithBackend(b CacheBackend) *Cache {
	return &Cache{entries: map[string]*core.FuncArtifact{}, disk: b}
}

// Lookup implements core.Memo.
func (c *Cache) Lookup(key string) (*core.FuncArtifact, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.entries[key]
	if !ok && c.disk != nil {
		if a, ok = c.disk.Get(key); ok {
			c.entries[key] = a
			c.diskHits++
		}
	}
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return a, ok
}

// Store implements core.Memo.
func (c *Cache) Store(key string, a *core.FuncArtifact) {
	c.mu.Lock()
	c.entries[key] = a
	disk := c.disk
	c.mu.Unlock()
	if disk != nil {
		// Write-through outside the cache lock: the atomic file write
		// does disk I/O and must not serialize the worker pool. Errors
		// are counted in the store's stats.
		disk.Put(key, a)
	}
}

// Flush makes every cached artifact durable. With write-through
// stores this is already true record by record; Flush exists so
// shutdown paths have one call that asserts it.
func (c *Cache) Flush() {
	// Write-through: nothing buffered. Kept as the explicit shutdown
	// hook so a future buffered implementation has a place to drain.
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Entries int
	Hits    int64
	Misses  int64
	// DiskHits counts hits served from the durable tier (a subset of
	// Hits); Persistent and Store describe the backing store.
	DiskHits   int64
	Persistent bool
	Store      persist.StoreStats
	// Backend is the backing tier's own stats line when it reports one
	// outside the StoreStats shape (e.g. the remote store client).
	Backend string
}

// HitRate is hits over lookups, 0 when the cache was never consulted.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func (s CacheStats) String() string {
	base := fmt.Sprintf("entries=%d hits=%d misses=%d hit-rate=%.1f%%",
		s.Entries, s.Hits, s.Misses, 100*s.HitRate())
	if s.Persistent {
		base += fmt.Sprintf(" disk-hits=%d", s.DiskHits)
		if s.Backend != "" {
			base += " " + s.Backend
		} else {
			base += fmt.Sprintf(" store[%s]", s.Store)
		}
	}
	return base
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{Entries: len(c.entries), Hits: c.hits, Misses: c.misses, DiskHits: c.diskHits}
	if c.disk != nil {
		st.Persistent = true
		if bs, ok := c.disk.(backendStats); ok {
			st.Store = bs.Stats()
		} else if bl, ok := c.disk.(backendStatsLine); ok {
			st.Backend = bl.StatsLine()
		}
	}
	return st
}

// funcKey fingerprints one function's solve inputs. Section order is
// fixed (text, globals, ranges, options) with NUL separators so no
// section can masquerade as another. Inter-procedural seeds are NOT
// part of this key: core appends its own canonical seed suffix, so
// refinement rounds with different seeds never collide.
func funcKey(f *ir.Func, ranges *rangeanal.Result, opt core.Options) string {
	h := sha256.New()
	io.WriteString(h, f.String())

	// Referenced globals in first-use order (block/instruction order,
	// hence deterministic). Their element types decide GEP scaling.
	io.WriteString(h, "\x00globals\x00")
	seen := map[*ir.Global]bool{}
	f.Instrs(func(in *ir.Instr) bool {
		for _, a := range in.Args {
			if g, ok := a.(*ir.Global); ok && !seen[g] {
				seen[g] = true
				fmt.Fprintf(h, "@%s:%s;", g.GName, g.Elem.String())
			}
		}
		return true
	})

	// Intervals of every integer-typed variable, in the same
	// enumeration order the solver uses (params, then instruction
	// results in block order).
	io.WriteString(h, "\x00ranges\x00")
	if !opt.NoRanges && ranges != nil {
		writeIv := func(v ir.Value) {
			if !ir.IsInt(v.Type()) {
				return
			}
			iv := ranges.Range(v)
			fmt.Fprintf(h, "%s=[%d,%d];", v.Ref(), iv.Lo, iv.Hi)
		}
		for _, p := range f.Params {
			writeIv(p)
		}
		f.Instrs(func(in *ir.Instr) bool {
			if in.HasResult() {
				writeIv(in)
			}
			return true
		})
	}

	fmt.Fprintf(h, "\x00opts:nr=%t,ns=%t,ss=%t", opt.NoRanges, opt.NonStrict, opt.SmallSets)
	return hex.EncodeToString(h.Sum(nil))
}
