package harness

import (
	"fmt"
	"testing"

	"repro/internal/alias"
	"repro/internal/csmith"
	"repro/internal/soundcheck"
)

// TestParallelSoundnessSweep is the differential soundness sweep of
// the parallel driver: >= 200 generated programs go through the
// sharded, cache-backed pipeline, and every LT fact and every
// definitive alias verdict the driver produces is validated against a
// concrete execution by the internal/interp oracle. Seeds are fixed,
// so a failure names the exact program that reproduces it.
func TestParallelSoundnessSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	const programs = 200

	type verdict struct {
		ltViolations    []string
		aliasViolations []string
		checks          int
		earlyExit       error
	}

	items := make([]BatchItem, programs)
	srcs := make([]string, programs)
	for i := range items {
		seed := int64(4000 + i)
		src := csmith.Generate(csmith.Config{
			Seed: seed, MaxPtrDepth: 2 + i%5, Stmts: 25 + i%20,
		})
		items[i] = BatchItem{Name: fmt.Sprintf("sweep_seed%d", seed), Src: src}
		srcs[i] = src
	}

	cache := NewCache()
	// The oracle runs on the worker too: interpretation is the
	// expensive half of the sweep and each program's execution is
	// independent.
	outs := RunBatch(Config{Cache: cache}, 4, items,
		func(i int, out *BatchOutcome) {
			if out.Err != nil {
				return
			}
			v := &verdict{}
			rep, err := soundcheck.CheckLT(out.Res.Module, out.Res.LT, "main")
			if err != nil {
				// Generated programs may divide by a zero-valued
				// expression at runtime; those executions end early
				// and still validate every block they reached.
				v.earlyExit = err
			}
			if rep != nil {
				v.ltViolations = rep.Violations
				v.checks += rep.ChecksPerformed
			}
			ba := alias.NewBasic(out.Res.Module)
			lt := alias.NewSRAA(out.Res.LT)
			arep, _ := soundcheck.CheckAlias(out.Res.Module, alias.NewChain(ba, lt), "main")
			if arep != nil {
				v.aliasViolations = arep.Violations
				v.checks += arep.ChecksPerformed
			}
			out.Value = v
		}, nil)

	checks, earlyExits := 0, 0
	for i, out := range outs {
		if out.Err != nil {
			t.Fatalf("%s: pipeline error: %v\nprogram:\n%s", out.Name, out.Err, srcs[i])
		}
		if !out.Pipe.Report().Ok() {
			t.Fatalf("%s: pipeline degraded on a generated program:\n%s\nprogram:\n%s",
				out.Name, out.Pipe.Report(), srcs[i])
		}
		v := out.Value.(*verdict)
		if len(v.ltViolations) > 0 {
			t.Fatalf("%s: LT adequacy violated:\n%v\nprogram:\n%s", out.Name, v.ltViolations, srcs[i])
		}
		if len(v.aliasViolations) > 0 {
			t.Fatalf("%s: alias verdicts violated:\n%v\nprogram:\n%s", out.Name, v.aliasViolations, srcs[i])
		}
		checks += v.checks
		if v.earlyExit != nil {
			earlyExits++
		}
	}
	if checks == 0 {
		t.Fatal("sweep performed zero dynamic checks; the oracle is not engaging")
	}
	t.Logf("sweep: %d programs, %d dynamic checks, %d early exits, cache %s",
		programs, checks, earlyExits, cache.Stats())
}
