package harness

import (
	"strings"
	"testing"
)

// The frontend must convert every malformed input into an error —
// through the parser's own diagnostics or, failing that, through the
// harness's containment — and never let a raw panic escape.

var badMiniC = []struct {
	name, src string
}{
	{"empty", ""},
	{"garbage", "@@@@ ;;;; ((((("},
	{"unterminated-func", "int f(int x) {"},
	{"missing-semicolon", "int f() { int x x = 1; return x; }"},
	{"undefined-var", "int f() { return nothere; }"},
	{"bad-call-arity", "int g(int a, int b) { return a; } int f() { return g(1); }"},
	{"unknown-callee", "int f() { return mystery(1, 2); }"},
	{"assign-to-literal", "int f() { 3 = 4; return 0; }"},
	{"stray-brace", "int f() { return 0; } }"},
	{"type-soup", "void void f(int int x) { return; }"},
	{"unterminated-comment", "int f() { /* no end return 0; }"},
	{"deref-int", "int f() { int x; x = 1; return *x; }"},
	{"for-garbage", "int f() { for (;;;;) {} return 0; }"},
	{"call-void-in-expr", "void g() { return; } int f() { return g() + 1; }"},
	{"huge-nesting", strings.Repeat("int f() { if (1) {", 1) + strings.Repeat("{", 500)},
}

func TestCompileMalformedInputNeverPanics(t *testing.T) {
	for _, tc := range badMiniC {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := New(Config{})
			m, err := p.Compile("bad", tc.src)
			if err == nil && m == nil {
				t.Fatal("nil module with nil error")
			}
			if err == nil {
				// Some inputs may legitimately parse (e.g. an odd but
				// valid construct); what matters is no escaped panic
				// and an analyzable module.
				if _, aerr := p.Analyze(m); aerr != nil {
					t.Fatalf("analyze after tolerated parse failed: %v", aerr)
				}
				return
			}
			if !strings.Contains(err.Error(), "stage") &&
				!strings.Contains(err.Error(), "minic") &&
				!strings.Contains(err.Error(), "line") {
				t.Fatalf("error carries no diagnostic context: %v", err)
			}
		})
	}
}

var badIR = []struct {
	name, src string
}{
	{"empty", ""},
	{"garbage", "!!!! not ir at all"},
	{"half-func", "func @f(i64 %x) {"},
	{"bad-op", "func @f() {\nentry:\n  %v = frobnicate 1, 2\n  ret\n}"},
	{"undefined-value", "func @f() {\nentry:\n  %v = add %ghost, 1\n  ret %v\n}"},
	{"dup-name", "func @f() {\nentry:\n  %v = add 1, 1\n  %v = add 2, 2\n  ret %v\n}"},
	{"no-terminator", "func @f() {\nentry:\n  %v = add 1, 1\n}"},
}

func TestParseIRMalformedInputNeverPanics(t *testing.T) {
	for _, tc := range badIR {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := New(Config{})
			m, err := p.ParseIR(tc.src)
			if err == nil && m == nil {
				t.Fatal("nil module with nil error")
			}
			if err == nil {
				if _, aerr := p.Analyze(m); aerr != nil {
					t.Fatalf("analyze after tolerated parse failed: %v", aerr)
				}
			}
		})
	}
}

// TestFrontendFaultsBecomeErrors proves the parse and lower guards
// turn injected panics into StageFailure errors rather than crashes.
func TestFrontendFaultsBecomeErrors(t *testing.T) {
	for _, stage := range []string{StageParse, StageLower} {
		stage := stage
		t.Run(stage, func(t *testing.T) {
			p := New(Config{Fault: &FaultConfig{Stage: stage}})
			_, err := p.Compile("t", "int f() { return 0; }")
			if err == nil {
				t.Fatalf("injected %s fault produced no error", stage)
			}
			if !strings.Contains(err.Error(), stage) ||
				!strings.Contains(err.Error(), "injected fault") {
				t.Fatalf("error does not describe the contained panic: %v", err)
			}
		})
	}
}
