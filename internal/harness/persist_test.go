package harness

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/corpus"
	"repro/internal/persist"
	"repro/internal/persist/journal"
)

// TestPersistentCacheWarmAcrossReopen: a second cache opened over the
// same store directory — a fresh process, as far as the cache can
// tell — serves every per-function solve from disk and produces
// byte-identical canonical output.
func TestPersistentCacheWarmAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	progs := corpus.TestSuite(6)
	items := make([]BatchItem, len(progs))
	for i, p := range progs {
		items[i] = BatchItem{Name: p.Name, Src: p.Source}
	}
	eval := func(i int, out *BatchOutcome) {
		if out.Err == nil {
			out.Value = canonical(out.Pipe, out.Res)
		}
	}

	runOnce := func() ([]string, CacheStats) {
		st, err := persist.OpenStore(dir)
		if err != nil {
			t.Fatalf("OpenStore: %v", err)
		}
		cache := NewCacheWithStore(st)
		outs := RunBatch(Config{Cache: cache}, 4, items, eval, nil)
		got := make([]string, len(outs))
		for i, out := range outs {
			if out.Err != nil {
				t.Fatalf("%s: %v", out.Name, out.Err)
			}
			got[i] = out.Value.(string)
		}
		return got, cache.Stats()
	}

	cold, coldStats := runOnce()
	if !coldStats.Persistent || coldStats.Store.Puts == 0 {
		t.Fatalf("cold run wrote nothing through: %s", coldStats)
	}
	if coldStats.DiskHits != 0 {
		t.Fatalf("cold run claims disk hits against an empty store: %s", coldStats)
	}

	warm, warmStats := runOnce()
	if warmStats.DiskHits < 1 {
		t.Fatalf("warm run never hit the disk store: %s", warmStats)
	}
	if warmStats.Store.Quarantined != 0 || warmStats.Store.PutErrors != 0 {
		t.Fatalf("warm run saw store damage: %s", warmStats)
	}
	for i := range cold {
		if warm[i] != cold[i] {
			t.Fatalf("%s: disk-served artifacts changed the canonical output", items[i].Name)
		}
	}
	// The warm store must have re-loaded everything the cold run put.
	if warmStats.Store.Loaded == 0 {
		t.Fatalf("reopened store loaded nothing: %s", warmStats)
	}
}

// canonCheckpoint journals each item's canonical output string.
func canonCheckpoint(c *journal.Checkpoint) *BatchCheckpoint {
	return &BatchCheckpoint{
		C: c,
		Encode: func(i int, out *BatchOutcome) (any, error) {
			s, ok := out.Value.(string)
			if !ok {
				return nil, errors.New("no canonical value")
			}
			return s, nil
		},
		Decode: func(i int, data []byte, out *BatchOutcome) error {
			var s string
			if err := json.Unmarshal(data, &s); err != nil {
				return err
			}
			out.Value = s
			return nil
		},
	}
}

// TestCheckpointResumeEquality: a run resumed over a complete journal
// replays every item without recomputation and reproduces the
// uninterrupted run's outputs exactly.
func TestCheckpointResumeEquality(t *testing.T) {
	progs := corpus.TestSuite(6)
	items := make([]BatchItem, len(progs))
	want := make([]string, len(progs))
	for i, p := range progs {
		items[i] = BatchItem{Name: p.Name, Src: p.Source}
		want[i] = canonicalRun(t, p.Name, p.Source, Config{})
	}
	eval := func(i int, out *BatchOutcome) {
		if out.Err == nil {
			out.Value = canonical(out.Pipe, out.Res)
		}
	}
	path := filepath.Join(t.TempDir(), "batch.wal")

	ck, err := journal.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	outs, completed, err := RunBatchCtx(context.Background(), Config{}, 4, items, canonCheckpoint(ck), eval, nil)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if completed != len(items) {
		t.Fatalf("first run completed %d/%d", completed, len(items))
	}
	for i, out := range outs {
		if out.Replayed {
			t.Fatalf("%s: nothing to replay on a fresh journal", out.Name)
		}
		if out.Value.(string) != want[i] {
			t.Fatalf("%s: checkpointed run output differs", out.Name)
		}
	}
	ck.Close()

	ck2, err := journal.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Count() != len(items) {
		t.Fatalf("journal replayed %d records, want %d", ck2.Count(), len(items))
	}
	outs2, completed2, err := RunBatchCtx(context.Background(), Config{}, 4, items, canonCheckpoint(ck2), eval, nil)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if completed2 != len(items) {
		t.Fatalf("resumed run completed %d/%d", completed2, len(items))
	}
	for i, out := range outs2 {
		if !out.Replayed {
			t.Fatalf("%s: recomputed despite a complete journal", out.Name)
		}
		if out.Pipe != nil || out.Res != nil {
			t.Fatalf("%s: replayed outcome carries live pipeline state", out.Name)
		}
		if out.Value.(string) != want[i] {
			t.Fatalf("%s: replayed output differs from uninterrupted run", out.Name)
		}
	}
}

// TestCancelDrainThenResume: cancel a batch mid-flight, then resume
// it under a fresh context over the same journal. The resumed run's
// outputs must equal an uninterrupted run's — canceled or in-flight
// items must never have been journaled.
func TestCancelDrainThenResume(t *testing.T) {
	progs := corpus.TestSuite(8)
	items := make([]BatchItem, len(progs))
	want := make([]string, len(progs))
	for i, p := range progs {
		items[i] = BatchItem{Name: p.Name, Src: p.Source}
		want[i] = canonicalRun(t, p.Name, p.Source, Config{})
	}
	path := filepath.Join(t.TempDir(), "batch.wal")

	ck, err := journal.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var done int32
	_, completed, err := RunBatchCtx(ctx, Config{}, 2, items, canonCheckpoint(ck),
		func(i int, out *BatchOutcome) {
			if out.Err == nil {
				out.Value = canonical(out.Pipe, out.Res)
			}
			// Pull the plug after the third completion; the remaining
			// workers drain, the rest is never dispatched.
			if atomic.AddInt32(&done, 1) == 3 {
				cancel()
			}
		}, func(i int, out *BatchOutcome) {
			t.Fatal("post must not run on a canceled batch")
		})
	cancel()
	if err == nil {
		t.Fatal("canceled batch reported success")
	}
	if completed >= len(items) {
		t.Fatalf("canceled batch claims full completion (%d/%d)", completed, len(items))
	}
	ck.Close()

	ck2, err := journal.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if n := ck2.Count(); n == 0 || n >= len(items) {
		t.Fatalf("journal holds %d records after a mid-run kill, want 1..%d", n, len(items)-1)
	}
	eval := func(i int, out *BatchOutcome) {
		if out.Err == nil {
			out.Value = canonical(out.Pipe, out.Res)
		}
	}
	outs, completed2, err := RunBatchCtx(context.Background(), Config{}, 2, items, canonCheckpoint(ck2), eval, nil)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if completed2 != len(items) {
		t.Fatalf("resumed run completed %d/%d", completed2, len(items))
	}
	replayed := 0
	for i, out := range outs {
		if out.Replayed {
			replayed++
		}
		if out.Value.(string) != want[i] {
			t.Fatalf("%s: resumed output differs from uninterrupted run (replayed=%t)", out.Name, out.Replayed)
		}
	}
	if replayed == 0 {
		t.Fatal("resume recomputed everything; journal was ignored")
	}
}
