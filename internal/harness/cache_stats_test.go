package harness

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/persist"
)

// The serving daemon shares one Cache across every in-flight request
// and exports its counters on /stats, so the counters must stay
// exact — not merely race-free — under heavy concurrent mixing of
// hits, misses, disk promotions, and stores. These tests pin the
// arithmetic: every Lookup is counted exactly once as a hit or a
// miss, and every distinct disk promotion exactly once.

func statsArtifact(i int) *core.FuncArtifact {
	return &core.FuncArtifact{
		Vars: []string{fmt.Sprintf("%%v%d", i)},
		Sets: [][]int32{{}},
		Stats: core.FuncStats{
			Instrs: i, Vars: 1, SetSizes: map[int]int{0: 1},
		},
	}
}

func statsKey(i int) string { return fmt.Sprintf("%064x", i) }

// TestCacheStatsConcurrentExact hammers a store-backed cache from
// many goroutines and checks the totals add up exactly.
func TestCacheStatsConcurrentExact(t *testing.T) {
	dir := t.TempDir()

	// Prepopulate the durable store with diskKeys artifacts through a
	// throwaway cache, then reopen so the second cache starts cold in
	// memory but warm on disk.
	const diskKeys = 8
	st, err := persist.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewCacheWithStore(st)
	for i := 0; i < diskKeys; i++ {
		warm.Store(statsKey(i), statsArtifact(i))
	}

	st2, err := persist.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCacheWithStore(st2)

	const (
		workers = 16
		rounds  = 50
		// Each worker round touches: diskKeys prepopulated keys,
		// memKeys keys stored during the run, missKeys never-stored
		// keys.
		memKeys  = 4
		missKeys = 4
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := 0; i < diskKeys; i++ {
					if _, ok := c.Lookup(statsKey(i)); !ok {
						t.Errorf("disk-backed key %d missed", i)
					}
				}
				for i := 0; i < memKeys; i++ {
					k := statsKey(100 + i)
					if _, ok := c.Lookup(k); !ok {
						c.Store(k, statsArtifact(100+i))
					}
				}
				for i := 0; i < missKeys; i++ {
					c.Lookup(statsKey(1000 + 10*w + i)) // per-worker, never stored
				}
			}
		}(w)
	}
	wg.Wait()

	st3 := c.Stats()
	totalLookups := int64(workers * rounds * (diskKeys + memKeys + missKeys))
	if st3.Hits+st3.Misses != totalLookups {
		t.Errorf("hits %d + misses %d = %d, want exactly %d lookups",
			st3.Hits, st3.Misses, st3.Hits+st3.Misses, totalLookups)
	}
	// Disk-backed keys are promoted into memory at most once each;
	// every other lookup of them is a memory hit.
	if st3.DiskHits != diskKeys {
		t.Errorf("disk hits = %d, want exactly %d (one promotion per stored key)", st3.DiskHits, diskKeys)
	}
	// Misses: never-stored keys always miss; each mem key misses at
	// least once (before the first Store) and each disk key never
	// misses. The miss count is bounded, not fixed — the Lookup/Store
	// pair is not atomic — but the floor and ceiling are exact.
	minMisses := int64(workers * rounds * missKeys)
	maxMisses := minMisses + int64(workers*memKeys) // every worker can lose the race once per key
	if st3.Misses < minMisses || st3.Misses > maxMisses {
		t.Errorf("misses = %d, want in [%d, %d]", st3.Misses, minMisses, maxMisses)
	}
	if st3.Entries != diskKeys+memKeys {
		t.Errorf("entries = %d, want %d", st3.Entries, diskKeys+memKeys)
	}
	if !st3.Persistent {
		t.Error("store-backed cache not marked persistent")
	}
	if st3.Store.Loaded != diskKeys {
		t.Errorf("store loaded = %d, want %d", st3.Store.Loaded, diskKeys)
	}
	if st3.Store.PutErrors != 0 {
		t.Errorf("store put errors = %d", st3.Store.PutErrors)
	}

	// The snapshot rate agrees with its own counters.
	if got, want := st3.HitRate(), float64(st3.Hits)/float64(st3.Hits+st3.Misses); got != want {
		t.Errorf("HitRate() = %f, want %f", got, want)
	}
}

// TestCacheStatsInMemoryConcurrent is the pure in-memory variant: no
// store, so DiskHits must stay zero and Persistent false.
func TestCacheStatsInMemoryConcurrent(t *testing.T) {
	c := NewCache()
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := statsKey(i % 5)
				if _, ok := c.Lookup(k); !ok {
					c.Store(k, statsArtifact(i%5))
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != workers*perWorker {
		t.Errorf("hits %d + misses %d != %d lookups", st.Hits, st.Misses, workers*perWorker)
	}
	if st.DiskHits != 0 || st.Persistent {
		t.Errorf("in-memory cache reports disk: diskHits=%d persistent=%t", st.DiskHits, st.Persistent)
	}
	if st.Entries != 5 {
		t.Errorf("entries = %d, want 5", st.Entries)
	}
}
