package harness

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/alias"
	"repro/internal/budget"
	"repro/internal/ir"
	"repro/internal/soundcheck"
)

// testSrc is a three-function module: every function has pointer
// pairs the LT analysis can disambiguate, and main exercises all of
// them so the soundcheck interpreter can replay the whole module.
const testSrc = `
int g[10];
int h[10];

void fill(int* v, int n) {
  int i, j;
  for (i = 0; i < n - 1; i++) {
    for (j = i + 1; j < n; j++) {
      if (v[i] > v[j]) {
        int tmp = v[i];
        v[i] = v[j];
        v[j] = tmp;
      }
    }
  }
}

int sum(int* v, int n) {
  int i, j, s;
  s = 0;
  for (i = 0; i < n - 1; i++) {
    j = i + 1;
    s = s + v[i] - v[j];
  }
  return s;
}

int main() {
  g[0] = 5; g[1] = 1; g[2] = 9; g[3] = 3; g[4] = 7;
  h[0] = 2; h[1] = 8; h[2] = 0; h[3] = 6; h[4] = 4;
  fill(g, 10);
  fill(h, 10);
  return sum(g, 10) + sum(h, 10);
}
`

// run compiles and analyzes testSrc under cfg, failing the test on
// frontend errors (the analysis stages must degrade, not error, in
// non-strict mode).
func run(t *testing.T, cfg Config) (*Pipeline, *Result) {
	t.Helper()
	p := New(cfg)
	res, err := p.CompileAndAnalyze("t", testSrc)
	if err != nil {
		t.Fatalf("pipeline error (non-strict must degrade): %v", err)
	}
	return p, res
}

// evalCounts evaluates the BA+LT chain and returns per-analysis
// counts for the whole module.
func evalCounts(r *Result) *alias.Report {
	ba := alias.NewBasic(r.Module)
	lt := alias.NewSRAA(r.LT)
	return r.Evaluate(ba, lt, alias.NewChain(ba, lt))
}

// funcCounts evaluates one function in isolation with a fresh SRAA
// over r's LT sets.
func funcCounts(r *Result, fn string) alias.Counts {
	lt := alias.NewSRAA(r.LT)
	for _, f := range r.Module.Funcs {
		if f.FName == fn {
			rep := alias.NewReport("f", lt)
			alias.EvaluateFunc(f, rep, lt)
			return *rep.PerAnalysis[lt.Name()]
		}
	}
	return alias.Counts{}
}

func TestHappyPathCleanReport(t *testing.T) {
	p, res := run(t, Config{WithCF: true})
	if !p.Report().Ok() {
		t.Fatalf("clean run reported failures:\n%s", p.Report())
	}
	rep := evalCounts(res)
	if c := rep.PerAnalysis["LT"]; c.No == 0 {
		t.Fatalf("LT disambiguated nothing on the happy path: %+v", c)
	}
	if res.CF == nil || res.CF.Degraded() != nil {
		t.Fatalf("CF missing or degraded on the happy path")
	}
	if len(p.Report().Timings) == 0 {
		t.Fatal("no stage timings recorded")
	}
}

// perFuncStages are the stages whose containment unit is one
// function: a fault on fill must leave sum and main untouched.
var perFuncStages = []string{StageMem2Reg, StageESSA, StageSplit, StageLessThan, StageAliasEval}

func TestFaultContainmentPerFunction(t *testing.T) {
	_, clean := run(t, Config{})
	cleanSum := funcCounts(clean, "sum")
	cleanFill := funcCounts(clean, "fill")
	cleanFull := *evalCounts(clean).PerAnalysis["LT"]
	if cleanFill.No == 0 {
		t.Fatal("fill must have disambiguated pairs for the containment check to mean anything")
	}

	for _, stage := range perFuncStages {
		stage := stage
		t.Run(stage, func(t *testing.T) {
			p, res := run(t, Config{Fault: &FaultConfig{Stage: stage, Func: "fill"}})

			// The module evaluation survives the fault (an aliaseval
			// fault fires here, during evaluation itself).
			full := evalCounts(res)
			if full.PerAnalysis["LT"].Queries == 0 {
				t.Fatal("module evaluation produced no queries")
			}

			rep := p.Report()
			if rep.Ok() {
				t.Fatalf("injected fault into %s@fill but report is clean", stage)
			}
			// Report accuracy: the failure names the stage, the
			// function, and a panic cause.
			found := false
			for _, f := range rep.Failures {
				if f.Stage == stage && f.Func == "fill" && f.Cause == "panic" &&
					strings.Contains(f.Value, "injected fault") {
					found = true
				}
			}
			if !found {
				t.Fatalf("failure record missing or wrong: %+v", rep.Failures)
			}
			if stage == StageAliasEval {
				// The analysis results are intact; the degradation is
				// in the evaluation itself: fill's pairs still count,
				// all as MayAlias.
				got := *full.PerAnalysis["LT"]
				if got.Queries != cleanFull.Queries {
					t.Fatalf("aliaseval fault lost queries: clean %+v, got %+v",
						cleanFull, got)
				}
				if got.No != cleanFull.No-cleanFill.No {
					t.Fatalf("fill's pairs not degraded to May: clean %+v, fill %+v, got %+v",
						cleanFull, cleanFill, got)
				}
			} else {
				gotSum := funcCounts(res, "sum")
				if gotSum != cleanSum {
					t.Fatalf("fault on fill changed sum's answers: clean %+v, got %+v",
						cleanSum, gotSum)
				}
				// The degraded function claims nothing: only MayAlias.
				gotFill := funcCounts(res, "fill")
				if gotFill.No != 0 || gotFill.Must != 0 {
					t.Fatalf("degraded fill still claims NoAlias/MustAlias: %+v", gotFill)
				}
			}
			// ...and the report lists it as degraded (aliaseval faults
			// degrade only the evaluation, recorded the same way).
			degraded := false
			for _, fn := range rep.DegradedFuncs() {
				if fn == "fill" {
					degraded = true
				}
			}
			if !degraded {
				t.Fatalf("fill not listed as degraded: %v", rep.DegradedFuncs())
			}
		})
	}
}

// TestSoundnessUnderFault is the adequacy check of the degraded
// results: whatever a faulted pipeline still claims must hold on a
// real execution. Injected faults fire at stage entry, before any
// mutation, so the module stays runnable.
func TestSoundnessUnderFault(t *testing.T) {
	for _, stage := range perFuncStages {
		stage := stage
		t.Run(stage, func(t *testing.T) {
			_, res := run(t, Config{Fault: &FaultConfig{Stage: stage, Func: "fill"}})
			rep, err := soundcheck.CheckLT(res.Module, res.LT, "main")
			if err != nil {
				t.Fatalf("execution failed: %v", err)
			}
			if !rep.Ok() {
				t.Fatalf("degraded LT sets violated adequacy:\n%s", rep)
			}
			lt := alias.NewSRAA(res.LT)
			arep, err := soundcheck.CheckAlias(res.Module, lt, "main")
			if err != nil {
				t.Fatalf("execution failed: %v", err)
			}
			if !arep.Ok() {
				t.Fatalf("degraded alias verdicts violated soundness:\n%s", arep)
			}
		})
	}
}

// TestModuleStageFaults degrades whole module-scope stages; the
// pipeline must keep going on conservative stand-ins.
func TestModuleStageFaults(t *testing.T) {
	for _, stage := range []string{StageRangesPre, StageRanges, StageAndersen} {
		stage := stage
		t.Run(stage, func(t *testing.T) {
			p, res := run(t, Config{WithCF: true, Fault: &FaultConfig{Stage: stage}})
			if p.Report().Ok() {
				t.Fatalf("injected fault into %s but report is clean", stage)
			}
			if res.Ranges == nil || res.LT == nil {
				t.Fatal("degraded pipeline lost a result")
			}
			if stage == StageAndersen {
				la := alias.Loc(res.Module.Funcs[0].Params[0])
				if got := res.CF.Alias(la, la); got != alias.MayAlias {
					t.Fatalf("degraded CF answered %v, want MayAlias", got)
				}
			}
			// Evaluation still runs over the whole module.
			if rep := evalCounts(res); rep.PerAnalysis["LT"].Queries == 0 {
				t.Fatal("module evaluation produced no queries")
			}
		})
	}
}

func TestBudgetInjectionLessThan(t *testing.T) {
	_, clean := run(t, Config{})
	cleanSum := funcCounts(clean, "sum")

	p, res := run(t, Config{Fault: &FaultConfig{Stage: StageLessThan, Func: "fill", AfterSteps: 1}})
	rep := p.Report()
	found := false
	for _, f := range rep.Failures {
		if f.Stage == StageLessThan && f.Func == "fill" && f.Cause == "budget" {
			found = true
		}
	}
	if !found {
		t.Fatalf("budget exhaustion not reported: %+v", rep.Failures)
	}
	if got := funcCounts(res, "fill"); got.No != 0 {
		t.Fatalf("budget-starved fill still claims NoAlias: %+v", got)
	}
	if got := funcCounts(res, "sum"); got != cleanSum {
		t.Fatalf("starving fill changed sum: clean %+v, got %+v", cleanSum, got)
	}

	// The starved sets must also be dynamically sound.
	srep, err := soundcheck.CheckLT(res.Module, res.LT, "main")
	if err != nil {
		t.Fatalf("execution failed: %v", err)
	}
	if !srep.Ok() {
		t.Fatalf("budget-degraded LT sets violated adequacy:\n%s", srep)
	}
}

func TestBudgetInjectionModuleStages(t *testing.T) {
	for _, stage := range []string{StageRanges, StageAndersen} {
		stage := stage
		t.Run(stage, func(t *testing.T) {
			p, res := run(t, Config{WithCF: true,
				Fault: &FaultConfig{Stage: stage, AfterSteps: 1}})
			var f *StageFailure
			for i, ff := range p.Report().Failures {
				if ff.Stage == stage {
					f = &p.Report().Failures[i]
				}
			}
			if f == nil || f.Cause != "budget" {
				t.Fatalf("no budget failure recorded for %s: %+v", stage, p.Report().Failures)
			}
			if !strings.Contains(f.Value, budget.ErrExceeded.Error()) {
				t.Fatalf("failure value does not wrap ErrExceeded: %q", f.Value)
			}
			if stage == StageRanges {
				// Ascending-phase abort: every non-constant integer
				// value must be ⊤ (constants evaluate directly and
				// stay sound by construction).
				for _, fn := range res.Module.Funcs {
					for _, v := range fn.Values() {
						if _, isConst := v.(*ir.Const); isConst || !ir.IsInt(v.Type()) {
							continue
						}
						if iv := res.Ranges.Range(v); !iv.IsTop() {
							t.Fatalf("aborted range stage still claims %s for %s",
								iv, v.Ref())
						}
					}
				}
			}
		})
	}
}

func TestStrictModeAborts(t *testing.T) {
	p := New(Config{Strict: true, Fault: &FaultConfig{Stage: StageLessThan, Func: "fill"}})
	_, err := p.CompileAndAnalyze("t", testSrc)
	if err == nil {
		t.Fatal("strict mode swallowed an injected fault")
	}
	var sf *StageFailure
	if !errors.As(err, &sf) {
		t.Fatalf("strict error is not a *StageFailure: %T %v", err, err)
	}
	if sf.Stage != StageLessThan || sf.Func != "fill" {
		t.Fatalf("strict error misattributed: %+v", sf)
	}

	p = New(Config{Strict: true, Fault: &FaultConfig{Stage: StageMem2Reg, Func: "fill"}})
	if _, err := p.Compile("t", testSrc); err == nil {
		t.Fatal("strict mode swallowed a mem2reg fault")
	}
}

func TestExpiredTimeoutDegradesEverySolver(t *testing.T) {
	p, res := run(t, Config{Timeout: -time.Nanosecond, WithCF: true})
	rep := p.Report()
	if rep.Ok() {
		t.Fatal("expired deadline produced a clean report")
	}
	stages := map[string]bool{}
	for _, f := range rep.Failures {
		if f.Cause != "budget" {
			t.Fatalf("expired deadline produced a non-budget failure: %+v", f)
		}
		stages[f.Stage] = true
	}
	for _, want := range []string{StageRanges, StageLessThan, StageAndersen} {
		if !stages[want] {
			t.Fatalf("stage %s did not report budget exhaustion: %v", want, stages)
		}
	}
	// Everything degraded, nothing claimed, still evaluable.
	full := evalCounts(res)
	c := full.PerAnalysis["LT"]
	if c.Queries == 0 || c.No != 0 {
		t.Fatalf("timed-out LT still claims NoAlias: %+v", c)
	}
}

func TestFaultMatchesAllFunctions(t *testing.T) {
	p, res := run(t, Config{Fault: &FaultConfig{Stage: StageLessThan}})
	if got, want := len(p.Report().Failures), len(res.Module.Funcs); got != want {
		t.Fatalf("fault with empty Func hit %d functions, want %d", got, want)
	}
	if got := evalCounts(res).PerAnalysis["LT"]; got.No != 0 {
		t.Fatalf("fully faulted LT still claims NoAlias: %+v", got)
	}
}

func TestReportString(t *testing.T) {
	p, _ := run(t, Config{Fault: &FaultConfig{Stage: StageESSA, Func: "fill"}})
	s := p.Report().String()
	for _, want := range []string{"degraded", "essa", "fill", "panic"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
}
