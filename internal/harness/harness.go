// Package harness is the hardened driver for the full analysis
// pipeline. The analyses themselves (internal/core, internal/rangeanal,
// internal/andersen) aim for the fixed points the paper describes;
// the harness makes running them safe on hostile or pathological
// input: every stage executes inside a containment region that
// converts panics into structured StageFailure records, every solver
// runs under a configurable budget (wall clock, context cancellation,
// step count), and anything that fails degrades to a sound
// conservative answer — empty LT sets, ⊤ ranges, MayAlias — instead
// of taking down the process or poisoning other functions' results.
//
// Containment unit. Transform stages (mem2reg, sigma insertion,
// subtraction splitting) mutate one function at a time, so a crash
// can leave that function's IR half-rewritten. The harness therefore
// quarantines the function: it is added to a skip set, later analysis
// stages never traverse its body, and calls to it are treated like
// calls to external code — the sound over-approximation. Analysis
// stages never mutate the IR, so their failures only discard the
// failing stage's information.
//
// Fault injection. FaultConfig deliberately breaks one stage on one
// function (panic at stage entry) or starves a solver after N steps
// (budget exhaustion), which is how the test suite proves the
// containment and soundness claims rather than asserting them.
package harness

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/andersen"
	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/essa"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/rangeanal"
	"repro/internal/ssa"
	"repro/internal/steens"
)

// Stage names, in pipeline order.
const (
	StageParse     = "parse"
	StageLower     = "lower"
	StageMem2Reg   = "mem2reg"
	StageESSA      = "essa"
	StageRangesPre = "ranges-pre"
	StageSplit     = "split"
	StageRanges    = "ranges"
	StageLessThan  = "lessthan"
	StageAndersen  = "andersen"
	StageSteens    = "steens"
	StageAliasEval = "aliaseval"
	StagePDG       = "pdg"
	StageSanitize  = "sanitize"
)

// FaultConfig injects one deliberate failure, for testing the
// containment machinery end to end.
type FaultConfig struct {
	// Stage selects which stage fails (a Stage* constant).
	Stage string
	// Func restricts the fault to the named function; empty matches
	// every function (and module-scope stages).
	Func string
	// AfterSteps, when positive, starves the stage's solver budget
	// after that many worklist steps instead of panicking at entry.
	// Only solver stages (ranges-pre, ranges, lessthan, andersen)
	// consume steps.
	AfterSteps int
}

func (fc *FaultConfig) matches(stage, fn string) bool {
	if fc == nil || fc.Stage != stage {
		return false
	}
	return fc.Func == "" || fc.Func == fn
}

// Config declares how hard the pipeline may try and what it runs.
type Config struct {
	// Timeout is the wall-clock allowance per stage (module-scope
	// stages) or per function (the less-than solver); 0 means none.
	Timeout time.Duration
	// MaxSteps caps each solver run's worklist steps; 0 means none.
	MaxSteps int
	// Strict aborts on the first contained failure instead of
	// degrading: Compile/Analyze return the failure as an error.
	Strict bool

	// NoESSA, Interprocedural and Analysis mirror
	// core.PipelineOptions: which variant of the paper's pipeline to
	// run.
	NoESSA          bool
	Interprocedural bool
	Analysis        core.Options

	// WithCF additionally runs the Andersen-style CF analysis.
	WithCF bool

	// WithST additionally runs the Steensgaard-style unification
	// analysis.
	WithST bool

	// Jobs fans the per-function stages out across a bounded worker
	// pool; 0 or 1 runs them serially. Results and reports are merged
	// in module function order and are byte-identical at any value
	// (see parallel.go).
	Jobs int
	// Cache, when non-nil, memoizes per-function less-than solves by
	// content hash (see cache.go). It may be shared across pipelines.
	// Budgeted and fault-injected runs bypass it unless CacheBudgeted
	// is set.
	Cache *Cache
	// CacheBudgeted lets a budgeted run consult the cache. Stores are
	// safe either way — core only exports artifacts of solves that
	// completed without exhaustion — but a lookup may serve a complete
	// artifact where this run's budget would have degraded, so the
	// answer can be strictly more precise than an uncached run's
	// (never less sound). Long-running servers want exactly that:
	// per-request budgets and a shared warm cache. Batch drivers that
	// prove byte-identical serial/parallel/cached reports leave it
	// unset. Fault-injected runs always bypass the cache.
	CacheBudgeted bool

	// Fault injects one deliberate failure (tests only).
	Fault *FaultConfig
}

// Pipeline drives one module through the hardened pipeline. It is
// single-module and single-use: create one per module so the Report
// describes exactly one run.
type Pipeline struct {
	cfg Config
	ctx context.Context
	rep *Report
	// skip holds functions quarantined by a transform-stage failure:
	// their IR may be invalid, so no later stage may traverse them.
	skip map[*ir.Func]bool
}

// New creates a pipeline under context.Background.
func New(cfg Config) *Pipeline { return NewCtx(context.Background(), cfg) }

// NewCtx creates a pipeline whose solver budgets also observe ctx.
func NewCtx(ctx context.Context, cfg Config) *Pipeline {
	return &Pipeline{cfg: cfg, ctx: ctx, rep: &Report{}, skip: map[*ir.Func]bool{}}
}

// Report returns the accumulated run report.
func (p *Pipeline) Report() *Report { return p.rep }

// spec is the budget for one stage, honoring an AfterSteps fault
// aimed at it.
func (p *Pipeline) spec(stage, fn string) budget.Spec {
	s := budget.Spec{Timeout: p.cfg.Timeout, MaxSteps: p.cfg.MaxSteps}
	if fc := p.cfg.Fault; fc != nil && fc.AfterSteps > 0 && fc.matches(stage, fn) {
		s.MaxSteps = fc.AfterSteps
	}
	return s
}

// maybeFault panics when a panic-mode fault targets (stage, fn). It
// is called inside containment regions only.
func (p *Pipeline) maybeFault(stage, fn string) {
	if fc := p.cfg.Fault; fc != nil && fc.AfterSteps == 0 && fc.matches(stage, fn) {
		panic(fmt.Sprintf("injected fault: stage=%s func=%s", stage, fn))
	}
}

// contain runs body inside a containment region and returns a panic
// as a StageFailure WITHOUT recording it. It is the primitive the
// worker pools build on: workers must not append to the shared report
// (a data race, and completion order would leak into it), so they
// capture into per-function slots and the calling goroutine records
// everything in module function order after the pool drains. faultable
// selects whether the fault-injection hook fires; fallback paths pass
// false so a fault injected into the primary attempt does not fire a
// second time while computing the degraded substitute.
func (p *Pipeline) contain(stage, fn string, faultable bool, body func()) (fail *StageFailure) {
	defer func() {
		if r := recover(); r != nil {
			fail = &StageFailure{
				Stage: stage, Func: fn, Cause: "panic",
				Value: fmt.Sprint(r), Stack: string(debug.Stack()),
			}
		}
	}()
	if faultable {
		p.maybeFault(stage, fn)
	}
	body()
	return nil
}

// guard runs body inside a containment region and converts a panic
// into a recorded StageFailure, which it returns (nil on success).
// Serial callers only; worker pools use contain directly.
func (p *Pipeline) guard(stage, fn string, body func()) *StageFailure {
	fail := p.contain(stage, fn, true, body)
	if fail != nil {
		p.rep.addFailure(*fail)
	}
	return fail
}

// guardBare is guard without the fault-injection hook: fallback paths
// use it so a fault injected into the primary attempt does not fire a
// second time while recording the degraded substitute.
func (p *Pipeline) guardBare(stage, fn string, body func()) *StageFailure {
	fail := p.contain(stage, fn, false, body)
	if fail != nil {
		p.rep.addFailure(*fail)
	}
	return fail
}

// fail records a non-panic stage failure.
func (p *Pipeline) fail(stage, fn, cause string, err error) *StageFailure {
	f := &StageFailure{Stage: stage, Func: fn, Cause: cause, Value: err.Error()}
	p.rep.addFailure(*f)
	return f
}

// budgetCause classifies a solver exhaustion error: a context
// cancellation (user interrupt, upstream deadline) is recorded as
// "canceled", genuine budget exhaustion as "budget". Checkpointing
// drivers must not journal canceled runs, and quarantine statistics
// must not count them as degradations of the input.
func budgetCause(err error) string {
	if budget.Canceled(err) {
		return "canceled"
	}
	return "budget"
}

// timeStage appends a timing entry; callers defer it at stage start.
func (p *Pipeline) timeStage(stage string) func() {
	start := time.Now()
	return func() {
		p.rep.Timings = append(p.rep.Timings, StageTiming{Stage: stage, D: time.Since(start)})
	}
}

// quarantine marks f as broken: later stages skip its body and treat
// calls to it as external.
func (p *Pipeline) quarantine(f *ir.Func, stage string) {
	p.skip[f] = true
	p.rep.markDegraded(f.FName, stage)
}

// strictErr returns fail when strict mode promotes it to an abort.
func (p *Pipeline) strictErr(fail *StageFailure) error {
	if fail != nil && p.cfg.Strict {
		return fail
	}
	return nil
}

// Compile runs the hardened frontend: parse, lower, then per-function
// SSA promotion. Parse and lower failures (including contained
// panics) are fatal for the module — there is nothing to degrade to —
// and are returned as errors, never as raw panics. A mem2reg failure
// quarantines only the affected function unless Strict is set.
func (p *Pipeline) Compile(name, src string) (*ir.Module, error) {
	var prog *minic.Program
	done := p.timeStage(StageParse)
	fail := p.guard(StageParse, "", func() {
		pr, err := minic.ParseProgram(src)
		if err != nil {
			panic(err)
		}
		prog = pr
	})
	done()
	if fail != nil {
		return nil, fail
	}

	var m *ir.Module
	done = p.timeStage(StageLower)
	fail = p.guard(StageLower, "", func() {
		mod, err := minic.LowerProgram(name, prog)
		if err != nil {
			panic(err)
		}
		m = mod
	})
	done()
	if fail != nil {
		return nil, fail
	}

	fail = p.runFuncStage(StageMem2Reg, m, func(f *ir.Func) {
		ssa.Promote(f)
		if err := ssa.VerifySSA(f); err != nil {
			panic(err)
		}
	})
	if err := p.strictErr(fail); err != nil {
		return nil, err
	}
	return m, nil
}

// ParseIR runs the hardened textual-IR frontend.
func (p *Pipeline) ParseIR(src string) (*ir.Module, error) {
	var m *ir.Module
	done := p.timeStage(StageParse)
	fail := p.guard(StageParse, "", func() {
		mod, err := ir.Parse(src)
		if err != nil {
			panic(err)
		}
		m = mod
	})
	done()
	if fail != nil {
		return nil, fail
	}
	return m, nil
}

// Analyze runs the hardened analysis pipeline over m (the order of
// core.Prepare: sigma insertion, a pre-range pass, subtraction
// splitting, the final range pass, the less-than solve, and
// optionally Andersen's analysis). The returned error is non-nil only
// in strict mode; otherwise every failure degrades and the Result is
// always usable.
func (p *Pipeline) Analyze(m *ir.Module) (*Result, error) {
	res := &Result{Module: m, p: p}

	if !p.cfg.NoESSA {
		fail := p.runFuncStage(StageESSA, m, func(f *ir.Func) { essa.InsertSigmas(f) })
		if err := p.strictErr(fail); err != nil {
			return res, err
		}

		var oracle essa.RangeOracle
		if !p.cfg.Analysis.NoRanges {
			pre, err := p.runRanges(StageRangesPre, m)
			if p.cfg.Strict && err != nil {
				return res, err
			}
			oracle = pre
		}

		// SplitSubtractions only reads the shared oracle (interval
		// lookups on an immutable result), so sharding is safe.
		fail = p.runFuncStage(StageSplit, m, func(f *ir.Func) { essa.SplitSubtractions(f, oracle) })
		if err := p.strictErr(fail); err != nil {
			return res, err
		}
	}

	ranges, err := p.runRanges(StageRanges, m)
	if p.cfg.Strict && err != nil {
		return res, err
	}
	res.Ranges = ranges

	lt, err := p.runLessThan(m, ranges)
	if p.cfg.Strict && err != nil {
		return res, err
	}
	res.LT = lt

	if p.cfg.WithCF {
		cf, err := p.runAndersen(m)
		if p.cfg.Strict && err != nil {
			return res, err
		}
		res.CF = cf
	}

	if p.cfg.WithST {
		st, err := p.runSteens(m)
		if p.cfg.Strict && err != nil {
			return res, err
		}
		res.ST = st
	}
	return res, nil
}

// runRanges is the module-scope range stage. A panic degrades to the
// all-⊤ empty result; budget exhaustion during the ascending phase
// already degrades inside the solver (see rangeanal.AnalyzeCtx) and
// is recorded here.
func (p *Pipeline) runRanges(stage string, m *ir.Module) (*rangeanal.Result, error) {
	defer p.timeStage(stage)()
	var r *rangeanal.Result
	fail := p.guard(stage, "", func() {
		r = rangeanal.AnalyzeCtx(p.ctx, m, rangeanal.Opts{
			Budget: p.spec(stage, ""),
			Skip:   p.skip,
		})
	})
	if fail == nil && r.Err() != nil {
		fail = p.fail(stage, "", budgetCause(r.Err()), r.Err())
	}
	if r == nil {
		r = rangeanal.Empty()
	}
	return r, p.strictErr(fail)
}

// runLessThan is the less-than stage. Per-function panics and budget
// exhaustion are contained inside core (Options.Recover / Budget);
// the harness forwards core's failure records into the report and
// additionally guards the whole call.
func (p *Pipeline) runLessThan(m *ir.Module, ranges *rangeanal.Result) (*core.Result, error) {
	defer p.timeStage(StageLessThan)()
	opt := p.cfg.Analysis
	opt.Recover = true
	opt.Skip = p.skip
	opt.Budget = budget.Spec{Timeout: p.cfg.Timeout, MaxSteps: p.cfg.MaxSteps}
	opt.BudgetFor = func(f *ir.Func) budget.Spec { return p.spec(StageLessThan, f.FName) }
	opt.OnFunc = func(f *ir.Func) { p.maybeFault(StageLessThan, f.FName) }
	opt.Workers = p.jobs()
	if p.cacheEnabled() {
		opt.Memo = p.cfg.Cache
		keyOpt := p.cfg.Analysis
		opt.MemoKey = func(f *ir.Func) string { return funcKey(f, ranges, keyOpt) }
	}

	// guardBare: fault injection for this stage goes through OnFunc,
	// per function, not through the module-level guard.
	var lt *core.Result
	fail := p.guardBare(StageLessThan, "", func() {
		if p.cfg.Interprocedural {
			lt = core.AnalyzeInterprocCtx(p.ctx, m, ranges, opt)
		} else {
			lt = core.AnalyzeCtx(p.ctx, m, ranges, opt)
		}
	})
	if lt == nil {
		lt = core.Empty()
	}
	var firstContained *StageFailure
	for _, ff := range lt.Failures {
		sf := StageFailure{
			Stage: StageLessThan, Func: ff.Fn,
			Cause: ff.Cause, Value: ff.Value, Stack: ff.Stack,
		}
		p.rep.addFailure(sf)
		if firstContained == nil {
			first := sf
			firstContained = &first
		}
	}
	for f, cause := range lt.Degraded {
		if cause != "skipped" { // skip-set entries are already recorded
			p.rep.markDegraded(f.FName, StageLessThan)
		}
	}
	if fail == nil {
		fail = firstContained
	}
	return lt, p.strictErr(fail)
}

// runAndersen is the CF stage. A panic degrades to the Unanalyzed
// (MayAlias-everywhere) result; budget exhaustion is detected by the
// solver itself, which flags the Analysis degraded.
func (p *Pipeline) runAndersen(m *ir.Module) (*andersen.Analysis, error) {
	defer p.timeStage(StageAndersen)()
	var cf *andersen.Analysis
	fail := p.guard(StageAndersen, "", func() {
		cf = andersen.AnalyzeCtx(p.ctx, m, andersen.Opts{
			Budget: p.spec(StageAndersen, ""),
			Skip:   p.skip,
		})
	})
	if fail == nil && cf.Degraded() != nil {
		fail = p.fail(StageAndersen, "", budgetCause(cf.Degraded()), cf.Degraded())
	}
	if cf == nil {
		cf = andersen.Unanalyzed(fail)
	}
	return cf, p.strictErr(fail)
}

// runSteens is the ST stage. A panic degrades to the Unanalyzed
// (MayAlias-everywhere) result; budget exhaustion is detected by the
// unifier itself, which flags the Analysis degraded.
func (p *Pipeline) runSteens(m *ir.Module) (*steens.Analysis, error) {
	defer p.timeStage(StageSteens)()
	var st *steens.Analysis
	fail := p.guard(StageSteens, "", func() {
		st = steens.AnalyzeCtx(p.ctx, m, steens.Opts{
			Budget: p.spec(StageSteens, ""),
			Skip:   p.skip,
		})
	})
	if fail == nil && st.Degraded() != nil {
		fail = p.fail(StageSteens, "", budgetCause(st.Degraded()), st.Degraded())
	}
	if st == nil {
		st = steens.Unanalyzed(fail)
	}
	return st, p.strictErr(fail)
}

// CompileAndAnalyze is the one-call convenience the drivers use.
func (p *Pipeline) CompileAndAnalyze(name, src string) (*Result, error) {
	m, err := p.Compile(name, src)
	if err != nil {
		return nil, err
	}
	return p.Analyze(m)
}

// Skipped reports whether f was quarantined by a transform failure.
func (p *Pipeline) Skipped(f *ir.Func) bool { return p.skip[f] }
