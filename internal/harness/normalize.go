// Panic-report normalization. Raw goroutine stacks are full of
// run-to-run noise: pointer arguments, goroutine ids, closure capture
// addresses, and file:line pairs in the Go runtime that drift across
// toolchain versions. The fuzz loop (internal/fuzz) buckets failures
// by stack identity, so two crashes with the same root cause must
// normalize to the same string on every run and every Go version.
//
// The rules, in order:
//
//   - "goroutine 17 [running]:" headers lose their id, as do the
//     "created by ... in goroutine 3" tails.
//   - Argument lists on frame lines are dropped entirely: "foo(0x?,
//     0x?)" and "foo(...)" both become "foo". Method receivers like
//     "(*Pipeline)" are part of the name and survive.
//   - Source positions under a frame of this module (the function path
//     starts with the repo's package prefix) keep their file and line —
//     they move only when the repo itself changes, which is exactly
//     when a bucket should split. Positions under any other frame
//     (GOROOT, the runtime) keep the file but lose the line number,
//     and every position loses its "+0x1b4" frame offset.
//   - Remaining hexadecimal literals (addresses inside panic values)
//     become "0x?".
package harness

import (
	"fmt"
	"regexp"
	"strings"
)

// repoPrefix identifies stack frames that belong to this module.
const repoPrefix = "repro/"

var (
	goroutineHeadRe = regexp.MustCompile(`^goroutine \d+ (\[[^\]]*\])`)
	inGoroutineRe   = regexp.MustCompile(` in goroutine \d+$`)
	hexRe           = regexp.MustCompile(`0x[0-9a-fA-F]+`)
	// fileLineRe matches a source position line: "\t/path/file.go:123
	// +0x1b4" (the offset is optional).
	fileLineRe = regexp.MustCompile(`^\t(.*\.(?:go|s)):(\d+)(?: \+0x[0-9a-fA-F]+)?$`)
)

// stripArgs removes the trailing argument list from a frame's function
// line: everything from the last '(' when the line ends with ')'. The
// last '(' is the argument list even for methods — receiver parens
// like "(*Pipeline)" sit earlier in the name.
func stripArgs(line string) string {
	if strings.HasSuffix(line, ")") {
		if i := strings.LastIndex(line, "("); i >= 0 {
			return line[:i]
		}
	}
	return line
}

// NormalizeStack rewrites a raw goroutine stack (as captured by
// runtime/debug.Stack inside a containment region) into its stable
// form. The result is deterministic across runs, goroutine schedules,
// ASLR, and Go patch releases, and is what failure bucketing keys on.
func NormalizeStack(stack string) string {
	var out []string
	inRepoFrame := false
	for _, line := range strings.Split(strings.TrimRight(stack, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "goroutine "):
			out = append(out, goroutineHeadRe.ReplaceAllString(line, "goroutine N $1"))
		case strings.HasPrefix(line, "\t"):
			if m := fileLineRe.FindStringSubmatch(line); m != nil {
				if inRepoFrame {
					out = append(out, fmt.Sprintf("\t%s:%s", m[1], m[2]))
				} else {
					out = append(out, fmt.Sprintf("\t%s:?", m[1]))
				}
				continue
			}
			out = append(out, hexRe.ReplaceAllString(line, "0x?"))
		case strings.HasPrefix(line, "created by "):
			fn := inGoroutineRe.ReplaceAllString(line, " in goroutine N")
			inRepoFrame = strings.HasPrefix(strings.TrimPrefix(fn, "created by "), repoPrefix)
			out = append(out, fn)
		case line != "":
			fn := stripArgs(line)
			inRepoFrame = strings.HasPrefix(fn, repoPrefix)
			out = append(out, hexRe.ReplaceAllString(fn, "0x?"))
		default:
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n") + "\n"
}

var (
	numRe = regexp.MustCompile(`\b\d+\b`)
	wsRe  = regexp.MustCompile(`\s+`)
)

// NormalizeValue rewrites a recovered panic value (or error text) into
// a stable form: hex literals become "0x?", decimal literals become
// "N" (slice lengths, indices, and source line numbers embedded in
// error messages all drift as inputs are reduced), and whitespace is
// collapsed. Used as the human-readable half of a failure signature.
func NormalizeValue(v string) string {
	v = hexRe.ReplaceAllString(v, "0x?")
	v = numRe.ReplaceAllString(v, "N")
	v = wsRe.ReplaceAllString(strings.TrimSpace(v), " ")
	return v
}

// topRepoFrame returns the innermost normalized stack frame that
// belongs to this module and is not part of the containment machinery
// itself — the function that actually crashed.
func topRepoFrame(normalized string) string {
	for _, line := range strings.Split(normalized, "\n") {
		if !strings.HasPrefix(line, repoPrefix) {
			continue
		}
		// The containment region and the panic plumbing sit on every
		// stack; skip to the first frame below them.
		if strings.Contains(line, "harness.(*Pipeline).contain") {
			continue
		}
		return line
	}
	return ""
}

// Signature returns the failure's stable bucket key. Two failures with
// the same signature are the same bug for triage purposes: the key
// combines the stage, the cause, the normalized panic value, and (for
// panics) the innermost in-repo frame of the normalized stack. The
// function name is deliberately excluded — the same crash provoked via
// a differently-named function is still the same crash.
func (f *StageFailure) Signature() string {
	sig := f.Stage + ":" + f.Cause + ":" + NormalizeValue(f.Value)
	if f.Cause == "panic" && f.Stack != "" {
		if frame := topRepoFrame(NormalizeStack(f.Stack)); frame != "" {
			sig += "@" + frame
		}
	}
	return sig
}
