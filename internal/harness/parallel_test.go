package harness

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/csmith"
)

// TestDeterminismAcrossJobs is the regression net for
// map-iteration-order leaks in report generation: ten runs of the
// same module at worker counts 1..10 must render identically, byte
// for byte.
func TestDeterminismAcrossJobs(t *testing.T) {
	srcs := map[string]string{
		"handwritten": testSrc,
		"generated":   csmith.Generate(csmith.Config{Seed: 321, MaxPtrDepth: 4, Stmts: 80}),
	}
	for name, src := range srcs {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			var want string
			for jobs := 1; jobs <= 10; jobs++ {
				got := canonicalRun(t, name, src, Config{Jobs: jobs, Interprocedural: true})
				if jobs == 1 {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("jobs=%d renders differently than jobs=1", jobs)
				}
			}
		})
	}
}

// TestQuarantineUnderConcurrency: with the pool running wide, a
// fault in one function must degrade that function only; every other
// function's answers match a clean serial run exactly.
func TestQuarantineUnderConcurrency(t *testing.T) {
	_, clean := run(t, Config{})
	p, res := run(t, Config{Jobs: 8, Fault: &FaultConfig{Stage: StageMem2Reg, Func: "fill"}})
	degr := p.Report().DegradedFuncs()
	if len(degr) != 1 || degr[0] != "fill" {
		t.Fatalf("expected exactly fill degraded, got %v", degr)
	}
	for _, fn := range []string{"sum", "main"} {
		if got, want := funcCounts(res, fn), funcCounts(clean, fn); got != want {
			t.Fatalf("quarantining fill changed %s under concurrency: clean %+v, got %+v", fn, want, got)
		}
	}
	if got := funcCounts(res, "fill"); got.No != 0 {
		t.Fatalf("quarantined fill still claims NoAlias: %+v", got)
	}
}

// TestRunBatchOrderAndEquivalence: program-level sharding returns
// outcomes in input order, invokes post in input order, and produces
// the same canonical output as a serial per-program loop.
func TestRunBatchOrderAndEquivalence(t *testing.T) {
	progs := corpus.TestSuite(10)
	items := make([]BatchItem, len(progs))
	want := make([]string, len(progs))
	for i, p := range progs {
		items[i] = BatchItem{Name: p.Name, Src: p.Source}
		want[i] = canonicalRun(t, p.Name, p.Source, Config{})
	}
	var postOrder []int
	outs := RunBatch(Config{}, 4, items,
		func(i int, out *BatchOutcome) {
			if out.Err != nil {
				return
			}
			out.Value = canonical(out.Pipe, out.Res)
		},
		func(i int, out *BatchOutcome) { postOrder = append(postOrder, i) })
	for i, out := range outs {
		if out.Name != items[i].Name {
			t.Fatalf("outcome %d is %q, want %q", i, out.Name, items[i].Name)
		}
		if out.Err != nil {
			t.Fatalf("%s: %v", out.Name, out.Err)
		}
		if out.Value.(string) != want[i] {
			t.Fatalf("%s: batched run differs from serial per-program run", out.Name)
		}
	}
	for i, idx := range postOrder {
		if i != idx {
			t.Fatalf("post ran out of order: %v", postOrder)
		}
	}
}

// TestRunBatchCompileErrors: a broken program fails its own slot and
// nothing else.
func TestRunBatchCompileErrors(t *testing.T) {
	items := []BatchItem{
		{Name: "good1", Src: testSrc},
		{Name: "bad", Src: "int main( { return }"},
		{Name: "good2", Src: testSrc},
	}
	outs := RunBatch(Config{}, 3, items, nil, nil)
	if outs[1].Err == nil {
		t.Fatal("broken program produced no error")
	}
	for _, i := range []int{0, 2} {
		if outs[i].Err != nil {
			t.Fatalf("%s: healthy program failed: %v", outs[i].Name, outs[i].Err)
		}
		if !outs[i].Pipe.Report().Ok() {
			t.Fatalf("%s: healthy program degraded:\n%s", outs[i].Name, outs[i].Pipe.Report())
		}
	}
}

// TestRunBatchSharedCache: textually repeated programs across a batch
// hit the shared cache even when workers race on it.
func TestRunBatchSharedCache(t *testing.T) {
	// Same name for every copy: the canonical rendering embeds the
	// module name, and the point here is output equality via cache.
	var items []BatchItem
	for i := 0; i < 12; i++ {
		items = append(items, BatchItem{Name: "copy", Src: testSrc})
	}
	cache := NewCache()
	var base string
	outs := RunBatch(Config{Cache: cache}, 4, items,
		func(i int, out *BatchOutcome) {
			if out.Err == nil {
				out.Value = canonical(out.Pipe, out.Res)
			}
		}, nil)
	for _, out := range outs {
		if out.Err != nil {
			t.Fatalf("%s: %v", out.Name, out.Err)
		}
		if base == "" {
			base = out.Value.(string)
		} else if out.Value.(string) != base {
			t.Fatalf("%s: identical program produced different output via cache", out.Name)
		}
	}
	st := cache.Stats()
	// 12 copies x 3 functions: at most one miss per distinct function.
	if st.Hits < 30 {
		t.Fatalf("shared cache barely hit: %s", st)
	}
}
