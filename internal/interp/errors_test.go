package interp

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// TestRuntimeErrorPaths exercises the interpreter's strict-oracle
// behaviour on ill-behaved IR: every case must fail with a
// descriptive error rather than misexecute.
func TestRuntimeErrorPaths(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
		args               []Val
	}{
		{
			"branch on pointer",
			`func @f(i64* %p) i64 {
entry:
  br %p, a, b
a:
  ret 1
b:
  ret 0
}`,
			"branch on pointer", []Val{PtrTo(NewArray("x", 1), 0)},
		},
		{
			"store oob",
			`func @f(i64* %p) i64 {
entry:
  %q = gep %p, 99
  store 1, %q
  ret 0
}`,
			"out of bounds", []Val{PtrTo(NewArray("x", 4), 0)},
		},
		{
			"malloc negative",
			`func @f(i64 %n) i64* {
entry:
  %p = malloc i64, %n
  ret %p
}`,
			"unreasonable", []Val{IntVal(-8)},
		},
		{
			"shift out of range",
			`func @f(i64 %n) i64 {
entry:
  %x = shl %n, 200
  ret %x
}`,
			"shift amount", []Val{IntVal(1)},
		},
		{
			// Statically legal (null idiom), dynamically a pointer
			// ordered against a non-pointer.
			"ordered ptr-int compare",
			`func @f(i64* %p) i64 {
entry:
  %c = icmp lt %p, 0
  br %c, a, b
a:
  ret 1
b:
  ret 0
}`,
			"ordered comparison", []Val{PtrTo(NewArray("x", 1), 0)},
		},
		{
			"cross object compare",
			`func @f(i64* %p, i64* %q) i64 {
entry:
  %c = icmp lt %p, %q
  br %c, a, b
a:
  ret 1
b:
  ret 0
}`,
			"different objects",
			[]Val{PtrTo(NewArray("x", 1), 0), PtrTo(NewArray("y", 1), 0)},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, err := ir.Parse(c.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			mach := NewMachine(m, Options{})
			_, err = mach.Run("f", c.args...)
			if err == nil {
				t.Fatal("execution succeeded, want runtime error")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestCallDepthLimit(t *testing.T) {
	m := ir.MustParse(`
func @f(i64 %n) i64 {
entry:
  %r = call i64 @f(%n)
  ret %r
}
`)
	mach := NewMachine(m, Options{MaxDepth: 50})
	if _, err := mach.Run("f", IntVal(1)); err == nil ||
		!strings.Contains(err.Error(), "depth") {
		t.Errorf("infinite recursion not capped: %v", err)
	}
}

func TestArityMismatch(t *testing.T) {
	m := ir.MustParse(`
func @f(i64 %a, i64 %b) i64 {
entry:
  ret %a
}
`)
	mach := NewMachine(m, Options{})
	if _, err := mach.Run("f", IntVal(1)); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := mach.Run("nosuch"); err == nil {
		t.Error("missing function accepted")
	}
}

func TestEqualityWithNull(t *testing.T) {
	m := ir.MustParse(`
func @f(i64* %p) i64 {
entry:
  %c = icmp eq %p, 0
  br %c, isnull, notnull
isnull:
  ret 1
notnull:
  ret 0
}
`)
	mach := NewMachine(m, Options{})
	v, err := mach.Run("f", Val{})
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 1 {
		t.Errorf("null == null gave %d", v.I)
	}
	v, err = mach.Run("f", PtrTo(NewArray("x", 1), 0))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 0 {
		t.Errorf("ptr == null gave %d", v.I)
	}
}

func TestGlobalSeeding(t *testing.T) {
	m := ir.MustParse(`
global @g [4 x i64]

func @f() i64 {
entry:
  %base = gep @g, 0
  %p = gep %base, 2
  %x = load %p
  ret %x
}
`)
	mach := NewMachine(m, Options{})
	mach.Global("g").Cells[2] = IntVal(77)
	v, err := mach.Run("f")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 77 {
		t.Errorf("global read = %d, want 77", v.I)
	}
	if mach.Global("nosuch") != nil {
		t.Error("missing global not nil")
	}
	if mach.Steps() == 0 {
		t.Error("step counter idle")
	}
}
