package interp

import (
	"sort"
	"testing"

	"repro/internal/ir"
	"repro/internal/minic"
)

func run(t *testing.T, src, fn string, args ...Val) Val {
	t.Helper()
	m, err := minic.Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	mach := NewMachine(m, Options{})
	v, err := mach.Run(fn, args...)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, m)
	}
	return v
}

func TestArith(t *testing.T) {
	src := `
int calc(int a, int b) {
  return (a + b) * (a - b) / 2 + a % b;
}
`
	got := run(t, src, "calc", IntVal(10), IntVal(3))
	want := int64((10+3)*(10-3)/2 + 10%3)
	if got.I != want {
		t.Errorf("calc = %d, want %d", got.I, want)
	}
}

func TestLoopSum(t *testing.T) {
	src := `
int sum(int n) {
  int s = 0;
  for (int i = 1; i <= n; i++) s += i;
  return s;
}
`
	if got := run(t, src, "sum", IntVal(100)); got.I != 5050 {
		t.Errorf("sum(100) = %d, want 5050", got.I)
	}
}

func TestRecursion(t *testing.T) {
	src := `
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
`
	if got := run(t, src, "fib", IntVal(15)); got.I != 610 {
		t.Errorf("fib(15) = %d, want 610", got.I)
	}
}

func TestArraysAndPointers(t *testing.T) {
	src := `
int work() {
  int a[10];
  int *p = a;
  for (int i = 0; i < 10; i++) {
    *p = i * i;
    p++;
  }
  int s = 0;
  for (int i = 0; i < 10; i++) s += a[i];
  return s;
}
`
	want := int64(0)
	for i := int64(0); i < 10; i++ {
		want += i * i
	}
	if got := run(t, src, "work"); got.I != want {
		t.Errorf("work = %d, want %d", got.I, want)
	}
}

func TestMallocAndNested(t *testing.T) {
	src := `
int grid(int n) {
  int **rows = malloc(8 * n);
  for (int i = 0; i < n; i++) {
    rows[i] = malloc(8 * n);
    for (int j = 0; j < n; j++) {
      rows[i][j] = i * n + j;
    }
  }
  int s = 0;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      s += rows[i][j];
  return s;
}
`
	n := int64(5)
	want := (n*n - 1) * n * n / 2
	if got := run(t, src, "grid", IntVal(n)); got.I != want {
		t.Errorf("grid(%d) = %d, want %d", n, got.I, want)
	}
}

func TestGlobals(t *testing.T) {
	src := `
int counter;
int hist[4];

void bump(int k) {
  counter++;
  hist[k] = hist[k] + 1;
}

int total() {
  bump(1); bump(1); bump(3);
  return counter * 100 + hist[1] * 10 + hist[3];
}
`
	if got := run(t, src, "total"); got.I != 321 {
		t.Errorf("total = %d, want 321", got.I)
	}
}

// TestInsSortExecutes compiles Figure 1(a) of the paper and sorts a
// real array with it.
func TestInsSortExecutes(t *testing.T) {
	src := `
void ins_sort(int* v, int N) {
  int i, j;
  for (i = 0; i < N - 1; i++) {
    for (j = i + 1; j < N; j++) {
      if (v[i] > v[j]) {
        int tmp = v[i];
        v[i] = v[j];
        v[j] = tmp;
      }
    }
  }
}
`
	m, err := minic.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	mach := NewMachine(m, Options{})
	data := []int64{5, 3, 9, 1, 7, 2, 8, 0, 6, 4}
	arr := NewArray("v", len(data))
	for i, x := range data {
		arr.Cells[i] = IntVal(x)
	}
	if _, err := mach.Run("ins_sort", PtrTo(arr, 0), IntVal(int64(len(data)))); err != nil {
		t.Fatal(err)
	}
	want := append([]int64(nil), data...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if arr.Cells[i].I != want[i] {
			t.Fatalf("cell %d = %d, want %d", i, arr.Cells[i].I, want[i])
		}
	}
}

// TestPartitionExecutes compiles Figure 1(b) and checks the partition
// property around the pivot.
func TestPartitionExecutes(t *testing.T) {
	src := `
void partition(int *v, int N) {
  int i, j, p, tmp;
  p = v[N/2];
  for (i = 0, j = N - 1;; i++, j--) {
    while (v[i] < p) i++;
    while (p < v[j]) j--;
    if (i >= j)
      break;
    tmp = v[i];
    v[i] = v[j];
    v[j] = tmp;
  }
}
`
	m, err := minic.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	mach := NewMachine(m, Options{})
	data := []int64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	arr := NewArray("v", len(data))
	for i, x := range data {
		arr.Cells[i] = IntVal(x)
	}
	if _, err := mach.Run("partition", PtrTo(arr, 0), IntVal(int64(len(data)))); err != nil {
		t.Fatal(err)
	}
	// Hoare partition: there is a split point such that everything on
	// the left is <= everything on the right.
	maxLeft := func(k int) int64 {
		mx := arr.Cells[0].I
		for i := 1; i <= k; i++ {
			if arr.Cells[i].I > mx {
				mx = arr.Cells[i].I
			}
		}
		return mx
	}
	minRight := func(k int) int64 {
		mn := arr.Cells[len(data)-1].I
		for i := len(data) - 1; i > k; i-- {
			if arr.Cells[i].I < mn {
				mn = arr.Cells[i].I
			}
		}
		return mn
	}
	ok := false
	for k := 0; k < len(data)-1; k++ {
		if maxLeft(k) <= minRight(k) {
			ok = true
			break
		}
	}
	if !ok {
		vals := make([]int64, len(data))
		for i := range data {
			vals[i] = arr.Cells[i].I
		}
		t.Errorf("array not partitioned: %v", vals)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, fn string
	}{
		{"oob", "int f() { int a[3]; return a[5]; }", "f"},
		{"null deref", "int f() { int *p = 0; return *p; }", "f"},
		{"div zero", "int f(int x) { return 10 / (x - x); }", "f"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, err := minic.Compile(c.name, c.src)
			if err != nil {
				t.Fatal(err)
			}
			mach := NewMachine(m, Options{})
			if _, err := mach.Run(c.fn, IntVal(7)); err == nil {
				t.Error("execution succeeded, want runtime error")
			}
		})
	}
}

func TestRuntimeErrorsNoArg(t *testing.T) {
	m, err := minic.Compile("x", "int f() { return g(); }")
	if err != nil {
		t.Fatal(err)
	}
	mach := NewMachine(m, Options{})
	if _, err := mach.Run("f"); err == nil {
		t.Error("call to undefined external succeeded")
	}
	// With an External handler it must succeed.
	mach = NewMachine(m, Options{
		External: func(name string, args []Val) (Val, error) {
			return IntVal(42), nil
		},
	})
	v, err := mach.Run("f")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 42 {
		t.Errorf("external returned %d, want 42", v.I)
	}
}

func TestStepLimit(t *testing.T) {
	m, err := minic.Compile("x", "int f() { while (1) {} return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	mach := NewMachine(m, Options{MaxSteps: 1000})
	if _, err := mach.Run("f"); err == nil {
		t.Error("infinite loop terminated without step-limit error")
	}
}

func TestPointerComparisonLoop(t *testing.T) {
	src := `
int count(int *p, int n) {
  int *e = p + n;
  int c = 0;
  while (p < e) {
    if (*p > 0) c++;
    p++;
  }
  return c;
}
`
	m, err := minic.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	mach := NewMachine(m, Options{})
	arr := NewArray("v", 6)
	for i, x := range []int64{1, -2, 3, 0, 5, -6} {
		arr.Cells[i] = IntVal(x)
	}
	v, err := mach.Run("count", PtrTo(arr, 0), IntVal(6))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 3 {
		t.Errorf("count = %d, want 3", v.I)
	}
}

func TestRawIRExecution(t *testing.T) {
	m := ir.MustParse(`
func @max(i64 %a, i64 %b) i64 {
entry:
  %c = icmp lt %a, %b
  br %c, bb, ba
bb:
  ret %b
ba:
  ret %a
}
`)
	mach := NewMachine(m, Options{})
	v, err := mach.Run("max", IntVal(3), IntVal(9))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 9 {
		t.Errorf("max = %d, want 9", v.I)
	}
}
