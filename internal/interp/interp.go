// Package interp is a reference interpreter for the IR of internal/ir.
// It exists to validate the toolchain: the mini-C frontend is checked
// by executing compiled programs, and the e-SSA transformation is
// checked by differential testing (a transformed program must compute
// exactly what the original computed).
//
// The memory model is object-based: every allocation site instance
// (alloca execution, malloc execution, global) yields a fresh object of
// element-sized cells, and pointers are (object, element offset) pairs.
// Out-of-bounds and wild accesses are runtime errors rather than
// undefined behaviour, which makes the interpreter a strict oracle.
package interp

import (
	"fmt"

	"repro/internal/ir"
)

// MemObj is a run-time memory object: a global, a stack slot, or a
// heap block.
type MemObj struct {
	// Name describes the object for diagnostics.
	Name string
	// Cells holds the object's elements.
	Cells []Val
}

// Val is a runtime value: an integer or a pointer into an object.
type Val struct {
	// I is the integer payload when Obj is nil.
	I int64
	// Obj is the pointed-to object for pointer values.
	Obj *MemObj
	// Off is the element offset within Obj.
	Off int64
}

// IsPtr reports whether the value is a pointer.
func (v Val) IsPtr() bool { return v.Obj != nil }

func (v Val) String() string {
	if v.IsPtr() {
		return fmt.Sprintf("&%s[%d]", v.Obj.Name, v.Off)
	}
	return fmt.Sprintf("%d", v.I)
}

// IntVal returns an integer value.
func IntVal(i int64) Val { return Val{I: i} }

// Options configures execution limits.
type Options struct {
	// MaxSteps bounds the number of executed instructions; 0 means
	// the default of 10 million.
	MaxSteps int
	// MaxDepth bounds the call stack; 0 means the default of 1000.
	MaxDepth int
	// External handles calls to functions not defined in the module.
	// nil rejects them (except free, which is a no-op).
	External func(name string, args []Val) (Val, error)
	// TraceBlock, if set, is invoked at every basic-block entry with
	// the executing function, the block, and an accessor for the
	// current value environment (defined values only). Dynamic
	// soundness checkers (internal/soundcheck) hang off this hook.
	TraceBlock func(fn *ir.Func, blk *ir.Block, get func(ir.Value) (Val, bool))
}

// Machine executes functions of one module.
type Machine struct {
	mod     *ir.Module
	opt     Options
	globals map[*ir.Global]*MemObj
	steps   int
}

// NewMachine prepares an execution environment for m: one zeroed
// memory object per global.
func NewMachine(m *ir.Module, opt Options) *Machine {
	if opt.MaxSteps == 0 {
		opt.MaxSteps = 10_000_000
	}
	if opt.MaxDepth == 0 {
		opt.MaxDepth = 1000
	}
	mach := &Machine{mod: m, opt: opt, globals: map[*ir.Global]*MemObj{}}
	for _, g := range m.Globals {
		n := int64(1)
		if at, ok := g.Elem.(*ir.ArrayType); ok {
			n = at.Len
		}
		mach.globals[g] = &MemObj{Name: "@" + g.GName, Cells: make([]Val, n)}
	}
	return mach
}

// Global returns the memory object backing g, for seeding inputs and
// inspecting outputs.
func (mach *Machine) Global(name string) *MemObj {
	g := mach.mod.GlobalByName(name)
	if g == nil {
		return nil
	}
	return mach.globals[g]
}

// Steps returns the number of instructions executed so far.
func (mach *Machine) Steps() int { return mach.steps }

// Run executes the named function with the given arguments.
func (mach *Machine) Run(fname string, args ...Val) (Val, error) {
	f := mach.mod.FuncByName(fname)
	if f == nil {
		return Val{}, fmt.Errorf("interp: no function @%s", fname)
	}
	return mach.call(f, args, 0)
}

type runtimeError struct {
	msg string
	// code classifies the trap for static-checker differentials:
	// "oob", "null", "undef", or "" for everything else.
	code string
}

func (e *runtimeError) Error() string { return "interp: " + e.msg }

func (mach *Machine) errf(format string, args ...any) error {
	return &runtimeError{msg: fmt.Sprintf(format, args...)}
}

// errc is errf with a trap classification code attached.
func (mach *Machine) errc(code, format string, args ...any) error {
	return &runtimeError{msg: fmt.Sprintf(format, args...), code: code}
}

// Trap codes attached to classified runtime errors.
const (
	TrapOOB   = "oob"   // load/store outside the accessed object
	TrapNull  = "null"  // load/store/gep through a non-pointer (null)
	TrapUndef = "undef" // use of an undef (uninitialized) SSA value
)

// Trap wraps a runtime error with the function and instruction that
// raised it, so differential checkers can map a dynamic failure back
// to the static program point. Code is one of the Trap* constants, or
// "" when the error has no memory-safety classification (division by
// zero, step limits, ...).
type Trap struct {
	Fn   *ir.Func
	In   *ir.Instr
	Code string
	err  error
}

func (t *Trap) Error() string {
	return fmt.Sprintf("%v [@%s %s]", t.err, t.Fn.FName, t.In)
}

func (t *Trap) Unwrap() error { return t.err }

// TrapOf extracts the innermost Trap from err, or nil if execution
// failed for a reason that never reached an attributable instruction.
func TrapOf(err error) *Trap {
	for err != nil {
		if t, ok := err.(*Trap); ok {
			return t
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return nil
		}
		err = u.Unwrap()
	}
	return nil
}

// trapAt attributes err to (f, in) unless an inner frame already did.
func trapAt(f *ir.Func, in *ir.Instr, err error) error {
	if err == nil {
		return nil
	}
	if _, ok := err.(*Trap); ok {
		return err
	}
	code := ""
	if re, ok := err.(*runtimeError); ok {
		code = re.code
	}
	return &Trap{Fn: f, In: in, Code: code, err: err}
}

func (mach *Machine) call(f *ir.Func, args []Val, depth int) (Val, error) {
	if depth > mach.opt.MaxDepth {
		return Val{}, mach.errf("call depth exceeded in @%s", f.FName)
	}
	if len(args) != len(f.Params) {
		return Val{}, mach.errf("@%s called with %d args, wants %d",
			f.FName, len(args), len(f.Params))
	}
	env := make(map[ir.Value]Val)
	for i, p := range f.Params {
		env[p] = args[i]
	}
	blk := f.Entry()
	var prev *ir.Block
	for {
		// Phis evaluate in parallel from the edge just traversed.
		phis := blk.Phis()
		if len(phis) > 0 {
			if prev == nil {
				return Val{}, mach.errf("phi in entry block %s", blk.Name())
			}
			vals := make([]Val, len(phis))
			for i, phi := range phis {
				in := phi.Incoming(prev)
				if in == nil {
					return Val{}, mach.errf("phi %s has no incoming from %s",
						phi.Ref(), prev.Name())
				}
				v, err := mach.eval(env, in)
				if err != nil {
					return Val{}, trapAt(f, phi, err)
				}
				vals[i] = v
			}
			for i, phi := range phis {
				env[phi] = vals[i]
			}
		}
		if mach.opt.TraceBlock != nil {
			// The hook fires after the block's phis have taken their
			// values for this entry, so the environment is consistent
			// at the block's first non-phi program point.
			mach.opt.TraceBlock(f, blk, func(v ir.Value) (Val, bool) {
				val, ok := env[v]
				return val, ok
			})
		}
		for _, in := range blk.Instrs[len(phis):] {
			mach.steps++
			if mach.steps > mach.opt.MaxSteps {
				return Val{}, mach.errf("step limit exceeded in @%s", f.FName)
			}
			switch in.Op {
			case ir.OpRet:
				if len(in.Args) == 0 {
					return Val{}, nil
				}
				v, err := mach.eval(env, in.Args[0])
				return v, trapAt(f, in, err)
			case ir.OpJmp:
				prev, blk = blk, in.Succs[0]
			case ir.OpBr:
				c, err := mach.eval(env, in.Args[0])
				if err != nil {
					return Val{}, trapAt(f, in, err)
				}
				if c.IsPtr() {
					return Val{}, mach.errf("branch on pointer")
				}
				if c.I != 0 {
					prev, blk = blk, in.Succs[0]
				} else {
					prev, blk = blk, in.Succs[1]
				}
			default:
				v, err := mach.exec(env, in, depth)
				if err != nil {
					return Val{}, trapAt(f, in, err)
				}
				if in.HasResult() {
					env[in] = v
				}
				continue
			}
			break // control transferred
		}
	}
}

func (mach *Machine) eval(env map[ir.Value]Val, v ir.Value) (Val, error) {
	switch v := v.(type) {
	case *ir.Const:
		if ir.IsPtr(v.Typ) {
			if v.Val == 0 {
				return Val{}, nil // null: integer 0, no object
			}
			return Val{}, mach.errf("non-null pointer constant %d", v.Val)
		}
		return IntVal(v.Val), nil
	case *ir.Global:
		return Val{Obj: mach.globals[v]}, nil
	case *ir.Undef:
		return Val{}, mach.errc(TrapUndef, "use of undef (uninitialized variable)")
	default:
		val, ok := env[v]
		if !ok {
			return Val{}, mach.errf("use of %s before definition", v.Ref())
		}
		return val, nil
	}
}

func (mach *Machine) exec(env map[ir.Value]Val, in *ir.Instr, depth int) (Val, error) {
	arg := func(i int) (Val, error) { return mach.eval(env, in.Args[i]) }
	switch in.Op {
	case ir.OpAlloca:
		return Val{Obj: &MemObj{
			Name:  "%" + in.Name(),
			Cells: make([]Val, in.NumElems),
		}}, nil
	case ir.OpMalloc:
		sz, err := arg(0)
		if err != nil {
			return Val{}, err
		}
		if sz.IsPtr() {
			return Val{}, mach.errf("malloc with pointer size")
		}
		elem := ir.Elem(in.Typ)
		es := elem.SizeBytes()
		if es == 0 {
			es = 8
		}
		n := sz.I / es
		if sz.I < 0 || n > 1<<28 {
			return Val{}, mach.errf("malloc of unreasonable size %d", sz.I)
		}
		if n == 0 {
			n = 1
		}
		return Val{Obj: &MemObj{
			Name:  "%" + in.Name(),
			Cells: make([]Val, n),
		}}, nil
	case ir.OpLoad:
		p, err := arg(0)
		if err != nil {
			return Val{}, err
		}
		if !p.IsPtr() {
			return Val{}, mach.errc(TrapNull, "load through non-pointer %s", p)
		}
		if p.Off < 0 || p.Off >= int64(len(p.Obj.Cells)) {
			return Val{}, mach.errc(TrapOOB, "load out of bounds: %s (size %d)", p, len(p.Obj.Cells))
		}
		return p.Obj.Cells[p.Off], nil
	case ir.OpStore:
		v, err := arg(0)
		if err != nil {
			return Val{}, err
		}
		p, err := arg(1)
		if err != nil {
			return Val{}, err
		}
		if !p.IsPtr() {
			return Val{}, mach.errc(TrapNull, "store through non-pointer %s", p)
		}
		if p.Off < 0 || p.Off >= int64(len(p.Obj.Cells)) {
			return Val{}, mach.errc(TrapOOB, "store out of bounds: %s (size %d)", p, len(p.Obj.Cells))
		}
		p.Obj.Cells[p.Off] = v
		return Val{}, nil
	case ir.OpGEP:
		base, err := arg(0)
		if err != nil {
			return Val{}, err
		}
		idx, err := arg(1)
		if err != nil {
			return Val{}, err
		}
		if idx.IsPtr() {
			return Val{}, mach.errf("gep with pointer index")
		}
		if !base.IsPtr() {
			return Val{}, mach.errc(TrapNull, "gep on non-pointer %s", base)
		}
		return Val{Obj: base.Obj, Off: base.Off + idx.I}, nil
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr:
		a, err := arg(0)
		if err != nil {
			return Val{}, err
		}
		b, err := arg(1)
		if err != nil {
			return Val{}, err
		}
		if a.IsPtr() || b.IsPtr() {
			return Val{}, mach.errf("arithmetic on pointer")
		}
		return mach.binop(in.Op, a.I, b.I)
	case ir.OpICmp:
		a, err := arg(0)
		if err != nil {
			return Val{}, err
		}
		b, err := arg(1)
		if err != nil {
			return Val{}, err
		}
		res, err := mach.compare(in.Pred, a, b)
		if err != nil {
			return Val{}, err
		}
		if res {
			return IntVal(1), nil
		}
		return IntVal(0), nil
	case ir.OpSigma, ir.OpCopy:
		return arg(0)
	case ir.OpCall:
		args := make([]Val, len(in.Args))
		for i := range in.Args {
			v, err := arg(i)
			if err != nil {
				return Val{}, err
			}
			args[i] = v
		}
		if in.Callee != nil {
			return mach.call(in.Callee, args, depth+1)
		}
		if in.CalleeName == "free" {
			return Val{}, nil
		}
		if mach.opt.External != nil {
			return mach.opt.External(in.CalleeName, args)
		}
		return Val{}, mach.errf("call to undefined external @%s", in.CalleeName)
	}
	return Val{}, mach.errf("cannot execute %s", in)
}

func (mach *Machine) binop(op ir.Op, a, b int64) (Val, error) {
	switch op {
	case ir.OpAdd:
		return IntVal(a + b), nil
	case ir.OpSub:
		return IntVal(a - b), nil
	case ir.OpMul:
		return IntVal(a * b), nil
	case ir.OpDiv:
		if b == 0 {
			return Val{}, mach.errf("division by zero")
		}
		return IntVal(a / b), nil
	case ir.OpRem:
		if b == 0 {
			return Val{}, mach.errf("remainder by zero")
		}
		return IntVal(a % b), nil
	case ir.OpAnd:
		return IntVal(a & b), nil
	case ir.OpOr:
		return IntVal(a | b), nil
	case ir.OpXor:
		return IntVal(a ^ b), nil
	case ir.OpShl:
		if b < 0 || b > 63 {
			return Val{}, mach.errf("shift amount %d out of range", b)
		}
		return IntVal(a << uint(b)), nil
	case ir.OpShr:
		if b < 0 || b > 63 {
			return Val{}, mach.errf("shift amount %d out of range", b)
		}
		return IntVal(a >> uint(b)), nil
	}
	return Val{}, mach.errf("bad binop")
}

func (mach *Machine) compare(pred ir.CmpPred, a, b Val) (bool, error) {
	if a.IsPtr() != b.IsPtr() {
		// Pointer compared against null (integer 0): only (in)equality
		// is meaningful.
		switch pred {
		case ir.CmpEQ:
			return false, nil
		case ir.CmpNE:
			return true, nil
		}
		return false, mach.errf("ordered comparison of pointer and integer")
	}
	if a.IsPtr() {
		if a.Obj != b.Obj {
			switch pred {
			case ir.CmpEQ:
				return false, nil
			case ir.CmpNE:
				return true, nil
			}
			return false, mach.errf("ordered comparison of pointers into different objects")
		}
		return pred.Eval(a.Off, b.Off), nil
	}
	return pred.Eval(a.I, b.I), nil
}

// NewArray allocates a standalone object of n cells for seeding
// function arguments in tests.
func NewArray(name string, n int) *MemObj {
	return &MemObj{Name: name, Cells: make([]Val, n)}
}

// PtrTo returns a pointer value to cell i of obj.
func PtrTo(obj *MemObj, i int64) Val { return Val{Obj: obj, Off: i} }
