package interp

import (
	"testing"

	"repro/internal/csmith"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/ssa"
)

// TestEliminateSwapSemantics executes the classic phi-swap pattern
// before and after out-of-SSA translation.
func TestEliminateSwapSemantics(t *testing.T) {
	src := `
func @f(i64 %n) i64 {
entry:
  jmp head
head:
  %x = phi i64 [1, entry], [%y, latch]
  %y = phi i64 [2, entry], [%x, latch]
  %i = phi i64 [0, entry], [%i2, latch]
  %c = icmp lt %i, %n
  br %c, latch, exit
latch:
  %i2 = add %i, 1
  jmp head
exit:
  %r = mul %x, 10
  %r2 = add %r, %y
  ret %r2
}
`
	for n := int64(0); n <= 5; n++ {
		ref := ir.MustParse(src)
		want, err := NewMachine(ref, Options{}).Run("f", IntVal(n))
		if err != nil {
			t.Fatal(err)
		}
		mod := ir.MustParse(src)
		ssa.Eliminate(mod.FuncByName("f"))
		got, err := NewMachine(mod, Options{}).Run("f", IntVal(n))
		if err != nil {
			t.Fatalf("n=%d: %v\n%s", n, err, mod)
		}
		if got.I != want.I {
			t.Errorf("n=%d: eliminate changed result: %d, want %d", n, got.I, want.I)
		}
	}
}

// TestEliminateDifferentialFuzz round-trips random programs through
// out-of-SSA translation and re-promotion, checking results at every
// stage.
func TestEliminateDifferentialFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing in -short mode")
	}
	for seed := int64(0); seed < 20; seed++ {
		src := csmith.Generate(csmith.Config{
			Seed: 3000 + seed, MaxPtrDepth: 2, Stmts: 30,
		})
		run := func(stage string, prep func(m *ir.Module)) (int64, bool) {
			t.Helper()
			m, err := minic.Compile("fuzz", src)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if prep != nil {
				prep(m)
			}
			v, err := NewMachine(m, Options{}).Run("main")
			if err != nil {
				// Division by a runtime zero, etc.: skip this seed, but
				// only if every stage fails identically.
				return 0, false
			}
			return v.I, true
		}
		want, okRef := run("ref", nil)
		gotE, okE := run("eliminate", func(m *ir.Module) { ssa.EliminateModule(m) })
		gotR, okR := run("roundtrip", func(m *ir.Module) {
			ssa.EliminateModule(m)
			for _, f := range m.Funcs {
				ssa.Promote(f)
			}
		})
		if okRef != okE || okRef != okR {
			t.Errorf("seed %d: stages disagree on trap behaviour (ref %v, elim %v, rt %v)",
				seed, okRef, okE, okR)
			continue
		}
		if !okRef {
			continue
		}
		if gotE != want || gotR != want {
			t.Errorf("seed %d: results diverge: ref %d, elim %d, roundtrip %d",
				seed, want, gotE, gotR)
		}
	}
}
