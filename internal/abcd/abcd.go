// Package abcd implements the ABCD algorithm of Bodik, Gupta and
// Sarkar ("ABCD: Eliminating Array Bounds Checks on Demand", PLDI
// 2000) as a comparison baseline. Section 5 of the reproduced paper
// names ABCD as its closest relative and lists the differences; this
// implementation makes those differences measurable:
//
//   - ABCD proves facts on demand, walking an explicit inequality
//     graph per query, whereas the less-than analysis of
//     internal/core precomputes a transitive closure;
//   - ABCD uses only constant edge weights — additions with variable
//     operands generate no edges, because ABCD has no range analysis;
//   - cycles are classified during the proof: a non-amplifying
//     (harmless) cycle lets the proof proceed, an amplifying cycle
//     kills it.
//
// The inequality graph is built from the same e-SSA form the LT
// analysis uses. Each program fact contributes upper-bound edges
// (v ≤ u + w) and, when it is an equality or yields one, dual
// lower-bound edges (v ≥ u + w). Phi nodes are conjunctive in both
// directions: an upper (lower) bound on a phi must hold for every
// incoming value. A query a < b is answered by trying to prove the
// upper bound a ≤ b - 1 and, failing that, the lower bound b ≥ a + 1;
// the two walks meet the two possible shapes of the proof (the
// bounded side or the bounding side may be the phi).
package abcd

import (
	"repro/internal/alias"
	"repro/internal/ir"
)

// edge (from, w) on node v encodes, in the upper graph, v ≤ from + w,
// and in the lower graph, v ≥ from + w.
type edge struct {
	from ir.Value
	w    int64
}

// Graph is the inequality graph of one function.
type Graph struct {
	ub    map[ir.Value][]edge // upper bounds of the key
	lb    map[ir.Value][]edge // lower bounds of the key
	isPhi map[ir.Value]bool
	// Edges counts stored edges (both graphs).
	Edges int
}

// proof lattice: False < Reduced < True.
type proofResult int

const (
	proofFalse proofResult = iota
	proofReduced
	proofTrue
)

// BuildGraph constructs the inequality graph of f, which must be in
// e-SSA form for branch information to be visible.
func BuildGraph(f *ir.Func) *Graph {
	g := &Graph{
		ub:    map[ir.Value][]edge{},
		lb:    map[ir.Value][]edge{},
		isPhi: map[ir.Value]bool{},
	}
	f.Instrs(func(in *ir.Instr) bool {
		switch in.Op {
		case ir.OpAdd:
			if c, ok := in.Args[1].(*ir.Const); ok {
				g.exact(in, in.Args[0], c.Val)
			} else if c, ok := in.Args[0].(*ir.Const); ok {
				g.exact(in, in.Args[1], c.Val)
			}
		case ir.OpSub:
			if c, ok := in.Args[1].(*ir.Const); ok {
				g.exact(in, in.Args[0], -c.Val)
			}
		case ir.OpGEP:
			// Pointer arithmetic in element units.
			if c, ok := in.Args[1].(*ir.Const); ok {
				g.exact(in, in.Args[0], c.Val)
			}
		case ir.OpCopy:
			// Plain inheritance: ABCD does not split live ranges at
			// subtractions, so the copy carries no extra fact — the
			// fourth difference Section 5 lists against this baseline.
			g.exact(in, in.Args[0], 0)
		case ir.OpSigma:
			g.exact(in, in.Args[0], 0)
			rel := in.Cmp.Pred
			if in.CmpSide == 1 {
				rel = rel.Swap()
			}
			if !in.OnTrue {
				rel = rel.Negate()
			}
			other := in.Cmp.Args[1-in.CmpSide]
			bounds := []ir.Value{other}
			if sib := sigmaSibling(in); sib != nil {
				bounds = append(bounds, sib)
			}
			for _, b := range bounds {
				switch rel {
				case ir.CmpLT: // sigma < b
					g.upper(in, b, -1)
				case ir.CmpLE:
					g.upper(in, b, 0)
				case ir.CmpGT: // sigma > b
					g.lowerB(in, b, 1)
				case ir.CmpGE:
					g.lowerB(in, b, 0)
				case ir.CmpEQ:
					g.upper(in, b, 0)
					g.lowerB(in, b, 0)
				}
			}
		case ir.OpPhi:
			g.isPhi[ir.Value(in)] = true
			for _, a := range in.Args {
				if skip(a) {
					continue
				}
				g.ub[in] = append(g.ub[in], edge{a, 0})
				g.lb[in] = append(g.lb[in], edge{a, 0})
				g.Edges += 2
			}
		}
		return true
	})
	return g
}

func skip(v ir.Value) bool {
	if v == nil {
		return true
	}
	_, isConst := v.(*ir.Const)
	_, isUndef := v.(*ir.Undef)
	return isConst || isUndef
}

// All facts attach to the newly defined node and reference only
// values defined no later than it. This def-ward orientation is what
// keeps proofs sound: a branch-derived fact lives on the sigma name
// that exists only where the branch went, never on the original
// operand, whose live range spans both outcomes.

// exact records v = u + w.
func (g *Graph) exact(v, u ir.Value, w int64) {
	if skip(u) {
		return
	}
	g.ub[v] = append(g.ub[v], edge{u, w})
	g.lb[v] = append(g.lb[v], edge{u, w})
	g.Edges += 2
}

// upper records v ≤ b + w.
func (g *Graph) upper(v, b ir.Value, w int64) {
	if skip(b) {
		return
	}
	g.ub[v] = append(g.ub[v], edge{b, w})
	g.Edges++
}

// lowerB records v ≥ b + w.
func (g *Graph) lowerB(v, b ir.Value, w int64) {
	if skip(b) {
		return
	}
	g.lb[v] = append(g.lb[v], edge{b, w})
	g.Edges++
}

func sigmaSibling(in *ir.Instr) *ir.Instr {
	for _, cand := range in.Blk.Instrs {
		if cand.Op != ir.OpSigma && cand.Op != ir.OpPhi {
			break
		}
		if cand.Op == ir.OpSigma && cand != in && cand.Cmp == in.Cmp &&
			cand.OnTrue == in.OnTrue && cand.CmpSide == 1-in.CmpSide {
			return cand
		}
	}
	return nil
}

// ProveLE reports whether the graph proves a ≤ b + c, on demand.
// Both proof shapes are attempted: an upper-bound walk from a and a
// lower-bound walk from b.
func (g *Graph) ProveLE(a, b ir.Value, c int64) bool {
	p := &prover{g: g, active: map[ir.Value]int64{}, memo: map[memoKey]proofResult{}}
	if p.proveUB(b, a, c) == proofTrue {
		return true
	}
	p = &prover{g: g, lower: true, active: map[ir.Value]int64{}, memo: map[memoKey]proofResult{}}
	return p.proveLB(a, b, -c) == proofTrue
}

// LessThan reports whether a < b is provable (a ≤ b - 1).
func (g *Graph) LessThan(a, b ir.Value) bool { return g.ProveLE(a, b, -1) }

type memoKey struct {
	v ir.Value
	c int64
}

type prover struct {
	g      *Graph
	lower  bool
	active map[ir.Value]int64
	memo   map[memoKey]proofResult
	steps  int
}

// proofStepLimit bounds a single demand-driven proof; graphs from
// real programs never get close, but the limit keeps adversarial
// cycles cheap.
const proofStepLimit = 100_000

// proveUB decides "v ≤ src + c" by walking upper-bound edges of v.
func (p *prover) proveUB(src, v ir.Value, c int64) proofResult {
	p.steps++
	if p.steps > proofStepLimit {
		return proofFalse
	}
	if v == src {
		if c >= 0 {
			return proofTrue
		}
		return proofFalse
	}
	if r, ok := p.memo[memoKey{v, c}]; ok {
		return r
	}
	if start, ok := p.active[v]; ok {
		// Harmless (non-amplifying) cycle when the demand did not
		// tighten while going around.
		if c >= start {
			return proofReduced
		}
		return proofFalse
	}
	edges := p.g.ub[v]
	if len(edges) == 0 {
		return proofFalse
	}
	p.active[v] = c
	result := p.combine(edges, p.g.isPhi[v], func(e edge) proofResult {
		return p.proveUB(src, e.from, c-e.w)
	})
	delete(p.active, v)
	p.memo[memoKey{v, c}] = result
	return result
}

// proveLB decides "v ≥ src + c" by walking lower-bound edges of v.
func (p *prover) proveLB(src, v ir.Value, c int64) proofResult {
	p.steps++
	if p.steps > proofStepLimit {
		return proofFalse
	}
	if v == src {
		if c <= 0 {
			return proofTrue
		}
		return proofFalse
	}
	if r, ok := p.memo[memoKey{v, c}]; ok {
		return r
	}
	if start, ok := p.active[v]; ok {
		if c <= start {
			return proofReduced
		}
		return proofFalse
	}
	edges := p.g.lb[v]
	if len(edges) == 0 {
		return proofFalse
	}
	p.active[v] = c
	result := p.combine(edges, p.g.isPhi[v], func(e edge) proofResult {
		return p.proveLB(src, e.from, c-e.w)
	})
	delete(p.active, v)
	p.memo[memoKey{v, c}] = result
	return result
}

// combine folds edge sub-proofs: conjunctive (min) at phi nodes,
// disjunctive (max) elsewhere.
func (p *prover) combine(edges []edge, phi bool, sub func(edge) proofResult) proofResult {
	if phi {
		result := proofTrue
		for _, e := range edges {
			if r := sub(e); r < result {
				result = r
			}
			if result == proofFalse {
				break
			}
		}
		return result
	}
	result := proofFalse
	for _, e := range edges {
		if r := sub(e); r > result {
			result = r
		}
		if result == proofTrue {
			break
		}
	}
	return result
}

// Analysis adapts ABCD to the alias.Analysis interface using the same
// disambiguation criteria as SRAA (Definition 3.11), so the two
// less-than engines can be compared head to head.
type Analysis struct {
	graphs map[*ir.Func]*Graph
}

// NewAnalysis builds inequality graphs for every function of m (in
// e-SSA form).
func NewAnalysis(m *ir.Module) *Analysis {
	a := &Analysis{graphs: map[*ir.Func]*Graph{}}
	for _, f := range m.Funcs {
		a.graphs[f] = BuildGraph(f)
	}
	return a
}

// Name returns "ABCD".
func (a *Analysis) Name() string { return "ABCD" }

// LessThan answers x < y within one function.
func (a *Analysis) LessThan(x, y ir.Value) bool {
	f := funcOf(x)
	if f == nil || funcOf(y) != f {
		return false
	}
	g := a.graphs[f]
	if g == nil {
		return false
	}
	return g.LessThan(x, y)
}

// Alias applies Definition 3.11 with ABCD as the inequality engine.
func (a *Analysis) Alias(la, lb alias.Location) alias.Result {
	p1, p2 := la.Ptr, lb.Ptr
	if a.LessThan(p1, p2) || a.LessThan(p2, p1) {
		return alias.NoAlias
	}
	b1, x1, ok1 := gepParts(p1)
	b2, x2, ok2 := gepParts(p2)
	if ok1 && ok2 && b1 == b2 {
		if a.LessThan(x1, x2) || a.LessThan(x2, x1) {
			return alias.NoAlias
		}
	}
	return alias.MayAlias
}

func gepParts(v ir.Value) (base, idx ir.Value, ok bool) {
	in, isInstr := v.(*ir.Instr)
	if !isInstr || in.Op != ir.OpGEP {
		return nil, nil, false
	}
	return in.Args[0], in.Args[1], true
}

func funcOf(v ir.Value) *ir.Func {
	switch v := v.(type) {
	case *ir.Param:
		return v.Fn
	case *ir.Instr:
		if v.Blk != nil {
			return v.Blk.Fn
		}
	}
	return nil
}
