package abcd

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/core"
	"repro/internal/essa"
	"repro/internal/ir"
	"repro/internal/minic"
)

// build compiles src, converts to e-SSA without range support (as
// ABCD would), and returns the module.
func build(t *testing.T, src string) *ir.Module {
	t.Helper()
	m := minic.MustCompile("t", src)
	essa.TransformModule(m, nil)
	return m
}

func valueByName(f *ir.Func, name string) ir.Value {
	for _, p := range f.Params {
		if p.PName == name {
			return p
		}
	}
	var out ir.Value
	f.Instrs(func(in *ir.Instr) bool {
		if in.HasResult() && in.Name() == name {
			out = in
			return false
		}
		return true
	})
	return out
}

func TestStraightLineChain(t *testing.T) {
	m := ir.MustParse(`
func @f(i64 %a) i64 {
entry:
  %b = add %a, 1
  %c = add %b, 2
  %d = sub %c, 1
  ret %d
}
`)
	f := m.FuncByName("f")
	g := BuildGraph(f)
	a := valueByName(f, "a")
	b := valueByName(f, "b")
	c := valueByName(f, "c")
	d := valueByName(f, "d")
	if !g.LessThan(a, b) {
		t.Error("a < a+1 not proven")
	}
	if !g.LessThan(a, c) || !g.LessThan(b, c) {
		t.Error("transitive chain not proven")
	}
	if !g.LessThan(a, d) {
		t.Error("a < a+2 (via c-1) not proven")
	}
	if !g.ProveLE(d, c, -1) {
		t.Error("d <= c - 1 not proven")
	}
	if g.LessThan(b, a) || g.LessThan(c, c) {
		t.Error("false facts proven")
	}
	// d = c - 1 and b = a + 1, c = b + 2 -> d = a + 2, so d > b.
	if !g.LessThan(b, d) {
		t.Error("b < d not proven")
	}
	if g.LessThan(d, b) {
		t.Error("claims d < b")
	}
}

func TestBranchSigma(t *testing.T) {
	m := build(t, `
int f(int a, int b, int *v) {
  if (a < b) {
    return v[a] + v[b];
  }
  return 0;
}
`)
	f := m.FuncByName("f")
	g := BuildGraph(f)
	var aSig, bSig *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpSigma && in.OnTrue {
			if in.CmpSide == 0 {
				aSig = in
			} else {
				bSig = in
			}
		}
		return true
	})
	if aSig == nil || bSig == nil {
		t.Fatalf("sigmas missing:\n%s", f)
	}
	if !g.LessThan(aSig, bSig) {
		t.Errorf("a < b not proven on true edge:\n%s", f)
	}
	if g.LessThan(bSig, aSig) {
		t.Error("claims b < a on true edge")
	}
}

func TestPhiConjunction(t *testing.T) {
	// x = phi(a+1, a+2): both arms exceed a, so a < x. But only one
	// arm exceeds a+1, so the analysis must NOT claim a+1 < x.
	m := build(t, `
int f(int a, int c) {
  int x;
  if (c) {
    x = a + 1;
  } else {
    x = a + 2;
  }
  return x;
}
`)
	f := m.FuncByName("f")
	g := BuildGraph(f)
	a := ir.Value(f.Params[0])
	var phi *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpPhi && ir.IsInt(in.Typ) && len(in.Args) == 2 {
			phi = in
		}
		return true
	})
	if phi == nil {
		t.Fatalf("no phi:\n%s", f)
	}
	if !g.LessThan(a, phi) {
		t.Error("a < phi(a+1, a+2) not proven")
	}
	var aPlus1 ir.Value
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpAdd {
			if c, ok := in.Args[1].(*ir.Const); ok && c.Val == 1 {
				aPlus1 = in
			}
		}
		return true
	})
	if g.LessThan(aPlus1, phi) {
		t.Error("claims a+1 < phi(a+1, a+2): conjunction broken")
	}
}

func TestLoopCycleHarmless(t *testing.T) {
	// The classic ABCD case: i = phi(0, i+1) inside i < n gives a
	// harmless (non-amplifying) cycle; i < j with j = i + 1 chains
	// must still be provable inside the loop.
	m := build(t, `
int f(int n, int *v) {
  int s = 0;
  for (int i = 0; i < n; i++) {
    int j = i + 1;
    s += v[i] + v[j];
  }
  return s;
}
`)
	f := m.FuncByName("f")
	g := BuildGraph(f)
	var geps []*ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpGEP {
			geps = append(geps, in)
		}
		return true
	})
	if len(geps) != 2 {
		t.Fatalf("geps = %d:\n%s", len(geps), f)
	}
	i, j := geps[0].Args[1], geps[1].Args[1]
	if !g.LessThan(i, j) && !g.LessThan(j, i) {
		t.Errorf("loop indices i, i+1 not ordered:\n%s", f)
	}
}

func TestNoVariableAmountEdges(t *testing.T) {
	// The difference the paper highlights (no range analysis): ABCD
	// generates nothing for x = a + n even when n is provably
	// positive, while core.Analyze with ranges does.
	src := `
int f(int a, int n, int *v) {
  if (n > 0) {
    int x = a + n;
    return v[x] - v[a];
  }
  return 0;
}
`
	m := build(t, src)
	f := m.FuncByName("f")
	g := BuildGraph(f)
	a := ir.Value(f.Params[0])
	var x ir.Value
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpAdd {
			if _, isConst := in.Args[1].(*ir.Const); !isConst {
				x = in
			}
		}
		return true
	})
	if x == nil {
		t.Fatalf("x = a + n not found:\n%s", f)
	}
	if g.LessThan(a, x) {
		t.Error("ABCD proved a < a+n without range analysis — too strong")
	}

	// The paper's analysis, given ranges, does prove it.
	m2 := minic.MustCompile("t", src)
	prep := core.Prepare(m2, core.PipelineOptions{})
	f2 := m2.FuncByName("f")
	var x2 ir.Value
	f2.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpAdd {
			if c, isConst := in.Args[1].(*ir.Const); !isConst || c.Val != 1 {
				if !ir.IsPtr(in.Typ) {
					x2 = in
				}
			}
		}
		return true
	})
	if x2 == nil {
		t.Fatalf("x not found in LT module:\n%s", f2)
	}
	if !prep.LT.LessThan(ir.Value(f2.Params[0]), x2) {
		t.Errorf("LT with ranges failed on a + n (n > 0):\n%s", f2)
	}
}

func TestAliasAdapter(t *testing.T) {
	m := build(t, `
void swap_sorted(int *v, int n) {
  for (int i = 0; i < n; i++) {
    int j = i + 1;
    int tmp = v[i];
    v[i] = v[j];
    v[j] = tmp;
  }
}
`)
	a := NewAnalysis(m)
	if a.Name() != "ABCD" {
		t.Error("bad name")
	}
	f := m.FuncByName("swap_sorted")
	var geps []*ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpGEP {
			geps = append(geps, in)
		}
		return true
	})
	resolved := 0
	for i := 0; i < len(geps); i++ {
		for j := i + 1; j < len(geps); j++ {
			if geps[i].Args[1] == geps[j].Args[1] {
				continue
			}
			if a.Alias(alias.Loc(geps[i]), alias.Loc(geps[j])) == alias.NoAlias {
				resolved++
			}
		}
	}
	if resolved == 0 {
		t.Errorf("ABCD adapter resolved nothing:\n%s", f)
	}
}

func TestProofStepLimit(t *testing.T) {
	// A long chain must still be provable within the step limit.
	src := "func @f(i64 %a) i64 {\nentry:\n"
	prev := "%a"
	for i := 0; i < 200; i++ {
		cur := "%x" + string(rune('0'+i%10)) + itoa(i)
		src += "  " + cur + " = add " + prev + ", 1\n"
		prev = cur
	}
	src += "  ret " + prev + "\n}\n"
	m := ir.MustParse(src)
	f := m.FuncByName("f")
	g := BuildGraph(f)
	a := valueByName(f, "a")
	last := f.Blocks[0].Term().Args[0]
	if !g.LessThan(a, last) {
		t.Error("200-step chain not proven")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// TestEdgeCaseTable pins BuildGraph/ProveLE behavior on the awkward
// shapes the sanitizer's witness search feeds it: negative constant
// offsets, phi cycles in plain (non-e-SSA) form, queries mixing
// values from different functions, and exact constant-slack
// boundaries.
func TestEdgeCaseTable(t *testing.T) {
	m := ir.MustParse(`
func @neg(i64 %a) i64 {
entry:
  %b = sub %a, 3
  %c = add %b, 1
  %d = add %a, 5
  ret %c
}

func @loop(i64 %n) i64 {
entry:
  jmp head
head:
  %i = phi i64 [0, entry], [%i2, body]
  %cond = icmp lt %i, %n
  br %cond, body, exit
body:
  %i2 = add %i, 1
  jmp head
exit:
  ret %i
}

func @other(i64 %z) i64 {
entry:
  %w = add %z, 1
  ret %w
}
`)
	graphs := map[string]*Graph{}
	val := func(fn, name string) ir.Value {
		f := m.FuncByName(fn)
		if f == nil {
			t.Fatalf("no function %s", fn)
		}
		if graphs[fn] == nil {
			graphs[fn] = BuildGraph(f)
		}
		v := valueByName(f, name)
		if v == nil {
			t.Fatalf("no value %%%s in @%s", name, fn)
		}
		return v
	}

	cases := []struct {
		name string
		fn   string // graph under query
		a, b string
		bFn  string // function b comes from; defaults to fn
		c    int64
		want bool
	}{
		// b = a - 3: the negative offset must carry exactly.
		{name: "neg exact", fn: "neg", a: "b", b: "a", c: -3, want: true},
		{name: "neg too tight", fn: "neg", a: "b", b: "a", c: -4, want: false},
		{name: "neg slack", fn: "neg", a: "b", b: "a", c: -2, want: true},
		// c = b + 1 = a - 2: chains mixing signs.
		{name: "mixed chain", fn: "neg", a: "c", b: "a", c: -2, want: true},
		{name: "mixed chain tight", fn: "neg", a: "c", b: "a", c: -3, want: false},
		// d = a + 5: the exact-slack boundary in the other direction.
		{name: "pos exact", fn: "neg", a: "d", b: "a", c: 5, want: true},
		{name: "pos too tight", fn: "neg", a: "d", b: "a", c: 4, want: false},
		// phi cycle in plain SSA: i2 = i + 1 is provable, nothing
		// amplifies around the cycle, and self-queries stay false.
		{name: "cycle forward", fn: "loop", a: "i", b: "i2", c: -1, want: true},
		{name: "cycle backward", fn: "loop", a: "i2", b: "i", c: -1, want: false},
		{name: "cycle self", fn: "loop", a: "i", b: "i", c: -1, want: false},
		{name: "cycle amplified", fn: "loop", a: "i", b: "i2", c: -5, want: false},
		// Unrelated values in the same function: no path, no proof.
		{name: "unrelated", fn: "loop", a: "i", b: "n", c: 1000, want: false},
		// Values from another function are simply absent from the
		// graph: the query must answer false, not panic.
		{name: "cross-function", fn: "neg", a: "b", b: "w", bFn: "other", c: 1000, want: false},
		{name: "cross-function rev", fn: "loop", a: "i", b: "d", bFn: "neg", c: 0, want: false},
	}
	for _, tc := range cases {
		bFn := tc.bFn
		if bFn == "" {
			bFn = tc.fn
		}
		a, b := val(tc.fn, tc.a), val(bFn, tc.b)
		g := graphs[tc.fn]
		if got := g.ProveLE(a, b, tc.c); got != tc.want {
			t.Errorf("%s: ProveLE(%s, %s, %d) = %v, want %v",
				tc.name, tc.a, tc.b, tc.c, got, tc.want)
		}
	}
}
