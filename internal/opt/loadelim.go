// Package opt implements a small optimization client for the alias
// analyses: block-local redundant-load elimination. It stands in for
// the "more extensive transformations" the paper motivates in Section
// 2 — a compiler pass whose power is directly proportional to the
// precision of the pointer disambiguation it is given. The test suite
// and examples/optclient use it to show loads that become removable
// only once the strict-inequality analysis is in the chain.
package opt

import (
	"repro/internal/alias"
	"repro/internal/ir"
)

// EliminateRedundantLoads removes loads whose value is already
// available: a load of address p is redundant if the same SSA address
// was loaded or stored earlier in the same block and no intervening
// store may alias p (per aa) and no intervening call may write memory.
// Returns the number of loads removed.
func EliminateRedundantLoads(f *ir.Func, aa alias.Analysis) int {
	removed := 0
	replacement := make(map[ir.Value]ir.Value)
	res := func(v ir.Value) ir.Value {
		for {
			r, ok := replacement[v]
			if !ok {
				return v
			}
			v = r
		}
	}
	for _, b := range f.Blocks {
		// available maps an address to the last value known to be in
		// memory at that address.
		type availEntry struct {
			addr ir.Value
			val  ir.Value
		}
		var avail []availEntry
		lookup := func(addr ir.Value) ir.Value {
			for _, e := range avail {
				if e.addr == addr {
					return e.val
				}
			}
			return nil
		}
		record := func(addr, val ir.Value) {
			for i, e := range avail {
				if e.addr == addr {
					avail[i].val = val
					return
				}
			}
			avail = append(avail, availEntry{addr, val})
		}
		invalidate := func(stAddr ir.Value) {
			kept := avail[:0]
			for _, e := range avail {
				if aa.Alias(alias.Loc(e.addr), alias.Loc(stAddr)) == alias.NoAlias {
					kept = append(kept, e)
				}
			}
			avail = kept
		}

		var instrs []*ir.Instr
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpLoad:
				if v := lookup(in.Args[0]); v != nil {
					replacement[in] = res(v)
					removed++
					continue // drop the load
				}
				record(in.Args[0], in)
			case ir.OpStore:
				invalidate(in.Args[1])
				record(in.Args[1], res(in.Args[0]))
			case ir.OpCall:
				// Unknown code may write anything.
				avail = avail[:0]
			}
			instrs = append(instrs, in)
		}
		b.Instrs = instrs
	}
	if removed > 0 {
		f.Instrs(func(in *ir.Instr) bool {
			for i, a := range in.Args {
				if r, ok := replacement[a]; ok {
					in.Args[i] = r
				}
			}
			return true
		})
	}
	return removed
}

// CountLoads returns the number of load instructions in f, a
// convenience for measuring the pass's effect.
func CountLoads(f *ir.Func) int {
	n := 0
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpLoad {
			n++
		}
		return true
	})
	return n
}
