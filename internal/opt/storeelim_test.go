package opt

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
)

func TestDeadStoreSameAddress(t *testing.T) {
	m, aa := setup(t, `
int f(int *v, int i) {
  int *p = v + i;
  *p = 1;
  *p = 2;
  return *p;
}
`)
	f := m.FuncByName("f")
	before := CountStores(f)
	n := EliminateDeadStores(f, aa)
	if n != 1 {
		t.Fatalf("removed %d stores of %d, want 1:\n%s", n, before, f)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

// TestDeadStoreNeedsLT: the overwrite is separated from the first
// store by a load of v[j] with j > i; only the LT-enabled oracle can
// prove the load does not observe the store.
func TestDeadStoreNeedsLT(t *testing.T) {
	src := `
int f(int *v, int i, int n) {
  int s = 0;
  for (int j = i + 1; j < n; j++) {
    int *pi = v + i;
    int *pj = v + j;
    *pi = s;
    s += *pj;
    *pi = s + 1;
  }
  return s;
}
`
	mNone := minic.MustCompile("t", src)
	fNone := mNone.FuncByName("f")
	if n := EliminateDeadStores(fNone, mayAll{}); n != 0 {
		t.Errorf("no-info pass removed %d stores, want 0", n)
	}

	mLT, aa := setup(t, src)
	fLT := mLT.FuncByName("f")
	if n := EliminateDeadStores(fLT, aa); n != 1 {
		t.Errorf("LT-enabled pass removed %d stores, want 1:\n%s", n, fLT)
	}
}

func TestDeadStoreBlockedByCall(t *testing.T) {
	m, aa := setup(t, `
int f(int *v, int i) {
  int *p = v + i;
  *p = 1;
  mystery();
  *p = 2;
  return *p;
}
`)
	f := m.FuncByName("f")
	if n := EliminateDeadStores(f, aa); n != 0 {
		t.Errorf("store before call removed (%d)", n)
	}
}

// TestDeadStoreSemantics differentially validates the pass.
func TestDeadStoreSemantics(t *testing.T) {
	src := `
int f(int *v, int i, int n) {
  int s = 0;
  for (int j = i + 1; j < n; j++) {
    int *pi = v + i;
    int *pj = v + j;
    *pi = s;
    s += *pj;
    *pi = s + 1;
  }
  return s + v[i];
}
`
	run := func(m *ir.Module) int64 {
		t.Helper()
		mach := interp.NewMachine(m, interp.Options{})
		arr := interp.NewArray("v", 12)
		for i := 0; i < 12; i++ {
			arr.Cells[i] = interp.IntVal(int64(5 - i))
		}
		v, err := mach.Run("f", interp.PtrTo(arr, 0), interp.IntVal(1), interp.IntVal(10))
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return v.I
	}
	want := run(minic.MustCompile("t", src))
	mOpt, aa := setup(t, src)
	EliminateDeadStores(mOpt.FuncByName("f"), aa)
	if got := run(mOpt); got != want {
		t.Errorf("dead store elimination changed result: %d, want %d", got, want)
	}
}

func TestDeadStoreMayAliasOverwriteBlocks(t *testing.T) {
	// Overwrite through a different, possibly-aliasing address must
	// NOT make the first store removable.
	m, aa := setup(t, `
int f(int *v, int a, int b) {
  int *p = v + a;
  int *q = v + b;
  *p = 1;
  *q = 2;
  return *p;
}
`)
	f := m.FuncByName("f")
	if n := EliminateDeadStores(f, aa); n != 0 {
		t.Errorf("removed %d stores under may-alias overwrite", n)
	}
	_ = alias.MayAlias
}
