package opt

import (
	"repro/internal/alias"
	"repro/internal/ir"
)

// EliminateDeadStores removes block-local dead stores: a store to
// address p is dead if a later store in the same block overwrites the
// exact same SSA address before any intervening instruction could
// observe it — a load that may alias p, a call, or a block exit. Like
// redundant-load elimination, the pass's power scales directly with
// the alias oracle: the intervening load kills the store unless aa
// proves disjointness. Returns the number of stores removed.
func EliminateDeadStores(f *ir.Func, aa alias.Analysis) int {
	removed := 0
	for _, b := range f.Blocks {
		// For each instruction, decide whether it is a store made dead
		// by a later overwrite with no observing access in between.
		dead := make([]bool, len(b.Instrs))
		for i, in := range b.Instrs {
			if in.Op != ir.OpStore {
				continue
			}
			addr := in.Args[1]
		scan:
			for j := i + 1; j < len(b.Instrs); j++ {
				later := b.Instrs[j]
				switch later.Op {
				case ir.OpStore:
					if later.Args[1] == addr {
						dead[i] = true
						break scan
					}
					// A store that may alias writes over part of the
					// location; conservatively stop (the first store
					// may still be visible through the aliased cells).
					if aa.Alias(alias.Loc(addr), alias.Loc(later.Args[1])) != alias.NoAlias {
						break scan
					}
				case ir.OpLoad:
					if aa.Alias(alias.Loc(addr), alias.Loc(later.Args[0])) != alias.NoAlias {
						break scan // observed
					}
				case ir.OpCall, ir.OpRet, ir.OpBr, ir.OpJmp:
					break scan // memory escapes the window
				}
			}
		}
		kept := b.Instrs[:0]
		for i, in := range b.Instrs {
			if dead[i] {
				removed++
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return removed
}

// CountStores returns the number of store instructions in f.
func CountStores(f *ir.Func) int {
	n := 0
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpStore {
			n++
		}
		return true
	})
	return n
}
