package opt

import (
	"repro/internal/cfg"
	"repro/internal/ir"
)

// FoldConstants performs constant folding and algebraic
// simplification on f: arithmetic and comparisons over constant
// operands evaluate at compile time, identities (x+0, x*1, x*0,
// x-x, x^x) simplify, branches on constant conditions become jumps
// (with unreachable code removed), and single-incoming phis fold to
// their operand. The pass iterates to a fixed point and returns the
// number of instructions eliminated.
//
// Canonicalizing before the analysis pipeline helps the less-than
// analysis the same way instcombine helps LLVM's: fewer names, more
// constant operands for rule 2.
func FoldConstants(f *ir.Func) int {
	removed := 0
	for {
		n := foldOnce(f)
		if n == 0 {
			return removed
		}
		removed += n
	}
}

func foldOnce(f *ir.Func) int {
	replacement := map[ir.Value]ir.Value{}
	res := func(v ir.Value) ir.Value {
		for {
			r, ok := replacement[v]
			if !ok {
				return v
			}
			v = r
		}
	}
	removed := 0

	// Fold value-producing instructions.
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				in.Args[i] = res(a)
			}
			if v := simplify(in); v != nil {
				replacement[in] = v
				removed++
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	// Constant branches become jumps.
	for _, b := range f.Blocks {
		term := b.Term()
		if term == nil || term.Op != ir.OpBr {
			continue
		}
		cond := res(term.Args[0])
		c, ok := cond.(*ir.Const)
		if !ok {
			continue
		}
		target := term.Succs[1]
		if c.Val != 0 {
			target = term.Succs[0]
		}
		dropped := term.Succs[0]
		if target == term.Succs[0] {
			dropped = term.Succs[1]
		}
		term.Op = ir.OpJmp
		term.Args = nil
		term.Succs = []*ir.Block{target}
		removed++
		// The dropped edge's phi entries must go.
		removePhiEdge(dropped, b)
	}
	// Apply replacements everywhere (phis included).
	f.Instrs(func(in *ir.Instr) bool {
		for i, a := range in.Args {
			in.Args[i] = res(a)
		}
		return true
	})
	// Unreachable blocks may have appeared; single-entry phis fold.
	removed += cfg.RemoveUnreachable(f)
	for _, b := range f.Blocks {
		var kept []*ir.Instr
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi && len(in.Args) == 1 {
				replacement[in] = in.Args[0]
				removed++
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	f.Instrs(func(in *ir.Instr) bool {
		for i, a := range in.Args {
			in.Args[i] = res(a)
		}
		return true
	})
	return removed
}

// removePhiEdge deletes pred's incoming entries from every phi in b.
func removePhiEdge(b *ir.Block, pred *ir.Block) {
	for _, phi := range b.Phis() {
		args := phi.Args[:0]
		blocks := phi.PhiBlocks[:0]
		for i, pb := range phi.PhiBlocks {
			if pb != pred {
				args = append(args, phi.Args[i])
				blocks = append(blocks, pb)
			}
		}
		phi.Args, phi.PhiBlocks = args, blocks
	}
}

// simplify returns the value in reduces to, or nil.
func simplify(in *ir.Instr) ir.Value {
	constOf := func(v ir.Value) (int64, bool) {
		c, ok := v.(*ir.Const)
		if !ok {
			return 0, false
		}
		return c.Val, true
	}
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr:
		a, aOK := constOf(in.Args[0])
		b, bOK := constOf(in.Args[1])
		if aOK && bOK {
			if v, ok := evalBin(in.Op, a, b); ok {
				return &ir.Const{Val: v, Typ: in.Typ}
			}
			return nil
		}
		// Algebraic identities.
		switch in.Op {
		case ir.OpAdd:
			if aOK && a == 0 {
				return in.Args[1]
			}
			if bOK && b == 0 {
				return in.Args[0]
			}
		case ir.OpSub:
			if bOK && b == 0 {
				return in.Args[0]
			}
			if in.Args[0] == in.Args[1] {
				return &ir.Const{Val: 0, Typ: in.Typ}
			}
		case ir.OpMul:
			if aOK && a == 1 {
				return in.Args[1]
			}
			if bOK && b == 1 {
				return in.Args[0]
			}
			if (aOK && a == 0) || (bOK && b == 0) {
				return &ir.Const{Val: 0, Typ: in.Typ}
			}
		case ir.OpXor:
			if in.Args[0] == in.Args[1] {
				return &ir.Const{Val: 0, Typ: in.Typ}
			}
		case ir.OpAnd, ir.OpOr:
			if in.Args[0] == in.Args[1] {
				return in.Args[0]
			}
		}
	case ir.OpICmp:
		a, aOK := constOf(in.Args[0])
		b, bOK := constOf(in.Args[1])
		if aOK && bOK {
			if in.Pred.Eval(a, b) {
				return ir.ConstBool(true)
			}
			return ir.ConstBool(false)
		}
		if in.Args[0] == in.Args[1] {
			switch in.Pred {
			case ir.CmpEQ, ir.CmpLE, ir.CmpGE:
				return ir.ConstBool(true)
			case ir.CmpNE, ir.CmpLT, ir.CmpGT:
				return ir.ConstBool(false)
			}
		}
	case ir.OpGEP:
		if c, ok := constOf(in.Args[1]); ok && c == 0 &&
			ir.Equal(in.Typ, in.Args[0].Type()) {
			return in.Args[0]
		}
	}
	return nil
}

// evalBin evaluates a binary operation on constants, refusing the
// cases whose runtime behaviour is a trap (division by zero, shift
// out of range) so the fold never changes observable faults.
func evalBin(op ir.Op, a, b int64) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case ir.OpRem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpShl:
		if b < 0 || b > 63 {
			return 0, false
		}
		return a << uint(b), true
	case ir.OpShr:
		if b < 0 || b > 63 {
			return 0, false
		}
		return a >> uint(b), true
	}
	return 0, false
}
