package opt

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
)

// mayAll answers MayAlias to everything: the no-information baseline.
type mayAll struct{}

func (mayAll) Name() string                           { return "none" }
func (mayAll) Alias(a, b alias.Location) alias.Result { return alias.MayAlias }

func setup(t *testing.T, src string) (*ir.Module, alias.Analysis) {
	t.Helper()
	m := minic.MustCompile("t", src)
	p := core.Prepare(m, core.PipelineOptions{})
	return m, alias.NewChain(alias.NewBasic(m), alias.NewSRAA(p.LT))
}

func TestSameAddressLoad(t *testing.T) {
	// v[i] is loaded twice with no intervening store: always foldable,
	// even with no alias information.
	m, _ := setup(t, `
int f(int *v, int i) {
  return v[i] + v[i];
}
`)
	f := m.FuncByName("f")
	// The frontend emits two geps; normalize by checking loads only.
	before := CountLoads(f)
	n := EliminateRedundantLoads(f, mayAll{})
	_ = before
	// The two geps are distinct SSA values, so same-address detection
	// by SSA identity does not fire here; this documents the pass's
	// block-local, identity-based design.
	if n != 0 {
		t.Logf("note: pass folded %d loads via value identity", n)
	}
}

func TestStoreForwarding(t *testing.T) {
	m, aa := setup(t, `
int f(int *v, int i) {
  v[i] = 7;
  int *p = v + i;
  return *p;
}
`)
	f := m.FuncByName("f")
	EliminateRedundantLoads(f, aa)
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify after pass: %v\n%s", err, f)
	}
}

// TestInterveningStoreBlocksWithoutLT is the headline applicability
// demo: with i < j proven, the store to v[j] cannot clobber v[i], so
// the second load of v[i] is redundant — but only the LT-enabled
// chain can see it.
func TestInterveningStoreBlocksWithoutLT(t *testing.T) {
	src := `
int f(int *v, int i, int n) {
  int s = 0;
  for (int j = i + 1; j < n; j++) {
    int *pi = v + i;
    int *pj = v + j;
    s += *pi;
    *pj = s;
    s += *pi;
  }
  return s;
}
`
	// Without alias info: the store *pj = s kills the availability of
	// *pi, so nothing is removed.
	mNone := minic.MustCompile("t", src)
	core.Prepare(mNone, core.PipelineOptions{})
	fNone := mNone.FuncByName("f")
	if n := EliminateRedundantLoads(fNone, mayAll{}); n != 0 {
		t.Errorf("no-info pass removed %d loads, want 0", n)
	}

	// With BA+LT: i < j makes the store harmless.
	mLT, aa := setup(t, src)
	fLT := mLT.FuncByName("f")
	n := EliminateRedundantLoads(fLT, aa)
	if n != 1 {
		t.Errorf("LT-enabled pass removed %d loads, want 1:\n%s", n, fLT)
	}
	if err := ir.Verify(mLT); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// TestSemanticsPreserved differentially tests the pass on an
// executable program.
func TestSemanticsPreserved(t *testing.T) {
	src := `
int f(int *v, int i, int n) {
  int s = 0;
  for (int j = i + 1; j < n; j++) {
    int *pi = v + i;
    int *pj = v + j;
    s += *pi;
    *pj = s;
    s += *pi;
  }
  return s;
}
`
	run := func(m *ir.Module) int64 {
		t.Helper()
		mach := interp.NewMachine(m, interp.Options{})
		arr := interp.NewArray("v", 10)
		for i := 0; i < 10; i++ {
			arr.Cells[i] = interp.IntVal(int64(i * 3))
		}
		v, err := mach.Run("f", interp.PtrTo(arr, 0), interp.IntVal(1), interp.IntVal(9))
		if err != nil {
			t.Fatalf("run: %v\n%s", err, m)
		}
		return v.I
	}
	mRef := minic.MustCompile("t", src)
	want := run(mRef)

	mOpt, aa := setup(t, src)
	EliminateRedundantLoads(mOpt.FuncByName("f"), aa)
	if got := run(mOpt); got != want {
		t.Errorf("optimization changed result: %d, want %d", got, want)
	}
}

func TestCallInvalidates(t *testing.T) {
	m, aa := setup(t, `
int f(int *v, int i) {
  int *p = v + i;
  int a = *p;
  mystery();
  int b = *p;
  return a + b;
}
`)
	f := m.FuncByName("f")
	if n := EliminateRedundantLoads(f, aa); n != 0 {
		t.Errorf("load after call removed (%d), calls must invalidate", n)
	}
}

func TestRepeatedLoadFolds(t *testing.T) {
	m, aa := setup(t, `
int f(int *v, int i) {
  int *p = v + i;
  int a = *p;
  int b = *p;
  int c = *p;
  return a + b + c;
}
`)
	f := m.FuncByName("f")
	if n := EliminateRedundantLoads(f, aa); n != 2 {
		t.Errorf("removed %d loads, want 2:\n%s", n, f)
	}
	if CountLoads(f) != 1 {
		t.Errorf("loads remaining = %d, want 1", CountLoads(f))
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}
