package opt

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/core"
	"repro/internal/csmith"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/ssa"
)

func TestFoldArithmetic(t *testing.T) {
	m := ir.MustParse(`
func @f(i64 %a) i64 {
entry:
  %x = add 2, 3
  %y = mul %x, %a
  %z = add %y, 0
  %w = sub %z, %z
  %r = add %w, %y
  ret %r
}
`)
	f := m.FuncByName("f")
	n := FoldConstants(f)
	if n < 3 {
		t.Fatalf("folded %d, want >= 3:\n%s", n, f)
	}
	// The function should reduce to ret (5 * a).
	var mul *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpMul {
			mul = in
		}
		return true
	})
	if mul == nil {
		t.Fatalf("mul disappeared:\n%s", f)
	}
	if c, ok := mul.Args[0].(*ir.Const); !ok || c.Val != 5 {
		t.Errorf("mul operand not folded to 5: %s", mul)
	}
	ret := f.Blocks[0].Term()
	if ret.Args[0] != ir.Value(mul) {
		t.Errorf("ret should use the mul directly:\n%s", f)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestFoldBranch(t *testing.T) {
	m := ir.MustParse(`
func @f(i64 %a) i64 {
entry:
  %c = icmp lt 1, 2
  br %c, yes, no
yes:
  ret %a
no:
  ret 0
}
`)
	f := m.FuncByName("f")
	FoldConstants(f)
	if len(f.Blocks) != 2 {
		t.Fatalf("dead arm not removed: %d blocks\n%s", len(f.Blocks), f)
	}
	if f.Blocks[0].Term().Op != ir.OpJmp {
		t.Errorf("branch not folded to jump:\n%s", f)
	}
	if err := ssa.VerifySSA(f); err != nil {
		t.Fatal(err)
	}
}

func TestFoldBranchPrunesPhi(t *testing.T) {
	m := ir.MustParse(`
func @f(i64 %a) i64 {
entry:
  %c = icmp gt 1, 2
  br %c, yes, no
yes:
  %x = add %a, 1
  jmp join
no:
  %y = add %a, 2
  jmp join
join:
  %r = phi i64 [%x, yes], [%y, no]
  ret %r
}
`)
	f := m.FuncByName("f")
	FoldConstants(f)
	// Condition is false: only the 'no' arm survives; the phi folds.
	if err := ssa.VerifySSA(f); err != nil {
		t.Fatalf("ssa: %v\n%s", err, f)
	}
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpPhi {
			t.Errorf("phi survived single-edge fold: %s", in)
		}
		return true
	})
	ret := f.Blocks[len(f.Blocks)-1].Term()
	add, ok := ret.Args[0].(*ir.Instr)
	if !ok || add.Op != ir.OpAdd {
		t.Fatalf("ret operand: %v", ret.Args[0])
	}
	if c, ok := add.Args[1].(*ir.Const); !ok || c.Val != 2 {
		t.Errorf("wrong arm survived: %s", add)
	}
}

func TestFoldKeepsTraps(t *testing.T) {
	m := ir.MustParse(`
func @f(i64 %a) i64 {
entry:
  %x = div %a, 0
  ret %x
}
`)
	f := m.FuncByName("f")
	FoldConstants(f)
	var div *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpDiv {
			div = in
		}
		return true
	})
	if div == nil {
		t.Error("division by zero folded away — trap semantics lost")
	}
}

// TestFoldDifferential: folding must preserve semantics exactly on
// random programs (Csmith output is constant-heavy, so the pass fires
// a lot here).
func TestFoldDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing in -short mode")
	}
	fired := 0
	for seed := int64(0); seed < 40; seed++ {
		src := csmith.Generate(csmith.Config{
			Seed: 20000 + seed, MaxPtrDepth: 2 + int(seed)%3, Stmts: 35,
		})
		run := func(fold bool) (int64, bool) {
			m, err := minic.Compile("fuzz", src)
			if err != nil {
				t.Fatal(err)
			}
			if fold {
				for _, f := range m.Funcs {
					fired += FoldConstants(f)
				}
				if err := ir.Verify(m); err != nil {
					t.Fatalf("seed %d: invalid after fold: %v", seed, err)
				}
			}
			v, err := interp.NewMachine(m, interp.Options{}).Run("main")
			if err != nil {
				return 0, false
			}
			return v.I, true
		}
		want, okRef := run(false)
		got, okFold := run(true)
		if okRef != okFold {
			t.Fatalf("seed %d: trap behaviour changed (ref %v, folded %v)\n%s",
				seed, okRef, okFold, src)
		}
		if okRef && got != want {
			t.Fatalf("seed %d: folding changed result: %d -> %d\n%s",
				seed, want, got, src)
		}
	}
	if fired == 0 {
		t.Fatal("fold never fired across 40 constant-heavy programs")
	}
	t.Logf("fold eliminated %d instructions across the fuzz corpus", fired)
}

// TestFoldHelpsAnalysis: after folding, the LT pipeline still works
// and the paper's kernel facts survive.
func TestFoldHelpsAnalysis(t *testing.T) {
	m := minic.MustCompile("t", `
void ins_sort(int* v, int N) {
  int i, j;
  for (i = 0; i < N - 1; i++) {
    for (j = i + 1; j < N; j++) {
      if (v[i] > v[j]) {
        int tmp = v[i];
        v[i] = v[j];
        v[j] = tmp;
      }
    }
  }
}
`)
	for _, f := range m.Funcs {
		FoldConstants(f)
	}
	prep := core.Prepare(m, core.PipelineOptions{})
	aa := alias.NewSRAA(prep.LT)
	f := m.FuncByName("ins_sort")
	var geps []*ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpGEP {
			geps = append(geps, in)
		}
		return true
	})
	resolved := 0
	for i := 0; i < len(geps); i++ {
		for j := i + 1; j < len(geps); j++ {
			if geps[i].Args[1] == geps[j].Args[1] {
				continue
			}
			if aa.Alias(alias.Loc(geps[i]), alias.Loc(geps[j])) == alias.NoAlias {
				resolved++
			}
		}
	}
	if resolved == 0 {
		t.Errorf("LT resolved nothing after folding:\n%s", f)
	}
}
