package ssa

import (
	"repro/internal/cfg"
	"repro/internal/ir"
)

// Eliminate converts f out of SSA form, the "SSA-Elimination phase"
// the paper mentions before code generation (Section 3.2): phi
// functions become loads from memory slots written by the
// predecessors, and sigma and copy instructions — the e-SSA parallel
// copies — are folded away by substituting their sources. Memory
// slots make the parallel-copy semantics trivially correct (the swap
// and lost-copy problems of register-based out-of-SSA translation
// cannot arise), at the cost of redundant memory traffic that
// Promote can immediately recover — the Eliminate/Promote round trip
// is differentially tested against the interpreter.
//
// Returns the number of phis eliminated.
func Eliminate(f *ir.Func) int {
	cfg.RemoveUnreachable(f)
	cfg.SplitCriticalEdges(f)

	// Fold sigmas and copies first: pure copies, so uses can take the
	// source directly.
	replacement := map[ir.Value]ir.Value{}
	var resolve func(v ir.Value) ir.Value
	resolve = func(v ir.Value) ir.Value {
		if r, ok := replacement[v]; ok {
			r = resolve(r)
			replacement[v] = r
			return r
		}
		return v
	}
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op == ir.OpSigma || in.Op == ir.OpCopy {
				replacement[in] = in.Args[0]
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}

	// Phi elimination through memory slots.
	phis := 0
	entry := f.Entry()
	for _, b := range append([]*ir.Block(nil), f.Blocks...) {
		blockPhis := b.Phis()
		if len(blockPhis) == 0 {
			continue
		}
		for _, phi := range blockPhis {
			phis++
			slot := &ir.Instr{
				Op:       ir.OpAlloca,
				Typ:      ir.Ptr(phi.Typ),
				AllocTyp: phi.Typ,
				NumElems: 1,
			}
			slot.SetName(f.FreshName(phi.Name() + ".slot"))
			entry.Insert(0, slot)
			// Store the incoming value at the end of each predecessor
			// (before its terminator).
			for i, pred := range phi.PhiBlocks {
				val := resolve(phi.Args[i])
				st := &ir.Instr{
					Op:   ir.OpStore,
					Typ:  ir.Void,
					Args: []ir.Value{val, slot},
				}
				pred.Insert(len(pred.Instrs)-1, st)
			}
			// Replace the phi with a load at the block head.
			ld := &ir.Instr{
				Op:   ir.OpLoad,
				Typ:  phi.Typ,
				Args: []ir.Value{slot},
			}
			ld.SetName(f.FreshName(phi.Name() + ".reload"))
			replacement[phi] = ld
			// Swap in place: find the phi and substitute.
			for i, in := range b.Instrs {
				if in == phi {
					b.Instrs[i] = ld
					ld.Blk = b
					break
				}
			}
		}
	}

	// Apply all substitutions.
	f.Instrs(func(in *ir.Instr) bool {
		for i, a := range in.Args {
			in.Args[i] = resolve(a)
		}
		return true
	})
	f.RecomputeCFG()
	return phis
}

// EliminateModule applies Eliminate to every function of m.
func EliminateModule(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		n += Eliminate(f)
	}
	return n
}
