package ssa

import (
	"testing"

	"repro/internal/ir"
)

// elimTestPrograms are executable IR programs used to differentially
// test the out-of-SSA translation (the interpreter lives in a package
// that depends on this one, so the execution-based differential tests
// are in internal/essa and internal/interp; here the checks are
// structural).
func TestEliminateStructure(t *testing.T) {
	m := ir.MustParse(`
func @f(i64 %n) i64 {
entry:
  jmp head
head:
  %i = phi i64 [0, entry], [%i2, body]
  %s = phi i64 [0, entry], [%s2, body]
  %c = icmp lt %i, %n
  br %c, body, exit
body:
  %s2 = add %s, %i
  %i2 = add %i, 1
  jmp head
exit:
  ret %s
}
`)
	f := m.FuncByName("f")
	n := Eliminate(f)
	if n != 2 {
		t.Fatalf("eliminated %d phis, want 2", n)
	}
	count := func(op ir.Op) int {
		c := 0
		f.Instrs(func(in *ir.Instr) bool {
			if in.Op == op {
				c++
			}
			return true
		})
		return c
	}
	if count(ir.OpPhi) != 0 {
		t.Fatalf("phis remain:\n%s", f)
	}
	if count(ir.OpAlloca) != 2 {
		t.Errorf("slots = %d, want 2", count(ir.OpAlloca))
	}
	// Two preds x two phis = 4 stores; 2 loads.
	if count(ir.OpStore) != 4 {
		t.Errorf("stores = %d, want 4:\n%s", count(ir.OpStore), f)
	}
	if count(ir.OpLoad) != 2 {
		t.Errorf("loads = %d, want 2", count(ir.OpLoad))
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	if err := VerifySSA(f); err != nil {
		t.Fatalf("per-name SSA broken: %v\n%s", err, f)
	}
}

func TestEliminateSigmaCopies(t *testing.T) {
	m := ir.MustParse(`
func @f(i64 %a, i64 %b) i64 {
entry:
  %c = icmp lt %a, %b
  br %c, then, else
then:
  %at = sigma %a, cmp %c, true, left
  %x = add %at, 1
  ret %x
else:
  %d = sub %a, 1
  %ac = copy %a, sub %d
  %y = add %ac, 2
  ret %y
}
`)
	f := m.FuncByName("f")
	Eliminate(f)
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpSigma || in.Op == ir.OpCopy {
			t.Errorf("copy-like instruction survived: %s", in)
		}
		return true
	})
	// The adds must now use %a directly.
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpAdd {
			if in.Args[0] != ir.Value(f.Params[0]) {
				t.Errorf("add does not use %%a after folding: %s", in)
			}
		}
		return true
	})
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

// TestEliminatePromoteRoundTrip: Promote must fully recover SSA form
// from the slot-based translation.
func TestEliminatePromoteRoundTrip(t *testing.T) {
	m := ir.MustParse(`
func @f(i64 %n) i64 {
entry:
  jmp head
head:
  %i = phi i64 [0, entry], [%i2, body]
  %c = icmp lt %i, %n
  br %c, body, exit
body:
  %i2 = add %i, 1
  jmp head
exit:
  ret %i
}
`)
	f := m.FuncByName("f")
	Eliminate(f)
	promoted := Promote(f)
	if promoted == 0 {
		t.Fatal("Promote recovered nothing")
	}
	remaining := 0
	f.Instrs(func(in *ir.Instr) bool {
		switch in.Op {
		case ir.OpAlloca, ir.OpLoad, ir.OpStore:
			remaining++
		}
		return true
	})
	if remaining != 0 {
		t.Errorf("%d memory ops remain after round trip:\n%s", remaining, f)
	}
	if err := VerifySSA(f); err != nil {
		t.Fatal(err)
	}
}

// TestEliminateSwapProblem: the classic swap pattern — two phis
// exchanging values through a loop — must translate correctly (the
// memory-slot strategy is immune by construction; this pins it).
func TestEliminateSwapProblem(t *testing.T) {
	m := ir.MustParse(`
func @f(i64 %n) i64 {
entry:
  jmp head
head:
  %x = phi i64 [1, entry], [%y, latch]
  %y = phi i64 [2, entry], [%x, latch]
  %i = phi i64 [0, entry], [%i2, latch]
  %c = icmp lt %i, %n
  br %c, latch, exit
latch:
  %i2 = add %i, 1
  jmp head
exit:
  %r = mul %x, 10
  %r2 = add %r, %y
  ret %r2
}
`)
	f := m.FuncByName("f")
	Eliminate(f)
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	// Semantics checked differentially in interp-side tests; here the
	// structure must at least keep distinct slots for x and y.
	slots := 0
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpAlloca {
			slots++
		}
		return true
	})
	if slots != 3 {
		t.Errorf("slots = %d, want 3", slots)
	}
}
