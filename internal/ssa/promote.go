// Package ssa implements SSA construction: the promotion of scalar
// stack slots (allocas) to SSA registers, in the style of LLVM's
// mem2reg pass, using pruned phi placement on dominance frontiers
// (Cytron et al.). The mini-C frontend emits every local variable as
// an alloca; Promote turns the resulting load/store soup into the
// strict SSA form the paper's analyses require.
package ssa

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// Promote rewrites every promotable alloca in f into SSA values and
// removes the alloca together with its loads and stores. An alloca is
// promotable when it allocates a single scalar (integer or pointer)
// element and its address is used only as the pointer operand of loads
// and stores. Returns the number of allocas promoted.
func Promote(f *ir.Func) int {
	cfg.RemoveUnreachable(f)
	allocas := promotable(f)
	if len(allocas) == 0 {
		return 0
	}
	dt := cfg.NewDomTree(f)
	df := cfg.DominanceFrontier(f, dt)

	// Phase 1: place phis at the iterated dominance frontier of each
	// alloca's defining (storing) blocks.
	phiFor := make(map[*ir.Instr]map[*ir.Block]*ir.Instr) // alloca -> block -> phi
	for _, a := range allocas {
		phiFor[a] = make(map[*ir.Block]*ir.Instr)
		var work []*ir.Block
		inWork := make(map[*ir.Block]bool)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpStore && in.Args[1] == ir.Value(a) {
					if !inWork[b] {
						inWork[b] = true
						work = append(work, b)
					}
				}
			}
		}
		placed := make(map[*ir.Block]bool)
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fb := range df[b.Index] {
				if placed[fb] {
					continue
				}
				placed[fb] = true
				phi := &ir.Instr{
					Op:  ir.OpPhi,
					Typ: a.AllocTyp,
				}
				phi.SetName(f.FreshName(a.Name() + "."))
				fb.Insert(0, phi)
				phiFor[a][fb] = phi
				// A phi is a new definition; propagate.
				if !inWork[fb] {
					inWork[fb] = true
					work = append(work, fb)
				}
			}
		}
	}

	// Phase 2: rename along the dominator tree. Loads are not patched
	// eagerly (that would be quadratic); instead a replacement map is
	// collected and applied in one pass afterwards.
	stacks := make(map[*ir.Instr][]ir.Value) // alloca -> def stack
	replacement := make(map[ir.Value]ir.Value)
	isAlloca := make(map[ir.Value]*ir.Instr)
	for _, a := range allocas {
		isAlloca[a] = a
	}
	var rename func(b *ir.Block)
	rename = func(b *ir.Block) {
		pushed := make(map[*ir.Instr]int)
		push := func(a *ir.Instr, v ir.Value) {
			stacks[a] = append(stacks[a], v)
			pushed[a]++
		}
		top := func(a *ir.Instr) ir.Value {
			s := stacks[a]
			if len(s) == 0 {
				return &ir.Undef{Typ: a.AllocTyp}
			}
			return s[len(s)-1]
		}
		var kept []*ir.Instr
		for _, in := range b.Instrs {
			switch {
			case in.Op == ir.OpPhi:
				// A placed phi defines its alloca.
				for _, a := range allocas {
					if phiFor[a][b] == in {
						push(a, in)
					}
				}
				kept = append(kept, in)
			case in.Op == ir.OpLoad && isAlloca[in.Args[0]] != nil:
				a := isAlloca[in.Args[0]]
				replacement[in] = top(a)
				// drop the load
			case in.Op == ir.OpStore && isAlloca[in.Args[1]] != nil:
				a := isAlloca[in.Args[1]]
				push(a, in.Args[0])
				// drop the store
			case isAlloca[ir.Value(in)] != nil:
				// drop the alloca itself
			default:
				kept = append(kept, in)
			}
		}
		b.Instrs = kept
		// Fill phi operands in successors.
		for _, s := range b.Succs() {
			for _, a := range allocas {
				if phi := phiFor[a][s]; phi != nil {
					ir.AddIncoming(phi, top(a), b)
				}
			}
		}
		for _, c := range dt.Children(b) {
			rename(c)
		}
		for a, n := range pushed {
			stacks[a] = stacks[a][:len(stacks[a])-n]
		}
	}
	rename(f.Entry())

	// Resolve replacement chains (a dropped load may have been pushed
	// as the current definition before it was itself replaced) and
	// patch every operand in one pass.
	var resolve func(v ir.Value) ir.Value
	resolve = func(v ir.Value) ir.Value {
		r, ok := replacement[v]
		if !ok {
			return v
		}
		r = resolve(r)
		replacement[v] = r // path compression
		return r
	}
	f.Instrs(func(in *ir.Instr) bool {
		for i, a := range in.Args {
			in.Args[i] = resolve(a)
		}
		return true
	})

	removeDeadPhis(f)
	f.RecomputeCFG()
	return len(allocas)
}

// removeDeadPhis deletes phis whose results are used by nothing but
// other dead phis. Unpruned phi placement leaves such phis behind
// (e.g. a loop-header phi for a variable that is always reassigned
// before use); they would otherwise feed undef into interpreters and
// pollute analysis statistics.
func removeDeadPhis(f *ir.Func) {
	// Mark phis reachable from non-phi uses.
	live := make(map[*ir.Instr]bool)
	var mark func(v ir.Value)
	mark = func(v ir.Value) {
		phi, ok := v.(*ir.Instr)
		if !ok || phi.Op != ir.OpPhi || live[phi] {
			return
		}
		live[phi] = true
		for _, a := range phi.Args {
			mark(a)
		}
	}
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpPhi {
			return true
		}
		for _, a := range in.Args {
			mark(a)
		}
		return true
	})
	for _, b := range f.Blocks {
		var kept []*ir.Instr
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi && !live[in] {
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
}

// promotable returns the allocas of f that can be rewritten to SSA.
func promotable(f *ir.Func) []*ir.Instr {
	var cands []*ir.Instr
	bad := make(map[*ir.Instr]bool)
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpAlloca && in.NumElems == 1 && scalar(in.AllocTyp) {
			cands = append(cands, in)
		}
		return true
	})
	if len(cands) == 0 {
		return nil
	}
	set := make(map[ir.Value]*ir.Instr, len(cands))
	for _, a := range cands {
		set[a] = a
	}
	f.Instrs(func(in *ir.Instr) bool {
		for i, arg := range in.Args {
			a := set[arg]
			if a == nil {
				continue
			}
			ok := (in.Op == ir.OpLoad && i == 0) ||
				(in.Op == ir.OpStore && i == 1)
			if !ok {
				bad[a] = true
			}
		}
		return true
	})
	var out []*ir.Instr
	for _, a := range cands {
		if !bad[a] {
			out = append(out, a)
		}
	}
	return out
}

func scalar(t ir.Type) bool { return ir.IsInt(t) || ir.IsPtr(t) }

// VerifySSA checks the dominance property of strict SSA form: every
// use of a value is dominated by its definition. Phi uses are checked
// at the end of the corresponding incoming block. It complements the
// structural ir.Verify.
func VerifySSA(f *ir.Func) error {
	f.RecomputeCFG()
	dt := cfg.NewDomTree(f)
	pos := make(map[*ir.Instr]int)
	i := 0
	f.Instrs(func(in *ir.Instr) bool {
		pos[in] = i
		i++
		return true
	})
	check := func(user *ir.Instr, v ir.Value, atEndOf *ir.Block) error {
		def, ok := v.(*ir.Instr)
		if !ok {
			return nil // params, consts, globals, undef always dominate
		}
		if def.Blk == nil {
			return fmt.Errorf("use of detached instruction %s", def.Ref())
		}
		if atEndOf != nil {
			if !dt.Dominates(def.Blk, atEndOf) {
				return fmt.Errorf("phi use of %s not dominated (edge from %s)",
					def.Ref(), atEndOf.Name())
			}
			return nil
		}
		if def.Blk == user.Blk {
			if pos[def] >= pos[user] {
				return fmt.Errorf("%s used before defined in block %s",
					def.Ref(), user.Blk.Name())
			}
			return nil
		}
		if !dt.StrictlyDominates(def.Blk, user.Blk) {
			return fmt.Errorf("def of %s in %s does not dominate use in %s",
				def.Ref(), def.Blk.Name(), user.Blk.Name())
		}
		return nil
	}
	var err error
	f.Instrs(func(in *ir.Instr) bool {
		if !dt.Reachable(in.Blk) {
			return true
		}
		if in.Op == ir.OpPhi {
			for i, a := range in.Args {
				if e := check(in, a, in.PhiBlocks[i]); e != nil {
					err = e
					return false
				}
			}
			return true
		}
		for _, a := range in.Args {
			if e := check(in, a, nil); e != nil {
				err = e
				return false
			}
		}
		return true
	})
	return err
}
