package ssa

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// countOps returns how many instructions with the given op remain.
func countOps(f *ir.Func, op ir.Op) int {
	n := 0
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == op {
			n++
		}
		return true
	})
	return n
}

func TestPromoteStraightLine(t *testing.T) {
	m := ir.MustParse(`
func @f(i64 %a) i64 {
entry:
  %x = alloca i64, 1
  store %a, %x
  %v = load %x
  %v2 = add %v, 1
  store %v2, %x
  %v3 = load %x
  ret %v3
}
`)
	f := m.FuncByName("f")
	if n := Promote(f); n != 1 {
		t.Fatalf("promoted %d allocas, want 1", n)
	}
	if countOps(f, ir.OpAlloca) != 0 || countOps(f, ir.OpLoad) != 0 || countOps(f, ir.OpStore) != 0 {
		t.Fatalf("memory ops remain:\n%s", f)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	if err := VerifySSA(f); err != nil {
		t.Fatalf("ssa verify: %v\n%s", err, f)
	}
	// The returned value must be the add.
	ret := f.Blocks[0].Term()
	add, ok := ret.Args[0].(*ir.Instr)
	if !ok || add.Op != ir.OpAdd {
		t.Fatalf("ret operand = %v, want the add", ret.Args[0])
	}
}

func TestPromoteDiamondPhi(t *testing.T) {
	m := ir.MustParse(`
func @f(i64 %a, i64 %b) i64 {
entry:
  %x = alloca i64, 1
  %c = icmp lt %a, %b
  br %c, then, else
then:
  store %a, %x
  jmp join
else:
  store %b, %x
  jmp join
join:
  %v = load %x
  ret %v
}
`)
	f := m.FuncByName("f")
	Promote(f)
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	if err := VerifySSA(f); err != nil {
		t.Fatalf("ssa verify: %v\n%s", err, f)
	}
	// join must now begin with a phi merging %a and %b.
	var join *ir.Block
	for _, b := range f.Blocks {
		if b.Name() == "join" {
			join = b
		}
	}
	phis := join.Phis()
	if len(phis) != 1 {
		t.Fatalf("join has %d phis, want 1:\n%s", len(phis), f)
	}
	got := map[string]bool{}
	for _, a := range phis[0].Args {
		got[a.Name()] = true
	}
	if !got["a"] || !got["b"] {
		t.Errorf("phi args = %v, want {a, b}", phis[0].Args)
	}
}

func TestPromoteLoop(t *testing.T) {
	// i = 0; while (i < n) i = i + 1; return i
	m := ir.MustParse(`
func @f(i64 %n) i64 {
entry:
  %i = alloca i64, 1
  store 0, %i
  jmp head
head:
  %v = load %i
  %c = icmp lt %v, %n
  br %c, body, exit
body:
  %v2 = load %i
  %v3 = add %v2, 1
  store %v3, %i
  jmp head
exit:
  %r = load %i
  ret %r
}
`)
	f := m.FuncByName("f")
	Promote(f)
	if err := VerifySSA(f); err != nil {
		t.Fatalf("ssa verify: %v\n%s", err, f)
	}
	if countOps(f, ir.OpPhi) != 1 {
		t.Fatalf("want exactly 1 phi in loop header:\n%s", f)
	}
	if countOps(f, ir.OpLoad)+countOps(f, ir.OpStore)+countOps(f, ir.OpAlloca) != 0 {
		t.Fatalf("memory ops remain:\n%s", f)
	}
}

func TestPromoteSkipsEscaping(t *testing.T) {
	// The alloca's address escapes into a call and a GEP: must stay.
	m := ir.MustParse(`
func @f(i64 %n) i64 {
entry:
  %x = alloca i64, 1
  %arr = alloca i64, 10
  %q = gep %x, 1
  %z = call i64 @ext(%x)
  %v = load %x
  ret %v
}
`)
	f := m.FuncByName("f")
	if n := Promote(f); n != 0 {
		t.Fatalf("promoted %d allocas, want 0", n)
	}
	if countOps(f, ir.OpAlloca) != 2 {
		t.Errorf("allocas disappeared:\n%s", f)
	}
}

func TestPromoteSkipsArrays(t *testing.T) {
	m := ir.MustParse(`
func @f() i64 {
entry:
  %arr = alloca i64, 4
  %p = gep %arr, 2
  store 7, %p
  %v = load %p
  ret %v
}
`)
	f := m.FuncByName("f")
	if n := Promote(f); n != 0 {
		t.Fatalf("promoted %d allocas, want 0", n)
	}
}

func TestPromotePointerSlot(t *testing.T) {
	// A pointer-typed local (int *p) is itself promotable.
	m := ir.MustParse(`
func @f(i64* %v, i64 %i) i64 {
entry:
  %p = alloca i64*, 1
  %e = gep %v, %i
  store %e, %p
  %pv = load %p
  %x = load %pv
  ret %x
}
`)
	f := m.FuncByName("f")
	if n := Promote(f); n != 1 {
		t.Fatalf("promoted %d allocas, want 1", n)
	}
	if err := VerifySSA(f); err != nil {
		t.Fatalf("ssa verify: %v\n%s", err, f)
	}
	// Exactly one load remains: the dereference of the element pointer.
	if countOps(f, ir.OpLoad) != 1 {
		t.Fatalf("want 1 remaining load:\n%s", f)
	}
}

func TestPromoteUndefOnUninitialized(t *testing.T) {
	m := ir.MustParse(`
func @f(i64 %a) i64 {
entry:
  %x = alloca i64, 1
  %v = load %x
  ret %v
}
`)
	f := m.FuncByName("f")
	Promote(f)
	ret := f.Blocks[0].Term()
	if _, ok := ret.Args[0].(*ir.Undef); !ok {
		t.Errorf("load before store should become undef, got %v", ret.Args[0])
	}
}

func TestPromoteRemovesUnreachable(t *testing.T) {
	m := ir.MustParse(`
func @f(i64 %a) i64 {
entry:
  %x = alloca i64, 1
  store %a, %x
  %v = load %x
  ret %v
dead:
  jmp dead2
dead2:
  jmp dead
}
`)
	f := m.FuncByName("f")
	Promote(f)
	if len(f.Blocks) != 1 {
		t.Errorf("unreachable blocks remain: %d blocks", len(f.Blocks))
	}
	if err := VerifySSA(f); err != nil {
		t.Fatalf("ssa verify: %v", err)
	}
}

func TestVerifySSACatchesViolation(t *testing.T) {
	m := ir.MustParse(`
func @f(i64 %a, i64 %b) i64 {
entry:
  %c = icmp lt %a, %b
  br %c, then, join
then:
  %x = add %a, 1
  jmp join
join:
  ret %a
}
`)
	f := m.FuncByName("f")
	if err := VerifySSA(f); err != nil {
		t.Fatalf("valid function rejected: %v", err)
	}
	// Break it: make the ret use %x, which does not dominate join.
	var x *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpAdd {
			x = in
		}
		return true
	})
	ret := f.Blocks[2].Term()
	ret.Args = []ir.Value{x}
	err := VerifySSA(f)
	if err == nil {
		t.Fatal("dominance violation not detected")
	}
	if !strings.Contains(err.Error(), "dominate") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestPromoteTwoVariablesInterleaved(t *testing.T) {
	// Paper Figure 1(a) inner pattern: i and j both promoted, swap via tmp.
	m := ir.MustParse(`
func @f(i64 %a, i64 %b) i64 {
entry:
  %i = alloca i64, 1
  %j = alloca i64, 1
  %t = alloca i64, 1
  store %a, %i
  store %b, %j
  %vi = load %i
  store %vi, %t
  %vj = load %j
  store %vj, %i
  %vt = load %t
  store %vt, %j
  %ri = load %i
  %rj = load %j
  %s = add %ri, %rj
  ret %s
}
`)
	f := m.FuncByName("f")
	if n := Promote(f); n != 3 {
		t.Fatalf("promoted %d, want 3", n)
	}
	if err := VerifySSA(f); err != nil {
		t.Fatalf("ssa verify: %v\n%s", err, f)
	}
	// After swap, i holds %b and j holds %a: the add must see (b, a).
	var add *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpAdd {
			add = in
		}
		return true
	})
	if add.Args[0].Name() != "b" || add.Args[1].Name() != "a" {
		t.Errorf("swap miscompiled: add(%s, %s), want add(b, a)",
			add.Args[0].Name(), add.Args[1].Name())
	}
}
