package budget

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilTrackerIsUnlimited(t *testing.T) {
	b := Spec{}.Start(context.Background())
	if b != nil {
		t.Fatalf("unlimited spec with plain context should yield a nil tracker, got %v", b)
	}
	for i := 0; i < 10_000; i++ {
		if err := b.Tick(); err != nil {
			t.Fatalf("nil tracker ticked out: %v", err)
		}
	}
	if b.Err() != nil || b.Steps() != 0 || b.Check() != nil {
		t.Fatal("nil tracker must report no consumption and no error")
	}
}

func TestStepLimit(t *testing.T) {
	b := Spec{MaxSteps: 5}.Start(context.Background())
	for i := 0; i < 5; i++ {
		if err := b.Tick(); err != nil {
			t.Fatalf("tick %d failed early: %v", i, err)
		}
	}
	err := b.Tick()
	if !errors.Is(err, ErrExceeded) {
		t.Fatalf("step 6 should exceed: %v", err)
	}
	// Exhaustion is sticky.
	if err2 := b.Tick(); !errors.Is(err2, ErrExceeded) {
		t.Fatalf("exhaustion not sticky: %v", err2)
	}
	if b.Err() == nil {
		t.Fatal("Err must report the recorded failure")
	}
}

func TestDeadlineCaughtOnFirstTick(t *testing.T) {
	b := Spec{Timeout: -time.Second}.Start(context.Background())
	if err := b.Tick(); !errors.Is(err, ErrExceeded) {
		t.Fatalf("already-expired deadline must fail the first tick: %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := Spec{}.Start(ctx)
	if b == nil {
		t.Fatal("cancellable context must force a real tracker")
	}
	if err := b.Tick(); err != nil {
		t.Fatalf("tick before cancel: %v", err)
	}
	cancel()
	if err := b.Check(); !errors.Is(err, ErrExceeded) {
		t.Fatalf("cancellation must surface as ErrExceeded: %v", err)
	}
}

// TestCancelClassification: a context cancellation is exhaustion
// (ErrExceeded, so every degradation path engages) AND cancellation
// (ErrCanceled, so callers can tell a user interrupt from a
// pathological input); the spec's own limits are exhaustion only.
func TestCancelClassification(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := Spec{}.Start(ctx)
	cancel()
	err := b.Tick()
	if !errors.Is(err, ErrExceeded) || !Canceled(err) {
		t.Fatalf("cancel must wrap both sentinels: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("the concrete context error must survive wrapping: %v", err)
	}
	if b.Err() == nil || !Canceled(b.Err()) {
		t.Fatalf("Err() must report the sticky cancellation: %v", b.Err())
	}

	if err := (Spec{MaxSteps: 1}).Start(context.Background()).tickTwice(); Canceled(err) {
		t.Fatalf("step-limit exhaustion misclassified as cancel: %v", err)
	}
	if err := (Spec{Timeout: -time.Second}).Start(context.Background()).Tick(); Canceled(err) {
		t.Fatalf("deadline exhaustion misclassified as cancel: %v", err)
	}
}

// tickTwice drives a tracker past a MaxSteps of 1.
func (b *B) tickTwice() error {
	b.Tick()
	return b.Tick()
}

// TestCancelCaughtMidRun: cancellation that happens while ticks are in
// flight is caught at the next throttled poll, not just on step one.
func TestCancelCaughtMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := Spec{}.Start(ctx)
	for i := 0; i < 100; i++ {
		if err := b.Tick(); err != nil {
			t.Fatalf("tick %d before cancel: %v", i, err)
		}
	}
	cancel()
	var err error
	for i := 0; i < 2*timeCheckMask+2 && err == nil; i++ {
		err = b.Tick()
	}
	if !Canceled(err) {
		t.Fatalf("cancellation not observed within a poll window: %v", err)
	}
}

func TestStepsAccounting(t *testing.T) {
	b := Spec{MaxSteps: 100}.Start(context.Background())
	for i := 0; i < 42; i++ {
		if err := b.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if b.Steps() != 42 {
		t.Fatalf("Steps() = %d, want 42", b.Steps())
	}
}
