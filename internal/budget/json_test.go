package budget

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestSpecJSONRoundTrip: marshal → unmarshal is the identity on every
// valid spec, including the zero one.
func TestSpecJSONRoundTrip(t *testing.T) {
	specs := []Spec{
		{},
		{Timeout: 250 * time.Millisecond},
		{MaxSteps: 100000},
		{Timeout: 2 * time.Second, MaxSteps: 1},
		{Timeout: time.Hour + 30*time.Minute, MaxSteps: 1 << 30},
	}
	for _, want := range specs {
		data, err := json.Marshal(want)
		if err != nil {
			t.Fatalf("marshal %+v: %v", want, err)
		}
		var got Spec
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if got != want {
			t.Errorf("round trip %s: got %+v, want %+v", data, got, want)
		}
	}
}

// TestSpecJSONWireForm pins the wire shape: duration strings, zero
// spec as {}.
func TestSpecJSONWireForm(t *testing.T) {
	data, err := json.Marshal(Spec{Timeout: 1500 * time.Millisecond, MaxSteps: 42})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"timeout":"1.5s","max_steps":42}`; string(data) != want {
		t.Errorf("wire form = %s, want %s", data, want)
	}
	data, err = json.Marshal(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{}`; string(data) != want {
		t.Errorf("zero spec wire form = %s, want %s", data, want)
	}
}

// TestSpecJSONRejects: malformed input must error and leave the
// target spec untouched.
func TestSpecJSONRejects(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"bad duration", `{"timeout":"5 parsecs"}`, "duration"},
		{"numeric timeout", `{"timeout":250}`, "cannot unmarshal"},
		{"negative steps", `{"max_steps":-1}`, "negative max_steps"},
		{"negative timeout", `{"timeout":"-3s"}`, "negative timeout"},
		{"unknown field", `{"max_step":7}`, "unknown field"},
		{"not an object", `["5s"]`, "cannot unmarshal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Spec{Timeout: time.Second, MaxSteps: 9}
			err := json.Unmarshal([]byte(tc.in), &s)
			if err == nil {
				t.Fatalf("unmarshal %s: want error, got %+v", tc.in, s)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("unmarshal %s: error %q, want mention of %q", tc.in, err, tc.wantErr)
			}
			if (s != Spec{Timeout: time.Second, MaxSteps: 9}) {
				t.Errorf("unmarshal %s: spec mutated on error: %+v", tc.in, s)
			}
		})
	}
}

// TestSpecValidate: negative limits are rejected, everything else is
// allowed (zero means unlimited).
func TestSpecValidate(t *testing.T) {
	if err := (Spec{}).Validate(); err != nil {
		t.Errorf("zero spec: %v", err)
	}
	if err := (Spec{Timeout: -time.Second}).Validate(); err == nil {
		t.Error("negative timeout passed validation")
	}
	if err := (Spec{MaxSteps: -5}).Validate(); err == nil {
		t.Error("negative max_steps passed validation")
	}
	if _, err := json.Marshal(Spec{Timeout: -time.Second}); err == nil {
		t.Error("marshal of invalid spec succeeded")
	}
}

// TestSpecClamp: limit-by-limit minimum with zero meaning unlimited.
func TestSpecClamp(t *testing.T) {
	max := Spec{Timeout: time.Second, MaxSteps: 100}
	cases := []struct {
		in, want Spec
	}{
		{Spec{}, max}, // unlimited request takes the ceiling
		{Spec{Timeout: 10 * time.Second}, Spec{Timeout: time.Second, MaxSteps: 100}},
		{Spec{Timeout: 10 * time.Millisecond, MaxSteps: 7}, Spec{Timeout: 10 * time.Millisecond, MaxSteps: 7}},
		{Spec{MaxSteps: 1000}, Spec{Timeout: time.Second, MaxSteps: 100}},
	}
	for _, tc := range cases {
		if got := tc.in.Clamp(max); got != tc.want {
			t.Errorf("%+v.Clamp(%+v) = %+v, want %+v", tc.in, max, got, tc.want)
		}
	}
	// A zero ceiling clamps nothing.
	free := Spec{Timeout: time.Minute, MaxSteps: 3}
	if got := free.Clamp(Spec{}); got != free {
		t.Errorf("Clamp(zero) = %+v, want %+v", got, free)
	}
}

// TestParseSpec: the config-loader convenience accepts the same wire
// form.
func TestParseSpec(t *testing.T) {
	s, err := ParseSpec([]byte(`{"timeout":"30ms","max_steps":3}`))
	if err != nil {
		t.Fatal(err)
	}
	if want := (Spec{Timeout: 30 * time.Millisecond, MaxSteps: 3}); s != want {
		t.Errorf("ParseSpec = %+v, want %+v", s, want)
	}
	if _, err := ParseSpec([]byte(`{"timeout":7}`)); err == nil {
		t.Error("ParseSpec accepted numeric timeout")
	}
}
