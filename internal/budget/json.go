// JSON wire form of a Spec. The daemon (internal/serve) accepts a
// per-request budget in its request body and reads the same shape
// from its config file, and flag-driven drivers build Specs directly
// — one parsed representation for all three, so a budget means the
// same thing wherever it is written down.
//
// The wire form spells the timeout as a Go duration string:
//
//	{"timeout":"250ms","max_steps":100000}
//
// Both fields are optional; an absent field means "unlimited", like
// the zero Spec. Unknown fields are rejected — a misspelled
// "max_step" in a config file must fail loudly, not silently lift a
// limit.
package budget

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// specWire is the JSON shape of a Spec.
type specWire struct {
	Timeout  string `json:"timeout,omitempty"`
	MaxSteps int    `json:"max_steps,omitempty"`
}

// MarshalJSON renders s in the wire form. The zero Spec marshals to
// {} so configs that leave budgets unlimited stay visibly empty.
func (s Spec) MarshalJSON() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	w := specWire{MaxSteps: s.MaxSteps}
	if s.Timeout != 0 {
		w.Timeout = s.Timeout.String()
	}
	return json.Marshal(w)
}

// UnmarshalJSON parses the wire form, rejecting unknown fields,
// malformed durations, and negative limits. On error *s is left
// unchanged, so a half-parsed budget can never leak into a request.
func (s *Spec) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w specWire
	if err := dec.Decode(&w); err != nil {
		return fmt.Errorf("budget spec: %w", err)
	}
	out := Spec{MaxSteps: w.MaxSteps}
	if w.Timeout != "" {
		d, err := time.ParseDuration(w.Timeout)
		if err != nil {
			return fmt.Errorf("budget spec: %w", err)
		}
		out.Timeout = d
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*s = out
	return nil
}

// Validate rejects limits that cannot describe an intended budget: a
// negative timeout (Limited treats it as an already-passed deadline,
// which no one writes in a config on purpose) or a negative step cap.
func (s Spec) Validate() error {
	if s.Timeout < 0 {
		return fmt.Errorf("budget spec: negative timeout %s", s.Timeout)
	}
	if s.MaxSteps < 0 {
		return fmt.Errorf("budget spec: negative max_steps %d", s.MaxSteps)
	}
	return nil
}

// Clamp returns the tighter of s and max, limit by limit: a zero
// (unlimited) limit on either side defers to the other. Servers use
// it to cap client-supplied budgets by their configured ceiling.
func (s Spec) Clamp(max Spec) Spec {
	out := s
	if max.Timeout > 0 && (out.Timeout == 0 || out.Timeout > max.Timeout) {
		out.Timeout = max.Timeout
	}
	if max.MaxSteps > 0 && (out.MaxSteps == 0 || out.MaxSteps > max.MaxSteps) {
		out.MaxSteps = max.MaxSteps
	}
	return out
}

// ParseSpec parses the wire form from a byte slice, a convenience
// for config loaders.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, err
	}
	return s, nil
}
