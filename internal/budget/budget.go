// Package budget bounds the work an analysis stage may perform. The
// fixed-point solvers in internal/core, internal/rangeanal and
// internal/andersen all terminate in theory, but the hardened
// pipeline (internal/harness) must also survive pathological inputs
// in practice: a Spec caps a solver run by wall-clock deadline,
// context cancellation, and an abstract step count, and the solver
// polls the tracker once per unit of work. Exhaustion is reported as
// an error wrapping ErrExceeded; the solver then abandons the run and
// returns its sound conservative answer instead of looping.
package budget

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrExceeded is wrapped by every error Tick returns, so callers can
// classify exhaustion with errors.Is regardless of which limit fired.
var ErrExceeded = errors.New("analysis budget exceeded")

// ErrCanceled is additionally wrapped when the limit that fired was
// the run's context — a user interrupt or an upstream deadline —
// rather than the spec's own step or wall-clock allowance. The
// distinction matters to callers: budget exhaustion is a property of
// the input (a pathological function that degrades on every run and
// belongs in quarantine statistics), while cancellation is a property
// of this run (the work is fine and should simply be redone later),
// so checkpointing drivers must never journal a canceled result as
// completed. Errors carrying ErrCanceled still wrap ErrExceeded, so
// existing exhaustion checks keep matching.
var ErrCanceled = errors.New("analysis canceled")

// Canceled reports whether err records a context cancellation rather
// than genuine budget exhaustion.
func Canceled(err error) bool { return errors.Is(err, ErrCanceled) }

// Spec declares the limits of one analysis run. The zero value is
// unlimited.
type Spec struct {
	// Timeout is the wall-clock allowance; 0 means none.
	Timeout time.Duration
	// MaxSteps caps the number of Tick calls (solver work units);
	// 0 means none.
	MaxSteps int
}

// Limited reports whether the spec constrains anything. A negative
// Timeout counts: it is a deadline that has already passed.
func (s Spec) Limited() bool { return s.Timeout != 0 || s.MaxSteps > 0 }

// Start begins tracking a run under s. It returns nil — a valid,
// zero-overhead tracker — when neither the spec nor the context can
// ever expire.
func (s Spec) Start(ctx context.Context) *B {
	if !s.Limited() && (ctx == nil || ctx.Done() == nil) {
		return nil
	}
	b := &B{ctx: ctx, maxSteps: s.MaxSteps}
	if s.Timeout != 0 {
		b.deadline = time.Now().Add(s.Timeout)
	}
	return b
}

// B tracks consumption against a Spec. All methods are nil-receiver
// safe so solvers can thread a possibly-nil tracker unconditionally.
type B struct {
	ctx      context.Context
	deadline time.Time
	maxSteps int
	steps    int
	err      error
}

// timeCheckMask throttles the (comparatively expensive) clock and
// context polls to every 256th step, plus the very first one so an
// already-expired deadline is caught before any work happens.
const timeCheckMask = 255

// Tick consumes one step and returns a non-nil error (wrapping
// ErrExceeded) once any limit is exhausted. After the first failure
// every subsequent Tick returns the same error.
func (b *B) Tick() error {
	if b == nil {
		return nil
	}
	if b.err != nil {
		return b.err
	}
	b.steps++
	if b.maxSteps > 0 && b.steps > b.maxSteps {
		b.err = fmt.Errorf("%w: step limit %d reached", ErrExceeded, b.maxSteps)
		return b.err
	}
	if b.steps == 1 || b.steps&timeCheckMask == 0 {
		return b.Check()
	}
	return nil
}

// Check polls only the clock and the context, without consuming a
// step. Module-scope stages call it at coarse boundaries.
func (b *B) Check() error {
	if b == nil {
		return nil
	}
	if b.err != nil {
		return b.err
	}
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		b.err = fmt.Errorf("%w: deadline passed after %d steps", ErrExceeded, b.steps)
		return b.err
	}
	if b.ctx != nil {
		if err := b.ctx.Err(); err != nil {
			b.err = fmt.Errorf("%w: %w: %w", ErrExceeded, ErrCanceled, err)
			return b.err
		}
	}
	return nil
}

// Err returns the exhaustion error recorded by a previous Tick or
// Check, or nil while the budget still has headroom.
func (b *B) Err() error {
	if b == nil {
		return nil
	}
	return b.err
}

// Steps returns the number of steps consumed so far.
func (b *B) Steps() int {
	if b == nil {
		return 0
	}
	return b.steps
}
