// Package driver holds the durability plumbing shared by the
// command-line drivers: the interrupt-aware run context, the on-disk
// state directory layout (checkpoint journal + artifact store), and
// the conventional exit status for an interrupted-but-resumable run.
//
// Layout of a -state directory:
//
//	<dir>/checkpoint.wal   append-only completion journal
//
// Layout of a -persist-cache directory:
//
//	<dir>/<key>.art        one content-addressed artifact per solve
//	<dir>/quarantine/      records that failed validation at open
package driver

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro/internal/harness"
	"repro/internal/persist"
	"repro/internal/persist/journal"
)

// ExitInterrupted is the exit status of a run cut short by SIGINT or
// SIGTERM after checkpointing its progress: 128+SIGINT, the shell
// convention, so wrappers distinguish "rerun with -resume" from
// genuine failure.
const ExitInterrupted = 130

// SignalContext returns a context canceled by SIGINT or SIGTERM. The
// first signal starts a graceful drain (in-flight work finishes and
// is journaled); a second signal restores default handling, so it
// kills the process the traditional way.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// CheckpointPath is where OpenState puts the journal inside a state
// directory.
func CheckpointPath(dir string) string { return filepath.Join(dir, "checkpoint.wal") }

// OpenState opens dir's checkpoint journal, creating the directory if
// needed. With resume false any previous journal is discarded first —
// a fresh run must not replay another run's completions; with resume
// true the journal's records carry over and completed work is
// skipped.
func OpenState(dir string, resume bool) (*journal.Checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := CheckpointPath(dir)
	if !resume {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
	}
	return journal.OpenCheckpoint(path)
}

// OpenCache builds the memo cache the -cache/-persist-cache flags ask
// for: nil when neither is set, in-memory for plain -cache, and
// store-backed when a directory is given (the store is opened or
// created, corrupt records quarantined).
func OpenCache(inMemory bool, dir string) (*harness.Cache, error) {
	if dir == "" {
		if !inMemory {
			return nil, nil
		}
		return harness.NewCache(), nil
	}
	st, err := persist.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	return harness.NewCacheWithStore(st), nil
}

// Resumable prints the canonical interrupted-run epilogue: how much
// work is durable and the exact flags that continue it.
func Resumable(prog string, completed, total int, stateDir string) {
	fmt.Fprintf(os.Stderr, "%s: interrupted; resumable at %d/%d (rerun with -state %s -resume)\n",
		prog, completed, total, stateDir)
}
