// Package driver holds the durability plumbing shared by the
// command-line drivers: the interrupt-aware run context, the on-disk
// state directory layout (checkpoint journal + artifact store), and
// the conventional exit status for an interrupted-but-resumable run.
//
// Layout of a -state directory:
//
//	<dir>/checkpoint.wal   append-only completion journal
//
// Layout of a -persist-cache directory:
//
//	<dir>/<key>.art        one content-addressed artifact per solve
//	<dir>/quarantine/      records that failed validation at open
package driver

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"

	"repro/internal/harness"
	"repro/internal/persist"
	"repro/internal/persist/journal"
	"repro/internal/persist/remote"
)

// ExitInterrupted is the exit status of a run cut short by SIGINT or
// SIGTERM after checkpointing its progress: 128+SIGINT, the shell
// convention, so wrappers distinguish "rerun with -resume" from
// genuine failure.
const ExitInterrupted = 130

var (
	sigMu     sync.Mutex
	sigCtx    context.Context
	sigCancel context.CancelFunc
)

// SignalContext returns a context canceled by SIGINT or SIGTERM. The
// first signal starts a graceful drain: the context is canceled,
// in-flight work finishes and is journaled, the process exits on its
// own. A second signal is the operator insisting: the process exits
// ExitInterrupted immediately, without waiting on the drain.
//
// SignalContext is idempotent: every call returns the same context
// and cancel function, so a daemon and the batch drivers embedded in
// it share one drain signal instead of racing separate handlers. The
// cancel function releases the signal handler (restoring default
// delivery) and cancels the context; callers defer it as before.
func SignalContext() (context.Context, context.CancelFunc) {
	sigMu.Lock()
	defer sigMu.Unlock()
	if sigCtx == nil {
		sigCtx, sigCancel = signalContext(notifySignals, os.Exit)
	}
	return sigCtx, sigCancel
}

// notifySignals subscribes ch to the interrupt signals and returns
// the unsubscribe function. Split out so tests can inject their own
// delivery channel.
func notifySignals(ch chan os.Signal) func() {
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return func() { signal.Stop(ch) }
}

// signalContext implements SignalContext with injectable signal
// delivery and exit, the testable core. The returned cancel is safe
// to call any number of times.
func signalContext(notify func(chan os.Signal) func(), exit func(int)) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 2)
	stop := notify(ch)
	quit := make(chan struct{})
	var once sync.Once
	release := func() {
		once.Do(func() {
			stop()
			close(quit)
			cancel()
		})
	}
	//lint:ignore goroutine body is only channel selects, cancel, and exit — no user code runs here, and a recover would have nothing sound to record before the second-signal hard exit
	go func() {
		select {
		case <-ch: // first signal: begin graceful drain
		case <-quit: // caller finished without a signal
			return
		}
		cancel()
		select {
		case <-ch: // second signal: the operator wants out now
			exit(ExitInterrupted)
		case <-quit:
		}
	}()
	return ctx, release
}

// CheckpointPath is where OpenState puts the journal inside a state
// directory.
func CheckpointPath(dir string) string { return filepath.Join(dir, "checkpoint.wal") }

// OpenState opens dir's checkpoint journal, creating the directory if
// needed. With resume false any previous journal is discarded first —
// a fresh run must not replay another run's completions; with resume
// true the journal's records carry over and completed work is
// skipped.
func OpenState(dir string, resume bool) (*journal.Checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := CheckpointPath(dir)
	if !resume {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
	}
	return journal.OpenCheckpoint(path)
}

// OpenCache builds the memo cache the -cache/-persist-cache flags ask
// for: nil when neither is set, in-memory for plain -cache, and
// store-backed when a directory is given (the store is opened or
// created, corrupt records quarantined).
func OpenCache(inMemory bool, dir string) (*harness.Cache, error) {
	if dir == "" {
		if !inMemory {
			return nil, nil
		}
		return harness.NewCache(), nil
	}
	st, err := persist.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	return harness.NewCacheWithStore(st), nil
}

// OpenCacheRemote builds a memo cache whose durable tier is the
// artifact store served at baseURL (see cmd/sraastore), with localDir
// (optional, "" to skip) as the local tier consulted first, promoted
// into on remote hits, and fallen back to while the store is down.
// baseURL may be a comma-separated list of endpoints — a replica set;
// the client fails over down the list when the preferred endpoint's
// breaker opens and follows 421 redirects to the current primary.
// faultSpec, when non-empty, injects deterministic client-side
// network chaos (see remote.ParseFaultSpec) — test plumbing only.
// The returned client is also the cache's backend; drivers keep it to
// print its stats epilogue.
func OpenCacheRemote(baseURL, localDir, faultSpec string) (*harness.Cache, *remote.Client, error) {
	var local *persist.Store
	if localDir != "" {
		st, err := persist.OpenStore(localDir)
		if err != nil {
			return nil, nil, err
		}
		local = st
	}
	fault, err := remote.ParseFaultSpec(faultSpec)
	if err != nil {
		return nil, nil, err
	}
	var endpoints []string
	for _, u := range strings.Split(baseURL, ",") {
		if u = strings.TrimSpace(u); u != "" {
			endpoints = append(endpoints, u)
		}
	}
	if len(endpoints) == 0 {
		return nil, nil, fmt.Errorf("driver: remote store URL list is empty")
	}
	client := remote.NewClient(remote.Options{
		Endpoints: endpoints,
		Local:     local,
		Transport: fault.Transport(nil),
	})
	return harness.NewCacheWithBackend(client), client, nil
}

// Resumable prints the canonical interrupted-run epilogue: how much
// work is durable and the exact flags that continue it.
func Resumable(prog string, completed, total int, stateDir string) {
	fmt.Fprintf(os.Stderr, "%s: interrupted; resumable at %d/%d (rerun with -state %s -resume)\n",
		prog, completed, total, stateDir)
}
