package driver

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/persist/journal"
)

// shardItems is the deterministic per-shard work both test workers
// share: every shard journals its own key set, values a pure function
// of the key.
func shardItems(shard int) []string {
	out := make([]string, 3)
	for k := range out {
		out[k] = fmt.Sprintf("item-%d-%d", shard, k)
	}
	return out
}

func journalShard(ck *journal.Checkpoint, shard int) error {
	for _, name := range shardItems(shard) {
		if _, done := ck.Done(name); done {
			continue
		}
		if err := ck.Record(name, map[string]int{"shard": shard}); err != nil {
			return err
		}
	}
	return nil
}

// TestShardWorkersPartitionAndMerge: two concurrent workers over six
// shards must finish them all exactly once and the merge must hold
// every item.
func TestShardWorkersPartitionAndMerge(t *testing.T) {
	dir := t.TempDir()
	const shards = 6
	run := func(ctx context.Context, shard int, ck *journal.Checkpoint) error {
		time.Sleep(10 * time.Millisecond) // let the workers interleave
		return journalShard(ck, shard)
	}

	var wg sync.WaitGroup
	reps := make([]ShardWorkerReport, 2)
	errs := make([]error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			reps[w], errs[w] = RunShardWorker(context.Background(), dir,
				fmt.Sprintf("worker-%d", w), shards, time.Second, run)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if !AllShardsDone(dir, shards) {
		t.Fatal("shards incomplete after both workers returned")
	}
	if got := len(reps[0].Completed) + len(reps[1].Completed); got != shards {
		t.Fatalf("%d shard completions across workers, want %d", got, shards)
	}

	merged, err := MergeShardCheckpoints(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < shards; s++ {
		for _, name := range shardItems(s) {
			if _, ok := merged[name]; !ok {
				t.Fatalf("merge missing %s", name)
			}
		}
	}
}

// TestShardWorkerStealsExpiredLease: a shard whose holder went silent
// (lease expired, WAL unlocked — i.e. the process died) must be
// stolen and finished by the next worker.
func TestShardWorkerStealsExpiredLease(t *testing.T) {
	dir := t.TempDir()
	const shards = 2

	// Simulate the dead worker: it claimed shard 0 with a tiny TTL,
	// journaled one item, and died without renewing or releasing.
	if err := os.MkdirAll(ShardStateDir(dir), 0o755); err != nil {
		t.Fatal(err)
	}
	dead, err := journal.AcquireLease(ShardLeasePath(dir, 0), 0, "dead-worker", 10*time.Millisecond)
	if err != nil || dead == nil {
		t.Fatalf("dead worker claim: %v %v", dead, err)
	}
	ck, err := journal.OpenCheckpoint(ShardWALPath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Record(shardItems(0)[0], map[string]int{"shard": 0}); err != nil {
		t.Fatal(err)
	}
	ck.Close() // the kernel would drop the flock on SIGKILL
	time.Sleep(30 * time.Millisecond)

	var recomputed int
	rep, err := RunShardWorker(context.Background(), dir, "survivor", shards, 200*time.Millisecond,
		func(ctx context.Context, shard int, ck *journal.Checkpoint) error {
			for _, name := range shardItems(shard) {
				if _, done := ck.Done(name); done {
					continue // replayed from the dead worker's WAL
				}
				recomputed++
				if err := ck.Record(name, map[string]int{"shard": shard}); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steals != 1 {
		t.Fatalf("steals = %d, want 1", rep.Steals)
	}
	// The dead worker's journaled item must have been replayed, not
	// redone: shard 0 recomputes 2 of 3, shard 1 all 3.
	if recomputed != 5 {
		t.Fatalf("recomputed %d items, want 5 (one survived in the stolen WAL)", recomputed)
	}
	if !AllShardsDone(dir, shards) {
		t.Fatal("shards incomplete")
	}
}

// TestShardWorkerBacksOffFromFlockedWAL: an expired lease whose WAL
// is still flocked marks a paused (not dead) holder — the thief must
// back off, not break in.
func TestShardWorkerBacksOffFromFlockedWAL(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(ShardStateDir(dir), 0o755); err != nil {
		t.Fatal(err)
	}
	paused, err := journal.AcquireLease(ShardLeasePath(dir, 0), 0, "paused-worker", 10*time.Millisecond)
	if err != nil || paused == nil {
		t.Fatal(err)
	}
	ck, err := journal.OpenCheckpoint(ShardWALPath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close() // held open for the whole test: the holder is paused, not dead
	time.Sleep(30 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	rep, err := RunShardWorker(ctx, dir, "thief", 1, 100*time.Millisecond,
		func(ctx context.Context, shard int, ck *journal.Checkpoint) error {
			t.Error("runner reached a flocked shard")
			return nil
		})
	if err == nil {
		t.Fatal("worker finished a shard whose WAL is held elsewhere")
	}
	if rep.Blocked == 0 {
		t.Fatalf("no blocked claims recorded: %+v", rep)
	}
	if ShardDone(dir, 0) {
		t.Fatal("flocked shard marked done")
	}
}

// TestMergeWhileIncomplete: the coordinator's merge is read-only and
// partial-safe — it returns whatever is durable without touching the
// in-progress WALs.
func TestMergeWhileIncomplete(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(ShardStateDir(dir), 0o755); err != nil {
		t.Fatal(err)
	}
	ck, err := journal.OpenCheckpoint(ShardWALPath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if err := ck.Record("only-item", 1); err != nil {
		t.Fatal(err)
	}

	merged, err := MergeShardCheckpoints(dir, 3) // shards 1,2 have no WAL yet
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 1 {
		t.Fatalf("partial merge = %d entries, want 1", len(merged))
	}
	if AllShardsDone(dir, 3) {
		t.Fatal("incomplete sweep reported done")
	}
}
