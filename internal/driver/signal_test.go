package driver

import (
	"os"
	"syscall"
	"testing"
	"time"
)

// fakeNotify returns a notify function for signalContext that hands
// the delivery channel to the test instead of subscribing to real OS
// signals, plus the channels to drive and observe it.
func fakeNotify() (notify func(chan os.Signal) func(), deliver func(os.Signal) bool, stopped chan struct{}) {
	var ch chan os.Signal
	stopped = make(chan struct{}, 1)
	notify = func(c chan os.Signal) func() {
		ch = c
		return func() { stopped <- struct{}{} }
	}
	deliver = func(s os.Signal) bool {
		select {
		case ch <- s:
			return true
		case <-time.After(50 * time.Millisecond):
			return false
		}
	}
	return notify, deliver, stopped
}

// TestSignalContextFirstCancelsSecondExits: signal one → context
// canceled, no exit; signal two → hard exit with ExitInterrupted.
func TestSignalContextFirstCancelsSecondExits(t *testing.T) {
	notify, deliver, _ := fakeNotify()
	exited := make(chan int, 1)
	ctx, cancel := signalContext(notify, func(code int) { exited <- code })
	defer cancel()

	select {
	case <-ctx.Done():
		t.Fatal("context canceled before any signal")
	default:
	}

	deliver(syscall.SIGTERM)
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("first signal did not cancel the context")
	}
	select {
	case code := <-exited:
		t.Fatalf("first signal exited the process (code %d)", code)
	case <-time.After(50 * time.Millisecond):
	}

	deliver(syscall.SIGINT)
	select {
	case code := <-exited:
		if code != ExitInterrupted {
			t.Fatalf("second signal exited %d, want %d", code, ExitInterrupted)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second signal did not force an exit")
	}
}

// TestSignalContextCancelReleases: canceling before any signal
// unsubscribes and stops the watcher; a signal delivered afterwards
// must not exit the process. Cancel is safe to call repeatedly.
func TestSignalContextCancelReleases(t *testing.T) {
	notify, deliver, stopped := fakeNotify()
	exited := make(chan int, 1)
	ctx, cancel := signalContext(notify, func(code int) { exited <- code })

	cancel()
	cancel() // idempotent: second call is a no-op, not a double-release
	select {
	case <-stopped:
	case <-time.After(2 * time.Second):
		t.Fatal("cancel did not release the signal subscription")
	}
	if ctx.Err() == nil {
		t.Fatal("cancel did not cancel the context")
	}
	// Delivery is stopped: a late signal may or may not be buffered,
	// but it must never reach exit.
	deliver(syscall.SIGTERM)
	select {
	case code := <-exited:
		t.Fatalf("signal after cancel exited the process (code %d)", code)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestSignalContextDrainThenCancelNoExit: after the first signal a
// clean drain calls cancel; a stale second signal arriving after that
// release must not kill the (already exiting) process via exit.
func TestSignalContextDrainThenCancelNoExit(t *testing.T) {
	notify, deliver, _ := fakeNotify()
	exited := make(chan int, 1)
	ctx, cancel := signalContext(notify, func(code int) { exited <- code })

	deliver(syscall.SIGTERM)
	<-ctx.Done()
	cancel() // drain complete
	deliver(syscall.SIGTERM)
	select {
	case code := <-exited:
		t.Fatalf("signal after completed drain exited the process (code %d)", code)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestSignalContextIdempotent: every call shares one context, so a
// daemon and the batch drivers embedded in it observe the same drain
// signal instead of racing separate handlers.
func TestSignalContextIdempotent(t *testing.T) {
	ctx1, cancel1 := SignalContext()
	defer cancel1()
	ctx2, cancel2 := SignalContext()
	defer cancel2()
	if ctx1 != ctx2 {
		t.Error("SignalContext returned distinct contexts")
	}
	// Releasing through either handle cancels both views — they are
	// the same context.
	cancel2()
	if ctx1.Err() == nil {
		t.Error("shared context not canceled through second handle")
	}
}
