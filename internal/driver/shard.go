package driver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/persist"
	"repro/internal/persist/journal"
)

// Multi-process sweep coordination. A sweep's items are partitioned
// into shards; each shard owns one checkpoint WAL and one lease file
// under <state>/shards/. Worker processes claim shards through leases
// (heartbeat-renewed, stealable after expiry — see journal.Lease),
// journal per-item completions into the shard WAL exactly as a
// single-process run would, and mark the shard done when every item
// is durable. A coordinator merges the shard WALs read-only.
//
// Crash semantics, layer by layer:
//
//   - SIGKILL a worker: its flock on the shard WAL dies with it, its
//     lease expires within the TTL, and any surviving worker steals
//     the shard, replays the WAL, and finishes the remaining items.
//     At most the in-flight items are recomputed.
//   - Pause (not kill) a worker: its lease may expire and be stolen,
//     but its flock survives, so the thief cannot open the WAL and
//     backs off; the paused worker's own heartbeat then reports
//     ErrLeaseLost and it abandons the shard. Two appenders never
//     interleave.
//   - Double-processed items: every item is a deterministic function
//     of its name and the merge is last-wins over identical values,
//     so duplicated work costs wall-clock, never a changed report.
type shardPaths struct{ dir string }

// ShardStateDir is where a state directory keeps its per-shard files.
func ShardStateDir(dir string) string { return filepath.Join(dir, "shards") }

// ShardWALPath is shard i's checkpoint journal.
func ShardWALPath(dir string, shard int) string {
	return filepath.Join(ShardStateDir(dir), fmt.Sprintf("shard-%04d.wal", shard))
}

// ShardLeasePath is shard i's claim file.
func ShardLeasePath(dir string, shard int) string {
	return filepath.Join(ShardStateDir(dir), fmt.Sprintf("shard-%04d.lease", shard))
}

// shardDonePath marks shard i fully journaled. The marker is written
// after the WAL holds every item, so a kill between the last append
// and the marker just means the next claimer replays a complete WAL
// and re-marks it.
func shardDonePath(dir string, shard int) string {
	return filepath.Join(ShardStateDir(dir), fmt.Sprintf("shard-%04d.done", shard))
}

// ShardOf assigns item i to a shard. Round-robin keeps shard sizes
// within one of each other; the merged report never depends on the
// assignment because it is keyed by item name.
func ShardOf(i, shards int) int {
	if shards < 1 {
		return 0
	}
	return i % shards
}

// ShardDone reports whether shard i has been marked complete.
func ShardDone(dir string, shard int) bool {
	_, err := os.Stat(shardDonePath(dir, shard))
	return err == nil
}

// ShardRunner processes one claimed shard: journal every outstanding
// item into ck and return nil only when the shard is fully durable.
// The context is canceled when the shard's lease is lost or the run
// is draining; a runner must stop journaling promptly then (the batch
// layer already refuses to journal cancellation-poisoned outcomes).
type ShardRunner func(ctx context.Context, shard int, ck *journal.Checkpoint) error

// ShardWorkerReport summarizes one worker's pass over the shard set.
type ShardWorkerReport struct {
	Owner     string
	Completed []int // shards this worker drove to done
	Claims    int   // leases acquired (fresh or stolen)
	Steals    int   // subset of Claims taken from an expired holder
	LeaseLost int   // shards abandoned because the lease was stolen
	Blocked   int   // claims abandoned because the WAL was still flocked
}

// RunShardWorker claims and processes shards until every shard in
// [0, shards) is done or ctx is canceled. It is the worker half of a
// multi-process sweep: run one per process, all pointed at the same
// state directory. Returns ctx.Err() when the run was cut short (the
// caller prints the resume hint), nil when all shards are done.
func RunShardWorker(ctx context.Context, dir, owner string, shards int, ttl time.Duration, run ShardRunner) (ShardWorkerReport, error) {
	rep := ShardWorkerReport{Owner: owner}
	if err := os.MkdirAll(ShardStateDir(dir), 0o755); err != nil {
		return rep, err
	}
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	poll := ttl / 4
	if poll < 25*time.Millisecond {
		poll = 25 * time.Millisecond
	}
	if poll > time.Second {
		poll = time.Second
	}

	remaining := map[int]bool{}
	for i := 0; i < shards; i++ {
		remaining[i] = true
	}
	for len(remaining) > 0 {
		if ctx.Err() != nil {
			return rep, ctx.Err()
		}
		progress := false
		// Deterministic claim order, offset by a stable hash of the
		// owner name so workers start on different shards instead of
		// stampeding shard 0.
		for _, shard := range claimOrder(remaining, owner) {
			if ctx.Err() != nil {
				return rep, ctx.Err()
			}
			if ShardDone(dir, shard) {
				delete(remaining, shard)
				progress = true
				continue
			}
			done, err := workShard(ctx, dir, owner, shard, ttl, run, &rep)
			if err != nil {
				return rep, err
			}
			if done {
				delete(remaining, shard)
				progress = true
			}
		}
		if !progress && len(remaining) > 0 {
			// Every remaining shard is held by someone else (or its WAL
			// is still flocked by a paused holder). Wait for leases to
			// expire or markers to appear — bounded by ctx.
			select {
			case <-ctx.Done():
				return rep, ctx.Err()
			case <-time.After(poll):
			}
		}
	}
	return rep, nil
}

// workShard makes one attempt at one shard: claim, process, mark.
// done=true means the shard is finished (by us or by whoever wrote
// the marker); false means it is unavailable this round.
func workShard(ctx context.Context, dir, owner string, shard int, ttl time.Duration, run ShardRunner, rep *ShardWorkerReport) (done bool, err error) {
	lease, err := journal.AcquireLease(ShardLeasePath(dir, shard), shard, owner, ttl)
	if err != nil {
		return false, err
	}
	if lease == nil {
		return false, nil // validly held elsewhere
	}
	rep.Claims++
	if lease.Epoch > 1 {
		rep.Steals++
	}
	ck, err := journal.OpenCheckpoint(ShardWALPath(dir, shard))
	if errors.Is(err, journal.ErrLocked) {
		// The previous holder is paused, not dead: its flock outlived
		// its lease. Back off — the flock is the safety layer and it
		// says the WAL is still owned.
		rep.Blocked++
		lease.Release()
		return false, nil
	}
	if err != nil {
		lease.Release()
		return false, err
	}

	// Heartbeat: renew at a third of the TTL; a lost lease cancels the
	// shard context so the runner stops journaling promptly.
	shardCtx, cancel := context.WithCancel(ctx)
	lost := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		// Containment: a heartbeat panic must abandon the shard (safe:
		// the lease just expires) rather than crash the worker.
		defer func() {
			recover()
			close(hbDone)
		}()
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-t.C:
				if rerr := lease.Renew(); rerr != nil {
					close(lost)
					cancel()
					return
				}
			}
		}
	}()

	runErr := run(shardCtx, shard, ck)
	cancel()
	<-hbDone
	ck.Close()

	select {
	case <-lost:
		rep.LeaseLost++
		return false, nil // the thief owns the shard now
	default:
	}
	if runErr != nil || ctx.Err() != nil {
		lease.Release()
		return false, nil
	}
	// Fully journaled: publish the marker, then drop the claim. The
	// marker body names the finisher for postmortems; nothing reads it.
	if err := persist.AtomicWriteFile(shardDonePath(dir, shard), []byte(owner+"\n"), 0o644); err != nil {
		lease.Release()
		return false, err
	}
	lease.Release()
	rep.Completed = append(rep.Completed, shard)
	return true, nil
}

// claimOrder returns the remaining shards rotated by a stable hash of
// owner, so concurrent workers spread across the shard space.
func claimOrder(remaining map[int]bool, owner string) []int {
	out := make([]int, 0, len(remaining))
	for s := range remaining {
		out = append(out, s)
	}
	sort.Ints(out)
	if len(out) > 1 {
		var h uint32
		for i := 0; i < len(owner); i++ {
			h = h*31 + uint32(owner[i])
		}
		r := int(h) % len(out)
		if r < 0 {
			r += len(out)
		}
		out = append(out[r:], out[:r]...)
	}
	return out
}

// MergeShardCheckpoints reads every shard WAL read-only and merges
// their records into one map. Shard WALs partition the item space, so
// the union is conflict-free; a key double-journaled by a lease race
// carries identical bytes by determinism, and last-wins replay inside
// each WAL already resolved per-shard duplicates. The coordinator
// calls this with no locks held — it works while workers still run
// (yielding a partial view) and after a crash (yielding everything
// durable).
func MergeShardCheckpoints(dir string, shards int) (map[string]json.RawMessage, error) {
	merged := map[string]json.RawMessage{}
	for s := 0; s < shards; s++ {
		m, err := journal.ReadCheckpoint(ShardWALPath(dir, s))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		for k, v := range m {
			merged[k] = v
		}
	}
	return merged, nil
}

// AllShardsDone reports whether every shard has its completion marker.
func AllShardsDone(dir string, shards int) bool {
	for s := 0; s < shards; s++ {
		if !ShardDone(dir, s) {
			return false
		}
	}
	return true
}

// ReleaseShardLeases breaks every shard lease currently held by owner
// and returns how many were freed. A supervisor calls this when it
// quarantines a crash-looping worker: the worker will not be
// restarted, so its claims should return to the pool now rather than
// after a full TTL each. Leases held by other workers are untouched.
func ReleaseShardLeases(dir string, shards int, owner string) int {
	released := 0
	for s := 0; s < shards; s++ {
		ok, err := journal.BreakLease(ShardLeasePath(dir, s), owner)
		if err == nil && ok {
			released++
		}
	}
	return released
}
