package ir

import (
	"strings"
	"testing"
)

// buildFunc assembles a single-block function from raw instructions,
// bypassing the Builder's own panics so the verifier's rejections can
// be exercised directly.
func buildFunc(t *testing.T, mk func(f *Func, b *Block)) *Func {
	t.Helper()
	m := NewModule("t")
	f := m.AddFunc("f", I64, []string{"a", "p"}, []Type{I64, Ptr(I64)})
	b := f.NewBlock("entry")
	mk(f, b)
	for _, in := range b.Instrs {
		if in.HasResult() && in.Name() == "" {
			in.SetName(f.FreshName("t"))
		}
	}
	return f
}

// TestVerifyTypeAgreement drives the verifier's type-agreement checks:
// store value vs. pointee, icmp operand agreement, and gep base
// pointer-ness, each with the accepted idioms alongside the
// rejections.
func TestVerifyTypeAgreement(t *testing.T) {
	i64p := Ptr(I64)
	cases := []struct {
		name    string
		wantSub string // empty = must verify
		mk      func(f *Func, b *Block)
	}{
		{
			"store int into int cell ok", "",
			func(f *Func, b *Block) {
				a := &Instr{Op: OpAlloca, Typ: i64p, AllocTyp: I64, NumElems: 1}
				b.Append(a)
				b.Append(&Instr{Op: OpStore, Typ: Void, Args: []Value{ConstInt(1), a}})
				b.Append(&Instr{Op: OpRet, Typ: Void, Args: []Value{ConstInt(0)}})
			},
		},
		{
			"store pointer into int cell rejected", "store value type",
			func(f *Func, b *Block) {
				a := &Instr{Op: OpAlloca, Typ: i64p, AllocTyp: I64, NumElems: 1}
				b.Append(a)
				b.Append(&Instr{Op: OpStore, Typ: Void, Args: []Value{f.Params[1], a}})
				b.Append(&Instr{Op: OpRet, Typ: Void, Args: []Value{ConstInt(0)}})
			},
		},
		{
			"store int into pointer cell rejected", "store value type",
			func(f *Func, b *Block) {
				a := &Instr{Op: OpAlloca, Typ: Ptr(i64p), AllocTyp: i64p, NumElems: 1}
				b.Append(a)
				b.Append(&Instr{Op: OpStore, Typ: Void, Args: []Value{ConstInt(7), a}})
				b.Append(&Instr{Op: OpRet, Typ: Void, Args: []Value{ConstInt(0)}})
			},
		},
		{
			"store null into pointer cell ok", "",
			func(f *Func, b *Block) {
				a := &Instr{Op: OpAlloca, Typ: Ptr(i64p), AllocTyp: i64p, NumElems: 1}
				b.Append(a)
				b.Append(&Instr{Op: OpStore, Typ: Void, Args: []Value{ConstInt(0), a}})
				b.Append(&Instr{Op: OpRet, Typ: Void, Args: []Value{ConstInt(0)}})
			},
		},
		{
			"icmp int widths disagree rejected", "icmp operand types disagree",
			func(f *Func, b *Block) {
				c := &Instr{Op: OpICmp, Typ: I1, Pred: CmpEQ,
					Args: []Value{f.Params[0], &Const{Val: 1, Typ: I1}}}
				b.Append(c)
				b.Append(&Instr{Op: OpRet, Typ: Void, Args: []Value{ConstInt(0)}})
			},
		},
		{
			"icmp pointer vs int variable rejected", "icmp operand types disagree",
			func(f *Func, b *Block) {
				c := &Instr{Op: OpICmp, Typ: I1, Pred: CmpLT,
					Args: []Value{f.Params[1], f.Params[0]}}
				b.Append(c)
				b.Append(&Instr{Op: OpRet, Typ: Void, Args: []Value{ConstInt(0)}})
			},
		},
		{
			"icmp pointer vs null const ok", "",
			func(f *Func, b *Block) {
				c := &Instr{Op: OpICmp, Typ: I1, Pred: CmpEQ,
					Args: []Value{f.Params[1], ConstInt(0)}}
				b.Append(c)
				b.Append(&Instr{Op: OpRet, Typ: Void, Args: []Value{ConstInt(0)}})
			},
		},
		{
			"icmp null const vs pointer ok (swapped)", "",
			func(f *Func, b *Block) {
				c := &Instr{Op: OpICmp, Typ: I1, Pred: CmpNE,
					Args: []Value{ConstInt(0), f.Params[1]}}
				b.Append(c)
				b.Append(&Instr{Op: OpRet, Typ: Void, Args: []Value{ConstInt(0)}})
			},
		},
		{
			"gep base non-pointer rejected", "gep base must be pointer",
			func(f *Func, b *Block) {
				g := &Instr{Op: OpGEP, Typ: i64p,
					Args: []Value{f.Params[0], ConstInt(1)}}
				b.Append(g)
				b.Append(&Instr{Op: OpRet, Typ: Void, Args: []Value{ConstInt(0)}})
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := buildFunc(t, c.mk)
			err := VerifyFunc(f)
			if c.wantSub == "" {
				if err != nil {
					t.Fatalf("verifier rejected well-typed function: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("verifier accepted ill-typed function")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

// TestStoreConstRetypeOnParse pins the parser's post-pass: stored
// constants are parsed before the pointer operand's type is known and
// must be retyped to the pointee, so the textual forms below stay
// accepted under the strict store check.
func TestStoreConstRetypeOnParse(t *testing.T) {
	m, err := Parse(`
func @f() i64 {
entry:
  %cell = alloca i64*, 1
  store 0, %cell
  %iv = alloca i64, 1
  store 42, %iv
  store undef, %cell
  ret 0
}
`)
	if err != nil {
		t.Fatalf("null/undef store idioms rejected: %v", err)
	}
	text := m.String()
	if _, err := Parse(text); err != nil {
		t.Fatalf("reprint not reparseable: %v\n%s", err, text)
	}
}

// TestLineRoundTrip checks the !line suffix: stamped lines survive
// print→parse→print, and instructions without a line print without a
// suffix.
func TestLineRoundTrip(t *testing.T) {
	m := NewModule("t")
	f := m.AddFunc("f", I64, []string{"a"}, []Type{I64})
	bld := NewBuilder(f)
	bld.SetBlock(f.NewBlock("entry"))
	bld.SetLine(3)
	x := bld.Add(f.Params[0], ConstInt(1))
	bld.SetLine(0)
	y := bld.Add(x, ConstInt(2))
	bld.SetLine(9)
	bld.Ret(y)

	text := m.String()
	if !strings.Contains(text, "add %a, 1 !line 3") {
		t.Errorf("line suffix missing:\n%s", text)
	}
	if strings.Contains(text, "add %t0, 2 !line") {
		t.Errorf("unstamped instruction grew a line suffix:\n%s", text)
	}
	m2, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.String(); got != text {
		t.Errorf("line round trip unstable:\n%s\nvs\n%s", text, got)
	}
	var lines []int
	m2.Funcs[0].Instrs(func(in *Instr) bool {
		lines = append(lines, in.Line)
		return true
	})
	want := []int{3, 0, 9}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("instr %d: Line = %d, want %d", i, lines[i], want[i])
		}
	}
}

// TestLineParseErrors covers the malformed !line forms.
func TestLineParseErrors(t *testing.T) {
	for _, c := range []struct{ name, src, wantSub string }{
		{"bang junk", "func @f() i64 {\nentry:\n  ret 0 !bogus 3\n}", "expected 'line'"},
		{"missing number", "func @f() i64 {\nentry:\n  ret 0 !line x\n}", "line number"},
		{"negative number", "func @f() i64 {\nentry:\n  ret 0 !line -4\n}", "line number"},
	} {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatal("malformed !line accepted")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}
