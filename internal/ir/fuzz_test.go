package ir_test

import (
	"testing"

	"repro/internal/ir"
)

// FuzzParse hardens the textual-IR parser against arbitrary input: it
// must never panic, and whenever it accepts a module, the printed form
// must reparse to the same text (print∘parse is a projection). Seeds
// live in testdata/fuzz/FuzzParse alongside the f.Add literals.
func FuzzParse(f *testing.F) {
	f.Add(`module "m"

func @main() i64 {
entry:
  ret 0
}
`)
	f.Add(`module "esc \"q\" \\"

global @g [4 x i64]

func @main() i64 {
entry:
  %p = gep @g, 0
  %v = load %p
  ret %v
}
`)
	f.Add(`func @f(%x i64) i64 {
entry:
  %c = icmp lt %x, 10
  br %c, a, b
a:
  %s = sigma %x, %c, true, 0
  jmp b
b:
  %r = phi i64 [%x, entry], [%s, a]
  ret %r
}
`)
	f.Add("module \"\x00\"")
	f.Add("func @main() i64 {\nentry:\n  ret undef\n}\n")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ir.Parse(src)
		if err != nil {
			return
		}
		text := m.String()
		m2, err := ir.Parse(text)
		if err != nil {
			t.Fatalf("accepted module does not reparse: %v\ninput:\n%q\nprinted:\n%s", err, src, text)
		}
		if got := m2.String(); got != text {
			t.Fatalf("print not a fixpoint:\n--- first ---\n%s--- second ---\n%s", text, got)
		}
	})
}
