package ir

import (
	"fmt"
)

// Verify checks structural well-formedness of a module: every block
// ends in exactly one terminator, terminators appear only at block
// ends, phi instructions sit at block heads and match their block's
// predecessors, operand types are consistent, and no operand is left
// unresolved. It does not check the SSA dominance property; that
// requires a dominator tree and lives in internal/ssa.
func Verify(m *Module) error {
	for _, f := range m.Funcs {
		if err := VerifyFunc(f); err != nil {
			return fmt.Errorf("func @%s: %w", f.FName, err)
		}
	}
	return nil
}

// VerifyFunc checks structural well-formedness of a single function.
func VerifyFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("function has no blocks")
	}
	f.RecomputeCFG()
	defined := map[string]bool{}
	for _, p := range f.Params {
		if defined[p.PName] {
			return fmt.Errorf("duplicate parameter %%%s", p.PName)
		}
		defined[p.PName] = true
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %s is empty", b.Name())
		}
		for i, in := range b.Instrs {
			if in.Blk != b {
				return fmt.Errorf("block %s: instruction %s has wrong parent", b.Name(), in)
			}
			isLast := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != isLast {
				if isLast {
					return fmt.Errorf("block %s does not end in a terminator", b.Name())
				}
				return fmt.Errorf("block %s: terminator %s in mid-block", b.Name(), in)
			}
			if err := verifyInstr(in); err != nil {
				return fmt.Errorf("block %s: %s: %w", b.Name(), in, err)
			}
			if in.HasResult() {
				if in.Name() == "" {
					return fmt.Errorf("block %s: unnamed result in %s", b.Name(), in)
				}
				if defined[in.Name()] {
					return fmt.Errorf("block %s: %%%s defined twice (SSA violation)", b.Name(), in.Name())
				}
				defined[in.Name()] = true
			}
		}
		// Phis must be at the head, before sigmas and ordinary
		// instructions; sigmas before ordinary instructions.
		state := 0 // 0 = phis, 1 = sigmas, 2 = rest
		for _, in := range b.Instrs {
			switch in.Op {
			case OpPhi:
				if state > 0 {
					return fmt.Errorf("block %s: phi %s after non-phi", b.Name(), in.Ref())
				}
			case OpSigma:
				if state > 1 {
					return fmt.Errorf("block %s: sigma %s after ordinary instruction", b.Name(), in.Ref())
				}
				state = 1
			default:
				state = 2
			}
		}
		// Phi incoming blocks must exactly match predecessors.
		for _, phi := range b.Phis() {
			if len(phi.Args) != len(b.Preds) {
				return fmt.Errorf("block %s: phi %s has %d incoming, block has %d preds",
					b.Name(), phi.Ref(), len(phi.Args), len(b.Preds))
			}
			for _, pb := range phi.PhiBlocks {
				found := false
				for _, pred := range b.Preds {
					if pred == pb {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("block %s: phi %s names non-predecessor %s",
						b.Name(), phi.Ref(), pb.Name())
				}
			}
		}
	}
	return nil
}

func verifyInstr(in *Instr) error {
	for i, a := range in.Args {
		if a == nil {
			return fmt.Errorf("operand %d is nil", i)
		}
		if ai, ok := a.(*Instr); ok && ai == nil {
			return fmt.Errorf("operand %d is an unresolved placeholder", i)
		}
	}
	argc := func(n int) error {
		if len(in.Args) != n {
			return fmt.Errorf("expected %d operands, got %d", n, len(in.Args))
		}
		return nil
	}
	switch in.Op {
	case OpAlloca:
		if in.AllocTyp == nil || in.NumElems <= 0 {
			return fmt.Errorf("bad alloca shape")
		}
		return argc(0)
	case OpMalloc:
		if err := argc(1); err != nil {
			return err
		}
		if !IsInt(in.Args[0].Type()) {
			return fmt.Errorf("malloc size must be integer")
		}
	case OpLoad:
		if err := argc(1); err != nil {
			return err
		}
		pt, ok := in.Args[0].Type().(*PtrType)
		if !ok {
			return fmt.Errorf("load from non-pointer")
		}
		if !Equal(loadableElem(pt), in.Typ) {
			return fmt.Errorf("load type %s does not match pointee %s", in.Typ, pt.Elem)
		}
	case OpStore:
		if err := argc(2); err != nil {
			return err
		}
		pt, ok := in.Args[1].Type().(*PtrType)
		if !ok {
			return fmt.Errorf("store to non-pointer")
		}
		if !Equal(in.Args[0].Type(), pt.Elem) && !isNullConstFor(in.Args[0], pt.Elem) {
			return fmt.Errorf("store value type %s does not match pointee %s",
				in.Args[0].Type(), pt.Elem)
		}
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr:
		if err := argc(2); err != nil {
			return err
		}
		if !IsInt(in.Typ) {
			return fmt.Errorf("arithmetic result must be integer")
		}
	case OpICmp:
		if err := argc(2); err != nil {
			return err
		}
		if !Equal(in.Typ, I1) {
			return fmt.Errorf("icmp result must be i1")
		}
		at, bt := in.Args[0].Type(), in.Args[1].Type()
		if !Equal(at, bt) && !icmpNullMix(in.Args[0], in.Args[1]) {
			return fmt.Errorf("icmp operand types disagree: %s vs %s", at, bt)
		}
	case OpGEP:
		if err := argc(2); err != nil {
			return err
		}
		rt := GEPResultType(in.Args[0].Type())
		if rt == nil {
			return fmt.Errorf("gep base must be pointer")
		}
		if !Equal(in.Typ, rt) {
			return fmt.Errorf("gep result type %s, want %s", in.Typ, rt)
		}
		if !IsInt(in.Args[1].Type()) {
			return fmt.Errorf("gep index must be integer")
		}
	case OpPhi:
		if len(in.Args) == 0 || len(in.Args) != len(in.PhiBlocks) {
			return fmt.Errorf("phi operand/block mismatch")
		}
	case OpSigma:
		if err := argc(1); err != nil {
			return err
		}
		if in.Cmp == nil {
			return fmt.Errorf("sigma without controlling cmp")
		}
		if in.Cmp.Op != OpICmp {
			return fmt.Errorf("sigma cmp is not an icmp")
		}
	case OpCopy:
		return argc(1)
	case OpCall:
		if in.CalleeName == "" {
			return fmt.Errorf("call without callee name")
		}
		if in.Callee != nil && len(in.Callee.Params) != len(in.Args) {
			return fmt.Errorf("call to @%s with %d args, wants %d",
				in.CalleeName, len(in.Args), len(in.Callee.Params))
		}
	case OpBr:
		if err := argc(1); err != nil {
			return err
		}
		if len(in.Succs) != 2 {
			return fmt.Errorf("br needs 2 successors")
		}
	case OpJmp:
		if len(in.Succs) != 1 {
			return fmt.Errorf("jmp needs 1 successor")
		}
		return argc(0)
	case OpRet:
		if len(in.Args) > 1 {
			return fmt.Errorf("ret takes at most one operand")
		}
	}
	return nil
}

// loadableElem returns the type a load through pt yields: the pointee,
// with arrays decaying to their element type is NOT done here — loads
// of whole arrays are rejected by returning the array type, which will
// not match the load's scalar result type.
func loadableElem(pt *PtrType) Type { return pt.Elem }

// isNullConstFor reports whether v is the null-pointer idiom for a
// pointer-typed cell: the integer constant 0 standing in for a null
// of the pointee type (C's NULL).
func isNullConstFor(v Value, pointee Type) bool {
	if !IsPtr(pointee) {
		return false
	}
	c, ok := v.(*Const)
	return ok && c.Val == 0 && IsInt(c.Typ)
}

// icmpNullMix reports whether a type-mismatched comparison is the C
// NULL idiom: a pointer compared against an integer constant (either
// side), as in "if (p == 0)".
func icmpNullMix(a, b Value) bool {
	isIntConst := func(v Value) bool {
		c, ok := v.(*Const)
		return ok && IsInt(c.Typ)
	}
	return (IsPtr(a.Type()) && isIntConst(b)) || (IsPtr(b.Type()) && isIntConst(a))
}
