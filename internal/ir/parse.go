package ir

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads a module from the textual syntax produced by
// Module.String. The syntax allows forward references to values (needed
// for loop-carried phis) and to functions; both are resolved before
// Parse returns. The parsed module is verified structurally.
func Parse(src string) (*Module, error) {
	p := &parser{lex: newLexer(src), mod: NewModule("")}
	if err := p.parseModule(); err != nil {
		return nil, err
	}
	if err := Verify(p.mod); err != nil {
		return nil, fmt.Errorf("ir: parsed module fails verification: %w", err)
	}
	return p.mod, nil
}

// MustParse is Parse that panics on error; for tests and embedded
// corpus programs.
func MustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

// token kinds
const (
	tEOF     = iota
	tIdent   // bare identifier / keyword
	tLocal   // %name
	tGlobalT // @name
	tInt     // integer literal
	tStr     // a full quoted literal, quotes included
	tPunct   // single punctuation rune
)

type token struct {
	kind int
	text string
	line int
}

type lexer struct {
	toks []token
	pos  int
}

func newLexer(src string) *lexer {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == ';': // comment to end of line
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '%' || c == '@':
			j := i + 1
			for j < len(src) && isIdentRune(rune(src[j])) {
				j++
			}
			kind := tLocal
			if c == '@' {
				kind = tGlobalT
			}
			toks = append(toks, token{kind, src[i+1 : j], line})
			i = j
		case c == '"':
			// Scan the full quoted literal, honoring backslash
			// escapes (the printer emits %q, so names containing
			// quotes or backslashes arrive escaped). The token keeps
			// the surrounding quotes; the parser unquotes.
			j := i + 1
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' && j+1 < len(src) {
					j++
				}
				j++
			}
			if j < len(src) {
				j++ // closing quote
			}
			toks = append(toks, token{tStr, src[i:j], line})
			i = j
		case c == '-' || (c >= '0' && c <= '9'):
			j := i + 1
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{tInt, src[i:j], line})
			i = j
		case isIdentRune(rune(c)):
			j := i
			for j < len(src) && isIdentRune(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tIdent, src[i:j], line})
			i = j
		default:
			toks = append(toks, token{tPunct, string(c), line})
			i++
		}
	}
	toks = append(toks, token{tEOF, "", line})
	return &lexer{toks: toks}
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}

func (l *lexer) peek() token { return l.toks[l.pos] }

func (l *lexer) next() token {
	t := l.toks[l.pos]
	if t.kind != tEOF {
		l.pos++
	}
	return t
}

type fixup struct {
	in   *Instr
	arg  int // operand index, or -1 for Cmp, -2 for SubUser
	name string
	line int
}

type callFixup struct {
	in   *Instr
	name string
}

type parser struct {
	lex *lexer
	mod *Module

	fn      *Func
	blocks  map[string]*Block
	values  map[string]Value
	fixups  []fixup
	callFix []callFixup
}

func (p *parser) errf(line int, format string, args ...any) error {
	return fmt.Errorf("ir: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	t := p.lex.next()
	if t.kind != tPunct || t.text != s {
		return p.errf(t.line, "expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *parser) parseModule() error {
	for {
		t := p.lex.peek()
		switch {
		case t.kind == tEOF:
			return p.resolveCalls()
		case t.kind == tIdent && t.text == "module":
			p.lex.next()
			if s := p.lex.peek(); s.kind == tStr {
				name, err := strconv.Unquote(s.text)
				if err != nil {
					return p.errf(s.line, "bad module name literal %s", s.text)
				}
				p.mod.Name = name
				p.lex.next()
			}
		case t.kind == tIdent && t.text == "global":
			p.lex.next()
			name := p.lex.next()
			if name.kind != tGlobalT {
				return p.errf(name.line, "expected @name after global")
			}
			typ, err := p.parseType()
			if err != nil {
				return err
			}
			p.mod.AddGlobal(name.text, typ)
		case t.kind == tIdent && t.text == "func":
			if err := p.parseFunc(); err != nil {
				return err
			}
		default:
			return p.errf(t.line, "unexpected token %q at top level", t.text)
		}
	}
}

func (p *parser) parseType() (Type, error) {
	t := p.lex.next()
	var base Type
	switch {
	case t.kind == tPunct && t.text == "[":
		n := p.lex.next()
		if n.kind != tInt {
			return nil, p.errf(n.line, "expected array length")
		}
		ln, _ := strconv.ParseInt(n.text, 10, 64)
		x := p.lex.next()
		if x.kind != tIdent || x.text != "x" {
			return nil, p.errf(x.line, "expected 'x' in array type")
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		base = ArrayOf(ln, elem)
	case t.kind == tIdent && t.text == "void":
		base = Void
	case t.kind == tIdent && strings.HasPrefix(t.text, "i"):
		bits, err := strconv.Atoi(t.text[1:])
		if err != nil || bits <= 0 || bits > 64 {
			return nil, p.errf(t.line, "bad integer type %q", t.text)
		}
		base = &IntType{Bits: bits}
	default:
		return nil, p.errf(t.line, "expected type, got %q", t.text)
	}
	for p.lex.peek().kind == tPunct && p.lex.peek().text == "*" {
		p.lex.next()
		base = Ptr(base)
	}
	return base, nil
}

func (p *parser) parseFunc() error {
	p.lex.next() // "func"
	name := p.lex.next()
	if name.kind != tGlobalT {
		return p.errf(name.line, "expected @name after func")
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	var pnames []string
	var ptypes []Type
	for {
		t := p.lex.peek()
		if t.kind == tPunct && t.text == ")" {
			p.lex.next()
			break
		}
		if len(pnames) > 0 {
			if err := p.expectPunct(","); err != nil {
				return err
			}
		}
		typ, err := p.parseType()
		if err != nil {
			return err
		}
		pn := p.lex.next()
		if pn.kind != tLocal {
			return p.errf(pn.line, "expected %%name in parameter list")
		}
		pnames = append(pnames, pn.text)
		ptypes = append(ptypes, typ)
	}
	ret, err := p.parseType()
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}

	p.fn = p.mod.AddFunc(name.text, ret, pnames, ptypes)
	p.blocks = make(map[string]*Block)
	p.values = make(map[string]Value)
	p.fixups = p.fixups[:0]
	for _, prm := range p.fn.Params {
		p.values[prm.PName] = prm
	}

	var cur *Block
	var layout []*Block
	for {
		t := p.lex.peek()
		if t.kind == tPunct && t.text == "}" {
			p.lex.next()
			break
		}
		if t.kind == tEOF {
			return p.errf(t.line, "unexpected EOF in function body")
		}
		// A label is IDENT ':'.
		if t.kind == tIdent && p.lex.toks[p.lex.pos+1].kind == tPunct &&
			p.lex.toks[p.lex.pos+1].text == ":" {
			p.lex.next()
			p.lex.next()
			cur = p.getBlock(t.text)
			layout = append(layout, cur)
			continue
		}
		if cur == nil {
			return p.errf(t.line, "instruction before first label")
		}
		if err := p.parseInstr(cur); err != nil {
			return err
		}
	}
	// Blocks were created on first reference; restore the source's
	// layout order (and reject references to labels never defined).
	if len(layout) != len(p.fn.Blocks) {
		for _, b := range p.fn.Blocks {
			found := false
			for _, l := range layout {
				if l == b {
					found = true
					break
				}
			}
			if !found {
				return p.errf(p.lex.peek().line, "block %s referenced but never defined", b.Name())
			}
		}
	}
	p.fn.Blocks = layout
	// Resolve forward value references.
	for _, fx := range p.fixups {
		v, ok := p.values[fx.name]
		if !ok {
			return p.errf(fx.line, "undefined value %%%s", fx.name)
		}
		switch fx.arg {
		case -1:
			in, ok := v.(*Instr)
			if !ok || in.Op != OpICmp {
				return p.errf(fx.line, "sigma cmp %%%s is not an icmp", fx.name)
			}
			fx.in.Cmp = in
		case -2:
			in, ok := v.(*Instr)
			if !ok {
				return p.errf(fx.line, "copy sub user %%%s is not an instruction", fx.name)
			}
			fx.in.SubUser = in
		default:
			fx.in.Args[fx.arg] = v
		}
	}
	// Stored values come syntactically before the pointer operand, so
	// constants (and undefs) were parsed with an i64 hint. Now that
	// every pointer type is resolved, retype them to the pointee so
	// the verifier's store type-agreement check sees the real type. A
	// 0 stored into a pointer cell is the null-pointer idiom.
	for _, b := range p.fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op != OpStore {
				continue
			}
			pt, ok := typeOf(in.Args[1]).(*PtrType)
			if !ok {
				continue
			}
			switch v := in.Args[0].(type) {
			case *Const:
				switch pt.Elem.(type) {
				case *IntType:
					in.Args[0] = &Const{Val: v.Val, Typ: pt.Elem}
				case *PtrType:
					if v.Val == 0 {
						in.Args[0] = &Const{Val: 0, Typ: pt.Elem}
					}
				}
			case *Undef:
				in.Args[0] = &Undef{Typ: pt.Elem}
			}
		}
	}
	p.fn.RecomputeCFG()
	return nil
}

func (p *parser) getBlock(name string) *Block {
	if b, ok := p.blocks[name]; ok {
		return b
	}
	b := p.fn.NewBlock(name)
	p.blocks[name] = b
	return b
}

// operand parses a value reference; when the value is not yet defined,
// it records a fixup against in.Args[idx] and returns a placeholder.
func (p *parser) operand(in *Instr, idx int, hint Type) (Value, error) {
	t := p.lex.next()
	switch t.kind {
	case tInt:
		v, _ := strconv.ParseInt(t.text, 10, 64)
		typ := hint
		if typ == nil {
			typ = I64
		}
		return &Const{Val: v, Typ: typ}, nil
	case tLocal:
		if v, ok := p.values[t.text]; ok {
			return v, nil
		}
		p.fixups = append(p.fixups, fixup{in: in, arg: idx, name: t.text, line: t.line})
		return (*Instr)(nil), nil // placeholder; patched later
	case tGlobalT:
		if g := p.mod.GlobalByName(t.text); g != nil {
			return g, nil
		}
		return nil, p.errf(t.line, "undefined global @%s", t.text)
	case tIdent:
		if t.text == "undef" {
			typ := hint
			if typ == nil {
				typ = I64
			}
			return &Undef{Typ: typ}, nil
		}
	}
	return nil, p.errf(t.line, "expected operand, got %q", t.text)
}

func (p *parser) define(name string, in *Instr) {
	in.SetName(name)
	p.values[name] = in
}

func (p *parser) parseInstr(b *Block) error {
	t := p.lex.next()
	resName := ""
	if t.kind == tLocal {
		resName = t.text
		if err := p.expectPunct("="); err != nil {
			return err
		}
		t = p.lex.next()
	}
	if t.kind != tIdent {
		return p.errf(t.line, "expected opcode, got %q", t.text)
	}
	in := &Instr{Typ: Void}
	emit := func() {
		if resName != "" {
			p.define(resName, in)
		}
		b.Append(in)
	}
	comma := func() error { return p.expectPunct(",") }

	switch t.text {
	case "alloca":
		elem, err := p.parseType()
		if err != nil {
			return err
		}
		if err := comma(); err != nil {
			return err
		}
		n := p.lex.next()
		if n.kind != tInt {
			return p.errf(n.line, "expected alloca element count")
		}
		cnt, _ := strconv.ParseInt(n.text, 10, 64)
		in.Op, in.Typ, in.AllocTyp, in.NumElems = OpAlloca, Ptr(elem), elem, cnt
		emit()
	case "malloc":
		elem, err := p.parseType()
		if err != nil {
			return err
		}
		if err := comma(); err != nil {
			return err
		}
		in.Op, in.Typ = OpMalloc, Ptr(elem)
		in.Args = make([]Value, 1)
		a, err := p.operand(in, 0, I64)
		if err != nil {
			return err
		}
		in.Args[0] = a
		emit()
	case "load":
		in.Op = OpLoad
		in.Args = make([]Value, 1)
		a, err := p.operand(in, 0, nil)
		if err != nil {
			return err
		}
		in.Args[0] = a
		if pt, ok := typeOf(a).(*PtrType); ok {
			in.Typ = pt.Elem
		} else {
			return p.errf(t.line, "load pointer operand must be defined before use")
		}
		emit()
	case "store":
		in.Op = OpStore
		in.Args = make([]Value, 2)
		// Parse the pointer first conceptually: the stored value's
		// constant type may depend on it, but syntactically value
		// comes first; use I64 as the constant hint.
		v0, err := p.operand(in, 0, I64)
		if err != nil {
			return err
		}
		if err := comma(); err != nil {
			return err
		}
		v1, err := p.operand(in, 1, nil)
		if err != nil {
			return err
		}
		in.Args[0], in.Args[1] = v0, v1
		emit()
	case "add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr":
		ops := map[string]Op{
			"add": OpAdd, "sub": OpSub, "mul": OpMul, "div": OpDiv,
			"rem": OpRem, "and": OpAnd, "or": OpOr, "xor": OpXor,
			"shl": OpShl, "shr": OpShr,
		}
		in.Op = ops[t.text]
		in.Args = make([]Value, 2)
		a, err := p.operand(in, 0, nil)
		if err != nil {
			return err
		}
		if err := comma(); err != nil {
			return err
		}
		bnd, err := p.operand(in, 1, typeOf(a))
		if err != nil {
			return err
		}
		in.Args[0], in.Args[1] = a, bnd
		in.Typ = typeOf(a)
		if in.Typ == nil {
			in.Typ = typeOf(bnd)
		}
		if in.Typ == nil {
			in.Typ = I64
		}
		emit()
	case "icmp":
		pn := p.lex.next()
		preds := map[string]CmpPred{
			"eq": CmpEQ, "ne": CmpNE, "lt": CmpLT, "le": CmpLE,
			"gt": CmpGT, "ge": CmpGE,
		}
		pred, ok := preds[pn.text]
		if !ok {
			return p.errf(pn.line, "bad icmp predicate %q", pn.text)
		}
		in.Op, in.Pred, in.Typ = OpICmp, pred, I1
		in.Args = make([]Value, 2)
		a, err := p.operand(in, 0, nil)
		if err != nil {
			return err
		}
		if err := comma(); err != nil {
			return err
		}
		bnd, err := p.operand(in, 1, typeOf(a))
		if err != nil {
			return err
		}
		in.Args[0], in.Args[1] = a, bnd
		emit()
	case "gep":
		in.Op = OpGEP
		in.Args = make([]Value, 2)
		a, err := p.operand(in, 0, nil)
		if err != nil {
			return err
		}
		if err := comma(); err != nil {
			return err
		}
		idx, err := p.operand(in, 1, I64)
		if err != nil {
			return err
		}
		in.Args[0], in.Args[1] = a, idx
		if bt := typeOf(a); bt != nil {
			in.Typ = GEPResultType(bt)
		}
		if in.Typ == nil || Equal(in.Typ, Void) {
			return p.errf(t.line, "gep base must be a pointer defined before use")
		}
		emit()
	case "phi":
		typ, err := p.parseType()
		if err != nil {
			return err
		}
		in.Op, in.Typ = OpPhi, typ
		for {
			if err := p.expectPunct("["); err != nil {
				return err
			}
			in.Args = append(in.Args, nil)
			v, err := p.operand(in, len(in.Args)-1, typ)
			if err != nil {
				return err
			}
			in.Args[len(in.Args)-1] = v
			if err := comma(); err != nil {
				return err
			}
			lbl := p.lex.next()
			if lbl.kind != tIdent {
				return p.errf(lbl.line, "expected block label in phi")
			}
			in.PhiBlocks = append(in.PhiBlocks, p.getBlock(lbl.text))
			if err := p.expectPunct("]"); err != nil {
				return err
			}
			if nx := p.lex.peek(); nx.kind == tPunct && nx.text == "," {
				p.lex.next()
				continue
			}
			break
		}
		emit()
	case "sigma":
		in.Op = OpSigma
		in.Args = make([]Value, 1)
		a, err := p.operand(in, 0, nil)
		if err != nil {
			return err
		}
		in.Args[0] = a
		in.Typ = typeOf(a)
		if in.Typ == nil {
			return p.errf(t.line, "sigma source must be defined before use")
		}
		if err := comma(); err != nil {
			return err
		}
		kw := p.lex.next()
		if kw.kind != tIdent || kw.text != "cmp" {
			return p.errf(kw.line, "expected 'cmp' in sigma")
		}
		cmpTok := p.lex.next()
		if cmpTok.kind != tLocal {
			return p.errf(cmpTok.line, "expected %%cmp in sigma")
		}
		if v, ok := p.values[cmpTok.text]; ok {
			ci, ok := v.(*Instr)
			if !ok || ci.Op != OpICmp {
				return p.errf(cmpTok.line, "sigma cmp is not an icmp")
			}
			in.Cmp = ci
		} else {
			p.fixups = append(p.fixups, fixup{in: in, arg: -1, name: cmpTok.text, line: cmpTok.line})
		}
		if err := comma(); err != nil {
			return err
		}
		br := p.lex.next()
		switch br.text {
		case "true":
			in.OnTrue = true
		case "false":
			in.OnTrue = false
		default:
			return p.errf(br.line, "expected true/false in sigma")
		}
		if nx := p.lex.peek(); nx.kind == tPunct && nx.text == "," {
			p.lex.next()
			side := p.lex.next()
			switch side.text {
			case "left":
				in.CmpSide = 0
			case "right":
				in.CmpSide = 1
			default:
				return p.errf(side.line, "expected left/right in sigma")
			}
		}
		emit()
	case "copy":
		in.Op = OpCopy
		in.Args = make([]Value, 1)
		a, err := p.operand(in, 0, nil)
		if err != nil {
			return err
		}
		in.Args[0] = a
		in.Typ = typeOf(a)
		if in.Typ == nil {
			return p.errf(t.line, "copy source must be defined before use")
		}
		if nx := p.lex.peek(); nx.kind == tPunct && nx.text == "," {
			p.lex.next()
			kw := p.lex.next()
			if kw.kind != tIdent || kw.text != "sub" {
				return p.errf(kw.line, "expected 'sub' in copy")
			}
			st := p.lex.next()
			if st.kind != tLocal {
				return p.errf(st.line, "expected %%sub in copy")
			}
			if v, ok := p.values[st.text]; ok {
				in.SubUser = v.(*Instr)
			} else {
				p.fixups = append(p.fixups, fixup{in: in, arg: -2, name: st.text, line: st.line})
			}
		}
		emit()
	case "call":
		ret, err := p.parseType()
		if err != nil {
			return err
		}
		callee := p.lex.next()
		if callee.kind != tGlobalT {
			return p.errf(callee.line, "expected @callee in call")
		}
		in.Op, in.Typ, in.CalleeName = OpCall, ret, callee.text
		if err := p.expectPunct("("); err != nil {
			return err
		}
		for {
			nx := p.lex.peek()
			if nx.kind == tPunct && nx.text == ")" {
				p.lex.next()
				break
			}
			if len(in.Args) > 0 {
				if err := comma(); err != nil {
					return err
				}
			}
			in.Args = append(in.Args, nil)
			v, err := p.operand(in, len(in.Args)-1, I64)
			if err != nil {
				return err
			}
			in.Args[len(in.Args)-1] = v
		}
		p.callFix = append(p.callFix, callFixup{in: in, name: callee.text})
		emit()
	case "br":
		in.Op = OpBr
		in.Args = make([]Value, 1)
		c, err := p.operand(in, 0, I1)
		if err != nil {
			return err
		}
		in.Args[0] = c
		if err := comma(); err != nil {
			return err
		}
		l1 := p.lex.next()
		if err := comma(); err != nil {
			return err
		}
		l2 := p.lex.next()
		if l1.kind != tIdent || l2.kind != tIdent {
			return p.errf(l1.line, "expected block labels in br")
		}
		in.Succs = []*Block{p.getBlock(l1.text), p.getBlock(l2.text)}
		emit()
	case "jmp":
		in.Op = OpJmp
		l := p.lex.next()
		if l.kind != tIdent {
			return p.errf(l.line, "expected block label in jmp")
		}
		in.Succs = []*Block{p.getBlock(l.text)}
		emit()
	case "ret":
		in.Op = OpRet
		nx := p.lex.peek()
		if nx.kind == tLocal || nx.kind == tInt || nx.kind == tGlobalT {
			in.Args = make([]Value, 1)
			v, err := p.operand(in, 0, p.fn.RetTyp)
			if err != nil {
				return err
			}
			in.Args[0] = v
		}
		emit()
	default:
		return p.errf(t.line, "unknown opcode %q", t.text)
	}
	// Optional source-location suffix: "!line N".
	if nx := p.lex.peek(); nx.kind == tPunct && nx.text == "!" {
		p.lex.next()
		kw := p.lex.next()
		if kw.kind != tIdent || kw.text != "line" {
			return p.errf(kw.line, "expected 'line' after '!', got %q", kw.text)
		}
		n := p.lex.next()
		ln, err := strconv.Atoi(n.text)
		if n.kind != tInt || err != nil || ln < 0 {
			return p.errf(n.line, "expected non-negative line number after !line, got %q", n.text)
		}
		in.Line = ln
	}
	return nil
}

// typeOf returns v's type, or nil for an unresolved placeholder.
func typeOf(v Value) Type {
	if in, ok := v.(*Instr); ok && in == nil {
		return nil
	}
	if v == nil {
		return nil
	}
	return v.Type()
}

func (p *parser) resolveCalls() error {
	for _, cf := range p.callFix {
		if f := p.mod.FuncByName(cf.name); f != nil {
			cf.in.Callee = f
		}
	}
	return nil
}
