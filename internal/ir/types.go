// Package ir implements a typed, LLVM-like intermediate representation
// in static single assignment (SSA) form. It is the substrate on which
// every analysis in this repository runs: the e-SSA transformation
// (internal/essa), interval range analysis (internal/rangeanal), the
// strict less-than analysis that is the paper's contribution
// (internal/core), and the alias analyses built on top of them
// (internal/alias, internal/andersen).
//
// The instruction set is a deliberately small subset of LLVM IR: stack
// and heap allocation, loads and stores, integer arithmetic, integer
// comparison, a single-index getelementptr, phi functions, calls, and
// the usual terminators. Two extra instruction kinds — Sigma and Copy —
// exist only in the e-SSA form produced by internal/essa; they split
// live ranges at conditionals and subtractions as described in Figure 5
// of the paper.
//
// A module can be built programmatically with Builder, printed with
// Module.String, and parsed back with Parse. The textual syntax is
// stable and used heavily by the test suites of the analysis packages.
package ir

import (
	"fmt"
	"strings"
)

// Type is the interface implemented by all IR types. Types are
// immutable after construction and compared structurally with Equal.
type Type interface {
	fmt.Stringer
	// SizeBytes returns the storage size of a value of this type.
	// Pointer types have size 8 (the IR models a 64-bit target).
	SizeBytes() int64
	isType()
}

// IntType is an integer type of a given bit width. The analyses in this
// repository treat all integers as mathematical integers; the width
// matters only for access-size reasoning in alias analysis.
type IntType struct {
	Bits int
}

func (t *IntType) String() string { return fmt.Sprintf("i%d", t.Bits) }

// SizeBytes returns the byte size of the integer, rounding bit widths
// up to whole bytes.
func (t *IntType) SizeBytes() int64 { return int64((t.Bits + 7) / 8) }

func (t *IntType) isType() {}

// PtrType is a pointer to values of an element type.
type PtrType struct {
	Elem Type
}

func (t *PtrType) String() string { return t.Elem.String() + "*" }

// SizeBytes returns 8: the IR models a 64-bit address space.
func (t *PtrType) SizeBytes() int64 { return 8 }

func (t *PtrType) isType() {}

// ArrayType is a fixed-length array. Arrays appear as the element type
// of allocas and globals; indexing them goes through GEP instructions.
type ArrayType struct {
	Elem Type
	Len  int64
}

func (t *ArrayType) String() string {
	return fmt.Sprintf("[%d x %s]", t.Len, t.Elem)
}

// SizeBytes returns the total storage size of the array.
func (t *ArrayType) SizeBytes() int64 { return t.Len * t.Elem.SizeBytes() }

func (t *ArrayType) isType() {}

// VoidType is the result type of instructions that produce no value and
// the return type of functions that return nothing.
type VoidType struct{}

func (t *VoidType) String() string { return "void" }

// SizeBytes returns 0; void values cannot be stored.
func (t *VoidType) SizeBytes() int64 { return 0 }

func (t *VoidType) isType() {}

// FuncType describes a function signature.
type FuncType struct {
	Params []Type
	Ret    Type
}

func (t *FuncType) String() string {
	parts := make([]string, len(t.Params))
	for i, p := range t.Params {
		parts[i] = p.String()
	}
	return fmt.Sprintf("%s(%s)", t.Ret, strings.Join(parts, ", "))
}

// SizeBytes returns 0; function types are not first-class storage.
func (t *FuncType) SizeBytes() int64 { return 0 }

func (t *FuncType) isType() {}

// Singleton types shared across the package. Types are compared
// structurally, so sharing is an optimization, not a requirement.
var (
	// I64 is the 64-bit integer type, the default scalar type of the
	// mini-C frontend.
	I64 = &IntType{Bits: 64}
	// I32 is the 32-bit integer type.
	I32 = &IntType{Bits: 32}
	// I8 is the 8-bit integer type, used for byte buffers.
	I8 = &IntType{Bits: 8}
	// I1 is the boolean type produced by comparisons.
	I1 = &IntType{Bits: 1}
	// Void is the unique void type.
	Void = &VoidType{}
)

// Ptr returns the pointer type to elem.
func Ptr(elem Type) Type { return &PtrType{Elem: elem} }

// ArrayOf returns the array type [n x elem].
func ArrayOf(n int64, elem Type) Type { return &ArrayType{Elem: elem, Len: n} }

// Equal reports whether two types are structurally equal.
func Equal(a, b Type) bool {
	switch a := a.(type) {
	case *IntType:
		b, ok := b.(*IntType)
		return ok && a.Bits == b.Bits
	case *PtrType:
		b, ok := b.(*PtrType)
		return ok && Equal(a.Elem, b.Elem)
	case *ArrayType:
		b, ok := b.(*ArrayType)
		return ok && a.Len == b.Len && Equal(a.Elem, b.Elem)
	case *VoidType:
		_, ok := b.(*VoidType)
		return ok
	case *FuncType:
		bf, ok := b.(*FuncType)
		if !ok || len(a.Params) != len(bf.Params) || !Equal(a.Ret, bf.Ret) {
			return false
		}
		for i := range a.Params {
			if !Equal(a.Params[i], bf.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// GEPResultType returns the type of a GEP on a base pointer of type t:
// indexing a pointer-to-array yields a pointer to the array's element
// (array decay); indexing any other pointer yields the same pointer
// type. Returns nil if t is not a pointer.
func GEPResultType(t Type) Type {
	pt, ok := t.(*PtrType)
	if !ok {
		return nil
	}
	if at, ok := pt.Elem.(*ArrayType); ok {
		return Ptr(at.Elem)
	}
	return t
}

// IsInt reports whether t is an integer type.
func IsInt(t Type) bool {
	_, ok := t.(*IntType)
	return ok
}

// IsPtr reports whether t is a pointer type.
func IsPtr(t Type) bool {
	_, ok := t.(*PtrType)
	return ok
}

// Elem returns the element type of a pointer or array type, or nil if t
// is neither.
func Elem(t Type) Type {
	switch t := t.(type) {
	case *PtrType:
		return t.Elem
	case *ArrayType:
		return t.Elem
	}
	return nil
}
