package ir

import (
	"fmt"
	"strings"
)

// String renders the module in the textual syntax accepted by Parse.
func (m *Module) String() string {
	var sb strings.Builder
	if m.Name != "" {
		fmt.Fprintf(&sb, "module %q\n\n", m.Name)
	}
	for _, g := range m.Globals {
		fmt.Fprintf(&sb, "global @%s %s\n", g.GName, g.Elem)
	}
	if len(m.Globals) > 0 {
		sb.WriteByte('\n')
	}
	for i, f := range m.Funcs {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(f.String())
	}
	return sb.String()
}

// String renders the function in the textual syntax.
func (f *Func) String() string {
	var sb strings.Builder
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = fmt.Sprintf("%s %%%s", p.Typ, p.PName)
	}
	fmt.Fprintf(&sb, "func @%s(%s) %s {\n",
		f.FName, strings.Join(params, ", "), f.RetTyp)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.name)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", printInstr(in))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func printInstr(in *Instr) string {
	var sb strings.Builder
	if in.HasResult() {
		fmt.Fprintf(&sb, "%%%s = ", in.name)
	}
	switch in.Op {
	case OpAlloca:
		fmt.Fprintf(&sb, "alloca %s, %d", in.AllocTyp, in.NumElems)
	case OpMalloc:
		pt := in.Typ.(*PtrType)
		fmt.Fprintf(&sb, "malloc %s, %s", pt.Elem, in.Args[0].Ref())
	case OpLoad:
		fmt.Fprintf(&sb, "load %s", in.Args[0].Ref())
	case OpStore:
		fmt.Fprintf(&sb, "store %s, %s", in.Args[0].Ref(), in.Args[1].Ref())
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr:
		fmt.Fprintf(&sb, "%s %s, %s", in.Op, in.Args[0].Ref(), in.Args[1].Ref())
	case OpICmp:
		fmt.Fprintf(&sb, "icmp %s %s, %s", in.Pred, in.Args[0].Ref(), in.Args[1].Ref())
	case OpGEP:
		fmt.Fprintf(&sb, "gep %s, %s", in.Args[0].Ref(), in.Args[1].Ref())
	case OpPhi:
		fmt.Fprintf(&sb, "phi %s", in.Typ)
		for i, a := range in.Args {
			fmt.Fprintf(&sb, " [%s, %s]", a.Ref(), in.PhiBlocks[i].name)
			if i < len(in.Args)-1 {
				sb.WriteByte(',')
			}
		}
	case OpSigma:
		branch := "false"
		if in.OnTrue {
			branch = "true"
		}
		side := "left"
		if in.CmpSide == 1 {
			side = "right"
		}
		fmt.Fprintf(&sb, "sigma %s, cmp %s, %s, %s", in.Args[0].Ref(), in.Cmp.Ref(), branch, side)
	case OpCopy:
		fmt.Fprintf(&sb, "copy %s", in.Args[0].Ref())
		if in.SubUser != nil {
			fmt.Fprintf(&sb, ", sub %s", in.SubUser.Ref())
		}
	case OpCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = a.Ref()
		}
		fmt.Fprintf(&sb, "call %s @%s(%s)", in.Typ, in.CalleeName, strings.Join(args, ", "))
	case OpBr:
		fmt.Fprintf(&sb, "br %s, %s, %s", in.Args[0].Ref(), in.Succs[0].name, in.Succs[1].name)
	case OpJmp:
		fmt.Fprintf(&sb, "jmp %s", in.Succs[0].name)
	case OpRet:
		if len(in.Args) > 0 {
			fmt.Fprintf(&sb, "ret %s", in.Args[0].Ref())
		} else {
			sb.WriteString("ret")
		}
	default:
		fmt.Fprintf(&sb, "<bad op %d>", int(in.Op))
	}
	if in.Line > 0 {
		fmt.Fprintf(&sb, " !line %d", in.Line)
	}
	return sb.String()
}
