package ir

import "fmt"

// Block is a basic block: a straight-line sequence of instructions
// ending in exactly one terminator.
type Block struct {
	name string
	// Fn is the enclosing function.
	Fn *Func
	// Instrs are the block's instructions in order. The last one is
	// the terminator.
	Instrs []*Instr
	// Preds are the predecessor blocks; maintained by
	// Func.RecomputeCFG.
	Preds []*Block

	// Index is the position of the block in Fn.Blocks; maintained by
	// Func.RecomputeCFG and used as a dense key by analyses.
	Index int
}

// Name returns the block's label.
func (b *Block) Name() string { return b.name }

// SetName relabels the block.
func (b *Block) SetName(n string) { b.name = n }

// Term returns the block's terminator, or nil if the block is still
// under construction.
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.Op.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the successor blocks, in terminator order.
func (b *Block) Succs() []*Block {
	t := b.Term()
	if t == nil {
		return nil
	}
	return t.Succs
}

// Phis returns the phi instructions at the head of the block.
func (b *Block) Phis() []*Instr {
	var phis []*Instr
	for _, in := range b.Instrs {
		if in.Op != OpPhi {
			break
		}
		phis = append(phis, in)
	}
	return phis
}

// FirstNonPhi returns the index of the first instruction that is
// neither a phi nor a sigma, i.e. the position where ordinary
// instructions may be inserted.
func (b *Block) FirstNonPhi() int {
	for i, in := range b.Instrs {
		if in.Op != OpPhi && in.Op != OpSigma {
			return i
		}
	}
	return len(b.Instrs)
}

// Insert places in at position i, shifting later instructions.
func (b *Block) Insert(i int, in *Instr) {
	in.Blk = b
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = in
}

// Append places in at the end of the block.
func (b *Block) Append(in *Instr) {
	in.Blk = b
	b.Instrs = append(b.Instrs, in)
}

// RemoveAt deletes the instruction at position i.
func (b *Block) RemoveAt(i int) {
	copy(b.Instrs[i:], b.Instrs[i+1:])
	b.Instrs = b.Instrs[:len(b.Instrs)-1]
}

// Func is a function definition: a signature plus a CFG of basic
// blocks. Blocks[0] is the entry block.
type Func struct {
	FName  string
	Params []*Param
	RetTyp Type
	Blocks []*Block
	// Mod is the enclosing module.
	Mod *Module

	nextID    int
	usedNames map[string]bool
}

// Name returns the function's name.
func (f *Func) Name() string { return f.FName }

// Entry returns the entry block, or nil for an empty function.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// Signature returns the function's type.
func (f *Func) Signature() *FuncType {
	ps := make([]Type, len(f.Params))
	for i, p := range f.Params {
		ps[i] = p.Typ
	}
	return &FuncType{Params: ps, Ret: f.RetTyp}
}

// NewBlock appends a fresh block with the given label (uniqued if it
// collides) and returns it.
func (f *Func) NewBlock(label string) *Block {
	if label == "" {
		label = "b"
	}
	name := label
	for f.blockByName(name) != nil {
		f.nextID++
		name = fmt.Sprintf("%s.%d", label, f.nextID)
	}
	b := &Block{name: name, Fn: f, Index: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

func (f *Func) blockByName(name string) *Block {
	for _, b := range f.Blocks {
		if b.name == name {
			return b
		}
	}
	return nil
}

// FreshName returns a new unique value name with the given prefix.
func (f *Func) FreshName(prefix string) string {
	for {
		f.nextID++
		n := fmt.Sprintf("%s%d", prefix, f.nextID)
		if !f.nameUsed(n) {
			f.takeName(n)
			return n
		}
	}
}

// UniqueName returns name if it is still free, or name with a numeric
// suffix otherwise, and reserves the result.
func (f *Func) UniqueName(name string) string {
	if !f.nameUsed(name) {
		f.takeName(name)
		return name
	}
	return f.FreshName(name + ".")
}

func (f *Func) nameUsed(n string) bool {
	if f.usedNames == nil {
		f.usedNames = make(map[string]bool)
		for _, p := range f.Params {
			f.usedNames[p.PName] = true
		}
		// Functions assembled outside the Builder (e.g. by the parser)
		// already contain named instructions; respect them.
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.HasResult() {
					f.usedNames[in.name] = true
				}
			}
		}
	}
	return f.usedNames[n]
}

func (f *Func) takeName(n string) {
	if f.usedNames == nil {
		f.nameUsed("") // initialize
	}
	f.usedNames[n] = true
}

// RecomputeCFG rebuilds predecessor lists and block indices from the
// terminators. Transformation passes call it after edge surgery.
func (f *Func) RecomputeCFG() {
	for i, b := range f.Blocks {
		b.Index = i
		b.Preds = b.Preds[:0]
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			s.Preds = append(s.Preds, b)
		}
	}
}

// Instrs calls fn for every instruction in the function, in block
// order. Returning false stops the walk.
func (f *Func) Instrs(fn func(*Instr) bool) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if !fn(in) {
				return
			}
		}
	}
}

// NumInstrs returns the number of instructions in the function.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Values returns every SSA value defined in the function: parameters
// first, then instruction results in block order.
func (f *Func) Values() []Value {
	var vs []Value
	for _, p := range f.Params {
		vs = append(vs, p)
	}
	f.Instrs(func(in *Instr) bool {
		if in.HasResult() {
			vs = append(vs, in)
		}
		return true
	})
	return vs
}

// Module is a translation unit: globals plus functions.
type Module struct {
	Name    string
	Globals []*Global
	Funcs   []*Func
}

// NewModule returns an empty module.
func NewModule(name string) *Module { return &Module{Name: name} }

// AddGlobal declares a global with the given element type and returns
// it. The global's value type is a pointer to elem.
func (m *Module) AddGlobal(name string, elem Type) *Global {
	g := &Global{GName: name, Elem: elem}
	m.Globals = append(m.Globals, g)
	return g
}

// GlobalByName returns the named global, or nil.
func (m *Module) GlobalByName(name string) *Global {
	for _, g := range m.Globals {
		if g.GName == name {
			return g
		}
	}
	return nil
}

// AddFunc creates a function with the given name, parameter names and
// types, and return type, and returns it.
func (m *Module) AddFunc(name string, ret Type, paramNames []string, paramTypes []Type) *Func {
	if len(paramNames) != len(paramTypes) {
		panic("ir: AddFunc parameter name/type count mismatch")
	}
	f := &Func{FName: name, RetTyp: ret, Mod: m}
	for i := range paramNames {
		f.Params = append(f.Params, &Param{
			PName: paramNames[i], Typ: paramTypes[i], Fn: f, Index: i,
		})
	}
	m.Funcs = append(m.Funcs, f)
	return f
}

// FuncByName returns the named function, or nil.
func (m *Module) FuncByName(name string) *Func {
	for _, f := range m.Funcs {
		if f.FName == name {
			return f
		}
	}
	return nil
}

// NumInstrs returns the number of instructions in the module.
func (m *Module) NumInstrs() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.NumInstrs()
	}
	return n
}
