package ir

// Builder constructs instructions with an insertion point, in the style
// of LLVM's IRBuilder. Every emitted instruction gets a fresh name
// unless one is provided with Named.
type Builder struct {
	fn   *Func
	blk  *Block
	name string // pending name for the next instruction
	line int    // source line stamped on emitted instructions (0 = none)
}

// NewBuilder returns a builder for fn with no insertion point.
func NewBuilder(fn *Func) *Builder { return &Builder{fn: fn} }

// Func returns the function being built.
func (bld *Builder) Func() *Func { return bld.fn }

// Block returns the current insertion block.
func (bld *Builder) Block() *Block { return bld.blk }

// SetBlock moves the insertion point to the end of b.
func (bld *Builder) SetBlock(b *Block) { bld.blk = b }

// Named sets the result name of the next emitted instruction.
func (bld *Builder) Named(name string) *Builder {
	bld.name = name
	return bld
}

// SetLine sets the source line stamped on subsequently emitted
// instructions. Unlike Named it is sticky: it stays in effect until
// the next SetLine. Pass 0 to stop stamping.
func (bld *Builder) SetLine(n int) { bld.line = n }

func (bld *Builder) emit(in *Instr) *Instr {
	if bld.blk == nil {
		panic("ir: Builder has no insertion block")
	}
	if in.HasResult() {
		if bld.name != "" {
			in.name = bld.fn.UniqueName(bld.name)
		} else {
			in.name = bld.fn.FreshName("t")
		}
	}
	bld.name = ""
	if in.Line == 0 {
		in.Line = bld.line
	}
	bld.blk.Append(in)
	return in
}

// Alloca emits a stack allocation of n elements of elem.
func (bld *Builder) Alloca(elem Type, n int64) *Instr {
	return bld.emit(&Instr{
		Op: OpAlloca, Typ: Ptr(elem), AllocTyp: elem, NumElems: n,
	})
}

// Malloc emits a heap allocation of size bytes, typed as a pointer to
// elem.
func (bld *Builder) Malloc(elem Type, size Value) *Instr {
	return bld.emit(&Instr{
		Op: OpMalloc, Typ: Ptr(elem), Args: []Value{size},
	})
}

// Load emits a load through ptr.
func (bld *Builder) Load(ptr Value) *Instr {
	pt, ok := ptr.Type().(*PtrType)
	if !ok {
		panic("ir: Load from non-pointer " + ptr.Ref())
	}
	return bld.emit(&Instr{Op: OpLoad, Typ: pt.Elem, Args: []Value{ptr}})
}

// Store emits a store of val through ptr.
func (bld *Builder) Store(val, ptr Value) *Instr {
	if !IsPtr(ptr.Type()) {
		panic("ir: Store to non-pointer " + ptr.Ref())
	}
	return bld.emit(&Instr{Op: OpStore, Typ: Void, Args: []Value{val, ptr}})
}

// Bin emits a binary arithmetic instruction.
func (bld *Builder) Bin(op Op, a, b Value) *Instr {
	if !op.IsBinOp() {
		panic("ir: Bin with non-binary op " + op.String())
	}
	return bld.emit(&Instr{Op: op, Typ: a.Type(), Args: []Value{a, b}})
}

// Add emits a + b.
func (bld *Builder) Add(a, b Value) *Instr { return bld.Bin(OpAdd, a, b) }

// Sub emits a - b.
func (bld *Builder) Sub(a, b Value) *Instr { return bld.Bin(OpSub, a, b) }

// Mul emits a * b.
func (bld *Builder) Mul(a, b Value) *Instr { return bld.Bin(OpMul, a, b) }

// ICmp emits an integer comparison.
func (bld *Builder) ICmp(pred CmpPred, a, b Value) *Instr {
	return bld.emit(&Instr{Op: OpICmp, Typ: I1, Pred: pred, Args: []Value{a, b}})
}

// GEP emits pointer arithmetic: base + idx elements. A base pointing
// to an array decays: the result points to the array's element type.
func (bld *Builder) GEP(base, idx Value) *Instr {
	rt := GEPResultType(base.Type())
	if rt == nil {
		panic("ir: GEP on non-pointer " + base.Ref())
	}
	return bld.emit(&Instr{Op: OpGEP, Typ: rt, Args: []Value{base, idx}})
}

// Phi emits an empty phi of type t; incoming edges are added with
// AddIncoming. Phis are placed at the block head.
func (bld *Builder) Phi(t Type) *Instr {
	in := &Instr{Op: OpPhi, Typ: t, Line: bld.line}
	if bld.name != "" {
		in.name = bld.fn.UniqueName(bld.name)
		bld.name = ""
	} else {
		in.name = bld.fn.FreshName("t")
	}
	bld.blk.Insert(len(bld.blk.Phis()), in)
	return in
}

// AddIncoming appends an incoming (value, predecessor) pair to phi.
func AddIncoming(phi *Instr, v Value, pred *Block) {
	if phi.Op != OpPhi {
		panic("ir: AddIncoming on non-phi")
	}
	phi.Args = append(phi.Args, v)
	phi.PhiBlocks = append(phi.PhiBlocks, pred)
}

// Call emits a call to a function defined in this module.
func (bld *Builder) Call(callee *Func, args ...Value) *Instr {
	return bld.emit(&Instr{
		Op: OpCall, Typ: callee.RetTyp, Callee: callee,
		CalleeName: callee.FName, Args: args,
	})
}

// CallExt emits a call to an external function with the given result
// type.
func (bld *Builder) CallExt(name string, ret Type, args ...Value) *Instr {
	return bld.emit(&Instr{Op: OpCall, Typ: ret, CalleeName: name, Args: args})
}

// Br emits a conditional branch.
func (bld *Builder) Br(cond Value, then, els *Block) *Instr {
	return bld.emit(&Instr{
		Op: OpBr, Typ: Void, Args: []Value{cond}, Succs: []*Block{then, els},
	})
}

// Jmp emits an unconditional jump.
func (bld *Builder) Jmp(target *Block) *Instr {
	return bld.emit(&Instr{Op: OpJmp, Typ: Void, Succs: []*Block{target}})
}

// Ret emits a return. v may be nil for void functions.
func (bld *Builder) Ret(v Value) *Instr {
	in := &Instr{Op: OpRet, Typ: Void}
	if v != nil {
		in.Args = []Value{v}
	}
	return bld.emit(in)
}
