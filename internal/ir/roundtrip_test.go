package ir_test

import (
	"testing"

	"repro/internal/csmith"
	"repro/internal/essa"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/ssa"
)

// TestPrintParseRoundTripGenerated property-checks the textual format
// over realistic modules: for random programs, compiled and
// transformed to e-SSA (so sigmas, copies and phis all appear), the
// printer and parser must be exact inverses, and the reparsed module
// must still verify — including the SSA dominance property.
func TestPrintParseRoundTripGenerated(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		src := csmith.Generate(csmith.Config{
			Seed: 500 + seed, MaxPtrDepth: 2 + int(seed)%4, Stmts: 25,
		})
		m, err := minic.Compile("gen", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		essa.TransformModule(m, nil)

		text1 := m.String()
		m2, err := ir.Parse(text1)
		if err != nil {
			t.Fatalf("seed %d: reparse failed: %v", seed, err)
		}
		text2 := m2.String()
		if text1 != text2 {
			t.Fatalf("seed %d: round trip unstable", seed)
		}
		for _, f := range m2.Funcs {
			if err := ssa.VerifySSA(f); err != nil {
				t.Fatalf("seed %d: reparsed @%s breaks SSA: %v", seed, f.FName, err)
			}
		}
	}
}

// TestParsePreservesAnalysisInputs: the annotations the analyses
// depend on (sigma cmp/side/arm, copy sub-user, phi incoming blocks)
// must survive the round trip node for node.
func TestParsePreservesAnalysisInputs(t *testing.T) {
	src := csmith.Generate(csmith.Config{Seed: 77, MaxPtrDepth: 3, Stmts: 30})
	m, err := minic.Compile("gen", src)
	if err != nil {
		t.Fatal(err)
	}
	essa.TransformModule(m, nil)
	m2, err := ir.Parse(m.String())
	if err != nil {
		t.Fatal(err)
	}
	count := func(mod *ir.Module) (sigmas, copies, subusers, phis int) {
		for _, f := range mod.Funcs {
			f.Instrs(func(in *ir.Instr) bool {
				switch in.Op {
				case ir.OpSigma:
					sigmas++
					if in.Cmp == nil {
						t.Errorf("sigma %s lost its cmp", in.Ref())
					}
				case ir.OpCopy:
					copies++
					if in.SubUser != nil {
						subusers++
					}
				case ir.OpPhi:
					phis++
					if len(in.Args) != len(in.PhiBlocks) {
						t.Errorf("phi %s arg/block mismatch", in.Ref())
					}
				}
				return true
			})
		}
		return
	}
	s1, c1, u1, p1 := count(m)
	s2, c2, u2, p2 := count(m2)
	if s1 != s2 || c1 != c2 || u1 != u2 || p1 != p2 {
		t.Errorf("instruction counts changed: sigmas %d/%d copies %d/%d subusers %d/%d phis %d/%d",
			s1, s2, c1, c2, u1, u2, p1, p2)
	}
	if s1 == 0 {
		t.Log("note: no sigmas in this seed; round trip still verified")
	}
}

// TestRoundTripCsmithCorpus sweeps a larger generated corpus, both
// raw (straight out of the frontend) and after the full e-SSA
// transform, asserting Parse∘Print is the identity on the printed
// form for every module.
func TestRoundTripCsmithCorpus(t *testing.T) {
	check := func(seed int64, label string, m *ir.Module) {
		t.Helper()
		text1 := m.String()
		m2, err := ir.Parse(text1)
		if err != nil {
			t.Fatalf("seed %d (%s): reparse failed: %v", seed, label, err)
		}
		if text2 := m2.String(); text1 != text2 {
			t.Fatalf("seed %d (%s): round trip unstable", seed, label)
		}
	}
	for seed := int64(0); seed < 40; seed++ {
		src := csmith.Generate(csmith.Config{
			Seed: 9000 + seed, MaxPtrDepth: 2 + int(seed)%5, Stmts: 20 + int(seed)%30,
		})
		m, err := minic.Compile("gen", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		check(seed, "raw", m)
		essa.TransformModule(m, nil)
		check(seed, "essa", m)
	}
}

// TestRoundTripModuleNames pins the string-literal escaping fixed in
// the lexer: module names containing quotes, backslashes and other
// escape-worthy characters must survive Print → Parse → Print. Before
// the fix the lexer scanned to the first '"' with no escape handling,
// so the printer's %q output was mangled on the way back in.
func TestRoundTripModuleNames(t *testing.T) {
	names := []string{
		"plain",
		"with space",
		`quo"te`,
		`back\slash`,
		`both\"mixed`,
		"tab\tand\nnewline",
		`trailing\`,
		"",
	}
	for _, name := range names {
		m, err := minic.Compile(name, "int main() { return 0; }")
		if err != nil {
			t.Fatal(err)
		}
		text1 := m.String()
		m2, err := ir.Parse(text1)
		if err != nil {
			t.Fatalf("name %q: reparse failed: %v", name, err)
		}
		if m2.Name != name {
			t.Fatalf("name %q came back as %q", name, m2.Name)
		}
		if text2 := m2.String(); text1 != text2 {
			t.Fatalf("name %q: round trip unstable:\n%s\nvs\n%s", name, text1, text2)
		}
	}
}

// TestParseRejectsBadStringLiteral: a malformed literal is a parse
// error, not a silently truncated name.
func TestParseRejectsBadStringLiteral(t *testing.T) {
	if _, err := ir.Parse("module \"unterminated\n"); err == nil {
		t.Fatal("unterminated module name literal parsed without error")
	}
}
