package ir_test

import (
	"testing"

	"repro/internal/csmith"
	"repro/internal/essa"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/ssa"
)

// TestPrintParseRoundTripGenerated property-checks the textual format
// over realistic modules: for random programs, compiled and
// transformed to e-SSA (so sigmas, copies and phis all appear), the
// printer and parser must be exact inverses, and the reparsed module
// must still verify — including the SSA dominance property.
func TestPrintParseRoundTripGenerated(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		src := csmith.Generate(csmith.Config{
			Seed: 500 + seed, MaxPtrDepth: 2 + int(seed)%4, Stmts: 25,
		})
		m, err := minic.Compile("gen", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		essa.TransformModule(m, nil)

		text1 := m.String()
		m2, err := ir.Parse(text1)
		if err != nil {
			t.Fatalf("seed %d: reparse failed: %v", seed, err)
		}
		text2 := m2.String()
		if text1 != text2 {
			t.Fatalf("seed %d: round trip unstable", seed)
		}
		for _, f := range m2.Funcs {
			if err := ssa.VerifySSA(f); err != nil {
				t.Fatalf("seed %d: reparsed @%s breaks SSA: %v", seed, f.FName, err)
			}
		}
	}
}

// TestParsePreservesAnalysisInputs: the annotations the analyses
// depend on (sigma cmp/side/arm, copy sub-user, phi incoming blocks)
// must survive the round trip node for node.
func TestParsePreservesAnalysisInputs(t *testing.T) {
	src := csmith.Generate(csmith.Config{Seed: 77, MaxPtrDepth: 3, Stmts: 30})
	m, err := minic.Compile("gen", src)
	if err != nil {
		t.Fatal(err)
	}
	essa.TransformModule(m, nil)
	m2, err := ir.Parse(m.String())
	if err != nil {
		t.Fatal(err)
	}
	count := func(mod *ir.Module) (sigmas, copies, subusers, phis int) {
		for _, f := range mod.Funcs {
			f.Instrs(func(in *ir.Instr) bool {
				switch in.Op {
				case ir.OpSigma:
					sigmas++
					if in.Cmp == nil {
						t.Errorf("sigma %s lost its cmp", in.Ref())
					}
				case ir.OpCopy:
					copies++
					if in.SubUser != nil {
						subusers++
					}
				case ir.OpPhi:
					phis++
					if len(in.Args) != len(in.PhiBlocks) {
						t.Errorf("phi %s arg/block mismatch", in.Ref())
					}
				}
				return true
			})
		}
		return
	}
	s1, c1, u1, p1 := count(m)
	s2, c2, u2, p2 := count(m2)
	if s1 != s2 || c1 != c2 || u1 != u2 || p1 != p2 {
		t.Errorf("instruction counts changed: sigmas %d/%d copies %d/%d subusers %d/%d phis %d/%d",
			s1, s2, c1, c2, u1, u2, p1, p2)
	}
	if s1 == 0 {
		t.Log("note: no sigmas in this seed; round trip still verified")
	}
}
