package ir

import "fmt"

// Op identifies the operation an instruction performs.
type Op int

// The instruction set. OpSigma and OpCopy are introduced by the e-SSA
// transformation (internal/essa) and never produced by the frontend.
const (
	// OpAlloca allocates NumElems elements of AllocTyp on the stack
	// and yields a pointer to the first. Each static alloca is an
	// allocation site for alias analysis.
	OpAlloca Op = iota
	// OpMalloc allocates Args[0] bytes on the heap and yields an
	// untyped-but-cast pointer (result type records the cast). Each
	// static malloc is an allocation site.
	OpMalloc
	// OpLoad reads a value of the result type through pointer Args[0].
	OpLoad
	// OpStore writes Args[0] through pointer Args[1]. No result.
	OpStore
	// OpAdd .. OpShr are binary integer arithmetic on Args[0], Args[1].
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	// OpICmp compares Args[0] Pred Args[1] and yields an i1.
	OpICmp
	// OpGEP computes Args[0] + Args[1]*sizeof(elem): pointer arithmetic
	// in element units, like a one-index LLVM getelementptr. The result
	// type equals the base pointer type.
	OpGEP
	// OpPhi selects among Args[i] according to the predecessor block
	// PhiBlocks[i] control came from.
	OpPhi
	// OpSigma is an e-SSA live-range split: a copy of Args[0] placed at
	// the head of a branch target, carrying the branch condition that
	// is known to hold there (Cmp, OnTrue).
	OpSigma
	// OpCopy is an e-SSA live-range split at a subtraction: a parallel
	// copy of the subtrahend's left operand (rule in Figure 5b of the
	// paper). SubUser points at the subtraction that triggered it.
	OpCopy
	// OpCall invokes Callee (or an external function named CalleeName)
	// with Args.
	OpCall
	// OpBr branches on Args[0] to Succs[0] (true) or Succs[1] (false).
	OpBr
	// OpJmp jumps unconditionally to Succs[0].
	OpJmp
	// OpRet returns Args[0], or nothing if Args is empty.
	OpRet
)

var opNames = [...]string{
	OpAlloca: "alloca", OpMalloc: "malloc", OpLoad: "load",
	OpStore: "store", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpDiv: "div", OpRem: "rem", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpICmp: "icmp", OpGEP: "gep",
	OpPhi: "phi", OpSigma: "sigma", OpCopy: "copy", OpCall: "call",
	OpBr: "br", OpJmp: "jmp", OpRet: "ret",
}

func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// IsBinOp reports whether op is a binary arithmetic operation.
func (op Op) IsBinOp() bool { return op >= OpAdd && op <= OpShr }

// IsTerminator reports whether op ends a basic block.
func (op Op) IsTerminator() bool {
	return op == OpBr || op == OpJmp || op == OpRet
}

// CmpPred is the predicate of an OpICmp instruction. Comparisons are
// signed; the core language of the paper only needs strict and
// non-strict orderings plus (in)equality.
type CmpPred int

// Comparison predicates.
const (
	CmpEQ CmpPred = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

var predNames = [...]string{
	CmpEQ: "eq", CmpNE: "ne", CmpLT: "lt", CmpLE: "le",
	CmpGT: "gt", CmpGE: "ge",
}

func (p CmpPred) String() string {
	if int(p) < len(predNames) {
		return predNames[p]
	}
	return fmt.Sprintf("pred(%d)", int(p))
}

// Negate returns the predicate that holds when p does not.
func (p CmpPred) Negate() CmpPred {
	switch p {
	case CmpEQ:
		return CmpNE
	case CmpNE:
		return CmpEQ
	case CmpLT:
		return CmpGE
	case CmpLE:
		return CmpGT
	case CmpGT:
		return CmpLE
	case CmpGE:
		return CmpLT
	}
	return p
}

// Swap returns the predicate with its operands exchanged, i.e. the q
// such that (a p b) == (b q a).
func (p CmpPred) Swap() CmpPred {
	switch p {
	case CmpLT:
		return CmpGT
	case CmpLE:
		return CmpGE
	case CmpGT:
		return CmpLT
	case CmpGE:
		return CmpLE
	}
	return p
}

// Eval applies the predicate to concrete values.
func (p CmpPred) Eval(a, b int64) bool {
	switch p {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	}
	return false
}

// Instr is a single IR instruction. One struct represents every opcode;
// the operand slice Args is interpreted per Op, and a handful of
// op-specific fields carry what operands cannot. Instructions that
// produce a value implement Value.
type Instr struct {
	Op   Op
	name string
	// Typ is the result type; Void for instructions with no result.
	Typ Type
	// Args are the value operands, interpreted per opcode.
	Args []Value

	// Pred is the comparison predicate (OpICmp only).
	Pred CmpPred
	// AllocTyp is the element type allocated (OpAlloca only).
	AllocTyp Type
	// NumElems is the number of elements allocated (OpAlloca only).
	NumElems int64
	// Callee is the called function, if it is defined in this module
	// (OpCall only).
	Callee *Func
	// CalleeName is the name of the called function; set even when
	// Callee is nil (external call).
	CalleeName string
	// PhiBlocks[i] is the predecessor block associated with incoming
	// value Args[i] (OpPhi only).
	PhiBlocks []*Block
	// Succs are the successor blocks (OpBr: [true, false]; OpJmp:
	// [target]).
	Succs []*Block
	// Cmp is the comparison whose outcome is known at this sigma
	// (OpSigma only).
	Cmp *Instr
	// OnTrue reports whether the sigma sits on the true edge of Cmp
	// (OpSigma only).
	OnTrue bool
	// CmpSide is 0 when the sigma refines Cmp's left operand and 1
	// for the right operand (OpSigma only). Recorded explicitly
	// because later live-range splits can rewrite the operand and
	// break identification by pointer equality.
	CmpSide int
	// SubUser is the subtraction whose operand this copy splits
	// (OpCopy only; nil for plain copies).
	SubUser *Instr

	// Line is the 1-based source line this instruction was lowered
	// from; 0 means unknown. Printed and parsed as a trailing
	// "!line N" so locations survive a textual round trip.
	Line int

	// Blk is the block containing the instruction.
	Blk *Block
}

// Type returns the result type of the instruction.
func (in *Instr) Type() Type { return in.Typ }

// Name returns the result name without the % sigil.
func (in *Instr) Name() string { return in.name }

// SetName renames the instruction's result.
func (in *Instr) SetName(n string) { in.name = n }

// Ref returns "%name".
func (in *Instr) Ref() string { return "%" + in.name }

func (in *Instr) isValue() {}

// HasResult reports whether the instruction defines a value.
func (in *Instr) HasResult() bool {
	switch in.Op {
	case OpStore, OpBr, OpJmp, OpRet:
		return false
	case OpCall:
		return !Equal(in.Typ, Void)
	}
	return true
}

// ReplaceUses replaces every occurrence of old in the operand list
// with new and reports how many replacements were made.
func (in *Instr) ReplaceUses(old, new Value) int {
	n := 0
	for i, a := range in.Args {
		if a == old {
			in.Args[i] = new
			n++
		}
	}
	return n
}

// Incoming returns the phi operand flowing in from predecessor b, or
// nil if b is not an incoming block. Panics unless in is a phi.
func (in *Instr) Incoming(b *Block) Value {
	if in.Op != OpPhi {
		panic("ir: Incoming on non-phi")
	}
	for i, pb := range in.PhiBlocks {
		if pb == b {
			return in.Args[i]
		}
	}
	return nil
}

// String renders the instruction in the textual syntax.
func (in *Instr) String() string { return printInstr(in) }
