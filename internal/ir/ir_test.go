package ir

import (
	"strings"
	"testing"
)

func TestTypeString(t *testing.T) {
	cases := []struct {
		typ  Type
		want string
	}{
		{I64, "i64"},
		{I1, "i1"},
		{Ptr(I64), "i64*"},
		{Ptr(Ptr(I32)), "i32**"},
		{ArrayOf(10, I64), "[10 x i64]"},
		{Ptr(ArrayOf(4, I8)), "[4 x i8]*"},
		{Void, "void"},
	}
	for _, c := range cases {
		if got := c.typ.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestTypeEqual(t *testing.T) {
	if !Equal(Ptr(I64), Ptr(&IntType{Bits: 64})) {
		t.Error("structurally equal pointer types compare unequal")
	}
	if Equal(Ptr(I64), Ptr(I32)) {
		t.Error("i64* equals i32*")
	}
	if Equal(ArrayOf(3, I64), ArrayOf(4, I64)) {
		t.Error("arrays of different length compare equal")
	}
	if !Equal(Void, Void) {
		t.Error("void not equal to itself")
	}
}

func TestTypeSize(t *testing.T) {
	if got := I64.SizeBytes(); got != 8 {
		t.Errorf("i64 size = %d, want 8", got)
	}
	if got := I1.SizeBytes(); got != 1 {
		t.Errorf("i1 size = %d, want 1", got)
	}
	if got := Ptr(I8).SizeBytes(); got != 8 {
		t.Errorf("pointer size = %d, want 8", got)
	}
	if got := ArrayOf(10, I32).SizeBytes(); got != 40 {
		t.Errorf("[10 x i32] size = %d, want 40", got)
	}
}

func TestPredHelpers(t *testing.T) {
	for _, p := range []CmpPred{CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE} {
		if p.Negate().Negate() != p {
			t.Errorf("double negation of %s is not identity", p)
		}
		if p.Swap().Swap() != p {
			t.Errorf("double swap of %s is not identity", p)
		}
		for a := int64(-2); a <= 2; a++ {
			for b := int64(-2); b <= 2; b++ {
				if p.Eval(a, b) == p.Negate().Eval(a, b) {
					t.Errorf("%s and its negation agree on (%d,%d)", p, a, b)
				}
				if p.Eval(a, b) != p.Swap().Eval(b, a) {
					t.Errorf("%s swapped disagrees on (%d,%d)", p, a, b)
				}
			}
		}
	}
}

// buildLoop constructs, via the Builder, the canonical counted loop
//
//	for (i = 0; i < n; i++) v[i] = i;
func buildLoop(t *testing.T) *Module {
	t.Helper()
	m := NewModule("loop")
	f := m.AddFunc("fill", Void, []string{"v", "n"}, []Type{Ptr(I64), I64})
	entry := f.NewBlock("entry")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")

	b := NewBuilder(f)
	b.SetBlock(entry)
	b.Jmp(head)

	b.SetBlock(head)
	i := b.Named("i").Phi(I64)
	c := b.ICmp(CmpLT, i, f.Params[1])
	b.Br(c, body, exit)

	b.SetBlock(body)
	p := b.GEP(f.Params[0], i)
	b.Store(i, p)
	i2 := b.Add(i, ConstInt(1))
	b.Jmp(head)

	AddIncoming(i, ConstInt(0), entry)
	AddIncoming(i, i2, body)

	b.SetBlock(exit)
	b.Ret(nil)

	f.RecomputeCFG()
	if err := Verify(m); err != nil {
		t.Fatalf("built module fails verification: %v", err)
	}
	return m
}

func TestBuilderLoop(t *testing.T) {
	m := buildLoop(t)
	f := m.FuncByName("fill")
	if f == nil {
		t.Fatal("function not found")
	}
	if got := len(f.Blocks); got != 4 {
		t.Fatalf("blocks = %d, want 4", got)
	}
	head := f.Blocks[1]
	if got := len(head.Preds); got != 2 {
		t.Fatalf("head preds = %d, want 2", got)
	}
	if got := len(head.Phis()); got != 1 {
		t.Fatalf("head phis = %d, want 1", got)
	}
	if got := f.NumInstrs(); got != 9 {
		t.Errorf("instrs = %d, want 9", got)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	m := buildLoop(t)
	text := m.String()
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\nsource:\n%s", err, text)
	}
	text2 := m2.String()
	if text != text2 {
		t.Errorf("round trip not stable:\nfirst:\n%s\nsecond:\n%s", text, text2)
	}
}

const sampleIR = `
module "sample"

global @g [16 x i64]

func @sum(i64* %v, i64 %n) i64 {
entry:
  jmp head
head:
  %i = phi i64 [0, entry], [%i2, body]
  %s = phi i64 [0, entry], [%s2, body]
  %c = icmp lt %i, %n
  br %c, body, exit
body:
  %p = gep %v, %i
  %x = load %p
  %s2 = add %s, %x
  %i2 = add %i, 1
  jmp head
exit:
  ret %s
}
`

func TestParseSample(t *testing.T) {
	m, err := Parse(sampleIR)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if m.Name != "sample" {
		t.Errorf("module name = %q", m.Name)
	}
	g := m.GlobalByName("g")
	if g == nil {
		t.Fatal("global @g missing")
	}
	if g.Type().String() != "[16 x i64]*" {
		t.Errorf("global type = %s", g.Type())
	}
	f := m.FuncByName("sum")
	if f == nil {
		t.Fatal("func @sum missing")
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(f.Blocks))
	}
	head := f.blockByName("head")
	if len(head.Phis()) != 2 {
		t.Fatalf("phis = %d, want 2", len(head.Phis()))
	}
	// The forward reference %i2 must have been resolved to the add.
	iPhi := head.Phis()[0]
	inc, ok := iPhi.Args[1].(*Instr)
	if !ok || inc.Op != OpAdd {
		t.Fatalf("phi incoming not resolved to add: %v", iPhi.Args[1])
	}
}

func TestParseCallAndMalloc(t *testing.T) {
	src := `
func @alloc(i64 %n) i64* {
entry:
  %sz = mul %n, 8
  %p = malloc i64, %sz
  ret %p
}

func @main() i64 {
entry:
  %p = call i64* @alloc(10)
  %q = call i64 @external(%p, 3)
  ret %q
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	main := m.FuncByName("main")
	var calls []*Instr
	main.Instrs(func(in *Instr) bool {
		if in.Op == OpCall {
			calls = append(calls, in)
		}
		return true
	})
	if len(calls) != 2 {
		t.Fatalf("calls = %d, want 2", len(calls))
	}
	if calls[0].Callee == nil || calls[0].Callee.FName != "alloc" {
		t.Error("intra-module callee not resolved")
	}
	if calls[1].Callee != nil {
		t.Error("external callee should stay unresolved")
	}
	if calls[1].CalleeName != "external" {
		t.Errorf("external callee name = %q", calls[1].CalleeName)
	}
}

func TestParseSigmaCopy(t *testing.T) {
	src := `
func @f(i64 %a, i64 %b) i64 {
entry:
  %c = icmp lt %a, %b
  br %c, then, else
then:
  %at = sigma %a, cmp %c, true
  %x = sub %b, 1
  %b2 = copy %b, sub %x
  ret %at
else:
  %af = sigma %a, cmp %c, false
  ret %af
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	f := m.FuncByName("f")
	then := f.blockByName("then")
	sig := then.Instrs[0]
	if sig.Op != OpSigma || !sig.OnTrue || sig.Cmp == nil {
		t.Fatalf("bad sigma: %s", sig)
	}
	cp := then.Instrs[2]
	if cp.Op != OpCopy || cp.SubUser == nil || cp.SubUser.Op != OpSub {
		t.Fatalf("bad copy: %s", cp)
	}
	// Round trip must preserve sigma/copy annotations.
	m2, err := Parse(m.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if m.String() != m2.String() {
		t.Error("sigma/copy round trip unstable")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"undefined value", "func @f() i64 {\nentry:\n  ret %x\n}", "undefined value"},
		{"no terminator", "func @f() void {\nentry:\n  %p = alloca i64, 1\n}", "terminator"},
		{"bad opcode", "func @f() void {\nentry:\n  frob %x\n}", "unknown opcode"},
		{"terminator mid-block", "func @f() void {\nentry:\n  ret\n  ret\n}", "mid-block"},
		{"double definition", "func @f() void {\nentry:\n  %p = alloca i64, 1\n  %p = alloca i64, 1\n  ret\n}", "defined twice"},
		{"undefined global", "func @f() i64* {\nentry:\n  ret @nope\n}", "undefined global"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("parse succeeded, want error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestReplaceUses(t *testing.T) {
	m := buildLoop(t)
	f := m.FuncByName("fill")
	var add *Instr
	f.Instrs(func(in *Instr) bool {
		if in.Op == OpAdd {
			add = in
		}
		return true
	})
	old := add.Args[0]
	n := add.ReplaceUses(old, ConstInt(7))
	if n != 1 {
		t.Fatalf("ReplaceUses = %d, want 1", n)
	}
	c, ok := add.Args[0].(*Const)
	if !ok || c.Val != 7 {
		t.Fatalf("operand not replaced: %v", add.Args[0])
	}
}

func TestFreshNamesUnique(t *testing.T) {
	m := NewModule("x")
	f := m.AddFunc("f", Void, nil, nil)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		n := f.FreshName("t")
		if seen[n] {
			t.Fatalf("FreshName repeated %q", n)
		}
		seen[n] = true
	}
}

func TestBlockInsertRemove(t *testing.T) {
	m := NewModule("x")
	f := m.AddFunc("f", Void, nil, nil)
	b := f.NewBlock("entry")
	bld := NewBuilder(f)
	bld.SetBlock(b)
	a1 := bld.Alloca(I64, 1)
	bld.Ret(nil)
	cp := &Instr{Op: OpCopy, Typ: Ptr(I64), Args: []Value{a1}, name: "c"}
	b.Insert(1, cp)
	if b.Instrs[1] != cp {
		t.Fatal("Insert did not place instruction")
	}
	if cp.Blk != b {
		t.Fatal("Insert did not set parent")
	}
	b.RemoveAt(1)
	if len(b.Instrs) != 2 {
		t.Fatalf("RemoveAt left %d instrs", len(b.Instrs))
	}
}

func TestVerifyCatchesPhiMismatch(t *testing.T) {
	m := buildLoop(t)
	f := m.FuncByName("fill")
	phi := f.Blocks[1].Phis()[0]
	phi.Args = phi.Args[:1]
	phi.PhiBlocks = phi.PhiBlocks[:1]
	if err := Verify(m); err == nil {
		t.Error("verifier accepted phi with missing incoming edge")
	}
}

func TestIncoming(t *testing.T) {
	m := buildLoop(t)
	f := m.FuncByName("fill")
	entry, body := f.Blocks[0], f.Blocks[2]
	phi := f.Blocks[1].Phis()[0]
	v := phi.Incoming(entry)
	if c, ok := v.(*Const); !ok || c.Val != 0 {
		t.Errorf("Incoming(entry) = %v, want 0", v)
	}
	if phi.Incoming(body) == nil {
		t.Error("Incoming(body) = nil")
	}
	if phi.Incoming(f.Blocks[3]) != nil {
		t.Error("Incoming(exit) should be nil")
	}
}
