package ir

import "fmt"

// Value is anything that can appear as an instruction operand: integer
// constants, globals, function parameters, and the results of
// instructions. Values are compared by identity except for constants,
// which are interned per (value, type) pair by the Builder but may also
// be constructed directly.
type Value interface {
	// Type returns the type of the value.
	Type() Type
	// Name returns the bare name of the value, without the %/@ sigil
	// used by the textual syntax. Constants return their decimal
	// representation.
	Name() string
	// Ref returns the operand rendering used by the printer, e.g.
	// "%x", "@g", or "42".
	Ref() string
	isValue()
}

// Const is an integer constant.
type Const struct {
	Val int64
	Typ Type
}

// ConstInt returns a 64-bit integer constant.
func ConstInt(v int64) *Const { return &Const{Val: v, Typ: I64} }

// ConstBool returns an i1 constant, 1 for true and 0 for false.
func ConstBool(b bool) *Const {
	v := int64(0)
	if b {
		v = 1
	}
	return &Const{Val: v, Typ: I1}
}

// Type returns the constant's type.
func (c *Const) Type() Type { return c.Typ }

// Name returns the decimal representation of the constant.
func (c *Const) Name() string { return fmt.Sprintf("%d", c.Val) }

// Ref returns the operand rendering of the constant.
func (c *Const) Ref() string { return c.Name() }

func (c *Const) isValue() {}

// Undef is an undefined value of a given type. It appears when SSA
// construction finds a load from a promoted alloca on a path with no
// preceding store; well-formed frontends never leave one reachable.
type Undef struct {
	Typ Type
}

// Type returns the undef's type.
func (u *Undef) Type() Type { return u.Typ }

// Name returns "undef".
func (u *Undef) Name() string { return "undef" }

// Ref returns "undef".
func (u *Undef) Ref() string { return "undef" }

func (u *Undef) isValue() {}

// Global is a module-level variable. Its value type is always a
// pointer to the declared element type, mirroring LLVM globals.
type Global struct {
	GName string
	// Elem is the type of the storage the global names.
	Elem Type
}

// Type returns the pointer type of the global.
func (g *Global) Type() Type { return Ptr(g.Elem) }

// Name returns the global's name without the @ sigil.
func (g *Global) Name() string { return g.GName }

// Ref returns "@name".
func (g *Global) Ref() string { return "@" + g.GName }

func (g *Global) isValue() {}

// Param is a formal parameter of a function.
type Param struct {
	PName string
	Typ   Type
	// Fn is the function the parameter belongs to.
	Fn *Func
	// Index is the position of the parameter in the signature.
	Index int
}

// Type returns the parameter's type.
func (p *Param) Type() Type { return p.Typ }

// Name returns the parameter's name without the % sigil.
func (p *Param) Name() string { return p.PName }

// Ref returns "%name".
func (p *Param) Ref() string { return "%" + p.PName }

func (p *Param) isValue() {}
