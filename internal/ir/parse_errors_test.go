package ir

import (
	"strings"
	"testing"
)

// TestParserRejects sweeps the parser's error branches: every
// malformed fragment must produce a line-numbered diagnostic, never a
// panic or a silently wrong module.
func TestParserRejects(t *testing.T) {
	wrap := func(body string) string {
		return "func @f(i64 %a) i64 {\nentry:\n" + body + "\n}"
	}
	cases := []struct {
		name, src, wantSub string
	}{
		{"top-level junk", "wibble", "unexpected token"},
		{"global needs @", "global g i64", "expected @name"},
		{"func needs @", "func f() i64 { }", "expected @name"},
		{"bad array type", "global @g [x i64]", "expected array length"},
		{"array missing x", "global @g [4 i64]", "expected 'x'"},
		{"bad int type", "global @g i999", "bad integer type"},
		{"type junk", "global @g {}", "expected type"},
		{"param needs name", "func @f(i64) i64 {\nentry:\n  ret 0\n}", "expected %name"},
		{"eof in body", "func @f() i64 {\nentry:\n  ret 0", "unexpected EOF"},
		{"alloca count", wrap("  %p = alloca i64, %a\n  ret 0"), "element count"},
		{"bad predicate", wrap("  %c = icmp zz %a, 1\n  ret 0"), "predicate"},
		{"phi bad label", wrap("  %p = phi i64 [1, 2]\n  ret 0"), "block label"},
		{"sigma needs cmp kw", wrap("  %s = sigma %a, %a, true\n  ret 0"), "expected 'cmp'"},
		{"sigma needs cmp ref", wrap("  %c = icmp lt %a, 1\n  br %c, x, y\nx:\n  %s = sigma %a, cmp 5, true\n  ret 0\ny:\n  ret 1"), "expected %cmp"},
		{"sigma bad arm", wrap("  %c = icmp lt %a, 1\n  br %c, x, y\nx:\n  %s = sigma %a, cmp %c, maybe\n  ret 0\ny:\n  ret 1"), "true/false"},
		{"sigma bad side", wrap("  %c = icmp lt %a, 1\n  br %c, x, y\nx:\n  %s = sigma %a, cmp %c, true, middle\n  ret 0\ny:\n  ret 1"), "left/right"},
		{"sigma cmp not icmp", wrap("  %d = add %a, 1\n  %s = sigma %a, cmp %d, true\n  ret 0"), "not an icmp"},
		{"copy bad kw", wrap("  %d = sub %a, 1\n  %k = copy %a, mul %d\n  ret 0"), "expected 'sub'"},
		{"call needs paren", wrap("  %r = call i64 @g %a\n  ret %r"), `expected "("`},
		{"call needs @", wrap("  %r = call i64 g(%a)\n  ret %r"), "expected @callee"},
		{"br labels", wrap("  %c = icmp lt %a, 1\n  br %c, 1, 2"), "block labels"},
		{"jmp label", wrap("  jmp 7"), "block label"},
		{"operand junk", wrap("  %x = add }, 1\n  ret 0"), "expected operand"},
		{"malloc size type", wrap("  %p = malloc i64, %p\n  ret 0"), "must be integer"},
		{"referenced undefined block", "func @f() i64 {\nentry:\n  jmp nowhere\n}", "never defined"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("accepted malformed input:\n%s", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

// TestPrintAllOps pins the printer's rendering for each opcode.
func TestPrintAllOps(t *testing.T) {
	src := `
global @g i64

func @callee(i64 %x) i64 {
entry:
  ret %x
}

func @f(i64* %p, i64 %a) i64 {
entry:
  %s1 = alloca i64, 4
  %m = malloc i64, %a
  %v = load %p
  store %v, %m
  %add = add %a, 1
  %sub = sub %a, 2
  %k = copy %a, sub %sub
  %mul = mul %add, %sub
  %dv = div %mul, 3
  %rm = rem %dv, 5
  %an = and %rm, 7
  %orr = or %an, 1
  %xo = xor %orr, 2
  %sl = shl %xo, 1
  %sr = shr %sl, 1
  %gp = gep %p, %sr
  %ld = load @g
  %cl = call i64 @callee(%ld)
  %ce = call void @ext()
  %c = icmp ge %cl, %a
  br %c, t, e
t:
  %st = sigma %a, cmp %c, true, right
  jmp j
e:
  jmp j
j:
  %ph = phi i64 [%st, t], [%a, e]
  ret %ph
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	text := m.String()
	for _, want := range []string{
		"alloca i64, 4", "malloc i64, %a", "load %p", "store %v, %m",
		"copy %a, sub %sub", "gep %p, %sr", "call i64 @callee(%ld)",
		"call void @ext()", "icmp ge", "sigma %a, cmp %c, true, right",
		"phi i64 [%st, t], [%a, e]", "global @g i64",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("printed module missing %q:\n%s", want, text)
		}
	}
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if m2.String() != text {
		t.Error("round trip unstable")
	}
}

// TestOpStringCoverage exercises the String methods on every op and
// predicate, including out-of-range values.
func TestOpStringCoverage(t *testing.T) {
	for op := OpAlloca; op <= OpRet; op++ {
		if op.String() == "" {
			t.Errorf("op %d has empty name", int(op))
		}
	}
	if !strings.Contains(Op(999).String(), "999") {
		t.Error("out-of-range op not diagnosed")
	}
	if !strings.Contains(CmpPred(99).String(), "99") {
		t.Error("out-of-range pred not diagnosed")
	}
	if (&FuncType{Params: []Type{I64}, Ret: Void}).String() != "void(i64)" {
		t.Errorf("functype rendering: %s", &FuncType{Params: []Type{I64}, Ret: Void})
	}
	if (&FuncType{}).SizeBytes() != 0 || Void.SizeBytes() != 0 {
		t.Error("non-storage sizes")
	}
	u := &Undef{Typ: I64}
	if u.Name() != "undef" || u.Ref() != "undef" || u.Type() != I64 {
		t.Error("undef accessors")
	}
}
