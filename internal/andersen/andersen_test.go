package andersen

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/ir"
	"repro/internal/minic"
)

func analyze(t *testing.T, src string) (*ir.Module, *Analysis) {
	t.Helper()
	m := minic.MustCompile("t", src)
	return m, Analyze(m)
}

func findOp(f *ir.Func, op ir.Op, nth int) *ir.Instr {
	var out *ir.Instr
	n := 0
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == op {
			if n == nth {
				out = in
				return false
			}
			n++
		}
		return true
	})
	return out
}

func TestDistinctMallocs(t *testing.T) {
	m, a := analyze(t, `
int f() {
  int *p = malloc(8);
  int *q = malloc(8);
  *p = 1;
  *q = 2;
  return *p + *q;
}
`)
	f := m.FuncByName("f")
	p := findOp(f, ir.OpMalloc, 0)
	q := findOp(f, ir.OpMalloc, 1)
	if got := a.Alias(alias.Loc(p), alias.Loc(q)); got != alias.NoAlias {
		t.Errorf("malloc vs malloc = %s, want NoAlias", got)
	}
	if got := a.Alias(alias.Loc(p), alias.Loc(p)); got != alias.MayAlias {
		t.Errorf("p vs p = %s, want MayAlias (same object)", got)
	}
}

func TestFlowThroughMemory(t *testing.T) {
	// q = *slot where slot holds p: Andersen sees through the store,
	// so q and p share an object.
	m, a := analyze(t, `
int f() {
  int *p = malloc(8);
  int **slot = malloc(8);
  *slot = p;
  int *q = *slot;
  int *r = malloc(8);
  return *q + *r;
}
`)
	f := m.FuncByName("f")
	pM := findOp(f, ir.OpMalloc, 0)
	q := findOp(f, ir.OpLoad, 0)
	// Find the load producing q: the pointer-typed load.
	var ptrLoad *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpLoad && ir.IsPtr(in.Typ) {
			ptrLoad = in
		}
		return true
	})
	if ptrLoad == nil {
		t.Fatalf("no pointer load:\n%s", f)
	}
	q = ptrLoad
	if got := a.Alias(alias.Loc(pM), alias.Loc(q)); got != alias.MayAlias {
		t.Errorf("p vs *slot = %s, want MayAlias (flows through memory)", got)
	}
	rM := findOp(f, ir.OpMalloc, 2)
	if got := a.Alias(alias.Loc(q), alias.Loc(rM)); got != alias.NoAlias {
		t.Errorf("*slot vs fresh malloc = %s, want NoAlias", got)
	}
}

func TestPhiMerge(t *testing.T) {
	m, a := analyze(t, `
int f(int c) {
  int *p = malloc(8);
  int *q = malloc(8);
  int *r = malloc(8);
  int *sel;
  if (c) { sel = p; } else { sel = q; }
  return *sel + *r;
}
`)
	f := m.FuncByName("f")
	p := findOp(f, ir.OpMalloc, 0)
	q := findOp(f, ir.OpMalloc, 1)
	r := findOp(f, ir.OpMalloc, 2)
	var phi *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpPhi && ir.IsPtr(in.Typ) {
			phi = in
		}
		return true
	})
	if phi == nil {
		t.Fatalf("no pointer phi:\n%s", f)
	}
	if got := a.Alias(alias.Loc(phi), alias.Loc(p)); got != alias.MayAlias {
		t.Errorf("sel vs p = %s, want MayAlias", got)
	}
	if got := a.Alias(alias.Loc(phi), alias.Loc(q)); got != alias.MayAlias {
		t.Errorf("sel vs q = %s, want MayAlias", got)
	}
	if got := a.Alias(alias.Loc(phi), alias.Loc(r)); got != alias.NoAlias {
		t.Errorf("sel vs r = %s, want NoAlias", got)
	}
}

func TestInterproceduralFlow(t *testing.T) {
	m, a := analyze(t, `
int* id(int *x) { return x; }

int f() {
  int *p = malloc(8);
  int *q = id(p);
  int *r = malloc(8);
  return *q + *r;
}
`)
	f := m.FuncByName("f")
	p := findOp(f, ir.OpMalloc, 0)
	r := findOp(f, ir.OpMalloc, 1)
	call := findOp(f, ir.OpCall, 0)
	if got := a.Alias(alias.Loc(call), alias.Loc(p)); got != alias.MayAlias {
		t.Errorf("id(p) vs p = %s, want MayAlias", got)
	}
	if got := a.Alias(alias.Loc(call), alias.Loc(r)); got != alias.NoAlias {
		t.Errorf("id(p) vs r = %s, want NoAlias", got)
	}
}

func TestUnknownParams(t *testing.T) {
	m, a := analyze(t, `
int f(int *ext) {
  int *p = malloc(8);
  return *ext + *p;
}
`)
	f := m.FuncByName("f")
	ext := ir.Value(f.Params[0])
	p := findOp(f, ir.OpMalloc, 0)
	// ext points to unknown: every query involving it is MayAlias.
	if got := a.Alias(alias.Loc(ext), alias.Loc(p)); got != alias.MayAlias {
		t.Errorf("ext vs local malloc = %s, want MayAlias (unknown)", got)
	}
	sites, unknown := a.PointsTo(ext)
	if !unknown || len(sites) != 0 {
		t.Errorf("PointsTo(ext) = %v unknown=%v, want only unknown", sites, unknown)
	}
}

func TestGlobals(t *testing.T) {
	m, a := analyze(t, `
int g1[4];
int g2[4];

int f() {
  g1[0] = 1;
  g2[0] = 2;
  return g1[0] + g2[0];
}
`)
	g1 := m.GlobalByName("g1")
	g2 := m.GlobalByName("g2")
	if got := a.Alias(alias.Loc(g1), alias.Loc(g2)); got != alias.NoAlias {
		t.Errorf("g1 vs g2 = %s, want NoAlias", got)
	}
	// GEPs off a global inherit its object (field-insensitive).
	f := m.FuncByName("f")
	gep := findOp(f, ir.OpGEP, 0)
	if got := a.Alias(alias.Loc(gep), alias.Loc(g1)); got != alias.MayAlias {
		t.Errorf("g1[0] vs g1 = %s, want MayAlias", got)
	}
}

func TestExternalCallEscape(t *testing.T) {
	m, a := analyze(t, `
int f() {
  int **p = malloc(8);
  publish(p);
  int *q = *p;
  int *fresh = malloc(8);
  return *q + *fresh;
}
`)
	f := m.FuncByName("f")
	var ptrLoad *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpLoad && ir.IsPtr(in.Typ) {
			ptrLoad = in
		}
		return true
	})
	if ptrLoad == nil {
		t.Fatalf("no pointer load:\n%s", f)
	}
	// After publish(p), *p may be anything: q is unknown.
	fresh := findOp(f, ir.OpMalloc, 1)
	if got := a.Alias(alias.Loc(ptrLoad), alias.Loc(fresh)); got != alias.MayAlias {
		t.Errorf("loaded-from-published vs fresh = %s, want MayAlias", got)
	}
}

// TestComplementarity reproduces the paper's observation (Section 4.1)
// that CF and LT are complementary: CF disambiguates same-array
// derived pointers never (field-insensitive), while it resolves
// heap-object queries that LT cannot.
func TestComplementarity(t *testing.T) {
	m, a := analyze(t, `
int f(int *v, int n) {
  for (int i = 0; i < n; i++) {
    for (int j = i + 1; j < n; j++) {
      v[i] += v[j];
    }
  }
  return v[0];
}
`)
	f := m.FuncByName("f")
	g1 := findOp(f, ir.OpGEP, 0)
	g2 := findOp(f, ir.OpGEP, 1)
	if g1 == nil || g2 == nil {
		t.Fatalf("geps missing:\n%s", f)
	}
	// CF cannot separate v[i] and v[j]: same (unknown) base object.
	if got := a.Alias(alias.Loc(g1), alias.Loc(g2)); got != alias.MayAlias {
		t.Errorf("CF on v[i] vs v[j] = %s, want MayAlias", got)
	}
}
