// The reference solver: the original map-based worklist implementation
// of the same constraint system. It computes the identical least fixed
// point as the sparse solver in andersen.go but without dense nodes,
// difference propagation, or cycle collapsing, so it serves two
// purposes: it is the differential-testing oracle the optimized solver
// is checked against, and it is the "pre-PR Andersen path" the
// benchmark harness measures speedups relative to.
package andersen

import (
	"context"

	"repro/internal/bitvec"
	"repro/internal/budget"
	"repro/internal/ir"
)

// AnalyzeReference runs the reference solver on a whole module.
func AnalyzeReference(m *ir.Module) *Analysis {
	return AnalyzeReferenceCtx(context.Background(), m, Opts{})
}

// AnalyzeReferenceCtx is AnalyzeReference under a context, budget and
// skip set. The returned Analysis answers every PointsTo and Alias
// query identically to AnalyzeCtx on the same inputs.
func AnalyzeReferenceCtx(ctx context.Context, m *ir.Module, opt Opts) *Analysis {
	a := &Analysis{
		pts:   map[ir.Value]*bitvec.Set{},
		objOf: map[ir.Value]int{},
		objs:  []ir.Value{nil}, // unknown
	}
	s := &refSolver{
		a:      a,
		pts:    map[ir.Value]map[int]bool{},
		copies: map[ir.Value][]ir.Value{},
		objMem: map[int]*refMemNode{},
	}
	applyConstraints(m, opt, s)
	bgt := opt.Budget.Start(ctx)
	s.run(bgt)
	a.degraded = bgt.Err()
	s.resolve()
	return a
}

// refMemNode tracks the points-to set of an abstract object's contents.
type refMemNode struct {
	pts map[int]bool
	// outs are value nodes that load from this object.
	outs   []ir.Value
	outSet map[ir.Value]bool
}

func (n *refMemNode) addOut(dst ir.Value) bool {
	if n.outSet == nil {
		n.outSet = map[ir.Value]bool{}
	}
	if n.outSet[dst] {
		return false
	}
	n.outSet[dst] = true
	n.outs = append(n.outs, dst)
	return true
}

func (n *refMemNode) addObj(o int, s *refSolver) bool {
	if n.pts == nil {
		n.pts = map[int]bool{}
	}
	if n.pts[o] {
		return false
	}
	n.pts[o] = true
	for _, dst := range n.outs {
		s.propagate(dst, o)
	}
	return true
}

type refSolver struct {
	a *Analysis
	// pts holds the in-flight sets; resolve() converts them to the
	// Analysis's bitmap form.
	pts    map[ir.Value]map[int]bool
	copies map[ir.Value][]ir.Value // src -> dsts
	// loads[p] lists destinations of x = *p.
	loads map[ir.Value][]ir.Value
	// stores[p] lists sources of *p = x.
	stores map[ir.Value][]ir.Value
	// storeUnknownSet marks pointers whose contents escape entirely.
	storeUnknownSet map[ir.Value]bool
	// memStores links stored values to the memory nodes they flow
	// into, so later points-to growth keeps propagating.
	memStores map[ir.Value][]*refMemNode
	objMem    map[int]*refMemNode

	work []ir.Value
	in   map[ir.Value]bool
}

func (s *refSolver) ptsOf(v ir.Value) map[int]bool {
	m := s.pts[v]
	if m == nil {
		m = map[int]bool{}
		s.pts[v] = m
	}
	return m
}

func (s *refSolver) enqueue(v ir.Value) {
	if s.in == nil {
		s.in = map[ir.Value]bool{}
	}
	if !s.in[v] {
		s.in[v] = true
		s.work = append(s.work, v)
	}
}

func (s *refSolver) memOf(o int) *refMemNode {
	if n, ok := s.objMem[o]; ok {
		return n
	}
	n := &refMemNode{}
	s.objMem[o] = n
	return n
}

// --- constraintSink ---

func (s *refSolver) newObj(site ir.Value) int {
	id := len(s.a.objs)
	s.a.objs = append(s.a.objs, site)
	s.a.objOf[site] = id
	return id
}

func (s *refSolver) seedUnknownContents() {
	s.memOf(unknownObj).addObj(unknownObj, s)
}

func (s *refSolver) addPoints(v ir.Value, obj int) {
	if !s.ptsOf(v)[obj] {
		s.ptsOf(v)[obj] = true
		s.enqueue(v)
	}
}

func (s *refSolver) propagate(dst ir.Value, obj int) {
	if !s.ptsOf(dst)[obj] {
		s.ptsOf(dst)[obj] = true
		s.enqueue(dst)
	}
}

func (s *refSolver) addCopy(src, dst ir.Value) {
	if !ir.IsPtr(src.Type()) && !isPtrLike(src) {
		return
	}
	s.copies[src] = append(s.copies[src], dst)
	for o := range s.ptsOf(src) {
		s.propagate(dst, o)
	}
}

func (s *refSolver) addLoad(p, dst ir.Value) {
	if s.loads == nil {
		s.loads = map[ir.Value][]ir.Value{}
	}
	s.loads[p] = append(s.loads[p], dst)
	s.enqueue(p)
}

func (s *refSolver) addStore(val, p ir.Value) {
	if s.stores == nil {
		s.stores = map[ir.Value][]ir.Value{}
	}
	s.stores[p] = append(s.stores[p], val)
	s.enqueue(p)
}

func (s *refSolver) addStoreUnknown(p ir.Value) {
	if s.storeUnknownSet == nil {
		s.storeUnknownSet = map[ir.Value]bool{}
	}
	s.storeUnknownSet[p] = true
	s.enqueue(p)
}

func (s *refSolver) run(bgt *budget.B) {
	for len(s.work) > 0 {
		if bgt.Tick() != nil {
			// Interrupted before the least fixed point: the partial
			// sets under-approximate and must not answer queries. The
			// caller records bgt.Err() as Analysis.degraded.
			return
		}
		v := s.work[0]
		s.work = s.work[1:]
		s.in[v] = false
		vp := s.ptsOf(v)
		// Copy edges.
		for _, dst := range s.copies[v] {
			for o := range vp {
				s.propagate(dst, o)
			}
		}
		// Load edges: dst ⊇ contents(o) for each pointee o.
		for _, dst := range s.loads[v] {
			for o := range vp {
				n := s.memOf(o)
				n.addOut(dst)
				for po := range n.pts {
					s.propagate(dst, po)
				}
			}
		}
		// Store edges: contents(o) ⊇ pts(val), now and as pts(val)
		// grows later (via memStores).
		for _, val := range s.stores[v] {
			for o := range vp {
				n := s.memOf(o)
				s.linkValToMem(val, n)
				for po := range s.ptsOf(val) {
					n.addObj(po, s)
				}
			}
		}
		if s.storeUnknownSet[v] {
			for o := range vp {
				s.memOf(o).addObj(unknownObj, s)
			}
		}
		// If v is itself the source of earlier store links, push its
		// full set into the linked memory nodes.
		for _, n := range s.memStores[v] {
			for o := range vp {
				n.addObj(o, s)
			}
		}
	}
}

// linkValToMem records that every object in pts(val) must flow into
// memory node n, including objects discovered later.
func (s *refSolver) linkValToMem(val ir.Value, n *refMemNode) {
	if s.memStores == nil {
		s.memStores = map[ir.Value][]*refMemNode{}
	}
	for _, existing := range s.memStores[val] {
		if existing == n {
			return
		}
	}
	s.memStores[val] = append(s.memStores[val], n)
}

// resolve converts the map-based sets into the Analysis's interned
// bitmap form.
func (s *refSolver) resolve() {
	in := bitvec.NewInterner()
	for v, m := range s.pts {
		if len(m) == 0 {
			continue
		}
		set := &bitvec.Set{}
		for o := range m {
			set.Add(o)
		}
		s.a.pts[v] = in.Intern(set)
	}
}
