// Package andersen implements an inclusion-based, flow- and
// context-insensitive, field-insensitive points-to analysis in the
// style of Andersen's thesis. It plays the role of CF in the paper's
// Figure 10: the CFL/inclusion-based comparator whose strengths
// (distinguishing allocation sites through loads and stores) are
// complementary to the strict-inequality analysis.
//
// Abstract objects are allocation sites (allocas, mallocs, globals)
// plus a distinguished universal object standing for memory unknown
// to the module (externally supplied pointers). Constraints:
//
//	p = &obj    pts(p) ⊇ {obj}
//	p = q       pts(p) ⊇ pts(q)          (copy, phi, sigma, gep)
//	p = *q      pts(p) ⊇ pts(o) ∀o∈pts(q)  (load)
//	*q = p      pts(o) ⊇ pts(p) ∀o∈pts(q)  (store)
//
// plus parameter/argument and return-value copies for calls, solved
// with a worklist to the least fixed point.
//
// The solver works on a dense constraint graph: every pointer value
// and every abstract object's contents gets an integer node, points-to
// sets are sparse bitmaps (internal/bitvec), and propagation is by
// difference — a node forwards only the objects its set gained since
// its last visit, not the whole set. Copy cycles (which force every
// node on the cycle to the same fixed point) are collapsed online with
// a union-find: periodic Tarjan passes over the copy edges merge
// strongly connected components mid-solve, so a cycle discovered
// through a load or store edge stops costing quadratic re-propagation.
// Final sets are hash-consed, so the many values that end with equal
// points-to sets share one allocation. The fixed point — and therefore
// every PointsTo and Alias answer — is identical to the reference
// solver's (see reference.go); only the route there differs.
package andersen

import (
	"context"

	"repro/internal/alias"
	"repro/internal/bitvec"
	"repro/internal/budget"
	"repro/internal/ir"
)

// object identifiers are dense indices; object 0 is the universal
// unknown object.
const unknownObj = 0

// Analysis holds the solved points-to sets in resolved form: one
// hash-consed sparse bitmap of object ids per pointer value.
type Analysis struct {
	// pts maps each pointer value to the set of object ids it may
	// point to. Sets are interned: equal sets share one instance and
	// must not be mutated.
	pts map[ir.Value]*bitvec.Set
	// objOf maps allocation sites to their object id.
	objOf map[ir.Value]int
	// objs[i] is the allocation site of object i (nil for unknown).
	objs []ir.Value
	// degraded records budget exhaustion. Andersen's solver grows
	// sets toward the least fixed point, so an interrupted run
	// UNDER-approximates: partial sets must not be trusted. While
	// degraded is set, Alias answers MayAlias and PointsTo reports
	// unknown for every query.
	degraded error
}

// Name returns "CF", the label used in the paper's Figure 10.
func (a *Analysis) Name() string { return "CF" }

// Degraded returns the budget-exhaustion error when the solve was
// interrupted (the error wraps budget.ErrExceeded), or nil when the
// points-to sets reached their fixed point and are fully trustworthy.
func (a *Analysis) Degraded() error { return a.degraded }

// Opts configures a hardened run.
type Opts struct {
	// Budget bounds the whole-module solve.
	Budget budget.Spec
	// Skip lists functions whose bodies must not be traversed (the
	// harness passes functions broken by an upstream stage). Calls to
	// a skipped function are treated like calls to external code:
	// pointer arguments escape to unknown memory and pointer results
	// are unknown — the sound over-approximation of whatever the
	// skipped body would have done.
	Skip map[*ir.Func]bool
}

// Unanalyzed returns a degraded Analysis carrying cause: every Alias
// query answers MayAlias and every PointsTo reports unknown. The
// harness substitutes it when the whole stage fails.
func Unanalyzed(cause error) *Analysis {
	return &Analysis{
		pts:      map[ir.Value]*bitvec.Set{},
		objOf:    map[ir.Value]int{},
		objs:     []ir.Value{nil},
		degraded: cause,
	}
}

// Analyze runs the analysis on a whole module.
func Analyze(m *ir.Module) *Analysis {
	return AnalyzeCtx(context.Background(), m, Opts{})
}

// AnalyzeCtx is Analyze under a context, budget and skip set.
func AnalyzeCtx(ctx context.Context, m *ir.Module, opt Opts) *Analysis {
	a := &Analysis{
		pts:   map[ir.Value]*bitvec.Set{},
		objOf: map[ir.Value]int{},
		objs:  []ir.Value{nil}, // unknown
	}
	s := newSolver(a, nodeHint(m))
	applyConstraints(m, opt, s)
	bgt := opt.Budget.Start(ctx)
	s.run(bgt)
	a.degraded = bgt.Err()
	s.resolve()
	return a
}

// applyConstraints walks the module once and feeds every constraint to
// gen. The traversal (and therefore node numbering and seeding order)
// is deterministic: globals, then functions in module order, then
// instructions in block order.
func applyConstraints(m *ir.Module, opt Opts, gen constraintSink) {
	// Seed address-of constraints.
	for _, g := range m.Globals {
		gen.addPoints(g, gen.newObj(g))
	}
	callers := map[*ir.Func]bool{}
	for _, f := range m.Funcs {
		if opt.Skip[f] {
			continue
		}
		f.Instrs(func(in *ir.Instr) bool {
			switch in.Op {
			case ir.OpAlloca, ir.OpMalloc:
				gen.addPoints(in, gen.newObj(in))
			case ir.OpCall:
				if in.Callee != nil && !opt.Skip[in.Callee] {
					callers[in.Callee] = true
				}
			}
			return true
		})
	}
	// The unknown object's contents point to unknown.
	gen.seedUnknownContents()

	// Structural constraints.
	for _, f := range m.Funcs {
		if opt.Skip[f] {
			continue
		}
		f.Instrs(func(in *ir.Instr) bool {
			switch in.Op {
			case ir.OpGEP:
				// Field-insensitive: derived pointer inherits the
				// base's objects.
				gen.addCopy(in.Args[0], in)
			case ir.OpCopy, ir.OpSigma:
				gen.addCopy(in.Args[0], in)
			case ir.OpPhi:
				for _, v := range in.Args {
					gen.addCopy(v, in)
				}
			case ir.OpLoad:
				if ir.IsPtr(in.Typ) {
					gen.addLoad(in.Args[0], in)
				}
			case ir.OpStore:
				if ir.IsPtr(in.Args[0].Type()) {
					gen.addStore(in.Args[0], in.Args[1])
				}
			case ir.OpCall:
				if in.Callee != nil && !opt.Skip[in.Callee] {
					for i, arg := range in.Args {
						if i < len(in.Callee.Params) && ir.IsPtr(in.Callee.Params[i].Typ) {
							gen.addCopy(arg, in.Callee.Params[i])
						}
					}
					if ir.IsPtr(in.Typ) {
						in.Callee.Instrs(func(r *ir.Instr) bool {
							if r.Op == ir.OpRet && len(r.Args) == 1 {
								gen.addCopy(r.Args[0], in)
							}
							return true
						})
					}
				} else {
					// External (or skipped) call: pointer arguments
					// escape into unknown memory; a pointer result is
					// unknown.
					for _, arg := range in.Args {
						if ir.IsPtr(arg.Type()) {
							gen.addStoreUnknown(arg)
						}
					}
					if ir.IsPtr(in.Typ) {
						gen.addPoints(in, unknownObj)
					}
				}
			}
			return true
		})
	}
	// Parameters of functions with no in-module caller hold unknown
	// pointers.
	for _, f := range m.Funcs {
		if callers[f] || opt.Skip[f] {
			continue
		}
		for _, p := range f.Params {
			if ir.IsPtr(p.Typ) {
				gen.addPoints(p, unknownObj)
			}
		}
	}
}

// constraintSink receives the module's constraints; the sparse solver
// and the reference solver both implement it, which is what lets the
// differential test drive them off one traversal.
type constraintSink interface {
	newObj(site ir.Value) int
	seedUnknownContents()
	addPoints(v ir.Value, obj int)
	addCopy(src, dst ir.Value)
	addLoad(p, dst ir.Value)
	addStore(val, p ir.Value)
	addStoreUnknown(p ir.Value)
}

func isPtrLike(v ir.Value) bool {
	// Null constants typed as pointers carry no objects; they are
	// handled implicitly by empty sets.
	_, isConst := v.(*ir.Const)
	return !isConst
}

// solver is the sparse constraint-graph solver.
type solver struct {
	a *Analysis
	// nodeOf maps a value to its (initial) node id; query time
	// resolves through the union-find.
	nodeOf map[ir.Value]int32
	// vals records node creation order for the final resolve.
	vals []ir.Value
	// memNode[o] is the node holding the contents of object o, created
	// lazily (most objects never have pointers stored into them).
	memNode map[int]int32

	// Per-node state, indexed by node id. Only representatives carry
	// meaningful sets after a collapse.
	parent []int32
	rank   []uint8
	pts    []*bitvec.Set // current points-to set
	delta  []*bitvec.Set // gained objects not yet propagated
	succ   []*bitvec.Set // copy edges out of this node (node ids)
	// loadsTo / storesFrom are the complex constraints: targets of
	// x = *p and sources of *p = x.
	loadsTo    [][]int32
	storesFrom [][]int32
	storeUnk   []bool

	work   []int32
	inWork []bool
	// setChunk backs allocSet's bulk allocation.
	setChunk []bitvec.Set
	// edgesSinceSCC triggers the periodic online collapse pass.
	edgesSinceSCC int
	sccThreshold  int
}

// nodeHint upper-bounds the solver's node count: one node per value
// (instruction results, params, globals) plus one lazy contents node
// per potential object (allocation sites, globals, unknown). Sizing
// the per-node slices and maps once up front keeps the build phase
// out of append-doubling and incremental map rehashes, which dominate
// constraint generation on multi-million-instruction modules.
func nodeHint(m *ir.Module) int {
	n := 2*len(m.Globals) + 2
	for _, f := range m.Funcs {
		for _, p := range f.Params {
			if ir.IsPtr(p.Typ) {
				n++
			}
		}
		f.Instrs(func(in *ir.Instr) bool {
			if in.HasResult() && ir.IsPtr(in.Typ) {
				n++
			}
			if in.Op == ir.OpAlloca || in.Op == ir.OpMalloc {
				n++
			}
			return true
		})
	}
	return n
}

func newSolver(a *Analysis, hint int) *solver {
	return &solver{
		a:          a,
		nodeOf:     make(map[ir.Value]int32, hint),
		memNode:    map[int]int32{},
		parent:     make([]int32, 0, hint),
		rank:       make([]uint8, 0, hint),
		pts:        make([]*bitvec.Set, 0, hint),
		delta:      make([]*bitvec.Set, 0, hint),
		succ:       make([]*bitvec.Set, 0, hint),
		loadsTo:    make([][]int32, 0, hint),
		storesFrom: make([][]int32, 0, hint),
		storeUnk:   make([]bool, 0, hint),
		inWork:     make([]bool, 0, hint),

		sccThreshold: 256,
	}
}

// allocSet hands out zero-value sets from a chunk, two per node:
// individual &bitvec.Set{} allocations are the single largest
// constraint-generation cost at scale. Chunks are only ever re-sliced,
// never regrown, so handed-out pointers stay valid.
func (s *solver) allocSet() *bitvec.Set {
	if len(s.setChunk) == 0 {
		s.setChunk = make([]bitvec.Set, 4096)
	}
	p := &s.setChunk[0]
	s.setChunk = s.setChunk[1:]
	return p
}

func (s *solver) newNode() int32 {
	id := int32(len(s.parent))
	s.parent = append(s.parent, id)
	s.rank = append(s.rank, 0)
	s.pts = append(s.pts, s.allocSet())
	s.delta = append(s.delta, nil)
	s.succ = append(s.succ, s.allocSet())
	s.loadsTo = append(s.loadsTo, nil)
	s.storesFrom = append(s.storesFrom, nil)
	s.storeUnk = append(s.storeUnk, false)
	s.inWork = append(s.inWork, false)
	return id
}

func (s *solver) node(v ir.Value) int32 {
	if n, ok := s.nodeOf[v]; ok {
		return n
	}
	n := s.newNode()
	s.nodeOf[v] = n
	s.vals = append(s.vals, v)
	return n
}

func (s *solver) mem(o int) int32 {
	if n, ok := s.memNode[o]; ok {
		return n
	}
	n := s.newNode()
	s.memNode[o] = n
	return n
}

// find resolves a node to its representative with path halving.
func (s *solver) find(n int32) int32 {
	for s.parent[n] != n {
		s.parent[n] = s.parent[s.parent[n]]
		n = s.parent[n]
	}
	return n
}

// union merges two representatives and returns the surviving one. The
// loser's sets, edges and pending delta fold into the winner.
func (s *solver) union(a, b int32) int32 {
	a, b = s.find(a), s.find(b)
	if a == b {
		return a
	}
	if s.rank[a] < s.rank[b] {
		a, b = b, a
	} else if s.rank[a] == s.rank[b] {
		s.rank[a]++
	}
	s.parent[b] = a
	// Fold b's state into a.
	s.pts[a].UnionWith(s.pts[b])
	s.succ[a].UnionWith(s.succ[b])
	s.loadsTo[a] = append(s.loadsTo[a], s.loadsTo[b]...)
	s.storesFrom[a] = append(s.storesFrom[a], s.storesFrom[b]...)
	s.storeUnk[a] = s.storeUnk[a] || s.storeUnk[b]
	s.pts[b], s.delta[b], s.succ[b] = nil, nil, nil
	s.loadsTo[b], s.storesFrom[b] = nil, nil
	// Each side's edges and complex constraints have only seen that
	// side's objects, so the merged node must re-propagate its whole
	// set; everything downstream deduplicates, so this is idempotent.
	s.requeueAll(a)
	return a
}

func (s *solver) enqueue(n int32) {
	if !s.inWork[n] {
		s.inWork[n] = true
		s.work = append(s.work, n)
	}
}

// queueDelta registers d (already folded into pts[n]) for propagation.
func (s *solver) queueDelta(n int32, d *bitvec.Set) {
	if d == nil || d.Empty() {
		return
	}
	if s.delta[n] == nil {
		s.delta[n] = d.Clone()
	} else {
		s.delta[n].UnionWith(d)
	}
	s.enqueue(n)
}

// --- constraintSink ---

func (s *solver) newObj(site ir.Value) int {
	id := len(s.a.objs)
	s.a.objs = append(s.a.objs, site)
	s.a.objOf[site] = id
	return id
}

func (s *solver) seedUnknownContents() {
	s.addObj(s.mem(unknownObj), unknownObj)
}

func (s *solver) addPoints(v ir.Value, obj int) {
	s.addObj(s.node(v), obj)
}

func (s *solver) addObj(n int32, obj int) {
	n = s.find(n)
	if s.pts[n].Add(obj) {
		d := &bitvec.Set{}
		d.Add(obj)
		s.queueDelta(n, d)
	}
}

func (s *solver) addCopy(src, dst ir.Value) {
	if !ir.IsPtr(src.Type()) && !isPtrLike(src) {
		return
	}
	s.addEdge(s.node(src), s.node(dst))
}

// addEdge inserts the copy edge u→v and pushes u's current set across
// it.
func (s *solver) addEdge(u, v int32) {
	u, v = s.find(u), s.find(v)
	if u == v {
		return
	}
	if !s.succ[u].Add(int(v)) {
		return
	}
	s.edgesSinceSCC++
	if d := s.pts[v].UnionDelta(s.pts[u]); d != nil {
		s.queueDelta(v, d)
	}
}

func (s *solver) addLoad(p, dst ir.Value) {
	pn, dn := s.find(s.node(p)), s.node(dst)
	s.loadsTo[pn] = append(s.loadsTo[pn], dn)
	// Objects already in pts(p) must be wired now; re-queue the full
	// set as delta so run() adds the contents edges.
	s.requeueAll(pn)
}

func (s *solver) addStore(val, p ir.Value) {
	pn, vn := s.find(s.node(p)), s.node(val)
	s.storesFrom[pn] = append(s.storesFrom[pn], vn)
	s.requeueAll(pn)
}

func (s *solver) addStoreUnknown(p ir.Value) {
	pn := s.find(s.node(p))
	s.storeUnk[pn] = true
	s.requeueAll(pn)
}

// requeueAll marks n's whole current set as unpropagated, so a newly
// attached complex constraint sees every object already present.
func (s *solver) requeueAll(n int32) {
	n = s.find(n)
	if !s.pts[n].Empty() {
		s.queueDelta(n, s.pts[n])
	} else {
		s.enqueue(n)
	}
}

// run drains the worklist to the least fixed point, collapsing copy
// cycles as they appear.
func (s *solver) run(bgt *budget.B) {
	for len(s.work) > 0 {
		if bgt.Tick() != nil {
			// Interrupted before the least fixed point: the partial
			// sets under-approximate and must not answer queries. The
			// caller records bgt.Err() as Analysis.degraded.
			return
		}
		if s.edgesSinceSCC >= s.sccThreshold {
			s.collapseCycles()
			s.edgesSinceSCC = 0
			// Back off geometrically, with a floor proportional to the
			// graph, so huge modules are not dominated by repeated
			// full-graph SCC passes: each pass costs O(nodes+edges), so
			// it must not recur until a comparable amount of new edges
			// could have formed new cycles.
			s.sccThreshold *= 2
			if min := len(s.parent) / 4; s.sccThreshold < min {
				s.sccThreshold = min
			}
			continue
		}
		n := s.work[0]
		s.work = s.work[1:]
		s.inWork[n] = false
		if s.parent[n] != n {
			// Collapsed into another node; its delta moved there.
			continue
		}
		d := s.delta[n]
		s.delta[n] = nil
		if d == nil || d.Empty() {
			continue
		}
		// Complex constraints over the gained objects.
		if loads := s.loadsTo[n]; len(loads) > 0 {
			d.ForEach(func(o int) bool {
				mn := s.mem(o)
				for _, dst := range loads {
					s.addEdge(mn, dst)
				}
				return true
			})
		}
		if stores := s.storesFrom[n]; len(stores) > 0 {
			d.ForEach(func(o int) bool {
				mn := s.mem(o)
				for _, val := range stores {
					s.addEdge(val, mn)
				}
				return true
			})
		}
		if s.storeUnk[n] {
			d.ForEach(func(o int) bool {
				s.addObj(s.mem(o), unknownObj)
				return true
			})
		}
		// Difference propagation along copy edges: forward only the
		// gained objects.
		s.succ[n].ForEach(func(m int) bool {
			mr := s.find(int32(m))
			if mr == n {
				return true
			}
			if nd := s.pts[mr].UnionDelta(d); nd != nil {
				s.queueDelta(mr, nd)
			}
			return true
		})
	}
}

// collapseCycles runs Tarjan's SCC algorithm over the copy edges of
// the current representatives and unions every non-trivial component:
// all nodes on a copy cycle share one fixed point, so solving them as
// one node removes the cycle's re-propagation cost. Components are
// collected first and unioned only after the DFS completes — merging
// mid-DFS would invalidate Tarjan's on-stack bookkeeping. Safe
// mid-solve because union() re-queues anything that still needs
// forwarding.
func (s *solver) collapseCycles() {
	var components [][]int32
	n := int32(len(s.parent))
	index := make([]int32, n) // 0 = unvisited; else order+1
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	var stack []int32
	var order int32

	// Iterative Tarjan: frame carries the node and its progress
	// through the successor list.
	type frame struct {
		v     int32
		succs []int32
		i     int
	}
	succsOf := func(v int32) []int32 {
		var out []int32
		s.succ[v].ForEach(func(m int) bool {
			mr := s.find(int32(m))
			if mr != v {
				out = append(out, mr)
			}
			return true
		})
		return out
	}
	var frames []frame
	for root := int32(0); root < n; root++ {
		if s.parent[root] != root || index[root] != 0 {
			continue
		}
		frames = append(frames[:0], frame{v: root, succs: succsOf(root)})
		order++
		index[root], lowlink[root] = order, order
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succs) {
				w := f.succs[f.i]
				f.i++
				if index[w] == 0 {
					order++
					index[w], lowlink[w] = order, order
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w, succs: succsOf(w)})
				} else if onStack[w] && index[w] < lowlink[f.v] {
					lowlink[f.v] = index[w]
				}
				continue
			}
			// f.v done: pop component if root.
			if lowlink[f.v] == index[f.v] {
				var comp []int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.v {
						break
					}
				}
				if len(comp) > 1 {
					components = append(components, comp)
				}
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if lowlink[v] < lowlink[p.v] {
					lowlink[p.v] = lowlink[v]
				}
			}
		}
	}
	for _, comp := range components {
		rep := comp[0]
		for _, w := range comp[1:] {
			rep = s.union(rep, w)
		}
	}
}

// resolve snapshots the solved graph into Analysis.pts, hash-consing
// the final sets so equal points-to sets share one allocation.
func (s *solver) resolve() {
	in := bitvec.NewInterner()
	empty := in.Intern(&bitvec.Set{})
	cache := map[int32]*bitvec.Set{}
	for _, v := range s.vals {
		rep := s.find(s.nodeOf[v])
		set, ok := cache[rep]
		if !ok {
			if s.pts[rep].Empty() {
				set = empty
			} else {
				set = in.Intern(s.pts[rep])
			}
			cache[rep] = set
		}
		if set != empty {
			s.a.pts[v] = set
		}
	}
}

// PointsTo returns the allocation sites v may point to; a nil slice
// with unknown=true means the set includes unanalyzable memory.
func (a *Analysis) PointsTo(v ir.Value) (sites []ir.Value, unknown bool) {
	if a.degraded != nil {
		return nil, true
	}
	set := a.pts[v]
	if set == nil {
		return nil, false
	}
	set.ForEach(func(o int) bool {
		if o == unknownObj {
			unknown = true
		} else {
			sites = append(sites, a.objs[o])
		}
		return true
	})
	return sites, unknown
}

// Alias answers a query from disjointness of points-to sets: two
// pointers with non-empty, disjoint, fully known sets cannot alias.
func (a *Analysis) Alias(la, lb alias.Location) alias.Result {
	if a.degraded != nil {
		return alias.MayAlias
	}
	pa := a.pts[la.Ptr]
	pb := a.pts[lb.Ptr]
	if pa == nil || pb == nil || pa.Empty() || pb.Empty() {
		return alias.MayAlias
	}
	if pa.Has(unknownObj) || pb.Has(unknownObj) {
		return alias.MayAlias
	}
	if pa.Intersects(pb) {
		return alias.MayAlias
	}
	return alias.NoAlias
}
