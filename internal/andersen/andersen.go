// Package andersen implements an inclusion-based, flow- and
// context-insensitive, field-insensitive points-to analysis in the
// style of Andersen's thesis. It plays the role of CF in the paper's
// Figure 10: the CFL/inclusion-based comparator whose strengths
// (distinguishing allocation sites through loads and stores) are
// complementary to the strict-inequality analysis.
//
// Abstract objects are allocation sites (allocas, mallocs, globals)
// plus a distinguished universal object standing for memory unknown
// to the module (externally supplied pointers). Constraints:
//
//	p = &obj    pts(p) ⊇ {obj}
//	p = q       pts(p) ⊇ pts(q)          (copy, phi, sigma, gep)
//	p = *q      pts(p) ⊇ pts(o) ∀o∈pts(q)  (load)
//	*q = p      pts(o) ⊇ pts(p) ∀o∈pts(q)  (store)
//
// plus parameter/argument and return-value copies for calls, solved
// with a worklist to the least fixed point.
package andersen

import (
	"context"

	"repro/internal/alias"
	"repro/internal/budget"
	"repro/internal/ir"
)

// object identifiers are dense indices; object 0 is the universal
// unknown object.
const unknownObj = 0

// Analysis holds the solved points-to sets.
type Analysis struct {
	// pts maps each pointer value to the set of object ids it may
	// point to.
	pts map[ir.Value]map[int]bool
	// objOf maps allocation sites to their object id.
	objOf map[ir.Value]int
	// objs[i] is the allocation site of object i (nil for unknown).
	objs []ir.Value
	// degraded records budget exhaustion. Andersen's solver grows
	// sets toward the least fixed point, so an interrupted run
	// UNDER-approximates: partial sets must not be trusted. While
	// degraded is set, Alias answers MayAlias and PointsTo reports
	// unknown for every query.
	degraded error
}

// Name returns "CF", the label used in the paper's Figure 10.
func (a *Analysis) Name() string { return "CF" }

// Degraded returns the budget-exhaustion error when the solve was
// interrupted (the error wraps budget.ErrExceeded), or nil when the
// points-to sets reached their fixed point and are fully trustworthy.
func (a *Analysis) Degraded() error { return a.degraded }

// Opts configures a hardened run.
type Opts struct {
	// Budget bounds the whole-module solve.
	Budget budget.Spec
	// Skip lists functions whose bodies must not be traversed (the
	// harness passes functions broken by an upstream stage). Calls to
	// a skipped function are treated like calls to external code:
	// pointer arguments escape to unknown memory and pointer results
	// are unknown — the sound over-approximation of whatever the
	// skipped body would have done.
	Skip map[*ir.Func]bool
}

// Unanalyzed returns a degraded Analysis carrying cause: every Alias
// query answers MayAlias and every PointsTo reports unknown. The
// harness substitutes it when the whole stage fails.
func Unanalyzed(cause error) *Analysis {
	return &Analysis{
		pts:      map[ir.Value]map[int]bool{},
		objOf:    map[ir.Value]int{},
		objs:     []ir.Value{nil},
		degraded: cause,
	}
}

// Analyze runs the analysis on a whole module.
func Analyze(m *ir.Module) *Analysis {
	return AnalyzeCtx(context.Background(), m, Opts{})
}

// AnalyzeCtx is Analyze under a context, budget and skip set.
func AnalyzeCtx(ctx context.Context, m *ir.Module, opt Opts) *Analysis {
	a := &Analysis{
		pts:   map[ir.Value]map[int]bool{},
		objOf: map[ir.Value]int{},
		objs:  []ir.Value{nil}, // unknown
	}
	solver := &solver{a: a, copies: map[ir.Value][]ir.Value{}}

	newObj := func(site ir.Value) int {
		id := len(a.objs)
		a.objs = append(a.objs, site)
		a.objOf[site] = id
		return id
	}
	// objMem[o] is the representative "contents" node of object o:
	// what pointers stored inside o may point to.
	solver.objMem = map[int]*memNode{}
	memOf := func(o int) *memNode {
		if n, ok := solver.objMem[o]; ok {
			return n
		}
		n := &memNode{}
		solver.objMem[o] = n
		return n
	}
	solver.memOf = memOf

	// Seed address-of constraints.
	for _, g := range m.Globals {
		newObj(g)
		solver.addPoints(g, a.objOf[g])
	}
	callers := map[*ir.Func]bool{}
	for _, f := range m.Funcs {
		if opt.Skip[f] {
			continue
		}
		f.Instrs(func(in *ir.Instr) bool {
			switch in.Op {
			case ir.OpAlloca, ir.OpMalloc:
				newObj(in)
				solver.addPoints(in, a.objOf[in])
			case ir.OpCall:
				if in.Callee != nil && !opt.Skip[in.Callee] {
					callers[in.Callee] = true
				}
			}
			return true
		})
	}
	// The unknown object's contents point to unknown.
	memOf(unknownObj).addObj(unknownObj, solver)

	// Structural constraints.
	for _, f := range m.Funcs {
		if opt.Skip[f] {
			continue
		}
		f.Instrs(func(in *ir.Instr) bool {
			switch in.Op {
			case ir.OpGEP:
				// Field-insensitive: derived pointer inherits the
				// base's objects.
				solver.addCopy(in.Args[0], in)
			case ir.OpCopy, ir.OpSigma:
				solver.addCopy(in.Args[0], in)
			case ir.OpPhi:
				for _, v := range in.Args {
					solver.addCopy(v, in)
				}
			case ir.OpLoad:
				if ir.IsPtr(in.Typ) {
					solver.addLoad(in.Args[0], in)
				}
			case ir.OpStore:
				if ir.IsPtr(in.Args[0].Type()) {
					solver.addStore(in.Args[0], in.Args[1])
				}
			case ir.OpCall:
				if in.Callee != nil && !opt.Skip[in.Callee] {
					for i, arg := range in.Args {
						if i < len(in.Callee.Params) && ir.IsPtr(in.Callee.Params[i].Typ) {
							solver.addCopy(arg, in.Callee.Params[i])
						}
					}
					if ir.IsPtr(in.Typ) {
						in.Callee.Instrs(func(r *ir.Instr) bool {
							if r.Op == ir.OpRet && len(r.Args) == 1 {
								solver.addCopy(r.Args[0], in)
							}
							return true
						})
					}
				} else {
					// External (or skipped) call: pointer arguments
					// escape into unknown memory; a pointer result is
					// unknown.
					for _, arg := range in.Args {
						if ir.IsPtr(arg.Type()) {
							solver.addStoreUnknown(arg)
						}
					}
					if ir.IsPtr(in.Typ) {
						solver.addPoints(in, unknownObj)
					}
				}
			}
			return true
		})
	}
	// Parameters of functions with no in-module caller hold unknown
	// pointers.
	for _, f := range m.Funcs {
		if callers[f] || opt.Skip[f] {
			continue
		}
		for _, p := range f.Params {
			if ir.IsPtr(p.Typ) {
				solver.addPoints(p, unknownObj)
			}
		}
	}
	bgt := opt.Budget.Start(ctx)
	solver.run(bgt)
	a.degraded = bgt.Err()
	return a
}

// memNode tracks the points-to set of an abstract object's contents.
type memNode struct {
	pts map[int]bool
	// outs are value nodes that load from this object.
	outs   []ir.Value
	outSet map[ir.Value]bool
}

func (n *memNode) addOut(dst ir.Value) bool {
	if n.outSet == nil {
		n.outSet = map[ir.Value]bool{}
	}
	if n.outSet[dst] {
		return false
	}
	n.outSet[dst] = true
	n.outs = append(n.outs, dst)
	return true
}

func (n *memNode) addObj(o int, s *solver) bool {
	if n.pts == nil {
		n.pts = map[int]bool{}
	}
	if n.pts[o] {
		return false
	}
	n.pts[o] = true
	for _, dst := range n.outs {
		s.propagate(dst, o)
	}
	return true
}

type solver struct {
	a      *Analysis
	copies map[ir.Value][]ir.Value // src -> dsts
	// loads[p] lists destinations of x = *p.
	loads map[ir.Value][]ir.Value
	// stores[p] lists sources of *p = x.
	stores map[ir.Value][]ir.Value
	// storeUnknown marks pointers whose contents escape entirely.
	storeUnknownSet map[ir.Value]bool
	// memStores links stored values to the memory nodes they flow
	// into, so later points-to growth keeps propagating.
	memStores map[ir.Value][]*memNode
	objMem    map[int]*memNode
	memOf     func(int) *memNode

	work []ir.Value
	in   map[ir.Value]bool
}

func (s *solver) pts(v ir.Value) map[int]bool {
	m := s.a.pts[v]
	if m == nil {
		m = map[int]bool{}
		s.a.pts[v] = m
	}
	return m
}

func (s *solver) enqueue(v ir.Value) {
	if s.in == nil {
		s.in = map[ir.Value]bool{}
	}
	if !s.in[v] {
		s.in[v] = true
		s.work = append(s.work, v)
	}
}

func (s *solver) addPoints(v ir.Value, obj int) {
	if !s.pts(v)[obj] {
		s.pts(v)[obj] = true
		s.enqueue(v)
	}
}

func (s *solver) propagate(dst ir.Value, obj int) {
	if !s.pts(dst)[obj] {
		s.pts(dst)[obj] = true
		s.enqueue(dst)
	}
}

func (s *solver) addCopy(src, dst ir.Value) {
	if !ir.IsPtr(src.Type()) && !isPtrLike(src) {
		return
	}
	s.copies[src] = append(s.copies[src], dst)
	for o := range s.pts(src) {
		s.propagate(dst, o)
	}
}

func isPtrLike(v ir.Value) bool {
	// Null constants typed as pointers carry no objects; they are
	// handled implicitly by empty sets.
	_, isConst := v.(*ir.Const)
	return !isConst
}

func (s *solver) addLoad(p, dst ir.Value) {
	if s.loads == nil {
		s.loads = map[ir.Value][]ir.Value{}
	}
	s.loads[p] = append(s.loads[p], dst)
	s.enqueue(p)
}

func (s *solver) addStore(val, p ir.Value) {
	if s.stores == nil {
		s.stores = map[ir.Value][]ir.Value{}
	}
	s.stores[p] = append(s.stores[p], val)
	s.enqueue(p)
}

func (s *solver) addStoreUnknown(p ir.Value) {
	if s.storeUnknownSet == nil {
		s.storeUnknownSet = map[ir.Value]bool{}
	}
	s.storeUnknownSet[p] = true
	s.enqueue(p)
}

func (s *solver) run(bgt *budget.B) {
	for len(s.work) > 0 {
		if bgt.Tick() != nil {
			// Interrupted before the least fixed point: the partial
			// sets under-approximate and must not answer queries. The
			// caller records bgt.Err() as Analysis.degraded.
			return
		}
		v := s.work[0]
		s.work = s.work[1:]
		s.in[v] = false
		vp := s.pts(v)
		// Copy edges.
		for _, dst := range s.copies[v] {
			for o := range vp {
				s.propagate(dst, o)
			}
		}
		// Load edges: dst ⊇ contents(o) for each pointee o.
		for _, dst := range s.loads[v] {
			for o := range vp {
				n := s.memOf(o)
				n.addOut(dst)
				for po := range n.pts {
					s.propagate(dst, po)
				}
			}
		}
		// Store edges: contents(o) ⊇ pts(val), now and as pts(val)
		// grows later (via memStores).
		for _, val := range s.stores[v] {
			for o := range vp {
				n := s.memOf(o)
				s.linkValToMem(val, n)
				for po := range s.pts(val) {
					n.addObj(po, s)
				}
			}
		}
		if s.storeUnknownSet[v] {
			for o := range vp {
				s.memOf(o).addObj(unknownObj, s)
			}
		}
		// If v is itself the source of earlier store links, push its
		// full set into the linked memory nodes.
		for _, n := range s.memStores[v] {
			for o := range vp {
				n.addObj(o, s)
			}
		}
	}
}

// linkValToMem records that every object in pts(val) must flow into
// memory node n, including objects discovered later.
func (s *solver) linkValToMem(val ir.Value, n *memNode) {
	if s.memStores == nil {
		s.memStores = map[ir.Value][]*memNode{}
	}
	for _, existing := range s.memStores[val] {
		if existing == n {
			return
		}
	}
	s.memStores[val] = append(s.memStores[val], n)
}

// PointsTo returns the allocation sites v may point to; a nil slice
// with unknown=true means the set includes unanalyzable memory.
func (a *Analysis) PointsTo(v ir.Value) (sites []ir.Value, unknown bool) {
	if a.degraded != nil {
		return nil, true
	}
	for o := range a.pts[v] {
		if o == unknownObj {
			unknown = true
			continue
		}
		sites = append(sites, a.objs[o])
	}
	return sites, unknown
}

// Alias answers a query from disjointness of points-to sets: two
// pointers with non-empty, disjoint, fully known sets cannot alias.
func (a *Analysis) Alias(la, lb alias.Location) alias.Result {
	if a.degraded != nil {
		return alias.MayAlias
	}
	pa := a.pts[stripToBase(la.Ptr)]
	pb := a.pts[stripToBase(lb.Ptr)]
	if len(pa) == 0 || len(pb) == 0 {
		return alias.MayAlias
	}
	if pa[unknownObj] || pb[unknownObj] {
		return alias.MayAlias
	}
	for o := range pa {
		if pb[o] {
			return alias.MayAlias
		}
	}
	return alias.NoAlias
}

// stripToBase looks through copies and sigmas (the analysis stores
// sets for them too, but the base is always populated first).
func stripToBase(v ir.Value) ir.Value { return v }
