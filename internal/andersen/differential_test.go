package andersen

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/alias"
	"repro/internal/corpus"
	"repro/internal/csmith"
	"repro/internal/ir"
	"repro/internal/minic"
)

// ptsSignature renders v's points-to answer in a canonical form
// comparable across solvers (object identity by allocation-site ref,
// order-independent).
func ptsSignature(a *Analysis, v ir.Value) string {
	sites, unknown := a.PointsTo(v)
	refs := make([]string, 0, len(sites)+1)
	for _, s := range sites {
		refs = append(refs, s.Ref())
	}
	sort.Strings(refs)
	if unknown {
		refs = append(refs, "<unknown>")
	}
	return fmt.Sprint(refs)
}

// TestSparseMatchesReference: the sparse delta-propagation solver and
// the map-based reference solver must compute identical points-to sets
// and identical alias verdicts on every pointer value of every
// program. This is the differential oracle behind the solver rework:
// any divergence is a bug in the optimized path.
func TestSparseMatchesReference(t *testing.T) {
	var progs []string
	for _, p := range corpus.Spec() {
		progs = append(progs, p.Source)
	}
	n := int64(40)
	if testing.Short() {
		n = 8
	}
	for seed := int64(0); seed < n; seed++ {
		progs = append(progs, csmith.Generate(csmith.Config{
			Seed: 7000 + seed, MaxPtrDepth: 3, Stmts: 40,
		}))
	}
	for pi, src := range progs {
		m := minic.MustCompile("t", src)
		fast := Analyze(m)
		ref := AnalyzeReference(m)
		if (fast.Degraded() == nil) != (ref.Degraded() == nil) {
			t.Fatalf("program %d: degraded mismatch: fast=%v ref=%v",
				pi, fast.Degraded(), ref.Degraded())
		}
		for _, f := range m.Funcs {
			ptrs := alias.PointerValues(f)
			for _, v := range ptrs {
				fs, rs := ptsSignature(fast, v), ptsSignature(ref, v)
				if fs != rs {
					t.Fatalf("program %d @%s: PointsTo(%s) diverges:\n sparse: %s\n    ref: %s",
						pi, f.FName, v.Ref(), fs, rs)
				}
			}
			if len(ptrs) > 30 {
				ptrs = ptrs[:30] // bound the quadratic sweep
			}
			for i := 0; i < len(ptrs); i++ {
				for j := i; j < len(ptrs); j++ {
					la, lb := alias.Loc(ptrs[i]), alias.Loc(ptrs[j])
					if fv, rv := fast.Alias(la, lb), ref.Alias(la, lb); fv != rv {
						t.Fatalf("program %d @%s: Alias(%s, %s): sparse=%s ref=%s",
							pi, f.FName, ptrs[i].Ref(), ptrs[j].Ref(), fv, rv)
					}
				}
			}
		}
	}
}

// TestSparseMatchesReferenceDeepPointers stresses the store/load rules
// with deeper indirection, where cycle collapsing and delta
// propagation actually fire.
func TestSparseMatchesReferenceDeepPointers(t *testing.T) {
	n := int64(20)
	if testing.Short() {
		n = 4
	}
	for seed := int64(0); seed < n; seed++ {
		src := csmith.Generate(csmith.Config{
			Seed: 9100 + seed, MaxPtrDepth: 5, Stmts: 80,
		})
		m := minic.MustCompile("t", src)
		fast := Analyze(m)
		ref := AnalyzeReference(m)
		for _, f := range m.Funcs {
			for _, v := range alias.PointerValues(f) {
				fs, rs := ptsSignature(fast, v), ptsSignature(ref, v)
				if fs != rs {
					t.Fatalf("seed %d @%s: PointsTo(%s) diverges:\n sparse: %s\n    ref: %s",
						seed, f.FName, v.Ref(), fs, rs)
				}
			}
		}
	}
}

// BenchmarkSolvers compares the sparse solver against the reference on
// a csmith-generated module; the benchmark harness in cmd/scalability
// reports the same ratio at 1k/10k/100k functions.
func BenchmarkSolvers(b *testing.B) {
	src := csmith.Generate(csmith.Config{Seed: 42, MaxPtrDepth: 4, Stmts: 200})
	m := minic.MustCompile("bench", src)
	b.Run("sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Analyze(m)
		}
	})
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			AnalyzeReference(m)
		}
	})
}
