package rangeanal

import (
	"testing"
	"testing/quick"

	"repro/internal/essa"
	"repro/internal/ir"
	"repro/internal/minic"
)

func TestIntervalOps(t *testing.T) {
	a := Interval{1, 5}
	b := Interval{-3, 2}
	if got := Add(a, b); got != (Interval{-2, 7}) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(a, b); got != (Interval{-1, 8}) {
		t.Errorf("Sub = %v", got)
	}
	if got := Mul(a, b); got != (Interval{-15, 10}) {
		t.Errorf("Mul = %v", got)
	}
	if got := Union(a, b); got != (Interval{-3, 5}) {
		t.Errorf("Union = %v", got)
	}
	if got := Intersect(a, b); got != (Interval{1, 2}) {
		t.Errorf("Intersect = %v", got)
	}
	if !Intersect(Interval{3, 5}, Interval{6, 9}).IsEmpty() {
		t.Error("disjoint intersection not empty")
	}
	if got := Neg(a); got != (Interval{-5, -1}) {
		t.Errorf("Neg = %v", got)
	}
	if got := Div(Interval{10, 20}, Interval{2, 5}); got != (Interval{2, 10}) {
		t.Errorf("Div = %v", got)
	}
	if !Div(a, Interval{-1, 1}).IsTop() {
		t.Error("division by interval containing 0 must be Top")
	}
	if got := Rem(Interval{0, 100}, Point(7)); got != (Interval{0, 6}) {
		t.Errorf("Rem = %v", got)
	}
}

func TestIntervalSaturation(t *testing.T) {
	if got := Add(Interval{PosInf - 1, PosInf}, Point(5)); got.Hi != PosInf {
		t.Errorf("Add did not saturate: %v", got)
	}
	if got := Sub(Interval{NegInf, 0}, Point(1)); got.Lo != NegInf {
		t.Errorf("Sub did not saturate: %v", got)
	}
	if got := Mul(Interval{NegInf, 2}, Point(3)); got.Lo != NegInf {
		t.Errorf("Mul did not saturate: %v", got)
	}
	if got := Mul(Point(1<<40), Point(1<<40)); got.Hi != PosInf {
		t.Errorf("Mul overflow not saturated: %v", got)
	}
}

// TestIntervalSoundness property-checks interval arithmetic against
// concrete evaluation: for intervals built from pairs and points
// inside them, the abstract result must contain the concrete result.
func TestIntervalSoundness(t *testing.T) {
	mk := func(a, b int64) Interval {
		if a > b {
			a, b = b, a
		}
		return Interval{a, b}
	}
	clamp := func(x int64) int64 { return x % 1000 }
	prop := func(a1, a2, b1, b2, pickA, pickB uint8) bool {
		x1, x2 := clamp(int64(a1)), clamp(int64(a2))
		y1, y2 := clamp(int64(b1)), clamp(int64(b2))
		ia, ib := mk(x1, x2), mk(y1, y2)
		// Pick concrete points inside.
		pa := ia.Lo + int64(pickA)%(ia.Hi-ia.Lo+1)
		pb := ib.Lo + int64(pickB)%(ib.Hi-ib.Lo+1)
		if !Add(ia, ib).Contains(pa + pb) {
			return false
		}
		if !Sub(ia, ib).Contains(pa - pb) {
			return false
		}
		if !Mul(ia, ib).Contains(pa * pb) {
			return false
		}
		if pb != 0 && !Div(ia, ib).Contains(pa/pb) {
			return false
		}
		if !Union(ia, ib).Contains(pa) || !Union(ia, ib).Contains(pb) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWidenTerminates(t *testing.T) {
	w := Widen(Interval{0, 0}, Interval{0, 1})
	if w.Hi != PosInf || w.Lo != 0 {
		t.Errorf("Widen growing hi = %v, want [0, +inf]", w)
	}
	w = Widen(Interval{0, 5}, Interval{-1, 5})
	if w.Lo != NegInf || w.Hi != 5 {
		t.Errorf("Widen growing lo = %v", w)
	}
	if got := Widen(Interval{0, 5}, Interval{1, 4}); !got.Eq(Interval{0, 5}) {
		t.Errorf("Widen of shrink changed: %v", got)
	}
}

// analyzeSrc compiles src, applies e-SSA, and runs the module
// analysis.
func analyzeSrc(t *testing.T, src string) (*ir.Module, *Result) {
	t.Helper()
	m := minic.MustCompile("t", src)
	essa.TransformModule(m, nil)
	return m, Analyze(m)
}

// valueByName finds the unique SSA value whose name has the given
// prefix before any dot-suffix renaming.
func instrByOp(f *ir.Func, op ir.Op) *ir.Instr {
	var out *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == op {
			out = in
			return false
		}
		return true
	})
	return out
}

func TestRangeConstants(t *testing.T) {
	m, r := analyzeSrc(t, `
int f() {
  int x = 10;
  int y = x + 5;
  int z = y * 2;
  return z - 1;
}
`)
	f := m.FuncByName("f")
	ret := instrByOp(f, ir.OpRet)
	iv := r.Range(ret.Args[0])
	if !iv.Eq(Point(29)) {
		t.Errorf("constant folding through ranges = %v, want [29,29]", iv)
	}
}

func TestRangeLoopInduction(t *testing.T) {
	m, r := analyzeSrc(t, `
int f(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) {
    s = s + 1;
    use(i);
  }
  return s;
}
`)
	f := m.FuncByName("f")
	// The induction variable's sigma inside the body is i < n, and
	// since i starts at 0: [0, +inf) for the phi.
	var phi *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpPhi && len(in.Args) == 2 {
			for _, a := range in.Args {
				if c, ok := a.(*ir.Const); ok && c.Val == 0 {
					phi = in
				}
			}
		}
		return true
	})
	if phi == nil {
		t.Fatalf("no induction phi found:\n%s", f)
	}
	iv := r.Range(phi)
	if iv.Lo != 0 {
		t.Errorf("induction variable range = %v, want lo 0", iv)
	}
	// The sigma in the body must be non-negative too.
	var sig *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpSigma && in.OnTrue && in.Args[0] == ir.Value(phi) {
			sig = in
		}
		return true
	})
	if sig != nil {
		siv := r.Range(sig)
		if siv.Lo != 0 {
			t.Errorf("body sigma range = %v, want lo 0", siv)
		}
	}
}

func TestRangeBoundedLoop(t *testing.T) {
	_, r := analyzeSrc(t, `
int f() {
  int s = 0;
  for (int i = 0; i < 10; i++) {
    s = s + i;
  }
  return s;
}
`)
	// With a constant bound the narrowing phase pins i to [0, 10].
	found := false
	for v, iv := range rangesOf(r) {
		if in, ok := v.(*ir.Instr); ok && in.Op == ir.OpPhi && ir.IsInt(in.Typ) {
			if iv.Lo == 0 && iv.Hi <= 10 && iv.Hi >= 9 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no phi narrowed to the constant loop bound")
	}
}

// rangesOf exposes the result map for white-box assertions.
func rangesOf(r *Result) map[ir.Value]Interval { return r.ranges }

func TestRangeSigmaRefinement(t *testing.T) {
	m, r := analyzeSrc(t, `
int f(int a) {
  if (a < 100) {
    if (a > 0) {
      return a;
    }
  }
  return 0;
}
`)
	f := m.FuncByName("f")
	// The innermost returned value sits under a<100 and a>0: [1, 99].
	var deepest *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpSigma && in.OnTrue {
			if src, ok := in.Args[0].(*ir.Instr); ok && src.Op == ir.OpSigma {
				deepest = in
			}
		}
		return true
	})
	if deepest == nil {
		t.Fatalf("no nested sigma:\n%s", f)
	}
	iv := r.Range(deepest)
	if iv.Lo != 1 || iv.Hi != 99 {
		t.Errorf("nested refinement = %v, want [1, 99]", iv)
	}
}

func TestRangeInterprocedural(t *testing.T) {
	m, r := analyzeSrc(t, `
int callee(int x) { return x + 1; }

int main() {
  int a = callee(10);
  int b = callee(20);
  return a + b;
}
`)
	callee := m.FuncByName("callee")
	p := callee.Params[0]
	iv := r.Range(p)
	if iv.Lo != 10 || iv.Hi != 20 {
		t.Errorf("parameter pseudo-phi range = %v, want [10, 20]", iv)
	}
	mainFn := m.FuncByName("main")
	ret := instrByOp(mainFn, ir.OpRet)
	riv := r.Range(ret.Args[0])
	if riv.Lo != 22 || riv.Hi != 42 {
		t.Errorf("call result propagation = %v, want [22, 42]", riv)
	}
}

func TestRangeEntryParamsTop(t *testing.T) {
	m, r := analyzeSrc(t, `int f(int x) { return x; }`)
	f := m.FuncByName("f")
	if iv := r.Range(f.Params[0]); !iv.IsTop() {
		t.Errorf("uncalled function's param = %v, want Top", iv)
	}
}

func TestRangeRecursion(t *testing.T) {
	// Recursion must terminate via widening and stay sound.
	_, r := analyzeSrc(t, `
int fact(int n) {
  if (n <= 1) return 1;
  return n * fact(n - 1);
}

int main() { return fact(10); }
`)
	_ = r // reaching here without divergence is the test
}

func TestStrictSignPredicates(t *testing.T) {
	m, r := analyzeSrc(t, `
int f(int n) {
  if (n > 0) {
    return n;
  }
  return 0 - n;
}
`)
	f := m.FuncByName("f")
	var pos *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpSigma && in.OnTrue {
			pos = in
		}
		return true
	})
	if pos == nil {
		t.Fatal("no sigma")
	}
	if !r.IsStrictlyPositive(pos) {
		t.Errorf("sigma under n>0 not strictly positive: %v", r.Range(pos))
	}
	if r.IsStrictlyNegative(pos) {
		t.Error("positive sigma reported negative")
	}
	if !r.IsNonNegative(pos) {
		t.Error("positive sigma not non-negative")
	}
	if r.IsStrictlyPositive(f.Params[0]) {
		t.Error("unconstrained parameter reported positive")
	}
}

func TestRangeConstsDirect(t *testing.T) {
	r := &Result{ranges: map[ir.Value]Interval{}}
	if got := r.Range(ir.ConstInt(-7)); !got.Eq(Point(-7)) {
		t.Errorf("const range = %v", got)
	}
	if !r.IsStrictlyNegative(ir.ConstInt(-7)) {
		t.Error("negative const not detected")
	}
	if !r.IsStrictlyPositive(ir.ConstInt(3)) {
		t.Error("positive const not detected")
	}
}
