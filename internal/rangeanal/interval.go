// Package rangeanal implements a Cousot-style interval range analysis
// over the SSA IR, in the role the paper assigns to Rodrigues et al.'s
// range analysis: supplying, for every integer variable x, an interval
// R(x) = [l, u]. The strict less-than analysis (internal/core) and the
// e-SSA construction (internal/essa) consume it to classify additions
// as additions, subtractions, or unknown instructions, and alias
// analyses use it to compare pointer offsets.
//
// The analysis is inter-procedural and context-insensitive: formal
// parameters behave like pseudo-phis over the actual arguments of
// every call site, exactly as described in Section 4 of the paper, and
// call results union the callee's return ranges. Loops are handled
// with widening to a fixed point followed by a bounded narrowing phase
// that exploits the branch constraints carried by e-SSA sigma nodes.
package rangeanal

import (
	"fmt"
	"math"
)

// Infinity sentinels. Interval arithmetic saturates at these bounds.
const (
	NegInf = math.MinInt64
	PosInf = math.MaxInt64
)

// Interval is a closed integer interval [Lo, Hi]. Lo > Hi encodes the
// empty interval (bottom).
type Interval struct {
	Lo, Hi int64
}

// Canonical intervals.
var (
	// Top is the unconstrained interval.
	Top = Interval{NegInf, PosInf}
	// Bottom is the empty interval.
	Bottom = Interval{PosInf, NegInf}
)

// Point returns the singleton interval [c, c].
func Point(c int64) Interval { return Interval{c, c} }

// IsEmpty reports whether the interval contains no integers.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }

// IsTop reports whether the interval is unconstrained.
func (iv Interval) IsTop() bool { return iv.Lo == NegInf && iv.Hi == PosInf }

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x int64) bool { return iv.Lo <= x && x <= iv.Hi }

// Eq reports interval equality, with all empty intervals equal.
func (iv Interval) Eq(o Interval) bool {
	if iv.IsEmpty() && o.IsEmpty() {
		return true
	}
	return iv == o
}

func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "[]"
	}
	lo, hi := "-inf", "+inf"
	if iv.Lo != NegInf {
		lo = fmt.Sprintf("%d", iv.Lo)
	}
	if iv.Hi != PosInf {
		hi = fmt.Sprintf("%d", iv.Hi)
	}
	return fmt.Sprintf("[%s, %s]", lo, hi)
}

// Union returns the smallest interval containing both.
func Union(a, b Interval) Interval {
	if a.IsEmpty() {
		return b
	}
	if b.IsEmpty() {
		return a
	}
	return Interval{minI(a.Lo, b.Lo), maxI(a.Hi, b.Hi)}
}

// Intersect returns the intersection.
func Intersect(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return Bottom
	}
	return Interval{maxI(a.Lo, b.Lo), minI(a.Hi, b.Hi)}
}

// Add returns the interval of x+y for x in a, y in b, saturating.
func Add(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return Bottom
	}
	return Interval{addSat(a.Lo, b.Lo), addSat(a.Hi, b.Hi)}
}

// Sub returns the interval of x-y.
func Sub(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return Bottom
	}
	return Interval{subSat(a.Lo, b.Hi), subSat(a.Hi, b.Lo)}
}

// Mul returns the interval of x*y.
func Mul(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return Bottom
	}
	p := [4]int64{
		mulSat(a.Lo, b.Lo), mulSat(a.Lo, b.Hi),
		mulSat(a.Hi, b.Lo), mulSat(a.Hi, b.Hi),
	}
	lo, hi := p[0], p[0]
	for _, v := range p[1:] {
		lo, hi = minI(lo, v), maxI(hi, v)
	}
	return Interval{lo, hi}
}

// Div returns a sound interval for x/y (Go-truncated division). When
// the divisor interval contains zero the result is Top.
func Div(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return Bottom
	}
	if b.Contains(0) || a.Lo == NegInf || a.Hi == PosInf ||
		b.Lo == NegInf || b.Hi == PosInf {
		return Top
	}
	p := [4]int64{a.Lo / b.Lo, a.Lo / b.Hi, a.Hi / b.Lo, a.Hi / b.Hi}
	lo, hi := p[0], p[0]
	for _, v := range p[1:] {
		lo, hi = minI(lo, v), maxI(hi, v)
	}
	return Interval{lo, hi}
}

// Rem returns a sound interval for x%y. With a strictly positive
// divisor bounded by u, the magnitude of the result is below u.
func Rem(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return Bottom
	}
	if b.Lo > 0 && b.Hi != PosInf {
		if a.Lo >= 0 {
			hi := b.Hi - 1
			if a.Hi != PosInf && a.Hi < hi {
				hi = a.Hi
			}
			return Interval{0, hi}
		}
		return Interval{-(b.Hi - 1), b.Hi - 1}
	}
	return Top
}

// Neg returns the interval of -x.
func Neg(a Interval) Interval { return Sub(Point(0), a) }

// Widen returns prev widened against next: bounds that grew jump to
// infinity, guaranteeing termination of the ascending phase.
func Widen(prev, next Interval) Interval {
	if prev.IsEmpty() {
		return next
	}
	w := Union(prev, next)
	if w.Lo < prev.Lo {
		w.Lo = NegInf
	}
	if w.Hi > prev.Hi {
		w.Hi = PosInf
	}
	return w
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func addSat(a, b int64) int64 {
	if a == NegInf || b == NegInf {
		return NegInf
	}
	if a == PosInf || b == PosInf {
		return PosInf
	}
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		if b > 0 {
			return PosInf
		}
		return NegInf
	}
	return s
}

func subSat(a, b int64) int64 {
	if b == NegInf {
		if a == NegInf {
			return NegInf // conservative: -inf - -inf unknown, keep low
		}
		return PosInf
	}
	if b == PosInf {
		if a == PosInf {
			return PosInf
		}
		return NegInf
	}
	return addSat(a, -b)
}

func mulSat(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	neg := (a < 0) != (b < 0)
	inf := a == NegInf || a == PosInf || b == NegInf || b == PosInf
	if !inf {
		p := a * b
		if p/b == a && !(a == -1 && b == NegInf) && !(b == -1 && a == NegInf) {
			return p
		}
	}
	if neg {
		return NegInf
	}
	return PosInf
}
