package rangeanal

import (
	"context"

	"repro/internal/budget"
	"repro/internal/ir"
)

// Result holds the computed ranges for one module or function.
type Result struct {
	ranges map[ir.Value]Interval
	// err records budget exhaustion during solving; the ranges are
	// still sound (see AnalyzeCtx) but possibly all-Top.
	err error
}

// Err reports whether the analysis ran out of budget (the error wraps
// budget.ErrExceeded) or nil when it reached its fixed point.
func (r *Result) Err() error { return r.err }

// Empty returns a Result with no information: every value reports
// Top. It is the sound degraded substitute when the range stage
// fails entirely.
func Empty() *Result { return &Result{ranges: map[ir.Value]Interval{}} }

// Range returns the interval of v. Constants evaluate directly;
// pointer-typed and unanalyzed values report Top.
func (r *Result) Range(v ir.Value) Interval {
	if c, ok := v.(*ir.Const); ok {
		return Point(c.Val)
	}
	if iv, ok := r.ranges[v]; ok {
		return iv
	}
	return Top
}

// IsStrictlyPositive reports whether v > 0 always holds. Implements
// essa.RangeOracle.
func (r *Result) IsStrictlyPositive(v ir.Value) bool {
	iv := r.Range(v)
	return !iv.IsEmpty() && iv.Lo > 0
}

// IsStrictlyNegative reports whether v < 0 always holds. Implements
// essa.RangeOracle.
func (r *Result) IsStrictlyNegative(v ir.Value) bool {
	iv := r.Range(v)
	return !iv.IsEmpty() && iv.Hi < 0
}

// IsNonNegative reports whether v >= 0 always holds.
func (r *Result) IsNonNegative(v ir.Value) bool {
	iv := r.Range(v)
	return !iv.IsEmpty() && iv.Lo >= 0
}

// widenThreshold is how many growing updates a node tolerates before
// its bounds jump to infinity.
const widenThreshold = 4

// narrowPasses is how many descending sweeps refine the widened fixed
// point using sigma constraints.
const narrowPasses = 3

// shrinkCap bounds how often one node may shrink during the ascending
// phase. eval is monotone, so a shrink only happens when widening
// overshot and the node's inputs have since stabilized below it —
// normally that corrects once and stays put. But on cyclic
// inter-procedural dependency structures (long call chains feeding
// parameters) the correction can re-enable growth upstream and the
// ascent oscillates: widen to infinity, shrink back, re-grow, re-widen,
// without ever reaching a fixed point. Past the cap a node keeps its
// over-approximation, which is still sound (every post-fixed point
// contains the least fixed point) and restores guaranteed termination;
// the descending phase then narrows it like any other widened value.
const shrinkCap = 8

// Analyze computes ranges for every integer SSA value in m,
// inter-procedurally: parameters union the actual arguments of all
// call sites (functions with no in-module caller, such as entry
// points, get Top parameters), and call results union the callee's
// return ranges.
func Analyze(m *ir.Module) *Result {
	return AnalyzeCtx(context.Background(), m, Opts{})
}

// Opts configures a hardened run of the module analysis.
type Opts struct {
	// Budget bounds the whole module's solve (ranges are a module-
	// scope, inter-procedural stage).
	Budget budget.Spec
	// Skip lists functions to leave out: their bodies are not
	// traversed (the harness passes functions broken by an upstream
	// stage), their values report Top, and calls to them are treated
	// like calls to external code.
	Skip map[*ir.Func]bool
}

// AnalyzeCtx is Analyze under a context and budget. Soundness of the
// partial result: aborting the ascending (widening) phase leaves
// intervals smaller than the fixed point, which would be unsound, so
// exhaustion there discards everything — the result reports Top for
// every value. Aborting the descending (narrowing) phase keeps the
// current environment: every narrowing step starts from a sound
// over-approximation and intersects it with a consequence of sound
// inputs, so each intermediate state is itself sound.
func AnalyzeCtx(ctx context.Context, m *ir.Module, opt Opts) *Result {
	a := newAnalysis()
	for _, f := range m.Funcs {
		if opt.Skip[f] {
			continue
		}
		a.addFunc(f)
	}
	// Inter-procedural edges.
	callers := map[*ir.Func]int{}
	for _, f := range m.Funcs {
		if opt.Skip[f] {
			continue
		}
		f.Instrs(func(in *ir.Instr) bool {
			if in.Op == ir.OpCall && in.Callee != nil && !opt.Skip[in.Callee] {
				callers[in.Callee]++
				for i, arg := range in.Args {
					if i < len(in.Callee.Params) {
						a.addCallArg(arg, in.Callee.Params[i])
					}
				}
				for _, ret := range a.rets[in.Callee] {
					a.addDep(ret, in)
				}
			}
			return true
		})
	}
	for _, f := range m.Funcs {
		if opt.Skip[f] {
			continue
		}
		if callers[f] == 0 {
			// Externally callable: parameters unconstrained.
			for _, p := range f.Params {
				if ir.IsInt(p.Typ) {
					a.external[p] = true
				}
			}
		}
	}
	bgt := opt.Budget.Start(ctx)
	ascendAborted := a.solve(bgt)
	res := &Result{ranges: a.env, err: bgt.Err()}
	if ascendAborted {
		res.ranges = map[ir.Value]Interval{}
	}
	return res
}

// AnalyzeFunc computes ranges for a single function with Top
// parameters (intra-procedural mode, used by tests and ablations).
func AnalyzeFunc(f *ir.Func) *Result {
	a := newAnalysis()
	a.addFunc(f)
	for _, p := range f.Params {
		if ir.IsInt(p.Typ) {
			a.external[p] = true
		}
	}
	a.solve(nil)
	return &Result{ranges: a.env}
}

type analysis struct {
	env  map[ir.Value]Interval
	deps map[ir.Value][]ir.Value // value -> nodes to re-evaluate on change
	// callArgs[param] lists the actual arguments feeding it.
	callArgs map[*ir.Param][]ir.Value
	// rets[f] lists the values returned by f.
	rets map[*ir.Func][]ir.Value
	// external marks parameters with no analyzable call sites.
	external  map[ir.Value]bool
	nodes     []ir.Value
	widenCnt  map[ir.Value]int
	shrinkCnt map[ir.Value]int
}

func newAnalysis() *analysis {
	return &analysis{
		env:       map[ir.Value]Interval{},
		deps:      map[ir.Value][]ir.Value{},
		callArgs:  map[*ir.Param][]ir.Value{},
		rets:      map[*ir.Func][]ir.Value{},
		external:  map[ir.Value]bool{},
		widenCnt:  map[ir.Value]int{},
		shrinkCnt: map[ir.Value]int{},
	}
}

func (a *analysis) addDep(from, to ir.Value) {
	if _, isConst := from.(*ir.Const); isConst {
		return
	}
	a.deps[from] = append(a.deps[from], to)
}

func (a *analysis) addCallArg(arg ir.Value, p *ir.Param) {
	if !ir.IsInt(p.Typ) {
		return
	}
	a.callArgs[p] = append(a.callArgs[p], arg)
	a.addDep(arg, p)
}

func (a *analysis) addFunc(f *ir.Func) {
	for _, p := range f.Params {
		if ir.IsInt(p.Typ) {
			a.nodes = append(a.nodes, p)
			a.env[p] = Bottom
		}
	}
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpRet && len(in.Args) == 1 {
			a.rets[f] = append(a.rets[f], in.Args[0])
		}
		if !in.HasResult() || !ir.IsInt(in.Typ) {
			return true
		}
		a.nodes = append(a.nodes, in)
		a.env[in] = Bottom
		for _, arg := range in.Args {
			a.addDep(arg, in)
		}
		if in.Op == ir.OpSigma {
			// The sigma's refinement also depends on the other
			// compare operand.
			other := in.Cmp.Args[1-in.CmpSide]
			a.addDep(other, in)
		}
		return true
	})
}

func (a *analysis) get(v ir.Value) Interval {
	if c, ok := v.(*ir.Const); ok {
		return Point(c.Val)
	}
	if iv, ok := a.env[v]; ok {
		return iv
	}
	return Top // pointers, undef, globals: unconstrained
}

// eval computes the abstract value of a node from the current
// environment.
func (a *analysis) eval(v ir.Value) Interval {
	switch n := v.(type) {
	case *ir.Param:
		if a.external[n] {
			return Top
		}
		out := Bottom
		for _, arg := range a.callArgs[n] {
			out = Union(out, a.get(arg))
		}
		return out
	case *ir.Instr:
		return a.evalInstr(n)
	}
	return Top
}

func (a *analysis) evalInstr(in *ir.Instr) Interval {
	arg := func(i int) Interval { return a.get(in.Args[i]) }
	switch in.Op {
	case ir.OpAdd:
		return Add(arg(0), arg(1))
	case ir.OpSub:
		return Sub(arg(0), arg(1))
	case ir.OpMul:
		return Mul(arg(0), arg(1))
	case ir.OpDiv:
		return Div(arg(0), arg(1))
	case ir.OpRem:
		return Rem(arg(0), arg(1))
	case ir.OpAnd:
		// x & m with a non-negative constant mask is within [0, m].
		if c, ok := in.Args[1].(*ir.Const); ok && c.Val >= 0 {
			return Interval{0, c.Val}
		}
		if c, ok := in.Args[0].(*ir.Const); ok && c.Val >= 0 {
			return Interval{0, c.Val}
		}
		return Top
	case ir.OpICmp:
		return Interval{0, 1}
	case ir.OpPhi:
		out := Bottom
		for _, v := range in.Args {
			out = Union(out, a.get(v))
		}
		return out
	case ir.OpSigma:
		src := a.get(in.Args[0])
		bound := a.get(in.Cmp.Args[1-in.CmpSide])
		pred := in.Cmp.Pred
		if in.CmpSide == 1 {
			pred = pred.Swap()
		}
		if !in.OnTrue {
			pred = pred.Negate()
		}
		return Intersect(src, refine(pred, bound))
	case ir.OpCopy:
		return a.get(in.Args[0])
	case ir.OpCall:
		if in.Callee == nil {
			return Top
		}
		out := Bottom
		for _, ret := range a.rets[in.Callee] {
			out = Union(out, a.get(ret))
		}
		if len(a.rets[in.Callee]) == 0 {
			return Top
		}
		return out
	}
	// Loads, shifts, xor/or, malloc sizes escaping analysis: Top.
	return Top
}

// refine returns the interval a value must lie in when it stands in
// relation pred to some value in bound.
func refine(pred ir.CmpPred, bound Interval) Interval {
	if bound.IsEmpty() {
		// The bound is not yet evaluated (ascending phase): no
		// constraint can be applied soundly except through pred's
		// shape with infinite endpoints.
		bound = Top
	}
	switch pred {
	case ir.CmpLT:
		if bound.Hi == PosInf {
			return Top
		}
		return Interval{NegInf, bound.Hi - 1}
	case ir.CmpLE:
		return Interval{NegInf, bound.Hi}
	case ir.CmpGT:
		if bound.Lo == NegInf {
			return Top
		}
		return Interval{bound.Lo + 1, PosInf}
	case ir.CmpGE:
		return Interval{bound.Lo, PosInf}
	case ir.CmpEQ:
		return bound
	case ir.CmpNE:
		return Top
	}
	return Top
}

// solve runs the ascending phase to its widened fixed point, then a
// bounded narrowing. It reports aborted=true only when the budget
// expired mid-ascent, in which case the environment holds an unsound
// under-approximation that the caller must discard. Exhaustion during
// narrowing is not an abort: the caller keeps the (sound) env as-is.
func (a *analysis) solve(bgt *budget.B) (aborted bool) {
	// Ascending phase with widening.
	work := append([]ir.Value(nil), a.nodes...)
	inWork := make(map[ir.Value]bool, len(work))
	for _, n := range work {
		inWork[n] = true
	}
	for len(work) > 0 {
		if bgt.Tick() != nil {
			return true
		}
		n := work[0]
		work = work[1:]
		inWork[n] = false
		next := a.eval(n)
		cur := a.env[n]
		if next.Eq(cur) {
			continue
		}
		grew := Union(cur, next)
		if !grew.Eq(cur) {
			a.widenCnt[n]++
			if a.widenCnt[n] > widenThreshold {
				next = Widen(cur, next)
			} else {
				next = grew
			}
		} else {
			// next ⊆ cur: widening overshot. Accept the correction a
			// bounded number of times, then hold the over-approximation
			// so oscillating cycles cannot stall the ascent.
			if a.shrinkCnt[n] >= shrinkCap {
				continue
			}
			a.shrinkCnt[n]++
		}
		if next.Eq(cur) {
			continue
		}
		a.env[n] = next
		for _, d := range a.deps[n] {
			if !inWork[d] {
				inWork[d] = true
				work = append(work, d)
			}
		}
	}
	// Descending (narrowing) phase: a bounded number of sweeps lets
	// sigma intersections pull infinite bounds back to the branch
	// limits without endangering termination.
	for pass := 0; pass < narrowPasses; pass++ {
		changed := false
		for _, n := range a.nodes {
			if bgt.Tick() != nil {
				return false
			}
			next := a.eval(n)
			cur := a.env[n]
			refined := Intersect(cur, next)
			if !refined.Eq(cur) {
				a.env[n] = refined
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return false
}
