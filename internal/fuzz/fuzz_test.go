package fuzz

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/harness"
	"repro/internal/reduce"
)

func TestCorpusRoundTrip(t *testing.T) {
	e := &Entry{
		Name:      "oob-kernel",
		Lang:      "c",
		Oracle:    "sanitizer",
		Expect:    "detect",
		Seed:      4242,
		Config:    "depth=3 stmts=40 inject-oob",
		Signature: "detect:oob@main",
		Note:      "minimized from 48 to 3 units",
		Src:       "int a[4];\nint main(void) {\n  a[7] = 1;\n  return 0;\n}\n",
	}
	got, err := ParseEntry(e.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *e {
		t.Fatalf("round trip changed the entry:\n%+v\nvs\n%+v", got, e)
	}

	dir := t.TempDir()
	path, err := WriteEntry(dir, e)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "oob-kernel.repro" {
		t.Fatalf("unexpected filename %s", path)
	}
	entries, err := ReadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || *entries[0] != *e {
		t.Fatalf("corpus read back %d entries, first %+v", len(entries), entries[0])
	}
}

func TestCorpusParseErrors(t *testing.T) {
	cases := []string{
		"name: x\nexpect: clean\n",                        // no separator
		"name: x\nexpect: maybe\n---\nint main(void){}\n", // bad expect
		"expect: clean\n---\nsrc\n",                       // no name
		"name: x\nexpect: fail\n---\nsrc\n",               // fail without signature
		"name: x\nbogus-key: v\nexpect: clean\n---\ns\n",  // unknown key
	}
	for i, c := range cases {
		if _, err := ParseEntry([]byte(c)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestCheckCleanAndPlanted(t *testing.T) {
	// A trivially clean program produces no findings.
	out := Check(Input{Name: "clean", Lang: "c",
		Src: "int main(void) { return 0; }"}, Options{})
	if len(out.Failures) != 0 {
		t.Fatalf("clean program produced findings: %v", out.Signatures())
	}

	// A planted OOB must be observed and diagnosed — a detection,
	// not a failure.
	out = Check(Input{Name: "planted", Lang: "c", Planted: true,
		Src: "int a[4];\nint main(void) { a[7] = 1; return 0; }"}, Options{})
	if len(out.Failures) != 0 {
		t.Fatalf("planted kernel produced findings: %v", out.Signatures())
	}
	if !out.Detected("detect:oob@main") {
		t.Fatalf("planted kernel not detected: %v", out.Detections)
	}

	// An IR input goes through ParseIR.
	out = Check(Input{Name: "irin", Lang: "ir", Src: `module "m"

func @main() i64 {
entry:
  ret 7
}
`}, Options{})
	if len(out.Failures) != 0 {
		t.Fatalf("ir input produced findings: %v", out.Signatures())
	}

	// Unparseable input is a compile:error finding, not a crash.
	out = Check(Input{Name: "bad", Lang: "c", Src: "not C {{{"}, Options{})
	if !out.Has("compile:error") {
		t.Fatalf("bad input findings: %v", out.Signatures())
	}
}

// TestLoopBucketsInjectedFault drives the whole tentpole path on a
// synthetic bug: a fault injected into mem2reg makes every program
// panic, the loop buckets the failures under one signature, reduces
// the witness, and persists a corpus entry that replays as expect:
// fail under the same fault — and as FAIL without it.
func TestLoopBucketsInjectedFault(t *testing.T) {
	dir := t.TempDir()
	opt := LoopOptions{
		N:    6,
		Seed: 300,
		Jobs: 2,
		// Fault every program's main at mem2reg.
		Check:        Options{Fault: &harness.FaultConfig{Stage: harness.StageMem2Reg, Func: "main"}},
		CorpusDir:    dir,
		Reduce:       true,
		ReduceBudget: budget.Spec{Timeout: 30 * time.Second},
	}
	res, err := Loop(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ran != 6 {
		t.Fatalf("ran %d programs, want 6", res.Ran)
	}
	if len(res.Buckets) != 1 {
		t.Fatalf("got %d buckets, want 1: %+v", len(res.Buckets), res.Buckets)
	}
	b := res.Buckets[0]
	if !strings.HasPrefix(b.Signature, "mem2reg:panic:") {
		t.Fatalf("unexpected signature %s", b.Signature)
	}
	if b.Count != 6 {
		t.Fatalf("bucket count %d, want 6 (one per program)", b.Count)
	}
	if b.Reduced == "" || b.UnitsAfter >= b.UnitsBefore {
		t.Fatalf("witness not reduced: %d -> %d\n%s", b.UnitsBefore, b.UnitsAfter, b.Reduced)
	}

	// The persisted entry replays under the same fault...
	entries, err := ReadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Expect != "fail" {
		t.Fatalf("corpus: %+v", entries)
	}
	rr := Replay(entries, 1, opt.Check)
	if !rr.Ok() {
		t.Fatalf("replay under fault failed:\n%s", rr.Report)
	}
	// ...and fails to reproduce once the bug is "fixed" (fault off),
	// which is exactly the moment to flip the entry to expect: clean.
	rr = Replay(entries, 1, Options{})
	if rr.Ok() || rr.Failed != 1 {
		t.Fatalf("replay without fault should fail:\n%s", rr.Report)
	}
}

// TestLoopDeterministic: same (Seed, N) → same buckets and the same
// reduced witness, byte for byte.
func TestLoopDeterministic(t *testing.T) {
	opt := LoopOptions{
		N:    4,
		Seed: 300,
		Jobs: 3,
		Check: Options{Fault: &harness.FaultConfig{
			Stage: harness.StageLessThan, Func: "main"}},
		Reduce:       true,
		ReduceBudget: budget.Spec{Timeout: 30 * time.Second},
	}
	a, err := Loop(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Jobs = 1
	b, err := Loop(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Buckets) != len(b.Buckets) || len(a.Buckets) == 0 {
		t.Fatalf("bucket counts differ: %d vs %d", len(a.Buckets), len(b.Buckets))
	}
	for i := range a.Buckets {
		if a.Buckets[i].Signature != b.Buckets[i].Signature ||
			a.Buckets[i].Reduced != b.Buckets[i].Reduced ||
			a.Buckets[i].Witness.Name != b.Buckets[i].Witness.Name {
			t.Fatalf("bucket %d differs across jobs settings:\n%+v\nvs\n%+v",
				i, a.Buckets[i], b.Buckets[i])
		}
	}
}

// repoCorpus loads the checked-in regression corpus.
func repoCorpus(t *testing.T) []*Entry {
	t.Helper()
	entries, err := ReadCorpus(filepath.Join("..", "..", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("checked-in corpus has %d entries, want >= 3", len(entries))
	}
	return entries
}

// TestReplayCheckedInCorpus is the regression gate the CI job mirrors:
// every checked-in repro meets its expectation, and the report is
// byte-identical at jobs 1 and 8.
func TestReplayCheckedInCorpus(t *testing.T) {
	entries := repoCorpus(t)
	opt := Options{Timeout: 30 * time.Second}
	r1 := Replay(entries, 1, opt)
	if !r1.Ok() {
		t.Fatalf("corpus replay failed:\n%s", r1.Report)
	}
	r8 := Replay(entries, 8, opt)
	if r1.Report != r8.Report {
		t.Fatalf("replay report differs between jobs=1 and jobs=8:\n--- 1 ---\n%s--- 8 ---\n%s",
			r1.Report, r8.Report)
	}
}

// TestCorpusEntriesMinimal: reducing a checked-in repro again must be
// a no-op — the corpus stays minimal by construction.
func TestCorpusEntriesMinimal(t *testing.T) {
	for _, e := range repoCorpus(t) {
		if e.Lang != "c" || e.Expect != "detect" {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			pred := func(src string) bool {
				in := e.Input()
				in.Src = src
				out := Check(in, Options{})
				return len(out.Failures) == 0 && out.Detected(e.Signature)
			}
			res, err := reduce.Source(e.Src, pred, budget.Spec{Timeout: 60 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			if res.Source != e.Src {
				t.Fatalf("%s is not minimal; reducer shrank it to:\n%s", e.Name, res.Source)
			}
		})
	}
}
