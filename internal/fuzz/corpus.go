// The persistent regression corpus: one self-describing text file per
// bucket. The format is a short key:value header, a "---" separator,
// and the (minimized) program:
//
//	name: oob-kernel
//	lang: c
//	oracle: sanitizer
//	expect: detect
//	seed: 4242
//	config: depth=3 stmts=40 inject-oob
//	signature: detect:oob@main
//	note: minimized from 48 to 3 units
//	---
//	int a[4];
//	...
//
// expect drives replay semantics:
//
//	clean  — the pipeline and every oracle must report nothing; the
//	         entry is a regression test for a fixed bug.
//	detect — the planted bug must still be caught: the interpreter
//	         traps and the sanitizer diagnoses the access Unsafe,
//	         matching the recorded signature (e.g. detect:oob@main).
//	fail   — the recorded failure signature must still reproduce;
//	         these are pre-fix triage entries written by the loop.
package fuzz

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/persist"
)

// Entry is one corpus repro.
type Entry struct {
	Name      string
	Lang      string // "c" or "ir"
	Oracle    string
	Expect    string // "clean", "detect", or "fail"
	Seed      int64
	Config    string
	Signature string
	Note      string
	Src       string
}

// Planted reports whether the entry's program carries an injected
// out-of-bounds store.
func (e *Entry) Planted() bool {
	return e.Expect == "detect" || strings.Contains(e.Config, "inject-oob")
}

// Input converts the entry to an oracle input.
func (e *Entry) Input() Input {
	return Input{
		Name: e.Name, Lang: e.Lang, Src: e.Src,
		Seed: e.Seed, Config: e.Config, Planted: e.Planted(),
	}
}

// Marshal renders the entry in corpus file format.
func (e *Entry) Marshal() []byte {
	var sb strings.Builder
	put := func(k, v string) {
		if v != "" {
			fmt.Fprintf(&sb, "%s: %s\n", k, v)
		}
	}
	put("name", e.Name)
	put("lang", e.Lang)
	put("oracle", e.Oracle)
	put("expect", e.Expect)
	if e.Seed != 0 {
		put("seed", strconv.FormatInt(e.Seed, 10))
	}
	put("config", e.Config)
	put("signature", e.Signature)
	put("note", e.Note)
	sb.WriteString("---\n")
	sb.WriteString(e.Src)
	if !strings.HasSuffix(e.Src, "\n") {
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

// ParseEntry parses corpus file content.
func ParseEntry(data []byte) (*Entry, error) {
	text := string(data)
	sep := "\n---\n"
	i := strings.Index(text, sep)
	if i < 0 {
		if strings.HasPrefix(text, "---\n") {
			i, sep = 0, "---\n"
		} else {
			return nil, fmt.Errorf("corpus entry: missing --- separator")
		}
	}
	header, body := text[:i], text[i+len(sep):]
	e := &Entry{Src: body}
	for ln, line := range strings.Split(header, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("corpus entry: header line %d: want key: value, got %q", ln+1, line)
		}
		v = strings.TrimSpace(v)
		switch strings.TrimSpace(k) {
		case "name":
			e.Name = v
		case "lang":
			e.Lang = v
		case "oracle":
			e.Oracle = v
		case "expect":
			e.Expect = v
		case "seed":
			s, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("corpus entry: bad seed %q", v)
			}
			e.Seed = s
		case "config":
			e.Config = v
		case "signature":
			e.Signature = v
		case "note":
			e.Note = v
		default:
			return nil, fmt.Errorf("corpus entry: unknown header key %q", k)
		}
	}
	if e.Name == "" {
		return nil, fmt.Errorf("corpus entry: missing name")
	}
	if e.Lang == "" {
		e.Lang = "c"
	}
	switch e.Expect {
	case "clean", "detect", "fail":
	default:
		return nil, fmt.Errorf("corpus entry %s: expect must be clean, detect, or fail (got %q)", e.Name, e.Expect)
	}
	if e.Expect == "fail" && e.Signature == "" {
		return nil, fmt.Errorf("corpus entry %s: expect: fail requires a signature", e.Name)
	}
	return e, nil
}

// WriteEntry persists e under dir as <name>.repro, creating dir if
// needed. The write is atomic (tmp file + rename), so a kill mid-write
// can never leave a torn repro that poisons later replays. Returns the
// file path.
func WriteEntry(dir string, e *Entry) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, sanitizeName(e.Name)+".repro")
	if err := persist.AtomicWriteFile(path, e.Marshal(), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// sanitizeName maps an entry name to a safe filename stem.
func sanitizeName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, name)
}

// ReadCorpus loads every *.repro file under dir, sorted by filename so
// replay order — and therefore the replay report — is deterministic.
func ReadCorpus(dir string) ([]*Entry, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.repro"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []*Entry
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		e, err := ParseEntry(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, e)
	}
	return out, nil
}
