// Replay: re-run every corpus entry through the oracles and check it
// against its expectation. The report is byte-identical at any worker
// count: workers fill a slot array, and the report is rendered
// serially in corpus order.
package fuzz

import (
	"fmt"
	"strings"
	"sync"
)

// ReplayResult is the outcome of one corpus replay.
type ReplayResult struct {
	// Report is the full per-entry report plus summary line.
	Report string
	// Failed counts entries whose expectation did not hold.
	Failed int
	// Total is the number of entries replayed.
	Total int
}

// Ok reports whether every entry met its expectation.
func (r *ReplayResult) Ok() bool { return r.Failed == 0 }

// Replay checks each entry against its expect: clause. jobs bounds
// concurrent oracle runs; the report does not depend on it.
func Replay(entries []*Entry, jobs int, opt Options) *ReplayResult {
	outs := make([]*Outcome, len(entries))
	runSlots(len(entries), jobs, func(i int) {
		outs[i] = Check(entries[i].Input(), opt)
	})

	var sb strings.Builder
	res := &ReplayResult{Total: len(entries)}
	for i, e := range entries {
		if reason := judge(e, outs[i]); reason != "" {
			res.Failed++
			fmt.Fprintf(&sb, "FAIL %s (%s): %s\n", e.Name, e.Expect, reason)
			for _, f := range outs[i].Failures {
				fmt.Fprintf(&sb, "     %s: %s\n", f.Oracle, f.Detail)
			}
		} else {
			fmt.Fprintf(&sb, "ok   %s (%s)\n", e.Name, e.Expect)
		}
	}
	fmt.Fprintf(&sb, "replay: %d entries, %d failed\n", res.Total, res.Failed)
	res.Report = sb.String()
	return res
}

// judge returns "" when the outcome matches the entry's expectation,
// otherwise the reason it does not.
func judge(e *Entry, out *Outcome) string {
	switch e.Expect {
	case "clean":
		if len(out.Failures) > 0 {
			return fmt.Sprintf("expected no findings, got %s", strings.Join(out.Signatures(), ", "))
		}
	case "detect":
		if len(out.Failures) > 0 {
			return fmt.Sprintf("expected a clean detection, got findings %s", strings.Join(out.Signatures(), ", "))
		}
		if e.Signature != "" {
			if !out.Detected(e.Signature) {
				return fmt.Sprintf("planted bug not detected (want %s, got %s)",
					e.Signature, strings.Join(out.Detections, ", "))
			}
		} else if len(out.Detections) == 0 {
			return "planted bug not detected"
		}
	case "fail":
		if !out.Has(e.Signature) {
			return fmt.Sprintf("recorded failure %s no longer reproduces (got %s)",
				e.Signature, strings.Join(out.Signatures(), ", "))
		}
	}
	return ""
}

// runSlots executes fn(0..n-1) across at most jobs goroutines.
func runSlots(n, jobs int, fn func(i int)) {
	if jobs < 1 {
		jobs = 1
	}
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	// Containment of last resort: fn runs replays through the
	// hardened pipeline, which converts expected failures into
	// structured outcomes; anything that still escapes is captured
	// per-slot and re-raised on the calling goroutine after the pool
	// drains, so a worker panic can neither kill the process directly
	// nor deadlock the senders.
	escaped := make([]any, n)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				func(i int) {
					defer func() {
						if r := recover(); r != nil {
							escaped[i] = r
						}
					}()
					fn(i)
				}(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, r := range escaped {
		if r != nil {
			panic(r)
		}
	}
}
