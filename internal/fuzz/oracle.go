// Package fuzz is the continuous fuzzing loop over the hardened
// analysis pipeline. One generated (or corpus) program is swept
// through three oracles:
//
//   - pipeline: the hardened driver itself — every contained
//     StageFailure (panic, budget blow-up, invalid transform result)
//     is a finding, keyed by its normalized Signature.
//   - soundcheck: the interpreter-differential adequacy check — an LT
//     fact or definitive alias verdict refuted by a concrete execution
//     is a soundness bug in the analysis stack.
//   - sanitizer: verdict/execution consistency — an access proved
//     Safe that traps at runtime refutes the prover; a deliberately
//     planted out-of-bounds store that fails to trap or fails to be
//     diagnosed Unsafe refutes the generator or the prover.
//
// Findings are bucketed by a normalized signature so one root cause
// maps to one bucket regardless of seed, SSA naming, or goroutine
// scheduling. The loop (loop.go) minimizes each new bucket's witness
// with internal/reduce and persists it to the regression corpus
// (corpus.go); replay (replay.go) re-runs every corpus entry as a
// deterministic regression gate.
package fuzz

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/alias"
	"repro/internal/harness"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/sanitize"
	"repro/internal/soundcheck"
)

// Input is one program to check.
type Input struct {
	Name string
	// Lang is "c" (mini-C source) or "ir" (textual IR).
	Lang string
	Src  string
	// Seed and Config describe how the program was generated; both
	// are informational and flow into corpus entries.
	Seed   int64
	Config string
	// Planted reports that the program carries a deliberately
	// injected out-of-bounds store which must be observed and
	// diagnosed.
	Planted bool
}

// Failure is one oracle finding.
type Failure struct {
	// Oracle is "pipeline", "soundcheck", or "sanitizer".
	Oracle string
	// Signature is the stable bucket key; see the sig* helpers.
	Signature string
	// Detail is the human-readable finding.
	Detail string
}

// Outcome is everything the oracles observed on one input.
type Outcome struct {
	// Failures are the oracle findings, deduplicated by signature,
	// in deterministic (pipeline, soundcheck, sanitizer) order.
	Failures []Failure
	// Detections are signatures of planted bugs that were both
	// observed (the interpreter trapped) and diagnosed (the sanitizer
	// proved the access Unsafe), e.g. "detect:oob@func_1".
	Detections []string
	// Checks counts individual oracle comparisons performed.
	Checks int
	// Interrupted marks an outcome poisoned by context cancellation:
	// the pipeline degraded because the run was aborted, not because
	// the input is interesting. Interrupted outcomes must never be
	// bucketed, journaled, or persisted — a resumed run recomputes
	// them.
	Interrupted bool
}

// Signatures returns the failure signatures in order.
func (o *Outcome) Signatures() []string {
	out := make([]string, len(o.Failures))
	for i, f := range o.Failures {
		out[i] = f.Signature
	}
	return out
}

// Has reports whether sig appears among the failures.
func (o *Outcome) Has(sig string) bool {
	for _, f := range o.Failures {
		if f.Signature == sig {
			return true
		}
	}
	return false
}

// Detected reports whether sig appears among the detections.
func (o *Outcome) Detected(sig string) bool {
	for _, d := range o.Detections {
		if d == sig {
			return true
		}
	}
	return false
}

// Options configures one oracle run.
type Options struct {
	// Timeout and MaxSteps bound each pipeline stage; see
	// harness.Config.
	Timeout  time.Duration
	MaxSteps int
	// Fault injects one deliberate pipeline failure (tests only).
	Fault *harness.FaultConfig
	// Ctx, when non-nil, cancels the pipeline's solver budgets: a
	// canceled check degrades quickly to conservative answers and
	// marks its Outcome Interrupted.
	Ctx context.Context
	// Cache, when non-nil, memoizes per-function solves across
	// inputs. Note harness skips the cache on budgeted runs (Timeout
	// or MaxSteps set), so a persistent fuzz cache needs both at 0.
	Cache *harness.Cache
}

// Check runs in through the pipeline and all three oracles. It never
// returns an error: problems are findings. The pipeline runs with
// Jobs:1 — the fuzz loop parallelizes across inputs, not within one.
func Check(in Input, opt Options) *Outcome {
	out := &Outcome{}
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	p := harness.NewCtx(ctx, harness.Config{
		Timeout:  opt.Timeout,
		MaxSteps: opt.MaxSteps,
		WithCF:   true,
		Jobs:     1,
		Fault:    opt.Fault,
		Cache:    opt.Cache,
	})
	defer func() {
		if p.Report().Canceled() || ctx.Err() != nil {
			out.Interrupted = true
		}
	}()
	var m *ir.Module
	var err error
	if in.Lang == "ir" {
		m, err = p.ParseIR(in.Src)
	} else {
		m, err = p.Compile(in.Name, in.Src)
	}
	if err != nil {
		out.add("pipeline", "compile:error", err.Error())
		return out
	}
	res, err := p.Analyze(m)
	if err != nil {
		out.add("pipeline", "analyze:error", err.Error())
		return out
	}

	// Oracle 1: contained pipeline failures, keyed by normalized
	// signature.
	for i := range p.Report().Failures {
		f := &p.Report().Failures[i]
		out.add("pipeline", f.Signature(), f.Error())
	}

	if m.FuncByName("main") == nil {
		return out
	}

	// Oracle 2: interpreter-differential adequacy. CheckLT executes
	// the program; its run error doubles as the canonical execution
	// outcome for the sanitizer oracle below.
	ltRep, rerr := soundcheck.CheckLT(res.Module, res.LT, "main")
	if ltRep != nil {
		out.Checks += ltRep.ChecksPerformed
		for _, v := range ltRep.Violations {
			out.add("soundcheck", "soundcheck:lt@"+violationFunc(v), v)
		}
		if ltRep.DroppedViolations > 0 {
			out.add("soundcheck", "soundcheck:lt@...", fmt.Sprintf(
				"... and %d more LT violations", ltRep.DroppedViolations))
		}
	}
	aa := alias.NewChain(alias.NewBasic(res.Module), alias.NewSRAA(res.LT))
	aRep, _ := soundcheck.CheckAlias(res.Module, aa, "main")
	if aRep != nil {
		out.Checks += aRep.ChecksPerformed
		for _, v := range aRep.Violations {
			out.add("soundcheck", "soundcheck:alias:"+aliasKind(v)+"@"+violationFunc(v), v)
		}
	}

	// Oracle 3: sanitizer verdicts against the observed execution.
	rep := res.Sanitize()
	sum := rep.Summarize()
	out.Checks += sum.Checks
	tr := interp.TrapOf(rerr)
	if tr != nil && tr.Code != "" {
		if k, ok := sanitize.KindOfTrap(tr.Code); ok {
			if d, found := rep.Find(tr.In, k); found && d.Verdict == sanitize.Safe {
				out.add("sanitizer",
					fmt.Sprintf("sanitizer:unsound:%s@%s", k, tr.Fn.FName),
					fmt.Sprintf("%s proved safe/%s but trapped %s at @%s %s",
						k, d.Layer, tr.Code, tr.Fn.FName, tr.In))
			}
		}
	}
	if in.Planted {
		switch {
		case tr == nil || tr.Code != interp.TrapOOB:
			if rerr == nil {
				out.add("sanitizer", "sanitizer:planted-no-trap",
					"injected oob store did not trap")
			}
			// A non-memory early exit (e.g. division by zero) before
			// the injection point is tolerated: neither a failure nor
			// a detection.
		default:
			if d, found := rep.Find(tr.In, sanitize.KindBounds); found && d.Verdict == sanitize.Unsafe {
				out.Detections = append(out.Detections,
					fmt.Sprintf("detect:oob@%s", tr.Fn.FName))
			} else {
				out.add("sanitizer",
					fmt.Sprintf("sanitizer:planted-undiagnosed@%s", tr.Fn.FName),
					fmt.Sprintf("injected oob store at @%s %s not diagnosed unsafe",
						tr.Fn.FName, tr.In))
			}
		}
	}
	return out
}

// add appends a failure unless its signature is already present.
func (o *Outcome) add(oracle, sig, detail string) {
	for _, f := range o.Failures {
		if f.Signature == sig {
			return
		}
	}
	o.Failures = append(o.Failures, Failure{Oracle: oracle, Signature: sig, Detail: detail})
}

// violationFunc extracts the function name from a soundcheck
// violation, which always leads with "@func ".
func violationFunc(v string) string {
	if !strings.HasPrefix(v, "@") {
		return "?"
	}
	rest := v[1:]
	if i := strings.IndexByte(rest, ' '); i > 0 {
		return rest[:i]
	}
	return rest
}

// aliasKind classifies an alias violation message by the refuted
// verdict.
func aliasKind(v string) string {
	if strings.Contains(v, "MustAlias(") {
		return "MustAlias"
	}
	return "NoAlias"
}
