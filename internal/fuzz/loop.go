// The fuzz loop: generate → check → bucket → reduce → persist.
package fuzz

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/budget"
	"repro/internal/csmith"
	"repro/internal/reduce"
)

// LoopOptions configures one fuzzing run.
type LoopOptions struct {
	// N is the number of programs to generate; 0 with a Duration set
	// means "until the deadline".
	N int
	// Duration, when non-zero, stops the loop at a wall-clock
	// deadline even if N programs have not run yet.
	Duration time.Duration
	// Seed is the first generator seed; program i uses Seed+i, so a
	// run is reproducible from (Seed, N).
	Seed int64
	// Jobs bounds concurrent oracle runs.
	Jobs int
	// CorpusDir, when non-empty, receives one minimized repro file
	// per new bucket.
	CorpusDir string
	// Reduce minimizes each bucket's witness before persisting.
	Reduce bool
	// ReduceBudget bounds each minimization; the zero value means
	// unlimited.
	ReduceBudget budget.Spec
	// Check configures the oracles.
	Check Options
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// Bucket is one distinct failure: every input whose outcome contains
// the signature lands here.
type Bucket struct {
	Signature string
	Oracle    string
	Detail    string
	// Count is how many generated inputs hit the bucket.
	Count int
	// Witness is the first input that hit the bucket.
	Witness Input
	// Reduced is the minimized witness source ("" when reduction was
	// off, failed, or the input was not reducible).
	Reduced string
	// UnitsBefore and UnitsAfter are the witness's statement counts
	// around reduction.
	UnitsBefore, UnitsAfter int
	// Path is the corpus file the bucket was persisted to.
	Path string
}

// LoopResult summarizes one fuzzing run.
type LoopResult struct {
	// Buckets are the distinct failures, sorted by signature.
	Buckets []*Bucket
	// Ran is the number of programs checked.
	Ran int
	// Checks is the total oracle comparisons across the run.
	Checks int
	// Detections counts planted bugs that were caught as expected.
	Detections int
}

// genInput builds the i-th generated program of a run starting at
// seed. The config matrix varies pointer depth, program size and
// injection so one run exercises shallow/deep chains and planted
// bugs; everything derives from (seed, i) alone.
func genInput(seed int64, i int) Input {
	s := seed + int64(i)
	cfg := csmith.Config{
		Seed:        s,
		MaxPtrDepth: 2 + i%6,
		Stmts:       30 + (i%5)*15,
		InjectOOB:   i%3 == 0,
	}
	conf := fmt.Sprintf("depth=%d stmts=%d", cfg.MaxPtrDepth, cfg.Stmts)
	if cfg.InjectOOB {
		conf += " inject-oob"
	}
	return Input{
		Name:    fmt.Sprintf("fuzz_seed%d", s),
		Lang:    "c",
		Src:     csmith.Generate(cfg),
		Seed:    s,
		Config:  conf,
		Planted: cfg.InjectOOB,
	}
}

// Loop runs the fuzzing loop.
func Loop(opt LoopOptions) (*LoopResult, error) {
	if opt.N <= 0 && opt.Duration <= 0 {
		return nil, fmt.Errorf("fuzz: need N or Duration")
	}
	logf := func(format string, args ...any) {
		if opt.Log != nil {
			fmt.Fprintf(opt.Log, format+"\n", args...)
		}
	}
	var deadline time.Time
	if opt.Duration > 0 {
		deadline = time.Now().Add(opt.Duration)
	}
	jobs := opt.Jobs
	if jobs < 1 {
		jobs = 1
	}

	res := &LoopResult{}
	bySig := map[string]*Bucket{}
	batch := jobs * 8

	for i := 0; opt.N <= 0 || i < opt.N; i += batch {
		if !deadline.IsZero() && time.Now().After(deadline) {
			logf("fuzz: deadline reached after %d programs", res.Ran)
			break
		}
		n := batch
		if opt.N > 0 && i+n > opt.N {
			n = opt.N - i
		}
		ins := make([]Input, n)
		outs := make([]*Outcome, n)
		for j := range ins {
			ins[j] = genInput(opt.Seed, i+j)
		}
		runSlots(n, jobs, func(j int) {
			outs[j] = Check(ins[j], opt.Check)
		})
		// Merge serially in seed order so bucket witnesses are
		// deterministic for a fixed (Seed, N).
		for j, out := range outs {
			res.Ran++
			res.Checks += out.Checks
			res.Detections += len(out.Detections)
			for _, f := range out.Failures {
				b := bySig[f.Signature]
				if b == nil {
					b = &Bucket{Signature: f.Signature, Oracle: f.Oracle,
						Detail: f.Detail, Witness: ins[j]}
					bySig[f.Signature] = b
					logf("fuzz: new bucket %s (witness %s)", f.Signature, ins[j].Name)
				}
				b.Count++
			}
		}
	}

	for _, b := range bySig {
		res.Buckets = append(res.Buckets, b)
	}
	sort.Slice(res.Buckets, func(i, j int) bool {
		return res.Buckets[i].Signature < res.Buckets[j].Signature
	})

	for _, b := range res.Buckets {
		if opt.Reduce {
			reduceBucket(b, opt, logf)
		}
		if opt.CorpusDir != "" {
			if err := persistBucket(b, opt.CorpusDir); err != nil {
				return res, err
			}
			logf("fuzz: wrote %s", b.Path)
		}
	}
	return res, nil
}

// reduceBucket minimizes a bucket's witness under a
// signature-preserving predicate.
func reduceBucket(b *Bucket, opt LoopOptions, logf func(string, ...any)) {
	if b.Witness.Lang != "c" {
		return
	}
	pred := func(src string) bool {
		in := b.Witness
		in.Src = src
		return Check(in, opt.Check).Has(b.Signature)
	}
	r, err := reduce.Source(b.Witness.Src, pred, opt.ReduceBudget)
	if err != nil {
		logf("fuzz: reduce %s: %v", b.Signature, err)
		return
	}
	b.Reduced = r.Source
	b.UnitsBefore, b.UnitsAfter = r.StmtsBefore, r.StmtsAfter
	logf("fuzz: reduced %s: %d -> %d units (%d predicate runs)",
		b.Signature, r.StmtsBefore, r.StmtsAfter, r.Stats.Tests)
}

// persistBucket writes the bucket as an expect:fail corpus entry.
func persistBucket(b *Bucket, dir string) error {
	src := b.Reduced
	note := ""
	if src == "" {
		src = b.Witness.Src
	} else {
		note = fmt.Sprintf("minimized from %d to %d units", b.UnitsBefore, b.UnitsAfter)
	}
	e := &Entry{
		Name:      "fuzz-" + sanitizeName(b.Signature),
		Lang:      b.Witness.Lang,
		Oracle:    b.Oracle,
		Expect:    "fail",
		Seed:      b.Witness.Seed,
		Config:    b.Witness.Config,
		Signature: b.Signature,
		Note:      note,
		Src:       src,
	}
	path, err := WriteEntry(dir, e)
	b.Path = path
	return err
}
