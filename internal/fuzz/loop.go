// The fuzz loop: generate → check → bucket → reduce → persist.
package fuzz

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/csmith"
	"repro/internal/persist/journal"
	"repro/internal/reduce"
)

// LoopOptions configures one fuzzing run.
type LoopOptions struct {
	// N is the number of programs to generate; 0 with a Duration set
	// means "until the deadline".
	N int
	// Duration, when non-zero, stops the loop at a wall-clock
	// deadline even if N programs have not run yet.
	Duration time.Duration
	// Seed is the first generator seed; program i uses Seed+i, so a
	// run is reproducible from (Seed, N).
	Seed int64
	// Jobs bounds concurrent oracle runs.
	Jobs int
	// CorpusDir, when non-empty, receives one minimized repro file
	// per new bucket.
	CorpusDir string
	// Reduce minimizes each bucket's witness before persisting.
	Reduce bool
	// ReduceBudget bounds each minimization; the zero value means
	// unlimited.
	ReduceBudget budget.Spec
	// Check configures the oracles.
	Check Options
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// State, when non-nil, journals each input's oracle outcome as it
	// completes, and replays journaled inputs on a later run instead
	// of re-checking them. Because witnesses regenerate
	// deterministically from (Seed, i), the journal needs only the
	// outcome — a resumed run's final result is identical to an
	// uninterrupted one's.
	State *journal.Checkpoint
}

// Bucket is one distinct failure: every input whose outcome contains
// the signature lands here.
type Bucket struct {
	Signature string
	Oracle    string
	Detail    string
	// Count is how many generated inputs hit the bucket.
	Count int
	// Witness is the first input that hit the bucket.
	Witness Input
	// Reduced is the minimized witness source ("" when reduction was
	// off, failed, or the input was not reducible).
	Reduced string
	// UnitsBefore and UnitsAfter are the witness's statement counts
	// around reduction.
	UnitsBefore, UnitsAfter int
	// Path is the corpus file the bucket was persisted to.
	Path string
}

// LoopResult summarizes one fuzzing run.
type LoopResult struct {
	// Buckets are the distinct failures, sorted by signature.
	Buckets []*Bucket
	// Ran is the number of programs checked.
	Ran int
	// Checks is the total oracle comparisons across the run.
	Checks int
	// Detections counts planted bugs that were caught as expected.
	Detections int
	// Replayed counts programs served from the checkpoint journal
	// instead of re-checked.
	Replayed int
	// Interrupted reports that the run was canceled before finishing;
	// Completed is then the number of programs whose outcomes are
	// durable in the journal — the point a resumed run continues from.
	Interrupted bool
	Completed   int
}

// ckOutcome is the journaled residue of one input's oracle run:
// exactly the fields the merge phase reads. The witness itself is not
// stored — it regenerates from (Seed, i).
type ckOutcome struct {
	Checks     int       `json:"checks"`
	Detections []string  `json:"detections,omitempty"`
	Failures   []Failure `json:"failures,omitempty"`
}

// genInput builds the i-th generated program of a run starting at
// seed. The config matrix varies pointer depth, program size and
// injection so one run exercises shallow/deep chains and planted
// bugs; everything derives from (seed, i) alone.
func genInput(seed int64, i int) Input {
	s := seed + int64(i)
	cfg := csmith.Config{
		Seed:        s,
		MaxPtrDepth: 2 + i%6,
		Stmts:       30 + (i%5)*15,
		InjectOOB:   i%3 == 0,
	}
	conf := fmt.Sprintf("depth=%d stmts=%d", cfg.MaxPtrDepth, cfg.Stmts)
	if cfg.InjectOOB {
		conf += " inject-oob"
	}
	return Input{
		Name:    fmt.Sprintf("fuzz_seed%d", s),
		Lang:    "c",
		Src:     csmith.Generate(cfg),
		Seed:    s,
		Config:  conf,
		Planted: cfg.InjectOOB,
	}
}

// Loop runs the fuzzing loop.
func Loop(opt LoopOptions) (*LoopResult, error) {
	return LoopCtx(context.Background(), opt)
}

// LoopCtx is Loop with cooperative cancellation and, when
// LoopOptions.State is set, durable per-input checkpointing. Once ctx
// is done, in-flight oracle runs degrade quickly (their pipelines
// observe the same ctx), no further inputs are dispatched, and
// bucketing, reduction, and corpus persistence are skipped — the
// result reports Interrupted with Completed counting the journaled
// prefix. Re-running with the same (Seed, N) and the same state
// journal replays the completed inputs and finishes the rest,
// producing the same result as an uninterrupted run.
func LoopCtx(ctx context.Context, opt LoopOptions) (*LoopResult, error) {
	if opt.N <= 0 && opt.Duration <= 0 {
		return nil, fmt.Errorf("fuzz: need N or Duration")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	logf := func(format string, args ...any) {
		if opt.Log != nil {
			fmt.Fprintf(opt.Log, format+"\n", args...)
		}
	}
	var deadline time.Time
	if opt.Duration > 0 {
		deadline = time.Now().Add(opt.Duration)
	}
	jobs := opt.Jobs
	if jobs < 1 {
		jobs = 1
	}
	// opt is a copy; threading ctx here also makes the reduction
	// predicates cancelable.
	opt.Check.Ctx = ctx
	checkOpt := opt.Check

	res := &LoopResult{}
	bySig := map[string]*Bucket{}
	batch := jobs * 8
	var durable int64 // inputs whose outcomes are safe in the journal

	for i := 0; opt.N <= 0 || i < opt.N; i += batch {
		if ctx.Err() != nil {
			res.Interrupted = true
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			logf("fuzz: deadline reached after %d programs", res.Ran)
			break
		}
		n := batch
		if opt.N > 0 && i+n > opt.N {
			n = opt.N - i
		}
		ins := make([]Input, n)
		outs := make([]*Outcome, n)
		for j := range ins {
			ins[j] = genInput(opt.Seed, i+j)
		}
		// Replay inputs the journal already holds; only the rest run.
		var pend []int
		replayed := 0
		for j := range ins {
			if opt.State != nil {
				if data, ok := opt.State.Done(ins[j].Name); ok {
					var rec ckOutcome
					if err := json.Unmarshal(data, &rec); err == nil {
						outs[j] = &Outcome{Checks: rec.Checks,
							Detections: rec.Detections, Failures: rec.Failures}
						replayed++
						atomic.AddInt64(&durable, 1)
						continue
					}
				}
			}
			pend = append(pend, j)
		}
		runSlots(len(pend), jobs, func(k int) {
			j := pend[k]
			out := Check(ins[j], checkOpt)
			outs[j] = out
			// Journal only outcomes an uninterrupted run would also
			// have produced; canceled checks are recomputed on resume.
			if ctx.Err() == nil && !out.Interrupted {
				atomic.AddInt64(&durable, 1)
				if opt.State != nil {
					opt.State.Record(ins[j].Name, ckOutcome{Checks: out.Checks,
						Detections: out.Detections, Failures: out.Failures})
				}
			}
		})
		if ctx.Err() != nil {
			// The batch is tainted: some outcomes may be degraded by
			// the cancellation. Discard it from this run's merge — the
			// journaled subset is durable and will be replayed.
			res.Interrupted = true
			break
		}
		res.Replayed += replayed
		// Merge serially in seed order so bucket witnesses are
		// deterministic for a fixed (Seed, N).
		for j, out := range outs {
			res.Ran++
			res.Checks += out.Checks
			res.Detections += len(out.Detections)
			for _, f := range out.Failures {
				b := bySig[f.Signature]
				if b == nil {
					b = &Bucket{Signature: f.Signature, Oracle: f.Oracle,
						Detail: f.Detail, Witness: ins[j]}
					bySig[f.Signature] = b
					logf("fuzz: new bucket %s (witness %s)", f.Signature, ins[j].Name)
				}
				b.Count++
			}
		}
	}
	res.Completed = int(atomic.LoadInt64(&durable))

	if res.Interrupted {
		// No bucketing, reduction, or persistence on a canceled run:
		// partial batches must never shape the corpus. Everything
		// durable is in the journal; resuming finishes the job.
		logf("fuzz: interrupted; %d program outcome(s) durable", res.Completed)
		return res, ctx.Err()
	}

	for _, b := range bySig {
		res.Buckets = append(res.Buckets, b)
	}
	sort.Slice(res.Buckets, func(i, j int) bool {
		return res.Buckets[i].Signature < res.Buckets[j].Signature
	})

	for _, b := range res.Buckets {
		if opt.Reduce {
			reduceBucket(b, opt, logf)
		}
		if opt.CorpusDir != "" {
			if err := persistBucket(b, opt.CorpusDir); err != nil {
				return res, err
			}
			logf("fuzz: wrote %s", b.Path)
		}
	}
	return res, nil
}

// reduceBucket minimizes a bucket's witness under a
// signature-preserving predicate.
func reduceBucket(b *Bucket, opt LoopOptions, logf func(string, ...any)) {
	if b.Witness.Lang != "c" {
		return
	}
	pred := func(src string) bool {
		in := b.Witness
		in.Src = src
		return Check(in, opt.Check).Has(b.Signature)
	}
	r, err := reduce.Source(b.Witness.Src, pred, opt.ReduceBudget)
	if err != nil {
		logf("fuzz: reduce %s: %v", b.Signature, err)
		return
	}
	b.Reduced = r.Source
	b.UnitsBefore, b.UnitsAfter = r.StmtsBefore, r.StmtsAfter
	logf("fuzz: reduced %s: %d -> %d units (%d predicate runs)",
		b.Signature, r.StmtsBefore, r.StmtsAfter, r.Stats.Tests)
}

// persistBucket writes the bucket as an expect:fail corpus entry.
func persistBucket(b *Bucket, dir string) error {
	src := b.Reduced
	note := ""
	if src == "" {
		src = b.Witness.Src
	} else {
		note = fmt.Sprintf("minimized from %d to %d units", b.UnitsBefore, b.UnitsAfter)
	}
	e := &Entry{
		Name:      "fuzz-" + sanitizeName(b.Signature),
		Lang:      b.Witness.Lang,
		Oracle:    b.Oracle,
		Expect:    "fail",
		Seed:      b.Witness.Seed,
		Config:    b.Witness.Config,
		Signature: b.Signature,
		Note:      note,
		Src:       src,
	}
	path, err := WriteEntry(dir, e)
	b.Path = path
	return err
}
