package fuzz

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/harness"
	"repro/internal/persist/journal"
)

// loopFingerprint distills everything deterministic about a loop
// result for equality checks across checkpointed/resumed runs.
func loopFingerprint(t *testing.T, res *LoopResult) string {
	t.Helper()
	s := ""
	for _, b := range res.Buckets {
		s += fmt.Sprintf("%s|%s|%s|%d|%s\n", b.Signature, b.Oracle, b.Witness.Name, b.Count, b.Reduced)
	}
	s += fmt.Sprintf("ran=%d checks=%d det=%d", res.Ran, res.Checks, res.Detections)
	return s
}

// TestLoopResumeEquality: a checkpointed run equals an uncheckpointed
// one, and a second run over the complete journal replays every input
// without re-checking and still produces the identical result.
func TestLoopResumeEquality(t *testing.T) {
	base := LoopOptions{
		N:    8,
		Seed: 300,
		Jobs: 2,
		Check: Options{Fault: &harness.FaultConfig{
			Stage: harness.StageLessThan, Func: "main"}},
		Reduce:       true,
		ReduceBudget: budget.Spec{Timeout: 30 * time.Second},
	}
	plain, err := Loop(base)
	if err != nil {
		t.Fatal(err)
	}
	want := loopFingerprint(t, plain)

	path := filepath.Join(t.TempDir(), "fuzz.wal")
	ck, err := journal.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	opt := base
	opt.State = ck
	first, err := LoopCtx(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if first.Replayed != 0 || first.Completed != base.N {
		t.Fatalf("fresh journal: replayed=%d completed=%d", first.Replayed, first.Completed)
	}
	if got := loopFingerprint(t, first); got != want {
		t.Fatalf("checkpointed run differs from plain run:\n%s\nvs\n%s", got, want)
	}
	ck.Close()

	ck2, err := journal.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	opt.State = ck2
	second, err := LoopCtx(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if second.Replayed != base.N {
		t.Fatalf("complete journal: replayed %d/%d", second.Replayed, base.N)
	}
	if got := loopFingerprint(t, second); got != want {
		t.Fatalf("replayed run differs from plain run:\n%s\nvs\n%s", got, want)
	}
}

// cancelOnWrite cancels a context the first time the loop logs — which
// with a universal fault happens while merging the first batch, so the
// second batch is never dispatched.
type cancelOnWrite struct{ cancel context.CancelFunc }

func (w *cancelOnWrite) Write(p []byte) (int, error) {
	w.cancel()
	return len(p), nil
}

// TestLoopCancelThenResume: canceling mid-run journals only clean
// outcomes, reports Interrupted without touching the corpus, and a
// resumed run over the same journal reproduces the uninterrupted
// result exactly.
func TestLoopCancelThenResume(t *testing.T) {
	corpusDir := t.TempDir()
	base := LoopOptions{
		N:    24,
		Seed: 300,
		Jobs: 2,
		Check: Options{Fault: &harness.FaultConfig{
			Stage: harness.StageLessThan, Func: "main"}},
		Reduce:       true,
		ReduceBudget: budget.Spec{Timeout: 30 * time.Second},
	}
	plain, err := Loop(base)
	if err != nil {
		t.Fatal(err)
	}
	want := loopFingerprint(t, plain)

	path := filepath.Join(t.TempDir(), "fuzz.wal")
	ck, err := journal.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := base
	opt.State = ck
	opt.CorpusDir = corpusDir
	opt.Log = &cancelOnWrite{cancel: cancel}
	res, err := LoopCtx(ctx, opt)
	if err == nil || !res.Interrupted {
		t.Fatalf("canceled run not reported interrupted: err=%v res=%+v", err, res)
	}
	if res.Completed == 0 || res.Completed >= base.N {
		t.Fatalf("canceled run journaled %d/%d, want a proper prefix", res.Completed, base.N)
	}
	if len(res.Buckets) != 0 {
		t.Fatal("interrupted run must not publish buckets")
	}
	if entries, _ := ReadCorpus(corpusDir); len(entries) != 0 {
		t.Fatalf("interrupted run wrote %d corpus entries", len(entries))
	}
	ck.Close()

	ck2, err := journal.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if n := ck2.Count(); n != res.Completed {
		t.Fatalf("journal holds %d records, canceled run claimed %d", n, res.Completed)
	}
	opt.State = ck2
	opt.Log = nil
	resumed, err := LoopCtx(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Replayed != res.Completed {
		t.Fatalf("resume replayed %d, want %d", resumed.Replayed, res.Completed)
	}
	if got := loopFingerprint(t, resumed); got != want {
		t.Fatalf("resumed run differs from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
	if entries, _ := ReadCorpus(corpusDir); len(entries) != len(plain.Buckets) {
		t.Fatalf("resumed run persisted %d entries, want %d", len(entries), len(plain.Buckets))
	}
}

// TestCheckInterruptedFlag: an already-canceled context marks the
// outcome Interrupted so no caller can mistake its degraded answers
// for findings about the input.
func TestCheckInterruptedFlag(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := Check(genInput(300, 0), Options{Ctx: ctx})
	if !out.Interrupted {
		t.Fatalf("canceled check not marked interrupted: %+v", out)
	}
	if out2 := Check(genInput(300, 0), Options{}); out2.Interrupted {
		t.Fatalf("clean check marked interrupted: %+v", out2)
	}
}
