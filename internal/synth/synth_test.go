package synth

import (
	"strings"
	"testing"

	"repro/internal/minic"
)

// TestDeterministic: identical arguments must yield byte-identical
// source — the property baseline comparisons depend on.
func TestDeterministic(t *testing.T) {
	a := Module(100, 7)
	b := Module(100, 7)
	if a != b {
		t.Fatal("Module is not deterministic")
	}
	if c := Module(100, 8); c == a {
		t.Fatal("seed does not vary the module")
	}
}

// TestCompilesAtSeveralSizes: generated modules must lower cleanly and
// carry the requested function count (plus main).
func TestCompilesAtSeveralSizes(t *testing.T) {
	for _, n := range []int{1, 7, 64, 500} {
		src := Module(n, 1)
		m := minic.MustCompile("synth", src)
		if got := len(m.Funcs); got != n+1 {
			t.Errorf("funcs=%d: compiled %d functions, want %d", n, got, n+1)
		}
	}
}

// TestChainCalls: chain interiors call their successor, chain heads
// are called from main up to the fanout bound.
func TestChainCalls(t *testing.T) {
	src := Module(20, 1)
	if !strings.Contains(src, "w1(b, x - 1)") {
		t.Error("w0 does not call w1")
	}
	if strings.Contains(src, "w8(b, x - 1)") {
		t.Error("chain boundary w7->w8 should not exist")
	}
	for _, head := range []string{"acc = acc + w0(", "acc = acc + w8(", "acc = acc + w16("} {
		if !strings.Contains(src, head) {
			t.Errorf("main does not call chain head: %s", head)
		}
	}
}
