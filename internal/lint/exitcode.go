package lint

import (
	"go/ast"
	"strings"
)

// exitcode — the exit decision belongs to the binary, not the library.
//
// Every layer of this codebase promises its caller a chance to react:
// the harness contains panics, the servers drain before stopping, the
// workers journal before returning, the supervisor translates child
// exits into restart/quarantine decisions. A library that calls
// os.Exit or log.Fatal* skips all of it — no deferred cleanup, no
// journal flush, no lease release, no drain — and turns a local
// failure into a silent process kill the supervisor can only classify
// as a crash.
//
// Two homes are legal. Packages under cmd/ are the binaries: mapping
// an error to an exit status is their whole job. internal/driver owns
// the process-exit conventions the binaries share (ExitInterrupted,
// the second-signal hard exit), so the primitive lives there behind
// an injectable seam.
var analyzerExitcode = &Analyzer{
	Name: "exitcode",
	Doc:  "os.Exit/log.Fatal outside cmd/ and internal/driver kills the process past every containment and drain layer",
	Fix:  "return an error (or status) to the caller and let the binary entry layer decide; only cmd/ and internal/driver may exit",
	Run:  runExitcode,
}

// fatalFuncs are the log package entry points that exit the process
// after printing.
var fatalFuncs = []string{"Fatal", "Fatalf", "Fatalln"}

// isCmdPath reports whether an import path lives under a cmd/ tree.
func isCmdPath(path string) bool {
	return path == "cmd" || strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}

func runExitcode(p *Package) []Finding {
	if isCmdPath(p.Path) || pathHasSuffix(p.Path, "internal/driver") {
		return nil
	}
	var findings []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgCall(p.Info, call, "os", "Exit") {
				findings = append(findings, p.finding(call.Pos(),
					"os.Exit in a library kills the process past every containment layer: deferred cleanup, journals, and drains are all skipped"))
			}
			for _, name := range fatalFuncs {
				if isPkgCall(p.Info, call, "log", name) {
					findings = append(findings, p.finding(call.Pos(),
						"log."+name+" exits the process from a library: the caller loses its chance to journal, drain, or degrade"))
				}
			}
			return true
		})
	}
	return findings
}
