package lint

import (
	"go/ast"
	"strings"
)

// degraded — the sound-or-degraded contract on solver output.
//
// Every solver entry point (core.Analyze*, andersen.Analyze*,
// steens.Analyze*, rangeanal.Analyze*) returns a result that carries
// its own degradation record: core.Result.Degraded, the Degraded()
// error on the points-to analyses, budget-cancellation state. The
// contract is that a degraded result is still sound — but only if
// the caller can see it degraded. A call site that throws the result
// away (`core.Analyze(...)` as a statement, `_ = andersen.Analyze`)
// discards the only channel through which exhaustion or cancellation
// is reported, so a quietly starved solve becomes indistinguishable
// from a complete one.
var analyzerDegraded = &Analyzer{
	Name: "degraded",
	Doc:  "solver results carrying the Degraded()/Canceled signal must not be discarded at the call site",
	Fix:  "bind the result and consult Degraded()/Result.Degraded (or propagate it); if the call is only for side effects, say why with //lint:ignore degraded <reason>",
	Run:  runDegraded,
}

// solverPkgs are the packages whose Analyze* entry points carry a
// degradation signal in their result.
var solverPkgs = []string{
	"internal/core",
	"internal/andersen",
	"internal/steens",
	"internal/rangeanal",
}

func runDegraded(p *Package) []Finding {
	var findings []Finding
	report := func(call *ast.CallExpr) {
		fn := calleeFunc(p.Info, call)
		findings = append(findings, p.finding(call.Pos(),
			"result of "+fn.Pkg().Name()+"."+fn.Name()+" is discarded: the Degraded()/Canceled signal is lost"))
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok && isSolverEntry(p, call) {
					report(call)
				}
			case *ast.GoStmt:
				if isSolverEntry(p, stmt.Call) {
					report(stmt.Call)
				}
			case *ast.DeferStmt:
				if isSolverEntry(p, stmt.Call) {
					report(stmt.Call)
				}
			case *ast.AssignStmt:
				// Solver entry points are single-valued, so a blank
				// LHS for the call's position is a full discard.
				for i, rhs := range stmt.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isSolverEntry(p, call) || i >= len(stmt.Lhs) {
						continue
					}
					if id, ok := stmt.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						report(call)
					}
				}
			}
			return true
		})
	}
	return findings
}

// isSolverEntry reports whether call invokes an exported Analyze*
// function of one of the solver packages.
func isSolverEntry(p *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil || !strings.HasPrefix(fn.Name(), "Analyze") {
		return false
	}
	return pathHasAnySuffix(fn.Pkg().Path(), solverPkgs)
}
