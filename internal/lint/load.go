package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// LoadError marks failures to enumerate, parse, or type-check the
// target — the exit-code-2 class, as opposed to findings (exit 1).
type LoadError struct{ msg string }

func (e *LoadError) Error() string { return e.msg }

func loadErrorf(format string, args ...any) error {
	return &LoadError{msg: fmt.Sprintf(format, args...)}
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
	Export     string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
	DepsErrors []struct{ Err string }
}

// Load enumerates patterns (e.g. "./...") in dir via the go command,
// type-checks every matched package from source against the compiled
// export data of its dependencies, and returns the analyzable
// packages. Only non-test GoFiles are loaded: the invariants sraalint
// enforces are production contracts, and tests legitimately do things
// (raw temp-file writes, bare goroutines around blocking calls) the
// checks would otherwise drown in.
//
// Any go-list, parse, or type error is returned as *LoadError so the
// CLI can distinguish "could not analyze" (exit 2) from "analyzed and
// found violations" (exit 1).
func Load(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	graph := map[string]*PkgMeta{}
	exports := map[string]string{}
	var targets []*listPkg
	for _, lp := range listed {
		graph[lp.ImportPath] = &PkgMeta{
			ImportPath: lp.ImportPath,
			Imports:    lp.Imports,
			Standard:   lp.Standard,
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			targets = append(targets, lp)
		}
	}
	if len(targets) == 0 {
		return nil, loadErrorf("go list %v matched no packages", patterns)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := NewExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		p, err := checkPackage(fset, imp, t, graph)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// goList enumerates patterns with `go list -deps -export -json`:
// -deps -export makes the go command compile (or fetch from the build
// cache) export data for the full dependency closure, standard
// library included — that is what lets the type-checker run without a
// single non-stdlib import in this package.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, loadErrorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var listed []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var lp listPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, loadErrorf("decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, loadErrorf("loading %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Incomplete {
			msg := "dependency errors"
			if len(lp.DepsErrors) > 0 {
				msg = lp.DepsErrors[0].Err
			}
			return nil, loadErrorf("loading %s: %s", lp.ImportPath, msg)
		}
		cp := lp
		listed = append(listed, &cp)
	}
	return listed, nil
}

// NewExportImporter returns a types.Importer that resolves imports
// from compiled export data files, keyed by import path. Exposed for
// the test harness, which type-checks fixture source under synthetic
// import paths against the same dependency data the real loader uses.
func NewExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// NewInfo returns a types.Info with every map analyzers consult
// allocated. Shared with the test harness so fixtures and real loads
// see identical type information.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

func checkPackage(fset *token.FileSet, imp types.Importer, lp *listPkg, graph map[string]*PkgMeta) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, loadErrorf("parsing %s: %v", filepath.Join(lp.Dir, name), err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, loadErrorf("type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		Path:  lp.ImportPath,
		Dir:   lp.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Graph: graph,
	}, nil
}
