package lint

import (
	"fmt"
	"go/ast"
	"sort"
	"strconv"
	"strings"
)

// wallclock — solver purity: same input, same bytes, forever.
//
// The solver packages compute fixed points that feed memo keys
// (sha256 over canonical IR + options) and golden-compared reports.
// A wall-clock read or PRNG draw inside that computation — even one
// that only perturbs iteration order — silently breaks cache
// stability and byte-identical replay. The check enforces purity two
// ways:
//
//   - directly: no time.Now/Since/Until/After/Tick/NewTimer/NewTicker
//     call and no math/rand import inside a pure package;
//   - transitively: no pure package may depend (through any chain of
//     module-internal imports) on a package that imports "time" or
//     "math/rand", because a helper that timestamps or shuffles is one
//     refactor away from leaking into solver output.
//
// internal/budget is the sanctioned exemption: it exists precisely to
// be the wall-clock boundary, and its design guarantees exhaustion
// degrades soundly (empty LT sets, ⊤ ranges, MayAlias) rather than
// changing computed values.
var analyzerWallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "pure solver packages must not reach time.Now/math/rand, directly or via module-internal deps (budget excepted)",
	Fix:  "move the timing/randomness behind internal/budget or out of the solver; solver output must be a function of its input alone",
	Run:  runWallclock,
}

// purePkgs are the solver and solver-substrate packages whose output
// feeds memo keys and byte-compared reports.
var purePkgs = []string{
	"internal/core",
	"internal/andersen",
	"internal/steens",
	"internal/rangeanal",
	"internal/pentagon",
	"internal/abcd",
	"internal/essa",
	"internal/bitvec",
}

// wallclockExempt are module-internal packages allowed to touch the
// wall clock even when reachable from pure packages.
var wallclockExempt = []string{"internal/budget"}

// clockFuncs are the time package entry points that observe the wall
// clock or schedule against it.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

func runWallclock(p *Package) []Finding {
	if !pathHasAnySuffix(p.Path, purePkgs) {
		return nil
	}
	var findings []Finding

	for _, file := range p.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				findings = append(findings, p.finding(imp.Pos(),
					fmt.Sprintf("pure solver package imports %q: PRNG draws make solver output input-dependent no more", path)))
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && clockFuncs[fn.Name()] {
				findings = append(findings, p.finding(call.Pos(),
					"pure solver package reads the wall clock (time."+fn.Name()+"): values can leak into memo keys or artifacts"))
			}
			return true
		})
	}

	findings = append(findings, wallclockReachable(p)...)
	return findings
}

// wallclockReachable walks the module-internal import closure of a
// pure package and reports any dependency that imports "time" or
// "math/rand", anchored at the import declaration that begins the
// offending chain.
func wallclockReachable(p *Package) []Finding {
	meta := p.Graph[p.Path]
	if meta == nil {
		return nil
	}
	var findings []Finding
	for _, first := range sortedStrings(meta.Imports) {
		chain := findClockChain(p, first, map[string]bool{p.Path: true})
		if chain == nil {
			continue
		}
		pos := importPos(p, first)
		findings = append(findings, Finding{
			File: pos.File, Line: pos.Line, Col: pos.Col,
			Message: fmt.Sprintf("pure solver package reaches %q via %s",
				chain[len(chain)-1], strings.Join(append([]string{p.Path}, chain...), " -> ")),
		})
	}
	return findings
}

// findClockChain does a depth-first search from import path `from`
// through module-internal, non-exempt packages, returning the import
// chain ending in "time" or "math/rand", or nil. Deterministic: edges
// are explored in sorted order.
func findClockChain(p *Package, from string, seen map[string]bool) []string {
	if seen[from] {
		return nil
	}
	seen[from] = true
	meta := p.Graph[from]
	if meta == nil || meta.Standard || pathHasAnySuffix(from, wallclockExempt) {
		return nil
	}
	for _, next := range sortedStrings(meta.Imports) {
		if next == "time" || next == "math/rand" || next == "math/rand/v2" {
			return []string{from, next}
		}
	}
	for _, next := range sortedStrings(meta.Imports) {
		if chain := findClockChain(p, next, seen); chain != nil {
			return append([]string{from}, chain...)
		}
	}
	return nil
}

// importPos locates the ImportSpec for path in the package's files;
// findings about the import graph anchor there.
func importPos(p *Package, path string) Finding {
	for _, file := range p.Files {
		for _, imp := range file.Imports {
			if v, err := strconv.Unquote(imp.Path.Value); err == nil && v == path {
				return p.finding(imp.Pos(), "")
			}
		}
	}
	return p.finding(p.Files[0].Pos(), "")
}

func sortedStrings(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}
