package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// maporder — the determinism contract behind byte-identical reports.
//
// Go randomizes map iteration order, so a `for k := range m` loop
// whose body feeds anything order-sensitive — appends to a slice that
// outlives the loop, writes to an io.Writer or strings.Builder,
// printf output — produces a different byte stream on every run
// unless the accumulated values are sorted before they matter. The
// check flags such loops; the blessed idiom it accepts is "collect
// keys, sort, then range over the sorted slice", detected as a
// sort.* / slices.Sort* call on the accumulated slice anywhere after
// the loop in the same function.
//
// Order-insensitive bodies (counters, sums, writes into other maps,
// min/max folds over total orders) are not flagged.
var analyzerMapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map-range loops must not feed order-sensitive sinks (slices, writers, reports) without sorting",
	Fix:  "collect into a slice, sort it (sort.* / slices.Sort*), then iterate the slice; or sort the accumulated result before it is consumed",
	Run:  runMapOrder,
}

func runMapOrder(p *Package) []Finding {
	var findings []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := p.Info.Types[rs.X]
				if !ok || !isMapType(tv.Type) {
					return true
				}
				findings = append(findings, checkMapRange(p, fd.Body, rs)...)
				return true
			})
		}
	}
	return findings
}

// checkMapRange inspects one map-range loop body for order-sensitive
// sinks. fnBody is the enclosing function body, searched beyond the
// loop for the sanctioned sort-afterwards idiom.
func checkMapRange(p *Package, fnBody *ast.BlockStmt, rs *ast.RangeStmt) []Finding {
	var findings []Finding
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isBuiltinCall(p.Info, call, "append"):
			if f, bad := checkLoopAppend(p, fnBody, rs, call); bad {
				findings = append(findings, f)
			}
		case isWriteSink(p, call):
			findings = append(findings, p.finding(call.Pos(),
				"write inside map-range loop: output order follows randomized map iteration"))
		}
		return true
	})
	return findings
}

// checkLoopAppend flags `x = append(x, ...)` inside a map-range loop
// when x outlives the loop and is never sorted afterwards in the same
// function.
func checkLoopAppend(p *Package, fnBody *ast.BlockStmt, rs *ast.RangeStmt, call *ast.CallExpr) (Finding, bool) {
	if len(call.Args) == 0 {
		return Finding{}, false
	}
	obj := rootObject(p.Info, call.Args[0])
	if obj == nil {
		return Finding{}, false
	}
	// A slice declared inside the loop body dies with the iteration;
	// its element order cannot leak out un-sorted through it.
	if obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End() {
		return Finding{}, false
	}
	// Accept a sort anywhere after the append — the collect-then-sort
	// idiom after the loop, and also the nested shape where an outer
	// loop sorts each inner accumulation before moving on.
	if sortedAfter(p, fnBody, call.End(), obj) {
		return Finding{}, false
	}
	return p.finding(call.Pos(), fmt.Sprintf(
		"append to %q inside map-range loop without a later sort: element order follows randomized map iteration", obj.Name())), true
}

// sortedAfter reports whether any statement after pos in the function
// body calls a sorting function on an expression referencing obj.
func sortedAfter(p *Package, fnBody *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return !found
		}
		if !isSortCall(p, call) {
			return !found
		}
		for _, arg := range call.Args {
			if usesObject(p.Info, arg, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isSortCall matches the standard sorting entry points: anything in
// package sort, the slices.Sort* family, and a method literally named
// Sort (sort.Interface implementations).
func isSortCall(p *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil {
		if pkg.Path() == "sort" {
			return true
		}
		if pkg.Path() == "slices" && strings.HasPrefix(fn.Name(), "Sort") {
			return true
		}
	}
	return fn.Name() == "Sort"
}

// isWriteSink matches calls that emit bytes in call order: the
// fmt.Print/Fprint families and Write* / Encode methods on writers,
// builders, and encoders.
func isWriteSink(p *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			return true
		}
	}
	return false
}
