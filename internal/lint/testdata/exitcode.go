// exitcode fixture: a library package. Direct process exits are
// findings; passing os.Exit as a function value is not a call and is
// the driver's sanctioned injection idiom, so it stays clean.
package worker

import (
	"fmt"
	"log"
	"os"
)

func fail(msg string) {
	os.Exit(1) // want exitcode `os.Exit in a library`
}

func failLoudly(err error) {
	log.Fatal(err) // want exitcode `log.Fatal exits the process`
}

func failFormatted(err error) {
	log.Fatalf("boom: %v", err) // want exitcode `log.Fatalf exits the process`
}

func failLine(err error) {
	log.Fatalln(err) // want exitcode `log.Fatalln exits the process`
}

// install passes the exit function along without calling it — the
// injectable-seam idiom. No finding: the call site that invokes it
// owns the decision.
func install(register func(exit func(int))) {
	register(os.Exit)
}

// report is the sanctioned shape: hand the error back.
func report(err error) error {
	return fmt.Errorf("worker: %w", err)
}
