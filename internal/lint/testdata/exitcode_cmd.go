// exitcode fixture: checked under a cmd/ import path and again under
// internal/driver — the two homes where deciding the process's exit
// status is the package's actual job. No findings either way.
package main

import (
	"log"
	"os"
)

func fatal(err error) {
	log.Fatal(err)
}

func exitWith(code int) {
	os.Exit(code)
}
