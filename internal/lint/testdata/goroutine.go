// goroutine fixture: launches outside the containment layer.
package fixture

import "sync"

// Positive: nothing stands between a panic here and process death.
func bare(done chan struct{}) {
	go func() { // want goroutine `no deferred recover`
		close(done)
	}()
}

// Positive: containment cannot be verified through a named function.
func named(wg *sync.WaitGroup) {
	go wg.Done() // want goroutine `named function`
}

// Negative: the launch carries its own containment of last resort.
func contained(done chan any) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- r
			}
		}()
		done <- nil
	}()
}

// Negative: the worker-pool shape — recover sits in a nested per-item
// region inside the literal, as internal/core's workers do.
func pool(ch chan int, slots []any) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range ch {
			func(i int) {
				defer func() {
					if r := recover(); r != nil {
						slots[i] = r
					}
				}()
				slots[i] = i * i
			}(i)
		}
	}()
	wg.Wait()
}
