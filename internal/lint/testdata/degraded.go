// degraded fixture: solver entry points whose result — the only
// carrier of the Degraded()/Canceled signal — is discarded.
package fixture

import (
	"repro/internal/andersen"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/rangeanal"
	"repro/internal/steens"
)

// Positive: statement call, result fully discarded.
func discardStmt(m *ir.Module, r *rangeanal.Result) {
	core.Analyze(m, r, core.Options{}) // want degraded `discarded`
}

// Positive: explicit blank assignment.
func discardBlank(m *ir.Module) {
	_ = andersen.Analyze(m) // want degraded `discarded`
}

// Positive: deferred for side effects only.
func discardDefer(m *ir.Module) {
	defer steens.Analyze(m) // want degraded `discarded`
}

// Negative: result bound and its signal consulted.
func used(m *ir.Module) error {
	a := andersen.Analyze(m)
	return a.Degraded()
}

// Negative: result propagated to the caller.
func usedRange(m *ir.Module) *rangeanal.Result {
	return rangeanal.Analyze(m)
}
