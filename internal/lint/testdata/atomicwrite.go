// atomicwrite fixture: raw file creation outside internal/persist.
package fixture

import (
	"os"

	"repro/internal/persist"
)

// Positive: bypasses tmp+fsync+rename.
func writeRaw(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want atomicwrite `os.WriteFile`
}

// Positive: creation without the atomic protocol.
func createRaw(path string) (*os.File, error) {
	return os.Create(path) // want atomicwrite `os.Create`
}

// Negative: the blessed route.
func writeAtomic(path string, data []byte) error {
	return persist.AtomicWriteFile(path, data, 0o644)
}

// Negative: reads are not writes.
func readOnly(path string) ([]byte, error) {
	return os.ReadFile(path)
}
