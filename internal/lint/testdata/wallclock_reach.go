// wallclock fixture for the reachability rule: the package source
// never mentions time — the violation (or its sanctioned absence
// through internal/budget) lives in the loader metadata the tests
// synthesize, so the expectations live in the tests too.
package core

func pure(x int) int { return x + 1 }
