// goroutine fixture: checked under the internal/harness import path,
// the containment layer itself — its worker launches are the
// mechanism, not a violation. No findings.
package harness

func workers(ch chan int, out []int) {
	for w := 0; w < 4; w++ {
		go func() {
			for i := range ch {
				out[i] = i
			}
		}()
	}
}
