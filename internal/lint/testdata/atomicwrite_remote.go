// atomicwrite fixture: internal/persist/remote is a *client* of the
// store, not the package that implements the atomic protocol — the
// parent exemption is exact-suffix and does not extend to
// subpackages. Raw writes here are audited and need a reviewed
// waiver, exactly like any other consumer.
package remote

import (
	"os"

	"repro/internal/persist"
)

// Positive: the subpackage gets no free pass from its parent.
func spillRaw(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want atomicwrite `os.WriteFile`
}

// Negative: the reasoned waiver the real client uses for quarantine
// spills — write-only postmortem evidence where a torn file loses
// nothing worth protecting.
func spillQuarantine(path string, data []byte) error {
	//lint:ignore atomicwrite quarantined evidence is write-only postmortem data; a torn file loses nothing
	return os.WriteFile(path, data, 0o644)
}

// Negative: the blessed route is available here like everywhere else.
func writeAtomic(path string, data []byte) error {
	return persist.AtomicWriteFile(path, data, 0o644)
}
