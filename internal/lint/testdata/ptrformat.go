// ptrformat fixture: addresses and raw map renderings in
// printf-family output.
package fixture

import (
	"fmt"
	"io"
	"log"
)

// Positive: a machine address in the output.
func addr(p *int) string {
	return fmt.Sprintf("%p", p) // want ptrformat `%p`
}

// Positive: map rendered directly.
func mapValue(m map[string]int) string {
	return fmt.Sprintf("%v", m) // want ptrformat `map value`
}

// Positive: %+v is the same hazard.
func mapPlus(w io.Writer, m map[string]int) {
	fmt.Fprintf(w, "state: %+v\n", m) // want ptrformat `map value`
}

// Positive: the log package is an output path too.
func logMap(m map[int]bool) {
	log.Printf("m=%v", m) // want ptrformat `map value`
}

// Positive: explicit argument indexes are followed.
func indexed(m map[string]int) string {
	return fmt.Sprintf("%[2]v %[1]d", 1, m) // want ptrformat `map value`
}

// Positive: '*' width consumes an argument before the map arrives.
func starWidth(n int, m map[string]int) string {
	return fmt.Sprintf("%*d %v", n, 7, m) // want ptrformat `map value`
}

// Positive: errors end up in reports as well.
func errf(p *byte) error {
	return fmt.Errorf("at %p", p) // want ptrformat `%p`
}

// Negative: lengths, strings, and structs are deterministic.
func fine(m map[string]int, s fmt.Stringer) string {
	return fmt.Sprintf("%d %s %v", len(m), s, struct{ A int }{1})
}

// Negative: a non-constant format cannot be analyzed — and is not
// guessed at.
func dynamic(f string, m map[string]int) string {
	return fmt.Sprintf(f, m)
}
