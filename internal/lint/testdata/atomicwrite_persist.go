// atomicwrite fixture: the persist package itself implements the
// atomic protocol, so raw primitives are legal here. No findings.
package persist

import "os"

func writeTmp(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func create(path string) (*os.File, error) {
	return os.Create(path)
}
