// wallclock fixture: checked under a pure-solver import path
// (internal/core), where wall-clock reads and PRNG use are findings.
package core

import (
	"math/rand" // want wallclock `imports "math/rand"`
	"time"
)

// Positive: wall-clock read inside a pure package.
func stamp() int64 {
	return time.Now().UnixNano() // want wallclock `reads the wall clock`
}

// Positive: Since is a clock read too.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want wallclock `reads the wall clock`
}

// The import finding above is the PRNG diagnostic; drawing from an
// injected source adds no second finding.
func draw(r *rand.Rand) int {
	return r.Intn(10)
}

// Negative: duration arithmetic is pure.
func double(d time.Duration) time.Duration {
	return 2 * d
}
