// suppression fixture: the //lint:ignore contract — a named check
// plus a non-empty reason silences exactly one line; anything less is
// itself a finding.
package fixture

import "os"

// Silenced: directive on the offending line, with a reason.
func suppressedSameLine(path string) error {
	return os.WriteFile(path, nil, 0o644) //lint:ignore atomicwrite fixture demonstrates a reviewed waiver
}

// Silenced: directive on the line above, with a reason.
func suppressedLineAbove(path string) (*os.File, error) {
	//lint:ignore atomicwrite the file is ephemeral scratch, never read back after a crash
	return os.Create(path)
}

// Rejected: no reason given — the directive is reported and the
// underlying finding stays.
func missingReason(path string) error {
	// want+1 suppress `without a reason`
	//lint:ignore atomicwrite
	return os.WriteFile(path, nil, 0o644) // want atomicwrite `torn file`
}

// Rejected: unknown check name.
func unknownCheck(path string) error {
	// want+1 suppress `unknown check`
	//lint:ignore notacheck it does not matter how good the reason is
	return os.WriteFile(path, nil, 0o644) // want atomicwrite `torn file`
}

// A directive for one check does not silence another: the reasoned
// goroutine waiver below leaves the atomicwrite finding alone.
func wrongCheck(path string) error {
	//lint:ignore goroutine reasons about goroutines do not cover writes
	return os.WriteFile(path, nil, 0o644) // want atomicwrite `torn file`
}
