// wallclock fixture: the same clock reads checked under a non-pure
// import path (internal/serve) are legitimate. No findings.
package serve

import "time"

func deadline() time.Time {
	return time.Now().Add(10 * time.Second)
}

func waited(t0 time.Time) time.Duration {
	return time.Since(t0)
}
