// maporder fixture: map-range loops feeding order-sensitive sinks.
package fixture

import (
	"fmt"
	"io"
	"sort"
)

// Positive: the slice outlives the loop and is never sorted.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want maporder `append to "keys"`
	}
	return keys
}

// Negative: the blessed collect-then-sort idiom.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Positive: bytes leave in iteration order; no later sort can help.
func printUnsorted(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want maporder `write inside map-range`
	}
}

// Negative: counting is order-insensitive.
func countOnly(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Negative: the scratch slice dies inside the iteration.
func innerScratch(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var scratch []int
		scratch = append(scratch, vs...)
		total += len(scratch)
	}
	return total
}

// Negative: nested accumulation sorted per outer iteration, the
// analyzeWithSeeds shape from internal/core.
func nestedPerKeySort(m map[string]map[int]bool) map[string][]int {
	out := map[string][]int{}
	for k, inner := range m {
		for v := range inner {
			out[k] = append(out[k], v)
		}
		sort.Ints(out[k])
	}
	return out
}

// Negative: writing into another map is order-insensitive.
func intoOtherMap(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Positive: a field append through a receiver-like struct still
// escapes the loop unsorted.
type report struct{ lines []string }

func (r *report) fill(m map[string]bool) {
	for k := range m {
		r.lines = append(r.lines, k) // want maporder `append to "r"`
	}
}
