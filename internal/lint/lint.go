// Package lint is sraalint's engine: a self-hosted static analyzer
// that machine-enforces the invariants this codebase's guarantees
// rest on. The platform promises byte-identical reports at any worker
// count, sound-or-degraded solver output, and crash-safe artifact
// writes; each promise is easy to break with one stray line — a map
// iteration feeding a report, an os.WriteFile that skips the atomic
// rename, a worker goroutine with no containment. The checks here
// turn those conventions into diagnostics that gate CI.
//
// The engine is deliberately stdlib-only (go/ast, go/types, go/token,
// go/importer): package enumeration and type information come from
// `go list -deps -export -json`, whose compiled export data feeds the
// gc importer, so the analyzer adds no dependencies to the module it
// guards and cannot itself rot the go.mod zero-dependency contract.
//
// Contract paths are matched by import-path *suffix* (for example
// "internal/persist"), not by full module path, so the same analyzer
// binary runs unchanged over this repository and over the fixture
// modules the test suite uses to prove each check fires.
//
// Suppression. A finding is silenced only by an explicit
//
//	//lint:ignore <check> <reason>
//
// comment on the offending line or the line directly above it, and
// the reason must be non-empty: an unexplained suppression is itself
// reported (check "suppress"). The suppression is thereby a reviewed,
// grep-able record of every place an invariant is waived and why.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic: where, which contract, what went wrong,
// and how to fix it. The JSON form is what CI uploads as an artifact
// when the lint gate fails.
type Finding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	Fix     string `json:"fix,omitempty"`
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Check, f.Message)
	if f.Fix != "" {
		s += " (fix: " + f.Fix + ")"
	}
	return s
}

// Package is one type-checked target package plus the dependency
// graph context some analyzers (wallclock reachability) need.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Graph maps every import path seen by the loader — targets and
	// dependencies, standard library included — to its metadata. All
	// target packages of one Load share the same graph.
	Graph map[string]*PkgMeta
}

// PkgMeta is the loader's per-package metadata, enough to walk the
// import graph without type-checking dependencies.
type PkgMeta struct {
	ImportPath string
	Imports    []string
	Standard   bool
}

// An Analyzer encodes one invariant. Run returns findings with
// Message (and optionally Fix) set; the engine fills in Check and the
// default Fix hint.
type Analyzer struct {
	Name string // the check name used in findings and suppressions
	Doc  string // one-line contract statement, shown by sraalint -checks
	Fix  string // default fix hint attached to findings
	Run  func(p *Package) []Finding
}

// Analyzers returns the full check suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzerMapOrder,
		analyzerAtomicWrite,
		analyzerDegraded,
		analyzerWallclock,
		analyzerGoroutine,
		analyzerPtrFormat,
		analyzerExitcode,
	}
}

// checkNames returns the set of valid check names, for validating
// suppression comments.
func checkNames() map[string]bool {
	names := map[string]bool{}
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// Run executes every analyzer over every package, applies
// //lint:ignore suppressions, and returns the surviving findings
// sorted by position — the order is deterministic by construction, a
// linter enforcing determinism had better not randomize its own
// output.
func Run(pkgs []*Package) []Finding {
	var all []Finding
	for _, p := range pkgs {
		var pkgFindings []Finding
		for _, a := range Analyzers() {
			fs := a.Run(p)
			for i := range fs {
				fs[i].Check = a.Name
				if fs[i].Fix == "" {
					fs[i].Fix = a.Fix
				}
			}
			pkgFindings = append(pkgFindings, fs...)
		}
		all = append(all, applySuppressions(p, pkgFindings)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return all
}

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	line   int
	check  string
	reason string
	used   bool
}

// applySuppressions filters findings covered by a well-formed
// //lint:ignore directive (same line or the line directly below the
// comment) and reports malformed directives — unknown check names and
// empty reasons — as findings in their own right, so a suppression
// can never silently widen.
func applySuppressions(p *Package, findings []Finding) []Finding {
	valid := checkNames()
	byFile := map[string][]*suppression{}
	var bad []Finding
	for _, file := range p.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				parts := strings.Fields(text)
				if len(parts) == 0 || !valid[parts[0]] {
					bad = append(bad, Finding{
						Check: "suppress", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: fmt.Sprintf("lint:ignore with unknown check %q", strings.Join(parts, " ")),
						Fix:     "name one of the sraalint checks: " + strings.Join(sortedNames(valid), ", "),
					})
					continue
				}
				if len(parts) < 2 {
					bad = append(bad, Finding{
						Check: "suppress", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: fmt.Sprintf("lint:ignore %s without a reason", parts[0]),
						Fix:     "suppressions must carry a written justification: //lint:ignore " + parts[0] + " <reason>",
					})
					continue
				}
				byFile[pos.Filename] = append(byFile[pos.Filename], &suppression{
					line:   pos.Line,
					check:  parts[0],
					reason: strings.Join(parts[1:], " "),
				})
			}
		}
	}

	var kept []Finding
	for _, f := range findings {
		suppressed := false
		for _, s := range byFile[f.File] {
			if s.check == f.Check && (f.Line == s.line || f.Line == s.line+1) {
				suppressed = true
				s.used = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	return append(kept, bad...)
}

func sortedNames(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
