package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// pathHasSuffix reports whether an import path matches a contract
// path suffix: equal, or ending in "/"+suffix. Suffix matching is
// what lets the analyzer run unchanged over this module and over the
// fixture modules the test suite builds.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

func pathHasAnySuffix(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// finding builds a Finding at pos; the engine fills Check and the
// default Fix afterwards.
func (p *Package) finding(pos token.Pos, message string) Finding {
	position := p.Fset.Position(pos)
	return Finding{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: message,
	}
}

// calleeFunc resolves a call expression to the *types.Func it
// invokes, or nil for builtins, type conversions, and dynamic calls
// through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgCall reports whether call invokes the package-level function
// pkgPath.name, with pkgPath matched exactly (used for standard
// library functions, whose paths are fixed).
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// isBuiltinCall reports whether call invokes the named builtin
// (append, recover, ...), resolving through the type checker so a
// local function shadowing the name does not match.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// rootObject resolves the variable at the base of an lvalue-ish
// expression: x -> x, x.F.G -> x, x[i] -> x. Returns nil when the
// base is not a simple identifier (call results, dereferences of
// complex expressions).
func rootObject(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return info.Uses[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// usesObject reports whether node references obj anywhere.
func usesObject(info *types.Info, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// containsDeferredRecover reports whether body lexically contains a
// `defer func() { ... recover() ... }()` (or a plain `defer
// recover()`, which vet flags anyway) — the containment shape the
// goroutine check accepts as proof a launch cannot crash the process.
func containsDeferredRecover(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return !found
		}
		if isBuiltinCall(info, d.Call, "recover") {
			found = true
			return false
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok && isBuiltinCall(info, c, "recover") {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// constString returns the compile-time constant string value of expr,
// resolving named constants and concatenations through the type
// checker; ok is false for anything not constant.
func constString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerb is one conversion in a printf-style format string.
type formatVerb struct {
	verb     rune
	flags    string
	argIndex int // index into the variadic args consumed by this verb, -1 if none (%%)
}

// parseFormat extracts the conversions from a printf format string,
// tracking which variadic argument each verb consumes, including '*'
// width/precision arguments and '[n]' explicit indexes. It is the
// same small subset of fmt's grammar go vet's printf check handles.
func parseFormat(format string) []formatVerb {
	var verbs []formatVerb
	arg := 0
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		flagStart := i
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			i++
		}
		flags := format[flagStart:i]
		// width
		if i < len(format) && format[i] == '*' {
			arg++
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		// precision
		if i < len(format) && format[i] == '.' {
			i++
			if i < len(format) && format[i] == '*' {
				arg++
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
		}
		// explicit argument index
		if i < len(format) && format[i] == '[' {
			j := i + 1
			n := 0
			for j < len(format) && format[j] >= '0' && format[j] <= '9' {
				n = n*10 + int(format[j]-'0')
				j++
			}
			if j < len(format) && format[j] == ']' && n > 0 {
				arg = n - 1
				i = j + 1
			}
		}
		if i >= len(format) {
			break
		}
		verb := rune(format[i])
		i++
		if verb == '%' {
			verbs = append(verbs, formatVerb{verb: verb, flags: flags, argIndex: -1})
			continue
		}
		verbs = append(verbs, formatVerb{verb: verb, flags: flags, argIndex: arg})
		arg++
	}
	return verbs
}

// isMapType reports whether t's underlying type (through one level of
// pointer) is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
