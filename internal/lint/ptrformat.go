package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ptrformat — addresses and raw map renderings must not reach
// reports.
//
// %p formats a machine address: different every run, different on
// every worker, instant death for byte-identical goldens. Formatting
// a map through %v/%+v/%#v is subtler — fmt sorts keys for most key
// types, but interface and NaN-capable keys are not totally ordered,
// and the repo's determinism contract is "sorted explicitly at the
// boundary", not "fmt probably sorts". Both verbs are flagged on the
// printf family; rendering code must convert to a sorted slice (or a
// purpose-built summary) first.
var analyzerPtrFormat = &Analyzer{
	Name: "ptrformat",
	Doc:  "no %p, and no map-valued %v/%+v/%#v, in printf-family formatting",
	Fix:  "render an explicit, sorted representation: format field values individually, or convert the map to a sorted slice first",
	Run:  runPtrFormat,
}

// printfFuncs maps printf-family functions to the index of their
// format argument. Methods are matched by receiver-less package
// functions only; *log.Logger methods are handled separately.
var printfFuncs = map[[2]string]int{
	{"fmt", "Printf"}:  0,
	{"fmt", "Sprintf"}: 0,
	{"fmt", "Fprintf"}: 1,
	{"fmt", "Errorf"}:  0,
	{"fmt", "Appendf"}: 1,
	{"log", "Printf"}:  0,
	{"log", "Fatalf"}:  0,
	{"log", "Panicf"}:  0,
}

func runPtrFormat(p *Package) []Finding {
	var findings []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			idx, ok := formatArgIndex(p, call)
			if !ok || idx >= len(call.Args) {
				return true
			}
			format, ok := constString(p.Info, call.Args[idx])
			if !ok {
				return true
			}
			args := call.Args[idx+1:]
			for _, v := range parseFormat(format) {
				switch v.verb {
				case 'p':
					findings = append(findings, p.finding(call.Pos(),
						"%p formats a machine address: different bytes on every run"))
				case 'v':
					if v.argIndex < 0 || v.argIndex >= len(args) {
						continue
					}
					tv, ok := p.Info.Types[args[v.argIndex]]
					if ok && isMapType(tv.Type) {
						findings = append(findings, p.finding(call.Pos(), fmt.Sprintf(
							"%%%s%c formats a map value directly: key order is not contractually deterministic", v.flags, v.verb)))
					}
				}
			}
			return true
		})
	}
	return findings
}

// formatArgIndex returns the format-string argument index for
// printf-family calls, covering the fmt/log package functions and
// *log.Logger's Printf/Fatalf/Panicf methods.
func formatArgIndex(p *Package, call *ast.CallExpr) (int, bool) {
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return 0, false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		idx, ok := printfFuncs[[2]string{fn.Pkg().Path(), fn.Name()}]
		return idx, ok
	}
	if fn.Pkg().Path() == "log" {
		switch fn.Name() {
		case "Printf", "Fatalf", "Panicf":
			return 0, true
		}
	}
	return 0, false
}
