package lint

// Per-analyzer fixture suites. Each fixture under testdata/ is one
// Go file, type-checked against the real module's export data under a
// synthetic import path (so path-suffix contracts like "pure solver
// package" are exercised without building throwaway modules), then
// run through the full engine. Expectations are comments of the form
//
//	// want <check> `substring`
//	// want+1 <check> `substring`   (finding expected on the next line)
//
// and the comparison is exact both ways: every want must be matched
// by a finding on its line, and every finding must be claimed by a
// want — a fixture cannot silently trip an unrelated check.

import (
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var (
	fixtureOnce sync.Once
	fixtureErr  error
	fixtureFset *token.FileSet
	fixtureImp  types.Importer
)

// fixtureImporter builds (once) an export-data importer over the
// dependencies fixtures are allowed to use: a slice of the standard
// library plus the repo's own solver and persistence packages.
func fixtureImporter(t *testing.T) (*token.FileSet, types.Importer) {
	t.Helper()
	fixtureOnce.Do(func() {
		listed, err := goList("../..", []string{
			"fmt", "io", "log", "os", "sort", "sync", "time", "math/rand",
			"repro/internal/ir", "repro/internal/core", "repro/internal/andersen",
			"repro/internal/steens", "repro/internal/rangeanal", "repro/internal/persist",
		})
		if err != nil {
			fixtureErr = err
			return
		}
		exports := map[string]string{}
		for _, lp := range listed {
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
		fixtureFset = token.NewFileSet()
		fixtureImp = NewExportImporter(fixtureFset, exports)
	})
	if fixtureErr != nil {
		t.Fatalf("building fixture importer: %v", fixtureErr)
	}
	return fixtureFset, fixtureImp
}

// loadFixture type-checks testdata/<file> under importPath and wraps
// it as an analyzable Package.
func loadFixture(t *testing.T, file, importPath string, graph map[string]*PkgMeta) *Package {
	t.Helper()
	fset, imp := fixtureImporter(t)
	path := filepath.Join("testdata", file)
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-checking %s: %v", path, err)
	}
	return &Package{
		Path:  importPath,
		Fset:  fset,
		Files: []*ast.File{f},
		Types: tpkg,
		Info:  info,
		Graph: graph,
	}
}

// checkFixture runs the full engine over a fixture and compares
// findings against the fixture's want comments.
func checkFixture(t *testing.T, file, importPath string, graph map[string]*PkgMeta) {
	t.Helper()
	p := loadFixture(t, file, importPath, graph)
	compareWants(t, filepath.Join("testdata", file), Run([]*Package{p}))
}

// want is one expectation parsed from a fixture comment.
type want struct {
	check  string
	substr string
	seen   bool
}

var wantRe = regexp.MustCompile("//\\s*want(\\+[0-9]+)?\\s+([a-z]+)\\s+`([^`]*)`")

func parseWants(t *testing.T, path string) map[int][]*want {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[int][]*want{}
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
			lineNo := i + 1
			if m[1] != "" {
				n, _ := strconv.Atoi(m[1][1:])
				lineNo += n
			}
			wants[lineNo] = append(wants[lineNo], &want{check: m[2], substr: m[3]})
		}
	}
	return wants
}

func compareWants(t *testing.T, path string, findings []Finding) {
	t.Helper()
	wants := parseWants(t, path)
	for _, f := range findings {
		matched := false
		for _, w := range wants[f.Line] {
			if !w.seen && w.check == f.Check && strings.Contains(f.Message, w.substr) {
				w.seen = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for line, ws := range wants {
		for _, w := range ws {
			if !w.seen {
				t.Errorf("%s:%d: expected %s finding containing %q, got none", path, line, w.check, w.substr)
			}
		}
	}
}

func TestMapOrder(t *testing.T) {
	checkFixture(t, "maporder.go", "fixturemod/render", nil)
}

func TestAtomicWrite(t *testing.T) {
	checkFixture(t, "atomicwrite.go", "fixturemod/store", nil)
}

func TestAtomicWriteExemptInPersist(t *testing.T) {
	// The same raw calls are legal inside the package that implements
	// the atomic protocol.
	checkFixture(t, "atomicwrite_persist.go", "fixturemod/internal/persist", nil)
}

func TestAtomicWriteAuditsPersistSubpackages(t *testing.T) {
	// The persist exemption is exact-suffix: internal/persist/remote
	// is a store client, not the protocol implementation, so its raw
	// writes are flagged and the quarantine spill in the real client
	// needs (and carries) a reasoned waiver.
	checkFixture(t, "atomicwrite_remote.go", "fixturemod/internal/persist/remote", nil)
}

func TestDegraded(t *testing.T) {
	checkFixture(t, "degraded.go", "fixturemod/caller", nil)
}

func TestWallclock(t *testing.T) {
	checkFixture(t, "wallclock.go", "fixturemod/internal/core", nil)
}

func TestWallclockOutsidePureSet(t *testing.T) {
	// Identical wall-clock usage is fine outside the pure solver
	// packages — serving and harness code measures time on purpose.
	checkFixture(t, "wallclock_impure.go", "fixturemod/internal/serve", nil)
}

func TestWallclockSilentInRemoteClient(t *testing.T) {
	// Timeouts, backoff, and breaker cooldowns make the remote store
	// client a deliberate clock consumer; it sits outside the pure
	// solver set, so the same clock reads that would flag a solver
	// stay silent here.
	checkFixture(t, "wallclock_impure.go", "fixturemod/internal/persist/remote", nil)
}

func TestWallclockReachability(t *testing.T) {
	// The dependency chain is synthesized as loader metadata: the
	// pure package never mentions time itself, but its helper does.
	graph := map[string]*PkgMeta{
		"fixturemod/internal/core": {
			ImportPath: "fixturemod/internal/core",
			Imports:    []string{"fixturemod/internal/helper"},
		},
		"fixturemod/internal/helper": {
			ImportPath: "fixturemod/internal/helper",
			Imports:    []string{"time"},
		},
	}
	p := loadFixture(t, "wallclock_reach.go", "fixturemod/internal/core", graph)
	findings := Run([]*Package{p})
	if len(findings) != 1 {
		t.Fatalf("expected exactly one reachability finding, got %v", findings)
	}
	f := findings[0]
	if f.Check != "wallclock" {
		t.Errorf("check = %q, want wallclock", f.Check)
	}
	wantChain := "fixturemod/internal/core -> fixturemod/internal/helper -> time"
	if !strings.Contains(f.Message, wantChain) {
		t.Errorf("message %q does not spell out the chain %q", f.Message, wantChain)
	}
}

func TestWallclockBudgetExempt(t *testing.T) {
	// Reaching time through internal/budget is the sanctioned
	// boundary and must stay silent.
	graph := map[string]*PkgMeta{
		"fixturemod/internal/core": {
			ImportPath: "fixturemod/internal/core",
			Imports:    []string{"fixturemod/internal/budget"},
		},
		"fixturemod/internal/budget": {
			ImportPath: "fixturemod/internal/budget",
			Imports:    []string{"time"},
		},
	}
	p := loadFixture(t, "wallclock_reach.go", "fixturemod/internal/core", graph)
	if findings := Run([]*Package{p}); len(findings) != 0 {
		t.Fatalf("expected no findings through the budget boundary, got %v", findings)
	}
}

func TestGoroutine(t *testing.T) {
	checkFixture(t, "goroutine.go", "fixturemod/spawn", nil)
}

func TestGoroutineExemptInHarness(t *testing.T) {
	checkFixture(t, "goroutine_harness.go", "fixturemod/internal/harness", nil)
}

func TestPtrFormat(t *testing.T) {
	checkFixture(t, "ptrformat.go", "fixturemod/render", nil)
}

func TestSuppression(t *testing.T) {
	checkFixture(t, "suppress.go", "fixturemod/store", nil)
}

func TestExitcode(t *testing.T) {
	checkFixture(t, "exitcode.go", "fixturemod/worker", nil)
}

func TestExitcodeExemptInCmd(t *testing.T) {
	checkFixture(t, "exitcode_cmd.go", "fixturemod/cmd/tool", nil)
}

func TestExitcodeExemptInDriver(t *testing.T) {
	checkFixture(t, "exitcode_cmd.go", "fixturemod/internal/driver", nil)
}

func TestParseFormat(t *testing.T) {
	cases := []struct {
		format string
		verbs  string // rendered as "<verb>@<argIndex>" joined by space
	}{
		{"%d", "d@0"},
		{"%d %s", "d@0 s@1"},
		{"%%", "%@-1"},
		{"%*d", "d@1"},
		{"%.*f", "f@1"},
		{"%[2]v %[1]d", "v@1 d@0"},
		{"%+v", "v@0"},
		{"no verbs", ""},
		{"%", ""},
	}
	for _, c := range cases {
		var got []string
		for _, v := range parseFormat(c.format) {
			got = append(got, fmt.Sprintf("%c@%d", v.verb, v.argIndex))
		}
		if s := strings.Join(got, " "); s != c.verbs {
			t.Errorf("parseFormat(%q) = %q, want %q", c.format, s, c.verbs)
		}
	}
}

func TestLoadErrorOnBadPattern(t *testing.T) {
	_, err := Load("../..", []string{"./does-not-exist/..."})
	var le *LoadError
	if err == nil {
		t.Fatal("expected a load error")
	}
	if !errors.As(err, &le) {
		t.Fatalf("expected *LoadError, got %T: %v", err, err)
	}
}
