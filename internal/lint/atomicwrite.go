package lint

import (
	"go/ast"
)

// atomicwrite — the crash-safety contract behind durable artifacts.
//
// HARDENING.md §7: every artifact, report, corpus entry, and
// checkpoint reaches disk through persist.AtomicWriteFile
// (tmp + fsync + rename), so a crash mid-write can never leave a
// torn file that a later run trusts. A direct os.WriteFile or
// os.Create in production code bypasses that guarantee silently —
// the file appears, the content may be half there.
//
// The persist package itself (suffix internal/persist) is exempt: it
// is the one place the raw primitives are allowed, because it is
// where the atomic protocol is implemented.
var analyzerAtomicWrite = &Analyzer{
	Name: "atomicwrite",
	Doc:  "file creation must route through persist.AtomicWriteFile (tmp+fsync+rename), not raw os.WriteFile/os.Create",
	Fix:  "use persist.AtomicWriteFile (or a writer that flushes into it); raw writes are only legal inside internal/persist",
	Run:  runAtomicWrite,
}

// rawWriteFuncs are the os entry points that create or truncate files
// without the atomic protocol.
var rawWriteFuncs = []string{"WriteFile", "Create"}

func runAtomicWrite(p *Package) []Finding {
	if pathHasSuffix(p.Path, "internal/persist") {
		return nil
	}
	var findings []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range rawWriteFuncs {
				if isPkgCall(p.Info, call, "os", name) {
					findings = append(findings, p.finding(call.Pos(),
						"os."+name+" bypasses the atomic write protocol: a crash mid-write leaves a torn file"))
				}
			}
			return true
		})
	}
	return findings
}
