package lint

import (
	"go/ast"
)

// goroutine — the containment contract: no worker may crash the
// process.
//
// The hardened pipeline's never-crash / never-5xx guarantees hold
// because every stage runs inside a containment region that converts
// panics into structured failures. A bare `go` statement punches
// through all of it: a panic on an uncontained goroutine kills the
// whole process no matter how careful every recover() below it was.
//
// The check accepts a launch when the goroutine's function literal
// lexically carries its own containment — a deferred recover() — or
// when the launch lives in internal/harness, the package that *is*
// the containment layer (its worker pools wrap every unit of work in
// contain()/guard()). Launching a named function (`go f()`) is
// flagged too: the check cannot see into f from here, and the
// containment-of-last-resort belongs at the launch site, where the
// goroutine boundary is.
var analyzerGoroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "goroutine launches outside internal/harness must defer a recover() in the launched literal",
	Fix:  "wrap the body: defer func() { if r := recover(); r != nil { record it } }(), or route the work through the harness worker helpers",
	Run:  runGoroutine,
}

// containmentPkgs are packages whose own job is goroutine
// containment; their launches are the mechanism, not a violation.
var containmentPkgs = []string{"internal/harness"}

func runGoroutine(p *Package) []Finding {
	if pathHasAnySuffix(p.Path, containmentPkgs) {
		return nil
	}
	var findings []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
			if !ok {
				findings = append(findings, p.finding(gs.Pos(),
					"goroutine launches a named function: containment cannot be verified at the launch site"))
				return true
			}
			if !containsDeferredRecover(p.Info, lit.Body) {
				findings = append(findings, p.finding(gs.Pos(),
					"goroutine body has no deferred recover(): a panic here crashes the whole process"))
			}
			return true
		})
	}
	return findings
}
