package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/harness"
)

// testSrc is a small mini-C program with provable strict
// inequalities (the loop index against the array bound).
const testSrc = `
int a[100];
int main(void) {
  int i;
  int s = 0;
  for (i = 0; i < 100; i++) { a[i] = i; }
  for (i = 1; i < 100; i++) { s = s + a[i] - a[i-1]; }
  return s;
}
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends one analyze request and decodes the response body.
func post(t *testing.T, url string, req any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /analyze: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func decode(t *testing.T, data []byte) *Response {
	t.Helper()
	var r Response
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("decoding response %s: %v", data, err)
	}
	return &r
}

// TestAnalyzeAllQueries: one request computing every result set over
// the hardened pipeline.
func TestAnalyzeAllQueries(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := post(t, ts.URL, Request{
		Name:    "demo",
		Source:  testSrc,
		Queries: []string{QueryLT, QueryAlias, QuerySanitize},
	})
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	r := decode(t, body)
	if r.Degraded {
		t.Fatalf("degraded response for a healthy program: %v", r.Failures)
	}
	if len(r.LT) == 0 {
		t.Error("no LT sets returned for a program with provable inequalities")
	}
	for _, name := range []string{"BA", "LT", "BA+LT"} {
		c, ok := r.Alias[name]
		if !ok {
			t.Fatalf("alias counts missing analysis %q (got %v)", name, r.Alias)
		}
		if c.Queries == 0 {
			t.Errorf("analysis %q answered 0 queries", name)
		}
	}
	if r.Sanitize == nil || r.Sanitize.Checks == 0 {
		t.Fatalf("sanitize summary missing or empty: %+v", r.Sanitize)
	}
	if r.Sanitize.Unsafe != 0 {
		t.Errorf("sanitizer flagged %d unsafe accesses in a safe program", r.Sanitize.Unsafe)
	}
}

// TestAnalyzeIR: the textual-IR front door answers like the mini-C
// one.
func TestAnalyzeIR(t *testing.T) {
	p := harness.New(harness.Config{})
	m, err := p.Compile("demo", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{})
	code, body := post(t, ts.URL, Request{Lang: LangIR, Source: m.String(), Queries: []string{QueryLT}})
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	if r := decode(t, body); len(r.LT) == 0 {
		t.Error("no LT sets from IR input")
	}
}

// TestDefaultQuery: no queries means the alias report, nothing else.
func TestDefaultQuery(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := post(t, ts.URL, Request{Source: testSrc})
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	r := decode(t, body)
	if len(r.Alias) == 0 {
		t.Error("default query did not produce alias counts")
	}
	if r.LT != nil || r.Sanitize != nil {
		t.Error("default query produced result sets that were not asked for")
	}
}

// TestBadRequests: malformed requests are client errors, counted and
// answered with 400 — never 5xx, never a hang.
func TestBadRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxSource: 4096})
	cases := []struct {
		name string
		body string
	}{
		{"malformed json", `{`},
		{"empty source", `{"source":""}`},
		{"unknown lang", `{"source":"int main(void){return 0;}","lang":"fortran"}`},
		{"unknown query", `{"source":"int main(void){return 0;}","queries":["points-to"]}`},
		{"unknown envelope field", `{"source":"int main(void){return 0;}","qeuries":["lt"]}`},
		{"bad budget field", `{"source":"int main(void){return 0;}","budget":{"max_step":3}}`},
		{"negative budget", `{"source":"int main(void){return 0;}","budget":{"max_steps":-1}}`},
		{"unparsable program", `{"source":"int main("}`},
		{"oversized source", fmt.Sprintf(`{"source":%q}`, "int x;"+strings.Repeat(" ", 5000))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/analyze", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				data, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want 400; body %s", resp.StatusCode, data)
			}
		})
	}
	if got := s.Snapshot().BadRequest; got != int64(len(cases)) {
		t.Errorf("bad_request counter = %d, want %d", got, len(cases))
	}
}

// TestFaultInjectionDegradesSoundly: with a panic injected into the
// less-than stage of every request, answers stay 200 and sound —
// empty LT sets, zero LT no-alias claims — and the process survives
// repeated poisoned requests.
func TestFaultInjectionDegradesSoundly(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Fault: &harness.FaultConfig{Stage: harness.StageLessThan},
	})
	for i := 0; i < 2; i++ {
		code, body := post(t, ts.URL, Request{Source: testSrc, Queries: []string{QueryLT, QueryAlias}})
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, code, body)
		}
		r := decode(t, body)
		if !r.Degraded {
			t.Fatalf("request %d: fault-injected run not marked degraded", i)
		}
		if len(r.Failures) == 0 {
			t.Errorf("request %d: degraded response carries no failure detail", i)
		}
		if len(r.LT) != 0 {
			t.Errorf("request %d: degraded run still claims LT sets: %v", i, r.LT)
		}
		if c := r.Alias["LT"]; c.NoAlias != 0 {
			t.Errorf("request %d: degraded LT analysis claims %d no-alias answers", i, c.NoAlias)
		}
	}
}

// TestRequestBudgetDegrades: a starvation budget yields a sound
// degraded 200, not an error and not a hang.
func TestRequestBudgetDegrades(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := post(t, ts.URL, Request{
		Source:  testSrc,
		Queries: []string{QueryLT},
		Budget:  &budget.Spec{MaxSteps: 1},
	})
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	r := decode(t, body)
	if !r.Degraded {
		t.Fatal("starved run not marked degraded")
	}
	if len(r.LT) != 0 {
		t.Errorf("starved run still claims LT sets: %v", r.LT)
	}
}

// TestPanicQuarantine: a panic that escapes the harness (injected
// via the pre-analysis hook) is contained at the serve layer: the
// client gets a sound degraded 200 and the next request is served
// normally.
func TestPanicQuarantine(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	fire := true
	s.preAnalyze = func() {
		if fire {
			fire = false
			panic("escaped the pipeline")
		}
	}
	code, body := post(t, ts.URL, Request{Source: testSrc})
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	r := decode(t, body)
	if !r.Degraded || len(r.Failures) == 0 {
		t.Fatalf("quarantined request not marked degraded: %+v", r)
	}
	if len(r.Alias) != 0 {
		t.Errorf("quarantined response still carries results: %+v", r.Alias)
	}
	if got := s.Snapshot().Quarantined; got != 1 {
		t.Errorf("quarantined counter = %d, want 1", got)
	}
	// The process is fine: the next request is exact.
	code, body = post(t, ts.URL, Request{Source: testSrc})
	if code != http.StatusOK {
		t.Fatalf("post-quarantine status %d, body %s", code, body)
	}
	if r := decode(t, body); r.Degraded {
		t.Error("request after a quarantined one degraded too")
	}
}

// TestShedWith429: when the only slot is taken and queueing is
// disabled, the second request is shed with 429 + Retry-After.
func TestShedWith429(t *testing.T) {
	s, ts := newTestServer(t, Config{InFlight: 1, Queue: -1, RetryAfter: 2 * time.Second})
	block := make(chan struct{})
	s.preAnalyze = func() { <-block }

	first := make(chan int, 1)
	go func() {
		code, _ := post(t, ts.URL, Request{Source: testSrc})
		first <- code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.gate.InFlight() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.gate.InFlight() != 1 {
		t.Fatal("first request never occupied the slot")
	}

	resp, err := http.Post(ts.URL+"/analyze", "application/json",
		strings.NewReader(`{"source":"int main(void){return 0;}"}`))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body %s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	var er ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil || er.RetryAfterMS != 2000 {
		t.Errorf("shed body = %s (err %v), want retry_after_ms 2000", data, err)
	}

	close(block)
	select {
	case code := <-first:
		if code != http.StatusOK {
			t.Fatalf("blocked request finished with %d", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("blocked request never finished")
	}
	if got := s.Snapshot().Shed; got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
}

// TestBurstAllAnsweredSoundly is the package-level acceptance check:
// in-flight limit 2, a 50-request concurrent burst, fault injection
// on — every request gets 200 (sound, possibly degraded) or 429,
// nothing hangs, nothing 5xxs, the accounting adds up.
func TestBurstAllAnsweredSoundly(t *testing.T) {
	s, ts := newTestServer(t, Config{
		InFlight:  2,
		Queue:     2,
		QueueWait: 50 * time.Millisecond,
		Fault:     &harness.FaultConfig{Stage: harness.StageLessThan, Func: "main"},
	})
	const n = 50
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = post(t, ts.URL, Request{Source: testSrc, Queries: []string{QueryLT}})
		}(i)
	}
	wg.Wait()
	var ok200, shed429 int
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			shed429++
		default:
			t.Errorf("request %d: status %d, want 200 or 429", i, c)
		}
	}
	if ok200+shed429 != n {
		t.Fatalf("answered %d+%d of %d", ok200, shed429, n)
	}
	if ok200 == 0 {
		t.Fatal("burst produced no successful answers at all")
	}
	snap := s.Snapshot()
	if snap.OK+snap.Degraded+snap.Shed != int64(n) {
		t.Errorf("stats ok=%d degraded=%d shed=%d do not account for %d requests",
			snap.OK, snap.Degraded, snap.Shed, n)
	}
	t.Logf("burst: %d served, %d shed", ok200, shed429)
}

// TestDrain: canceling the serve context stops the listener, lets
// the in-flight request finish with its full 200, flushes, and
// returns nil.
func TestDrain(t *testing.T) {
	s := New(Config{InFlight: 2, Cache: harness.NewCache()})
	block := make(chan struct{})
	s.preAnalyze = func() { <-block }

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln, 10*time.Second) }()
	url := "http://" + ln.Addr().String()

	inFlight := make(chan int, 1)
	go func() {
		code, _ := post(t, url, Request{Source: testSrc})
		inFlight <- code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.gate.InFlight() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.gate.InFlight() != 1 {
		t.Fatal("request never became in-flight")
	}

	cancel()
	time.Sleep(50 * time.Millisecond) // let shutdown close the listener
	close(block)

	select {
	case code := <-inFlight:
		if code != http.StatusOK {
			t.Fatalf("in-flight request finished with %d during drain", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request abandoned by drain")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil after clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve never returned after drain")
	}
	if !s.Snapshot().Draining {
		t.Error("stats do not record the drain")
	}
	// The door is closed: new connections are refused, not hung.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Error("listener still accepting after drain")
	}
}

// TestWarmCacheAcrossRequests: the second identical request is
// served from the shared memo cache — hits go up, misses do not.
func TestWarmCacheAcrossRequests(t *testing.T) {
	cache := harness.NewCache()
	s, ts := newTestServer(t, Config{Cache: cache})
	if code, body := post(t, ts.URL, Request{Source: testSrc, Queries: []string{QueryLT}}); code != 200 {
		t.Fatalf("cold request: %d %s", code, body)
	}
	cold := s.Snapshot().Cache
	if cold == nil {
		t.Fatal("no cache stats on a cached server")
	}
	if code, body := post(t, ts.URL, Request{Source: testSrc, Queries: []string{QueryLT}}); code != 200 {
		t.Fatalf("warm request: %d %s", code, body)
	}
	warm := s.Snapshot().Cache
	if warm.Hits <= cold.Hits {
		t.Errorf("warm hits = %d, want > %d", warm.Hits, cold.Hits)
	}
	if warm.Misses != cold.Misses {
		t.Errorf("warm misses = %d, want unchanged %d", warm.Misses, cold.Misses)
	}
	if warm.HitRate <= cold.HitRate {
		t.Errorf("hit rate did not improve: %f -> %f", cold.HitRate, warm.HitRate)
	}
}

// TestHealthzAndStats: observability endpoints answer 200 with the
// advertised fields.
func TestHealthzAndStats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL, Request{Source: testSrc})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || hz["status"] != "ok" {
		t.Fatalf("healthz: %d %v", resp.StatusCode, hz)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Requests != 1 || snap.OK != 1 {
		t.Errorf("stats after one request: %+v", snap)
	}
}
