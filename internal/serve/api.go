// Package serve fronts the hardened analysis pipeline with a
// long-running HTTP/JSON service: admission control with bounded
// queueing and load shedding, per-request budgets with sound
// degradation, per-request panic containment, a shared warm memo
// cache, and graceful drain. The package holds everything except the
// process scaffolding (flags, signals), which lives in cmd/sraad.
//
// Degradation matrix. The server never answers wrongly and never
// leaves a connection hanging; what it does instead depends on where
// the pressure is:
//
//	overload (queue full)        → 429 + Retry-After   (shed, not served)
//	budget exhausted mid-solve   → 200, degraded=true  (empty LT sets, ⊤ ranges, MayAlias)
//	stage panic (poisoned input) → 200, degraded=true  (function quarantined, rest answered)
//	panic escaping the harness   → 200, degraded=true  (empty results, request quarantined)
//	malformed request/program    → 400                 (client error, nothing to degrade)
//	drain in progress            → listener closed     (clients retry against a peer)
//
// Every 200 body is sound: a result the batch pipeline could also
// have produced for some budget.
package serve

import (
	"fmt"

	"repro/internal/budget"
)

// Query names a result set the client wants in the response.
const (
	QueryLT       = "lt"       // per-variable less-than sets
	QueryAlias    = "alias"    // aa-eval style alias counts (BA, LT, BA+LT)
	QuerySanitize = "sanitize" // memory-safety verdict summary
)

// Lang values for Request.Lang.
const (
	LangMiniC = "minic"
	LangIR    = "ir"
)

// Request is one analysis job. Lang defaults to mini-C and Queries
// to {alias}.
type Request struct {
	// Name labels the program in the response and server logs.
	Name string `json:"name,omitempty"`
	// Lang is "minic" (default) or "ir".
	Lang string `json:"lang,omitempty"`
	// Source is the program text.
	Source string `json:"source"`
	// Queries selects the result sets to compute; defaults to
	// {"alias"}.
	Queries []string `json:"queries,omitempty"`
	// Interproc enables the inter-procedural parameter facts.
	Interproc bool `json:"interproc,omitempty"`
	// Steens adds the Steensgaard-style unification analysis (ST) to
	// the "alias" query's rows.
	Steens bool `json:"steens,omitempty"`
	// Budget caps this request's solver work. It is clamped to the
	// server's ceiling; absent means "server default".
	Budget *budget.Spec `json:"budget,omitempty"`
}

// Validate checks the request shape against the server's source-size
// cap. It does not parse the program — that happens inside the
// hardened pipeline.
func (r *Request) Validate(maxSource int) error {
	switch r.Lang {
	case "", LangMiniC, LangIR:
	default:
		return fmt.Errorf("unknown lang %q (want %q or %q)", r.Lang, LangMiniC, LangIR)
	}
	if r.Source == "" {
		return fmt.Errorf("empty source")
	}
	if maxSource > 0 && len(r.Source) > maxSource {
		return fmt.Errorf("source is %d bytes, cap is %d", len(r.Source), maxSource)
	}
	for _, q := range r.Queries {
		switch q {
		case QueryLT, QueryAlias, QuerySanitize:
		default:
			return fmt.Errorf("unknown query %q (want %q, %q or %q)", q, QueryLT, QueryAlias, QuerySanitize)
		}
	}
	if r.Budget != nil {
		if err := r.Budget.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// queries resolves the effective query set.
func (r *Request) queries() []string {
	if len(r.Queries) == 0 {
		return []string{QueryAlias}
	}
	return r.Queries
}

// AliasCounts is one analysis row of the aa-eval protocol.
type AliasCounts struct {
	Queries int `json:"queries"`
	NoAlias int `json:"no_alias"`
	May     int `json:"may_alias"`
	Must    int `json:"must_alias"`
}

// SanitizeCounts summarizes the memory-safety verdicts.
type SanitizeCounts struct {
	Checks   int `json:"checks"`
	Safe     int `json:"safe"`
	Unsafe   int `json:"unsafe"`
	Unknown  int `json:"unknown"`
	Failures int `json:"failures,omitempty"`
	Degraded int `json:"degraded,omitempty"`
}

// Response is the answer to one admitted, well-formed request. It is
// always sound; Degraded says whether any part of it is conservative
// rather than exact.
type Response struct {
	Name string `json:"name"`
	// Degraded is true when any stage was contained or budgeted out:
	// the answers below are still sound but may be weaker than an
	// unlimited run's (empty LT sets, MayAlias, unknown verdicts).
	Degraded bool `json:"degraded"`
	// Failures lists the contained stage failures, one line each
	// (stacks stay server-side).
	Failures []string `json:"failures,omitempty"`
	// LT maps "func.var" to the sorted members of LT(var), non-empty
	// sets only. Present when "lt" was queried.
	LT map[string][]string `json:"lt,omitempty"`
	// Alias holds aa-eval counts per analysis name. Present when
	// "alias" was queried.
	Alias map[string]AliasCounts `json:"alias,omitempty"`
	// Sanitize summarizes the safety verdicts. Present when
	// "sanitize" was queried.
	Sanitize *SanitizeCounts `json:"sanitize,omitempty"`
	// ElapsedMS is the server-side wall clock of the analysis.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// ErrorResponse is the body of a non-200 answer.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterMS accompanies 429: the client's backoff hint.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}
