package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMemWatermarkDisabledNeverTrips(t *testing.T) {
	var m *MemWatermark
	if m.Over() {
		t.Fatal("nil watermark tripped")
	}
	m = NewMemWatermark(0)
	m.setHeapForTest(1 << 40)
	if m.Over() {
		t.Fatal("disabled watermark tripped")
	}
}

func TestMemWatermarkTripsAndRecovers(t *testing.T) {
	m := NewMemWatermark(1 << 20)
	m.setHeapForTest(2 << 20)
	if !m.Over() {
		t.Fatal("heap past watermark did not trip")
	}
	if !m.Over() {
		t.Fatal("trip is not sticky while heap stays high")
	}
	if m.Sheds() != 2 {
		t.Fatalf("sheds = %d, want 2", m.Sheds())
	}
	m.setHeapForTest(1 << 19)
	if m.Over() {
		t.Fatal("drained heap still trips")
	}
}

// TestServerShedsOnMemoryWatermark: a server past its heap watermark
// answers 429 + Retry-After — the same contract as slot exhaustion,
// so clients back off identically — and /stats counts it.
func TestServerShedsOnMemoryWatermark(t *testing.T) {
	s := New(Config{MemLimit: 1 << 20})
	s.mem.setHeapForTest(10 << 20)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/analyze", "application/json",
		strings.NewReader(`{"name":"x","lang":"ir","source":"define f() { ret }"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("memory shed without Retry-After hint")
	}
	if snap := s.Snapshot(); snap.MemSheds != 1 || snap.Shed != 1 {
		t.Fatalf("snapshot sheds = mem %d / total %d, want 1/1", snap.MemSheds, snap.Shed)
	}

	// Heap drains → admission resumes; the request is served (or
	// rejected on its merits), never shed.
	s.mem.setHeapForTest(1 << 10)
	resp, err = http.Post(ts.URL+"/analyze", "application/json",
		strings.NewReader(`{"name":"x","lang":"ir","source":"define f() { ret }"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		t.Fatal("request shed after heap drained")
	}
}
