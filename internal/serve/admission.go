package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrShed is returned by Gate.Acquire when the request cannot be
// admitted: the in-flight limit is reached and the waiting queue is
// full (or the caller's queue wait expired). Handlers translate it
// to 429 + Retry-After.
var ErrShed = errors.New("overloaded: request shed")

// Gate is the admission controller: a hard cap on concurrently
// served requests plus a bounded waiting room in front of it. Under
// overload it fails fast — a full queue sheds immediately, and a
// queued request waits at most its configured patience — so latency
// stays bounded and the process never accumulates unbounded work.
type Gate struct {
	slots    chan struct{} // in-flight tokens, capacity = limit
	maxQueue int64
	wait     time.Duration

	queued   atomic.Int64
	admitted atomic.Int64
	shed     atomic.Int64
}

// NewGate builds a gate admitting at most inflight concurrent
// requests with at most queue waiters; a waiter is shed after wait
// (0 means "do not wait at all": no slot now → shed, even when the
// queue has room).
func NewGate(inflight, queue int, wait time.Duration) *Gate {
	if inflight < 1 {
		inflight = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Gate{
		slots:    make(chan struct{}, inflight),
		maxQueue: int64(queue),
		wait:     wait,
	}
}

// Acquire claims an in-flight slot, queueing within the gate's
// bounds. It returns the release function on admission, ErrShed when
// load must be shed, or ctx.Err() when the caller gave up first. The
// release function must be called exactly once.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a free slot, no queueing.
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return g.release, nil
	default:
	}
	// Join the bounded queue, or shed on the spot.
	if g.queued.Add(1) > g.maxQueue || g.wait <= 0 {
		g.queued.Add(-1)
		g.shed.Add(1)
		return nil, ErrShed
	}
	defer g.queued.Add(-1)
	timer := time.NewTimer(g.wait)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return g.release, nil
	case <-timer.C:
		g.shed.Add(1)
		return nil, ErrShed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (g *Gate) release() { <-g.slots }

// InFlight is the number of requests currently holding a slot.
func (g *Gate) InFlight() int { return len(g.slots) }

// Queued is the number of requests currently waiting for a slot.
func (g *Gate) Queued() int { return int(g.queued.Load()) }

// Admitted and Shed are cumulative counters since construction.
func (g *Gate) Admitted() int64 { return g.admitted.Load() }
func (g *Gate) Shed() int64     { return g.shed.Load() }
