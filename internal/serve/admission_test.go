package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestGateFastPath: free slots admit immediately and release returns
// them.
func TestGateFastPath(t *testing.T) {
	g := NewGate(2, 0, 0)
	r1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := g.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	r1()
	r2()
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight after release = %d, want 0", got)
	}
	if g.Admitted() != 2 || g.Shed() != 0 {
		t.Fatalf("admitted=%d shed=%d, want 2/0", g.Admitted(), g.Shed())
	}
}

// TestGateShedsWhenFull: no slot and no queue room → immediate
// ErrShed, counted.
func TestGateShedsWhenFull(t *testing.T) {
	g := NewGate(1, 0, time.Second)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("second acquire: %v, want ErrShed", err)
	}
	if g.Shed() != 1 {
		t.Fatalf("shed = %d, want 1", g.Shed())
	}
}

// TestGateQueueAdmitsOnRelease: a queued waiter gets the slot the
// moment it frees up.
func TestGateQueueAdmitsOnRelease(t *testing.T) {
	g := NewGate(1, 1, 5*time.Second)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r, err := g.Acquire(context.Background())
		if err == nil {
			r()
		}
		got <- err
	}()
	// Wait for the goroutine to join the queue, then release.
	deadline := time.Now().Add(2 * time.Second)
	for g.Queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g.Queued() != 1 {
		t.Fatal("waiter never queued")
	}
	release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued acquire: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued waiter never admitted")
	}
}

// TestGateQueueWaitExpires: a waiter is shed once its patience runs
// out, keeping worst-case latency bounded.
func TestGateQueueWaitExpires(t *testing.T) {
	g := NewGate(1, 4, 30*time.Millisecond)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("acquire: %v, want ErrShed", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("shed took %s, want ~30ms", d)
	}
	if g.Queued() != 0 {
		t.Fatalf("queued = %d after shed, want 0", g.Queued())
	}
}

// TestGateQueueOverflowSheds: the queue itself is bounded; waiter
// N+1 is shed immediately while the queue is full.
func TestGateQueueOverflowSheds(t *testing.T) {
	g := NewGate(1, 1, 5*time.Second)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		r, err := g.Acquire(context.Background())
		if err == nil {
			defer r()
		}
		queued <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for g.Queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Queue full: this one sheds on the spot.
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("overflow acquire: %v, want ErrShed", err)
	}
	release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
}

// TestGateCtxCancelWhileQueued: a caller that gives up gets its
// context error, not ErrShed, and leaves the queue.
func TestGateCtxCancelWhileQueued(t *testing.T) {
	g := NewGate(1, 2, 5*time.Second)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx)
		got <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for g.Queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("acquire after cancel: %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled waiter never returned")
	}
	if g.Queued() != 0 {
		t.Fatalf("queued = %d after cancel, want 0", g.Queued())
	}
}
