package serve

import (
	"sync/atomic"
	"time"

	"repro/internal/harness"
)

// stats aggregates the server's lifetime counters. All fields are
// monotonic atomics; the snapshot is advisory (counters are read
// independently), which is fine for an observability endpoint.
type stats struct {
	start       time.Time
	requests    atomic.Int64 // analyze requests received
	ok          atomic.Int64 // 200 with degraded=false
	degraded    atomic.Int64 // 200 with degraded=true
	badRequest  atomic.Int64 // 400
	shed        atomic.Int64 // 429
	canceled    atomic.Int64 // client went away before an answer
	quarantined atomic.Int64 // panics contained at the serve layer
	draining    atomic.Bool
}

// Snapshot is the JSON body of /stats (and the tail of /healthz).
type Snapshot struct {
	UptimeSec float64 `json:"uptime_sec"`
	Draining  bool    `json:"draining"`

	Requests    int64 `json:"requests"`
	OK          int64 `json:"ok"`
	Degraded    int64 `json:"degraded"`
	BadRequest  int64 `json:"bad_request"`
	Shed        int64 `json:"shed"`
	Canceled    int64 `json:"canceled"`
	Quarantined int64 `json:"quarantined"`

	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`

	// MemSheds counts admissions refused by the memory high-watermark
	// (shed with 429 before the OOM killer gets a vote); MemLimit is
	// the configured watermark in bytes, 0 when disabled.
	MemSheds int64  `json:"mem_sheds"`
	MemLimit uint64 `json:"mem_limit,omitempty"`

	// Cache describes the shared memo cache; absent when the server
	// runs uncached.
	Cache *CacheSnapshot `json:"cache,omitempty"`
}

// CacheSnapshot is the serving view of harness.CacheStats.
type CacheSnapshot struct {
	Entries  int     `json:"entries"`
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRate  float64 `json:"hit_rate"`
	DiskHits int64   `json:"disk_hits,omitempty"`
	// Store mirrors the durable store's counters when the cache is
	// persistent: quarantines, rejected records, and disk errors are
	// the early-warning signals a degrading store gives off.
	StoreLoaded      int  `json:"store_loaded,omitempty"`
	StoreQuarantined int  `json:"store_quarantined,omitempty"`
	StorePuts        int  `json:"store_puts,omitempty"`
	StorePutErrors   int  `json:"store_put_errors,omitempty"`
	StoreBadRecords  int  `json:"store_bad_records,omitempty"`
	StoreDiskErrors  int  `json:"store_disk_errors,omitempty"`
	Persistent       bool `json:"persistent"`
	// Backend carries a non-Store backing tier's stats line (e.g. a
	// remote store client's counters).
	Backend string `json:"backend,omitempty"`
}

func cacheSnapshot(c *harness.Cache) *CacheSnapshot {
	if c == nil {
		return nil
	}
	st := c.Stats()
	return &CacheSnapshot{
		Entries:          st.Entries,
		Hits:             st.Hits,
		Misses:           st.Misses,
		HitRate:          st.HitRate(),
		DiskHits:         st.DiskHits,
		StoreLoaded:      st.Store.Loaded,
		StoreQuarantined: st.Store.Quarantined,
		StorePuts:        st.Store.Puts,
		StorePutErrors:   st.Store.PutErrors,
		StoreBadRecords:  st.Store.BadRecords,
		StoreDiskErrors:  st.Store.DiskErrors,
		Persistent:       st.Persistent,
		Backend:          st.Backend,
	}
}
