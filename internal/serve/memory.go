package serve

import (
	"runtime"
	"sync"
	"time"
)

// MemWatermark sheds load before the OOM killer does it for us. When
// the Go heap crosses the configured high watermark, new requests are
// refused with the same 429 + Retry-After contract the admission gate
// uses — in-flight work finishes, the heap drains, and admission
// resumes. A limit of 0 disables the check entirely.
//
// runtime.ReadMemStats stops the world, so the reading is cached and
// refreshed at most every memProbeInterval — the watermark is a
// coarse tripwire, not an accounting system, and a ~100ms-stale heap
// size is plenty for "stop admitting before we die".
type MemWatermark struct {
	limit uint64 // bytes; 0 = disabled

	mu       sync.Mutex
	lastRead time.Time
	heap     uint64
	sheds    int64
}

// memProbeInterval is the maximum staleness of the cached heap size.
const memProbeInterval = 100 * time.Millisecond

// NewMemWatermark builds a watermark tripping at limit bytes of live
// heap; limit 0 never trips.
func NewMemWatermark(limit uint64) *MemWatermark {
	return &MemWatermark{limit: limit}
}

// Over reports whether the heap is past the watermark, refreshing the
// cached reading when it is stale. The first call after a trip also
// hints the runtime to give memory back (GC), so a transient spike
// recovers without operator action.
func (m *MemWatermark) Over() bool {
	if m == nil || m.limit == 0 {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if time.Since(m.lastRead) >= memProbeInterval {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		m.heap = ms.HeapAlloc
		m.lastRead = time.Now()
	}
	if m.heap <= m.limit {
		return false
	}
	m.sheds++
	if m.sheds == 1 || m.sheds%1000 == 0 {
		// Nudge the collector: the watermark usually trips on garbage
		// from completed requests, which a cycle reclaims.
		//lint:ignore goroutine runtime.GC has no panic path, and blocking the admission check on a full collection would turn the shed into a stall
		go runtime.GC()
	}
	return true
}

// Limit returns the configured watermark in bytes (0 = disabled).
func (m *MemWatermark) Limit() uint64 {
	if m == nil {
		return 0
	}
	return m.limit
}

// Sheds returns how many admissions the watermark refused.
func (m *MemWatermark) Sheds() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sheds
}

// setHeapForTest pins the cached heap reading far enough in the
// future that Over will not refresh it — tests drive the watermark
// without allocating gigabytes.
func (m *MemWatermark) setHeapForTest(heap uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.heap = heap
	m.lastRead = time.Now().Add(time.Hour)
}
