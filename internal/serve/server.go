package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"runtime"
	"time"

	"repro/internal/alias"
	"repro/internal/budget"
	"repro/internal/harness"
	"repro/internal/ir"
)

// Config sizes the server. The zero value is usable: New fills every
// unset knob with a production-shaped default.
type Config struct {
	// InFlight caps concurrently analyzed requests; default NumCPU.
	InFlight int
	// Queue bounds the admission waiting room; default 4×InFlight,
	// negative disables queueing entirely (no slot now → shed).
	Queue int
	// QueueWait is how long an admitted-but-queued request may wait
	// for a slot before being shed; default 1s.
	QueueWait time.Duration
	// DefaultBudget applies to requests that carry no budget of their
	// own; default 5s / 2M steps.
	DefaultBudget budget.Spec
	// MaxBudget is the ceiling client budgets are clamped to. Its
	// timeout also backstops requests asking for "unlimited": no
	// request runs longer, so no connection hangs. Default 30s / 20M
	// steps.
	MaxBudget budget.Spec
	// MaxSource caps the request source size in bytes; default 1MiB.
	MaxSource int
	// Jobs is the per-request function-level worker count; default 1
	// (the server parallelizes across requests, not within them).
	Jobs int
	// Cache, when non-nil, is the warm memo cache shared by every
	// request (and, via internal/persist, across restarts).
	Cache *harness.Cache
	// RetryAfter is the backoff hint attached to 429s; default 1s.
	RetryAfter time.Duration
	// Fault forwards a deliberate failure into every request's
	// pipeline — the containment proof for tests; never set it in
	// production.
	Fault *harness.FaultConfig
	// MemLimit is the heap high-watermark in bytes: past it, new
	// requests are shed with 429 until in-flight work drains the heap.
	// 0 disables the check (the default).
	MemLimit uint64
}

func (c Config) filled() Config {
	if c.InFlight < 1 {
		c.InFlight = runtime.NumCPU()
	}
	if c.Queue == 0 {
		c.Queue = 4 * c.InFlight
	}
	if c.QueueWait == 0 {
		c.QueueWait = time.Second
	}
	if !c.DefaultBudget.Limited() {
		c.DefaultBudget = budget.Spec{Timeout: 5 * time.Second, MaxSteps: 2_000_000}
	}
	if !c.MaxBudget.Limited() {
		c.MaxBudget = budget.Spec{Timeout: 30 * time.Second, MaxSteps: 20_000_000}
	}
	if c.MaxSource == 0 {
		c.MaxSource = 1 << 20
	}
	if c.Jobs < 1 {
		c.Jobs = 1
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server answers analysis requests over HTTP. Create with New, mount
// Handler (or run Serve for the managed listener + drain lifecycle).
type Server struct {
	cfg  Config
	gate *Gate
	mem  *MemWatermark
	st   stats
	// preAnalyze, when non-nil, runs on every admitted request before
	// its pipeline starts. Tests use it to hold slots occupied.
	preAnalyze func()
}

// New builds a Server from cfg (zero fields take defaults).
func New(cfg Config) *Server {
	cfg = cfg.filled()
	return &Server{
		cfg:  cfg,
		gate: NewGate(cfg.InFlight, cfg.Queue, cfg.QueueWait),
		mem:  NewMemWatermark(cfg.MemLimit),
		st:   stats{start: time.Now()},
	}
}

// Handler returns the HTTP API: POST /analyze, GET /healthz, GET
// /stats.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /analyze", s.handleAnalyze)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// Snapshot returns the current counters; the daemon prints it as its
// shutdown epilogue and /stats serves it live.
func (s *Server) Snapshot() Snapshot {
	return Snapshot{
		UptimeSec:   time.Since(s.st.start).Seconds(),
		Draining:    s.st.draining.Load(),
		Requests:    s.st.requests.Load(),
		OK:          s.st.ok.Load(),
		Degraded:    s.st.degraded.Load(),
		BadRequest:  s.st.badRequest.Load(),
		Shed:        s.st.shed.Load(),
		Canceled:    s.st.canceled.Load(),
		Quarantined: s.st.quarantined.Load(),
		InFlight:    s.gate.InFlight(),
		Queued:      s.gate.Queued(),
		MemSheds:    s.mem.Sheds(),
		MemLimit:    s.mem.Limit(),
		Cache:       cacheSnapshot(s.cfg.Cache),
	}
}

// writeJSON encodes v fully before touching the connection, so a
// marshalling problem can still change the status code and a partial
// body is never sent.
func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		code = http.StatusInternalServerError
		body = []byte(`{"error":"response encoding failed"}`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.st.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    status,
		"in_flight": s.gate.InFlight(),
		"queued":    s.gate.Queued(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// shed429 writes the standard shed response: 429 with both the
// Retry-After header and the machine-readable hint in the body.
func (s *Server) shed429(w http.ResponseWriter, msg string) {
	secs := int(math.Ceil(s.cfg.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprint(secs))
	writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
		Error:        msg,
		RetryAfterMS: s.cfg.RetryAfter.Milliseconds(),
	})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.st.requests.Add(1)

	// Decode under a byte cap so an oversized body is rejected while
	// streaming, not after buffering it all.
	r.Body = http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxSource)+64*1024)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		s.st.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "request body: " + err.Error()})
		return
	}
	if err := req.Validate(s.cfg.MaxSource); err != nil {
		s.st.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}

	// Memory backpressure first: past the heap high-watermark even an
	// open slot must not admit more work — shedding here is what keeps
	// the OOM killer from doing it less politely.
	if s.mem.Over() {
		s.st.shed.Add(1)
		s.shed429(w, "overloaded: memory high-watermark reached, retry later")
		return
	}

	release, err := s.gate.Acquire(r.Context())
	switch {
	case errors.Is(err, ErrShed):
		s.st.shed.Add(1)
		s.shed429(w, "overloaded: request shed, retry later")
		return
	case err != nil: // client gave up while queued; nobody is listening
		s.st.canceled.Add(1)
		return
	}
	defer release()

	resp, badReq := s.analyze(r.Context(), &req)
	if badReq != nil {
		s.st.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: badReq.Error()})
		return
	}
	if resp.Degraded {
		s.st.degraded.Add(1)
	} else {
		s.st.ok.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxFailureLines caps the failure detail shipped to clients; the
// full report stays server-side.
const maxFailureLines = 20

// analyze runs one admitted request through the hardened pipeline.
// A non-nil badReq means the program itself was rejected (parse or
// lower failure) — a client error. Everything else is contained: a
// panic that somehow escapes the harness is recovered here and
// degrades the response to the sound empty answer, so one poisoned
// request can never take the process down.
func (s *Server) analyze(ctx context.Context, req *Request) (resp *Response, badReq error) {
	start := time.Now()
	name := req.Name
	if name == "" {
		name = "request"
	}
	defer func() {
		if r := recover(); r != nil {
			s.st.quarantined.Add(1)
			resp = &Response{
				Name:     name,
				Degraded: true,
				Failures: []string{fmt.Sprintf("request quarantined: panic escaped containment: %v", r)},
			}
			badReq = nil
		}
		if resp != nil {
			resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
		}
	}()

	if s.preAnalyze != nil {
		s.preAnalyze()
	}

	spec := s.cfg.DefaultBudget
	if req.Budget != nil {
		spec = *req.Budget
	}
	spec = spec.Clamp(s.cfg.MaxBudget)

	p := harness.NewCtx(ctx, harness.Config{
		Timeout:         spec.Timeout,
		MaxSteps:        spec.MaxSteps,
		Interprocedural: req.Interproc,
		WithST:          req.Steens,
		Jobs:            s.cfg.Jobs,
		Cache:           s.cfg.Cache,
		CacheBudgeted:   true,
		Fault:           s.cfg.Fault,
	})

	var m *ir.Module
	var err error
	if req.Lang == LangIR {
		m, err = p.ParseIR(req.Source)
	} else {
		m, err = p.Compile(name, req.Source)
	}
	if err != nil {
		return nil, fmt.Errorf("program rejected: %w", err)
	}

	res, _ := p.Analyze(m) // non-strict: the error is always nil

	resp = &Response{Name: name}
	for _, q := range req.queries() {
		switch q {
		case QueryLT:
			resp.LT = ltSets(res)
		case QueryAlias:
			resp.Alias = aliasCounts(m, res)
		case QuerySanitize:
			sum := res.Sanitize().Summarize()
			resp.Sanitize = &SanitizeCounts{
				Checks:   sum.Checks,
				Safe:     sum.Safe,
				Unsafe:   sum.Unsafe,
				Unknown:  sum.Unknown,
				Failures: sum.Failures,
				Degraded: sum.Degraded,
			}
		}
	}

	if rep := p.Report(); !rep.Ok() {
		resp.Degraded = true
		for i, f := range rep.Failures {
			if i == maxFailureLines {
				resp.Failures = append(resp.Failures,
					fmt.Sprintf("... %d more", len(rep.Failures)-maxFailureLines))
				break
			}
			resp.Failures = append(resp.Failures, f.Error())
		}
	}
	return resp, nil
}

// ltSets flattens the non-empty LT sets into the wire map.
func ltSets(res *harness.Result) map[string][]string {
	out := map[string][]string{}
	for _, f := range res.Module.Funcs {
		for _, v := range res.LT.VarsOf(f) {
			set := res.LT.LT(v)
			if len(set) == 0 {
				continue
			}
			refs := make([]string, len(set))
			for i, w := range set {
				refs[i] = w.Ref()
			}
			out[f.FName+"."+v.Ref()] = refs
		}
	}
	return out
}

// aliasCounts runs the aa-eval protocol under the harness's
// per-function containment and flattens the counts.
func aliasCounts(m *ir.Module, res *harness.Result) map[string]AliasCounts {
	ba := alias.NewBasic(m)
	lt := alias.NewSRAA(res.LT)
	analyses := []alias.Analysis{ba, lt, alias.NewChain(ba, lt)}
	if res.ST != nil {
		analyses = append(analyses, res.ST)
	}
	rep := res.Evaluate(analyses...)
	out := map[string]AliasCounts{}
	for name, c := range rep.PerAnalysis {
		out[name] = AliasCounts{Queries: c.Queries, NoAlias: c.No, May: c.May, Must: c.Must}
	}
	return out
}

// Serve runs the server on ln until ctx is canceled, then drains:
// the listener closes (new connections are refused — clients retry),
// in-flight requests finish within drainTimeout, the memo cache is
// flushed to its store, and Serve returns nil on a clean drain. A
// drain that overruns its deadline returns the shutdown error with
// whatever requests were abandoned still counted in the stats.
func (s *Server) Serve(ctx context.Context, ln net.Listener, drainTimeout time.Duration) error {
	if drainTimeout <= 0 {
		drainTimeout = 10 * time.Second
	}
	srv := &http.Server{
		Handler: s.Handler(),
		// Slow-loris protection: a connection that never finishes its
		// headers is cut, another way "never a hung connection" holds.
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		// Containment: net/http recovers handler panics itself, but a
		// panic in the accept loop's own machinery would otherwise
		// take down the daemon from this goroutine. It surfaces as a
		// listener error and flows into the normal drain path.
		defer func() {
			if r := recover(); r != nil {
				errc <- fmt.Errorf("serve: accept loop panicked: %v", r)
			}
		}()
		errc <- srv.Serve(ln)
	}()

	select {
	case err := <-errc:
		// The listener itself failed; nothing to drain.
		return err
	case <-ctx.Done():
	}

	s.st.draining.Store(true)
	shCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	err := srv.Shutdown(shCtx) // stops accepting, waits for in-flight
	if s.cfg.Cache != nil {
		s.cfg.Cache.Flush()
	}
	if err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return nil
}
