// Package cfg provides control-flow-graph analyses over the IR defined
// in internal/ir: postorder numberings, dominator trees, dominance
// frontiers, liveness, and natural-loop detection. All analyses are
// per-function and are recomputed from scratch; transformation passes
// invalidate them by construction.
package cfg

import (
	"repro/internal/ir"
)

// PostOrder returns the blocks of f in postorder of a depth-first
// search from the entry block. Unreachable blocks are omitted.
func PostOrder(f *ir.Func) []*ir.Block {
	var order []*ir.Block
	seen := make([]bool, len(f.Blocks))
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		seen[b.Index] = true
		for _, s := range b.Succs() {
			if !seen[s.Index] {
				walk(s)
			}
		}
		order = append(order, b)
	}
	if entry := f.Entry(); entry != nil {
		walk(entry)
	}
	return order
}

// ReversePostOrder returns the blocks of f in reverse postorder, the
// canonical iteration order for forward dataflow analyses.
func ReversePostOrder(f *ir.Func) []*ir.Block {
	po := PostOrder(f)
	for i, j := 0, len(po)-1; i < j; i, j = i+1, j-1 {
		po[i], po[j] = po[j], po[i]
	}
	return po
}

// DomTree is the dominator tree of a function. The entry block
// dominates every reachable block; unreachable blocks have no entry in
// the tree and report no dominance relations.
type DomTree struct {
	fn *ir.Func
	// idom[b.Index] is the immediate dominator of b; nil for the
	// entry block and for unreachable blocks.
	idom []*ir.Block
	// number[b.Index] is b's reverse-postorder number; -1 if
	// unreachable.
	number []int
	// children[b.Index] lists the blocks immediately dominated by b.
	children [][]*ir.Block
	// pre/post are DFS-interval numbers on the dominator tree, giving
	// O(1) Dominates queries.
	pre, post []int
}

// NewDomTree computes the dominator tree of f using the iterative
// algorithm of Cooper, Harvey and Kennedy ("A Simple, Fast Dominance
// Algorithm").
func NewDomTree(f *ir.Func) *DomTree {
	n := len(f.Blocks)
	t := &DomTree{
		fn:       f,
		idom:     make([]*ir.Block, n),
		number:   make([]int, n),
		children: make([][]*ir.Block, n),
		pre:      make([]int, n),
		post:     make([]int, n),
	}
	for i := range t.number {
		t.number[i] = -1
	}
	rpo := ReversePostOrder(f)
	for i, b := range rpo {
		t.number[b.Index] = i
	}
	entry := f.Entry()
	if entry == nil {
		return t
	}
	t.idom[entry.Index] = entry // sentinel: entry's idom is itself
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			var newIdom *ir.Block
			for _, p := range b.Preds {
				if t.number[p.Index] < 0 || t.idom[p.Index] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom != nil && t.idom[b.Index] != newIdom {
				t.idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	t.idom[entry.Index] = nil // drop the sentinel
	for _, b := range rpo {
		if d := t.idom[b.Index]; d != nil {
			t.children[d.Index] = append(t.children[d.Index], b)
		}
	}
	// DFS interval numbering for O(1) dominance queries.
	clock := 0
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		clock++
		t.pre[b.Index] = clock
		for _, c := range t.children[b.Index] {
			dfs(c)
		}
		clock++
		t.post[b.Index] = clock
	}
	dfs(entry)
	return t
}

func (t *DomTree) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		for t.number[a.Index] > t.number[b.Index] {
			a = t.idom[a.Index]
			if a == nil {
				return b
			}
		}
		for t.number[b.Index] > t.number[a.Index] {
			b = t.idom[b.Index]
			if b == nil {
				return a
			}
		}
	}
	return a
}

// IDom returns the immediate dominator of b, or nil for the entry
// block and unreachable blocks.
func (t *DomTree) IDom(b *ir.Block) *ir.Block { return t.idom[b.Index] }

// Children returns the blocks whose immediate dominator is b.
func (t *DomTree) Children(b *ir.Block) []*ir.Block { return t.children[b.Index] }

// Reachable reports whether b is reachable from the entry block.
func (t *DomTree) Reachable(b *ir.Block) bool { return t.number[b.Index] >= 0 }

// Dominates reports whether a dominates b. Every block dominates
// itself. Unreachable blocks dominate nothing and are dominated by
// nothing.
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	if !t.Reachable(a) || !t.Reachable(b) {
		return false
	}
	return t.pre[a.Index] <= t.pre[b.Index] && t.post[b.Index] <= t.post[a.Index]
}

// StrictlyDominates reports whether a dominates b and a != b.
func (t *DomTree) StrictlyDominates(a, b *ir.Block) bool {
	return a != b && t.Dominates(a, b)
}

// DominanceFrontier computes, for every reachable block b, the set of
// blocks on the dominance frontier of b, using the algorithm of
// Cooper, Harvey and Kennedy. The result is indexed by block Index.
func DominanceFrontier(f *ir.Func, t *DomTree) [][]*ir.Block {
	df := make([][]*ir.Block, len(f.Blocks))
	inDF := make(map[[2]int]bool)
	for _, b := range f.Blocks {
		if !t.Reachable(b) || len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			if !t.Reachable(p) {
				continue
			}
			runner := p
			for runner != nil && runner != t.IDom(b) {
				key := [2]int{runner.Index, b.Index}
				if !inDF[key] {
					inDF[key] = true
					df[runner.Index] = append(df[runner.Index], b)
				}
				runner = t.IDom(runner)
			}
		}
	}
	return df
}
