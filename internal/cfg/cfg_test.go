package cfg

import (
	"testing"

	"repro/internal/ir"
)

// diamond builds the classic diamond CFG:
//
//	entry -> then | else -> join
func diamond(t *testing.T) *ir.Func {
	t.Helper()
	m := ir.MustParse(`
func @f(i64 %a, i64 %b) i64 {
entry:
  %c = icmp lt %a, %b
  br %c, then, else
then:
  %x = add %a, 1
  jmp join
else:
  %y = add %b, 1
  jmp join
join:
  %r = phi i64 [%x, then], [%y, else]
  ret %r
}
`)
	return m.FuncByName("f")
}

// loopFunc builds a counted loop with a nested inner loop.
func loopFunc(t *testing.T) *ir.Func {
	t.Helper()
	m := ir.MustParse(`
func @g(i64 %n) i64 {
entry:
  jmp outer
outer:
  %i = phi i64 [0, entry], [%i2, latch]
  %ci = icmp lt %i, %n
  br %ci, inner, exit
inner:
  %j = phi i64 [0, outer], [%j2, inner.latch]
  %cj = icmp lt %j, %n
  br %cj, inner.latch, latch
inner.latch:
  %j2 = add %j, 1
  jmp inner
latch:
  %i2 = add %i, 1
  jmp outer
exit:
  ret %i
}
`)
	return m.FuncByName("g")
}

func blockByName(f *ir.Func, name string) *ir.Block {
	for _, b := range f.Blocks {
		if b.Name() == name {
			return b
		}
	}
	return nil
}

func TestPostOrder(t *testing.T) {
	f := diamond(t)
	po := PostOrder(f)
	if len(po) != 4 {
		t.Fatalf("postorder covers %d blocks, want 4", len(po))
	}
	if po[len(po)-1] != f.Entry() {
		t.Error("entry is not last in postorder")
	}
	rpo := ReversePostOrder(f)
	if rpo[0] != f.Entry() {
		t.Error("entry is not first in reverse postorder")
	}
	// join must come after both then and else in RPO.
	pos := map[string]int{}
	for i, b := range rpo {
		pos[b.Name()] = i
	}
	if pos["join"] < pos["then"] || pos["join"] < pos["else"] {
		t.Errorf("rpo order wrong: %v", pos)
	}
}

func TestDomTreeDiamond(t *testing.T) {
	f := diamond(t)
	dt := NewDomTree(f)
	entry := blockByName(f, "entry")
	then := blockByName(f, "then")
	els := blockByName(f, "else")
	join := blockByName(f, "join")

	if dt.IDom(entry) != nil {
		t.Error("entry has an idom")
	}
	if dt.IDom(then) != entry || dt.IDom(els) != entry {
		t.Error("branch arms not dominated by entry")
	}
	if dt.IDom(join) != entry {
		t.Errorf("idom(join) = %v, want entry", dt.IDom(join))
	}
	if !dt.Dominates(entry, join) || dt.Dominates(then, join) {
		t.Error("dominance query wrong")
	}
	if !dt.Dominates(join, join) {
		t.Error("block does not dominate itself")
	}
	if dt.StrictlyDominates(join, join) {
		t.Error("strict self-dominance")
	}
	if len(dt.Children(entry)) != 3 {
		t.Errorf("entry has %d dom children, want 3", len(dt.Children(entry)))
	}
}

func TestDomTreeLoop(t *testing.T) {
	f := loopFunc(t)
	dt := NewDomTree(f)
	outer := blockByName(f, "outer")
	inner := blockByName(f, "inner")
	latch := blockByName(f, "latch")
	exit := blockByName(f, "exit")
	if !dt.Dominates(outer, latch) || !dt.Dominates(outer, exit) {
		t.Error("loop header must dominate latch and exit")
	}
	if dt.IDom(latch) != inner {
		t.Errorf("idom(latch) = %s, want inner", dt.IDom(latch).Name())
	}
	if !dt.Dominates(outer, inner) || dt.Dominates(inner, outer) {
		t.Error("nesting dominance wrong")
	}
}

func TestDomUnreachable(t *testing.T) {
	m := ir.MustParse(`
func @f() i64 {
entry:
  ret 0
dead:
  ret 1
}
`)
	f := m.FuncByName("f")
	dt := NewDomTree(f)
	dead := blockByName(f, "dead")
	if dt.Reachable(dead) {
		t.Error("dead block reported reachable")
	}
	if dt.Dominates(f.Entry(), dead) || dt.Dominates(dead, f.Entry()) {
		t.Error("unreachable block participates in dominance")
	}
}

func TestDominanceFrontier(t *testing.T) {
	f := diamond(t)
	dt := NewDomTree(f)
	df := DominanceFrontier(f, dt)
	then := blockByName(f, "then")
	els := blockByName(f, "else")
	join := blockByName(f, "join")
	wantJoin := func(b *ir.Block) {
		t.Helper()
		got := df[b.Index]
		if len(got) != 1 || got[0] != join {
			t.Errorf("DF(%s) = %v, want [join]", b.Name(), got)
		}
	}
	wantJoin(then)
	wantJoin(els)
	if len(df[f.Entry().Index]) != 0 {
		t.Errorf("DF(entry) = %v, want empty", df[f.Entry().Index])
	}
}

func TestDominanceFrontierLoop(t *testing.T) {
	f := loopFunc(t)
	dt := NewDomTree(f)
	df := DominanceFrontier(f, dt)
	outer := blockByName(f, "outer")
	latch := blockByName(f, "latch")
	// The latch's frontier must contain the loop header.
	found := false
	for _, b := range df[latch.Index] {
		if b == outer {
			found = true
		}
	}
	if !found {
		t.Errorf("DF(latch) = %v, want to contain outer", df[latch.Index])
	}
}

func TestLoopInfo(t *testing.T) {
	f := loopFunc(t)
	dt := NewDomTree(f)
	li := NewLoopInfo(f, dt)
	if len(li.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(li.Loops))
	}
	outer := blockByName(f, "outer")
	inner := blockByName(f, "inner")
	lo := li.ByHeader[outer]
	lin := li.ByHeader[inner]
	if lo == nil || lin == nil {
		t.Fatal("loop headers not identified")
	}
	if lo.Depth != 1 || lin.Depth != 2 {
		t.Errorf("depths = %d,%d want 1,2", lo.Depth, lin.Depth)
	}
	if lin.Parent != lo {
		t.Error("inner loop's parent is not the outer loop")
	}
	if !lo.Contains(blockByName(f, "latch")) {
		t.Error("outer loop missing latch")
	}
	if lo.Contains(blockByName(f, "exit")) {
		t.Error("outer loop contains exit")
	}
	if got := li.Depth(blockByName(f, "inner.latch")); got != 2 {
		t.Errorf("depth(inner.latch) = %d, want 2", got)
	}
	if got := li.Depth(blockByName(f, "entry")); got != 0 {
		t.Errorf("depth(entry) = %d, want 0", got)
	}
}

func TestLiveness(t *testing.T) {
	f := diamond(t)
	lv := NewLiveness(f)
	entry := blockByName(f, "entry")
	then := blockByName(f, "then")
	join := blockByName(f, "join")
	a, b := ir.Value(f.Params[0]), ir.Value(f.Params[1])
	if !lv.LiveIn(a, entry) || !lv.LiveIn(b, entry) {
		t.Error("parameters not live into entry")
	}
	if !lv.LiveIn(a, then) {
		t.Error("param a not live into then (used there)")
	}
	if lv.LiveIn(b, then) {
		t.Error("param b live into then though unused there and later")
	}
	var x ir.Value
	for _, in := range then.Instrs {
		if in.HasResult() {
			x = in
		}
	}
	if !lv.LiveOut(x, then) {
		t.Error("value x not live out of then (flows into phi)")
	}
	if lv.LiveIn(x, join) {
		t.Error("phi operand x live into join")
	}
	var r ir.Value = join.Phis()[0]
	if !lv.LiveIn(r, join) {
		t.Error("phi result not live-in to its block")
	}
}

func TestLivenessLoop(t *testing.T) {
	f := loopFunc(t)
	lv := NewLiveness(f)
	outer := blockByName(f, "outer")
	latch := blockByName(f, "latch")
	n := ir.Value(f.Params[0])
	if !lv.LiveIn(n, outer) || !lv.LiveIn(n, latch) {
		t.Error("param n must be live throughout the loop")
	}
	var iPhi ir.Value = outer.Phis()[0]
	if !lv.LiveOut(iPhi, latch) {
		// %i is used by %i2 = add %i, 1 in latch... %i2 defined in
		// latch, and %i is used there; i is live-in to latch.
		t.Log("note: i dead after its use in latch; checking live-in instead")
		if !lv.LiveIn(iPhi, latch) {
			t.Error("value i not live into latch")
		}
	}
}

func TestInterfere(t *testing.T) {
	f := diamond(t)
	lv := NewLiveness(f)
	a, b := ir.Value(f.Params[0]), ir.Value(f.Params[1])
	if !lv.Interfere(a, b) {
		t.Error("parameters used on different arms must interfere at entry")
	}
	then := blockByName(f, "then")
	els := blockByName(f, "else")
	var x, y ir.Value
	for _, in := range then.Instrs {
		if in.HasResult() {
			x = in
		}
	}
	for _, in := range els.Instrs {
		if in.HasResult() {
			y = in
		}
	}
	if lv.Interfere(x, y) {
		t.Error("values on exclusive branch arms must not interfere")
	}
	if !lv.Interfere(x, x) {
		t.Error("value must interfere with itself")
	}
}

func TestSplitCriticalEdges(t *testing.T) {
	// while-style loop: head has two succs (body, exit); head has two
	// preds (entry, body): the back edge body->head is critical only
	// if body has >1 succ; here the edge head->exit is not critical
	// (exit has 1 pred). Build a CFG with a genuine critical edge:
	// cond jumps straight back to head.
	m := ir.MustParse(`
func @f(i64 %n) i64 {
entry:
  jmp head
head:
  %i = phi i64 [0, entry], [%i3, head2]
  %c = icmp lt %i, %n
  br %c, body, exit
body:
  %i2 = add %i, 1
  %c2 = icmp lt %i2, 10
  br %c2, head2, exit
head2:
  %i3 = add %i2, 1
  jmp head
exit:
  ret %i
}
`)
	f := m.FuncByName("f")
	// Critical edges: head->body? body has 1 pred (head) -> no.
	// body->exit: body has 2 succs, exit has 2 preds -> critical.
	// head->exit: head has 2 succs, exit has 2 preds -> critical.
	n := SplitCriticalEdges(f)
	if n != 2 {
		t.Fatalf("split %d edges, want 2", n)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("module invalid after split: %v", err)
	}
	// No critical edges must remain.
	for _, b := range f.Blocks {
		succs := b.Succs()
		if len(succs) < 2 {
			continue
		}
		for _, s := range succs {
			if len(s.Preds) > 1 {
				t.Errorf("critical edge %s->%s remains", b.Name(), s.Name())
			}
		}
	}
	if SplitCriticalEdges(f) != 0 {
		t.Error("second split pass found edges")
	}
}
