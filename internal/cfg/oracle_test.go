package cfg_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/csmith"
	"repro/internal/ir"
	"repro/internal/minic"
)

// bruteDominates is the textbook definition of dominance: a dominates
// b iff removing a makes b unreachable from the entry. It is the
// oracle against which the iterative dominator tree is checked.
func bruteDominates(f *ir.Func, a, b *ir.Block) bool {
	if a == b {
		return true
	}
	// BFS from entry avoiding a.
	seen := map[*ir.Block]bool{a: true}
	queue := []*ir.Block{}
	if e := f.Entry(); e != a {
		queue = append(queue, e)
		seen[e] = true
	}
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		if blk == b {
			return false // b reachable without a
		}
		for _, s := range blk.Succs() {
			if !seen[s] {
				seen[s] = true
				queue = append(queue, s)
			}
		}
	}
	return true
}

// bruteReachable reports reachability from the entry.
func bruteReachable(f *ir.Func, b *ir.Block) bool {
	seen := map[*ir.Block]bool{}
	var queue []*ir.Block
	if e := f.Entry(); e != nil {
		queue = append(queue, e)
		seen[e] = true
	}
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		if blk == b {
			return true
		}
		for _, s := range blk.Succs() {
			if !seen[s] {
				seen[s] = true
				queue = append(queue, s)
			}
		}
	}
	return false
}

// TestDominatorOracle validates the Cooper-Harvey-Kennedy tree against
// the brute-force definition on the CFGs of many generated programs.
func TestDominatorOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle sweep in -short mode")
	}
	pairsChecked := 0
	for seed := int64(0); seed < 12; seed++ {
		src := csmith.Generate(csmith.Config{
			Seed: 40000 + seed, MaxPtrDepth: 2, Stmts: 30,
		})
		m, err := minic.Compile("gen", src)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range m.Funcs {
			f.RecomputeCFG()
			dt := cfg.NewDomTree(f)
			for _, a := range f.Blocks {
				for _, b := range f.Blocks {
					if !bruteReachable(f, a) || !bruteReachable(f, b) {
						continue
					}
					want := bruteDominates(f, a, b)
					got := dt.Dominates(a, b)
					if got != want {
						t.Fatalf("seed %d @%s: Dominates(%s, %s) = %v, oracle says %v",
							seed, f.FName, a.Name(), b.Name(), got, want)
					}
					pairsChecked++
				}
			}
			// The immediate dominator must dominate, and no block
			// between them may.
			for _, b := range f.Blocks {
				id := dt.IDom(b)
				if id == nil {
					continue
				}
				if !bruteDominates(f, id, b) {
					t.Fatalf("seed %d: idom(%s)=%s does not dominate", seed, b.Name(), id.Name())
				}
			}
		}
	}
	if pairsChecked == 0 {
		t.Fatal("oracle checked nothing")
	}
	t.Logf("validated %d dominance pairs against the brute-force oracle", pairsChecked)
}

// TestDominanceFrontierOracle validates frontiers against their
// definition: b is in DF(a) iff a dominates a predecessor of b but
// does not strictly dominate b.
func TestDominanceFrontierOracle(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		src := csmith.Generate(csmith.Config{
			Seed: 41000 + seed, MaxPtrDepth: 2, Stmts: 25,
		})
		m, err := minic.Compile("gen", src)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range m.Funcs {
			f.RecomputeCFG()
			dt := cfg.NewDomTree(f)
			df := cfg.DominanceFrontier(f, dt)
			inDF := func(a, b *ir.Block) bool {
				for _, x := range df[a.Index] {
					if x == b {
						return true
					}
				}
				return false
			}
			for _, a := range f.Blocks {
				if !dt.Reachable(a) {
					continue
				}
				for _, b := range f.Blocks {
					if !dt.Reachable(b) {
						continue
					}
					want := false
					for _, p := range b.Preds {
						if dt.Reachable(p) && dt.Dominates(a, p) && !dt.StrictlyDominates(a, b) {
							want = true
						}
					}
					if got := inDF(a, b); got != want {
						t.Fatalf("seed %d @%s: DF(%s) contains %s = %v, definition says %v",
							seed, f.FName, a.Name(), b.Name(), got, want)
					}
				}
			}
		}
	}
}
