package cfg

import (
	"repro/internal/ir"
)

// Liveness holds per-block live-in and live-out sets for the SSA
// values of one function. Only values that can have a live range —
// parameters and instruction results — are tracked; constants and
// globals are immortal and excluded.
//
// Phi semantics follow the standard convention: a phi's operands are
// treated as uses at the end of the corresponding predecessor blocks,
// and the phi's result is live-in to (defined at the top of) its own
// block.
type Liveness struct {
	fn *ir.Func
	// in[b.Index] and out[b.Index] are the live sets.
	in, out []map[ir.Value]bool
}

// NewLiveness computes liveness by iterating the backward dataflow
// equations to a fixed point over postorder.
func NewLiveness(f *ir.Func) *Liveness {
	n := len(f.Blocks)
	lv := &Liveness{
		fn:  f,
		in:  make([]map[ir.Value]bool, n),
		out: make([]map[ir.Value]bool, n),
	}
	for i := 0; i < n; i++ {
		lv.in[i] = make(map[ir.Value]bool)
		lv.out[i] = make(map[ir.Value]bool)
	}
	po := PostOrder(f)
	changed := true
	for changed {
		changed = false
		for _, b := range po {
			out := make(map[ir.Value]bool)
			for _, s := range b.Succs() {
				for v := range lv.in[s.Index] {
					out[v] = true
				}
				for _, phi := range s.Phis() {
					// The phi result is in live-in of s but is not
					// live across the edge.
					delete(out, ir.Value(phi))
					if v := phi.Incoming(b); v != nil && tracked(v) {
						out[v] = true
					}
				}
			}
			in := make(map[ir.Value]bool)
			for v := range out {
				in[v] = true
			}
			// Walk the block backward: kill defs, gen uses.
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				instr := b.Instrs[i]
				if instr.HasResult() {
					delete(in, ir.Value(instr))
				}
				if instr.Op == ir.OpPhi {
					continue // operands are uses in predecessors
				}
				for _, a := range instr.Args {
					if tracked(a) {
						in[a] = true
					}
				}
			}
			// Phi results are defined at the top of the block but are
			// considered live-in so that interference with other
			// live-in values is visible.
			for _, phi := range b.Phis() {
				in[phi] = true
			}
			if !sameSet(out, lv.out[b.Index]) || !sameSet(in, lv.in[b.Index]) {
				lv.out[b.Index] = out
				lv.in[b.Index] = in
				changed = true
			}
		}
	}
	return lv
}

func tracked(v ir.Value) bool {
	switch v.(type) {
	case *ir.Instr, *ir.Param:
		return true
	}
	return false
}

func sameSet(a, b map[ir.Value]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// LiveIn reports whether v is live at the entry of b.
func (lv *Liveness) LiveIn(v ir.Value, b *ir.Block) bool { return lv.in[b.Index][v] }

// LiveOut reports whether v is live at the exit of b.
func (lv *Liveness) LiveOut(v ir.Value, b *ir.Block) bool { return lv.out[b.Index][v] }

// LiveInSet returns the live-in set of b. The returned map is shared;
// callers must not mutate it.
func (lv *Liveness) LiveInSet(b *ir.Block) map[ir.Value]bool { return lv.in[b.Index] }

// LiveOutSet returns the live-out set of b. The returned map is
// shared; callers must not mutate it.
func (lv *Liveness) LiveOutSet(b *ir.Block) map[ir.Value]bool { return lv.out[b.Index] }

// Interfere reports whether two SSA values are simultaneously live at
// some program point. In strict SSA form this is equivalent to one
// value being live at the definition point of the other — the
// "simultaneously alive" premise of the paper's Corollary 3.10.
func (lv *Liveness) Interfere(a, b ir.Value) bool {
	if a == b {
		return true
	}
	return lv.liveAtDef(a, b) || lv.liveAtDef(b, a)
}

// liveAtDef reports whether v is live at the definition point of w.
func (lv *Liveness) liveAtDef(v, w ir.Value) bool {
	var blk *ir.Block
	var idx int
	switch w := w.(type) {
	case *ir.Param:
		// Parameters are defined at function entry.
		entry := lv.fn.Entry()
		return entry != nil && lv.in[entry.Index][v]
	case *ir.Instr:
		blk = w.Blk
		idx = -1
		for i, in := range blk.Instrs {
			if in == w {
				idx = i
				break
			}
		}
		if idx < 0 {
			return false
		}
	default:
		return false
	}
	// v must reach the def point: live into the block, or defined
	// earlier in the same block.
	reaches := lv.in[blk.Index][v]
	if !reaches {
		if vi, ok := v.(*ir.Instr); ok && vi.Blk == blk {
			for i := 0; i < idx; i++ {
				if blk.Instrs[i] == vi {
					reaches = true
					break
				}
			}
		}
	}
	if !reaches {
		return false
	}
	// v must also be used at or after the def point: live out of the
	// block, or used by a later (non-phi) instruction in it.
	if lv.out[blk.Index][v] {
		return true
	}
	for i := idx; i < len(blk.Instrs); i++ {
		in := blk.Instrs[i]
		if in.Op == ir.OpPhi {
			continue
		}
		for _, arg := range in.Args {
			if arg == v {
				return true
			}
		}
	}
	return false
}
