package cfg

import (
	"sort"

	"repro/internal/ir"
)

// Loop is a natural loop: a header block plus the set of blocks that
// can reach a back edge to the header without leaving the loop.
type Loop struct {
	// Header is the single entry block of the loop.
	Header *ir.Block
	// Blocks is the loop body including the header.
	Blocks map[*ir.Block]bool
	// Parent is the innermost enclosing loop, or nil.
	Parent *Loop
	// Depth is the nesting depth; outermost loops have depth 1.
	Depth int
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b] }

// LoopInfo is the set of natural loops of a function.
type LoopInfo struct {
	// Loops lists all loops, outermost first within each nest.
	Loops []*Loop
	// ByHeader maps a header block to its loop.
	ByHeader map[*ir.Block]*Loop
	inner    map[*ir.Block]*Loop
}

// NewLoopInfo finds the natural loops of f via back edges of the
// dominator tree: an edge t->h is a back edge when h dominates t.
// Loops sharing a header are merged, matching LLVM's convention.
func NewLoopInfo(f *ir.Func, dt *DomTree) *LoopInfo {
	li := &LoopInfo{
		ByHeader: make(map[*ir.Block]*Loop),
		inner:    make(map[*ir.Block]*Loop),
	}
	for _, b := range f.Blocks {
		if !dt.Reachable(b) {
			continue
		}
		for _, s := range b.Succs() {
			if !dt.Dominates(s, b) {
				continue // not a back edge
			}
			loop := li.ByHeader[s]
			if loop == nil {
				loop = &Loop{Header: s, Blocks: map[*ir.Block]bool{s: true}}
				li.ByHeader[s] = loop
				li.Loops = append(li.Loops, loop)
			}
			// Collect the body by walking predecessors backward from
			// the latch until the header.
			stack := []*ir.Block{b}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if loop.Blocks[x] {
					continue
				}
				loop.Blocks[x] = true
				for _, p := range x.Preds {
					if dt.Reachable(p) {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	// Establish nesting: sort by size ascending so the innermost loop
	// claims each block first.
	sorted := append([]*Loop(nil), li.Loops...)
	sort.Slice(sorted, func(i, j int) bool {
		return len(sorted[i].Blocks) < len(sorted[j].Blocks)
	})
	for _, l := range sorted {
		for b := range l.Blocks {
			if li.inner[b] == nil {
				li.inner[b] = l
			}
		}
	}
	for _, l := range sorted {
		// The parent is the innermost loop of the header that is not
		// the loop itself; search enclosing loops by size.
		for _, cand := range sorted {
			if cand == l || len(cand.Blocks) < len(l.Blocks) {
				continue
			}
			if cand.Blocks[l.Header] && cand != l {
				if l.Parent == nil || len(cand.Blocks) < len(l.Parent.Blocks) {
					l.Parent = cand
				}
			}
		}
	}
	for _, l := range li.Loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	return li
}

// InnermostLoop returns the innermost loop containing b, or nil.
func (li *LoopInfo) InnermostLoop(b *ir.Block) *Loop { return li.inner[b] }

// Depth returns the loop nesting depth of b; 0 when b is not in any
// loop.
func (li *LoopInfo) Depth(b *ir.Block) int {
	if l := li.inner[b]; l != nil {
		return l.Depth
	}
	return 0
}

// RemoveUnreachable deletes blocks not reachable from the entry block
// and drops phi incoming entries that named them. Returns the number
// of blocks removed.
func RemoveUnreachable(f *ir.Func) int {
	f.RecomputeCFG()
	reachable := make(map[*ir.Block]bool)
	var stack []*ir.Block
	if e := f.Entry(); e != nil {
		stack = append(stack, e)
		reachable[e] = true
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs() {
			if !reachable[s] {
				reachable[s] = true
				stack = append(stack, s)
			}
		}
	}
	if len(reachable) == len(f.Blocks) {
		return 0
	}
	removed := len(f.Blocks) - len(reachable)
	var kept []*ir.Block
	for _, b := range f.Blocks {
		if reachable[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
	for _, b := range f.Blocks {
		for _, phi := range b.Phis() {
			args := phi.Args[:0]
			blks := phi.PhiBlocks[:0]
			for i, pb := range phi.PhiBlocks {
				if reachable[pb] {
					args = append(args, phi.Args[i])
					blks = append(blks, pb)
				}
			}
			phi.Args, phi.PhiBlocks = args, blks
		}
	}
	f.RecomputeCFG()
	return removed
}

// SplitCriticalEdges splits every critical edge of f — an edge from a
// block with multiple successors to a block with multiple predecessors
// — by inserting a fresh block containing a single jump. Phi incoming
// blocks are rewired. e-SSA construction requires the split so that
// sigma copies can be placed on a specific edge. Returns the number of
// edges split.
func SplitCriticalEdges(f *ir.Func) int {
	n := 0
	// Iterate over a snapshot: splitting appends blocks.
	blocks := append([]*ir.Block(nil), f.Blocks...)
	for _, b := range blocks {
		term := b.Term()
		if term == nil || len(term.Succs) < 2 {
			continue
		}
		for i, s := range term.Succs {
			if len(s.Preds) < 2 {
				continue
			}
			mid := f.NewBlock(b.Name() + "." + s.Name())
			jmp := &ir.Instr{Op: ir.OpJmp, Typ: ir.Void, Succs: []*ir.Block{s}}
			mid.Append(jmp)
			term.Succs[i] = mid
			for _, phi := range s.Phis() {
				for j, pb := range phi.PhiBlocks {
					if pb == b {
						phi.PhiBlocks[j] = mid
					}
				}
			}
			n++
		}
	}
	if n > 0 {
		f.RecomputeCFG()
	}
	return n
}
