// Package csmith generates random mini-C programs in the style of the
// Csmith tool, as used in the paper's applicability experiment
// (Section 4.3): single-function programs (plus main) with pointer
// nesting depths from 2 to 7, whose memory indexing expressions are
// dominated by compile-time constants — exactly the trait that lets
// the less-than analysis shine in Figure 12.
//
// Generation is deterministic in the seed, and every generated
// program compiles with internal/minic (a property the test suite
// enforces over hundreds of seeds).
package csmith

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config controls generation.
type Config struct {
	// Seed makes output deterministic.
	Seed int64
	// MaxPtrDepth is the deepest pointer type generated (e.g. 3 means
	// int*** may appear). Values below 1 are treated as 1.
	MaxPtrDepth int
	// Stmts is the approximate number of statements in the body of
	// the generated function; the default is 40.
	Stmts int
	// InjectOOB appends one deliberately out-of-bounds array store
	// (index == length) at the end of func_1's body, on the main path
	// so every execution reaches it. The injection draws nothing from
	// the RNG: with InjectOOB unset the output is byte-identical to
	// the same Config without the field, which keeps seed corpora
	// stable. Used to give soundness sweeps a known-trapping access.
	InjectOOB bool
}

// Generate produces a compilable mini-C program.
func Generate(cfg Config) string {
	if cfg.MaxPtrDepth < 1 {
		cfg.MaxPtrDepth = 1
	}
	if cfg.Stmts <= 0 {
		cfg.Stmts = 40
	}
	g := &gen{
		rng: rand.New(rand.NewSource(cfg.Seed)),
		cfg: cfg,
	}
	return g.program()
}

type variable struct {
	name string
	// depth is the pointer depth: 0 for int.
	depth int
	// arrayLen > 0 marks arrays of the element type with the given
	// depth.
	arrayLen int
}

type gen struct {
	rng     *rand.Rand
	cfg     Config
	nextID  int
	globals []variable
	// scopes of local variables.
	scopes [][]variable
	buf    strings.Builder
	indent int
	// loopDepth guards against deep loop nesting.
	loopDepth int
}

func (g *gen) fresh(prefix string) string {
	g.nextID++
	return fmt.Sprintf("%s_%d", prefix, g.nextID)
}

func (g *gen) line(format string, args ...any) {
	g.buf.WriteString(strings.Repeat("  ", g.indent))
	fmt.Fprintf(&g.buf, format, args...)
	g.buf.WriteByte('\n')
}

func (g *gen) pick(n int) int { return g.rng.Intn(n) }

func (g *gen) program() string {
	// Globals: a few scalars and arrays.
	nGlobals := 2 + g.pick(4)
	for i := 0; i < nGlobals; i++ {
		v := variable{name: g.fresh("g")}
		if g.pick(2) == 0 {
			v.arrayLen = 8 + g.pick(56)
		}
		g.globals = append(g.globals, v)
		if v.arrayLen > 0 {
			g.line("int %s[%d];", v.name, v.arrayLen)
		} else {
			g.line("int %s;", v.name)
		}
	}
	g.line("")
	// The single work function, as in the paper's Csmith setup.
	g.line("int func_1(void) {")
	g.indent++
	g.pushScope()
	g.declareLocals()
	n := g.cfg.Stmts
	for i := 0; i < n; i++ {
		g.stmt()
	}
	if g.cfg.InjectOOB {
		// First visible plain array, deterministically and without
		// touching the RNG; declareLocals guarantees one exists. The
		// store at index == length is the canonical one-past-the-end
		// bug, and it sits on the main path: the generator never emits
		// mid-body returns, so every run reaches it.
		for _, v := range g.visible() {
			if v.depth == 0 && v.arrayLen > 0 {
				g.line("%s[%d] = 1;", v.name, v.arrayLen)
				break
			}
		}
	}
	g.line("return %s;", g.intExpr(2))
	g.popScope()
	g.indent--
	g.line("}")
	g.line("")
	g.line("int main(void) {")
	g.line("  return func_1();")
	g.line("}")
	return g.buf.String()
}

func (g *gen) pushScope() { g.scopes = append(g.scopes, nil) }
func (g *gen) popScope()  { g.scopes = g.scopes[:len(g.scopes)-1] }

func (g *gen) declare(v variable, init string) {
	stars := strings.Repeat("*", v.depth)
	switch {
	case v.arrayLen > 0:
		g.line("int %s%s[%d];", stars, v.name, v.arrayLen)
	case init != "":
		g.line("int %s%s = %s;", stars, v.name, init)
	default:
		g.line("int %s%s;", stars, v.name)
	}
	g.scopes[len(g.scopes)-1] = append(g.scopes[len(g.scopes)-1], v)
}

// declareLocals seeds the function with scalars, arrays, and a
// pointer chain up to the configured depth, each pointer initialized
// to point one level down (so dereferences are meaningful).
func (g *gen) declareLocals() {
	// Scalars.
	for i := 0; i < 3+g.pick(3); i++ {
		g.declare(variable{name: g.fresh("l")}, fmt.Sprintf("%d", g.pick(100)))
	}
	// Arrays.
	for i := 0; i < 3+g.pick(4); i++ {
		g.declare(variable{name: g.fresh("a"), arrayLen: 8 + g.pick(56)}, "")
	}
	// Pointer chain: p1 = &scalar, p2 = &p1, ...
	base := g.scalarVar()
	prev := base.name
	for d := 1; d <= g.cfg.MaxPtrDepth; d++ {
		v := variable{name: g.fresh("p"), depth: d}
		g.declare(v, "&"+prev)
		prev = v.name
	}
	// A second, independent chain for aliasing diversity.
	if g.cfg.MaxPtrDepth >= 2 {
		base2 := g.scalarVar()
		v1 := variable{name: g.fresh("q"), depth: 1}
		g.declare(v1, "&"+base2.name)
		v2 := variable{name: g.fresh("q"), depth: 2}
		g.declare(v2, "&"+v1.name)
	}
	// Pointers into arrays.
	if arr := g.arrayVar(); arr.name != "" {
		v := variable{name: g.fresh("ap"), depth: 1}
		g.declare(v, arr.name)
	}
}

// visible returns all variables in scope, globals included.
func (g *gen) visible() []variable {
	var out []variable
	out = append(out, g.globals...)
	for _, s := range g.scopes {
		out = append(out, s...)
	}
	return out
}

func (g *gen) varsWhere(pred func(variable) bool) []variable {
	var out []variable
	for _, v := range g.visible() {
		if pred(v) {
			out = append(out, v)
		}
	}
	return out
}

func (g *gen) scalarVar() variable {
	vs := g.varsWhere(func(v variable) bool { return v.depth == 0 && v.arrayLen == 0 })
	if len(vs) == 0 {
		return variable{name: "0"}
	}
	return vs[g.pick(len(vs))]
}

func (g *gen) arrayVar() variable {
	vs := g.varsWhere(func(v variable) bool { return v.arrayLen > 0 && v.depth == 0 })
	if len(vs) == 0 {
		return variable{}
	}
	return vs[g.pick(len(vs))]
}

func (g *gen) ptrVar(depth int) variable {
	vs := g.varsWhere(func(v variable) bool { return v.depth == depth && v.arrayLen == 0 })
	if len(vs) == 0 {
		return variable{}
	}
	return vs[g.pick(len(vs))]
}

// intExpr generates an int-valued expression with bounded depth.
// Csmith-like programs index memory with constants, so leaves are
// mostly constants and scalar reads.
func (g *gen) intExpr(depth int) string {
	if depth <= 0 {
		switch g.pick(4) {
		case 0:
			return g.scalarVar().name
		default:
			return fmt.Sprintf("%d", g.pick(256))
		}
	}
	switch g.pick(8) {
	case 0, 1:
		return fmt.Sprintf("%d", g.pick(256))
	case 2:
		return g.scalarVar().name
	case 3:
		if arr := g.arrayVar(); arr.name != "" {
			return fmt.Sprintf("%s[%d]", arr.name, g.pick(arr.arrayLen))
		}
		return g.scalarVar().name
	case 4:
		if p := g.ptrVar(1); p.name != "" {
			return "*" + p.name
		}
		return g.scalarVar().name
	case 5:
		op := []string{"+", "-", "*"}[g.pick(3)]
		return fmt.Sprintf("(%s %s %s)", g.intExpr(depth-1), op, g.intExpr(depth-1))
	case 6:
		// Division by a non-zero constant keeps programs total.
		return fmt.Sprintf("(%s / %d)", g.intExpr(depth-1), 1+g.pick(9))
	default:
		return fmt.Sprintf("(%s %% %d)", g.intExpr(depth-1), 1+g.pick(15))
	}
}

// derefChain produces an lvalue dereferencing a pointer of random
// depth down to int, e.g. "**p_3".
func (g *gen) derefLValue() string {
	for tries := 0; tries < 4; tries++ {
		d := 1 + g.pick(g.cfg.MaxPtrDepth)
		if p := g.ptrVar(d); p.name != "" {
			return strings.Repeat("*", d) + p.name
		}
	}
	return ""
}

func (g *gen) stmt() {
	// Weighted statement mix: Csmith output is dominated by memory
	// accesses with compile-time-constant subscripts (the trait the
	// paper's Section 4.3 highlights), so constant array reads and
	// writes get the largest share.
	switch []int{0, 2, 2, 2, 3, 4, 5, 6, 7, 8, 8, 9, 2, 8}[g.pick(14)] {
	case 0, 1: // scalar assignment
		g.line("%s = %s;", g.scalarVar().name, g.intExpr(2))
	case 2: // array write with constant index
		if arr := g.arrayVar(); arr.name != "" {
			g.line("%s[%d] = %s;", arr.name, g.pick(arr.arrayLen), g.intExpr(2))
			return
		}
		g.line("%s = %s;", g.scalarVar().name, g.intExpr(1))
	case 3: // write through a deref chain
		if lv := g.derefLValue(); lv != "" {
			g.line("%s = %s;", lv, g.intExpr(2))
			return
		}
		g.line("%s = %s;", g.scalarVar().name, g.intExpr(1))
	case 4: // pointer retargeting: p = &x or p = q
		d := 1 + g.pick(g.cfg.MaxPtrDepth)
		p := g.ptrVar(d)
		if p.name == "" {
			g.line("%s = %s;", g.scalarVar().name, g.intExpr(1))
			return
		}
		if d == 1 {
			if g.pick(2) == 0 {
				if arr := g.arrayVar(); arr.name != "" {
					g.line("%s = %s + %d;", p.name, arr.name, g.pick(arr.arrayLen))
					return
				}
			}
			g.line("%s = &%s;", p.name, g.scalarVar().name)
			return
		}
		if q := g.ptrVar(d - 1); q.name != "" {
			g.line("%s = &%s;", p.name, q.name)
			return
		}
		g.line("%s = %s;", g.scalarVar().name, g.intExpr(1))
	case 5: // bounded for loop over a constant subrange of an array
		if arr := g.arrayVar(); arr.name != "" && g.loopDepth < 2 {
			lo := g.pick(arr.arrayLen - 1)
			hi := lo + 1 + g.pick(arr.arrayLen-lo-1+1)
			if hi > arr.arrayLen {
				hi = arr.arrayLen
			}
			i := g.fresh("i")
			g.line("for (int %s = %d; %s < %d; %s++) {", i, lo, i, hi, i)
			g.indent++
			g.loopDepth++
			g.pushScope()
			g.line("%s[%s] = %s[%s] + %s;", arr.name, i, arr.name, i, g.intExpr(1))
			if g.pick(2) == 0 {
				g.stmt()
			}
			g.popScope()
			g.loopDepth--
			g.indent--
			g.line("}")
			return
		}
		g.line("%s = %s;", g.scalarVar().name, g.intExpr(1))
	case 6: // if/else on a comparison
		a, b := g.scalarVar().name, g.intExpr(1)
		g.line("if (%s < %s) {", a, b)
		g.indent++
		g.pushScope()
		g.stmt()
		g.popScope()
		g.indent--
		if g.pick(2) == 0 {
			g.line("} else {")
			g.indent++
			g.pushScope()
			g.stmt()
			g.popScope()
			g.indent--
		}
		g.line("}")
	case 7: // block with fresh locals
		g.line("{")
		g.indent++
		g.pushScope()
		g.declare(variable{name: g.fresh("t")}, g.intExpr(1))
		g.stmt()
		g.popScope()
		g.indent--
		g.line("}")
	case 8: // array-to-array copy with constant indices
		arr1, arr2 := g.arrayVar(), g.arrayVar()
		if arr1.name != "" && arr2.name != "" {
			g.line("%s[%d] = %s[%d];",
				arr1.name, g.pick(arr1.arrayLen), arr2.name, g.pick(arr2.arrayLen))
			return
		}
		g.line("%s = %s;", g.scalarVar().name, g.intExpr(1))
	default: // compound update
		v := g.scalarVar().name
		op := []string{"+=", "-=", "*="}[g.pick(3)]
		g.line("%s %s %s;", v, op, g.intExpr(1))
	}
}
