package csmith

import (
	"strings"
	"testing"

	"repro/internal/minic"
)

func TestDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 42, MaxPtrDepth: 3})
	b := Generate(Config{Seed: 42, MaxPtrDepth: 3})
	if a != b {
		t.Error("same seed produced different programs")
	}
	c := Generate(Config{Seed: 43, MaxPtrDepth: 3})
	if a == c {
		t.Error("different seeds produced identical programs")
	}
}

// TestAllSeedsCompile is the generator's core contract: every output
// is a valid mini-C program, across depths 2..7 as in the paper's 120
// program buckets.
func TestAllSeedsCompile(t *testing.T) {
	for depth := 2; depth <= 7; depth++ {
		for seed := int64(0); seed < 30; seed++ {
			src := Generate(Config{Seed: seed, MaxPtrDepth: depth, Stmts: 30})
			if _, err := minic.Compile("gen", src); err != nil {
				t.Fatalf("depth %d seed %d does not compile: %v\n%s",
					depth, seed, err, src)
			}
		}
	}
}

func TestDepthAppears(t *testing.T) {
	src := Generate(Config{Seed: 7, MaxPtrDepth: 5, Stmts: 50})
	if !strings.Contains(src, "int *****") {
		t.Errorf("no depth-5 pointer declared:\n%s", src)
	}
	if !strings.Contains(src, "int main(void)") {
		t.Error("no main function")
	}
}

// TestInjectOOB pins the injection contract: the flag adds exactly
// one line — an index-at-length store into a visible array — right
// before func_1's return, perturbs nothing else (same seed without
// the flag differs by only that line), and the result still compiles.
func TestInjectOOB(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		plain := Generate(Config{Seed: seed, MaxPtrDepth: 3, Stmts: 30})
		inj := Generate(Config{Seed: seed, MaxPtrDepth: 3, Stmts: 30, InjectOOB: true})
		pl := strings.Split(plain, "\n")
		il := strings.Split(inj, "\n")
		if len(il) != len(pl)+1 {
			t.Fatalf("seed %d: injection added %d lines, want 1", seed, len(il)-len(pl))
		}
		extra := ""
		for i := range il {
			if i >= len(pl) || il[i] != pl[i] {
				extra = il[i]
				rest := append([]string{}, il[:i]...)
				rest = append(rest, il[i+1:]...)
				if strings.Join(rest, "\n") != plain {
					t.Fatalf("seed %d: injection perturbed surrounding lines", seed)
				}
				break
			}
		}
		if !strings.Contains(extra, "] = 1;") {
			t.Fatalf("seed %d: unexpected injected line %q", seed, extra)
		}
		if _, err := minic.Compile("gen", inj); err != nil {
			t.Fatalf("seed %d: injected program does not compile: %v", seed, err)
		}
	}
}

func TestSizeScales(t *testing.T) {
	small := Generate(Config{Seed: 1, MaxPtrDepth: 2, Stmts: 10})
	large := Generate(Config{Seed: 1, MaxPtrDepth: 2, Stmts: 200})
	if len(large) < 2*len(small) {
		t.Errorf("Stmts did not scale output: %d vs %d bytes", len(small), len(large))
	}
}
