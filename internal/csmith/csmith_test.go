package csmith

import (
	"strings"
	"testing"

	"repro/internal/minic"
)

func TestDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 42, MaxPtrDepth: 3})
	b := Generate(Config{Seed: 42, MaxPtrDepth: 3})
	if a != b {
		t.Error("same seed produced different programs")
	}
	c := Generate(Config{Seed: 43, MaxPtrDepth: 3})
	if a == c {
		t.Error("different seeds produced identical programs")
	}
}

// TestAllSeedsCompile is the generator's core contract: every output
// is a valid mini-C program, across depths 2..7 as in the paper's 120
// program buckets.
func TestAllSeedsCompile(t *testing.T) {
	for depth := 2; depth <= 7; depth++ {
		for seed := int64(0); seed < 30; seed++ {
			src := Generate(Config{Seed: seed, MaxPtrDepth: depth, Stmts: 30})
			if _, err := minic.Compile("gen", src); err != nil {
				t.Fatalf("depth %d seed %d does not compile: %v\n%s",
					depth, seed, err, src)
			}
		}
	}
}

func TestDepthAppears(t *testing.T) {
	src := Generate(Config{Seed: 7, MaxPtrDepth: 5, Stmts: 50})
	if !strings.Contains(src, "int *****") {
		t.Errorf("no depth-5 pointer declared:\n%s", src)
	}
	if !strings.Contains(src, "int main(void)") {
		t.Error("no main function")
	}
}

func TestSizeScales(t *testing.T) {
	small := Generate(Config{Seed: 1, MaxPtrDepth: 2, Stmts: 10})
	large := Generate(Config{Seed: 1, MaxPtrDepth: 2, Stmts: 200})
	if len(large) < 2*len(small) {
		t.Errorf("Stmts did not scale output: %d vs %d bytes", len(small), len(large))
	}
}
