// Package bitvec provides the sparse bitmap set the reworked points-to
// solvers are built on, plus a hash-consing interner that lets equal
// sets share one allocation.
//
// The representation is a sorted slice of (base, word) chunks: only
// 64-element windows that actually contain members are materialized,
// so a set over a 100k-object universe costs memory proportional to
// its population, not the universe. Union returns whether it grew, and
// UnionDelta additionally returns exactly the new elements — the
// primitive behind difference (delta) propagation, where a solver
// forwards only what a set gained since the last visit instead of
// re-walking the whole set.
//
// The interner deduplicates repetitive solver state (the MDE
// observation: most points-to sets in a big module are copies of each
// other). Interned sets are canonical and MUST be treated as
// immutable; Interner.Intern returns the canonical instance for any
// equal set, so equality between interned sets is pointer equality.
package bitvec

import (
	"math/bits"
)

// chunk is one 64-element window of the universe: the members in
// [base*64, base*64+63] are the set bits of word.
type chunk struct {
	base int32
	word uint64
}

// Set is a sparse bitmap over non-negative integers. The zero value
// is the empty set, ready to use.
type Set struct {
	chunks []chunk
}

// find returns the position of base in s.chunks and whether it is
// present; when absent, the position is the insertion point.
func (s *Set) find(base int32) (int, bool) {
	lo, hi := 0, len(s.chunks)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.chunks[mid].base < base {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s.chunks) && s.chunks[lo].base == base
}

// Add inserts i and reports whether the set changed.
func (s *Set) Add(i int) bool {
	base, bit := int32(i/64), uint64(1)<<(uint(i)%64)
	pos, ok := s.find(base)
	if ok {
		if s.chunks[pos].word&bit != 0 {
			return false
		}
		s.chunks[pos].word |= bit
		return true
	}
	s.chunks = append(s.chunks, chunk{})
	copy(s.chunks[pos+1:], s.chunks[pos:])
	s.chunks[pos] = chunk{base: base, word: bit}
	return true
}

// Has reports membership of i.
func (s *Set) Has(i int) bool {
	if i < 0 {
		return false
	}
	pos, ok := s.find(int32(i / 64))
	return ok && s.chunks[pos].word&(1<<(uint(i)%64)) != 0
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool { return len(s.chunks) == 0 }

// Len returns the cardinality.
func (s *Set) Len() int {
	n := 0
	for _, c := range s.chunks {
		n += bits.OnesCount64(c.word)
	}
	return n
}

// UnionWith folds o into s and reports whether s grew.
func (s *Set) UnionWith(o *Set) bool {
	delta := false
	s.merge(o, func(int32, uint64) { delta = true })
	return delta
}

// UnionDelta folds o into s and returns the set of elements that are
// new to s (nil when nothing changed). This is the delta-propagation
// primitive: the caller forwards only the returned set downstream.
func (s *Set) UnionDelta(o *Set) *Set {
	var d *Set
	s.merge(o, func(base int32, word uint64) {
		if d == nil {
			d = &Set{}
		}
		d.chunks = append(d.chunks, chunk{base: base, word: word})
	})
	return d
}

// merge is the shared union walk: onNew is called once per chunk that
// gained bits, with exactly the gained bits, in ascending base order.
func (s *Set) merge(o *Set, onNew func(base int32, word uint64)) {
	if len(o.chunks) == 0 {
		return
	}
	if len(s.chunks) == 0 {
		s.chunks = append(s.chunks, o.chunks...)
		for _, c := range o.chunks {
			onNew(c.base, c.word)
		}
		return
	}
	// Subset fast path: the steady state of a fixpoint solver is
	// unions that add nothing, which must not allocate.
	i, j := 0, 0
	subset := true
	for j < len(o.chunks) {
		for i < len(s.chunks) && s.chunks[i].base < o.chunks[j].base {
			i++
		}
		if i == len(s.chunks) || s.chunks[i].base != o.chunks[j].base ||
			o.chunks[j].word&^s.chunks[i].word != 0 {
			subset = false
			break
		}
		j++
	}
	if subset {
		return
	}
	merged := make([]chunk, 0, len(s.chunks)+len(o.chunks))
	i, j = 0, 0
	changed := false
	for i < len(s.chunks) || j < len(o.chunks) {
		switch {
		case j == len(o.chunks) || (i < len(s.chunks) && s.chunks[i].base < o.chunks[j].base):
			merged = append(merged, s.chunks[i])
			i++
		case i == len(s.chunks) || o.chunks[j].base < s.chunks[i].base:
			merged = append(merged, o.chunks[j])
			onNew(o.chunks[j].base, o.chunks[j].word)
			changed = true
			j++
		default:
			w := s.chunks[i].word | o.chunks[j].word
			if gained := w &^ s.chunks[i].word; gained != 0 {
				onNew(s.chunks[i].base, gained)
				changed = true
			}
			merged = append(merged, chunk{base: s.chunks[i].base, word: w})
			i++
			j++
		}
	}
	if changed {
		s.chunks = merged
	}
}

// ForEach visits the members in ascending order; returning false
// stops the walk.
func (s *Set) ForEach(f func(i int) bool) {
	for _, c := range s.chunks {
		w := c.word
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(int(c.base)*64 + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// Elems returns the members in ascending order.
func (s *Set) Elems() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(i int) bool { out = append(out, i); return true })
	return out
}

// Equal reports set equality.
func (s *Set) Equal(o *Set) bool {
	if s == o {
		return true
	}
	if len(s.chunks) != len(o.chunks) {
		return false
	}
	for i, c := range s.chunks {
		if c != o.chunks[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether s and o share a member.
func (s *Set) Intersects(o *Set) bool {
	i, j := 0, 0
	for i < len(s.chunks) && j < len(o.chunks) {
		a, b := s.chunks[i], o.chunks[j]
		switch {
		case a.base < b.base:
			i++
		case b.base < a.base:
			j++
		default:
			if a.word&b.word != 0 {
				return true
			}
			i++
			j++
		}
	}
	return false
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	if len(s.chunks) == 0 {
		return &Set{}
	}
	return &Set{chunks: append([]chunk(nil), s.chunks...)}
}

// Interner hash-conses sets: Intern maps every equal set to one
// canonical *Set, so equal sets share storage and compare by pointer.
// Not safe for concurrent use; give each solver its own.
type Interner struct {
	table map[uint64][]*Set
	// hits counts Intern calls answered by an existing canonical set.
	hits, misses int
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{table: map[uint64][]*Set{}}
}

// fingerprint is an FNV-1a style hash over the chunk stream.
func fingerprint(s *Set) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range s.chunks {
		h = (h ^ uint64(uint32(c.base))) * 1099511628211
		h = (h ^ c.word) * 1099511628211
	}
	return h
}

// Intern returns the canonical instance equal to s. The returned set
// must not be mutated; callers that need to grow a set Clone it first.
func (t *Interner) Intern(s *Set) *Set {
	fp := fingerprint(s)
	for _, cand := range t.table[fp] {
		if cand.Equal(s) {
			t.hits++
			return cand
		}
	}
	t.misses++
	t.table[fp] = append(t.table[fp], s)
	return s
}

// Stats reports (canonical sets, hits): how much sharing interning
// achieved.
func (t *Interner) Stats() (unique, hits int) { return t.misses, t.hits }
