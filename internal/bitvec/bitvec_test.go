package bitvec

import (
	"math/rand"
	"testing"
)

func fromElems(elems ...int) *Set {
	s := &Set{}
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

func TestAddHasElems(t *testing.T) {
	cases := []struct {
		name  string
		elems []int
	}{
		{"empty", nil},
		{"single", []int{0}},
		{"word-boundaries", []int{63, 64, 127, 128}},
		{"sparse", []int{5, 1000, 100000}},
		{"dense-word", []int{0, 1, 2, 3, 4, 5, 6, 7}},
		{"reverse-insert", []int{300, 200, 100, 0}},
		{"duplicates", []int{7, 7, 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &Set{}
			want := map[int]bool{}
			for _, e := range tc.elems {
				grew := s.Add(e)
				if grew == want[e] {
					t.Errorf("Add(%d) grew=%v, want %v", e, grew, !want[e])
				}
				want[e] = true
			}
			if s.Len() != len(want) {
				t.Errorf("Len() = %d, want %d", s.Len(), len(want))
			}
			for e := range want {
				if !s.Has(e) {
					t.Errorf("Has(%d) = false after Add", e)
				}
			}
			for _, probe := range []int{-1, 1, 62, 65, 999, 99999} {
				if s.Has(probe) != want[probe] {
					t.Errorf("Has(%d) = %v, want %v", probe, s.Has(probe), want[probe])
				}
			}
			elems := s.Elems()
			if len(elems) != len(want) {
				t.Fatalf("Elems() = %v, want %d members", elems, len(want))
			}
			for i := 1; i < len(elems); i++ {
				if elems[i-1] >= elems[i] {
					t.Fatalf("Elems() not ascending: %v", elems)
				}
			}
		})
	}
}

func TestUnionWith(t *testing.T) {
	cases := []struct {
		name     string
		a, b     []int
		wantGrew bool
		want     []int
	}{
		{"empty-empty", nil, nil, false, nil},
		{"empty-gains-all", nil, []int{1, 70}, true, []int{1, 70}},
		{"subset-no-change", []int{1, 70, 500}, []int{70}, false, []int{1, 70, 500}},
		{"equal-no-change", []int{3, 64}, []int{3, 64}, false, []int{3, 64}},
		{"disjoint", []int{0}, []int{64}, true, []int{0, 64}},
		{"overlap-same-word", []int{1, 2}, []int{2, 3}, true, []int{1, 2, 3}},
		{"interleaved-chunks", []int{0, 128}, []int{64, 192}, true, []int{0, 64, 128, 192}},
		{"into-empty-from-empty", []int{5}, nil, false, []int{5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := fromElems(tc.a...), fromElems(tc.b...)
			before := b.Clone()
			if grew := a.UnionWith(b); grew != tc.wantGrew {
				t.Errorf("UnionWith grew=%v, want %v", grew, tc.wantGrew)
			}
			if got := a.Elems(); len(got) != len(tc.want) {
				t.Fatalf("union = %v, want %v", got, tc.want)
			} else {
				for i := range got {
					if got[i] != tc.want[i] {
						t.Fatalf("union = %v, want %v", got, tc.want)
					}
				}
			}
			if !b.Equal(before) {
				t.Error("UnionWith mutated its operand")
			}
		})
	}
}

// TestUnionDelta: the delta must be exactly the new elements — the
// contract delta propagation rests on.
func TestUnionDelta(t *testing.T) {
	cases := []struct {
		name      string
		a, b      []int
		wantDelta []int
	}{
		{"no-change-nil-delta", []int{1, 2, 64}, []int{2, 64}, nil},
		{"all-new", nil, []int{0, 63, 64}, []int{0, 63, 64}},
		{"partial-same-word", []int{1}, []int{1, 2}, []int{2}},
		{"partial-cross-words", []int{1, 128}, []int{1, 64, 129}, []int{64, 129}},
		{"empty-operand", []int{9}, nil, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := fromElems(tc.a...), fromElems(tc.b...)
			d := a.UnionDelta(b)
			if tc.wantDelta == nil {
				if d != nil && !d.Empty() {
					t.Fatalf("delta = %v, want none", d.Elems())
				}
				return
			}
			if d == nil {
				t.Fatalf("delta = nil, want %v", tc.wantDelta)
			}
			got := d.Elems()
			if len(got) != len(tc.wantDelta) {
				t.Fatalf("delta = %v, want %v", got, tc.wantDelta)
			}
			for i := range got {
				if got[i] != tc.wantDelta[i] {
					t.Fatalf("delta = %v, want %v", got, tc.wantDelta)
				}
			}
			// The delta must be a well-formed Set in its own right.
			for _, e := range tc.wantDelta {
				if !d.Has(e) {
					t.Errorf("delta.Has(%d) = false", e)
				}
			}
		})
	}
}

func TestIntersects(t *testing.T) {
	cases := []struct {
		name string
		a, b []int
		want bool
	}{
		{"both-empty", nil, nil, false},
		{"one-empty", []int{1}, nil, false},
		{"disjoint-same-word", []int{1}, []int{2}, false},
		{"disjoint-chunks", []int{0}, []int{1000}, false},
		{"shared", []int{1, 700}, []int{700}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := fromElems(tc.a...), fromElems(tc.b...)
			if got := a.Intersects(b); got != tc.want {
				t.Errorf("Intersects = %v, want %v", got, tc.want)
			}
			if got := b.Intersects(a); got != tc.want {
				t.Errorf("Intersects (swapped) = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestInternIdentity: hash-consing must map equal sets to one pointer
// and distinct sets to distinct pointers.
func TestInternIdentity(t *testing.T) {
	in := NewInterner()
	a := in.Intern(fromElems(1, 64, 4096))
	b := in.Intern(fromElems(1, 64, 4096))
	if a != b {
		t.Error("equal sets interned to different pointers")
	}
	c := in.Intern(fromElems(1, 64))
	if c == a {
		t.Error("distinct sets interned to one pointer")
	}
	empty1, empty2 := in.Intern(&Set{}), in.Intern(&Set{})
	if empty1 != empty2 {
		t.Error("empty sets interned to different pointers")
	}
	if unique, hits := in.Stats(); unique != 3 || hits != 2 {
		t.Errorf("Stats() = (%d, %d), want (3, 2)", unique, hits)
	}
}

// TestCloneIndependence: mutating a clone must not leak into the
// original (interned sets rely on this to stay immutable).
func TestCloneIndependence(t *testing.T) {
	a := fromElems(1, 2, 3)
	b := a.Clone()
	b.Add(100)
	if a.Has(100) {
		t.Error("Clone shares storage with the original")
	}
	if !b.Has(1) || !b.Has(100) {
		t.Error("Clone lost members")
	}
}

// TestRandomizedAgainstMap cross-checks the sparse set against a plain
// map over random operation sequences.
func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		s := &Set{}
		ref := map[int]bool{}
		for op := 0; op < 200; op++ {
			e := rng.Intn(2000)
			switch rng.Intn(3) {
			case 0:
				grew := s.Add(e)
				if grew == ref[e] {
					t.Fatalf("trial %d: Add(%d) grew=%v with ref=%v", trial, e, grew, ref[e])
				}
				ref[e] = true
			case 1:
				if s.Has(e) != ref[e] {
					t.Fatalf("trial %d: Has(%d) = %v, want %v", trial, e, s.Has(e), ref[e])
				}
			case 2:
				o := &Set{}
				refo := map[int]bool{}
				for k := 0; k < rng.Intn(10); k++ {
					x := rng.Intn(2000)
					o.Add(x)
					refo[x] = true
				}
				d := s.UnionDelta(o)
				for x := range refo {
					if !ref[x] {
						if d == nil || !d.Has(x) {
							t.Fatalf("trial %d: delta missing %d", trial, x)
						}
						ref[x] = true
					} else if d != nil && d.Has(x) {
						t.Fatalf("trial %d: delta claims pre-existing %d", trial, x)
					}
				}
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("trial %d: Len=%d want %d", trial, s.Len(), len(ref))
		}
	}
}
