// Package essa builds the extended SSA (e-SSA / SSI) program
// representation the paper's less-than analysis runs on. Following
// Figure 5 and the live-range-splitting strategy of Tavares et al.,
// the transformation splits the live range of a variable at every
// program point where new less-than information appears:
//
//   - after a conditional branch on a comparison, a sigma copy of each
//     compared variable is placed at the head of both branch targets
//     (Figure 5a);
//   - at a subtraction x1 = x2 - n with n provably positive (or an
//     addition of a provably negative value, or pointer arithmetic
//     with such an offset), a parallel copy of x2 is inserted right
//     after the instruction (Figure 5b).
//
// Uses dominated by a split point are renamed to the split's fresh
// name, which gives every dataflow fact a single program point of
// birth — the Static Single Information property that makes the
// analysis sparse.
package essa

import (
	"repro/internal/cfg"
	"repro/internal/ir"
)

// RangeOracle supplies variable sign information for classifying
// additions with non-constant operands, per the "support of range
// analysis" paragraph of Section 3.2. internal/rangeanal implements
// it; a nil oracle classifies only constant operands.
type RangeOracle interface {
	// IsStrictlyPositive reports whether v > 0 always holds.
	IsStrictlyPositive(v ir.Value) bool
	// IsStrictlyNegative reports whether v < 0 always holds.
	IsStrictlyNegative(v ir.Value) bool
}

// Transform converts f into e-SSA: InsertSigmas followed by
// SplitSubtractions. The result remains valid strict SSA.
func Transform(f *ir.Func, oracle RangeOracle) {
	InsertSigmas(f)
	SplitSubtractions(f, oracle)
}

// TransformModule applies Transform to every function in m.
func TransformModule(m *ir.Module, oracle RangeOracle) {
	for _, f := range m.Funcs {
		Transform(f, oracle)
	}
}

// InsertSigmas splits critical edges and places sigma copies of every
// compared variable at the head of both targets of each conditional
// branch whose condition is a comparison. Returns the number of
// sigmas inserted.
func InsertSigmas(f *ir.Func) int {
	cfg.RemoveUnreachable(f)
	cfg.SplitCriticalEdges(f)
	roots := make(map[*ir.Instr]ir.Value)
	count := 0
	for _, b := range append([]*ir.Block(nil), f.Blocks...) {
		term := b.Term()
		if term == nil || term.Op != ir.OpBr {
			continue
		}
		cmp, ok := term.Args[0].(*ir.Instr)
		if !ok || cmp.Op != ir.OpICmp {
			continue
		}
		tSucc, fSucc := term.Succs[0], term.Succs[1]
		if tSucc == fSucc {
			continue
		}
		for side := 0; side < 2; side++ {
			x := cmp.Args[side]
			if !splittable(x) {
				continue
			}
			if side == 1 && x == cmp.Args[0] {
				continue // x < x: one sigma per variable
			}
			for _, arm := range []struct {
				blk    *ir.Block
				onTrue bool
			}{{tSucc, true}, {fSucc, false}} {
				sig := &ir.Instr{
					Op:      ir.OpSigma,
					Typ:     x.Type(),
					Args:    []ir.Value{x},
					Cmp:     cmp,
					OnTrue:  arm.onTrue,
					CmpSide: side,
				}
				sig.SetName(f.FreshName(x.Name() + ".s"))
				arm.blk.Insert(len(arm.blk.Phis())+countSigmas(arm.blk), sig)
				roots[sig] = x
				count++
			}
		}
	}
	if count > 0 {
		renameSplits(f, roots)
	}
	return count
}

func countSigmas(b *ir.Block) int {
	n := 0
	for _, in := range b.Instrs {
		if in.Op == ir.OpSigma {
			n++
		} else if in.Op != ir.OpPhi {
			break
		}
	}
	return n
}

func splittable(v ir.Value) bool {
	switch v.(type) {
	case *ir.Instr, *ir.Param:
		return true
	}
	return false
}

// SplitSubtractions inserts, after every instruction that subtracts a
// provably positive amount from a variable (sub with positive n, add
// with negative n, gep with negative index), a parallel copy of the
// reduced variable, and renames dominated uses. Returns the number of
// copies inserted.
func SplitSubtractions(f *ir.Func, oracle RangeOracle) int {
	roots := make(map[*ir.Instr]ir.Value)
	count := 0
	for _, b := range f.Blocks {
		// Walk by index; insertion shifts the slice.
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			x := reducedOperand(in, oracle)
			if x == nil || !splittable(x) {
				continue
			}
			cp := &ir.Instr{
				Op:      ir.OpCopy,
				Typ:     x.Type(),
				Args:    []ir.Value{x},
				SubUser: in,
			}
			cp.SetName(f.FreshName(x.Name() + ".c"))
			b.Insert(i+1, cp)
			roots[cp] = x
			count++
			i++ // skip the copy we just inserted
		}
	}
	if count > 0 {
		renameSplits(f, roots)
	}
	return count
}

// reducedOperand returns the variable that instruction in strictly
// decreases, or nil. This is the x2 of Figure 5(b): the result in is
// known to be strictly less than x2.
func reducedOperand(in *ir.Instr, oracle RangeOracle) ir.Value {
	pos := func(v ir.Value) bool {
		if c, ok := v.(*ir.Const); ok {
			return c.Val > 0
		}
		return oracle != nil && oracle.IsStrictlyPositive(v)
	}
	neg := func(v ir.Value) bool {
		if c, ok := v.(*ir.Const); ok {
			return c.Val < 0
		}
		return oracle != nil && oracle.IsStrictlyNegative(v)
	}
	switch in.Op {
	case ir.OpSub:
		if pos(in.Args[1]) {
			return in.Args[0]
		}
	case ir.OpAdd:
		if neg(in.Args[1]) {
			return in.Args[0]
		}
		if neg(in.Args[0]) {
			return in.Args[1]
		}
	case ir.OpGEP:
		if neg(in.Args[1]) {
			return in.Args[0]
		}
	}
	return nil
}

// renameSplits renames, for every split instruction s with original
// variable root[s], all uses of root[s] dominated by s to s itself.
// Sigma operands are wired from the unique predecessor (the edge the
// sigma sits on), mirroring phi semantics.
func renameSplits(f *ir.Func, roots map[*ir.Instr]ir.Value) {
	f.RecomputeCFG()
	dt := cfg.NewDomTree(f)
	stacks := make(map[ir.Value][]ir.Value)
	lookup := func(v ir.Value) ir.Value {
		if s := stacks[v]; len(s) > 0 {
			return s[len(s)-1]
		}
		return v
	}
	var visit func(b *ir.Block)
	visit = func(b *ir.Block) {
		type pushRec struct{ root ir.Value }
		var pushed []pushRec
		push := func(root ir.Value, def ir.Value) {
			stacks[root] = append(stacks[root], def)
			pushed = append(pushed, pushRec{root})
		}
		for _, in := range b.Instrs {
			switch {
			case in.Op == ir.OpPhi:
				// Incoming values are renamed from predecessors.
			case in.Op == ir.OpSigma:
				// Sigma operands carry edge semantics and were wired
				// by the predecessor's visit; never rename them here.
				// A split sigma becomes the current definition.
				if roots[in] != nil {
					push(roots[in], in)
				}
			default:
				for i, a := range in.Args {
					if n := lookup(a); n != a {
						in.Args[i] = n
					}
				}
				if in.Op == ir.OpCopy && roots[in] != nil {
					push(roots[in], in)
				}
			}
		}
		for _, s := range b.Succs() {
			for _, in := range s.Instrs {
				switch in.Op {
				case ir.OpPhi:
					for i, pb := range in.PhiBlocks {
						if pb == b {
							if n := lookup(in.Args[i]); n != in.Args[i] {
								in.Args[i] = n
							}
						}
					}
				case ir.OpSigma:
					// A sigma block has a unique predecessor, so this
					// write happens exactly once.
					if r := roots[in]; r != nil {
						in.Args[0] = lookup(r)
					} else if n := lookup(in.Args[0]); n != in.Args[0] {
						in.Args[0] = n
					}
				default:
					// Past the phi/sigma prefix.
				}
				if in.Op != ir.OpPhi && in.Op != ir.OpSigma {
					break
				}
			}
		}
		for _, c := range dt.Children(b) {
			visit(c)
		}
		for i := len(pushed) - 1; i >= 0; i-- {
			r := pushed[i].root
			stacks[r] = stacks[r][:len(stacks[r])-1]
		}
	}
	if f.Entry() != nil {
		visit(f.Entry())
	}
}
