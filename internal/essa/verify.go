package essa

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// VerifySSI checks the Static Single Information property (Definition
// 3.2 of the paper) structurally: after live-range splitting, no use
// of a split variable may appear where the split's fresh name is the
// current one. Concretely, for every sigma s renaming x in block B,
// no use of x may be dominated by B (the sigma region renamed them
// all), and for every subtraction copy c = x placed after instruction
// d, no later use of x may be dominated by the copy. Lemma 3.8
// ("LT(x) is invariant along the live range of x") relies on exactly
// this property; the test suites run the verifier after every
// transform.
func VerifySSI(f *ir.Func) error {
	f.RecomputeCFG()
	dt := cfg.NewDomTree(f)
	pos := map[*ir.Instr]int{}
	i := 0
	f.Instrs(func(in *ir.Instr) bool {
		pos[in] = i
		i++
		return true
	})

	type split struct {
		def  *ir.Instr // the sigma or copy
		root ir.Value  // the variable it renames
	}
	var splits []split
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpSigma || in.Op == ir.OpCopy {
			splits = append(splits, split{def: in, root: in.Args[0]})
		}
		return true
	})

	var err error
	check := func(s split, user *ir.Instr, useBlock *ir.Block) {
		// The split's own operand is the legitimate last use.
		if user == s.def {
			return
		}
		// Sibling sigmas in the same block read the root on the same
		// edge (parallel-copy semantics).
		if user.Op == ir.OpSigma && user.Blk == s.def.Blk {
			return
		}
		switch s.def.Op {
		case ir.OpSigma:
			// A use is stale if it sits strictly inside the sigma's
			// dominance region.
			if useBlock == s.def.Blk {
				err = fmt.Errorf("ssi: use of %s in %s not renamed to sigma %s",
					s.root.Ref(), user.String(), s.def.Ref())
				return
			}
			if dt.StrictlyDominates(s.def.Blk, useBlock) {
				err = fmt.Errorf("ssi: use of %s in %s (block %s) dominated by sigma %s",
					s.root.Ref(), user.String(), useBlock.Name(), s.def.Ref())
			}
		case ir.OpCopy:
			// Stale if after the copy in the same block, or in a
			// strictly dominated block.
			if useBlock == s.def.Blk && pos[user] > pos[s.def] {
				err = fmt.Errorf("ssi: use of %s in %s after copy %s",
					s.root.Ref(), user.String(), s.def.Ref())
				return
			}
			if dt.StrictlyDominates(s.def.Blk, useBlock) {
				err = fmt.Errorf("ssi: use of %s in %s (block %s) dominated by copy %s",
					s.root.Ref(), user.String(), useBlock.Name(), s.def.Ref())
			}
		}
	}

	f.Instrs(func(in *ir.Instr) bool {
		for _, s := range splits {
			if in.Op == ir.OpPhi {
				for k, a := range in.Args {
					if a == s.root {
						// Phi uses happen at the end of the incoming
						// block.
						check(s, in, in.PhiBlocks[k])
					}
				}
				continue
			}
			for _, a := range in.Args {
				if a == s.root {
					check(s, in, in.Blk)
				}
			}
		}
		return err == nil
	})
	return err
}
