package essa

import (
	"testing"

	"repro/internal/csmith"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/rangeanal"
)

func TestVerifySSIAfterTransform(t *testing.T) {
	srcs := []string{
		`void ins_sort(int* v, int N) {
  int i, j;
  for (i = 0; i < N - 1; i++)
    for (j = i + 1; j < N; j++)
      if (v[i] > v[j]) { int t = v[i]; v[i] = v[j]; v[j] = t; }
}`,
		`void partition(int *v, int N) {
  int i, j, p, tmp;
  p = v[N/2];
  for (i = 0, j = N - 1;; i++, j--) {
    while (v[i] < p) i++;
    while (p < v[j]) j--;
    if (i >= j) break;
    tmp = v[i]; v[i] = v[j]; v[j] = tmp;
  }
}`,
	}
	for i, src := range srcs {
		m := minic.MustCompile("t", src)
		oracle := rangeanal.Analyze(m)
		TransformModule(m, oracle)
		for _, f := range m.Funcs {
			if err := VerifySSI(f); err != nil {
				t.Errorf("kernel %d @%s: %v\n%s", i, f.FName, err, f)
			}
		}
	}
}

func TestVerifySSIFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing in -short mode")
	}
	for seed := int64(0); seed < 30; seed++ {
		src := csmith.Generate(csmith.Config{
			Seed: 30000 + seed, MaxPtrDepth: 2 + int(seed)%4, Stmts: 40,
		})
		m := minic.MustCompile("gen", src)
		// Two-phase pipeline as in core.Prepare.
		for _, f := range m.Funcs {
			InsertSigmas(f)
		}
		oracle := rangeanal.Analyze(m)
		for _, f := range m.Funcs {
			SplitSubtractions(f, oracle)
		}
		for _, f := range m.Funcs {
			if err := VerifySSI(f); err != nil {
				t.Fatalf("seed %d @%s: %v\n%s", seed, f.FName, err, f)
			}
		}
	}
}

func TestVerifySSICatchesStaleUse(t *testing.T) {
	// A hand-written module where a use inside the sigma region was
	// not renamed: the verifier must object.
	m := ir.MustParse(`
func @f(i64 %a, i64 %b, i64* %v) i64 {
entry:
  %c = icmp lt %a, %b
  br %c, then, else
then:
  %as = sigma %a, cmp %c, true, left
  %p = gep %v, %a
  %x = load %p
  ret %x
else:
  ret 0
}
`)
	f := m.FuncByName("f")
	if err := VerifySSI(f); err == nil {
		t.Fatal("stale use of %a inside the sigma region not detected")
	}
}

func TestVerifySSICatchesStaleCopyUse(t *testing.T) {
	m := ir.MustParse(`
func @f(i64 %a) i64 {
entry:
  %x = sub %a, 1
  %ac = copy %a, sub %x
  %y = add %a, %x
  ret %y
}
`)
	f := m.FuncByName("f")
	if err := VerifySSI(f); err == nil {
		t.Fatal("stale use of %a after its split copy not detected")
	}
}
