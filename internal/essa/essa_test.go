package essa

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/ssa"
)

func countOp(f *ir.Func, op ir.Op) int {
	n := 0
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == op {
			n++
		}
		return true
	})
	return n
}

func TestInsertSigmasDiamond(t *testing.T) {
	m := ir.MustParse(`
func @f(i64 %a, i64 %b) i64 {
entry:
  %c = icmp lt %a, %b
  br %c, then, else
then:
  %x = add %a, 1
  jmp join
else:
  %y = add %b, 1
  jmp join
join:
  %r = phi i64 [%x, then], [%y, else]
  ret %r
}
`)
	f := m.FuncByName("f")
	n := InsertSigmas(f)
	// Two operands x two arms = 4 sigmas.
	if n != 4 {
		t.Fatalf("inserted %d sigmas, want 4:\n%s", n, f)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	if err := ssa.VerifySSA(f); err != nil {
		t.Fatalf("ssa: %v\n%s", err, f)
	}
	// The add in "then" must use the sigma of %a, not %a itself.
	var then *ir.Block
	for _, b := range f.Blocks {
		if b.Name() == "then" {
			then = b
		}
	}
	var add *ir.Instr
	for _, in := range then.Instrs {
		if in.Op == ir.OpAdd {
			add = in
		}
	}
	sig, ok := add.Args[0].(*ir.Instr)
	if !ok || sig.Op != ir.OpSigma {
		t.Fatalf("use in branch arm not renamed to sigma: %s", add)
	}
	if !sig.OnTrue || sig.CmpSide != 0 {
		t.Errorf("sigma has wrong side/arm: onTrue=%v side=%d", sig.OnTrue, sig.CmpSide)
	}
}

func TestInsertSigmasLoop(t *testing.T) {
	// The back-edge value must flow through the body's sigma.
	m := ir.MustParse(`
func @f(i64 %n) i64 {
entry:
  jmp head
head:
  %i = phi i64 [0, entry], [%i2, body]
  %c = icmp lt %i, %n
  br %c, body, exit
body:
  %i2 = add %i, 1
  jmp head
exit:
  ret %i
}
`)
	f := m.FuncByName("f")
	InsertSigmas(f)
	if err := ssa.VerifySSA(f); err != nil {
		t.Fatalf("ssa: %v\n%s", err, f)
	}
	// %i2 = add %i.s, 1 where %i.s is the true-arm sigma of %i.
	var add *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpAdd {
			add = in
		}
		return true
	})
	sig, ok := add.Args[0].(*ir.Instr)
	if !ok || sig.Op != ir.OpSigma || !sig.OnTrue {
		t.Fatalf("loop body increment does not use true-arm sigma: %s\n%s", add, f)
	}
	// The exit use of %i must use the false-arm sigma.
	var ret *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpRet {
			ret = in
		}
		return true
	})
	rsig, ok := ret.Args[0].(*ir.Instr)
	if !ok || rsig.Op != ir.OpSigma || rsig.OnTrue {
		t.Fatalf("exit use not renamed to false-arm sigma: %s\n%s", ret, f)
	}
}

func TestInsertSigmasCriticalEdge(t *testing.T) {
	// head->exit is critical (head branches, exit has 2 preds); the
	// transform must split it before placing sigmas.
	m := ir.MustParse(`
func @f(i64 %n, i64 %k) i64 {
entry:
  %c0 = icmp lt %k, 0
  br %c0, exit, head
head:
  %c = icmp lt %k, %n
  br %c, body, exit
body:
  jmp exit
exit:
  ret %n
}
`)
	f := m.FuncByName("f")
	InsertSigmas(f)
	if err := ssa.VerifySSA(f); err != nil {
		t.Fatalf("ssa: %v\n%s", err, f)
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpSigma && len(b.Preds) != 1 {
				t.Errorf("sigma in block %s with %d preds", b.Name(), len(b.Preds))
			}
		}
	}
}

func TestSplitSubtractionsConstant(t *testing.T) {
	m := ir.MustParse(`
func @f(i64 %a) i64 {
entry:
  %x = sub %a, 2
  %y = add %a, %x
  ret %y
}
`)
	f := m.FuncByName("f")
	n := SplitSubtractions(f, nil)
	if n != 1 {
		t.Fatalf("inserted %d copies, want 1:\n%s", n, f)
	}
	if err := ssa.VerifySSA(f); err != nil {
		t.Fatalf("ssa: %v\n%s", err, f)
	}
	// The use of %a after the sub must be the copy.
	var add *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpAdd {
			add = in
		}
		return true
	})
	cp, ok := add.Args[0].(*ir.Instr)
	if !ok || cp.Op != ir.OpCopy {
		t.Fatalf("use after subtraction not renamed: %s\n%s", add, f)
	}
	if cp.SubUser == nil || cp.SubUser.Op != ir.OpSub {
		t.Error("copy does not record its subtraction")
	}
}

func TestSplitNegativeAddAndGEP(t *testing.T) {
	m := ir.MustParse(`
func @f(i64* %p, i64 %a) i64* {
entry:
  %x = add %a, -3
  %q = gep %p, -1
  %y = add %a, %x
  %r = gep %p, %a
  ret %q
}
`)
	f := m.FuncByName("f")
	n := SplitSubtractions(f, nil)
	// add %a,-3 splits %a; gep %p,-1 splits %p. gep %p,%a: unknown
	// sign without an oracle, no split.
	if n != 2 {
		t.Fatalf("inserted %d copies, want 2:\n%s", n, f)
	}
	if err := ssa.VerifySSA(f); err != nil {
		t.Fatalf("ssa: %v", err)
	}
}

// fixedOracle drives SplitSubtractions in tests.
type fixedOracle struct {
	pos map[string]bool
	neg map[string]bool
}

func (o fixedOracle) IsStrictlyPositive(v ir.Value) bool { return o.pos[v.Name()] }
func (o fixedOracle) IsStrictlyNegative(v ir.Value) bool { return o.neg[v.Name()] }

func TestSplitSubtractionsWithOracle(t *testing.T) {
	m := ir.MustParse(`
func @f(i64 %a, i64 %n) i64 {
entry:
  %x = sub %a, %n
  %y = add %a, %x
  ret %y
}
`)
	f := m.FuncByName("f")
	if n := SplitSubtractions(f, fixedOracle{pos: map[string]bool{"n": true}}); n != 1 {
		t.Fatalf("with positive oracle: %d copies, want 1", n)
	}

	m2 := ir.MustParse(`
func @f(i64 %a, i64 %n) i64 {
entry:
  %x = sub %a, %n
  %y = add %a, %x
  ret %y
}
`)
	f2 := m2.FuncByName("f")
	if n := SplitSubtractions(f2, fixedOracle{}); n != 0 {
		t.Fatalf("without oracle info: %d copies, want 0", n)
	}
}

func TestTransformInsSortShape(t *testing.T) {
	m := minic.MustCompile("t", `
void ins_sort(int* v, int N) {
  int i, j;
  for (i = 0; i < N - 1; i++) {
    for (j = i + 1; j < N; j++) {
      if (v[i] > v[j]) {
        int tmp = v[i];
        v[i] = v[j];
        v[j] = tmp;
      }
    }
  }
}
`)
	f := m.FuncByName("ins_sort")
	Transform(f, nil)
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	if err := ssa.VerifySSA(f); err != nil {
		t.Fatalf("ssa: %v\n%s", err, f)
	}
	if countOp(f, ir.OpSigma) < 6 {
		t.Errorf("expected >=6 sigmas (three conditionals), got %d:\n%s",
			countOp(f, ir.OpSigma), f)
	}
	// N - 1 is a subtraction of a positive constant: N must be split.
	if countOp(f, ir.OpCopy) < 1 {
		t.Errorf("expected a live-range split at N-1:\n%s", f)
	}
}

// TestTransformPreservesSemantics differentially tests the transform:
// for a set of programs and inputs, the interpreted result before and
// after the transformation must agree exactly.
func TestTransformPreservesSemantics(t *testing.T) {
	progs := []struct {
		name, src, fn string
		args          []int64
	}{
		{"gcd", `
int gcd(int a, int b) {
  while (b != 0) {
    int t = a % b;
    a = b;
    b = t;
  }
  return a;
}`, "gcd", []int64{252, 105}},
		{"countdown", `
int count(int n) {
  int s = 0;
  while (n > 0) {
    s += n;
    n = n - 2;
  }
  return s;
}`, "count", []int64{17}},
		{"nested", `
int nest(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) {
    for (int j = i; j < n; j++) {
      if (i < j) s += j - i;
      else s -= 1;
    }
  }
  return s;
}`, "nest", []int64{9}},
		{"absdiff", `
int ad(int a, int b) {
  if (a < b) return b - a;
  return a - b;
}`, "ad", []int64{-5, 12}},
	}
	for _, p := range progs {
		t.Run(p.name, func(t *testing.T) {
			run := func(m *ir.Module) int64 {
				t.Helper()
				mach := interp.NewMachine(m, interp.Options{})
				var args []interp.Val
				for _, a := range p.args {
					args = append(args, interp.IntVal(a))
				}
				v, err := mach.Run(p.fn, args...)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				return v.I
			}
			before := run(minic.MustCompile(p.name, p.src))
			m2 := minic.MustCompile(p.name, p.src)
			TransformModule(m2, nil)
			after := run(m2)
			if before != after {
				t.Errorf("semantics changed: %d before, %d after transform", before, after)
			}
		})
	}
}

// TestTransformSortStillSorts runs Figure 1(a) through the transform
// and checks it still sorts.
func TestTransformSortStillSorts(t *testing.T) {
	m := minic.MustCompile("t", `
void ins_sort(int* v, int N) {
  int i, j;
  for (i = 0; i < N - 1; i++) {
    for (j = i + 1; j < N; j++) {
      if (v[i] > v[j]) {
        int tmp = v[i];
        v[i] = v[j];
        v[j] = tmp;
      }
    }
  }
}
`)
	TransformModule(m, nil)
	mach := interp.NewMachine(m, interp.Options{})
	data := []int64{4, 2, 7, 1, 9, 3}
	arr := interp.NewArray("v", len(data))
	for i, x := range data {
		arr.Cells[i] = interp.IntVal(x)
	}
	if _, err := mach.Run("ins_sort", interp.PtrTo(arr, 0), interp.IntVal(int64(len(data)))); err != nil {
		t.Fatalf("run: %v\n%s", err, m)
	}
	for i := 1; i < len(data); i++ {
		if arr.Cells[i-1].I > arr.Cells[i].I {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestTransformIdempotentShape(t *testing.T) {
	// Running InsertSigmas twice must not add sigmas for sigmas... it
	// will add new ones for the same compares; guard that Transform is
	// designed for single use by checking the count only grows by the
	// same compares (documented contract: run once). Here we only
	// check validity after a double run.
	m := minic.MustCompile("t", `int f(int a, int b) { if (a < b) return a; return b; }`)
	f := m.FuncByName("f")
	Transform(f, nil)
	if err := ssa.VerifySSA(f); err != nil {
		t.Fatalf("ssa after transform: %v", err)
	}
}

func TestPointerComparisonSigmas(t *testing.T) {
	// Pointer-typed sigma: for (p = v; p < e; p++).
	m := minic.MustCompile("t", `
int sum(int *p, int n) {
  int *e = p + n;
  int s = 0;
  while (p < e) {
    s += *p;
    p++;
  }
  return s;
}
`)
	f := m.FuncByName("sum")
	Transform(f, nil)
	if err := ssa.VerifySSA(f); err != nil {
		t.Fatalf("ssa: %v\n%s", err, f)
	}
	ptrSigmas := 0
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpSigma && ir.IsPtr(in.Typ) {
			ptrSigmas++
		}
		return true
	})
	if ptrSigmas < 2 {
		t.Errorf("expected pointer sigmas for p < e, got %d:\n%s", ptrSigmas, f)
	}
}
