package steens

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/budget"
	"repro/internal/ir"
	"repro/internal/minic"
)

func analyze(t *testing.T, src string) (*ir.Module, *Analysis) {
	t.Helper()
	m := minic.MustCompile("t", src)
	return m, Analyze(m)
}

func findOp(f *ir.Func, op ir.Op, nth int) *ir.Instr {
	var out *ir.Instr
	n := 0
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == op {
			if n == nth {
				out = in
				return false
			}
			n++
		}
		return true
	})
	return out
}

func TestDistinctAllocsNoAlias(t *testing.T) {
	m, a := analyze(t, `
int f() {
  int *p = malloc(8);
  int *q = malloc(8);
  *p = 1;
  *q = 2;
  return *p + *q;
}
`)
	f := m.FuncByName("f")
	p := findOp(f, ir.OpMalloc, 0)
	q := findOp(f, ir.OpMalloc, 1)
	if got := a.Alias(alias.Loc(p), alias.Loc(q)); got != alias.NoAlias {
		t.Errorf("malloc vs malloc = %s, want NoAlias", got)
	}
	if got := a.Alias(alias.Loc(p), alias.Loc(p)); got != alias.MayAlias {
		t.Errorf("p vs p = %s, want MayAlias (same object)", got)
	}
}

func TestPhiMergesClasses(t *testing.T) {
	// r merges p and q (phi after promotion, or store/load through
	// r's slot before it) and drags both into one class —
	// Steensgaard's signature imprecision: p and q then MayAlias each
	// other even though Andersen keeps them apart.
	m, a := analyze(t, `
int f(int c) {
  int *p = malloc(8);
  int *q = malloc(8);
  int *r = p;
  if (c) {
    r = q;
  }
  *r = 1;
  return *p + *q;
}
`)
	f := m.FuncByName("f")
	p := findOp(f, ir.OpMalloc, 0)
	q := findOp(f, ir.OpMalloc, 1)
	if got := a.Alias(alias.Loc(p), alias.Loc(q)); got != alias.MayAlias {
		t.Errorf("p vs q with merging phi = %s, want MayAlias (unification)", got)
	}
}

func TestExternalPointerIsUnknown(t *testing.T) {
	m, a := analyze(t, `
int g(int *ext) {
  int *p = malloc(8);
  *p = 1;
  return *ext + *p;
}
`)
	f := m.FuncByName("g")
	p := findOp(f, ir.OpMalloc, 0)
	ext := f.Params[0]
	if got := a.Alias(alias.Loc(ext), alias.Loc(p)); got != alias.MayAlias {
		t.Errorf("unknown param vs malloc = %s, want MayAlias", got)
	}
}

// TestUngroundedNeverNoAlias: a pointer with no assignment anywhere
// (Andersen set empty) must never witness NoAlias, even against a
// grounded pointer in a different class.
func TestUngroundedNeverNoAlias(t *testing.T) {
	m, a := analyze(t, `
int f() {
  int **slot = malloc(8);
  int *p = *slot;
  int *q = malloc(8);
  *q = 1;
  return *p;
}
`)
	f := m.FuncByName("f")
	q := findOp(f, ir.OpMalloc, 1)
	var load *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpLoad && ir.IsPtr(in.Typ) {
			load = in
			return false
		}
		return true
	})
	if load == nil {
		t.Skip("no pointer load in lowered form")
	}
	if got := a.Alias(alias.Loc(load), alias.Loc(q)); got != alias.MayAlias {
		t.Errorf("ungrounded load vs malloc = %s, want MayAlias", got)
	}
}

func TestDegradedAnswersMayAlias(t *testing.T) {
	src := `
int f() {
  int *p = malloc(8);
  int *q = malloc(8);
  *p = 1;
  *q = 2;
  return *p + *q;
}
`
	m := minic.MustCompile("t", src)
	a := AnalyzeCtx(t.Context(), m, Opts{Budget: budget.Spec{MaxSteps: 1}})
	if a.Degraded() == nil {
		t.Fatal("1-step budget did not degrade")
	}
	f := m.FuncByName("f")
	p := findOp(f, ir.OpMalloc, 0)
	q := findOp(f, ir.OpMalloc, 1)
	if got := a.Alias(alias.Loc(p), alias.Loc(q)); got != alias.MayAlias {
		t.Errorf("degraded Alias = %s, want MayAlias", got)
	}
}

func TestUnanalyzed(t *testing.T) {
	a := Unanalyzed(budget.ErrExceeded)
	if a.Degraded() == nil {
		t.Fatal("Unanalyzed not degraded")
	}
	if got := a.Alias(alias.Location{}, alias.Location{}); got != alias.MayAlias {
		t.Errorf("Unanalyzed Alias = %s, want MayAlias", got)
	}
}

// TestImplementsAnalysis pins the interface contract.
var _ alias.Analysis = (*Analysis)(nil)
