package steens

// uf is a union-find over dense node ids with union by rank and path
// halving, the structure that makes constraint application near-linear
// (inverse-Ackermann amortized per operation).
type uf struct {
	parent []int32
	rank   []uint8
}

// makeNode appends a fresh singleton class and returns its id.
func (u *uf) makeNode() int32 {
	id := int32(len(u.parent))
	u.parent = append(u.parent, id)
	u.rank = append(u.rank, 0)
	return id
}

// find returns n's class representative, halving the path on the way
// so repeated queries approach O(1).
func (u *uf) find(n int32) int32 {
	for u.parent[n] != n {
		u.parent[n] = u.parent[u.parent[n]]
		n = u.parent[n]
	}
	return n
}

// union merges the classes of a and b and returns (winner, loser) as
// representatives; when already unified, winner == loser.
func (u *uf) union(a, b int32) (winner, loser int32) {
	a, b = u.find(a), u.find(b)
	if a == b {
		return a, a
	}
	if u.rank[a] < u.rank[b] {
		a, b = b, a
	} else if u.rank[a] == u.rank[b] {
		u.rank[a]++
	}
	u.parent[b] = a
	return a, b
}

// len returns the number of nodes.
func (u *uf) len() int { return len(u.parent) }
