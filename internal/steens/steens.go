// Package steens implements a Steensgaard-style unification-based
// points-to analysis: the fast, coarse corner of the precision/speed
// frontier, against which the paper's strict-inequality analysis and
// the Andersen baseline are compared.
//
// Where Andersen solves subset constraints (pts(p) ⊇ pts(q)) to a
// least fixed point, Steensgaard collapses every constraint into an
// equality: an assignment p = q unifies what p and q point to. Each
// storage location is represented by an equivalence class in a
// union-find structure, and each class carries one "pointee" link —
// the class its contents point into. Unifying two classes recursively
// unifies their pointees, so a whole module is analyzed in near-linear
// time (inverse-Ackermann amortized per constraint) at the cost of
// precision: flow direction is forgotten, so everything assigned
// through a pointer chain lands in one class.
//
// Soundness contract (checked as a property test in internal/alias):
// the analysis over-approximates Andersen — whenever Andersen answers
// MayAlias, so does this analysis; NoAlias here implies NoAlias there.
// Unification alone does not give that for free: Andersen
// conservatively answers MayAlias when a points-to set is EMPTY, while
// naive class comparison would answer NoAlias for two never-assigned
// pointers in distinct classes. The analysis therefore tracks a
// per-value "grounded" bit — an under-approximate witness that
// Andersen's set is provably non-empty — seeded at address-of sites
// and unknown-pointer bindings and propagated only along edges that
// mirror Andersen's ⊇-edges from those seeds (copies, phis, sigmas,
// geps, call bindings; not loads). NoAlias is answered only for
// grounded, unknown-free, object-bearing, distinct classes.
package steens

import (
	"context"

	"repro/internal/alias"
	"repro/internal/budget"
	"repro/internal/ir"
)

// Analysis holds the solved unification state.
type Analysis struct {
	u uf
	// ptd[c] is the pointee node of class representative c, or -1 when
	// the class has no pointee yet. Only meaningful for reps; kept
	// consistent lazily through find.
	ptd []int32
	// objCount[c] counts allocation sites in class c (rep-valid).
	objCount []int32
	// nodeOf maps a value to its node.
	nodeOf map[ir.Value]int32
	// unknown is the node of the universal unknown object; any class
	// containing it stands for memory the module cannot account for.
	unknown int32
	// grounded marks values whose Andersen points-to set is provably
	// non-empty (see the package comment).
	grounded map[ir.Value]bool
	// degraded records budget exhaustion: a partially unified state
	// has too few merges and would answer NoAlias unsoundly, so every
	// query collapses to MayAlias.
	degraded error
}

// Name returns "ST", the analysis's label in reports.
func (a *Analysis) Name() string { return "ST" }

// Degraded returns the budget-exhaustion error when the unification
// was interrupted, or nil for a trustworthy result.
func (a *Analysis) Degraded() error { return a.degraded }

// Opts configures a hardened run.
type Opts struct {
	// Budget bounds the whole-module analysis.
	Budget budget.Spec
	// Skip lists functions whose bodies must not be traversed; calls
	// to them are handled like external calls.
	Skip map[*ir.Func]bool
}

// Unanalyzed returns a degraded Analysis carrying cause: every query
// answers MayAlias.
func Unanalyzed(cause error) *Analysis {
	return &Analysis{nodeOf: map[ir.Value]int32{}, grounded: map[ir.Value]bool{}, degraded: cause}
}

// Analyze runs the analysis on a whole module.
func Analyze(m *ir.Module) *Analysis {
	return AnalyzeCtx(context.Background(), m, Opts{})
}

// AnalyzeCtx is Analyze under a context, budget and skip set.
func AnalyzeCtx(ctx context.Context, m *ir.Module, opt Opts) *Analysis {
	a := &Analysis{nodeOf: map[ir.Value]int32{}, grounded: map[ir.Value]bool{}}
	a.unknown = a.newNode()
	a.objCount[a.unknown] = 1
	bgt := opt.Budget.Start(ctx)
	s := &unifier{a: a, bgt: bgt}
	// The unknown object's contents are themselves unknown: its class
	// is its own pointee, so any chain of loads out of unknown memory
	// stays in the unknown class.
	s.joinPtd(a.unknown, a.unknown)

	s.applyModule(m, opt)
	if err := bgt.Err(); err != nil {
		a.degraded = err
		return a
	}
	s.propagateGrounded()
	a.degraded = bgt.Err()
	return a
}

func (a *Analysis) newNode() int32 {
	id := a.u.makeNode()
	a.ptd = append(a.ptd, -1)
	a.objCount = append(a.objCount, 0)
	return id
}

func (a *Analysis) node(v ir.Value) int32 {
	if n, ok := a.nodeOf[v]; ok {
		return n
	}
	n := a.newNode()
	a.nodeOf[v] = n
	return n
}

// classPtd returns the pointee node of n's class, creating a fresh one
// when the class has none yet.
func (a *Analysis) classPtd(n int32) int32 {
	c := a.u.find(n)
	if a.ptd[c] == -1 {
		a.ptd[c] = a.newNode()
	}
	return a.ptd[c]
}

// unifier applies constraints; joins cascade through pointee links via
// an explicit queue so deep pointer chains cannot overflow the stack.
type unifier struct {
	a   *Analysis
	bgt *budget.B
	// edges are the grounding edges (mirrors of Andersen's ⊇-edges
	// from possibly-non-empty sources).
	edges []grEdge
}

type grEdge struct{ src, dst ir.Value }

// join unifies the classes of two nodes, cascading through pointees.
func (s *unifier) join(x, y int32) {
	type pair struct{ x, y int32 }
	queue := []pair{{x, y}}
	for len(queue) > 0 {
		if s.bgt.Tick() != nil {
			return
		}
		p := queue[0]
		queue = queue[1:]
		a := s.a
		w, l := a.u.union(p.x, p.y)
		if w == l {
			continue
		}
		a.objCount[w] += a.objCount[l]
		pw, pl := a.ptd[w], a.ptd[l]
		a.ptd[l] = -1
		if pw == -1 {
			a.ptd[w] = pl
		} else if pl != -1 {
			queue = append(queue, pair{pw, pl})
		}
	}
}

// joinPtd unifies node n's class-pointee with node m's class.
func (s *unifier) joinPtd(n, m int32) {
	s.join(s.a.classPtd(n), m)
}

// applyModule walks the module and applies every constraint, mirroring
// the structural rules of the Andersen traversal so the
// over-approximation property holds rule by rule.
func (s *unifier) applyModule(m *ir.Module, opt Opts) {
	a := s.a
	// Address-of sites: the site's value points at its object, and the
	// value's Andersen set is certainly non-empty.
	seedObj := func(site ir.Value) {
		n := a.node(site)
		obj := a.newNode()
		a.objCount[obj] = 1
		s.joinPtd(n, obj)
		a.grounded[site] = true
	}
	for _, g := range m.Globals {
		seedObj(g)
	}
	callers := map[*ir.Func]bool{}
	for _, f := range m.Funcs {
		if opt.Skip[f] {
			continue
		}
		f.Instrs(func(in *ir.Instr) bool {
			switch in.Op {
			case ir.OpAlloca, ir.OpMalloc:
				seedObj(in)
			case ir.OpCall:
				if in.Callee != nil && !opt.Skip[in.Callee] {
					callers[in.Callee] = true
				}
			}
			return true
		})
	}
	// assignUnknown binds v to the unknown object's class: Andersen
	// adds the unknown object to pts(v), so v is grounded.
	assignUnknown := func(v ir.Value) {
		s.joinPtd(a.node(v), a.unknown)
		a.grounded[v] = true
	}
	// copy is an assignment dst = src: unify the pointees and record a
	// grounding edge.
	cp := func(src, dst ir.Value) {
		if !ir.IsPtr(src.Type()) && !isPtrLike(src) {
			return
		}
		s.join(a.classPtd(a.node(src)), a.classPtd(a.node(dst)))
		s.edges = append(s.edges, grEdge{src, dst})
	}
	for _, f := range m.Funcs {
		if opt.Skip[f] {
			continue
		}
		f.Instrs(func(in *ir.Instr) bool {
			if s.bgt.Tick() != nil {
				return false
			}
			switch in.Op {
			case ir.OpGEP, ir.OpCopy, ir.OpSigma:
				cp(in.Args[0], in)
			case ir.OpPhi:
				for _, v := range in.Args {
					cp(v, in)
				}
			case ir.OpLoad:
				if ir.IsPtr(in.Typ) {
					// x = *p: x's value is the contents of the class p
					// points into.
					t := a.classPtd(a.node(in.Args[0]))
					s.join(a.classPtd(t), a.classPtd(a.node(in)))
					// Not a grounding edge: Andersen's pts(x) can be
					// empty even when pts(p) is not.
				}
			case ir.OpStore:
				if ir.IsPtr(in.Args[0].Type()) {
					// *p = v: the contents of p's pointee class absorb
					// v's pointees.
					t := a.classPtd(a.node(in.Args[0]))
					s.join(a.classPtd(t), a.classPtd(a.node(in.Args[1])))
				}
			case ir.OpCall:
				if in.Callee != nil && !opt.Skip[in.Callee] {
					for i, arg := range in.Args {
						if i < len(in.Callee.Params) && ir.IsPtr(in.Callee.Params[i].Typ) {
							cp(arg, in.Callee.Params[i])
						}
					}
					if ir.IsPtr(in.Typ) {
						in.Callee.Instrs(func(r *ir.Instr) bool {
							if r.Op == ir.OpRet && len(r.Args) == 1 {
								cp(r.Args[0], in)
							}
							return true
						})
					}
				} else {
					// External (or skipped) call: pointer arguments
					// escape into unknown memory; a pointer result is
					// unknown.
					for _, arg := range in.Args {
						if ir.IsPtr(arg.Type()) {
							t := a.classPtd(a.node(arg))
							s.joinPtd(t, a.unknown)
						}
					}
					if ir.IsPtr(in.Typ) {
						assignUnknown(in)
					}
				}
			}
			return true
		})
	}
	// Parameters of functions with no in-module caller hold unknown
	// pointers.
	for _, f := range m.Funcs {
		if callers[f] || opt.Skip[f] {
			continue
		}
		for _, p := range f.Params {
			if ir.IsPtr(p.Typ) {
				assignUnknown(p)
			}
		}
	}
}

func isPtrLike(v ir.Value) bool {
	_, isConst := v.(*ir.Const)
	return !isConst
}

// propagateGrounded closes the grounded set over the recorded edges:
// dst is grounded once any grounded src flows into it, mirroring
// Andersen's pts(dst) ⊇ pts(src) ≠ ∅.
func (s *unifier) propagateGrounded() {
	out := map[ir.Value][]ir.Value{}
	for _, e := range s.edges {
		out[e.src] = append(out[e.src], e.dst)
	}
	var work []ir.Value
	for v := range s.a.grounded {
		//lint:ignore maporder worklist seeding for a monotone closure: the final grounded set is the same for every visit order, and nothing on this path reaches a report
		work = append(work, v)
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, d := range out[v] {
			if !s.a.grounded[d] {
				s.a.grounded[d] = true
				work = append(work, d)
			}
		}
	}
}

// classOf returns the points-to class of v (the class of what v points
// at) and whether v has one.
func (a *Analysis) classOf(v ir.Value) (int32, bool) {
	n, ok := a.nodeOf[v]
	if !ok {
		return 0, false
	}
	c := a.u.find(n)
	if a.ptd[c] == -1 {
		return 0, false
	}
	return a.u.find(a.ptd[c]), true
}

// Alias reports NoAlias only for distinct, grounded, unknown-free,
// object-bearing classes; everything else is MayAlias. Each guard
// discharges one way a naive class comparison could contradict
// Andersen (see the package comment).
func (a *Analysis) Alias(la, lb alias.Location) alias.Result {
	if a.degraded != nil {
		return alias.MayAlias
	}
	ca, oka := a.classOf(la.Ptr)
	cb, okb := a.classOf(lb.Ptr)
	if !oka || !okb {
		return alias.MayAlias
	}
	if ca == cb {
		return alias.MayAlias
	}
	if !a.grounded[la.Ptr] || !a.grounded[lb.Ptr] {
		return alias.MayAlias
	}
	unk := a.u.find(a.unknown)
	if ca == unk || cb == unk {
		return alias.MayAlias
	}
	if a.objCount[ca] == 0 || a.objCount[cb] == 0 {
		return alias.MayAlias
	}
	return alias.NoAlias
}
