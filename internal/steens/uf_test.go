package steens

import (
	"math/rand"
	"testing"
)

// TestUnionFindBasics: reflexivity, union symmetry, transitivity.
func TestUnionFindBasics(t *testing.T) {
	var u uf
	n := make([]int32, 8)
	for i := range n {
		n[i] = u.makeNode()
	}
	for _, x := range n {
		if u.find(x) != x {
			t.Fatalf("fresh node %d not its own rep", x)
		}
	}
	u.union(n[0], n[1])
	u.union(n[2], n[3])
	if u.find(n[0]) != u.find(n[1]) || u.find(n[2]) != u.find(n[3]) {
		t.Fatal("union did not merge")
	}
	if u.find(n[0]) == u.find(n[2]) {
		t.Fatal("disjoint unions merged")
	}
	u.union(n[1], n[2])
	for _, x := range n[:4] {
		if u.find(x) != u.find(n[0]) {
			t.Fatal("transitive union incomplete")
		}
	}
	if u.find(n[4]) == u.find(n[0]) {
		t.Fatal("untouched node joined a class")
	}
}

// TestUnionReturnsWinnerLoser: the winner must be the rep of both
// inputs afterwards; self-union returns winner == loser.
func TestUnionReturnsWinnerLoser(t *testing.T) {
	var u uf
	a, b := u.makeNode(), u.makeNode()
	w, l := u.union(a, b)
	if w == l {
		t.Fatal("distinct union reported self-union")
	}
	if u.find(a) != w || u.find(b) != w {
		t.Fatal("winner is not the representative")
	}
	if w2, l2 := u.union(a, b); w2 != l2 {
		t.Fatal("repeat union did not report self-union")
	}
}

// TestPathCompression: after a find through a long chain, every node
// on the chain must point (transitively, with halved paths) much
// closer to the root — a second find must touch a short path. We
// check the structural effect directly: path lengths strictly shrink
// and end at the representative.
func TestPathCompression(t *testing.T) {
	var u uf
	const n = 64
	nodes := make([]int32, n)
	for i := range nodes {
		nodes[i] = u.makeNode()
	}
	// Build a deliberate chain parent[i] = i+1 (bypassing union's
	// balancing) to exercise compression.
	for i := 0; i < n-1; i++ {
		u.parent[nodes[i]] = nodes[i+1]
	}
	root := nodes[n-1]
	pathLen := func(x int32) int {
		l := 0
		for u.parent[x] != x {
			x = u.parent[x]
			l++
		}
		return l
	}
	before := pathLen(nodes[0])
	if got := u.find(nodes[0]); got != root {
		t.Fatalf("find = %d, want root %d", got, root)
	}
	after := pathLen(nodes[0])
	if after >= before {
		t.Fatalf("path not compressed: %d -> %d", before, after)
	}
	// Iterated finds converge to a direct link.
	for i := 0; i < 8; i++ {
		u.find(nodes[0])
	}
	if pathLen(nodes[0]) > 1 {
		t.Fatalf("path still %d after repeated finds", pathLen(nodes[0]))
	}
}

// TestUnionByRankBoundsDepth: random unions must keep every find path
// logarithmic (rank balancing), even without intervening finds.
func TestUnionByRankBoundsDepth(t *testing.T) {
	var u uf
	const n = 1 << 12
	for i := 0; i < n; i++ {
		u.makeNode()
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n-1; i++ {
		u.union(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	maxDepth := 0
	for i := int32(0); i < n; i++ {
		d := 0
		for x := i; u.parent[x] != x; x = u.parent[x] {
			d++
		}
		if d > maxDepth {
			maxDepth = d
		}
	}
	// Rank bound: depth ≤ log2(n) = 12 even before compression kicks
	// in (find-halving during union keeps it lower in practice).
	if maxDepth > 12 {
		t.Fatalf("max depth %d exceeds rank bound", maxDepth)
	}
}
