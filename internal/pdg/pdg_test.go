package pdg

import (
	"strings"
	"testing"

	"repro/internal/alias"
	"repro/internal/core"
	"repro/internal/csmith"
	"repro/internal/ir"
	"repro/internal/minic"
)

// mayAll is the no-information baseline: everything may alias.
type mayAll struct{}

func (mayAll) Name() string                           { return "none" }
func (mayAll) Alias(a, b alias.Location) alias.Result { return alias.MayAlias }

func buildAnalyses(t *testing.T, src string) (*ir.Module, alias.Analysis, alias.Analysis) {
	t.Helper()
	m := minic.MustCompile("t", src)
	p := core.Prepare(m, core.PipelineOptions{})
	ba := alias.NewBasic(m)
	lt := alias.NewSRAA(p.LT)
	return m, ba, alias.NewChain(ba, lt)
}

func TestNoInfoCollapsesToOneNode(t *testing.T) {
	m, _, _ := buildAnalyses(t, `
int f() {
  int a[4];
  int b[4];
  a[0] = 1;
  b[1] = 2;
  return a[0] + b[1];
}
`)
	g := Build(m, mayAll{})
	if g.MemNodes != 1 {
		t.Errorf("no-info PDG has %d memory nodes, want 1", g.MemNodes)
	}
}

func TestDistinctArraysSeparate(t *testing.T) {
	m, ba, _ := buildAnalyses(t, `
int f() {
  int a[4];
  int b[4];
  a[0] = 1;
  b[1] = 2;
  return a[0] + b[1];
}
`)
	g := Build(m, ba)
	// a[0] and b[1] come from distinct allocas: 2 nodes.
	if g.MemNodes != 2 {
		t.Errorf("BA PDG has %d memory nodes, want 2", g.MemNodes)
	}
}

func TestLTSplitsConstantIndices(t *testing.T) {
	src := `
int f() {
  int a[8];
  a[0] = 1;
  a[3] = 2;
  a[5] = 3;
  return a[0] + a[3] + a[5];
}
`
	m, ba, combined := buildAnalyses(t, src)
	gBA := Build(m, ba)
	gBoth := Build(m, combined)
	// BA already separates constant offsets within one alloca; the
	// combination must not be worse.
	if gBoth.MemNodes < gBA.MemNodes {
		t.Errorf("BA+LT (%d nodes) worse than BA (%d)", gBoth.MemNodes, gBA.MemNodes)
	}
	if gBA.MemNodes < 3 {
		t.Errorf("BA found %d nodes, want >=3 (distinct constant offsets)", gBA.MemNodes)
	}
}

// TestLTBeatsBAOnOrderedIndices reproduces the Figure 12 shape on a
// miniature: loop indices ordered by construction are merged by BA
// but split by BA+LT.
func TestLTBeatsBAOnOrderedIndices(t *testing.T) {
	src := `
int f(int n) {
  int a[16];
  for (int i = 0; i < n; i++) {
    for (int j = i + 1; j < n; j++) {
      a[i] = a[j] + 1;
    }
  }
  return n;
}
`
	m, ba, combined := buildAnalyses(t, src)
	gBA := Build(m, ba)
	gBoth := Build(m, combined)
	if gBoth.MemNodes <= gBA.MemNodes {
		t.Errorf("BA+LT (%d nodes) did not beat BA (%d) on ordered indices",
			gBoth.MemNodes, gBA.MemNodes)
	}
}

func TestGraphCountsAndDot(t *testing.T) {
	m, ba, _ := buildAnalyses(t, `
int f() {
  int a[4];
  a[0] = 1;
  return a[0];
}
`)
	g := Build(m, ba)
	if g.ValueNodes == 0 || g.Edges == 0 {
		t.Errorf("degenerate graph: %+v", *g)
	}
	dot := g.Dot()
	if !strings.Contains(dot, "digraph pdg") || !strings.Contains(dot, "mem0") {
		t.Errorf("dot output malformed:\n%s", dot)
	}
	// MemNodeOf: accessed pointer has a node; a random value does not.
	f := m.FuncByName("f")
	var gep *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpGEP {
			gep = in
		}
		return true
	})
	if gep != nil && g.MemNodeOf(gep) < 0 {
		t.Error("accessed gep has no memory node")
	}
	if g.MemNodeOf(ir.ConstInt(1)) != -1 {
		t.Error("constant has a memory node")
	}
}

// TestCsmithPrograms checks the Figure 12 protocol end to end on a
// few generated programs: BA+LT never yields fewer nodes than BA.
func TestCsmithPrograms(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		src := csmith.Generate(csmith.Config{Seed: seed, MaxPtrDepth: 3, Stmts: 30})
		m := minic.MustCompile("gen", src)
		p := core.Prepare(m, core.PipelineOptions{})
		ba := alias.NewBasic(m)
		combined := alias.NewChain(ba, alias.NewSRAA(p.LT))
		gBA := Build(m, ba)
		gBoth := Build(m, combined)
		if gBoth.MemNodes < gBA.MemNodes {
			t.Errorf("seed %d: BA+LT (%d) < BA (%d)", seed, gBoth.MemNodes, gBA.MemNodes)
		}
	}
}
