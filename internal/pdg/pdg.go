// Package pdg builds the Program Dependence Graph used in the
// paper's applicability study (Section 4.3, Figure 12). Following the
// FlowTracker construction, the graph has one node per SSA value and
// one memory node per equivalence class of memory locations that the
// supplied alias analysis cannot prove disjoint: a store into a
// location draws an edge from the stored value to the location's
// memory node, and a load draws an edge from the memory node to the
// loaded value.
//
// The number of memory nodes is the precision metric: with no alias
// information every access collapses into one node; perfect
// information yields one node per independent location.
package pdg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/alias"
	"repro/internal/ir"
)

// Graph is a program dependence graph over one module.
type Graph struct {
	// ValueNodes is the number of SSA value nodes.
	ValueNodes int
	// MemNodes is the number of memory nodes after merging by alias.
	MemNodes int
	// Edges is the number of dependence edges.
	Edges int

	// memClass maps each accessed pointer to its memory node id.
	memClass map[ir.Value]int
	// edges are (from, to) pairs over node labels, for rendering.
	edgeList [][2]string
}

// Build constructs the PDG of m, merging memory locations that aa
// reports as possibly aliasing. Queries are made across the whole
// module: analyses that cannot relate pointers from different
// functions conservatively merge them, matching the behaviour the
// paper describes for inter-procedural LT versus intra-procedural BA.
func Build(m *ir.Module, aa alias.Analysis) *Graph {
	g := &Graph{memClass: map[ir.Value]int{}}

	// Collect accessed locations in deterministic order.
	var accessed []ir.Value
	seen := map[ir.Value]bool{}
	add := func(p ir.Value) {
		if !seen[p] {
			seen[p] = true
			accessed = append(accessed, p)
		}
	}
	for _, f := range m.Funcs {
		f.Instrs(func(in *ir.Instr) bool {
			switch in.Op {
			case ir.OpLoad:
				add(in.Args[0])
			case ir.OpStore:
				add(in.Args[1])
			}
			if in.HasResult() {
				g.ValueNodes++
			}
			return true
		})
	}

	// Union-find over locations.
	parent := make([]int, len(accessed))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i := 0; i < len(accessed); i++ {
		for j := i + 1; j < len(accessed); j++ {
			if find(i) == find(j) {
				continue
			}
			if aa.Alias(alias.Loc(accessed[i]), alias.Loc(accessed[j])) != alias.NoAlias {
				union(i, j)
			}
		}
	}
	// Densify class ids.
	classOf := map[int]int{}
	for i, p := range accessed {
		root := find(i)
		id, ok := classOf[root]
		if !ok {
			id = len(classOf)
			classOf[root] = id
		}
		g.memClass[p] = id
	}
	g.MemNodes = len(classOf)

	// Count dependence edges: def-use plus memory edges.
	for _, f := range m.Funcs {
		f.Instrs(func(in *ir.Instr) bool {
			switch in.Op {
			case ir.OpStore:
				g.Edges++ // value -> memory node
				g.edgeList = append(g.edgeList,
					[2]string{in.Args[0].Ref(), g.memLabel(in.Args[1])})
			case ir.OpLoad:
				g.Edges++ // memory node -> value
				g.edgeList = append(g.edgeList,
					[2]string{g.memLabel(in.Args[0]), in.Ref()})
			}
			for _, a := range in.Args {
				if _, ok := a.(*ir.Instr); ok {
					g.Edges++
				}
			}
			return true
		})
	}
	return g
}

func (g *Graph) memLabel(p ir.Value) string {
	return fmt.Sprintf("mem%d", g.memClass[p])
}

// MemNodeOf returns the memory node id of an accessed pointer, or -1
// if p was never used as a load/store address.
func (g *Graph) MemNodeOf(p ir.Value) int {
	if id, ok := g.memClass[p]; ok {
		return id
	}
	return -1
}

// Dot renders the memory portion of the graph in Graphviz syntax.
func (g *Graph) Dot() string {
	var sb strings.Builder
	sb.WriteString("digraph pdg {\n")
	nodes := map[string]bool{}
	edges := append([][2]string(nil), g.edgeList...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		nodes[e[0]] = true
		nodes[e[1]] = true
	}
	var names []string
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		shape := "ellipse"
		if strings.HasPrefix(n, "mem") {
			shape = "box"
		}
		fmt.Fprintf(&sb, "  %q [shape=%s];\n", n, shape)
	}
	for _, e := range edges {
		fmt.Fprintf(&sb, "  %q -> %q;\n", e[0], e[1])
	}
	sb.WriteString("}\n")
	return sb.String()
}
