package alias

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// Counts aggregates query outcomes for one analysis, mirroring the
// output of LLVM's aa-eval pass.
type Counts struct {
	Queries int
	No      int
	May     int
	Must    int
}

// NoAliasPercent is the precision metric used throughout the paper's
// evaluation: the share of queries answered NoAlias.
func (c Counts) NoAliasPercent() float64 {
	if c.Queries == 0 {
		return 0
	}
	return 100 * float64(c.No) / float64(c.Queries)
}

// Report is the outcome of evaluating a set of analyses over one
// module.
type Report struct {
	Module string
	// PerAnalysis holds counts keyed by analysis name, plus one entry
	// per analysis, all over the same query set.
	PerAnalysis map[string]*Counts
	// Order preserves the evaluation order for printing.
	Order []string
}

// NewReport creates an empty report pre-registered for the given
// analyses, ready for incremental filling via EvaluateFunc.
func NewReport(module string, analyses ...Analysis) *Report {
	rep := &Report{Module: module, PerAnalysis: map[string]*Counts{}}
	for _, a := range analyses {
		if _, ok := rep.PerAnalysis[a.Name()]; !ok {
			rep.PerAnalysis[a.Name()] = &Counts{}
			rep.Order = append(rep.Order, a.Name())
		}
	}
	return rep
}

// Evaluate runs the aa-eval protocol: within every function of m, it
// enumerates all unordered pairs of distinct pointer values (function
// arguments, pointer-yielding instructions, and globals used in the
// function) and queries every analysis with element-sized locations.
func Evaluate(m *ir.Module, analyses ...Analysis) *Report {
	rep := NewReport(m.Name, analyses...)
	for _, f := range m.Funcs {
		EvaluateFunc(f, rep, analyses...)
	}
	return rep
}

// EvaluateFunc adds one function's all-pairs queries to rep. Exposed
// separately so the hardened harness can wrap each function in its own
// containment region.
func EvaluateFunc(f *ir.Func, rep *Report, analyses ...Analysis) {
	ptrs := PointerValues(f)
	for i := 0; i < len(ptrs); i++ {
		for j := i + 1; j < len(ptrs); j++ {
			la, lb := Loc(ptrs[i]), Loc(ptrs[j])
			for _, an := range analyses {
				c := rep.PerAnalysis[an.Name()]
				c.Queries++
				switch an.Alias(la, lb) {
				case NoAlias:
					c.No++
				case MustAlias:
					c.Must++
				default:
					c.May++
				}
			}
		}
	}
}

// MayAliasOnly records every unordered pointer pair of f as MayAlias
// for every analysis: the sound degraded substitute when evaluating f
// failed (the pairs still count toward the query total, claiming
// nothing about any of them).
func MayAliasOnly(f *ir.Func, rep *Report, analyses ...Analysis) {
	n := len(PointerValues(f))
	pairs := n * (n - 1) / 2
	for _, an := range analyses {
		c := rep.PerAnalysis[an.Name()]
		c.Queries += pairs
		c.May += pairs
	}
}

// PointerValues collects the pointer-typed values visible in f, in a
// deterministic order: parameters, then globals referenced by f, then
// instruction results in block order.
func PointerValues(f *ir.Func) []ir.Value {
	var out []ir.Value
	seen := map[ir.Value]bool{}
	add := func(v ir.Value) {
		if !seen[v] && ir.IsPtr(v.Type()) {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, p := range f.Params {
		add(p)
	}
	f.Instrs(func(in *ir.Instr) bool {
		for _, a := range in.Args {
			if g, ok := a.(*ir.Global); ok {
				add(g)
			}
		}
		if in.HasResult() {
			add(in)
		}
		return true
	})
	return out
}

// String renders the report as an aligned table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", r.Module)
	fmt.Fprintf(&sb, "%-10s %10s %10s %10s %10s %8s\n",
		"analysis", "queries", "no", "may", "must", "%no")
	for _, name := range r.Order {
		c := r.PerAnalysis[name]
		fmt.Fprintf(&sb, "%-10s %10d %10d %10d %10d %8.2f\n",
			name, c.Queries, c.No, c.May, c.Must, c.NoAliasPercent())
	}
	return sb.String()
}

// MergeReports sums reports from several modules (same analysis set).
func MergeReports(name string, reps ...*Report) *Report {
	out := &Report{Module: name, PerAnalysis: map[string]*Counts{}}
	for _, r := range reps {
		for _, an := range r.Order {
			c, ok := out.PerAnalysis[an]
			if !ok {
				c = &Counts{}
				out.PerAnalysis[an] = c
				out.Order = append(out.Order, an)
			}
			src := r.PerAnalysis[an]
			c.Queries += src.Queries
			c.No += src.No
			c.May += src.May
			c.Must += src.Must
		}
	}
	return out
}
