package alias_test

import (
	"fmt"
	"testing"

	"repro/internal/alias"
	"repro/internal/andersen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/csmith"
	"repro/internal/minic"
	"repro/internal/steens"
)

// TestAliasSymmetry: Alias(a, b) must equal Alias(b, a) for every
// analysis, across realistic programs. Asymmetry would make aa-eval
// order-dependent and chains unstable.
func TestAliasSymmetry(t *testing.T) {
	var progs []string
	for _, p := range corpus.Spec()[:4] {
		progs = append(progs, p.Source)
	}
	for seed := int64(0); seed < 5; seed++ {
		progs = append(progs, csmith.Generate(csmith.Config{
			Seed: 600 + seed, MaxPtrDepth: 3, Stmts: 30,
		}))
	}
	for pi, src := range progs {
		m := minic.MustCompile("t", src)
		prep := core.Prepare(m, core.PipelineOptions{})
		analyses := []alias.Analysis{
			alias.NewBasic(m),
			alias.NewSRAA(prep.LT),
			alias.NewSRAAWithRanges(prep.LT, prep.Ranges),
			andersen.Analyze(m),
		}
		for _, f := range m.Funcs {
			ptrs := alias.PointerValues(f)
			if len(ptrs) > 40 {
				ptrs = ptrs[:40] // bound the quadratic sweep
			}
			for i := 0; i < len(ptrs); i++ {
				for j := i + 1; j < len(ptrs); j++ {
					la, lb := alias.Loc(ptrs[i]), alias.Loc(ptrs[j])
					for _, an := range analyses {
						ab := an.Alias(la, lb)
						ba := an.Alias(lb, la)
						if ab != ba {
							t.Fatalf("program %d @%s: %s asymmetric on (%s, %s): %s vs %s",
								pi, f.FName, an.Name(),
								ptrs[i].Ref(), ptrs[j].Ref(), ab, ba)
						}
					}
				}
			}
		}
	}
}

// TestSelfQueryIsNotNoAlias: a location never no-aliases itself.
func TestSelfQueryIsNotNoAlias(t *testing.T) {
	m := minic.MustCompile("t", `
int f(int *v, int i) {
  int a[4];
  int *p = v + i;
  a[0] = *p;
  return a[0];
}
`)
	prep := core.Prepare(m, core.PipelineOptions{})
	analyses := []alias.Analysis{
		alias.NewBasic(m),
		alias.NewSRAA(prep.LT),
		alias.NewSRAAWithRanges(prep.LT, prep.Ranges),
		andersen.Analyze(m),
	}
	for _, f := range m.Funcs {
		for _, p := range alias.PointerValues(f) {
			for _, an := range analyses {
				if got := an.Alias(alias.Loc(p), alias.Loc(p)); got == alias.NoAlias {
					t.Errorf("%s: alias.NoAlias(%s, %s)", an.Name(), p.Ref(), p.Ref())
				}
			}
		}
	}
}

// TestSteensgaardOverApproximatesAndersen: unification is a coarsening
// of inclusion — for every pair where Andersen answers MayAlias,
// Steensgaard must too (equivalently: Steensgaard may answer NoAlias
// only where Andersen does). The sweep covers the corpus plus ≥200
// csmith programs, sharded across parallel subtests so the race
// detector exercises the analyses' concurrent use.
func TestSteensgaardOverApproximatesAndersen(t *testing.T) {
	const shards = 8
	perShard := int64(25) // 8 × 25 = 200 generated programs
	if testing.Short() {
		perShard = 3
	}
	check := func(t *testing.T, tag string, src string) {
		t.Helper()
		m := minic.MustCompile("t", src)
		cf := andersen.Analyze(m)
		st := steens.Analyze(m)
		for _, f := range m.Funcs {
			ptrs := alias.PointerValues(f)
			if len(ptrs) > 40 {
				ptrs = ptrs[:40] // bound the quadratic sweep
			}
			for i := 0; i < len(ptrs); i++ {
				for j := i; j < len(ptrs); j++ {
					la, lb := alias.Loc(ptrs[i]), alias.Loc(ptrs[j])
					if st.Alias(la, lb) == alias.NoAlias && cf.Alias(la, lb) == alias.MayAlias {
						t.Errorf("%s @%s: Steensgaard NoAlias but Andersen MayAlias on (%s, %s)",
							tag, f.FName, ptrs[i].Ref(), ptrs[j].Ref())
					}
				}
			}
		}
	}
	t.Run("corpus", func(t *testing.T) {
		t.Parallel()
		for _, p := range corpus.Spec() {
			check(t, p.Name, p.Source)
		}
	})
	for shard := int64(0); shard < shards; shard++ {
		shard := shard
		t.Run(fmt.Sprintf("csmith-%d", shard), func(t *testing.T) {
			t.Parallel()
			for i := int64(0); i < perShard; i++ {
				seed := 3000 + shard*perShard + i
				src := csmith.Generate(csmith.Config{
					Seed: seed, MaxPtrDepth: 3 + int(seed%3), Stmts: 30,
				})
				check(t, fmt.Sprintf("seed%d", seed), src)
			}
		})
	}
}

// TestChainDominance: a chain's no-alias set must be exactly the
// union of its components' (never less, and nothing a component did
// not prove).
func TestChainDominance(t *testing.T) {
	src := corpus.Spec()[0].Source
	m := minic.MustCompile("t", src)
	prep := core.Prepare(m, core.PipelineOptions{})
	ba := alias.NewBasic(m)
	lt := alias.NewSRAA(prep.LT)
	chain := alias.NewChain(ba, lt)
	for _, f := range m.Funcs {
		ptrs := alias.PointerValues(f)
		if len(ptrs) > 30 {
			ptrs = ptrs[:30]
		}
		for i := 0; i < len(ptrs); i++ {
			for j := i + 1; j < len(ptrs); j++ {
				la, lb := alias.Loc(ptrs[i]), alias.Loc(ptrs[j])
				c := chain.Alias(la, lb)
				b := ba.Alias(la, lb)
				l := lt.Alias(la, lb)
				if c == alias.MayAlias && (b != alias.MayAlias || l != alias.MayAlias) {
					t.Fatalf("chain weaker than a component on (%s, %s)",
						ptrs[i].Ref(), ptrs[j].Ref())
				}
				if c != alias.MayAlias && b == alias.MayAlias && l == alias.MayAlias {
					t.Fatalf("chain invented %s on (%s, %s)",
						c, ptrs[i].Ref(), ptrs[j].Ref())
				}
			}
		}
	}
}
