package alias

import (
	"repro/internal/core"
	"repro/internal/rangeanal"
)

// SRAA is the paper's contribution applied to alias queries: the
// Strict Relations Alias Analysis. Definition 3.11 gives its two
// criteria:
//
//  1. p1 and p2 do not alias if p1 ∈ LT(p2) or p2 ∈ LT(p1);
//  2. p1 = p + x1 and p2 = p + x2 (same SSA base pointer) do not
//     alias if x1 ∈ LT(x2) or x2 ∈ LT(x1).
//
// As an extension documented in DESIGN.md, same-base pointers whose
// variable offsets have provably disjoint intervals (scaled by access
// size) are also disambiguated when a range result is supplied; this
// mirrors the range-based criterion the paper cites from prior work
// and is disabled in the paper-faithful configuration.
type SRAA struct {
	lt *core.Result
	// ranges enables the offset-interval extension; nil disables it.
	ranges *rangeanal.Result
}

// NewSRAA builds the analysis from solved less-than sets.
func NewSRAA(lt *core.Result) *SRAA { return &SRAA{lt: lt} }

// NewSRAAWithRanges additionally enables the same-base interval
// criterion (extension; not part of the paper's LT configuration).
func NewSRAAWithRanges(lt *core.Result, r *rangeanal.Result) *SRAA {
	return &SRAA{lt: lt, ranges: r}
}

// Name returns "LT", the label the paper's evaluation uses.
func (s *SRAA) Name() string { return "LT" }

// Alias applies Definition 3.11.
func (s *SRAA) Alias(a, b Location) Result {
	p1, p2 := a.Ptr, b.Ptr
	// Criterion 1: direct strict ordering between the pointers.
	if s.lt.LessThan(p1, p2) || s.lt.LessThan(p2, p1) {
		return NoAlias
	}
	// Criterion 2: common base with strictly ordered offsets. Only a
	// single GEP level is compared — offsets must measure from the
	// same base in the same units.
	da, db := decompose(p1), decompose(p2)
	if da.base == db.base && len(da.varIdx) == 1 && len(db.varIdx) == 1 &&
		da.constOff == 0 && db.constOff == 0 &&
		da.varIdx[0].scale == db.varIdx[0].scale {
		x1, x2 := da.varIdx[0].idx, db.varIdx[0].idx
		if s.lt.LessThan(x1, x2) || s.lt.LessThan(x2, x1) {
			return NoAlias
		}
	}
	// Extension (range-supported sraa bundle): common base with
	// provably disjoint byte-offset intervals, covering constant
	// subscripts as degenerate ranges.
	if s.ranges != nil && da.base == db.base {
		o1, ok1 := s.offsetInterval(da)
		o2, ok2 := s.offsetInterval(db)
		if ok1 && ok2 && disjointBytes(o1, a.Size, o2, b.Size) {
			return NoAlias
		}
	}
	return MayAlias
}

// offsetInterval computes the byte-offset interval of a decomposed
// pointer relative to its base: constOff plus the scaled intervals of
// every variable index. Returns ok=false when an index is completely
// unconstrained in both directions.
func (s *SRAA) offsetInterval(d decomposed) (rangeanal.Interval, bool) {
	out := rangeanal.Point(d.constOff)
	for _, vi := range d.varIdx {
		r := s.ranges.Range(vi.idx)
		if r.IsTop() {
			return rangeanal.Top, false
		}
		out = rangeanal.Add(out, rangeanal.Mul(r, rangeanal.Point(vi.scale)))
	}
	return out, true
}

// disjointBytes reports whether the byte ranges [o1, o1+size1) and
// [o2, o2+size2) cannot overlap, treating infinite bounds soundly.
func disjointBytes(o1 rangeanal.Interval, size1 int64, o2 rangeanal.Interval, size2 int64) bool {
	if o1.IsEmpty() || o2.IsEmpty() {
		return false
	}
	if o1.Hi != rangeanal.PosInf && o2.Lo != rangeanal.NegInf &&
		o1.Hi+size1 <= o2.Lo {
		return true
	}
	if o2.Hi != rangeanal.PosInf && o1.Lo != rangeanal.NegInf &&
		o2.Hi+size2 <= o1.Lo {
		return true
	}
	return false
}
