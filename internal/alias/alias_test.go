package alias

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/minic"
)

// build compiles src, runs the full pipeline, and returns the module
// together with the standard analyses.
func build(t *testing.T, src string) (*ir.Module, *Basic, *SRAA) {
	t.Helper()
	m := minic.MustCompile("t", src)
	p := core.Prepare(m, core.PipelineOptions{})
	return m, NewBasic(m), NewSRAA(p.LT)
}

func fnPtr(f *ir.Func, pred func(*ir.Instr) bool) *ir.Instr {
	var out *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if pred(in) {
			out = in
			return false
		}
		return true
	})
	return out
}

func TestBasicDistinctAllocations(t *testing.T) {
	m, ba, _ := build(t, `
int f(int n) {
  int a[4];
  int b[4];
  int *p = malloc(32);
  int *q = malloc(32);
  a[0] = 1; b[0] = 2; p[0] = 3; q[0] = 4;
  return a[0] + b[0] + p[0] + q[0];
}
`)
	f := m.FuncByName("f")
	var sites []*ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpAlloca || in.Op == ir.OpMalloc {
			sites = append(sites, in)
		}
		return true
	})
	if len(sites) != 4 {
		t.Fatalf("allocation sites = %d, want 4", len(sites))
	}
	for i := 0; i < len(sites); i++ {
		for j := i + 1; j < len(sites); j++ {
			if got := ba.Alias(Loc(sites[i]), Loc(sites[j])); got != NoAlias {
				t.Errorf("BA(%s, %s) = %s, want NoAlias",
					sites[i].Ref(), sites[j].Ref(), got)
			}
		}
	}
}

func TestBasicConstOffsets(t *testing.T) {
	m, ba, _ := build(t, `
int f(int *v) {
  return v[1] + v[2] + v[1];
}
`)
	f := m.FuncByName("f")
	var geps []*ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpGEP {
			geps = append(geps, in)
		}
		return true
	})
	if len(geps) != 3 {
		t.Fatalf("geps = %d, want 3", len(geps))
	}
	// v[1] vs v[2]: disjoint constant offsets.
	if got := ba.Alias(Loc(geps[0]), Loc(geps[1])); got != NoAlias {
		t.Errorf("v[1] vs v[2] = %s, want NoAlias", got)
	}
	// v[1] vs v[1]: identical.
	if got := ba.Alias(Loc(geps[0]), Loc(geps[2])); got != MustAlias {
		t.Errorf("v[1] vs v[1] = %s, want MustAlias", got)
	}
	// v[1] vs v itself: same base, overlapping? v at offset 0, v[1] at 8.
	if got := ba.Alias(Loc(f.Params[0]), Loc(geps[0])); got != NoAlias {
		t.Errorf("v vs v[1] = %s, want NoAlias", got)
	}
}

func TestBasicEscape(t *testing.T) {
	m, ba, _ := build(t, `
int* keep(int *p) { return p; }

int f(int *ext) {
  int a[4];
  int b[4];
  int *e = keep(b);
  a[0] = 1;
  return a[0] + *ext + *e;
}
`)
	f := m.FuncByName("f")
	aAlloca := fnPtr(f, func(in *ir.Instr) bool {
		return in.Op == ir.OpAlloca && in.Name() == "a.addr"
	})
	bAlloca := fnPtr(f, func(in *ir.Instr) bool {
		return in.Op == ir.OpAlloca && in.Name() == "b.addr"
	})
	if aAlloca == nil || bAlloca == nil {
		t.Fatalf("allocas not found:\n%s", f)
	}
	ext := ir.Value(f.Params[0])
	// a does not escape: cannot alias the parameter.
	if got := ba.Alias(Loc(aAlloca), Loc(ext)); got != NoAlias {
		t.Errorf("non-escaping a vs param = %s, want NoAlias", got)
	}
	// b escapes through the call: must stay MayAlias vs the call
	// result, but a param still cannot alias it... it CAN: keep(b)
	// could be ext on a reentrant call. Conservatively MayAlias.
	if got := ba.Alias(Loc(bAlloca), Loc(ext)); got != MayAlias {
		t.Errorf("escaping b vs param = %s, want MayAlias", got)
	}
	// Distinct identified objects stay NoAlias regardless of escape.
	if got := ba.Alias(Loc(aAlloca), Loc(bAlloca)); got != NoAlias {
		t.Errorf("a vs b = %s, want NoAlias", got)
	}
}

func TestBasicGlobalVsLocal(t *testing.T) {
	m, ba, _ := build(t, `
int g[10];

int f(int *p) {
  int local[10];
  local[0] = g[0];
  return local[0] + *p;
}
`)
	f := m.FuncByName("f")
	loc := fnPtr(f, func(in *ir.Instr) bool { return in.Op == ir.OpAlloca })
	g := m.GlobalByName("g")
	if got := ba.Alias(Loc(loc), Loc(g)); got != NoAlias {
		t.Errorf("local vs global = %s, want NoAlias", got)
	}
	// Global vs param: the caller may pass &g: MayAlias.
	if got := ba.Alias(Loc(g), Loc(f.Params[0])); got != MayAlias {
		t.Errorf("global vs param = %s, want MayAlias", got)
	}
}

// TestSRAAInsSort is the headline result: LT disambiguates v[i] and
// v[j] in Figure 1(a), which BA cannot.
func TestSRAAInsSort(t *testing.T) {
	m, ba, lt := build(t, `
void ins_sort(int* v, int N) {
  int i, j;
  for (i = 0; i < N - 1; i++) {
    for (j = i + 1; j < N; j++) {
      if (v[i] > v[j]) {
        int tmp = v[i];
        v[i] = v[j];
        v[j] = tmp;
      }
    }
  }
}
`)
	f := m.FuncByName("ins_sort")
	var geps []*ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpGEP {
			geps = append(geps, in)
		}
		return true
	})
	pairs, ltWins, baWins := 0, 0, 0
	for i := 0; i < len(geps); i++ {
		for j := i + 1; j < len(geps); j++ {
			if geps[i].Args[1] == geps[j].Args[1] {
				continue
			}
			pairs++
			if lt.Alias(Loc(geps[i]), Loc(geps[j])) == NoAlias {
				ltWins++
			}
			if ba.Alias(Loc(geps[i]), Loc(geps[j])) == NoAlias {
				baWins++
			}
		}
	}
	if pairs == 0 {
		t.Fatal("no distinct-index gep pairs")
	}
	if ltWins != pairs {
		t.Errorf("LT disambiguated %d/%d v[i]-v[j] pairs:\n%s", ltWins, pairs, f)
	}
	if baWins != 0 {
		t.Errorf("BA unexpectedly disambiguated %d variable-index pairs", baWins)
	}
}

// TestSRAAPartition is Figure 1(b).
func TestSRAAPartition(t *testing.T) {
	m, _, lt := build(t, `
void partition(int *v, int N) {
  int i, j, p, tmp;
  p = v[N/2];
  for (i = 0, j = N - 1;; i++, j--) {
    while (v[i] < p) i++;
    while (p < v[j]) j--;
    if (i >= j)
      break;
    tmp = v[i];
    v[i] = v[j];
    v[j] = tmp;
  }
}
`)
	f := m.FuncByName("partition")
	// The three swap accesses appear after the break check; find geps
	// whose indices are the false-edge sigmas of i >= j.
	var swapGeps []*ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op != ir.OpGEP {
			return true
		}
		if s, ok := in.Args[1].(*ir.Instr); ok && s.Op == ir.OpSigma &&
			!s.OnTrue && s.Cmp.Pred == ir.CmpGE {
			swapGeps = append(swapGeps, in)
		}
		return true
	})
	if len(swapGeps) < 2 {
		t.Fatalf("swap geps not found:\n%s", f)
	}
	found := false
	for i := 0; i < len(swapGeps); i++ {
		for j := i + 1; j < len(swapGeps); j++ {
			if swapGeps[i].Args[1] == swapGeps[j].Args[1] {
				continue
			}
			found = true
			if got := lt.Alias(Loc(swapGeps[i]), Loc(swapGeps[j])); got != NoAlias {
				t.Errorf("swap pair = %s, want NoAlias", got)
			}
		}
	}
	if !found {
		t.Fatal("no cross-index swap pair")
	}
}

func TestSRAAPointerLoop(t *testing.T) {
	m, _, lt := build(t, `
int sum(int *p, int n) {
  int *e = p + n;
  int s = 0;
  while (p < e) {
    s += *p;
    p++;
  }
  return s;
}
`)
	f := m.FuncByName("sum")
	// Inside the loop, the sigma of p and the sigma of e must not
	// alias (criterion 1).
	var pi, pe *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpSigma && in.OnTrue && ir.IsPtr(in.Typ) {
			if in.CmpSide == 0 {
				pi = in
			} else {
				pe = in
			}
		}
		return true
	})
	if pi == nil || pe == nil {
		t.Fatalf("pointer sigmas missing:\n%s", f)
	}
	if got := lt.Alias(Loc(pi), Loc(pe)); got != NoAlias {
		t.Errorf("p vs e inside loop = %s, want NoAlias", got)
	}
}

func TestSRAANoFalseClaims(t *testing.T) {
	m, _, lt := build(t, `
int f(int *v, int a, int b) {
  return v[a] + v[b];
}
`)
	f := m.FuncByName("f")
	var geps []*ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpGEP {
			geps = append(geps, in)
		}
		return true
	})
	if got := lt.Alias(Loc(geps[0]), Loc(geps[1])); got != MayAlias {
		t.Errorf("v[a] vs v[b] = %s, want MayAlias (no relation)", got)
	}
}

func TestChainCombination(t *testing.T) {
	m, ba, lt := build(t, `
void f(int *v, int n) {
  int a[4];
  for (int i = 0; i < n; i++) {
    for (int j = i + 1; j < n; j++) {
      v[i] = v[j] + a[0];
    }
  }
}
`)
	chain := NewChain(ba, lt)
	if chain.Name() != "BA+LT" {
		t.Errorf("chain name = %q", chain.Name())
	}
	rep := Evaluate(m, ba, lt, chain)
	cb := rep.PerAnalysis["BA"]
	cl := rep.PerAnalysis["LT"]
	cc := rep.PerAnalysis["BA+LT"]
	if cb.Queries != cl.Queries || cb.Queries != cc.Queries {
		t.Fatal("analyses saw different query sets")
	}
	if cc.No < cb.No || cc.No < cl.No {
		t.Errorf("chain (%d) weaker than components (BA %d, LT %d)",
			cc.No, cb.No, cl.No)
	}
	if cc.No == cb.No && cc.No == cl.No && cb.No != cl.No {
		t.Error("chain did not combine complementary answers")
	}
}

func TestEvaluateCountsConsistent(t *testing.T) {
	m, ba, lt := build(t, `
int f(int *p, int *q, int n) {
  int local[8];
  for (int i = 0; i < n; i++) {
    local[i % 8] += p[i] + q[i];
  }
  return local[0];
}
`)
	rep := Evaluate(m, ba, lt)
	for name, c := range rep.PerAnalysis {
		if c.No+c.May+c.Must != c.Queries {
			t.Errorf("%s: counts don't sum: %+v", name, *c)
		}
		if c.Queries == 0 {
			t.Errorf("%s: no queries", name)
		}
	}
	if rep.String() == "" {
		t.Error("empty report rendering")
	}
}

func TestMergeReports(t *testing.T) {
	m1, ba1, lt1 := build(t, `int f(int *v, int n) { for (int i=0;i<n;i++) v[i]=v[i+1]; return 0; }`)
	r1 := Evaluate(m1, ba1, lt1)
	m2, ba2, lt2 := build(t, `int g(int *w) { return w[0] + w[3]; }`)
	r2 := Evaluate(m2, ba2, lt2)
	merged := MergeReports("all", r1, r2)
	for _, name := range []string{"BA", "LT"} {
		want := r1.PerAnalysis[name].Queries + r2.PerAnalysis[name].Queries
		if got := merged.PerAnalysis[name].Queries; got != want {
			t.Errorf("%s merged queries = %d, want %d", name, got, want)
		}
	}
}

func TestDecompose(t *testing.T) {
	m := ir.MustParse(`
func @f(i64* %p, i64 %x) i64* {
entry:
  %q = gep %p, 3
  %r = gep %q, %x
  %s = gep %r, 2
  ret %s
}
`)
	f := m.FuncByName("f")
	var s *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpGEP && in.Name() == "s" {
			s = in
		}
		return true
	})
	d := decompose(s)
	if d.base != ir.Value(f.Params[0]) {
		t.Errorf("base = %v, want %%p", d.base)
	}
	if d.constOff != 5*8 {
		t.Errorf("constOff = %d, want 40", d.constOff)
	}
	if len(d.varIdx) != 1 || d.varIdx[0].idx != ir.Value(f.Params[1]) {
		t.Errorf("varIdx = %v", d.varIdx)
	}
}

func TestPointerValuesDeterministic(t *testing.T) {
	m, _, _ := build(t, `
int g[4];
int f(int *p) {
  int a[2];
  a[0] = g[0] + *p;
  return a[0];
}
`)
	f := m.FuncByName("f")
	v1 := PointerValues(f)
	v2 := PointerValues(f)
	if len(v1) != len(v2) {
		t.Fatal("nondeterministic length")
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("nondeterministic order")
		}
	}
	if len(v1) < 4 {
		t.Errorf("expected param, global, allocas, geps: got %d values", len(v1))
	}
}
